module comparisondiag

go 1.24.0
