package comparisondiag

// One benchmark per evaluation artefact of the paper (see DESIGN.md §4
// for the experiment index and cmd/benchtab for the table renderer).
// Benchmarks assert exactness on every iteration: a fast wrong answer
// must fail, not score.

import (
	"fmt"
	"math/rand"
	"testing"

	"comparisondiag/internal/baseline"
)

// benchDiagnose measures one Diagnose configuration with δ faults under
// the mimic adversary, reporting syndrome look-ups alongside time.
func benchDiagnose(b *testing.B, nw Network, opt Options) {
	b.Helper()
	g := nw.Graph()
	rng := rand.New(rand.NewSource(1))
	F := RandomFaults(g.N(), nw.Diagnosability(), rng)
	s := NewLazySyndrome(F, Mimic{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, _, err := DiagnoseOpts(nw, s, opt)
		if err != nil {
			b.Fatal(err)
		}
		if !got.Equal(F) {
			b.Fatal("misdiagnosis")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(s.Lookups())/float64(b.N), "lookups/op")
	b.ReportMetric(float64(SyndromeTableSize(g)), "tablesize")
}

// BenchmarkTheorem2Hypercube regenerates experiment E1 (Theorem 2).
func BenchmarkTheorem2Hypercube(b *testing.B) {
	for _, n := range []int{8, 10, 12, 14} {
		nw := NewHypercube(n)
		b.Run(fmt.Sprintf("Q%d", n), func(b *testing.B) { benchDiagnose(b, nw, Options{}) })
	}
}

// BenchmarkTheorem3Variants regenerates experiment E2 (Theorem 3).
func BenchmarkTheorem3Variants(b *testing.B) {
	for _, nw := range []Network{
		NewCrossedCube(10),
		NewTwistedCube(9),
		NewFoldedHypercube(10),
		NewEnhancedHypercube(10, 4),
		NewAugmentedCube(9),
		NewShuffleCube(10),
		NewTwistedNCube(10),
	} {
		b.Run(nw.Name(), func(b *testing.B) { benchDiagnose(b, nw, Options{}) })
	}
}

// BenchmarkTheorem4KAry regenerates experiment E3 (Theorem 4).
func BenchmarkTheorem4KAry(b *testing.B) {
	for _, nw := range []Network{
		NewKAryNCube(3, 5),
		NewKAryNCube(4, 4),
		NewKAryNCube(8, 3),
		NewAugmentedKAryNCube(7, 2),
	} {
		b.Run(nw.Name(), func(b *testing.B) { benchDiagnose(b, nw, Options{}) })
	}
}

// BenchmarkTheorem5NKStar regenerates experiment E4 (Theorem 5).
func BenchmarkTheorem5NKStar(b *testing.B) {
	for _, nw := range []Network{
		NewNKStar(7, 3),
		NewNKStar(8, 4),
		NewStar(7),
		NewStar(8),
	} {
		b.Run(nw.Name(), func(b *testing.B) { benchDiagnose(b, nw, Options{}) })
	}
}

// BenchmarkTheorem6Pancake regenerates experiment E5 (Theorem 6).
func BenchmarkTheorem6Pancake(b *testing.B) {
	for _, n := range []int{6, 7, 8} {
		nw := NewPancake(n)
		b.Run(nw.Name(), func(b *testing.B) { benchDiagnose(b, nw, Options{}) })
	}
}

// BenchmarkTheorem7Arrangement regenerates experiment E6 (Theorem 7).
func BenchmarkTheorem7Arrangement(b *testing.B) {
	for _, nk := range [][2]int{{6, 4}, {7, 3}, {7, 4}, {8, 4}} {
		nw := NewArrangement(nk[0], nk[1])
		b.Run(nw.Name(), func(b *testing.B) { benchDiagnose(b, nw, Options{}) })
	}
}

// BenchmarkLookupAccounting regenerates experiment E7 (Section 6): the
// lookups/op metric against the reported tablesize metric is the claim.
func BenchmarkLookupAccounting(b *testing.B) {
	for _, nw := range []Network{NewHypercube(12), NewStar(8), NewKAryNCube(4, 4)} {
		b.Run(nw.Name(), func(b *testing.B) { benchDiagnose(b, nw, Options{}) })
	}
}

// BenchmarkVsChiangTan regenerates experiment E8 (Sections 3/6).
func BenchmarkVsChiangTan(b *testing.B) {
	n := 10
	nw := NewHypercube(n)
	g := nw.Graph()
	F := RandomFaults(g.N(), n, rand.New(rand.NewSource(2)))
	b.Run("ours/Q10", func(b *testing.B) {
		s := NewLazySyndrome(F, Mimic{})
		for i := 0; i < b.N; i++ {
			got, _, err := Diagnose(nw, s)
			if err != nil || !got.Equal(F) {
				b.Fatal("diagnosis failed")
			}
		}
	})
	b.Run("chiangtan/Q10", func(b *testing.B) {
		starAt := func(x int32) (*ExtendedStar, error) { return HypercubeExtendedStar(n, x) }
		for i := 0; i < b.N; i++ {
			s := NewLazySyndrome(F, Mimic{}) // CT re-materialises the table
			got, _, err := CTDiagnose(g, s, starAt)
			if err != nil || !got.Equal(F) {
				b.Fatal("CT diagnosis failed")
			}
		}
	})
}

// BenchmarkVsYang regenerates experiment E9 (Section 3).
func BenchmarkVsYang(b *testing.B) {
	n := 10
	nw := NewHypercube(n)
	F := RandomFaults(nw.Graph().N(), n, rand.New(rand.NewSource(3)))
	b.Run("ours/Q10", func(b *testing.B) {
		s := NewLazySyndrome(F, Mimic{})
		for i := 0; i < b.N; i++ {
			got, _, err := Diagnose(nw, s)
			if err != nil || !got.Equal(F) {
				b.Fatal("diagnosis failed")
			}
		}
	})
	b.Run("yang/Q10", func(b *testing.B) {
		s := NewLazySyndrome(F, Mimic{})
		for i := 0; i < b.N; i++ {
			got, _, err := YangDiagnose(nw, s)
			if err != nil || !got.Equal(F) {
				b.Fatal("Yang diagnosis failed")
			}
		}
	})
}

// BenchmarkDiagnosability regenerates experiment E10 (exact δ).
func BenchmarkDiagnosability(b *testing.B) {
	for _, nw := range []Network{NewHypercube(3), NewHypercube(4), NewStar(4)} {
		b.Run(nw.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ExactDiagnosability(nw.Graph(), nw.Graph().MinDegree()+1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDistributed regenerates experiment E11 (Conclusions).
func BenchmarkDistributed(b *testing.B) {
	n := 8
	nw := NewHypercube(n)
	g := nw.Graph()
	F := RandomFaults(g.N(), n, rand.New(rand.NewSource(4)))
	s := NewLazySyndrome(F, Mimic{})
	_, stats, err := Diagnose(nw, s)
	if err != nil {
		b.Fatal(err)
	}
	seed := stats.Seed
	b.Run("wave/Q8", func(b *testing.B) {
		var tests int64
		for i := 0; i < b.N; i++ {
			got, st, err := RunWave(g, s, seed, 10000)
			if err != nil || !got.Equal(F) {
				b.Fatal("wave failed")
			}
			tests = st.Tests
		}
		b.ReportMetric(float64(tests), "tests")
	})
	stars := make([]*ExtendedStar, g.N())
	for x := range stars {
		es, err := HypercubeExtendedStar(n, int32(x))
		if err != nil {
			b.Fatal(err)
		}
		stars[x] = es
	}
	b.Run("distct/Q8", func(b *testing.B) {
		var tests int64
		for i := 0; i < b.N; i++ {
			got, st, err := RunDistCT(g, s, stars, 10000)
			if err != nil || !got.Equal(F) {
				b.Fatal("dist-CT failed")
			}
			tests = st.Tests
		}
		b.ReportMetric(float64(tests), "tests")
	})
}

// BenchmarkFigure1CycleDecomposition regenerates the Fig. 1 structure.
func BenchmarkFigure1CycleDecomposition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dec, err := baseline.NewCycleDecomposition(12, 4)
		if err != nil {
			b.Fatal(err)
		}
		if dec.Matching(0, 1) == nil {
			b.Fatal("missing matching")
		}
	}
}

// BenchmarkFigure2ExtendedStar regenerates the Fig. 2 structure, both
// analytically (hypercube) and by search (star graph).
func BenchmarkFigure2ExtendedStar(b *testing.B) {
	b.Run("analytic/Q12", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := HypercubeExtendedStar(12, int32(i&4095)); err != nil {
				b.Fatal(err)
			}
		}
	})
	st := NewStar(7)
	b.Run("search/S7", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := FindExtendedStar(st.Graph(), int32(i%st.Graph().N()), 6); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationCertify regenerates ablation A1 (gap G1): the scan
// certificate vs the paper's contributor certificate on enlarged parts.
func BenchmarkAblationCertify(b *testing.B) {
	nw := NewHypercube(10)
	d := nw.Diagnosability()
	big, err := nw.Parts(2*d+2, d+1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("scan/Q10", func(b *testing.B) { benchDiagnose(b, nw, Options{Strategy: StrategyScan}) })
	b.Run("paper2d2/Q10", func(b *testing.B) {
		benchDiagnose(b, nw, Options{Strategy: StrategyPaper, Parts: big})
	})
}

// BenchmarkAblationParallel regenerates ablation A2.
func BenchmarkAblationParallel(b *testing.B) {
	nw := NewHypercube(13)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers%d/Q13", workers), func(b *testing.B) {
			benchDiagnose(b, nw, Options{Workers: workers})
		})
	}
}

// BenchmarkAblationBehaviour regenerates ablation A3.
func BenchmarkAblationBehaviour(b *testing.B) {
	nw := NewHypercube(10)
	g := nw.Graph()
	for _, behavior := range AllBehaviors(5) {
		b.Run(behavior.Name()+"/Q10", func(b *testing.B) {
			F := RandomFaults(g.N(), nw.Diagnosability(), rand.New(rand.NewSource(6)))
			s := NewLazySyndrome(F, behavior)
			for i := 0; i < b.N; i++ {
				got, _, err := Diagnose(nw, s)
				if err != nil || !got.Equal(F) {
					b.Fatal("diagnosis failed")
				}
			}
		})
	}
}

// BenchmarkTestScheduling regenerates experiment T13: packing the
// demand-driven test set vs the full syndrome into one-port slots.
func BenchmarkTestScheduling(b *testing.B) {
	nw := NewHypercube(10)
	g := nw.Graph()
	F := RandomFaults(g.N(), 10, rand.New(rand.NewSource(12)))
	rec := NewTestRecorder(NewLazySyndrome(F, Mimic{}))
	if _, _, err := Diagnose(nw, rec); err != nil {
		b.Fatal(err)
	}
	demand := rec.Tests()
	full := FullSyndromeTests(g)
	b.Run("demand/Q10", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := ScheduleTests(demand, g.N())
			if p.Rounds() == 0 {
				b.Fatal("empty plan")
			}
		}
	})
	b.Run("full/Q10", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := ScheduleTests(full, g.N())
			if p.Rounds() == 0 {
				b.Fatal("empty plan")
			}
		}
	})
}

// BenchmarkCampaignSweep regenerates experiment T14's machinery.
func BenchmarkCampaignSweep(b *testing.B) {
	nw := NewHypercube(7)
	for i := 0; i < b.N; i++ {
		points := CampaignSweep(nw, CampaignConfig{
			MinFaults: 6, MaxFaults: 9, Trials: 8, Seed: int64(i),
		})
		if len(points) != 4 {
			b.Fatal("bad sweep")
		}
	}
}

// BenchmarkSetBuilderOnly isolates the core procedure (final pass cost).
func BenchmarkSetBuilderOnly(b *testing.B) {
	for _, n := range []int{10, 12, 14} {
		nw := NewHypercube(n)
		g := nw.Graph()
		F := RandomFaults(g.N(), n, rand.New(rand.NewSource(7)))
		s := NewLazySyndrome(F, Mimic{})
		// A healthy seed.
		seed := int32(0)
		for F.Contains(int(seed)) {
			seed++
		}
		b.Run(fmt.Sprintf("Q%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := SetBuilder(g, s, seed, n, nil)
				if r.U.Count() == 0 {
					b.Fatal("empty result")
				}
			}
		})
	}
}

// BenchmarkVerificationFallback covers the partition-free extension used
// for gap G3 instances such as S(6,2).
func BenchmarkVerificationFallback(b *testing.B) {
	nk := NewNKStar(6, 2)
	g := nk.Graph()
	F := RandomFaults(g.N(), 5, rand.New(rand.NewSource(8)))
	s := NewLazySyndrome(F, Mimic{})
	for i := 0; i < b.N; i++ {
		got, err := DiagnoseWithVerification(g, 5, s)
		if err != nil || !got.Equal(F) {
			b.Fatal("verification fallback failed")
		}
	}
}
