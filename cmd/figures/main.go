// Command figures regenerates the paper's two structural figures as
// verified ASCII renderings:
//
//	figures -fig 1    Fig. 1 — cycles joined by matchings (Yang's view)
//	figures -fig 2    Fig. 2 — an extended star (Chiang–Tan's view)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"comparisondiag/internal/baseline"
	"comparisondiag/internal/topology"
)

func main() {
	fig := flag.Int("fig", 1, "figure number (1 or 2)")
	flag.Parse()
	switch *fig {
	case 1:
		figure1()
	case 2:
		figure2()
	default:
		fmt.Fprintln(os.Stderr, "figures: -fig must be 1 or 2")
		os.Exit(2)
	}
}

// figure1 prints the decomposition of Q5 into four Gray cycles of Q3
// subcubes, joined by perfect matchings in the shape of Q2 — four
// cycles connected in the shape of a cycle, exactly the paper's Fig. 1.
func figure1() {
	fmt.Println("Fig. 1 — Q5 as 4 node-disjoint Gray cycles of Q3 subcubes,")
	fmt.Println("joined by perfect matchings in the shape of Q2 (a 4-cycle):")
	fmt.Println()
	dec, err := baseline.NewCycleDecomposition(5, 3)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for c, cyc := range dec.Cycles {
		labels := make([]string, len(cyc))
		for i, u := range cyc {
			labels[i] = fmt.Sprintf("%05b", u)
		}
		fmt.Printf("  cycle %d (subcube %02b): %s -> (wraps)\n", c, c, strings.Join(labels, " -> "))
	}
	fmt.Println()
	fmt.Println("  matchings (dotted edges of Fig. 1):")
	for c1 := 0; c1 < len(dec.Cycles); c1++ {
		for c2 := c1 + 1; c2 < len(dec.Cycles); c2++ {
			m := dec.Matching(c1, c2)
			if m == nil {
				continue
			}
			fmt.Printf("    cycles %d-%d: %d matched pairs, e.g. %05b—%05b\n",
				c1, c2, len(m), m[0][0], m[0][1])
		}
	}
	fmt.Println()
	fmt.Println("  shape of the cycle graph on subcube indices: 00 - 01 - 11 - 10 - 00")
}

// figure2 prints an extended star rooted at a hypercube node and at a
// star-graph node, the structure Chiang and Tan's algorithm needs at
// every node.
func figure2() {
	fmt.Println("Fig. 2 — extended stars (root x, n disjoint branches of 4 nodes):")
	fmt.Println()
	es, err := baseline.HypercubeExtendedStar(6, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("  Q6 rooted at 000000 (analytic construction):")
	for i, br := range es.Branches {
		fmt.Printf("    branch %d: x -> %06b -> %06b -> %06b -> %06b\n",
			i, br[0], br[1], br[2], br[3])
	}
	fmt.Println()
	st := topology.NewStar(5)
	es2, err := baseline.FindExtendedStar(st.Graph(), 0, st.Diagnosability())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("  S5 rooted at node 0 (search-based construction):")
	for i, br := range es2.Branches {
		fmt.Printf("    branch %d: x -> %d -> %d -> %d -> %d\n",
			i, br[0], br[1], br[2], br[3])
	}
	fmt.Println()
	fmt.Println("  (only tests by the first three branch nodes are consulted per branch)")
}
