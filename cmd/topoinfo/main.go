// Command topoinfo prints the structural and diagnosis metadata of an
// interconnection network: size, degree, claimed connectivity and
// diagnosability, the Theorem 1 partition it would use, and (for small
// instances, on request) exactly computed connectivity and
// diagnosability.
//
// Usage:
//
//	topoinfo -net cq:8
//	topoinfo -net q:4 -verify     # exact κ and δ (small graphs only)
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"comparisondiag/internal/baseline"
	"comparisondiag/internal/core"
	"comparisondiag/internal/graph"
	"comparisondiag/internal/topology"
)

// fmtBytes renders a byte count with a binary-unit suffix.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%d B", b)
}

func main() {
	netSpec := flag.String("net", "q:8", "network spec (see topology.Parse)")
	verify := flag.Bool("verify", false, "compute exact κ (≤ ~3000 nodes) and δ (≤ 64 nodes)")
	list := flag.Bool("list", false, "list the supported families and exit")
	flag.Parse()

	if *list {
		fmt.Printf("%-8s %-32s %-22s %-10s %s\n", "spec", "family", "params", "δ", "example")
		for _, fam := range topology.Catalog() {
			fmt.Printf("%-8s %-32s %-22s %-10s %s\n",
				fam.Spec, fam.Name, fam.Params, fam.DeltaFormula, fam.Example)
		}
		return
	}

	nw, err := topology.Parse(*netSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	g := nw.Graph()
	fmt.Printf("network         %s\n", nw.Name())
	fmt.Printf("nodes           %d\n", g.N())
	fmt.Printf("edges           %d\n", g.M())
	fmt.Printf("degree          min %d, max %d\n", g.MinDegree(), g.MaxDegree())
	fmt.Printf("connectivity κ  %d (literature)\n", nw.Connectivity())
	fmt.Printf("diagnosable δ   %d (literature)\n", nw.Diagnosability())

	// Algebraic structure: what the family declares (or a from-scratch
	// probe finds), and which final-pass kernel an engine binds from it.
	var declared graph.CayleyDescriptor
	if cs, ok := nw.(topology.CayleyStructured); ok && cs.CayleyStructure() != nil {
		declared = cs.CayleyStructure()
		fmt.Printf("structure       %s (declared)\n", declared)
	} else if desc, ok := graph.DetectXORCayley(g); ok {
		fmt.Printf("structure       %s (detected)\n", desc)
	} else {
		fmt.Println("structure       none (node-dependent edge rule)")
	}
	fmt.Printf("engine kernel   %s\n", core.NewEngine(nw).KernelName())

	// Adjacency memory model: what the CSR arrays cost at this size, and
	// what an implicit (descriptor-bound, see core.NewCayleyEngine and
	// docs/scale.md) engine would hold instead.
	csrBytes := graph.CSRFootprintBytes(g.N(), g.M())
	fmt.Printf("csr memory      %s (offset + target arrays)\n", fmtBytes(csrBytes))
	if declared != nil {
		if ca, err := graph.NewCayleyAdjacency(declared); err == nil {
			fmt.Printf("implicit memory %s (descriptor only, %.0fx below CSR; node-count independent)\n",
				fmtBytes(ca.FootprintBytes()), float64(csrBytes)/float64(ca.FootprintBytes()))
		}
	}
	// Serving-side scratch: the dense per-node diagnosis arrays every
	// worker pins (see core.Scratch) — an engine's steady-state memory is
	// adjacency + this figure × its scratch-pool size.
	fmt.Printf("scratch memory  %s per serving worker (dense per-node arrays; × pool size)\n",
		fmtBytes(core.ScratchFootprintBytes(g.N())))

	d := nw.Diagnosability()
	parts, err := nw.Parts(d+1, d+1)
	switch {
	case errors.Is(err, topology.ErrNoPartition):
		fmt.Printf("partition       infeasible: N=%d < (δ+1)²=%d or granularities misaligned (gap G3)\n",
			g.N(), (d+1)*(d+1))
	case err != nil:
		fmt.Printf("partition       error: %v\n", err)
	default:
		minSz, maxSz := len(parts[0].Nodes), len(parts[0].Nodes)
		for _, p := range parts {
			if len(p.Nodes) < minSz {
				minSz = len(p.Nodes)
			}
			if len(p.Nodes) > maxSz {
				maxSz = len(p.Nodes)
			}
		}
		fmt.Printf("partition       %d parts, sizes %d..%d (need > δ=%d each, > δ parts)\n",
			len(parts), minSz, maxSz, d)
	}

	if *verify {
		if g.N() <= 3000 {
			kappa := g.VertexConnectivity()
			match := "agrees"
			if kappa != nw.Connectivity() {
				match = "DISAGREES with literature"
			}
			fmt.Printf("exact κ         %d (%s)\n", kappa, match)
		} else {
			fmt.Println("exact κ         skipped (too large)")
		}
		if g.N() <= 64 {
			res, err := baseline.Diagnosability(g, g.MinDegree()+1)
			if err != nil {
				fmt.Printf("exact δ         error: %v\n", err)
			} else {
				match := "agrees"
				if res.Delta != nw.Diagnosability() {
					match = "DISAGREES with literature formula (often a small-size exception)"
				}
				fmt.Printf("exact δ         %d (%s)\n", res.Delta, match)
				if res.Delta < nw.Diagnosability() {
					fmt.Printf("witness         F1=%#x F2=%#x are indistinguishable\n", res.Witness1, res.Witness2)
				}
			}
		} else {
			fmt.Println("exact δ         skipped (needs ≤ 64 nodes)")
		}
	}
}
