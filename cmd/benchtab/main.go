// Command benchtab regenerates the paper's evaluation artefacts as
// plain-text tables — one per experiment in DESIGN.md §4 — and, in
// -json mode, the repository's perf-trajectory baseline.
//
// Usage:
//
//	benchtab -table all          # every experiment (default)
//	benchtab -table t2           # Theorem 2 sweep only
//	benchtab -table t9 -full     # enlarged sweep
//	benchtab -json BENCH_1.json  # run the perf suite, write JSON baseline
//	benchtab -compare OLD NEW    # gate: shared cases must not regress lookups/op
//	benchtab -quick              # smoke subset for PR CI (bench.sh -quick)
//
// Table ids: t2..t12 (paper claims), a1..a3 (repository ablations).
//
// The -json mode runs the fixed benchmark suite of internal/perf
// (ns/op, lookups/op, allocs/op per experiment) and writes it to the
// given file; bench.sh wraps it so each PR can commit a BENCH_<n>.json
// and be compared against its predecessors.
//
// The -compare mode loads two such files and fails (exit 1) when any
// case present in both regressed its lookups/op — the deterministic
// half of the perf trajectory, which verify.sh chains across every
// committed BENCH_*.json. ns/op is reported but not gated (it is
// machine-dependent).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"comparisondiag/internal/experiments"
	"comparisondiag/internal/perf"
)

func main() {
	table := flag.String("table", "all", "experiment id (t2..t12, a1..a3, or 'all')")
	full := flag.Bool("full", false, "run the enlarged sweeps (slower)")
	jsonOut := flag.String("json", "", "run the perf regression suite and write JSON to this file ('-' for stdout)")
	compare := flag.Bool("compare", false, "compare two BENCH_*.json files (args: OLD NEW); exit 1 if a shared case regressed lookups/op")
	quick := flag.Bool("quick", false, "run the smoke perf subset (small graphs, seconds not minutes) and print a table")
	flag.Parse()

	if *quick {
		rep := perf.QuickSuite()
		fmt.Printf("%-28s %14s %14s %10s %12s\n", "case", "ns/op", "lookups/op", "allocs/op", "bytes/op")
		for _, r := range rep.Results {
			fmt.Printf("%-28s %14.0f %14.0f %10d %12d\n", r.Name, r.NsPerOp, r.LookupsPerOp, r.AllocsPerOp, r.BytesPerOp)
		}
		return
	}

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchtab -compare OLD.json NEW.json")
			os.Exit(2)
		}
		if !compareReports(flag.Arg(0), flag.Arg(1)) {
			os.Exit(1)
		}
		return
	}

	if *jsonOut != "" {
		rep := perf.Suite()
		w := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := rep.Write(w); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if strings.EqualFold(*table, "all") {
		for _, t := range experiments.All(*full) {
			t.Fprint(os.Stdout)
		}
		return
	}
	for _, id := range strings.Split(*table, ",") {
		t, err := experiments.ByID(strings.TrimSpace(id), *full)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		t.Fprint(os.Stdout)
	}
}

// loadReport reads one serialised perf report.
func loadReport(path string) (*perf.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return perf.Read(f)
}

// compareReports prints old-vs-new for every case shared by the two
// reports and returns false when any of them regressed a deterministic
// column: lookups/op (fixed seeds, fixed suite, so strictly more
// consultations than the predecessor baseline fails) and, for cases the
// predecessor ran allocation-free, allocs/op — a warm path that was at
// 0 allocs/op is a contract, not a measurement, and any allocation
// appearing on it fails. ns/op and bytes/op are reported but not gated
// (machine- and allocator-dependent).
func compareReports(oldPath, newPath string) bool {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	oldBy := make(map[string]perf.Result, len(oldRep.Results))
	for _, r := range oldRep.Results {
		oldBy[r.Name] = r
	}
	fmt.Printf("comparing %s -> %s\n", oldPath, newPath)
	fmt.Printf("%-34s %14s %14s %12s %12s %11s\n", "case", "lookups(old)", "lookups(new)", "allocs(o→n)", "verdict", "ns/op Δ")
	ok := true
	shared := 0
	for _, nr := range newRep.Results {
		or, found := oldBy[nr.Name]
		if !found {
			continue
		}
		shared++
		verdict := "ok"
		if nr.LookupsPerOp > or.LookupsPerOp {
			verdict = "REGRESSED"
			ok = false
		}
		if or.AllocsPerOp == 0 && nr.AllocsPerOp > 0 {
			verdict = "ALLOCS"
			ok = false
		}
		nsDelta := "-"
		if or.NsPerOp > 0 {
			nsDelta = fmt.Sprintf("%+.1f%%", 100*(nr.NsPerOp-or.NsPerOp)/or.NsPerOp)
		}
		fmt.Printf("%-34s %14.0f %14.0f %12s %12s %11s\n", nr.Name, or.LookupsPerOp, nr.LookupsPerOp,
			fmt.Sprintf("%d→%d", or.AllocsPerOp, nr.AllocsPerOp), verdict, nsDelta)
	}
	if shared == 0 {
		fmt.Fprintln(os.Stderr, "benchtab: no shared cases between the two reports")
		os.Exit(2)
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "benchtab: deterministic columns regressed vs predecessor baseline (lookups/op, or allocs on a previously allocation-free case)")
	}
	return ok
}
