// Command benchtab regenerates the paper's evaluation artefacts as
// plain-text tables — one per experiment in DESIGN.md §4.
//
// Usage:
//
//	benchtab -table all          # every experiment (default)
//	benchtab -table t2           # Theorem 2 sweep only
//	benchtab -table t9 -full     # enlarged sweep
//
// Table ids: t2..t12 (paper claims), a1..a3 (repository ablations).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"comparisondiag/internal/experiments"
)

func main() {
	table := flag.String("table", "all", "experiment id (t2..t12, a1..a3, or 'all')")
	full := flag.Bool("full", false, "run the enlarged sweeps (slower)")
	flag.Parse()

	if strings.EqualFold(*table, "all") {
		for _, t := range experiments.All(*full) {
			t.Fprint(os.Stdout)
		}
		return
	}
	for _, id := range strings.Split(*table, ",") {
		t, err := experiments.ByID(strings.TrimSpace(id), *full)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		t.Fprint(os.Stdout)
	}
}
