// Command benchtab regenerates the paper's evaluation artefacts as
// plain-text tables — one per experiment in DESIGN.md §4 — and, in
// -json mode, the repository's perf-trajectory baseline.
//
// Usage:
//
//	benchtab -table all          # every experiment (default)
//	benchtab -table t2           # Theorem 2 sweep only
//	benchtab -table t9 -full     # enlarged sweep
//	benchtab -json BENCH_1.json  # run the perf suite, write JSON baseline
//
// Table ids: t2..t12 (paper claims), a1..a3 (repository ablations).
//
// The -json mode runs the fixed benchmark suite of internal/perf
// (ns/op, lookups/op, allocs/op per experiment) and writes it to the
// given file; bench.sh wraps it so each PR can commit a BENCH_<n>.json
// and be compared against its predecessors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"comparisondiag/internal/experiments"
	"comparisondiag/internal/perf"
)

func main() {
	table := flag.String("table", "all", "experiment id (t2..t12, a1..a3, or 'all')")
	full := flag.Bool("full", false, "run the enlarged sweeps (slower)")
	jsonOut := flag.String("json", "", "run the perf regression suite and write JSON to this file ('-' for stdout)")
	flag.Parse()

	if *jsonOut != "" {
		rep := perf.Suite()
		w := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := rep.Write(w); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if strings.EqualFold(*table, "all") {
		for _, t := range experiments.All(*full) {
			t.Fprint(os.Stdout)
		}
		return
	}
	for _, id := range strings.Split(*table, ",") {
		t, err := experiments.ByID(strings.TrimSpace(id), *full)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		t.Fprint(os.Stdout)
	}
}
