// Command diagnose builds an interconnection network, injects a fault
// set, generates an MM-model syndrome and runs the paper's diagnosis
// algorithm, reporting the result and its cost profile.
//
// Usage:
//
//	diagnose -net q:10 -faults 10 -behavior mimic -seed 42
//	diagnose -net star:7 -faults 6 -pattern cluster
//	diagnose -net nkstar:6,2 -faults 3          # verification fallback
//	diagnose -net q:14 -trials 64 -workers 4    # batch via the runtime
//	diagnose -net q:14 -trials 64 -cache 256    # + result cache stats
//	diagnose -net q:14 -faults 8 -final-workers 4   # parallel final pass
//	diagnose -net q:14 -trials 64 -shards 2 -workers 2  # sharded runtime
//	diagnose -net q:10 -flap 3                  # 3 remove-restore cycles
//	diagnose -net q:10 -churn-nodes 5,17        # remove exactly those nodes
//	diagnose -net q:10 -flap 3 -churn-nodes 5,17    # cycle an explicit set
//
// The churn-mode flags are mutually exclusive where they contradict:
// -churn picks random victims while -churn-nodes names them, and
// -churn's one-shot removal contradicts -flap's remove-restore cycles,
// so either combination is a usage error.
//
// Patterns: random (default), cluster (BFS ball around node 0),
// neighborhood (the extremal N(center) configuration).
//
// With -trials > 1 the command binds a core.Engine and a persistent
// campaign.Runtime to the network once, generates that many independent
// syndromes, diagnoses them on the runtime's worker pool and reports
// aggregate throughput (diagnoses/sec), result-cache hit rates (-cache)
// and the per-worker trial distribution beside the per-syndrome
// verdicts. -share-cert additionally groups syndromes by fault
// hypothesis so each group's part certification runs once, and
// -share-final shares each group's behaviour-independent final-pass
// prefix (see docs/runtime.md).
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/campaign"
	"comparisondiag/internal/core"
	"comparisondiag/internal/graph"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

func main() {
	netSpec := flag.String("net", "q:10", "network spec (see topology.Parse)")
	faults := flag.Int("faults", -1, "number of faults to inject (-1 = δ)")
	behaviorName := flag.String("behavior", "mimic", "faulty tester behaviour: allzero|allone|mimic|inverted|random")
	pattern := flag.String("pattern", "random", "fault placement: random|cluster|neighborhood")
	seed := flag.Int64("seed", 1, "PRNG seed")
	workers := flag.Int("workers", 1, "parallel part certification; with -trials > 1, the runtime worker-pool size (-1 = GOMAXPROCS; clamped to it)")
	bound := flag.Int("bound", 0, "known fault bound t < δ (0 = use δ)")
	paper := flag.Bool("paper-certificate", false, "use the paper's literal contributor certificate (see gap G1)")
	trials := flag.Int("trials", 1, "number of syndromes to diagnose; > 1 serves them through a persistent campaign.Runtime")
	cacheCap := flag.Int("cache", 0, "with -trials > 1: result-cache capacity (0 = off); repeated syndromes replay without diagnosis")
	shareCert := flag.Bool("share-cert", false, "with -trials > 1: share part certification across syndromes of one fault hypothesis")
	shareFinal := flag.Bool("share-final", false, "with -trials > 1: share the behaviour-independent final-pass prefix across syndromes of one fault hypothesis")
	cacheAdmission := flag.Bool("cache-admission", false, "with -cache: admit a result only on its second sighting (scan-resistant admission)")
	churn := flag.Int("churn", 0, "remove this many random nodes and rebind the engine before diagnosing (degraded mode; routes through the engine even for one trial; contradicts -churn-nodes and -flap)")
	churnNodes := flag.String("churn-nodes", "", "comma-separated node ids to remove (one-shot explicit churn), or the set each -flap cycle removes; contradicts -churn")
	flap := flag.Int("flap", 0, "run this many remove-restore cycles before serving: each cycle removes nodes (the -churn-nodes list, default 4 random picks), rebinds, restores them and rebinds again, reporting both rebinds; contradicts -churn")
	finalWorkers := flag.Int("final-workers", 0, "parallel final Set_Builder pass workers on large graphs (0 or 1 = sequential; -1 = GOMAXPROCS); the effective fan-out is reported")
	shards := flag.Int("shards", 1, "with -trials > 1: engine shards of the runtime, each with its own scratch pool and -workers workers")
	flag.Parse()

	// Reject nonsense before any work: a zero or negative trial count, a
	// zero worker pool (0 workers can serve nothing; -1 means
	// GOMAXPROCS), or a negative churn amount.
	if *trials <= 0 {
		fmt.Fprintf(os.Stderr, "usage: -trials must be >= 1, got %d\n", *trials)
		os.Exit(2)
	}
	if *workers == 0 || *workers < -1 {
		fmt.Fprintf(os.Stderr, "usage: -workers must be >= 1 or -1 for GOMAXPROCS, got %d\n", *workers)
		os.Exit(2)
	}
	if *churn < 0 {
		fmt.Fprintf(os.Stderr, "usage: -churn must be >= 0, got %d\n", *churn)
		os.Exit(2)
	}
	if *flap < 0 {
		fmt.Fprintf(os.Stderr, "usage: -flap must be >= 0, got %d\n", *flap)
		os.Exit(2)
	}
	// The churn-mode flags must name exactly one removal mode; a count
	// AND an explicit list (or a one-shot removal and a cycle count) in
	// one invocation is contradictory, and silently honouring one of
	// them diagnoses a network the user didn't ask for.
	if err := churnModeError(*churn, *flap, *churnNodes); err != nil {
		fmt.Fprintf(os.Stderr, "usage: %v\n", err)
		os.Exit(2)
	}
	// Parse -churn-nodes before touching any graph: a malformed or
	// out-of-range id is a usage error here, not a panic deep inside
	// graph.Remove.
	var churnList []int32
	if *churnNodes != "" {
		for _, fld := range strings.Split(*churnNodes, ",") {
			fld = strings.TrimSpace(fld)
			id, err := strconv.Atoi(fld)
			if err != nil {
				fmt.Fprintf(os.Stderr, "usage: bad -churn-nodes entry %q: %v\n", fld, err)
				os.Exit(2)
			}
			churnList = append(churnList, int32(id))
		}
	}
	if *finalWorkers < -1 {
		fmt.Fprintf(os.Stderr, "usage: -final-workers must be >= 0 or -1 for GOMAXPROCS, got %d\n", *finalWorkers)
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "usage: -shards must be >= 1, got %d\n", *shards)
		os.Exit(2)
	}
	if *shards > 1 && *trials <= 1 {
		fmt.Fprintf(os.Stderr, "usage: -shards > 1 needs -trials > 1 (a sharded runtime serves batches)\n")
		os.Exit(2)
	}
	if *shards > 1 && (*churn > 0 || len(churnList) > 0) {
		fmt.Fprintf(os.Stderr, "usage: -shards > 1 cannot be combined with churn (churn rebinds one engine)\n")
		os.Exit(2)
	}
	if *shards > 1 && *flap > 0 {
		fmt.Fprintf(os.Stderr, "usage: -shards > 1 cannot be combined with -flap (flap cycles rebind one engine)\n")
		os.Exit(2)
	}
	switch strings.ToLower(*pattern) {
	case "random", "cluster", "neighborhood":
	default:
		fmt.Fprintf(os.Stderr, "usage: unknown pattern %q (want random|cluster|neighborhood)\n", *pattern)
		os.Exit(2)
	}

	nw, err := topology.Parse(*netSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "usage: bad -net spec: %v\n", err)
		os.Exit(2)
	}
	g := nw.Graph()
	delta := nw.Diagnosability()
	for _, u := range churnList {
		if u < 0 || int(u) >= g.N() {
			fmt.Fprintf(os.Stderr, "usage: -churn-nodes id %d out of range for %s (N=%d)\n", u, nw.Name(), g.N())
			os.Exit(2)
		}
	}
	nFaults := *faults
	if nFaults < 0 {
		nFaults = delta
	}
	if nFaults > delta {
		fmt.Fprintf(os.Stderr, "warning: %d faults exceed δ = %d; diagnosis is not guaranteed\n", nFaults, delta)
	}

	// makeFaults builds trial i's fault set on graph fg with n faults —
	// parameterised because a churned engine serves a smaller graph
	// under a smaller bound than the network it was bound to. Trial 0
	// reproduces the single-diagnosis placements exactly (cluster around
	// node 0, neighbourhood of the middle node); later batch trials move
	// the centre so every syndrome is a distinct case.
	makeFaults := func(fg *graph.Graph, n, i int) *bitset.Set {
		switch strings.ToLower(*pattern) {
		case "cluster":
			return syndrome.ClusterFaults(fg, int32(i%fg.N()), n)
		case "neighborhood":
			return syndrome.NeighborhoodFaults(fg, int32((fg.N()/2+i)%fg.N()), n)
		default: // "random", validated above
			return syndrome.RandomFaults(fg.N(), n, rand.New(rand.NewSource(*seed+int64(i))))
		}
	}

	behavior, err := syndrome.ParseBehavior(*behaviorName, uint64(*seed))
	if err != nil {
		fmt.Fprintf(os.Stderr, "usage: %v\n", err)
		os.Exit(2)
	}

	fmt.Printf("network     %s: N=%d, M=%d, Δ=%d, κ=%d, δ=%d\n",
		nw.Name(), g.N(), g.M(), g.MaxDegree(), nw.Connectivity(), delta)

	if *trials > 1 || *churn > 0 || *flap > 0 || len(churnList) > 0 {
		opt := core.Options{FaultBound: *bound, FinalWorkers: *finalWorkers}
		if *paper {
			opt.Strategy = core.StrategyPaper
		}
		if *cacheCap > 0 {
			opt.ResultCache = core.NewResultCacheWithAdmission(*cacheCap, *cacheAdmission)
		}
		runBatch(nw, behavior, makeFaults, *trials, *workers, *shards, *churn, *flap, churnList, *seed, nFaults, opt, *shareCert, *shareFinal)
		return
	}

	F := makeFaults(g, nFaults, 0)
	fmt.Printf("injected    %d faults (%s, %s testers): %v\n", F.Count(), *pattern, behavior.Name(), F)

	opt := core.Options{Workers: *workers, FaultBound: *bound, FinalWorkers: *finalWorkers}
	if *paper {
		opt.Strategy = core.StrategyPaper
	}
	s := syndrome.NewLazy(F, behavior)
	start := time.Now()
	got, stats, err := core.DiagnoseOpts(nw, s, opt)
	elapsed := time.Since(start)

	if errors.Is(err, topology.ErrNoPartition) {
		fmt.Println("partition   infeasible for Theorem 1 — falling back to verification")
		start = time.Now()
		got, err = core.DiagnoseWithVerification(g, delta, s)
		elapsed = time.Since(start)
		if err != nil {
			fmt.Fprintln(os.Stderr, "diagnosis failed:", err)
			os.Exit(1)
		}
		fmt.Printf("diagnosed   %v in %v (verification fallback)\n", got, elapsed)
	} else if err != nil {
		fmt.Fprintln(os.Stderr, "diagnosis failed:", err)
		os.Exit(1)
	} else {
		fmt.Printf("diagnosed   %v in %v\n", got, elapsed)
		fmt.Printf("cost        parts scanned=%d, healthy set=%d, rounds=%d\n",
			stats.PartsScanned, stats.HealthyCount, stats.Rounds)
		fmt.Printf("lookups     cert=%d final=%d total=%d (full table would be %d)\n",
			stats.CertLookups, stats.FinalLookups, stats.TotalLookups, syndrome.TableSize(g))
		if stats.FinalWorkersUsed > 0 {
			fmt.Printf("final pass  %d workers effective (requested %d)\n", stats.FinalWorkersUsed, *finalWorkers)
		}
	}

	if got.Equal(F) {
		fmt.Println("verdict     EXACT — diagnosed set equals injected set")
	} else {
		fmt.Println("verdict     MISMATCH")
		os.Exit(1)
	}
}

// churnModeError rejects contradictory churn-mode flag combinations.
// Exactly one removal mode may drive a run: -churn k (one-shot, k
// random victims), -churn-nodes list (one-shot, exactly those nodes),
// -flap n (n remove-restore cycles of 4 random picks), or -flap n with
// -churn-nodes (cycles of the explicit set). -churn with -churn-nodes
// gives two different victim sets, and -churn with -flap two different
// removal shapes — honouring either silently would diagnose a network
// the user didn't ask for.
func churnModeError(churn, flap int, churnNodes string) error {
	if churn > 0 && churnNodes != "" {
		return errors.New("-churn picks random victims but -churn-nodes names them; drop -churn to remove exactly the listed nodes")
	}
	if churn > 0 && flap > 0 {
		return errors.New("-churn (one-shot removal) contradicts -flap (remove-restore cycles); use -flap with -churn-nodes to control the cycled set")
	}
	return nil
}

// runBatch binds an Engine (or, with shards > 1, one engine per shard)
// and a persistent campaign.Runtime to the network, optionally churns
// the engine (remove nodes + incremental rebind) or flaps it
// (remove-restore cycles, both rebinds reported) first, diagnoses
// `trials` independent syndromes through the runtime's worker pool and
// reports aggregate throughput, cache effectiveness, degraded-mode
// status and the worker-pool trial distribution.
func runBatch(nw topology.Network, behavior syndrome.Behavior, makeFaults func(*graph.Graph, int, int) *bitset.Set, trials, workers, shards, churn, flap int, churnList []int32, seed int64, nFaults int, opt core.Options, shareCert, shareFinal bool) {
	engines := make([]*core.Engine, shards)
	for i := range engines {
		engines[i] = core.NewEngine(nw)
	}
	eng := engines[0]
	if err := eng.PartsErr(); err != nil {
		fmt.Fprintln(os.Stderr, "batch mode needs a Theorem 1 partition:", err)
		os.Exit(1)
	}
	var caches []*core.ResultCache
	if opt.ResultCache != nil {
		caches = append(caches, opt.ResultCache)
	}
	rng := rand.New(rand.NewSource(seed))
	// pickNodes draws k distinct nodes of g, or hands back the explicit
	// -churn-nodes list (already range-checked against the full network;
	// re-checked here because a churned engine serves a smaller graph).
	pickNodes := func(g *graph.Graph, k int) []int32 {
		if churnList != nil {
			for _, u := range churnList {
				if int(u) >= g.N() {
					fmt.Fprintf(os.Stderr, "usage: -churn-nodes id %d out of range for the current %d-node graph\n", u, g.N())
					os.Exit(2)
				}
			}
			return churnList
		}
		picked := make(map[int32]bool, k)
		gone := make([]int32, 0, k)
		for len(gone) < k {
			u := int32(rng.Intn(g.N()))
			if !picked[u] {
				picked[u] = true
				gone = append(gone, u)
			}
		}
		return gone
	}
	if flap > 0 {
		// -churn and -flap are mutually exclusive (churnModeError), so a
		// cycle removes the explicit -churn-nodes list or 4 random picks.
		size := len(churnList)
		if size == 0 {
			size = 4
		}
		if size >= eng.Graph().N() {
			fmt.Fprintf(os.Stderr, "usage: a flap cycle of %d nodes would remove the whole %d-node network\n", size, eng.Graph().N())
			os.Exit(2)
		}
		for cycle := 1; cycle <= flap; cycle++ {
			gone := pickNodes(eng.Graph(), size)
			rr := eng.Graph().Remove(gone, nil)
			repDown, err := eng.Rebind(rr, caches...)
			if err != nil {
				fmt.Fprintf(os.Stderr, "flap cycle %d: removal rebind failed: %v\n", cycle, err)
				os.Exit(1)
			}
			fmt.Printf("flap %d/%d    down: %s\n", cycle, flap, repDown)
			repUp, err := eng.Rebind(graph.Restore(rr, gone, nil), caches...)
			if err != nil {
				fmt.Fprintf(os.Stderr, "flap cycle %d: growth rebind failed: %v\n", cycle, err)
				os.Exit(1)
			}
			fmt.Printf("flap %d/%d    up:   %s\n", cycle, flap, repUp)
		}
		if eng.Degraded() {
			fmt.Printf("flap        %d cycles complete: engine still degraded (δ′=%d)\n", flap, eng.Diagnosability())
		} else {
			fmt.Printf("flap        %d cycles complete: engine recovered — δ=%d, kernel=%s\n", flap, eng.Diagnosability(), eng.KernelName())
		}
	} else if churn > 0 || churnList != nil {
		g := eng.Graph()
		removeCount := churn
		if churnList != nil {
			removeCount = len(churnList)
		}
		if removeCount >= g.N() {
			fmt.Fprintf(os.Stderr, "usage: removing %d nodes would remove the whole %d-node network\n", removeCount, g.N())
			os.Exit(2)
		}
		gone := pickNodes(g, removeCount)
		rep, err := eng.Rebind(g.RemoveNodes(gone), caches...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rebind failed:", err)
			os.Exit(1)
		}
		fmt.Printf("churn       %s\n", rep)
	}
	var rt *campaign.Runtime
	if shards > 1 {
		// Clamp the per-shard request like NewRuntime clamps a flat one,
		// but keep at least one worker per shard.
		per := core.ClampWorkers(workers)
		if per < 1 {
			per = 1
		}
		rt = campaign.NewShardedRuntime(engines, per)
	} else {
		rt = campaign.NewRuntime(eng, workers)
	}
	defer rt.Close()
	g := eng.Graph()
	delta := eng.Diagnosability()
	if nFaults > delta {
		fmt.Fprintf(os.Stderr, "warning: clamping %d faults to the engine's bound δ=%d\n", nFaults, delta)
		nFaults = delta
	}
	syns := make([]syndrome.Syndrome, trials)
	faults := make([]*bitset.Set, trials)
	for i := range syns {
		faults[i] = makeFaults(g, nFaults, i)
		syns[i] = syndrome.NewLazy(faults[i], behavior)
	}
	fmt.Printf("batch       %d syndromes, %d faults each (%s testers), %d workers over %d shard(s), kernel=%s\n",
		trials, faults[0].Count(), behavior.Name(), rt.Workers(), len(rt.Engines()), eng.KernelName())

	start := time.Now()
	results := rt.DiagnoseBatch(syns, core.BatchOptions{ShareCertification: shareCert, ShareFinalPrefix: shareFinal, Options: opt})
	elapsed := time.Since(start)

	exact, failed := 0, 0
	var lookups, sharedPrefix int64
	fwUsed := 0
	for i, r := range results {
		switch {
		case r.Err != nil:
			fmt.Fprintf(os.Stderr, "syndrome %d: %v\n", i, r.Err)
			failed++
		case !r.Faults.Equal(faults[i]):
			fmt.Fprintf(os.Stderr, "syndrome %d: MISMATCH\n", i)
			failed++
		default:
			exact++
			lookups += r.Stats.TotalLookups
			sharedPrefix += r.Stats.SharedFinalLookups
			if r.Stats.FinalWorkersUsed > fwUsed {
				fwUsed = r.Stats.FinalWorkersUsed
			}
		}
	}
	perDiag := elapsed / time.Duration(trials)
	fmt.Printf("throughput  %v total, %v/diagnosis, %.0f diagnoses/sec\n",
		elapsed, perDiag, float64(trials)/elapsed.Seconds())
	if exact > 0 {
		fmt.Printf("lookups     avg %d per diagnosis\n", lookups/int64(exact))
	}
	if fwUsed > 0 {
		fmt.Printf("final pass  %d workers effective (requested %d)\n", fwUsed, opt.FinalWorkers)
	}
	if sharedPrefix > 0 {
		fmt.Printf("shared      %d final-prefix look-ups adopted from group representatives\n", sharedPrefix)
	}
	if opt.ResultCache != nil {
		cs := opt.ResultCache.Stats()
		fmt.Printf("cache       %d/%d hits (%.1f%%), %d entries (cap %d), %d evictions, %d admission bypasses\n",
			cs.Hits, cs.Hits+cs.Misses, 100*cs.HitRate(), cs.Entries, cs.Capacity, cs.Evictions, cs.Bypassed)
	}
	if eng.Degraded() {
		fmt.Printf("degraded    engine serves the surviving component under δ′=%d; results are stamped Stats.Degraded\n",
			eng.Diagnosability())
	}
	rs := rt.Stats()
	fmt.Printf("runtime     %d workers, %d jobs, trials/worker %v\n", rs.Workers, rs.Jobs, rs.Trials)
	fmt.Printf("verdict     %d exact, %d failed\n", exact, failed)
	if failed > 0 {
		os.Exit(1)
	}
}
