// Command diagnose builds an interconnection network, injects a fault
// set, generates an MM-model syndrome and runs the paper's diagnosis
// algorithm, reporting the result and its cost profile.
//
// Usage:
//
//	diagnose -net q:10 -faults 10 -behavior mimic -seed 42
//	diagnose -net star:7 -faults 6 -pattern cluster
//	diagnose -net nkstar:6,2 -faults 3          # verification fallback
//
// Patterns: random (default), cluster (BFS ball around node 0),
// neighborhood (the extremal N(center) configuration).
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/core"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

func main() {
	netSpec := flag.String("net", "q:10", "network spec (see topology.Parse)")
	faults := flag.Int("faults", -1, "number of faults to inject (-1 = δ)")
	behaviorName := flag.String("behavior", "mimic", "faulty tester behaviour: allzero|allone|mimic|inverted|random")
	pattern := flag.String("pattern", "random", "fault placement: random|cluster|neighborhood")
	seed := flag.Int64("seed", 1, "PRNG seed")
	workers := flag.Int("workers", 1, "parallel part certification (-1 = GOMAXPROCS)")
	bound := flag.Int("bound", 0, "known fault bound t < δ (0 = use δ)")
	paper := flag.Bool("paper-certificate", false, "use the paper's literal contributor certificate (see gap G1)")
	flag.Parse()

	nw, err := topology.Parse(*netSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	g := nw.Graph()
	delta := nw.Diagnosability()
	nFaults := *faults
	if nFaults < 0 {
		nFaults = delta
	}
	if nFaults > delta {
		fmt.Fprintf(os.Stderr, "warning: %d faults exceed δ = %d; diagnosis is not guaranteed\n", nFaults, delta)
	}

	rng := rand.New(rand.NewSource(*seed))
	var F *bitset.Set
	switch strings.ToLower(*pattern) {
	case "random":
		F = syndrome.RandomFaults(g.N(), nFaults, rng)
	case "cluster":
		F = syndrome.ClusterFaults(g, 0, nFaults)
	case "neighborhood":
		F = syndrome.NeighborhoodFaults(g, int32(g.N()/2), nFaults)
	default:
		fmt.Fprintf(os.Stderr, "unknown pattern %q\n", *pattern)
		os.Exit(2)
	}

	var behavior syndrome.Behavior
	switch strings.ToLower(*behaviorName) {
	case "allzero":
		behavior = syndrome.AllZero{}
	case "allone":
		behavior = syndrome.AllOne{}
	case "mimic":
		behavior = syndrome.Mimic{}
	case "inverted":
		behavior = syndrome.Inverted{}
	case "random":
		behavior = syndrome.Random{Seed: uint64(*seed)}
	default:
		fmt.Fprintf(os.Stderr, "unknown behaviour %q\n", *behaviorName)
		os.Exit(2)
	}

	fmt.Printf("network     %s: N=%d, M=%d, Δ=%d, κ=%d, δ=%d\n",
		nw.Name(), g.N(), g.M(), g.MaxDegree(), nw.Connectivity(), delta)
	fmt.Printf("injected    %d faults (%s, %s testers): %v\n", F.Count(), *pattern, behavior.Name(), F)

	opt := core.Options{Workers: *workers, FaultBound: *bound}
	if *paper {
		opt.Strategy = core.StrategyPaper
	}
	s := syndrome.NewLazy(F, behavior)
	start := time.Now()
	got, stats, err := core.DiagnoseOpts(nw, s, opt)
	elapsed := time.Since(start)

	if errors.Is(err, topology.ErrNoPartition) {
		fmt.Println("partition   infeasible for Theorem 1 — falling back to verification")
		start = time.Now()
		got, err = core.DiagnoseWithVerification(g, delta, s)
		elapsed = time.Since(start)
		if err != nil {
			fmt.Fprintln(os.Stderr, "diagnosis failed:", err)
			os.Exit(1)
		}
		fmt.Printf("diagnosed   %v in %v (verification fallback)\n", got, elapsed)
	} else if err != nil {
		fmt.Fprintln(os.Stderr, "diagnosis failed:", err)
		os.Exit(1)
	} else {
		fmt.Printf("diagnosed   %v in %v\n", got, elapsed)
		fmt.Printf("cost        parts scanned=%d, healthy set=%d, rounds=%d\n",
			stats.PartsScanned, stats.HealthyCount, stats.Rounds)
		fmt.Printf("lookups     cert=%d final=%d total=%d (full table would be %d)\n",
			stats.CertLookups, stats.FinalLookups, stats.TotalLookups, syndrome.TableSize(g))
	}

	if got.Equal(F) {
		fmt.Println("verdict     EXACT — diagnosed set equals injected set")
	} else {
		fmt.Println("verdict     MISMATCH")
		os.Exit(1)
	}
}
