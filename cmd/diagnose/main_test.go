package main

import "testing"

// TestChurnModeError pins the churn-mode flag matrix: every
// contradictory combination is rejected before any graph work, and
// every coherent mode — including -churn-nodes standing alone as a
// one-shot explicit removal — is accepted.
func TestChurnModeError(t *testing.T) {
	cases := []struct {
		name    string
		churn   int
		flap    int
		nodes   string
		wantErr bool
	}{
		{name: "no churn flags", churn: 0, flap: 0, nodes: "", wantErr: false},
		{name: "churn alone", churn: 2, flap: 0, nodes: "", wantErr: false},
		{name: "flap alone", churn: 0, flap: 3, nodes: "", wantErr: false},
		{name: "churn-nodes alone", churn: 0, flap: 0, nodes: "5,17", wantErr: false},
		{name: "flap with churn-nodes", churn: 0, flap: 3, nodes: "5,17", wantErr: false},
		{name: "churn with churn-nodes", churn: 2, flap: 0, nodes: "5,17", wantErr: true},
		{name: "churn with flap", churn: 2, flap: 3, nodes: "", wantErr: true},
		{name: "all three", churn: 2, flap: 3, nodes: "5,17", wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := churnModeError(tc.churn, tc.flap, tc.nodes)
			if (err != nil) != tc.wantErr {
				t.Fatalf("churnModeError(%d, %d, %q) = %v, wantErr = %v",
					tc.churn, tc.flap, tc.nodes, err, tc.wantErr)
			}
		})
	}
}
