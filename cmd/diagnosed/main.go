// Command diagnosed serves the paper's diagnosis algorithm over
// HTTP/JSON — the network edge of the engine stack. It holds a
// bounded registry of bound engines keyed by topology spec, coalesces
// concurrent /v1/diagnose requests into grouped Engine.DiagnoseBatch
// calls (so shared certification, shared final prefixes and the
// result cache engage automatically under overlapping traffic),
// streams campaign sweeps over /v1/campaign, and exports the stack's
// counters at /metrics in Prometheus text. See docs/service.md for
// the API and the coalescing soundness argument.
//
// Usage:
//
//	diagnosed [-addr 127.0.0.1:7133] [-registry 8] [-window 2ms]
//	          [-max-batch 64] [-workers N] [-cache 1024]
//	          [-preload q:14,implicit:q:20]
//
// Diagnose one hypothesis:
//
//	curl -X POST http://127.0.0.1:7133/v1/diagnose \
//	     -d '{"topology":"q:10","faults":[3,77],"behavior":"mimic"}'
//
// Stream a campaign:
//
//	curl -X POST http://127.0.0.1:7133/v1/campaign \
//	     -d '{"topology":"q:10","min_faults":0,"max_faults":12,"trials":200}'
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"comparisondiag/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7133", "listen address (host:port; port 0 picks a free port)")
	registryCap := flag.Int("registry", 8, "bound-engine LRU capacity")
	window := flag.Duration("window", 2*time.Millisecond, "coalescing window (0 disables coalescing)")
	maxBatch := flag.Int("max-batch", 64, "flush a window early at this many distinct pending requests")
	workers := flag.Int("workers", 0, "worker-pool size per engine (0 = GOMAXPROCS)")
	cacheCap := flag.Int("cache", 1024, "per-engine result-cache capacity (0 disables caching)")
	noShareCert := flag.Bool("no-share-cert", false, "disable shared certification in coalesced batches (ablation)")
	noShareFinal := flag.Bool("no-share-final", false, "disable shared final prefixes in coalesced batches (ablation)")
	preload := flag.String("preload", "", "comma-separated specs to bind at startup (prefix implicit: for descriptor binding)")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "diagnosed: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	if flag.NArg() > 0 {
		fail("unexpected arguments: %v", flag.Args())
	}
	if *registryCap < 1 {
		fail("-registry must be ≥ 1")
	}
	if *window < 0 {
		fail("-window must be ≥ 0")
	}
	if *maxBatch < 1 {
		fail("-max-batch must be ≥ 1")
	}
	if *workers < 0 {
		fail("-workers must be ≥ 0")
	}
	if *cacheCap < 0 {
		fail("-cache must be ≥ 0")
	}

	cfg := serve.Config{
		RegistryCap: *registryCap,
		Window:      *window,
		NoCoalesce:  *window == 0,
		MaxBatch:    *maxBatch,
		Workers:     *workers,
		CacheCap:    *cacheCap,
		NoShareCert: *noShareCert, NoShareFinal: *noShareFinal,
	}
	if *cacheCap == 0 {
		cfg.CacheCap = -1 // serve.Config: negative disables, 0 means default
	}
	srv := serve.New(cfg)
	for _, spec := range strings.Split(*preload, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		if err := srv.Preload(spec); err != nil {
			fmt.Fprintf(os.Stderr, "diagnosed: preload %s: %v\n", spec, err)
			os.Exit(1)
		}
		fmt.Printf("preloaded %s\n", spec)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "diagnosed: listen: %v\n", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println("diagnosed: draining...")
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
	}()

	fmt.Printf("diagnosed listening on http://%s (registry %d, window %v, max-batch %d, cache %d)\n",
		ln.Addr(), *registryCap, *window, *maxBatch, *cacheCap)
	err = hs.Serve(ln)
	// Serve returns ErrServerClosed on Shutdown; drain the coalescers
	// and worker pools either way.
	srv.Close()
	if err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "diagnosed: serve: %v\n", err)
		os.Exit(1)
	}
}
