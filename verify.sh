#!/usr/bin/env bash
# Tier-1 verification gate: build, vet, full test suite (which includes
# the differential, fuzz-seed-corpus and golden tiers — see
# docs/testing.md), the race detector over the packages that exercise
# concurrency (parallel part certification with sharded look-up
# counters, campaign/distsim pools, Diagnose-during-Rebind churn,
# graph probes, the serve coalescer and its observability pollers),
# and the perf-trajectory gate: every committed
# BENCH_<n>.json — BENCH_10 being the latest — must not regress
# lookups/op on any case shared with its predecessor, nor start
# allocating on a case its predecessor ran at 0 allocs/op (both are
# deterministic; ns/op and bytes/op are reported but not gated).
set -euo pipefail
cd "$(dirname "$0")"

go build ./...
go vet ./...
go test ./...
go test -race ./internal/core/ ./internal/campaign/ ./internal/distsim/ ./internal/graph/ ./internal/serve/

prev=""
for f in $(ls BENCH_*.json 2>/dev/null | sort -V); do
  if [ -n "$prev" ]; then
    go run ./cmd/benchtab -compare "$prev" "$f"
  fi
  prev="$f"
done
