#!/usr/bin/env bash
# Tier-1 verification gate: build, vet, full test suite, and the race
# detector over the packages that exercise concurrency (parallel part
# certification with sharded look-up counters, campaign sweeps).
set -euo pipefail
cd "$(dirname "$0")"

go build ./...
go vet ./...
go test ./...
go test -race ./internal/core/ ./internal/campaign/
