package comparisondiag_test

import (
	"fmt"
	"math/rand"

	cd "comparisondiag"
)

// The basic flow: build a network, obtain a syndrome, recover the
// fault set exactly.
func ExampleDiagnose() {
	nw := cd.NewHypercube(8)
	faults := cd.FaultSetOf(nw.Graph().N(), []int32{3, 77, 200})
	s := cd.NewLazySyndrome(faults, cd.Mimic{})

	found, _, err := cd.Diagnose(nw, s)
	if err != nil {
		panic(err)
	}
	fmt.Println(found)
	// Output: {3 77 200}
}

// Serving many syndromes against one fixed network: bind an Engine
// once, then diagnose in batch. results[i] always corresponds to
// syndromes[i], and every result matches what a sequential Diagnose
// call would return — look-up counts included.
func ExampleEngine() {
	nw := cd.NewHypercube(8)
	eng := cd.NewEngine(nw)

	syndromes := make([]cd.Syndrome, 4)
	for i := range syndromes {
		faults := cd.FaultSetOf(256, []int32{int32(10 * (i + 1)), 200})
		syndromes[i] = cd.NewLazySyndrome(faults, cd.Mimic{})
	}
	for _, r := range eng.DiagnoseBatch(syndromes, cd.BatchOptions{Workers: 2}) {
		fmt.Println(r.Faults, r.Err == nil)
	}
	// Output:
	// {10 200} true
	// {20 200} true
	// {30 200} true
	// {40 200} true
}

// Networks can be built from compact textual specs, which all the
// command-line tools share.
func ExampleParseNetwork() {
	nw, err := cd.ParseNetwork("kary:4,3")
	if err != nil {
		panic(err)
	}
	fmt.Println(nw.Name(), nw.Graph().N(), nw.Diagnosability())
	// Output: Q^4_3 64 6
}

// Set_Builder grows a provably healthy set from a healthy seed; its
// by-product is a spanning tree of the healthy region.
func ExampleSetBuilder() {
	nw := cd.NewHypercube(6)
	faults := cd.FaultSetOf(64, []int32{9, 40})
	s := cd.NewLazySyndrome(faults, cd.AllZero{})

	r := cd.SetBuilder(nw.Graph(), s, 0, 6, nil)
	fmt.Println(r.U.Count(), r.U.Contains(9), r.U.Contains(40))
	// Output: 62 false false
}

// Instances that cannot satisfy Theorem 1's partition precondition are
// still diagnosable via verification.
func ExampleDiagnoseWithVerification() {
	nk := cd.NewNKStar(6, 2) // N = 30 < (δ+1)²: no partition exists
	g := nk.Graph()
	faults := cd.FaultSetOf(g.N(), []int32{2, 19})
	s := cd.NewLazySyndrome(faults, cd.Inverted{})

	found, err := cd.DiagnoseWithVerification(g, nk.Diagnosability(), s)
	if err != nil {
		panic(err)
	}
	fmt.Println(found)
	// Output: {2 19}
}

// A fault-injection campaign measures behaviour beyond the guarantee:
// within δ everything is exact; past δ the algorithm refuses loudly.
func ExampleCampaignSweep() {
	nw := cd.NewHypercube(7)
	points := cd.CampaignSweep(nw, cd.CampaignConfig{
		MinFaults: 7, MaxFaults: 9, Trials: 5, Seed: 1,
	})
	for _, p := range points {
		fmt.Printf("faults=%d exact=%d refused=%d silent=%d\n",
			p.Faults, p.Exact, p.Refused, p.Silent)
	}
	// Output:
	// faults=7 exact=5 refused=0 silent=0
	// faults=8 exact=0 refused=5 silent=0
	// faults=9 exact=0 refused=5 silent=0
}

// Scheduling the demanded tests into one-port slots shows the paper's
// Section 6 economy in time units, not just look-up counts.
func ExampleScheduleTests() {
	nw := cd.NewHypercube(8)
	g := nw.Graph()
	faults := cd.RandomFaults(g.N(), 8, rand.New(rand.NewSource(2)))
	rec := cd.NewTestRecorder(cd.NewLazySyndrome(faults, cd.Mimic{}))
	if _, _, err := cd.Diagnose(nw, rec); err != nil {
		panic(err)
	}

	demand := cd.ScheduleTests(rec.Tests(), g.N())
	full := cd.ScheduleTests(cd.FullSyndromeTests(g), g.N())
	fmt.Println(demand.Rounds() < full.Rounds()/2)
	// Output: true
}
