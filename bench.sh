#!/usr/bin/env bash
# Regenerate the perf-trajectory baseline (see internal/perf and
# cmd/benchtab -json). Usage: ./bench.sh [OUTFILE], default BENCH_1.json.
#
# ./bench.sh -quick runs the smoke subset instead (small graphs, a few
# seconds) and writes nothing — the PR CI perf smoke (.github/workflows).
set -euo pipefail
cd "$(dirname "$0")"

if [ "${1:-}" = "-quick" ]; then
  go run ./cmd/benchtab -quick
  exit 0
fi

out="${1:-BENCH_1.json}"
go run ./cmd/benchtab -json "$out"
echo "wrote $out"
