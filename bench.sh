#!/usr/bin/env bash
# Regenerate the perf-trajectory baseline (see internal/perf and
# cmd/benchtab -json). Usage: ./bench.sh [OUTFILE], default BENCH_1.json.
set -euo pipefail
cd "$(dirname "$0")"

out="${1:-BENCH_1.json}"
go run ./cmd/benchtab -json "$out"
echo "wrote $out"
