package graph

import (
	"math/rand"
	"testing"
)

// randomConnectedGraph builds a random connected graph on n nodes: a
// random spanning tree plus extra random edges.
func randomConnectedGraph(n int, extraEdges int, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		b.MustAddEdge(int32(perm[i]), int32(perm[rng.Intn(i)]))
	}
	for e := 0; e < extraEdges; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.MustAddEdge(int32(u), int32(v))
		}
	}
	return b.Build()
}

// TestPropertyConnectivityAtMostMinDegree: κ(G) ≤ min degree, always.
func TestPropertyConnectivityAtMostMinDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 30; iter++ {
		g := randomConnectedGraph(6+rng.Intn(10), rng.Intn(12), rng)
		if k := g.VertexConnectivity(); k > g.MinDegree() {
			t.Fatalf("κ = %d > min degree %d", k, g.MinDegree())
		}
	}
}

// TestPropertyArticulationIffConnectivityOne: for connected graphs with
// ≥ 3 nodes, κ = 1 exactly when an articulation point exists.
func TestPropertyArticulationIffConnectivityOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 30; iter++ {
		g := randomConnectedGraph(5+rng.Intn(8), rng.Intn(8), rng)
		k := g.VertexConnectivity()
		cuts := g.ArticulationPoints()
		if (k == 1) != (len(cuts) > 0) {
			t.Fatalf("κ = %d but %d articulation points", k, len(cuts))
		}
	}
}

// TestPropertyBFSAdjacentLevels: BFS distances of adjacent nodes differ
// by at most one.
func TestPropertyBFSAdjacentLevels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 20; iter++ {
		g := randomConnectedGraph(8+rng.Intn(12), rng.Intn(16), rng)
		dist := g.BFSFrom(0, nil)
		for u := int32(0); int(u) < g.N(); u++ {
			for _, v := range g.Neighbors(u) {
				d := dist[u] - dist[v]
				if d < -1 || d > 1 {
					t.Fatalf("edge %d-%d spans BFS levels %d and %d", u, v, dist[u], dist[v])
				}
			}
		}
	}
}

// TestPropertyRemovingCutDisconnects: removing a minimum cut (witnessed
// indirectly) — removing all articulation points from a κ=1 graph must
// increase the component count.
func TestPropertyRemovingCutDisconnects(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tried := 0
	for iter := 0; iter < 60 && tried < 10; iter++ {
		g := randomConnectedGraph(6+rng.Intn(8), rng.Intn(3), rng)
		cuts := g.ArticulationPoints()
		if len(cuts) == 0 {
			continue
		}
		tried++
		// Rebuild without the first articulation point.
		cut := cuts[0]
		b := NewBuilder(g.N())
		for u := int32(0); int(u) < g.N(); u++ {
			for _, v := range g.Neighbors(u) {
				if u < v && u != cut && v != cut {
					b.MustAddEdge(u, v)
				}
			}
		}
		h := b.Build()
		// Components excluding the isolated cut node itself.
		comps := 0
		for _, c := range h.Components() {
			if len(c) == 1 && c[0] == cut {
				continue
			}
			comps++
		}
		if comps < 2 {
			t.Fatalf("removing articulation point %d left %d components", cut, comps)
		}
	}
	if tried == 0 {
		t.Skip("no articulation points sampled")
	}
}
