package graph

import (
	"fmt"

	"comparisondiag/internal/bitset"
)

// Removal is the outcome of a delta operation on a Graph: the compacted
// CSR of the largest surviving connected component plus the id maps
// between the two node spaces. It is the unit of churn the engine layer
// rebinds against (core.Engine.Rebind).
//
// Node ids in G are assigned to survivors in increasing old-id order, so
// OldToNew is monotone on the survivors and every remapped (ascending)
// adjacency or part stays ascending — the compaction never needs a sort.
type Removal struct {
	// G is the induced subgraph on the largest surviving component,
	// compacted to node ids [0, G.N()).
	G *Graph
	// OldToNew maps old node ids to new ones; -1 for removed nodes and
	// for survivors stranded outside the largest component.
	OldToNew []int32
	// NewToOld maps new node ids back to old ones (ascending).
	NewToOld []int32
	// RemovedNodes counts the distinct explicitly removed nodes.
	RemovedNodes int
	// RemovedEdges counts the distinct explicitly removed edges that
	// existed and were not already incident to a removed node.
	RemovedEdges int
	// Stranded counts nodes that survived the removal itself but fell
	// outside the largest surviving component (and are therefore absent
	// from G like removed nodes).
	Stranded int
	// GoneEdges lists the distinct explicitly removed edges that existed
	// in the old graph, normalised u < v — the information a partition
	// remapper needs to tell which parts were touched by pure edge churn.
	GoneEdges [][2]int32

	// orig is the graph the removal was applied to and removed the set of
	// explicitly removed nodes — what Restore needs to re-admit structure
	// without the caller re-threading the pre-churn world.
	orig    *Graph
	removed *bitset.Set
}

// RemoveNodes removes the given nodes (duplicates tolerated) and returns
// the compacted largest surviving component. O(n + m).
func (g *Graph) RemoveNodes(nodes []int32) *Removal { return g.Remove(nodes, nil) }

// RemoveEdges removes the given undirected edges (orientation and
// duplicates tolerated; edges not present are ignored) and returns the
// compacted largest surviving component. O(n + m).
func (g *Graph) RemoveEdges(edges [][2]int32) *Removal { return g.Remove(nil, edges) }

// Remove applies a combined node/edge delta: the given nodes disappear
// with all incident edges, the given edges disappear, and the largest
// connected component of what is left (ties broken towards the component
// containing the smallest node id) is compacted into a fresh CSR graph.
// The whole operation is O(n + m). Out-of-range ids panic; removing an
// absent edge is a no-op.
func (g *Graph) Remove(nodes []int32, edges [][2]int32) *Removal {
	return g.remove(nodes, edges, -1)
}

// remove is Remove with an optional anchor: when anchor is a surviving
// node id, the component containing it is kept instead of the largest
// one. Restore uses this to guarantee the re-grown graph contains the
// component currently being served, so growth never strands the nodes a
// rebinding engine's clients are talking to.
func (g *Graph) remove(nodes []int32, edges [][2]int32, anchor int32) *Removal {
	removed := bitset.New(g.n)
	removedNodes := 0
	for _, u := range nodes {
		if u < 0 || int(u) >= g.n {
			panic(fmt.Sprintf("graph: Remove node %d out of range [0,%d)", u, g.n))
		}
		if !removed.Contains(int(u)) {
			removed.Add(int(u))
			removedNodes++
		}
	}
	var gone map[int64]struct{}
	var goneEdges [][2]int32
	removedEdges := 0
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || v < 0 || int(u) >= g.n || int(v) >= g.n {
			panic(fmt.Sprintf("graph: Remove edge %d-%d out of range [0,%d)", u, v, g.n))
		}
		if u > v {
			u, v = v, u
		}
		if !g.HasEdge(u, v) {
			continue
		}
		key := int64(u)<<32 | int64(v)
		if gone == nil {
			gone = make(map[int64]struct{}, len(edges))
		}
		if _, dup := gone[key]; dup {
			continue
		}
		gone[key] = struct{}{}
		goneEdges = append(goneEdges, [2]int32{u, v})
		if !removed.Contains(int(u)) && !removed.Contains(int(v)) {
			removedEdges++
		}
	}
	edgeGone := func(u, v int32) bool {
		if gone == nil {
			return false
		}
		if u > v {
			u, v = v, u
		}
		_, ok := gone[int64(u)<<32|int64(v)]
		return ok
	}

	// Label surviving components and keep the largest; scanning sources
	// in ascending id order with a strict size comparison makes the tie
	// break (smallest contained id) automatic.
	comp := make([]int32, g.n)
	for i := range comp {
		comp[i] = -1
	}
	queue := make([]int32, 0, g.n)
	bestComp, bestSize := int32(-1), 0
	nextComp := int32(0)
	var sizes []int
	for s := int32(0); int(s) < g.n; s++ {
		if comp[s] >= 0 || removed.Contains(int(s)) {
			continue
		}
		id := nextComp
		nextComp++
		comp[s] = id
		queue = append(queue[:0], s)
		size := 1
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.Neighbors(u) {
				if comp[v] >= 0 || removed.Contains(int(v)) || edgeGone(u, v) {
					continue
				}
				comp[v] = id
				size++
				queue = append(queue, v)
			}
		}
		sizes = append(sizes, size)
		if size > bestSize {
			bestComp, bestSize = id, size
		}
	}
	if anchor >= 0 && comp[anchor] >= 0 {
		bestComp = comp[anchor]
		bestSize = sizes[bestComp]
	}

	oldToNew := make([]int32, g.n)
	newToOld := make([]int32, 0, bestSize)
	for u := int32(0); int(u) < g.n; u++ {
		if comp[u] == bestComp && bestComp >= 0 {
			oldToNew[u] = int32(len(newToOld))
			newToOld = append(newToOld, u)
		} else {
			oldToNew[u] = -1
		}
	}

	// Count surviving arcs, then lay the compacted CSR down directly:
	// survivors keep their relative order, so each remapped neighbour
	// block is already ascending.
	arcs := 0
	for _, u := range newToOld {
		for _, v := range g.Neighbors(u) {
			if oldToNew[v] >= 0 && !edgeGone(u, v) {
				arcs++
			}
		}
	}
	offsets := make([]int32, bestSize+1)
	targets := make([]int32, 0, arcs)
	for nu, u := range newToOld {
		offsets[nu] = int32(len(targets))
		for _, v := range g.Neighbors(u) {
			if nv := oldToNew[v]; nv >= 0 && !edgeGone(u, v) {
				targets = append(targets, nv)
			}
		}
	}
	offsets[bestSize] = int32(len(targets))

	return &Removal{
		G:            &Graph{n: bestSize, offsets: offsets, targets: targets, m: len(targets) / 2},
		OldToNew:     oldToNew,
		NewToOld:     newToOld,
		RemovedNodes: removedNodes,
		RemovedEdges: removedEdges,
		Stranded:     g.n - removedNodes - bestSize,
		GoneEdges:    goneEdges,
		orig:         g,
		removed:      removed,
	}
}
