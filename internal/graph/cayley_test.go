package graph

import (
	"math/rand"
	"testing"
)

// Local family constructors: the graph package cannot import topology
// (topology sits above it), so the canonical Cayley families are
// rebuilt here from their defining adjacency rules.

func hyperGraph(n int) *Graph {
	return FromAdjacency(1<<uint(n), func(u int32) []int32 {
		out := make([]int32, 0, n)
		for b := 0; b < n; b++ {
			out = append(out, u^int32(1<<uint(b)))
		}
		return out
	})
}

func foldedGraph(n int) *Graph {
	full := int32(1<<uint(n) - 1)
	return FromAdjacency(1<<uint(n), func(u int32) []int32 {
		out := make([]int32, 0, n+1)
		for b := 0; b < n; b++ {
			out = append(out, u^int32(1<<uint(b)))
		}
		return append(out, u^full)
	})
}

func augmentedGraph(n int) *Graph {
	return FromAdjacency(1<<uint(n), func(u int32) []int32 {
		out := make([]int32, 0, 2*n-1)
		for b := 0; b < n; b++ {
			out = append(out, u^int32(1<<uint(b)))
		}
		for i := 1; i < n; i++ {
			out = append(out, u^int32(1<<uint(i+1)-1))
		}
		return out
	})
}

func karyGraph(k, n int) *Graph {
	N := 1
	for i := 0; i < n; i++ {
		N *= k
	}
	return FromAdjacency(N, func(u int32) []int32 {
		out := make([]int32, 0, 2*n)
		stride := int32(1)
		x := u
		for d := 0; d < n; d++ {
			digit := x % int32(k)
			up, down := u+stride, u-stride
			if digit == int32(k-1) {
				up = u - int32(k-1)*stride
			}
			if digit == 0 {
				down = u + int32(k-1)*stride
			}
			out = append(out, up, down)
			x /= int32(k)
			stride *= int32(k)
		}
		return out
	})
}

// mixedTorus builds the torus with per-dimension arities (±1 in each
// digit, every digit wrapping modulo its own radix) — additive
// structure no uniform-k AdditiveCayley can express.
func mixedTorus(radices []int) *Graph {
	N := 1
	for _, k := range radices {
		N *= k
	}
	return FromAdjacency(N, func(u int32) []int32 {
		out := make([]int32, 0, 2*len(radices))
		stride := int32(1)
		x := u
		for _, k := range radices {
			digit := x % int32(k)
			up, down := u+stride, u-stride
			if digit == int32(k-1) {
				up = u - int32(k-1)*stride
			}
			if digit == 0 {
				down = u + int32(k-1)*stride
			}
			out = append(out, up, down)
			x /= int32(k)
			stride *= int32(k)
		}
		return out
	})
}

// mixedTorusDescriptor declares mixedTorus: ± unit vectors per digit.
func mixedTorusDescriptor(radices []int) MixedRadixCayley {
	var gens [][]int
	for d, k := range radices {
		up := make([]int, len(radices))
		down := make([]int, len(radices))
		up[d], down[d] = 1, k-1
		gens = append(gens, up, down)
	}
	return MixedRadixCayley{Radices: radices, Gens: gens}
}

// augKaryGraph rebuilds the augmented k-ary n-cube adjacency (torus
// edges plus ± runs over the i low digits, every digit wrapping
// independently).
func augKaryGraph(k, n int) *Graph {
	N := 1
	for i := 0; i < n; i++ {
		N *= k
	}
	return FromAdjacency(int(N), func(u int32) []int32 {
		digits := make([]int32, n)
		x := u
		for d := 0; d < n; d++ {
			digits[d] = x % int32(k)
			x /= int32(k)
		}
		add := func(length, sign int) int32 {
			v := u
			stride := int32(1)
			for d := 0; d < length; d++ {
				nd := (digits[d] + int32(sign) + int32(k)) % int32(k)
				v += (nd - digits[d]) * stride
				stride *= int32(k)
			}
			return v
		}
		var out []int32
		stride := int32(1)
		for d := 0; d < n; d++ {
			up, down := u+stride, u-stride
			if digits[d] == int32(k-1) {
				up = u - int32(k-1)*stride
			}
			if digits[d] == 0 {
				down = u + int32(k-1)*stride
			}
			out = append(out, up, down)
			stride *= int32(k)
		}
		for i := 2; i <= n; i++ {
			out = append(out, add(i, 1), add(i, -1))
		}
		return out
	})
}

// augKaryDescriptor declares augKaryGraph.
func augKaryDescriptor(k, n int) MixedRadixCayley {
	radices := make([]int, n)
	for d := range radices {
		radices[d] = k
	}
	var gens [][]int
	for d := 0; d < n; d++ {
		up := make([]int, n)
		down := make([]int, n)
		up[d], down[d] = 1, k-1
		gens = append(gens, up, down)
	}
	for i := 2; i <= n; i++ {
		up := make([]int, n)
		down := make([]int, n)
		for d := 0; d < i; d++ {
			up[d], down[d] = 1, k-1
		}
		gens = append(gens, up, down)
	}
	return MixedRadixCayley{Radices: radices, Gens: gens}
}

func hyperMasks(n int) []int32 {
	masks := make([]int32, n)
	for b := range masks {
		masks[b] = 1 << uint(b)
	}
	return masks
}

func TestVerifyXORCayleyAcceptsFamilies(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		d    XORCayley
	}{
		{"Q8", hyperGraph(8), XORCayley{Bits: 8, Masks: hyperMasks(8)}},
		{"FQ8", foldedGraph(8), XORCayley{Bits: 8, Masks: append(hyperMasks(8), 0xff)}},
		{"AQ6", augmentedGraph(6), XORCayley{Bits: 6, Masks: append(hyperMasks(6), 3, 7, 15, 31, 63)}},
	}
	for _, c := range cases {
		if err := VerifyCayley(c.g, c.d); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

func TestVerifyAdditiveCayleyAcceptsTori(t *testing.T) {
	for _, c := range []struct{ k, n int }{{4, 3}, {3, 4}, {5, 2}} {
		g := karyGraph(c.k, c.n)
		if err := VerifyCayley(g, AdditiveCayley{K: c.k, Dims: c.n}); err != nil {
			t.Errorf("Q^%d_%d: %v", c.k, c.n, err)
		}
	}
}

func TestVerifyMixedRadixCayleyAcceptsFamilies(t *testing.T) {
	for _, c := range []struct {
		name string
		g    *Graph
		d    MixedRadixCayley
	}{
		{"AQ(3,3)", augKaryGraph(3, 3), augKaryDescriptor(3, 3)},
		{"AQ(2,4)", augKaryGraph(4, 2), augKaryDescriptor(4, 2)},
		{"Z3xZ4xZ5", mixedTorus([]int{3, 4, 5}), mixedTorusDescriptor([]int{3, 4, 5})},
	} {
		if err := VerifyCayley(c.g, c.d); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
		if c.d.Order() != c.g.N() || c.d.Degree() != c.g.MaxDegree() {
			t.Errorf("%s: descriptor shape (%d, %d) vs graph (%d, %d)",
				c.name, c.d.Order(), c.d.Degree(), c.g.N(), c.g.MaxDegree())
		}
	}
}

func TestVerifyMixedRadixCayleyRejectsMalformed(t *testing.T) {
	g := mixedTorus([]int{3, 4, 5})
	good := mixedTorusDescriptor([]int{3, 4, 5})
	bad := []struct {
		name string
		d    MixedRadixCayley
	}{
		{"radix order swapped", mixedTorusDescriptor([]int{5, 4, 3})},
		{"radix below 2", MixedRadixCayley{Radices: []int{1, 60}, Gens: good.Gens}},
		{"wrong order", mixedTorusDescriptor([]int{3, 4, 4})},
		{"no generators", MixedRadixCayley{Radices: []int{3, 4, 5}}},
		{"identity generator", MixedRadixCayley{Radices: []int{3, 4, 5}, Gens: append([][]int{{0, 0, 0}}, good.Gens...)}},
		{"digit out of range", MixedRadixCayley{Radices: []int{3, 4, 5}, Gens: append([][]int{{3, 0, 0}}, good.Gens[1:]...)}},
		{"repeated generator", MixedRadixCayley{Radices: []int{3, 4, 5}, Gens: append([][]int{good.Gens[0]}, good.Gens...)}},
		{"not closed under negation", MixedRadixCayley{Radices: []int{3, 4, 5}, Gens: good.Gens[:3]}},
		{"short generator", MixedRadixCayley{Radices: []int{3, 4, 5}, Gens: [][]int{{1, 0}, {2, 3}}}},
	}
	for _, c := range bad {
		if err := VerifyCayley(g, c.d); err == nil {
			t.Errorf("%s: descriptor accepted, want rejection", c.name)
		}
	}
	// The true descriptor on a different graph of the same order.
	if err := VerifyCayley(ring(60), good); err == nil {
		t.Error("mixed torus descriptor accepted on a ring")
	}
}

func TestVerifyCayleyRejectsWrongDescriptors(t *testing.T) {
	q8 := hyperGraph(8)
	bad := []struct {
		name string
		g    *Graph
		d    CayleyDescriptor
	}{
		{"wrong order", q8, XORCayley{Bits: 9, Masks: hyperMasks(9)}},
		{"missing mask", q8, XORCayley{Bits: 8, Masks: hyperMasks(7)}},
		{"extra mask", q8, XORCayley{Bits: 8, Masks: append(hyperMasks(8), 0xff)}},
		{"repeated mask", q8, XORCayley{Bits: 8, Masks: append(hyperMasks(8)[:7], 1)}},
		{"zero mask", q8, XORCayley{Bits: 8, Masks: append(hyperMasks(8)[:7], 0)}},
		{"additive on cube", q8, AdditiveCayley{K: 4, Dims: 4}},
		{"xor on torus", karyGraph(4, 3), XORCayley{Bits: 6, Masks: hyperMasks(6)}},
		{"folded masks on plain cube", q8, XORCayley{Bits: 8, Masks: append(hyperMasks(8), 0x80|0x40)}},
		{"nil", q8, nil},
	}
	for _, c := range bad {
		if err := VerifyCayley(c.g, c.d); err == nil {
			t.Errorf("%s: descriptor accepted, want rejection", c.name)
		}
	}
}

func TestDetectXORCayley(t *testing.T) {
	if d, ok := DetectXORCayley(hyperGraph(8)); !ok || len(d.Masks) != 8 || d.MultiBit() {
		t.Fatalf("Q8: got %v ok=%v", d, ok)
	}
	if d, ok := DetectXORCayley(foldedGraph(8)); !ok || len(d.Masks) != 9 || !d.MultiBit() {
		t.Fatalf("FQ8: got %v ok=%v", d, ok)
	}
	if d, ok := DetectXORCayley(augmentedGraph(6)); !ok || len(d.Masks) != 11 {
		t.Fatalf("AQ6: got %v ok=%v", d, ok)
	}
	// Detected descriptors must themselves verify.
	for _, g := range []*Graph{hyperGraph(7), foldedGraph(7), augmentedGraph(5)} {
		d, ok := DetectXORCayley(g)
		if !ok {
			t.Fatal("structure not detected")
		}
		if err := VerifyCayley(g, d); err != nil {
			t.Fatalf("detected descriptor fails verification: %v", err)
		}
	}
	// A 4-ary torus really is XOR-Cayley (C_4 is the Cayley graph of
	// Z_2^2 with generators {1, 3}), so detection finds it and the
	// detected descriptor must hold up.
	if d, ok := DetectXORCayley(karyGraph(4, 3)); !ok {
		t.Fatal("Q^4_3 is XOR-Cayley, detection missed it")
	} else if err := VerifyCayley(karyGraph(4, 3), d); err != nil {
		t.Fatalf("Q^4_3 detected descriptor fails verification: %v", err)
	}
	// Odd arities are not: N = 3^3 is not a power of two.
	if _, ok := DetectXORCayley(karyGraph(3, 3)); ok {
		t.Fatal("3-ary torus misdetected as xor-cayley")
	}
	if _, ok := DetectXORCayley(ring(64)); ok {
		t.Fatal("ring misdetected as xor-cayley")
	}
	if _, ok := DetectXORCayley(ring(60)); ok {
		t.Fatal("non-power-of-two order accepted")
	}
}

// edgeList enumerates the undirected edges of g as (u, v) with u < v.
func edgeList(g *Graph) [][2]int32 {
	var edges [][2]int32
	for u := int32(0); int(u) < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				edges = append(edges, [2]int32{u, v})
			}
		}
	}
	return edges
}

// mutate returns g with one structural edit chosen by mode: a rewired
// endpoint (degree-visible) or a degree-preserving 2-swap of two
// disjoint edges (only edge membership changes). ok is false when the
// edit happens to reproduce an existing edge (the attempt is skipped).
func mutate(g *Graph, rng *rand.Rand, mode int) (*Graph, bool) {
	edges := edgeList(g)
	b := NewBuilder(g.N())
	switch mode {
	case 0: // rewire one endpoint to a random non-neighbour
		i := rng.Intn(len(edges))
		u := edges[i][0]
		w := int32(rng.Intn(g.N()))
		if w == u || g.HasEdge(u, w) {
			return nil, false
		}
		edges[i][1] = w
	default: // 2-swap {a,b},{c,d} -> {a,d},{c,b}
		i, j := rng.Intn(len(edges)), rng.Intn(len(edges))
		a, bb := edges[i][0], edges[i][1]
		c, d := edges[j][0], edges[j][1]
		if a == c || a == d || bb == c || bb == d ||
			g.HasEdge(a, d) || g.HasEdge(c, bb) {
			return nil, false
		}
		edges[i] = [2]int32{a, d}
		edges[j] = [2]int32{c, bb}
	}
	for _, e := range edges {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		b.MustAddEdge(u, v)
	}
	return b.Build(), true
}

// TestVerifyCayleyRejectsMutatedEdges is the deterministic core of the
// fuzz target below: any single-edge corruption of a true Cayley graph
// must fail verification against the true descriptor.
func TestVerifyCayleyRejectsMutatedEdges(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		d    CayleyDescriptor
	}{
		{"Q6", hyperGraph(6), XORCayley{Bits: 6, Masks: hyperMasks(6)}},
		{"FQ6", foldedGraph(6), XORCayley{Bits: 6, Masks: append(hyperMasks(6), 63)}},
		{"kary43", karyGraph(4, 3), AdditiveCayley{K: 4, Dims: 3}},
		{"augkary33", augKaryGraph(3, 3), augKaryDescriptor(3, 3)},
		{"mixedtorus", mixedTorus([]int{3, 4, 5}), mixedTorusDescriptor([]int{3, 4, 5})},
	}
	rng := rand.New(rand.NewSource(42))
	for _, c := range cases {
		mutated := 0
		for trial := 0; mutated < 25 && trial < 500; trial++ {
			mg, ok := mutate(c.g, rng, trial%2)
			if !ok {
				continue
			}
			mutated++
			if err := VerifyCayley(mg, c.d); err == nil {
				t.Fatalf("%s: mutated graph passed verification (trial %d)", c.name, trial)
			}
		}
		if mutated < 25 {
			t.Fatalf("%s: only %d usable mutations generated", c.name, mutated)
		}
	}
}

// FuzzVerifyCayley drives the same property from fuzzed seeds: whatever
// single mutation is applied to a genuine XOR-Cayley graph, VerifyCayley
// with the true descriptor must reject the result.
func FuzzVerifyCayley(f *testing.F) {
	f.Add(int64(1), 0)
	f.Add(int64(2), 1)
	f.Add(int64(99), 0)
	g := foldedGraph(6)
	d := XORCayley{Bits: 6, Masks: append(hyperMasks(6), 63)}
	f.Fuzz(func(t *testing.T, seed int64, mode int) {
		rng := rand.New(rand.NewSource(seed))
		mg, ok := mutate(g, rng, ((mode%2)+2)%2)
		if !ok {
			t.Skip("mutation collided with an existing edge")
		}
		if err := VerifyCayley(mg, d); err == nil {
			t.Fatal("mutated graph passed verification")
		}
	})
}
