package graph

import (
	"math/rand"
	"testing"
)

// hypercube builds Q_dim via the builder (the graph-layer twin of
// topology.NewHypercube, which this package cannot import).
func hypercube(dim int) *Graph {
	n := 1 << dim
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for bit := 0; bit < dim; bit++ {
			if v := u ^ (1 << bit); v > u {
				b.MustAddEdge(int32(u), int32(v))
			}
		}
	}
	return b.Build()
}

// sameCSR reports whether two graphs are byte-identical in CSR form.
func sameCSR(a, b *Graph) bool {
	ao, at := a.Adjacency()
	bo, bt := b.Adjacency()
	if a.N() != b.N() || a.M() != b.M() || len(ao) != len(bo) || len(at) != len(bt) {
		return false
	}
	for i := range ao {
		if ao[i] != bo[i] {
			return false
		}
	}
	for i := range at {
		if at[i] != bt[i] {
			return false
		}
	}
	return true
}

func TestFlapRoundTripBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	graphs := []*Graph{hypercube(4), cycleGraph(9), randomConnectedGraph(40, 60, rng)}
	for gi, g := range graphs {
		nodes := []int32{int32(rng.Intn(g.N())), int32(rng.Intn(g.N()))}
		u := nodes[0]
		var edges [][2]int32
		if len(g.Neighbors(u)) > 0 {
			edges = [][2]int32{{u, g.Neighbors(u)[0]}}
		}
		rr, gr := g.Flap(nodes, edges)
		if !sameCSR(g, gr.G) {
			t.Fatalf("graph %d: flap round trip not CSR-identical", gi)
		}
		for i, nu := range gr.OldToNew {
			if nu != int32(i) {
				t.Fatalf("graph %d: OldToNew[%d] = %d after full restore, want identity", gi, i, nu)
			}
		}
		if gr.StillGone != 0 || gr.Remaining.RemovedNodes != 0 || len(gr.Remaining.GoneEdges) != 0 {
			t.Fatalf("graph %d: full restore left residue: %d gone nodes, removal %+v", gi, gr.StillGone, gr.Remaining)
		}
		wantBack := rr.RemovedNodes + rr.Stranded
		if gr.Readmitted+gr.Reconnected != wantBack {
			t.Fatalf("graph %d: readmitted %d + reconnected %d, want %d", gi, gr.Readmitted, gr.Reconnected, wantBack)
		}
		if gr.Readmitted != rr.RemovedNodes {
			t.Fatalf("graph %d: Readmitted = %d, want %d", gi, gr.Readmitted, rr.RemovedNodes)
		}
		if len(edges) > 0 && rr.GoneEdges != nil && gr.RestoredEdges != len(rr.GoneEdges) {
			t.Fatalf("graph %d: RestoredEdges = %d, want %d", gi, gr.RestoredEdges, len(rr.GoneEdges))
		}
	}
}

func TestRestorePartialCensusAndMaps(t *testing.T) {
	// Path 0..9 minus {3, 7}: survivor is {4,5,6} stranded... no — the
	// largest piece is {4,5,6} vs {0,1,2} vs {8,9}: {4,5,6} wins? Sizes
	// are 3, 3, 2; tie to smallest id keeps {0,1,2}. Restoring 3 alone
	// reconnects {4,5,6} through it; 7 and beyond stay gone.
	g := pathGraph(10)
	rr := g.RemoveNodes([]int32{3, 7})
	if rr.G.N() != 3 || rr.NewToOld[0] != 0 {
		t.Fatalf("unexpected survivor %v", rr.NewToOld)
	}
	gr := Restore(rr, []int32{3}, nil)
	if gr.G.N() != 7 {
		t.Fatalf("restored component has %d nodes, want 7 (0..6)", gr.G.N())
	}
	if gr.Readmitted != 1 {
		t.Fatalf("Readmitted = %d, want 1 (node 3)", gr.Readmitted)
	}
	if gr.Reconnected != 3 {
		t.Fatalf("Reconnected = %d, want 3 (nodes 4,5,6)", gr.Reconnected)
	}
	if gr.StillGone != 3 {
		t.Fatalf("StillGone = %d, want 3 (nodes 7,8,9)", gr.StillGone)
	}
	// SurvivorToNew is total and edge-preserving.
	for i := range gr.SurvivorToNew {
		if gr.SurvivorToNew[i] < 0 {
			t.Fatalf("SurvivorToNew[%d] < 0; growth must keep every served node", i)
		}
	}
	for u := int32(0); int(u) < rr.G.N(); u++ {
		for _, v := range rr.G.Neighbors(u) {
			if !gr.G.HasEdge(gr.SurvivorToNew[u], gr.SurvivorToNew[v]) {
				t.Fatalf("survivor edge %d-%d lost by growth", u, v)
			}
		}
	}
	if err := gr.G.Validate(); err != nil {
		t.Fatalf("re-grown graph invalid: %v", err)
	}
	// The residual removal chains: restoring the rest completes the
	// round trip.
	gr2 := Restore(gr.Remaining, []int32{7}, nil)
	if !sameCSR(g, gr2.G) {
		t.Fatalf("chained restore did not return to the original graph")
	}
}

func TestRestoreAnchorsServedComponent(t *testing.T) {
	// Two triangles joined by a bridge at 2-3, plus a pendant chain on
	// the right: removing the bridge keeps the left triangle {0,1,2}
	// (tie-break loses: right side {3,4,5,6,7} is larger — so build the
	// left bigger). Left: 0-1-2-0 plus chain 0-8, 8-9, 9-10; right:
	// 3-4-5-3. Removing edge {2,3} strands the right triangle. Restoring
	// nothing new but an unrelated edge keeps the anchored (served)
	// component even though re-admission elsewhere could tie it.
	b := NewBuilder(11)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	b.MustAddEdge(0, 2)
	b.MustAddEdge(0, 8)
	b.MustAddEdge(8, 9)
	b.MustAddEdge(9, 10)
	b.MustAddEdge(2, 3)
	b.MustAddEdge(3, 4)
	b.MustAddEdge(4, 5)
	b.MustAddEdge(3, 5)
	b.MustAddEdge(5, 6)
	b.MustAddEdge(6, 7)
	g := b.Build()
	rr := g.RemoveEdges([][2]int32{{2, 3}})
	if rr.G.N() != 6 {
		t.Fatalf("survivor has %d nodes, want 6 (left side)", rr.G.N())
	}
	// Restore the bridge: everything reconnects around the served side.
	gr := Restore(rr, nil, [][2]int32{{2, 3}})
	if !sameCSR(g, gr.G) {
		t.Fatalf("bridge restore did not reunify the graph")
	}
	if gr.Reconnected != 5 || gr.Readmitted != 0 {
		t.Fatalf("census = %d readmitted/%d reconnected, want 0/5", gr.Readmitted, gr.Reconnected)
	}
	if gr.RestoredEdges != 1 {
		t.Fatalf("RestoredEdges = %d, want 1", gr.RestoredEdges)
	}
}

func TestRestoreNoOpRequestsTolerated(t *testing.T) {
	g := cycleGraph(8)
	rr := g.RemoveNodes([]int32{1})
	// Restoring a survivor, an already-present edge, and the removed
	// node twice must behave exactly like restoring the node once.
	gr := Restore(rr, []int32{1, 1, 4}, [][2]int32{{5, 6}})
	if !sameCSR(g, gr.G) {
		t.Fatalf("no-op-padded restore did not round trip")
	}
	if gr.Readmitted != 1 || gr.Reconnected != 0 || gr.RestoredEdges != 0 {
		t.Fatalf("census %d/%d/%d, want 1/0/0", gr.Readmitted, gr.Reconnected, gr.RestoredEdges)
	}
}

func TestRestoreOutOfRangePanics(t *testing.T) {
	g := pathGraph(4)
	rr := g.RemoveNodes([]int32{1})
	for _, fn := range []func(){
		func() { Restore(rr, []int32{99}, nil) },
		func() { Restore(rr, nil, [][2]int32{{0, 99}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("out-of-range Restore did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestRestoreRandomRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 50; trial++ {
		g := randomConnectedGraph(12+rng.Intn(30), 20+rng.Intn(40), rng)
		k := 1 + rng.Intn(4)
		nodes := make([]int32, k)
		for i := range nodes {
			nodes[i] = int32(rng.Intn(g.N()))
		}
		rr := g.RemoveNodes(nodes)
		if rr.G.N() == 0 {
			continue
		}
		// Restore a random subset first, then everything.
		var half []int32
		for _, u := range nodes {
			if rng.Intn(2) == 0 {
				half = append(half, u)
			}
		}
		gr := Restore(rr, half, nil)
		if err := gr.G.Validate(); err != nil {
			t.Fatalf("trial %d: partial restore invalid: %v", trial, err)
		}
		if gr.G.N() < rr.G.N() {
			t.Fatalf("trial %d: growth shrank the component: %d -> %d", trial, rr.G.N(), gr.G.N())
		}
		for i := range gr.SurvivorToNew {
			if gr.SurvivorToNew[i] < 0 {
				t.Fatalf("trial %d: SurvivorToNew[%d] < 0", trial, i)
			}
		}
		full := Restore(gr.Remaining, nodes, nil)
		if !sameCSR(g, full.G) {
			t.Fatalf("trial %d: full restore after partial not byte-identical", trial)
		}
	}
}
