package graph

import (
	"math/rand"
	"slices"
	"testing"

	"comparisondiag/internal/bitset"
)

// implicitTestDescriptors is the descriptor panel the implicit-adjacency
// unit tests run over: one per compiled form (xor masks, additive
// compiled to mixed-radix, native mixed-radix with a run generator).
func implicitTestDescriptors() map[string]CayleyDescriptor {
	return map[string]CayleyDescriptor{
		"q6-xor": XORCayley{Bits: 6, Masks: []int32{1, 2, 4, 8, 16, 32}},
		"fq5-xor": XORCayley{Bits: 5,
			Masks: []int32{1, 2, 4, 8, 16, 31}},
		"kary5x3-additive": AdditiveCayley{K: 5, Dims: 3},
		"akary3x4-mixed": MixedRadixCayley{
			Radices: []int{3, 3, 3, 3},
			Gens: [][]int{
				{1, 0, 0, 0}, {2, 0, 0, 0}, {0, 1, 0, 0}, {0, 2, 0, 0},
				{0, 0, 1, 0}, {0, 0, 2, 0}, {0, 0, 0, 1}, {0, 0, 0, 2},
				{1, 1, 1, 1}, {2, 2, 2, 2},
			},
		},
	}
}

// TestCayleyAdjacencyMatchesCSR pins the tentpole equivalence at the
// graph layer: materialising the implicit adjacency into a CSR and
// re-reading it must reproduce AppendNeighbors exactly — same nodes,
// same strictly ascending order, same degrees — and the CSR must
// satisfy VerifyCayley against the original descriptor (the independent
// edge-scan checker the engine trusts).
func TestCayleyAdjacencyMatchesCSR(t *testing.T) {
	for name, desc := range implicitTestDescriptors() {
		t.Run(name, func(t *testing.T) {
			ca, err := NewCayleyAdjacency(desc)
			if err != nil {
				t.Fatal(err)
			}
			if ca.Descriptor() != nil && ca.Descriptor().String() != desc.String() {
				t.Fatalf("descriptor round-trip: %s != %s", ca.Descriptor().String(), desc.String())
			}
			var buf []int32
			g := FromAdjacency(ca.N(), func(u int32) []int32 {
				buf = ca.AppendNeighbors(u, buf)
				return buf
			})
			if err := VerifyCayley(g, desc); err != nil {
				t.Fatalf("generated adjacency fails the descriptor's own edge scan: %v", err)
			}
			if g.MaxDegree() != ca.MaxDegree() || g.MinDegree() != ca.MinDegree() {
				t.Fatalf("degree bounds: csr [%d,%d], implicit [%d,%d]",
					g.MinDegree(), g.MaxDegree(), ca.MinDegree(), ca.MaxDegree())
			}
			for u := int32(0); int(u) < g.N(); u++ {
				want := g.Neighbors(u)
				buf = ca.AppendNeighbors(u, buf)
				if !slices.Equal(buf, want) {
					t.Fatalf("node %d: implicit %v, csr %v", u, buf, want)
				}
				if !slices.IsSorted(buf) {
					t.Fatalf("node %d: neighbours not ascending: %v", u, buf)
				}
				if ca.Degree(u) != len(want) {
					t.Fatalf("node %d: degree %d, csr %d", u, ca.Degree(u), len(want))
				}
			}
		})
	}
}

// TestCayleyAdjacencyShapeValidation pins the constructor's refusals:
// each malformed descriptor must be rejected without a graph to scan.
func TestCayleyAdjacencyShapeValidation(t *testing.T) {
	bad := map[string]CayleyDescriptor{
		"nil":            nil,
		"xor-no-masks":   XORCayley{Bits: 4},
		"xor-dup-mask":   XORCayley{Bits: 4, Masks: []int32{1, 2, 1}},
		"xor-oob-mask":   XORCayley{Bits: 4, Masks: []int32{1, 16}},
		"xor-zero-mask":  XORCayley{Bits: 4, Masks: []int32{0, 1}},
		"xor-wide":       XORCayley{Bits: 31, Masks: []int32{1}},
		"additive-k2":    AdditiveCayley{K: 2, Dims: 3},
		"mixed-identity": MixedRadixCayley{Radices: []int{3, 3}, Gens: [][]int{{0, 0}}},
		"mixed-oob":      MixedRadixCayley{Radices: []int{3, 3}, Gens: [][]int{{3, 0}, {0, 1}, {0, 2}}},
		"mixed-dup":      MixedRadixCayley{Radices: []int{3, 3}, Gens: [][]int{{1, 0}, {1, 0}, {2, 0}}},
		"mixed-unclosed": MixedRadixCayley{Radices: []int{3, 3}, Gens: [][]int{{1, 0}}},
		"mixed-ragged":   MixedRadixCayley{Radices: []int{3, 3}, Gens: [][]int{{1}, {2}}},
	}
	for name, desc := range bad {
		if _, err := NewCayleyAdjacency(desc); err == nil {
			t.Errorf("%s: malformed descriptor accepted", name)
		}
	}
}

// TestNeighborsOfSetOnInto pins the generic boundary computation against
// the CSR word-level implementation: for random sets (sparse and dense)
// the implicit path must produce the identical boundary bitset.
func TestNeighborsOfSetOnInto(t *testing.T) {
	for name, desc := range implicitTestDescriptors() {
		t.Run(name, func(t *testing.T) {
			ca, err := NewCayleyAdjacency(desc)
			if err != nil {
				t.Fatal(err)
			}
			var buf []int32
			g := FromAdjacency(ca.N(), func(u int32) []int32 {
				buf = ca.AppendNeighbors(u, buf)
				return buf
			})
			n := ca.N()
			rng := rand.New(rand.NewSource(42))
			set := bitset.New(n)
			want := bitset.New(n)
			got := bitset.New(n)
			for _, fill := range []int{0, 1, n / 16, n / 2, n - 1, n} {
				set.Clear()
				for set.Count() < fill {
					set.Add(rng.Intn(n))
				}
				g.NeighborsOfSetInto(set, want)
				buf = NeighborsOfSetOnInto(ca, set, got, buf)
				if !got.Equal(want) {
					t.Fatalf("fill %d: boundary differs (implicit %d nodes, csr %d)",
						fill, got.Count(), want.Count())
				}
				// The CSR fast path must route to the same implementation.
				buf = NeighborsOfSetOnInto(g, set, got, buf)
				if !got.Equal(want) {
					t.Fatalf("fill %d: CSR-routed boundary differs", fill)
				}
			}
		})
	}
}

// TestFootprintBytes pins the memory model the scale docs quote: the
// implicit footprint is independent of node count and orders of
// magnitude below the CSR estimate for any non-trivial instance.
func TestFootprintBytes(t *testing.T) {
	small, err := NewCayleyAdjacency(XORCayley{Bits: 6, Masks: []int32{1, 2, 4, 8, 16, 32}})
	if err != nil {
		t.Fatal(err)
	}
	bigMasks := make([]int32, 20)
	for i := range bigMasks {
		bigMasks[i] = 1 << uint(i)
	}
	big, err := NewCayleyAdjacency(XORCayley{Bits: 20, Masks: bigMasks})
	if err != nil {
		t.Fatal(err)
	}
	if f := big.FootprintBytes(); f > 1<<12 {
		t.Fatalf("Q20 implicit footprint %d bytes; want descriptor-sized", f)
	}
	if small.FootprintBytes() > big.FootprintBytes() {
		t.Fatalf("footprint shrank with more generators")
	}
	csr := CSRFootprintBytes(big.N(), big.N()*big.MaxDegree()/2)
	if csr < 50<<20 {
		t.Fatalf("Q20 CSR estimate %d bytes; expected ≥ 50 MiB", csr)
	}
	if csr/big.FootprintBytes() < 10000 {
		t.Fatalf("CSR/implicit ratio %d at Q20; expected ≥ 10⁴", csr/big.FootprintBytes())
	}
}
