package graph

import (
	"fmt"
	"math/bits"

	"comparisondiag/internal/bitset"
)

// Adjacencer is the neighbour-enumeration contract the diagnosis stack
// runs on. Two implementations exist: *Graph (CSR-backed — a table) and
// CayleyAdjacency (descriptor-backed — a formula). Everything above this
// interface (part certification, Set_Builder tree growth, boundary
// computation) sees identical neighbour sequences from both, so engines
// over million-node structured families can skip materialising the CSR
// entirely: at Q20 the hypercube's target array alone is ~80 MB that an
// implicit engine never allocates.
//
// Contract: AppendNeighbors(u, buf) returns u's neighbours in strictly
// ascending order. It may return buf with the neighbours appended after
// buf[:0] reslicing, or an internal read-only view (the CSR
// implementation does the latter); callers must treat the result as
// invalid after the next call with the same buf and must not modify it.
type Adjacencer interface {
	// N returns the number of nodes.
	N() int
	// Degree returns the degree of u.
	Degree(u int32) int
	// MaxDegree returns the maximum node degree.
	MaxDegree() int
	// MinDegree returns the minimum node degree.
	MinDegree() int
	// AppendNeighbors returns u's neighbours in ascending order, using
	// buf as backing storage when the implementation generates them.
	AppendNeighbors(u int32, buf []int32) []int32
}

// AppendNeighbors implements Adjacencer for the CSR graph: the returned
// slice is the usual read-only view into the target array (buf is
// ignored — no copy is ever made on the table-backed path).
func (g *Graph) AppendNeighbors(u int32, buf []int32) []int32 {
	return g.targets[g.offsets[u]:g.offsets[u+1]]
}

// CSR asserts an Adjacencer down to its CSR-backed implementation,
// returning nil for implicit (generator-backed) adjacency. Hot paths
// use this to keep the flat offset/target walk when a table exists and
// fall back to AppendNeighbors generation when it does not.
func CSR(a Adjacencer) *Graph {
	g, _ := a.(*Graph)
	return g
}

// CayleyAdjacency is the implicit Adjacencer: neighbourhoods are
// generated on demand from a shape-validated CayleyDescriptor and no
// per-edge storage exists. The structure is immutable after
// construction and safe for concurrent AppendNeighbors calls (each call
// works entirely in the caller's buffer).
type CayleyAdjacency struct {
	desc CayleyDescriptor
	n    int
	deg  int

	// xor
	masks []int32
	// additive / mixed-radix (additive is compiled to the mixed-radix
	// form: uniform radices, ±1 unit-vector generators)
	radices []int32
	strides []int32
	gens    [][]int32 // generator digit vectors, ascending dimension
}

// NewCayleyAdjacency builds an implicit adjacency from a descriptor.
// Only the descriptor's shape is validated (arities, mask ranges,
// distinctness, negation closure) — there is no graph to scan edges
// against; the shape rules are exactly the ones VerifyCayley enforces
// before its per-node scan, and they suffice for the generated
// adjacency to be a simple undirected regular graph.
func NewCayleyAdjacency(desc CayleyDescriptor) (*CayleyAdjacency, error) {
	ca := &CayleyAdjacency{desc: desc}
	switch d := desc.(type) {
	case XORCayley:
		if err := checkXORShape(d); err != nil {
			return nil, err
		}
		ca.n = d.Order()
		ca.deg = len(d.Masks)
		ca.masks = append([]int32(nil), d.Masks...)
	case AdditiveCayley:
		if d.K < 3 || d.Dims < 1 {
			return nil, fmt.Errorf("graph: additive descriptor needs k ≥ 3, dims ≥ 1 (got k=%d, dims=%d)", d.K, d.Dims)
		}
		radices := make([]int, d.Dims)
		gens := make([][]int, 0, 2*d.Dims)
		for dim := 0; dim < d.Dims; dim++ {
			radices[dim] = d.K
			up := make([]int, d.Dims)
			down := make([]int, d.Dims)
			up[dim], down[dim] = 1, d.K-1
			gens = append(gens, up, down)
		}
		compiled, err := NewCayleyAdjacency(MixedRadixCayley{Radices: radices, Gens: gens})
		if err != nil {
			return nil, err
		}
		compiled.desc = d // report the declared form, not the compilation
		return compiled, nil
	case MixedRadixCayley:
		if err := checkMixedRadixShape(d); err != nil {
			return nil, err
		}
		ca.n = d.Order()
		ca.deg = len(d.Gens)
		dims := len(d.Radices)
		ca.radices = make([]int32, dims)
		ca.strides = make([]int32, dims)
		s := int32(1)
		for i, k := range d.Radices {
			ca.radices[i] = int32(k)
			ca.strides[i] = s
			s *= int32(k)
		}
		ca.gens = make([][]int32, len(d.Gens))
		for gi, gen := range d.Gens {
			v := make([]int32, dims)
			for di, q := range gen {
				v[di] = int32(q)
			}
			ca.gens[gi] = v
		}
	case nil:
		return nil, fmt.Errorf("graph: nil Cayley descriptor")
	default:
		return nil, fmt.Errorf("graph: unknown Cayley descriptor %T", desc)
	}
	return ca, nil
}

// checkXORShape validates an XORCayley descriptor without a graph: the
// order must be representable, masks distinct, non-zero and in range.
func checkXORShape(d XORCayley) error {
	if d.Bits <= 0 || d.Bits >= 31 {
		return fmt.Errorf("graph: xor-cayley bit width %d outside (0, 31)", d.Bits)
	}
	n := 1 << uint(d.Bits)
	if len(d.Masks) == 0 {
		return fmt.Errorf("graph: xor-cayley descriptor has no generators")
	}
	seen := make(map[int32]bool, len(d.Masks))
	for _, m := range d.Masks {
		if m <= 0 || int(m) >= n {
			return fmt.Errorf("graph: xor-cayley mask %#x out of range (0, %d)", m, n)
		}
		if seen[m] {
			return fmt.Errorf("graph: xor-cayley mask %#x repeated", m)
		}
		seen[m] = true
	}
	return nil
}

// checkMixedRadixShape validates a MixedRadixCayley descriptor without a
// graph: arities ≥ 2, generators digit-wise in range, non-zero,
// distinct, and closed under negation (symmetric adjacency).
func checkMixedRadixShape(d MixedRadixCayley) error {
	dims := len(d.Radices)
	if dims < 1 {
		return fmt.Errorf("graph: mixed-radix descriptor has no dimensions")
	}
	order := 1
	for i, k := range d.Radices {
		if k < 2 {
			return fmt.Errorf("graph: mixed-radix arity %d in dimension %d (need ≥ 2)", k, i)
		}
		if order > (1<<31-1)/k {
			return fmt.Errorf("graph: mixed-radix order overflows int32")
		}
		order *= k
	}
	if len(d.Gens) == 0 {
		return fmt.Errorf("graph: mixed-radix descriptor has no generators")
	}
	seen := make(map[string]bool, len(d.Gens))
	neg := make(map[string]bool, len(d.Gens))
	keyOf := func(gen []int) string {
		b := make([]byte, 0, len(gen)*2)
		for _, q := range gen {
			b = append(b, byte(q), byte(q>>8))
		}
		return string(b)
	}
	for gi, gen := range d.Gens {
		if len(gen) != dims {
			return fmt.Errorf("graph: generator %d has %d digits, descriptor has %d dimensions", gi, len(gen), dims)
		}
		zero := true
		negGen := make([]int, dims)
		for di, q := range gen {
			if q < 0 || q >= d.Radices[di] {
				return fmt.Errorf("graph: generator %d digit %d = %d out of range [0, %d)", gi, di, q, d.Radices[di])
			}
			if q != 0 {
				zero = false
				negGen[di] = d.Radices[di] - q
			}
		}
		if zero {
			return fmt.Errorf("graph: generator %d is the identity", gi)
		}
		k := keyOf(gen)
		if seen[k] {
			return fmt.Errorf("graph: generator %d repeated", gi)
		}
		seen[k] = true
		neg[keyOf(negGen)] = true
	}
	for k := range neg {
		if !seen[k] {
			return fmt.Errorf("graph: generator set not closed under negation (adjacency could not be symmetric)")
		}
	}
	return nil
}

// Descriptor returns the descriptor the adjacency was built from.
func (ca *CayleyAdjacency) Descriptor() CayleyDescriptor { return ca.desc }

// N implements Adjacencer.
func (ca *CayleyAdjacency) N() int { return ca.n }

// Degree implements Adjacencer: Cayley graphs are regular.
func (ca *CayleyAdjacency) Degree(u int32) int { return ca.deg }

// MaxDegree implements Adjacencer.
func (ca *CayleyAdjacency) MaxDegree() int { return ca.deg }

// MinDegree implements Adjacencer.
func (ca *CayleyAdjacency) MinDegree() int { return ca.deg }

// AppendNeighbors implements Adjacencer: generates u's neighbours in
// ascending order into buf. Safe for concurrent use — all mutable state
// is the caller's buffer and the stack.
func (ca *CayleyAdjacency) AppendNeighbors(u int32, buf []int32) []int32 {
	buf = buf[:0]
	if ca.masks != nil {
		for _, m := range ca.masks {
			buf = insertAscending(buf, u^m)
		}
		return buf
	}
	var digits [32]int32
	x := u
	for di, k := range ca.radices {
		digits[di] = x % k
		x /= k
	}
	for _, gen := range ca.gens {
		v := u
		for di, q := range gen {
			if q == 0 {
				continue
			}
			nd := digits[di] + q
			if nd >= ca.radices[di] {
				nd -= ca.radices[di]
			}
			v += (nd - digits[di]) * ca.strides[di]
		}
		buf = insertAscending(buf, v)
	}
	return buf
}

// insertAscending inserts v into the sorted slice s (insertion sort —
// degrees are small, a few dozen at most).
func insertAscending(s []int32, v int32) []int32 {
	s = append(s, v)
	i := len(s) - 1
	for i > 0 && s[i-1] > v {
		s[i] = s[i-1]
		i--
	}
	s[i] = v
	return s
}

// FootprintBytes estimates the resident bytes of the implicit adjacency:
// the descriptor arrays only — independent of node count.
func (ca *CayleyAdjacency) FootprintBytes() int64 {
	total := int64(4 * len(ca.masks))
	total += int64(4 * (len(ca.radices) + len(ca.strides)))
	for _, g := range ca.gens {
		total += int64(4 * len(g))
	}
	return total + 64 // struct header, slice headers
}

// CSRFootprintBytes estimates the resident bytes of a CSR graph on n
// nodes with m undirected edges: the offset and target arrays.
func CSRFootprintBytes(n, m int) int64 {
	return int64(n+1)*4 + int64(2*m)*4
}

// NeighborsOfSetOnInto is NeighborsOfSetInto over any Adjacencer: it
// computes the boundary N(set) — nodes outside set adjacent to a member
// — into out (cleared first). CSR-backed adjacencies take the graph's
// own word-level implementation; implicit ones run the same
// dense/sparse strategy over generated neighbourhoods, using buf as the
// generation buffer. Returns buf (possibly grown) for reuse.
func NeighborsOfSetOnInto(a Adjacencer, set, out *bitset.Set, buf []int32) []int32 {
	if g := CSR(a); g != nil {
		g.NeighborsOfSetInto(set, out)
		return buf
	}
	n := a.N()
	if set.Len() != n {
		panic("graph: NeighborsOfSet capacity mismatch with graph size")
	}
	out.Clear()
	words := set.Words()
	if 2*set.Count() > n {
		// Dense set: scan the small complement and ask each outside node
		// whether any neighbour is a member.
		for wi, w := range words {
			inv := ^w
			if wi == len(words)-1 {
				if tail := uint(n & 63); tail != 0 {
					inv &= (1 << tail) - 1
				}
			}
			for inv != 0 {
				v := int32(wi<<6 + bits.TrailingZeros64(inv))
				inv &= inv - 1
				buf = a.AppendNeighbors(v, buf)
				for _, u := range buf {
					if set.Contains(int(u)) {
						out.Add(int(v))
						break
					}
				}
			}
		}
		return buf
	}
	for wi, w := range words {
		for w != 0 {
			u := int32(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
			buf = a.AppendNeighbors(u, buf)
			for _, v := range buf {
				out.Add(int(v))
			}
		}
	}
	out.Subtract(set)
	return buf
}
