package graph

// Exact vertex connectivity via Menger's theorem: the maximum number of
// internally node-disjoint s-t paths equals the maximum flow in the
// node-split digraph with unit internal capacities. The diagnosis theory
// (Theorem 1 of the paper) requires connectivity κ ≥ diagnosability δ;
// topology tests use this computation to verify the κ claimed for each
// family on small instances instead of trusting the literature blindly.

// flowNet is a tiny Edmonds–Karp max-flow network specialised to the unit
// capacities that arise from node splitting. Arcs are stored paired with
// their reverses (arc i reversed is i^1).
type flowNet struct {
	head []int32 // first arc index per vertex, -1 terminated via next
	next []int32
	to   []int32
	cap  []int8
}

func newFlowNet(nv, arcHint int) *flowNet {
	f := &flowNet{head: make([]int32, nv)}
	for i := range f.head {
		f.head[i] = -1
	}
	f.next = make([]int32, 0, arcHint)
	f.to = make([]int32, 0, arcHint)
	f.cap = make([]int8, 0, arcHint)
	return f
}

func (f *flowNet) addArc(u, v int32, c int8) {
	f.to = append(f.to, v)
	f.cap = append(f.cap, c)
	f.next = append(f.next, f.head[u])
	f.head[u] = int32(len(f.to) - 1)

	f.to = append(f.to, u)
	f.cap = append(f.cap, 0)
	f.next = append(f.next, f.head[v])
	f.head[v] = int32(len(f.to) - 1)
}

// maxflow runs BFS augmentation until no augmenting path remains; with
// unit capacities this is O(flow · E).
func (f *flowNet) maxflow(s, t int32, limit int) int {
	nv := len(f.head)
	parentArc := make([]int32, nv)
	flow := 0
	for flow < limit {
		for i := range parentArc {
			parentArc[i] = -1
		}
		queue := []int32{s}
		parentArc[s] = -2
		found := false
	bfs:
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for a := f.head[u]; a != -1; a = f.next[a] {
				v := f.to[a]
				if f.cap[a] > 0 && parentArc[v] == -1 {
					parentArc[v] = a
					if v == t {
						found = true
						break bfs
					}
					queue = append(queue, v)
				}
			}
		}
		if !found {
			break
		}
		for v := t; v != s; {
			a := parentArc[v]
			f.cap[a]--
			f.cap[a^1]++
			v = f.to[a^1]
		}
		flow++
	}
	return flow
}

// LocalConnectivity returns the maximum number of internally
// node-disjoint paths between distinct non-adjacent nodes s and t
// (Menger). For adjacent nodes the notion is not defined by a vertex
// cut; callers should not pass adjacent pairs.
func (g *Graph) LocalConnectivity(s, t int32) int {
	// Node splitting: node x becomes x_in = 2x, x_out = 2x+1 with an
	// internal unit arc; each undirected edge {u,v} becomes
	// u_out -> v_in and v_out -> u_in.
	f := newFlowNet(2*g.n, 4*g.m+2*g.n)
	for u := int32(0); int(u) < g.n; u++ {
		c := int8(1)
		if u == s || u == t {
			c = int8(127)
		}
		f.addArc(2*u, 2*u+1, c)
		for _, v := range g.Neighbors(u) {
			f.addArc(2*u+1, 2*v, 1)
		}
	}
	return f.maxflow(2*s+1, 2*t, g.n)
}

// VertexConnectivity computes κ(G) exactly. Intended for the small-to-
// medium instances used in validation tests; cost is
// O((minDeg+1) · N) max-flow computations. For a complete graph it
// returns N-1, and 0 for disconnected or trivial graphs.
func (g *Graph) VertexConnectivity() int {
	if g.n <= 1 {
		return 0
	}
	if !g.Connected() {
		return 0
	}
	// v0: a minimum-degree vertex. Every minimum cut either avoids v0,
	// avoids one of its neighbours, or would need to contain all of
	// N[v0] and thus exceed deg(v0) ≥ κ — impossible. So scanning pairs
	// anchored at {v0} ∪ N(v0) reaches a minimum cut.
	v0 := int32(0)
	for u := int32(1); int(u) < g.n; u++ {
		if g.Degree(u) < g.Degree(v0) {
			v0 = u
		}
	}
	best := g.n - 1
	anchors := append([]int32{v0}, g.Neighbors(v0)...)
	for _, s := range anchors {
		inNbhd := make([]bool, g.n)
		inNbhd[s] = true
		for _, v := range g.Neighbors(s) {
			inNbhd[v] = true
		}
		for t := int32(0); int(t) < g.n; t++ {
			if inNbhd[t] {
				continue
			}
			if lc := g.LocalConnectivity(s, t); lc < best {
				best = lc
				if best == 0 {
					return 0
				}
			}
		}
	}
	return best
}
