package graph

import (
	"math/rand"
	"testing"

	"comparisondiag/internal/bitset"
)

// ring returns the cycle graph C_n.
func ring(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.MustAddEdge(int32(i), int32((i+1)%n))
	}
	return b.Build()
}

// complete returns K_n.
func complete(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.MustAddEdge(int32(i), int32(j))
		}
	}
	return b.Build()
}

// grid returns the p×q grid graph.
func grid(p, q int) *Graph {
	b := NewBuilder(p * q)
	id := func(r, c int) int32 { return int32(r*q + c) }
	for r := 0; r < p; r++ {
		for c := 0; c < q; c++ {
			if r+1 < p {
				b.MustAddEdge(id(r, c), id(r+1, c))
			}
			if c+1 < q {
				b.MustAddEdge(id(r, c), id(r, c+1))
			}
		}
	}
	return b.Build()
}

func TestBuilderDedupAndCounts(t *testing.T) {
	b := NewBuilder(4)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 0) // duplicate in reverse orientation
	b.MustAddEdge(1, 2)
	b.MustAddEdge(2, 3)
	g := b.Build()
	if g.M() != 3 {
		t.Fatalf("M = %d, want 3", g.M())
	}
	if g.Degree(1) != 2 {
		t.Fatalf("deg(1) = %d, want 2", g.Degree(1))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderRejectsSelfLoopAndRange(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(1, 1); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := b.AddEdge(0, 3); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if err := b.AddEdge(-1, 0); err == nil {
		t.Fatal("negative edge accepted")
	}
}

func TestHasEdge(t *testing.T) {
	g := ring(5)
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 4) {
		t.Fatal("expected ring edges missing")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("unexpected chord in ring")
	}
}

func TestDegreesAndRegularity(t *testing.T) {
	g := ring(6)
	if !g.IsRegular(2) {
		t.Fatal("ring should be 2-regular")
	}
	if g.MaxDegree() != 2 || g.MinDegree() != 2 {
		t.Fatalf("max/min degree = %d/%d, want 2/2", g.MaxDegree(), g.MinDegree())
	}
	h := grid(3, 3)
	if h.MaxDegree() != 4 || h.MinDegree() != 2 {
		t.Fatalf("grid max/min degree = %d/%d, want 4/2", h.MaxDegree(), h.MinDegree())
	}
}

func TestBFSDistances(t *testing.T) {
	g := ring(8)
	d := g.BFSFrom(0, nil)
	if d[4] != 4 || d[7] != 1 || d[3] != 3 {
		t.Fatalf("unexpected ring distances: %v", d)
	}
}

func TestBFSRestricted(t *testing.T) {
	g := ring(8)
	// Restrict to one arc of the ring: 0..3 only.
	set := bitset.New(8)
	for i := 0; i <= 3; i++ {
		set.Add(i)
	}
	d := g.BFSFrom(0, set)
	if d[3] != 3 {
		t.Fatalf("restricted distance to 3 = %d, want 3 (may not use 0-7-...-4 arc)", d[3])
	}
	if d[4] != -1 || d[7] != -1 {
		t.Fatalf("nodes outside restriction should be unreachable: %v", d)
	}
}

func TestComponents(t *testing.T) {
	b := NewBuilder(6)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(2, 3)
	b.MustAddEdge(3, 4)
	g := b.Build()
	comps := g.Components()
	if len(comps) != 3 { // {0,1}, {2,3,4}, {5}
		t.Fatalf("got %d components, want 3", len(comps))
	}
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	if !ring(5).Connected() {
		t.Fatal("ring reported disconnected")
	}
}

func TestConnectedWithin(t *testing.T) {
	g := ring(6)
	set := bitset.New(6)
	set.Add(0)
	set.Add(1)
	set.Add(3)
	if g.ConnectedWithin(set) {
		t.Fatal("{0,1,3} in C6 is not connected")
	}
	set.Add(2)
	if !g.ConnectedWithin(set) {
		t.Fatal("{0,1,2,3} in C6 is connected")
	}
}

func TestNeighborsOfSet(t *testing.T) {
	g := ring(6)
	set := bitset.New(6)
	set.Add(0)
	set.Add(1)
	nb := g.NeighborsOfSet(set)
	want := bitset.FromMembers(6, []int32{2, 5})
	if !nb.Equal(want) {
		t.Fatalf("N({0,1}) = %v, want %v", nb, want)
	}
}

func TestEccentricity(t *testing.T) {
	if e := ring(8).Eccentricity(0); e != 4 {
		t.Fatalf("ecc = %d, want 4", e)
	}
	b := NewBuilder(3)
	b.MustAddEdge(0, 1)
	if e := b.Build().Eccentricity(0); e != -1 {
		t.Fatalf("ecc of disconnected graph = %d, want -1", e)
	}
}

func TestArticulationPoints(t *testing.T) {
	// Path 0-1-2: node 1 is a cut vertex.
	b := NewBuilder(3)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	cuts := b.Build().ArticulationPoints()
	if len(cuts) != 1 || cuts[0] != 1 {
		t.Fatalf("cuts = %v, want [1]", cuts)
	}
	if cuts := ring(6).ArticulationPoints(); len(cuts) != 0 {
		t.Fatalf("cycle has no cut vertices, got %v", cuts)
	}
	// Two triangles sharing node 2.
	b = NewBuilder(5)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	b.MustAddEdge(2, 0)
	b.MustAddEdge(2, 3)
	b.MustAddEdge(3, 4)
	b.MustAddEdge(4, 2)
	cuts = b.Build().ArticulationPoints()
	if len(cuts) != 1 || cuts[0] != 2 {
		t.Fatalf("cuts = %v, want [2]", cuts)
	}
}

func TestVertexConnectivitySmall(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"C5", ring(5), 2},
		{"K5", complete(5), 4},
		{"K2", complete(2), 1},
		{"grid3x3", grid(3, 3), 2},
		{"path3", func() *Graph {
			b := NewBuilder(3)
			b.MustAddEdge(0, 1)
			b.MustAddEdge(1, 2)
			return b.Build()
		}(), 1},
	}
	for _, c := range cases {
		if got := c.g.VertexConnectivity(); got != c.want {
			t.Errorf("κ(%s) = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestVertexConnectivityDisconnected(t *testing.T) {
	b := NewBuilder(4)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(2, 3)
	if got := b.Build().VertexConnectivity(); got != 0 {
		t.Fatalf("κ = %d, want 0", got)
	}
}

func TestLocalConnectivity(t *testing.T) {
	// In C6, between opposite nodes there are exactly 2 disjoint paths.
	if lc := ring(6).LocalConnectivity(0, 3); lc != 2 {
		t.Fatalf("λ(0,3) in C6 = %d, want 2", lc)
	}
	// In K5 minus the edge {0,1}, λ(0,1) = 3 (through the other 3 nodes).
	b := NewBuilder(5)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			if i == 0 && j == 1 {
				continue
			}
			b.MustAddEdge(int32(i), int32(j))
		}
	}
	if lc := b.Build().LocalConnectivity(0, 1); lc != 3 {
		t.Fatalf("λ(0,1) = %d, want 3", lc)
	}
}

func TestFromAdjacency(t *testing.T) {
	g := FromAdjacency(4, func(u int32) []int32 {
		// C4 given redundantly from both sides.
		return []int32{(u + 1) % 4, (u + 3) % 4}
	})
	if g.M() != 4 || !g.IsRegular(2) {
		t.Fatalf("C4 malformed: M=%d", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestBuildCountingSortMatchesNaive cross-checks the O(m) counting-sort
// CSR construction against a naive per-node construction on random
// multigraphs (duplicates, both orientations, unsorted insertion).
func TestBuildCountingSortMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(60)
		b := NewBuilder(n)
		type edge struct{ u, v int32 }
		seen := map[edge]bool{}
		m := rng.Intn(4 * n)
		for i := 0; i < m; i++ {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			if u == v {
				continue
			}
			// Insert in random orientation, sometimes twice.
			b.MustAddEdge(u, v)
			if rng.Intn(3) == 0 {
				b.MustAddEdge(v, u)
			}
			if u > v {
				u, v = v, u
			}
			seen[edge{u, v}] = true
		}
		g := b.Build()
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if g.M() != len(seen) {
			t.Fatalf("trial %d: M=%d, want %d unique edges", trial, g.M(), len(seen))
		}
		for e := range seen {
			if !g.HasEdge(e.u, e.v) || !g.HasEdge(e.v, e.u) {
				t.Fatalf("trial %d: edge %d-%d missing", trial, e.u, e.v)
			}
		}
	}
}

// TestNeighborsOfSetDensePath checks the dense-set complement scan of
// NeighborsOfSetInto against the sparse-path result.
func TestNeighborsOfSetDensePath(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := benchCube(8)
	for trial := 0; trial < 20; trial++ {
		// Dense set: all nodes except a random handful.
		set := bitset.New(g.N())
		for u := 0; u < g.N(); u++ {
			set.Add(u)
		}
		for i := 0; i < 1+rng.Intn(12); i++ {
			set.Remove(rng.Intn(g.N()))
		}
		got := g.NeighborsOfSet(set) // takes the dense path
		// Reference: per-member neighbour marking.
		want := bitset.New(g.N())
		set.ForEach(func(i int) bool {
			for _, v := range g.Neighbors(int32(i)) {
				if !set.Contains(int(v)) {
					want.Add(int(v))
				}
			}
			return true
		})
		if !got.Equal(want) {
			t.Fatalf("trial %d: dense path %v, want %v", trial, got, want)
		}
	}
}
