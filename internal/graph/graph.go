// Package graph provides the undirected-graph substrate used to model
// interconnection networks. Nodes are dense int32 identifiers in [0, N);
// adjacency is stored in compressed-sparse-row (CSR) form — one flat
// target array plus per-node offsets — so that networks with millions of
// nodes fit comfortably in memory, neighbour scans are a single
// contiguous read, and the whole structure is built in O(m) by counting
// sort. The package also supplies the exact structural computations the
// diagnosis theory relies on: connectivity (via Menger/max-flow),
// articulation points, components and BFS layers.
package graph

import (
	"errors"
	"fmt"
	"slices"
)

// Graph is a simple undirected graph over nodes 0..N-1 in CSR layout:
// the neighbours of u are targets[offsets[u]:offsets[u+1]], ascending.
// Build one with NewBuilder; a finished Graph is immutable and safe for
// concurrent readers.
type Graph struct {
	n       int
	offsets []int32 // len n+1; offsets[u] is the start of u's block
	targets []int32 // len 2m; sorted within each node's block
	m       int     // number of undirected edges
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// Neighbors returns the adjacency list of u in ascending order, as a
// view into the CSR target array. The caller must not modify the
// returned slice.
func (g *Graph) Neighbors(u int32) []int32 {
	return g.targets[g.offsets[u]:g.offsets[u+1]]
}

// Degree returns the degree of u.
func (g *Graph) Degree(u int32) int { return int(g.offsets[u+1] - g.offsets[u]) }

// Adjacency exposes the raw CSR arrays: the neighbours of u are
// targets[offsets[u]:offsets[u+1]], ascending. Callers must treat both
// slices as read-only; the accessor exists so hot kernels (the engine's
// final Set_Builder pass) can walk adjacency without constructing a
// slice header per node — the same escape hatch bitset.Words provides.
func (g *Graph) Adjacency() (offsets, targets []int32) { return g.offsets, g.targets }

// MaxDegree returns the maximum node degree (Δ in the paper).
func (g *Graph) MaxDegree() int {
	d := int32(0)
	for u := 0; u < g.n; u++ {
		if w := g.offsets[u+1] - g.offsets[u]; w > d {
			d = w
		}
	}
	return int(d)
}

// MinDegree returns the minimum node degree.
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	d := g.offsets[1] - g.offsets[0]
	for u := 1; u < g.n; u++ {
		if w := g.offsets[u+1] - g.offsets[u]; w < d {
			d = w
		}
	}
	return int(d)
}

// HasEdge reports whether {u, v} is an edge, by binary search on u's
// (sorted) adjacency block.
func (g *Graph) HasEdge(u, v int32) bool {
	_, ok := slices.BinarySearch(g.Neighbors(u), v)
	return ok
}

// IsRegular reports whether every node has degree d.
func (g *Graph) IsRegular(d int) bool {
	for u := 0; u < g.n; u++ {
		if int(g.offsets[u+1]-g.offsets[u]) != d {
			return false
		}
	}
	return true
}

// Validate checks structural invariants: no self-loops, no duplicate
// edges, symmetric adjacency, sorted lists, consistent CSR offsets.
// Topology constructors call this in tests to catch wiring mistakes.
func (g *Graph) Validate() error {
	if len(g.offsets) != g.n+1 {
		return fmt.Errorf("graph: offsets length %d for %d nodes", len(g.offsets), g.n)
	}
	if g.offsets[0] != 0 || int(g.offsets[g.n]) != len(g.targets) {
		return errors.New("graph: CSR offsets do not span the target array")
	}
	if len(g.targets) != 2*g.m {
		return fmt.Errorf("graph: %d directed arcs for %d undirected edges", len(g.targets), g.m)
	}
	for u := int32(0); int(u) < g.n; u++ {
		if g.offsets[u] > g.offsets[u+1] {
			return fmt.Errorf("graph: offsets not monotone at %d", u)
		}
		a := g.Neighbors(u)
		for i, v := range a {
			if v == u {
				return fmt.Errorf("graph: self-loop at %d", u)
			}
			if v < 0 || int(v) >= g.n {
				return fmt.Errorf("graph: out-of-range neighbour %d of %d", v, u)
			}
			if i > 0 && a[i-1] >= v {
				return fmt.Errorf("graph: adjacency of %d not strictly sorted", u)
			}
			if !g.HasEdge(v, u) {
				return fmt.Errorf("graph: edge %d-%d not symmetric", u, v)
			}
		}
	}
	return nil
}

// Builder accumulates edges and produces an immutable Graph. Adding the
// same undirected edge twice is allowed (deduplicated in Build), which
// keeps topology constructors simple: they may emit each edge from both
// endpoints.
type Builder struct {
	n     int
	edges [][2]int32
}

// NewBuilder returns a Builder for a graph on n nodes.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// AddEdge records the undirected edge {u, v}. Self-loops are rejected.
func (b *Builder) AddEdge(u, v int32) error {
	if u == v {
		return errors.New("graph: self-loop")
	}
	if u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		return fmt.Errorf("graph: edge %d-%d out of range [0,%d)", u, v, b.n)
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, [2]int32{u, v})
	return nil
}

// MustAddEdge is AddEdge that panics on error; used by topology
// constructors whose coordinates are correct by construction.
func (b *Builder) MustAddEdge(u, v int32) {
	if err := b.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// Build deduplicates edges and produces the Graph in CSR form. The whole
// construction is O(m + n): each undirected edge is expanded into its two
// directed arcs, the arc list is sorted with two stable counting-sort
// passes (by target, then by source — an LSD radix sort on node ids), and
// duplicates, now adjacent, are dropped while the flat target array and
// offsets are laid down.
func (b *Builder) Build() *Graph {
	n := b.n
	na := 2 * len(b.edges)
	src := make([]int32, na)
	dst := make([]int32, na)
	for i, e := range b.edges {
		src[2*i], dst[2*i] = e[0], e[1]
		src[2*i+1], dst[2*i+1] = e[1], e[0]
	}
	tmpS := make([]int32, na)
	tmpD := make([]int32, na)
	count := make([]int32, n+1)
	countingSortByKey(dst, src, dst, tmpS, tmpD, count)  // stable pass 1: by target
	countingSortByKey(tmpS, tmpS, tmpD, src, dst, count) // stable pass 2: by source

	offsets := make([]int32, n+1)
	targets := make([]int32, 0, na)
	prevS, prevD := int32(-1), int32(-1)
	u := int32(0)
	for i := 0; i < na; i++ {
		s, d := src[i], dst[i]
		if s == prevS && d == prevD {
			continue
		}
		prevS, prevD = s, d
		for u < s {
			u++
			offsets[u] = int32(len(targets))
		}
		targets = append(targets, d)
	}
	for int(u) < n {
		u++
		offsets[u] = int32(len(targets))
	}
	return &Graph{n: n, offsets: offsets, targets: targets, m: len(targets) / 2}
}

// countingSortByKey stably sorts the arc list (src, dst) by the given
// per-arc key slice into (outS, outD), reusing count as scratch. key
// values must lie in [0, len(count)-1).
func countingSortByKey(key, src, dst, outS, outD, count []int32) {
	for i := range count {
		count[i] = 0
	}
	for _, k := range key {
		count[k]++
	}
	var sum int32
	for i := range count {
		c := count[i]
		count[i] = sum
		sum += c
	}
	for i := range src {
		p := count[key[i]]
		count[key[i]]++
		outS[p], outD[p] = src[i], dst[i]
	}
}

// FromAdjacency builds a Graph directly from an adjacency function: for
// every node u, neigh(u) must list u's neighbours (order irrelevant,
// duplicates tolerated). Symmetry is the caller's responsibility and is
// checked by Validate in tests.
func FromAdjacency(n int, neigh func(u int32) []int32) *Graph {
	b := NewBuilder(n)
	for u := int32(0); int(u) < n; u++ {
		for _, v := range neigh(u) {
			if u < v {
				b.MustAddEdge(u, v)
			} else if v < u {
				b.MustAddEdge(v, u)
			} else {
				panic(fmt.Sprintf("graph: self-loop produced for node %d", u))
			}
		}
	}
	return b.Build()
}
