// Package graph provides the undirected-graph substrate used to model
// interconnection networks. Nodes are dense int32 identifiers in [0, N);
// adjacency is stored in compact slices so that networks with millions of
// nodes fit comfortably in memory. The package also supplies the exact
// structural computations the diagnosis theory relies on: connectivity
// (via Menger/max-flow), articulation points, components and BFS layers.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Graph is a simple undirected graph over nodes 0..N-1. Build one with
// NewBuilder; a finished Graph is immutable and safe for concurrent
// readers.
type Graph struct {
	n   int
	adj [][]int32
	m   int // number of undirected edges
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// Neighbors returns the adjacency list of u in ascending order. The
// caller must not modify the returned slice.
func (g *Graph) Neighbors(u int32) []int32 { return g.adj[u] }

// Degree returns the degree of u.
func (g *Graph) Degree(u int32) int { return len(g.adj[u]) }

// MaxDegree returns the maximum node degree (Δ in the paper).
func (g *Graph) MaxDegree() int {
	d := 0
	for _, a := range g.adj {
		if len(a) > d {
			d = len(a)
		}
	}
	return d
}

// MinDegree returns the minimum node degree.
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	d := len(g.adj[0])
	for _, a := range g.adj[1:] {
		if len(a) < d {
			d = len(a)
		}
	}
	return d
}

// HasEdge reports whether {u, v} is an edge, by binary search on u's
// (sorted) adjacency list.
func (g *Graph) HasEdge(u, v int32) bool {
	a := g.adj[u]
	i := sort.Search(len(a), func(i int) bool { return a[i] >= v })
	return i < len(a) && a[i] == v
}

// IsRegular reports whether every node has degree d.
func (g *Graph) IsRegular(d int) bool {
	for _, a := range g.adj {
		if len(a) != d {
			return false
		}
	}
	return true
}

// Validate checks structural invariants: no self-loops, no duplicate
// edges, symmetric adjacency, sorted lists. Topology constructors call
// this in tests to catch wiring mistakes.
func (g *Graph) Validate() error {
	for u := int32(0); int(u) < g.n; u++ {
		a := g.adj[u]
		for i, v := range a {
			if v == u {
				return fmt.Errorf("graph: self-loop at %d", u)
			}
			if v < 0 || int(v) >= g.n {
				return fmt.Errorf("graph: out-of-range neighbour %d of %d", v, u)
			}
			if i > 0 && a[i-1] >= v {
				return fmt.Errorf("graph: adjacency of %d not strictly sorted", u)
			}
			if !g.HasEdge(v, u) {
				return fmt.Errorf("graph: edge %d-%d not symmetric", u, v)
			}
		}
	}
	return nil
}

// Builder accumulates edges and produces an immutable Graph. Adding the
// same undirected edge twice is allowed (deduplicated in Build), which
// keeps topology constructors simple: they may emit each edge from both
// endpoints.
type Builder struct {
	n     int
	edges [][2]int32
}

// NewBuilder returns a Builder for a graph on n nodes.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// AddEdge records the undirected edge {u, v}. Self-loops are rejected.
func (b *Builder) AddEdge(u, v int32) error {
	if u == v {
		return errors.New("graph: self-loop")
	}
	if u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		return fmt.Errorf("graph: edge %d-%d out of range [0,%d)", u, v, b.n)
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, [2]int32{u, v})
	return nil
}

// MustAddEdge is AddEdge that panics on error; used by topology
// constructors whose coordinates are correct by construction.
func (b *Builder) MustAddEdge(u, v int32) {
	if err := b.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// Build deduplicates edges and produces the Graph.
func (b *Builder) Build() *Graph {
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i][0] != b.edges[j][0] {
			return b.edges[i][0] < b.edges[j][0]
		}
		return b.edges[i][1] < b.edges[j][1]
	})
	deg := make([]int32, b.n)
	m := 0
	var prev [2]int32 = [2]int32{-1, -1}
	for _, e := range b.edges {
		if e == prev {
			continue
		}
		prev = e
		deg[e[0]]++
		deg[e[1]]++
		m++
	}
	flat := make([]int32, 2*m)
	adj := make([][]int32, b.n)
	off := 0
	for u := range adj {
		adj[u] = flat[off : off : off+int(deg[u])]
		off += int(deg[u])
	}
	prev = [2]int32{-1, -1}
	for _, e := range b.edges {
		if e == prev {
			continue
		}
		prev = e
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	for u := range adj {
		a := adj[u]
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	}
	return &Graph{n: b.n, adj: adj, m: m}
}

// FromAdjacency builds a Graph directly from an adjacency function: for
// every node u, neigh(u) must list u's neighbours (order irrelevant,
// duplicates tolerated). Symmetry is the caller's responsibility and is
// checked by Validate in tests.
func FromAdjacency(n int, neigh func(u int32) []int32) *Graph {
	b := NewBuilder(n)
	for u := int32(0); int(u) < n; u++ {
		for _, v := range neigh(u) {
			if u < v {
				b.MustAddEdge(u, v)
			} else if v < u {
				b.MustAddEdge(v, u)
			} else {
				panic(fmt.Sprintf("graph: self-loop produced for node %d", u))
			}
		}
	}
	return b.Build()
}
