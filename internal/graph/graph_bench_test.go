package graph

import (
	"testing"

	"comparisondiag/internal/bitset"
)

// benchCube builds Q_n without importing the topology package (which
// would create an import cycle in benchmarks).
func benchCube(n int) *Graph {
	return FromAdjacency(1<<uint(n), func(u int32) []int32 {
		out := make([]int32, 0, n)
		for b := 0; b < n; b++ {
			out = append(out, u^int32(1<<uint(b)))
		}
		return out
	})
}

func BenchmarkBuildQ14(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := benchCube(14)
		if g.N() != 1<<14 {
			b.Fatal("bad size")
		}
	}
}

func BenchmarkBFSQ14(b *testing.B) {
	g := benchCube(14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := g.BFSFrom(0, nil)
		if d[g.N()-1] != 14 {
			b.Fatal("bad distance")
		}
	}
}

func BenchmarkNeighborsOfSetQ12(b *testing.B) {
	g := benchCube(12)
	// Take the low quarter of the nodes as the set.
	s := bitset.New(g.N())
	for i := 0; i < g.N()/4; i++ {
		s.Add(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nb := g.NeighborsOfSet(s)
		if nb.Count() == 0 {
			b.Fatal("no boundary")
		}
	}
}

func BenchmarkVertexConnectivityQ6(b *testing.B) {
	g := benchCube(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.VertexConnectivity() != 6 {
			b.Fatal("wrong connectivity")
		}
	}
}

// BenchmarkNeighborsOfSetDenseQ14 measures the dense-set complement
// path (the diagnosis workload: the healthy set is all but δ nodes).
func BenchmarkNeighborsOfSetDenseQ14(b *testing.B) {
	g := benchCube(14)
	set := bitset.New(g.N())
	for u := 0; u < g.N(); u++ {
		set.Add(u)
	}
	for i := 0; i < 14; i++ {
		set.Remove(i * 1117)
	}
	out := bitset.New(g.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.NeighborsOfSetInto(set, out)
		if out.Count() == 0 {
			b.Fatal("no boundary")
		}
	}
}
