package graph

import (
	"math/rand"
	"testing"

	"comparisondiag/internal/bitset"
)

// pathGraph builds 0-1-2-...-(n-1).
func pathGraph(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.MustAddEdge(int32(i), int32(i+1))
	}
	return b.Build()
}

// cycleGraph builds an n-cycle.
func cycleGraph(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.MustAddEdge(int32(i), int32((i+1)%n))
	}
	return b.Build()
}

func TestRemoveNodesCompactsLargestComponent(t *testing.T) {
	// Path 0..9; removing node 3 leaves {0,1,2} and {4..9}; the larger
	// right side must win and be renumbered 0..5.
	g := pathGraph(10)
	rr := g.RemoveNodes([]int32{3, 3}) // duplicate tolerated
	if rr.RemovedNodes != 1 {
		t.Fatalf("RemovedNodes = %d, want 1", rr.RemovedNodes)
	}
	if rr.G.N() != 6 {
		t.Fatalf("survivor has %d nodes, want 6", rr.G.N())
	}
	if rr.Stranded != 3 {
		t.Fatalf("Stranded = %d, want 3", rr.Stranded)
	}
	for old := int32(0); old <= 3; old++ {
		if rr.OldToNew[old] != -1 {
			t.Fatalf("OldToNew[%d] = %d, want -1", old, rr.OldToNew[old])
		}
	}
	for new_, old := range rr.NewToOld {
		if want := int32(new_ + 4); old != want {
			t.Fatalf("NewToOld[%d] = %d, want %d", new_, old, want)
		}
		if rr.OldToNew[old] != int32(new_) {
			t.Fatalf("OldToNew[%d] = %d, want %d", old, rr.OldToNew[old], new_)
		}
	}
	if err := rr.G.Validate(); err != nil {
		t.Fatalf("survivor graph invalid: %v", err)
	}
}

func TestRemoveNodesTieBreaksToSmallestId(t *testing.T) {
	// Path 0..6 minus node 3: components {0,1,2} and {4,5,6} are the
	// same size; the one containing the smallest id must win.
	g := pathGraph(7)
	rr := g.RemoveNodes([]int32{3})
	if rr.G.N() != 3 {
		t.Fatalf("survivor has %d nodes, want 3", rr.G.N())
	}
	if rr.NewToOld[0] != 0 || rr.NewToOld[2] != 2 {
		t.Fatalf("tie should keep {0,1,2}, got NewToOld = %v", rr.NewToOld)
	}
}

func TestRemoveEdges(t *testing.T) {
	// 6-cycle minus edges {0,1} and {3,4} splits into {1,2,3} and
	// {4,5,0}; sizes tie, so {0,4,5} (contains node 0) wins.
	g := cycleGraph(6)
	rr := g.RemoveEdges([][2]int32{{1, 0}, {3, 4}, {3, 4}, {2, 4}}) // {2,4} absent: ignored
	if rr.RemovedEdges != 2 {
		t.Fatalf("RemovedEdges = %d, want 2", rr.RemovedEdges)
	}
	if len(rr.GoneEdges) != 2 {
		t.Fatalf("GoneEdges = %v, want 2 normalised entries", rr.GoneEdges)
	}
	if rr.G.N() != 3 || rr.OldToNew[0] < 0 {
		t.Fatalf("want the component containing node 0, got NewToOld = %v", rr.NewToOld)
	}
	if err := rr.G.Validate(); err != nil {
		t.Fatalf("survivor graph invalid: %v", err)
	}
	if rr.G.M() != 2 {
		t.Fatalf("survivor has %d edges, want 2 (path 4-5-0)", rr.G.M())
	}
}

func TestRemoveEmptyDeltaIsIdentity(t *testing.T) {
	g := cycleGraph(8)
	rr := g.Remove(nil, nil)
	if rr.G.N() != 8 || rr.G.M() != 8 || rr.RemovedNodes != 0 || rr.RemovedEdges != 0 || rr.Stranded != 0 {
		t.Fatalf("empty delta changed the graph: %+v", rr)
	}
	for i, v := range rr.OldToNew {
		if int(v) != i {
			t.Fatalf("OldToNew[%d] = %d, want identity", i, v)
		}
	}
}

// TestRemoveRandomMatchesRebuild cross-checks the O(m) compaction against
// a from-scratch Builder construction of the same surviving component.
func TestRemoveRandomMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 50; trial++ {
		n := 12 + rng.Intn(30)
		b := NewBuilder(n)
		for i := 1; i < n; i++ {
			b.MustAddEdge(int32(rng.Intn(i)), int32(i)) // random spanning tree
		}
		extra := rng.Intn(2 * n)
		for i := 0; i < extra; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.MustAddEdge(int32(u), int32(v))
			}
		}
		g := b.Build()
		var nodes []int32
		for u := 0; u < n; u++ {
			if rng.Float64() < 0.2 {
				nodes = append(nodes, int32(u))
			}
		}
		var edges [][2]int32
		for u := int32(0); int(u) < n; u++ {
			for _, v := range g.Neighbors(u) {
				if u < v && rng.Float64() < 0.1 {
					edges = append(edges, [2]int32{u, v})
				}
			}
		}
		rr := g.Remove(nodes, edges)
		if err := rr.G.Validate(); err != nil {
			t.Fatalf("trial %d: survivor invalid: %v", trial, err)
		}
		// Rebuild the survivor naively through the Builder and compare
		// adjacency node by node.
		if rr.G.N() == 0 {
			continue
		}
		nb := NewBuilder(rr.G.N())
		for nu, u := range rr.NewToOld {
			for _, v := range g.Neighbors(u) {
				nv := rr.OldToNew[v]
				if nv < 0 || nv <= int32(nu) {
					continue
				}
				gone := false
				for _, e := range rr.GoneEdges {
					a, bb := e[0], e[1]
					if (a == u && bb == v) || (a == v && bb == u) {
						gone = true
						break
					}
				}
				if !gone {
					nb.MustAddEdge(int32(nu), nv)
				}
			}
		}
		want := nb.Build()
		if want.N() != rr.G.N() || want.M() != rr.G.M() {
			t.Fatalf("trial %d: got %d nodes / %d edges, want %d / %d",
				trial, rr.G.N(), rr.G.M(), want.N(), want.M())
		}
		for u := int32(0); int(u) < want.N(); u++ {
			a, b := rr.G.Neighbors(u), want.Neighbors(u)
			if len(a) != len(b) {
				t.Fatalf("trial %d: node %d degree %d, want %d", trial, u, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("trial %d: node %d adjacency %v, want %v", trial, u, a, b)
				}
			}
		}
		if !rr.G.Connected() {
			t.Fatalf("trial %d: survivor not connected", trial)
		}
	}
}

// TestBFSFromReturnsDistanceArray pins the documented contract: the
// result is a length-N distance array (−1 for unreachable), not a visit
// order.
func TestBFSFromReturnsDistanceArray(t *testing.T) {
	// Path 0-1-2-3 plus isolated node 4.
	b := NewBuilder(5)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	b.MustAddEdge(2, 3)
	g := b.Build()
	dist := g.BFSFrom(1, nil)
	if len(dist) != g.N() {
		t.Fatalf("len(dist) = %d, want g.N() = %d", len(dist), g.N())
	}
	want := []int32{1, 0, 1, 2, -1}
	for v, d := range dist {
		if d != want[v] {
			t.Fatalf("dist[%d] = %d, want %d (distance array, not visit order: a visit order would start with the source id)", v, d, want[v])
		}
	}
	// The restricted variant confines the traversal.
	restrict := bitset.FromMembers(5, []int32{1, 2, 3})
	rd := g.BFSFrom(1, restrict)
	if rd[0] != -1 || rd[3] != 2 {
		t.Fatalf("restricted dist = %v, want node 0 unreachable, node 3 at 2", rd)
	}
}
