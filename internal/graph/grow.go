package graph

import (
	"fmt"

	"comparisondiag/internal/bitset"
)

// Delta is a churn event an engine can rebind across: the loss direction
// (*Removal, PR 6) or the gain direction (*Growth). The interface is
// sealed — the two concrete types are the only deltas the compaction
// invariants hold for.
type Delta interface{ churnDelta() }

func (*Removal) churnDelta() {}
func (*Growth) churnDelta()  {}

// Growth is the outcome of re-admitting removed structure: the compacted
// CSR of the re-grown component plus the id maps an engine needs to
// ascend back toward the pre-churn world. It is the gain-direction
// counterpart of Removal and the other unit of churn core.Engine.Rebind
// accepts.
//
// Like Removal, node ids in G are assigned in increasing pre-churn-id
// order, so OldToNew and SurvivorToNew are monotone and every remapped
// ascending adjacency or part stays ascending.
type Growth struct {
	// G is the re-grown component, compacted to node ids [0, G.N()).
	// After a full restore of a connected original it is CSR-byte-
	// identical to the pre-churn graph.
	G *Graph
	// OldToNew maps pre-churn (original-graph) node ids to re-grown ones;
	// -1 for nodes still gone.
	OldToNew []int32
	// NewToOld maps re-grown node ids back to pre-churn ones (ascending).
	NewToOld []int32
	// SurvivorToNew maps the removal's survivor ids (the graph currently
	// being served) into the re-grown component. It is total — every
	// survivor node and edge persists through a restore, so growth never
	// invalidates what an engine is serving.
	SurvivorToNew []int32
	// Readmitted counts explicitly restored nodes present in G again;
	// Reconnected counts stranded survivors the growth pulled back into
	// the component; StillGone counts pre-churn nodes absent from G.
	Readmitted, Reconnected, StillGone int
	// RestoredEdges counts explicitly restored edges present in G again.
	RestoredEdges int
	// Remaining is the residual removal: the pre-churn graph minus
	// whatever is still gone, with Remaining.G == G. Chain further
	// restores through it (Restore(gr.Remaining, ...)).
	Remaining *Removal
}

// Restore re-admits previously removed nodes and edges of a Removal and
// returns the re-grown component: the connected component of the
// pre-churn graph minus everything still removed that contains the
// currently served survivor (so growth is monotone — the serving
// component only ever gains nodes). Stranded survivors reconnect
// automatically once the structure linking them returns; restoring a
// node that was never removed (or an edge never gone) is a no-op, and
// out-of-range ids panic, mirroring Remove. The whole operation is
// O(n + m) on the pre-churn graph.
//
// Restoring every removed node and edge of a connected original yields a
// G that is CSR-byte-identical to it (see Flap).
func Restore(rr *Removal, nodes []int32, edges [][2]int32) *Growth {
	g := rr.orig
	if g == nil {
		panic("graph: Restore needs a Removal produced by Graph.Remove")
	}
	still := rr.removed.Clone()
	readmitReq := bitset.New(g.n)
	for _, u := range nodes {
		if u < 0 || int(u) >= g.n {
			panic(fmt.Sprintf("graph: Restore node %d out of range [0,%d)", u, g.n))
		}
		if still.Contains(int(u)) {
			still.Remove(int(u))
			readmitReq.Add(int(u))
		}
	}
	var restored map[int64]struct{}
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || v < 0 || int(u) >= g.n || int(v) >= g.n {
			panic(fmt.Sprintf("graph: Restore edge %d-%d out of range [0,%d)", u, v, g.n))
		}
		if u > v {
			u, v = v, u
		}
		if restored == nil {
			restored = make(map[int64]struct{}, len(edges))
		}
		restored[int64(u)<<32|int64(v)] = struct{}{}
	}
	var stillNodes []int32
	still.ForEach(func(i int) bool {
		stillNodes = append(stillNodes, int32(i))
		return true
	})
	var stillEdges [][2]int32
	for _, e := range rr.GoneEdges {
		if restored != nil {
			if _, ok := restored[int64(e[0])<<32|int64(e[1])]; ok {
				continue
			}
		}
		stillEdges = append(stillEdges, e)
	}

	// Re-run the removal with only the residual churn, anchored at the
	// smallest currently served survivor: its component is the one the
	// engine's clients live in, so that is the component to grow.
	anchor := int32(-1)
	if len(rr.NewToOld) > 0 {
		anchor = rr.NewToOld[0]
	}
	res := g.remove(stillNodes, stillEdges, anchor)

	gr := &Growth{
		G:         res.G,
		OldToNew:  res.OldToNew,
		NewToOld:  res.NewToOld,
		Remaining: res,
	}
	gr.SurvivorToNew = make([]int32, len(rr.NewToOld))
	for i, old := range rr.NewToOld {
		gr.SurvivorToNew[i] = res.OldToNew[old]
	}
	for u := 0; u < g.n; u++ {
		nowHere := res.OldToNew[u] >= 0
		if rr.OldToNew[u] < 0 && nowHere {
			if readmitReq.Contains(u) {
				gr.Readmitted++
			} else {
				gr.Reconnected++
			}
		}
		if !nowHere {
			gr.StillGone++
		}
	}
	if restored != nil {
		for _, e := range rr.GoneEdges {
			if _, ok := restored[int64(e[0])<<32|int64(e[1])]; ok &&
				res.OldToNew[e[0]] >= 0 && res.OldToNew[e[1]] >= 0 {
				gr.RestoredEdges++
			}
		}
	}
	return gr
}

// Flap removes the given nodes and edges and immediately restores them —
// the round-trip churn event of a node leaving and rejoining. For a
// connected graph the returned Growth's G is CSR-byte-identical to g:
// the removal compacts survivors in ascending id order and the full
// restore re-admits everything in the same order, so the round trip is
// the identity on the CSR bytes, not merely an isomorphism.
func (g *Graph) Flap(nodes []int32, edges [][2]int32) (*Removal, *Growth) {
	rr := g.Remove(nodes, edges)
	return rr, Restore(rr, nodes, edges)
}
