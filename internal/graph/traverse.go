package graph

import (
	"math/bits"

	"comparisondiag/internal/bitset"
)

// BFSFrom returns a distance array indexed by node id: dist[v] is v's
// BFS (hop) distance from src, or -1 if v is unreachable. Note that the
// result is NOT a visit order — the slice has length g.N() regardless of
// how many nodes are reachable, and dist[v] says how far v is, not when
// it was discovered. When restrict is non-nil the traversal is confined
// to nodes contained in restrict (src must be a member).
func (g *Graph) BFSFrom(src int32, restrict *bitset.Set) []int32 {
	dist := make([]int32, g.n)
	for i := range dist {
		dist[i] = -1
	}
	if restrict != nil && !restrict.Contains(int(src)) {
		return dist
	}
	dist[src] = 0
	queue := []int32{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if dist[v] != -1 {
				continue
			}
			if restrict != nil && !restrict.Contains(int(v)) {
				continue
			}
			dist[v] = dist[u] + 1
			queue = append(queue, v)
		}
	}
	return dist
}

// Connected reports whether the whole graph is connected (true for the
// empty and single-node graph).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	return g.componentSizeFrom(0, nil) == g.n
}

// ConnectedWithin reports whether the induced subgraph on the given node
// set is connected. An empty set counts as connected.
func (g *Graph) ConnectedWithin(set *bitset.Set) bool {
	first := -1
	set.ForEach(func(i int) bool { first = i; return false })
	if first < 0 {
		return true
	}
	return g.componentSizeFrom(int32(first), set) == set.Count()
}

func (g *Graph) componentSizeFrom(src int32, restrict *bitset.Set) int {
	seen := bitset.New(g.n)
	seen.Add(int(src))
	queue := []int32{src}
	size := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if seen.Contains(int(v)) {
				continue
			}
			if restrict != nil && !restrict.Contains(int(v)) {
				continue
			}
			seen.Add(int(v))
			size++
			queue = append(queue, v)
		}
	}
	return size
}

// Components returns the connected components as slices of node ids.
func (g *Graph) Components() [][]int32 {
	seen := bitset.New(g.n)
	var comps [][]int32
	for s := int32(0); int(s) < g.n; s++ {
		if seen.Contains(int(s)) {
			continue
		}
		var comp []int32
		seen.Add(int(s))
		queue := []int32{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			comp = append(comp, u)
			for _, v := range g.Neighbors(u) {
				if !seen.Contains(int(v)) {
					seen.Add(int(v))
					queue = append(queue, v)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// Eccentricity returns the greatest BFS distance from src, or -1 if some
// node is unreachable.
func (g *Graph) Eccentricity(src int32) int {
	dist := g.BFSFrom(src, nil)
	ecc := 0
	for _, d := range dist {
		if d < 0 {
			return -1
		}
		if int(d) > ecc {
			ecc = int(d)
		}
	}
	return ecc
}

// NeighborsOfSet returns the set of nodes outside `set` adjacent to at
// least one member of `set` — the set N of Theorem 1.
func (g *Graph) NeighborsOfSet(set *bitset.Set) *bitset.Set {
	out := bitset.New(g.n)
	g.NeighborsOfSetInto(set, out)
	return out
}

// NeighborsOfSetInto computes NeighborsOfSet into out, which is cleared
// first — the allocation-free variant for callers holding scratch. Both
// member loops run word-level over the bitset (no per-member closure).
// For sparse sets it marks every neighbour unconditionally and removes
// the members with one final Subtract, which is cheaper than a Contains
// check per visited arc; for dense sets (the diagnosis case, where the
// healthy set is all but ≤ δ nodes) it scans the small complement and
// asks each outside node whether any neighbour is a member, touching
// O(|V\set|·Δ) arcs instead of O(|set|·Δ).
func (g *Graph) NeighborsOfSetInto(set, out *bitset.Set) {
	if set.Len() != g.n {
		panic("graph: NeighborsOfSet capacity mismatch with graph size")
	}
	out.Clear()
	words := set.Words()
	if 2*set.Count() > g.n {
		for wi, w := range words {
			inv := ^w
			if wi == len(words)-1 {
				if tail := uint(g.n & 63); tail != 0 {
					inv &= (1 << tail) - 1
				}
			}
			for inv != 0 {
				v := int32(wi<<6 + bits.TrailingZeros64(inv))
				inv &= inv - 1
				for _, u := range g.targets[g.offsets[v]:g.offsets[v+1]] {
					if set.Contains(int(u)) {
						out.Add(int(v))
						break
					}
				}
			}
		}
		return
	}
	for wi, w := range words {
		for w != 0 {
			u := int32(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
			for _, v := range g.targets[g.offsets[u]:g.offsets[u+1]] {
				out.Add(int(v))
			}
		}
	}
	out.Subtract(set)
}

// ArticulationPoints returns the cut vertices of the graph (Tarjan's
// low-link algorithm, iterative to survive deep graphs).
func (g *Graph) ArticulationPoints() []int32 {
	disc := make([]int32, g.n)
	low := make([]int32, g.n)
	parent := make([]int32, g.n)
	childCnt := make([]int32, g.n)
	isCut := make([]bool, g.n)
	for i := range disc {
		disc[i] = -1
		parent[i] = -1
	}
	timer := int32(0)

	type frame struct {
		u  int32
		ai int // index into adjacency
	}
	for s := int32(0); int(s) < g.n; s++ {
		if disc[s] != -1 {
			continue
		}
		stack := []frame{{u: s}}
		disc[s], low[s] = timer, timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.ai < g.Degree(f.u) {
				v := g.Neighbors(f.u)[f.ai]
				f.ai++
				if disc[v] == -1 {
					parent[v] = f.u
					childCnt[f.u]++
					disc[v], low[v] = timer, timer
					timer++
					stack = append(stack, frame{u: v})
				} else if v != parent[f.u] && disc[v] < low[f.u] {
					low[f.u] = disc[v]
				}
			} else {
				stack = stack[:len(stack)-1]
				p := parent[f.u]
				if p != -1 {
					if low[f.u] < low[p] {
						low[p] = low[f.u]
					}
					if parent[p] != -1 && low[f.u] >= disc[p] {
						isCut[p] = true
					}
				}
			}
		}
		if childCnt[s] > 1 {
			isCut[s] = true
		}
	}
	var cuts []int32
	for u, c := range isCut {
		if c {
			cuts = append(cuts, int32(u))
		}
	}
	return cuts
}
