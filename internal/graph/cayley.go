package graph

import (
	"fmt"
	"math/bits"
	"slices"
	"strings"
)

// Algebraic adjacency descriptors. A regular interconnection network is
// usually a Cayley graph: the neighbourhood of every node is one fixed
// generator set acting on the node's id. When that structure is known,
// diagnosis engines can replace per-edge adjacency walks with whole-
// bitset permutations (see internal/core's final-pass kernels), so the
// topology layer *declares* the structure it was built from and this
// package *verifies* a declaration against the CSR adjacency before
// anything trusts it — a descriptor is data, not proof.
//
// Three families of descriptors cover the paper's regular networks:
//
//   - XORCayley: node ids are bit strings and N(u) = {u ⊕ m} over a set
//     of masks. Hypercubes (single-bit masks), folded and enhanced
//     hypercubes (one multi-bit complement mask) and augmented cubes
//     (multi-bit run masks) are all of this shape.
//   - AdditiveCayley: node ids are n-digit base-k strings and
//     N(u) = u ± 1 (mod k) in each digit — the k-ary n-cube (torus).
//   - MixedRadixCayley: the general additive case — node ids are digit
//     strings with per-dimension arities and the generators are
//     arbitrary digit vectors added digit-wise (each digit wrapping
//     modulo its own arity). Augmented k-ary n-cubes (torus edges plus
//     ±(1,…,1,0,…,0) run generators) are of this shape.
//
// Crossed, twisted and shuffle cubes are intentionally *not* describable
// here: their edge rules read other bits of the endpoint (pair-relations,
// a rewired face, suffix-selected tables), so no single generator set
// reproduces their adjacency and VerifyCayley would reject any claim.
type CayleyDescriptor interface {
	// Order returns the number of nodes the descriptor describes; a
	// descriptor only applies to graphs of exactly this order.
	Order() int
	// Degree returns the generator count — the degree of every node.
	Degree() int
	// String renders the structure for logs and CLI output.
	String() string
}

// XORCayley declares N(u) = {u ⊕ m : m ∈ Masks} over node ids in
// [0, 2^Bits). Masks must be distinct, non-zero and below 2^Bits; they
// may have several bits set (folded/enhanced/augmented cubes).
type XORCayley struct {
	Bits  int
	Masks []int32
}

// Order implements CayleyDescriptor.
func (x XORCayley) Order() int { return 1 << uint(x.Bits) }

// Degree implements CayleyDescriptor.
func (x XORCayley) Degree() int { return len(x.Masks) }

// MultiBit reports whether any generator flips more than one bit —
// the case the plain hypercube kernel cannot serve.
func (x XORCayley) MultiBit() bool {
	for _, m := range x.Masks {
		if m&(m-1) != 0 {
			return true
		}
	}
	return false
}

// String implements CayleyDescriptor.
func (x XORCayley) String() string {
	kind := "single-bit"
	if x.MultiBit() {
		kind = "multi-bit"
	}
	return fmt.Sprintf("xor-cayley over GF(2)^%d, %d generators (%s)", x.Bits, len(x.Masks), kind)
}

// AdditiveCayley declares the k-ary n-cube: node ids are Dims-digit
// base-K strings and every node is adjacent to u ± 1 (mod K) in each
// digit. K ≥ 3 keeps the two directions distinct.
type AdditiveCayley struct {
	K, Dims int
}

// Order implements CayleyDescriptor.
func (a AdditiveCayley) Order() int {
	n := 1
	for i := 0; i < a.Dims; i++ {
		n *= a.K
	}
	return n
}

// Degree implements CayleyDescriptor.
func (a AdditiveCayley) Degree() int { return 2 * a.Dims }

// String implements CayleyDescriptor.
func (a AdditiveCayley) String() string {
	return fmt.Sprintf("additive cayley over Z_%d^%d (±1 per digit)", a.K, a.Dims)
}

// MixedRadixCayley declares a Cayley graph of the abelian group
// Z_{K_0} × … × Z_{K_{n-1}}: node ids are mixed-radix digit strings
// (digit d has arity Radices[d]; dimension 0 is the least significant)
// and N(u) = {u + g : g ∈ Gens} with the addition performed digit-wise,
// each digit wrapping modulo its own arity. Gens must be distinct,
// non-zero, digit-wise in range, and closed under negation (adjacency
// is symmetric: u + g ~ u requires -g ∈ Gens).
//
// AdditiveCayley is the special case of uniform arity with the ±1 unit
// vectors as generators; MixedRadixCayley additionally expresses the
// augmented k-ary n-cube's run generators ±(1,…,1,0,…,0) — whose
// id-space delta is node-dependent because every digit wraps
// independently — and per-dimension arities.
type MixedRadixCayley struct {
	Radices []int   // per-dimension arities, each ≥ 2, low dimension first
	Gens    [][]int // generator digit vectors, Gens[i][d] ∈ [0, Radices[d])
}

// Order implements CayleyDescriptor.
func (m MixedRadixCayley) Order() int {
	n := 1
	for _, k := range m.Radices {
		n *= k
	}
	return n
}

// Degree implements CayleyDescriptor.
func (m MixedRadixCayley) Degree() int { return len(m.Gens) }

// String implements CayleyDescriptor.
func (m MixedRadixCayley) String() string {
	var sb strings.Builder
	sb.WriteString("mixed-radix cayley over ")
	for i, k := range m.Radices {
		if i > 0 {
			sb.WriteString("×")
		}
		fmt.Fprintf(&sb, "Z_%d", k)
	}
	fmt.Fprintf(&sb, ", %d generators", len(m.Gens))
	return sb.String()
}

// VerifyCayley checks a descriptor against the graph's CSR adjacency:
// nil means every node's neighbourhood is exactly the generator set
// applied to its id. The check is O(m) and runs once at engine bind
// time, so declared structure — even from an untrusted or buggy
// source — can never route a graph through the wrong kernel: a single
// deviating edge fails the pass.
func VerifyCayley(g *Graph, d CayleyDescriptor) error {
	switch d := d.(type) {
	case XORCayley:
		return verifyXORCayley(g, d)
	case AdditiveCayley:
		return verifyAdditiveCayley(g, d)
	case MixedRadixCayley:
		return verifyMixedRadixCayley(g, d)
	case nil:
		return fmt.Errorf("graph: nil Cayley descriptor")
	default:
		return fmt.Errorf("graph: unknown Cayley descriptor %T", d)
	}
}

func verifyXORCayley(g *Graph, d XORCayley) error {
	n := g.N()
	if d.Bits <= 0 || d.Bits >= 31 || n != 1<<uint(d.Bits) {
		return fmt.Errorf("graph: xor-cayley order 2^%d does not match %d nodes", d.Bits, n)
	}
	if len(d.Masks) == 0 {
		return fmt.Errorf("graph: xor-cayley descriptor has no generators")
	}
	masks := slices.Clone(d.Masks)
	slices.Sort(masks)
	for i, m := range masks {
		if m <= 0 || int(m) >= n {
			return fmt.Errorf("graph: xor-cayley mask %#x out of range (0, %d)", m, n)
		}
		if i > 0 && masks[i-1] == m {
			return fmt.Errorf("graph: xor-cayley mask %#x repeated", m)
		}
	}
	// Distinct masks produce distinct u^m, so per node it suffices that
	// the degree matches and every edge difference is a generator.
	deg := len(masks)
	for u := int32(0); int(u) < n; u++ {
		adj := g.Neighbors(u)
		if len(adj) != deg {
			return fmt.Errorf("graph: node %d has degree %d, descriptor says %d", u, len(adj), deg)
		}
		for _, v := range adj {
			if _, ok := slices.BinarySearch(masks, u^v); !ok {
				return fmt.Errorf("graph: edge %d-%d (difference %#x) not generated by the mask set", u, v, u^v)
			}
		}
	}
	return nil
}

func verifyAdditiveCayley(g *Graph, d AdditiveCayley) error {
	if d.K < 3 || d.Dims < 1 {
		return fmt.Errorf("graph: additive descriptor needs k ≥ 3, dims ≥ 1 (got k=%d, dims=%d)", d.K, d.Dims)
	}
	n := g.N()
	order := 1
	for i := 0; i < d.Dims; i++ {
		if order > n {
			break
		}
		order *= d.K
	}
	if order != n {
		return fmt.Errorf("graph: additive order %d^%d does not match %d nodes", d.K, d.Dims, n)
	}
	k := int32(d.K)
	want := make([]int32, 0, 2*d.Dims)
	for u := int32(0); int(u) < n; u++ {
		want = want[:0]
		stride := int32(1)
		x := u
		for dim := 0; dim < d.Dims; dim++ {
			digit := x % k
			up, down := u+stride, u-stride
			if digit == k-1 {
				up = u - (k-1)*stride
			}
			if digit == 0 {
				down = u + (k-1)*stride
			}
			want = append(want, up, down)
			x /= k
			stride *= k
		}
		slices.Sort(want)
		if !slices.Equal(want, g.Neighbors(u)) {
			return fmt.Errorf("graph: node %d adjacency %v does not match the ±1-per-digit generators %v", u, g.Neighbors(u), want)
		}
	}
	return nil
}

func verifyMixedRadixCayley(g *Graph, d MixedRadixCayley) error {
	dims := len(d.Radices)
	if dims < 1 {
		return fmt.Errorf("graph: mixed-radix descriptor has no dimensions")
	}
	n := g.N()
	order := 1
	for i, k := range d.Radices {
		if k < 2 {
			return fmt.Errorf("graph: mixed-radix arity %d in dimension %d (need ≥ 2)", k, i)
		}
		if order > n {
			break
		}
		order *= k
	}
	if order != n {
		return fmt.Errorf("graph: mixed-radix order %d does not match %d nodes", order, n)
	}
	if len(d.Gens) == 0 {
		return fmt.Errorf("graph: mixed-radix descriptor has no generators")
	}
	stride := make([]int32, dims)
	s := int32(1)
	for i, k := range d.Radices {
		stride[i] = s
		s *= int32(k)
	}
	// Shape checks: in-range digits, non-zero vectors, distinctness and
	// closure under negation (so the generated graph is undirected).
	// Distinct generators of an abelian group move every node to
	// distinct neighbours, so the per-node check below only needs the
	// degree and edge-membership tests.
	seen := make(map[string]bool, len(d.Gens))
	neg := make(map[string]bool, len(d.Gens))
	keyOf := func(gen []int) string {
		b := make([]byte, 0, len(gen)*2)
		for _, q := range gen {
			b = append(b, byte(q), byte(q>>8))
		}
		return string(b)
	}
	for gi, gen := range d.Gens {
		if len(gen) != dims {
			return fmt.Errorf("graph: generator %d has %d digits, descriptor has %d dimensions", gi, len(gen), dims)
		}
		zero := true
		negGen := make([]int, dims)
		for di, q := range gen {
			if q < 0 || q >= d.Radices[di] {
				return fmt.Errorf("graph: generator %d digit %d = %d out of range [0, %d)", gi, di, q, d.Radices[di])
			}
			if q != 0 {
				zero = false
				negGen[di] = d.Radices[di] - q
			}
		}
		if zero {
			return fmt.Errorf("graph: generator %d is the identity", gi)
		}
		k := keyOf(gen)
		if seen[k] {
			return fmt.Errorf("graph: generator %d repeated", gi)
		}
		seen[k] = true
		neg[keyOf(negGen)] = true
	}
	for k := range neg {
		if !seen[k] {
			return fmt.Errorf("graph: generator set not closed under negation (adjacency could not be symmetric)")
		}
	}
	digits := make([]int, dims)
	want := make([]int32, 0, len(d.Gens))
	for u := int32(0); int(u) < n; u++ {
		x := u
		for di, k := range d.Radices {
			digits[di] = int(x % int32(k))
			x /= int32(k)
		}
		want = want[:0]
		for _, gen := range d.Gens {
			v := u
			for di, q := range gen {
				if q == 0 {
					continue
				}
				nd := digits[di] + q
				if nd >= d.Radices[di] {
					nd -= d.Radices[di]
				}
				v += int32(nd-digits[di]) * stride[di]
			}
			want = append(want, v)
		}
		slices.Sort(want)
		if !slices.Equal(want, g.Neighbors(u)) {
			return fmt.Errorf("graph: node %d adjacency %v does not match the declared generators %v", u, g.Neighbors(u), want)
		}
	}
	return nil
}

// DetectXORCayley probes the graph for XOR-Cayley structure with no
// declaration to go on: it reads the candidate generator set off node
// 0's neighbourhood and verifies it against every edge, O(m). This is
// the fallback for raw graphs whose topology layer declares nothing;
// it recognises multi-bit generator sets (folded/enhanced/augmented
// cubes), not just plain hypercubes. Additive structure is not
// detectable this way (the generator deltas wrap per digit), so tori
// must be declared.
func DetectXORCayley(g *Graph) (XORCayley, bool) {
	n := g.N()
	if n < 4 || n&(n-1) != 0 {
		return XORCayley{}, false
	}
	masks := g.Neighbors(0) // = {0 ^ m}: the mask set, sorted, distinct
	if len(masks) == 0 || len(masks) > 64 {
		return XORCayley{}, false
	}
	deg := len(masks)
	for u := int32(1); int(u) < n; u++ {
		adj := g.Neighbors(u)
		if len(adj) != deg {
			return XORCayley{}, false
		}
		for _, v := range adj {
			if _, ok := slices.BinarySearch(masks, u^v); !ok {
				return XORCayley{}, false
			}
		}
	}
	return XORCayley{Bits: bits.TrailingZeros(uint(n)), Masks: slices.Clone(masks)}, true
}
