package schedule

import (
	"math/rand"
	"testing"

	"comparisondiag/internal/core"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

func TestGreedyProducesValidPlan(t *testing.T) {
	// A handful of overlapping tests on 8 nodes.
	tests := []Test{
		{0, 1, 2}, {0, 2, 3}, {1, 0, 2}, {4, 5, 6}, {7, 5, 6}, {3, 4, 7},
	}
	plan := Greedy(tests, 8)
	if plan.Tests != len(tests) {
		t.Fatalf("scheduled %d of %d", plan.Tests, len(tests))
	}
	if err := plan.Validate(8); err != nil {
		t.Fatal(err)
	}
	if plan.Rounds() < LowerBound(tests, 8) {
		t.Fatalf("rounds %d below lower bound %d", plan.Rounds(), LowerBound(tests, 8))
	}
}

func TestGreedyDisjointTestsOneSlot(t *testing.T) {
	tests := []Test{{0, 1, 2}, {3, 4, 5}, {6, 7, 8}}
	plan := Greedy(tests, 9)
	if plan.Rounds() != 1 {
		t.Fatalf("disjoint tests need one slot, got %d", plan.Rounds())
	}
}

func TestGreedySharedTesterSerialises(t *testing.T) {
	// Node 0 participates in every test: the plan must use exactly
	// #tests slots and the lower bound must agree.
	tests := []Test{{0, 1, 2}, {0, 3, 4}, {0, 5, 6}}
	if lb := LowerBound(tests, 7); lb != 3 {
		t.Fatalf("lower bound %d, want 3", lb)
	}
	plan := Greedy(tests, 7)
	if plan.Rounds() != 3 {
		t.Fatalf("rounds %d, want 3", plan.Rounds())
	}
}

func TestPlanValidateCatchesConflicts(t *testing.T) {
	p := &Plan{Slots: [][]Test{{{0, 1, 2}, {2, 3, 4}}}}
	if err := p.Validate(5); err == nil {
		t.Fatal("conflicting slot accepted")
	}
	p = &Plan{Slots: [][]Test{{{0, 1, 1}}}}
	if err := p.Validate(5); err == nil {
		t.Fatal("degenerate test accepted")
	}
}

func TestRecorderCapturesDemandSet(t *testing.T) {
	nw := topology.NewHypercube(7)
	g := nw.Graph()
	F := syndrome.RandomFaults(g.N(), 7, rand.New(rand.NewSource(1)))
	rec := NewRecorder(syndrome.NewLazy(F, syndrome.Mimic{}))
	got, _, err := core.Diagnose(nw, rec)
	if err != nil || !got.Equal(F) {
		t.Fatalf("diagnosis failed: %v", err)
	}
	tests := rec.Tests()
	if len(tests) == 0 {
		t.Fatal("no tests recorded")
	}
	// Distinct tests only, and far fewer than the full table.
	seen := map[Test]bool{}
	for _, tt := range tests {
		if tt.V >= tt.W {
			t.Fatalf("non-canonical test %v", tt)
		}
		if seen[tt] {
			t.Fatalf("duplicate test %v", tt)
		}
		seen[tt] = true
	}
	if int64(len(tests)) >= syndrome.TableSize(g) {
		t.Fatal("demand set should be far smaller than the full table")
	}
	// The demand set schedules into a valid plan.
	plan := Greedy(tests, g.N())
	if err := plan.Validate(g.N()); err != nil {
		t.Fatal(err)
	}
}

func TestDemandScheduleBeatsFullSyndrome(t *testing.T) {
	// The §6 claim in scheduling terms: collecting only the on-demand
	// tests takes far fewer one-port slots than collecting the whole
	// syndrome.
	nw := topology.NewHypercube(8)
	g := nw.Graph()
	F := syndrome.RandomFaults(g.N(), 8, rand.New(rand.NewSource(2)))
	rec := NewRecorder(syndrome.NewLazy(F, syndrome.Mimic{}))
	if _, _, err := core.Diagnose(nw, rec); err != nil {
		t.Fatal(err)
	}
	demand := Greedy(rec.Tests(), g.N())
	full := Greedy(FullSyndromeTests(g), g.N())
	if err := demand.Validate(g.N()); err != nil {
		t.Fatal(err)
	}
	if err := full.Validate(g.N()); err != nil {
		t.Fatal(err)
	}
	if demand.Rounds()*2 >= full.Rounds() {
		t.Fatalf("demand schedule %d rounds vs full %d — expected at least 2x gap",
			demand.Rounds(), full.Rounds())
	}
}

func TestFullSyndromeTestsCount(t *testing.T) {
	g := topology.NewHypercube(5).Graph()
	tests := FullSyndromeTests(g)
	if int64(len(tests)) != syndrome.TableSize(g) {
		t.Fatalf("enumerated %d, want %d", len(tests), syndrome.TableSize(g))
	}
}

func TestGreedyDeterministic(t *testing.T) {
	nw := topology.NewHypercube(6)
	g := nw.Graph()
	tests := FullSyndromeTests(g)
	a := Greedy(tests, g.N())
	b := Greedy(tests, g.N())
	if a.Rounds() != b.Rounds() {
		t.Fatal("greedy not deterministic")
	}
	for i := range a.Slots {
		if len(a.Slots[i]) != len(b.Slots[i]) {
			t.Fatal("slot contents differ")
		}
	}
}

func TestRecorderForwardsResults(t *testing.T) {
	g := topology.NewHypercube(4).Graph()
	F := syndrome.RandomFaults(g.N(), 2, rand.New(rand.NewSource(3)))
	lazy := syndrome.NewLazy(F, syndrome.AllOne{})
	rec := NewRecorder(lazy)
	syndrome.ForEachTest(g, func(u, v, w int32) bool {
		if rec.Test(u, v, w) != lazy.Test(u, v, w) {
			t.Fatalf("recorder altered result at s_%d(%d,%d)", u, v, w)
		}
		return true
	})
	if rec.Lookups() != lazy.Lookups() {
		t.Fatal("lookup forwarding broken")
	}
}
