// Package schedule models the cost of actually *performing* comparison
// tests, the concern the paper's Section 6 raises alongside look-up
// economy: "it might be that any node can only send one message at any
// time and thus that at least d time units are required in order for a
// node to send a message to each of its neighbours (with different
// nodes having to synchronize their messages to avoid conflicts)".
//
// A comparison test s_u(v, w) occupies the tester u and both subjects v
// and w for one time slot (u sends the stimulus, v and w reply). Two
// tests sharing any participant conflict. Scheduling a test set into
// conflict-free slots is interval colouring of the conflict graph; the
// package provides a deterministic greedy scheduler, a participation
// lower bound, and a recorder that captures exactly which tests a
// diagnosis algorithm demands.
package schedule

import (
	"slices"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/graph"
	"comparisondiag/internal/syndrome"
)

// Test is one comparison test: tester U comparing neighbours V and W
// (V < W canonical).
type Test struct {
	U, V, W int32
}

// canonical normalises the subject order.
func (t Test) canonical() Test {
	if t.V > t.W {
		t.V, t.W = t.W, t.V
	}
	return t
}

// Plan is a conflict-free assignment of tests to time slots.
type Plan struct {
	// Slots[i] lists the tests performed in parallel during slot i.
	Slots [][]Test
	// Tests is the total number of scheduled tests.
	Tests int
}

// Rounds returns the makespan of the plan.
func (p *Plan) Rounds() int { return len(p.Slots) }

// Validate checks that no two tests in a slot share a participant and
// that every test's participants are distinct.
func (p *Plan) Validate(n int) error {
	busy := bitset.New(n)
	for si, slot := range p.Slots {
		busy.Clear()
		for _, t := range slot {
			for _, node := range [3]int32{t.U, t.V, t.W} {
				if busy.Contains(int(node)) {
					return &ConflictError{Slot: si, Node: node}
				}
				busy.Add(int(node))
			}
			if t.U == t.V || t.U == t.W || t.V == t.W {
				return &ConflictError{Slot: si, Node: t.U}
			}
		}
	}
	return nil
}

// ConflictError reports a double-booked node in a plan slot.
type ConflictError struct {
	Slot int
	Node int32
}

// Error implements error.
func (e *ConflictError) Error() string {
	return "schedule: node double-booked in a slot"
}

// LowerBound returns the participation bound on the makespan: no plan
// can be shorter than the number of tests the busiest node takes part
// in.
func LowerBound(tests []Test, n int) int {
	load := make([]int32, n)
	for _, t := range tests {
		load[t.U]++
		load[t.V]++
		load[t.W]++
	}
	max := int32(0)
	for _, l := range load {
		if l > max {
			max = l
		}
	}
	return int(max)
}

// Greedy builds a plan by first-fit colouring: tests are ordered by the
// load of their busiest participant (descending — the classical
// heuristic), then each is placed into the earliest slot where all
// three participants are free. Deterministic for a given input.
func Greedy(tests []Test, n int) *Plan {
	ts := make([]Test, len(tests))
	for i, t := range tests {
		ts[i] = t.canonical()
	}
	load := make([]int32, n)
	for _, t := range ts {
		load[t.U]++
		load[t.V]++
		load[t.W]++
	}
	key := func(t Test) int32 {
		m := load[t.U]
		if load[t.V] > m {
			m = load[t.V]
		}
		if load[t.W] > m {
			m = load[t.W]
		}
		return m
	}
	slices.SortStableFunc(ts, func(a, b Test) int {
		ka, kb := key(a), key(b)
		if ka != kb {
			return int(kb - ka)
		}
		if a.U != b.U {
			return int(a.U - b.U)
		}
		if a.V != b.V {
			return int(a.V - b.V)
		}
		return int(a.W - b.W)
	})

	plan := &Plan{Tests: len(ts)}
	var slotBusy []*bitset.Set
	// firstFree[u] caches the earliest slot at which u may be free, so
	// the scan below skips slots that cannot work.
	for _, t := range ts {
		placed := false
		for si := 0; si < len(slotBusy); si++ {
			b := slotBusy[si]
			if b.Contains(int(t.U)) || b.Contains(int(t.V)) || b.Contains(int(t.W)) {
				continue
			}
			b.Add(int(t.U))
			b.Add(int(t.V))
			b.Add(int(t.W))
			plan.Slots[si] = append(plan.Slots[si], t)
			placed = true
			break
		}
		if !placed {
			b := bitset.New(n)
			b.Add(int(t.U))
			b.Add(int(t.V))
			b.Add(int(t.W))
			slotBusy = append(slotBusy, b)
			plan.Slots = append(plan.Slots, []Test{t})
		}
	}
	return plan
}

// Recorder wraps a Syndrome and records each distinct test consulted,
// in first-consultation order — the demand set of an algorithm run.
// Not safe for concurrent use (record sequential runs).
type Recorder struct {
	inner syndrome.Syndrome
	seen  map[Test]struct{}
	tests []Test
}

// NewRecorder wraps s.
func NewRecorder(s syndrome.Syndrome) *Recorder {
	return &Recorder{inner: s, seen: make(map[Test]struct{})}
}

// Test implements syndrome.Syndrome.
func (r *Recorder) Test(u, v, w int32) int {
	t := Test{U: u, V: v, W: w}.canonical()
	if _, ok := r.seen[t]; !ok {
		r.seen[t] = struct{}{}
		r.tests = append(r.tests, t)
	}
	return r.inner.Test(u, v, w)
}

// Lookups implements syndrome.Syndrome.
func (r *Recorder) Lookups() int64 { return r.inner.Lookups() }

// ResetLookups implements syndrome.Syndrome.
func (r *Recorder) ResetLookups() { r.inner.ResetLookups() }

// Tests returns the recorded distinct tests in demand order.
func (r *Recorder) Tests() []Test { return r.tests }

// FullSyndromeTests enumerates the complete test set of g — what a
// full-table algorithm must have performed before it can run.
func FullSyndromeTests(g *graph.Graph) []Test {
	var out []Test
	syndrome.ForEachTest(g, func(u, v, w int32) bool {
		out = append(out, Test{U: u, V: v, W: w})
		return true
	})
	return out
}
