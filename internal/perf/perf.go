// Package perf is the repository's benchmark-regression harness: a
// fixed suite of hot-path measurements (diagnosis end-to-end, the final
// Set_Builder pass, graph construction, boundary extraction) run via
// testing.Benchmark and serialised as JSON. cmd/benchtab's -json mode
// writes the suite to a BENCH_<n>.json file; committing one per PR
// gives the project a perf trajectory that future changes are compared
// against (ns/op, lookups/op and allocs/op per experiment).
package perf

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/campaign"
	"comparisondiag/internal/core"
	"comparisondiag/internal/graph"
	"comparisondiag/internal/serve"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// Result is one benchmark measurement.
type Result struct {
	Name         string  `json:"name"`
	N            int     `json:"n"` // iterations run
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	LookupsPerOp float64 `json:"lookups_per_op,omitempty"` // syndrome consultations
}

// Report is the file-level JSON document.
type Report struct {
	Schema  int      `json:"schema"`
	GoOS    string   `json:"goos"`
	GoArch  string   `json:"goarch"`
	Results []Result `json:"results"`
}

// run wraps testing.Benchmark. oneOp, when non-nil, performs exactly
// one operation and returns its syndrome look-up count; it is invoked
// once after the timing runs, so lookups_per_op is the operation's
// exact, deterministic count — testing.Benchmark ramps b.N over several
// runs, which would otherwise smear the counter across an unknown
// number of iterations.
func run(name string, oneOp func() int64, fn func(b *testing.B)) Result {
	r := testing.Benchmark(fn)
	res := Result{
		Name:        name,
		N:           r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if oneOp != nil {
		res.LookupsPerOp = float64(oneOp())
	}
	return res
}

// diagnoseCase measures DiagnoseOpts end-to-end on one network with δ
// random faults under the mimic adversary — the same configuration as
// the repository's Theorem 2 benchmark.
func diagnoseCase(nw topology.Network) Result {
	g := nw.Graph()
	rng := rand.New(rand.NewSource(1))
	F := syndrome.RandomFaults(g.N(), nw.Diagnosability(), rng)
	s := syndrome.NewLazy(F, syndrome.Mimic{})
	op := func() int64 {
		before := s.Lookups()
		got, _, err := core.Diagnose(nw, s)
		if err != nil {
			panic(err)
		}
		if !got.Equal(F) {
			panic("misdiagnosis")
		}
		return s.Lookups() - before
	}
	return run("diagnose/"+nw.Name(), op, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			op()
		}
	})
}

// setBuilderCase measures the warm-scratch SetBuilderInto pass alone.
func setBuilderCase(nw topology.Network) Result {
	g := nw.Graph()
	F := syndrome.RandomFaults(g.N(), nw.Diagnosability(), rand.New(rand.NewSource(7)))
	s := syndrome.NewLazy(F, syndrome.Mimic{})
	seed := int32(0)
	for F.Contains(int(seed)) {
		seed++
	}
	sc := core.NewScratch(g.N())
	delta := nw.Diagnosability()
	op := func() int64 {
		r := core.SetBuilderInto(sc, g, s, seed, delta, nil)
		if r.U.Count() == 0 {
			panic("empty result")
		}
		return r.Lookups
	}
	return run("setbuilder/"+nw.Name(), op, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			op()
		}
	})
}

// engineDiagnoseCase measures the engine serving path: warm
// Engine.Diagnose with a bound scratch — partition prebuilt, zero
// steady-state allocation, specialised final pass. Lookups/op must
// equal the free-function diagnose case on the same network: the
// engine path is defined to be look-up-identical.
func engineDiagnoseCase(nw topology.Network) Result {
	g := nw.Graph()
	eng := core.NewEngine(nw)
	F := syndrome.RandomFaults(g.N(), nw.Diagnosability(), rand.New(rand.NewSource(1)))
	s := syndrome.NewLazy(F, syndrome.Mimic{})
	sc := eng.AcquireScratch()
	defer eng.ReleaseScratch(sc)
	opt := core.Options{Scratch: sc}
	op := func() int64 {
		before := s.Lookups()
		got, _, err := eng.DiagnoseOpts(s, opt)
		if err != nil {
			panic(err)
		}
		if !got.Equal(F) {
			panic("misdiagnosis")
		}
		return s.Lookups() - before
	}
	return run("enginediagnose/"+nw.Name(), op, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			op()
		}
	})
}

// implicitEngineDiagnoseCase measures the descriptor-bound serving
// path: a Q_bits engine bound straight from its XOR descriptor — no CSR
// ever materialised — serving warm scratch-bound diagnoses. The fault
// load mirrors engineDiagnoseCase exactly (same size, same seed), so at
// a size where both run, lookups/op must be bit-identical to
// enginediagnose on the same hypercube: implicit adjacency changes
// where neighbours come from, never which tests run. At Q20 (2^20
// nodes) this is the million-node headline the CSR path cannot reach in
// comparable memory (~84 MB of adjacency arrays avoided); allocs/op
// staying 0 is the regression gate.
func implicitEngineDiagnoseCase(bits int) Result {
	masks := make([]int32, bits)
	for i := range masks {
		masks[i] = 1 << uint(i)
	}
	eng, err := core.NewCayleyEngine(graph.XORCayley{Bits: bits, Masks: masks}, bits)
	if err != nil {
		panic(err)
	}
	n := 1 << uint(bits)
	F := syndrome.RandomFaults(n, bits, rand.New(rand.NewSource(1)))
	s := syndrome.NewLazy(F, syndrome.Mimic{})
	sc := eng.AcquireScratch()
	defer eng.ReleaseScratch(sc)
	opt := core.Options{Scratch: sc}
	op := func() int64 {
		before := s.Lookups()
		got, _, err := eng.DiagnoseOpts(s, opt)
		if err != nil {
			panic(err)
		}
		if !got.Equal(F) {
			panic("misdiagnosis")
		}
		return s.Lookups() - before
	}
	return run(fmt.Sprintf("enginediagnoseimplicit/Q%d", bits), op, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			op()
		}
	})
}

// parallelFinalCase is implicitEngineDiagnoseCase under a FinalWorkers
// fan-out: the same Q_bits descriptor-bound engine, the same fault load
// (seed 1, mimic), served with Options.FinalWorkers = workers. The word
// kernels split rounds at word granularity, so lookups/op must be
// bit-identical between the workers = 1 and workers = 4 twins at any
// GOMAXPROCS — the ns/op gap on a multi-core host is the parallel final
// pass's win, and on a single hardware thread the request clamps and
// the twins coincide. Warm allocs/op staying 0 is the regression gate
// for the fan-out plumbing.
func parallelFinalCase(bits, workers int) Result {
	masks := make([]int32, bits)
	for i := range masks {
		masks[i] = 1 << uint(i)
	}
	eng, err := core.NewCayleyEngine(graph.XORCayley{Bits: bits, Masks: masks}, bits)
	if err != nil {
		panic(err)
	}
	n := 1 << uint(bits)
	F := syndrome.RandomFaults(n, bits, rand.New(rand.NewSource(1)))
	s := syndrome.NewLazy(F, syndrome.Mimic{})
	sc := eng.AcquireScratch()
	defer eng.ReleaseScratch(sc)
	opt := core.Options{Scratch: sc, FinalWorkers: workers}
	op := func() int64 {
		before := s.Lookups()
		got, _, err := eng.DiagnoseOpts(s, opt)
		if err != nil {
			panic(err)
		}
		if !got.Equal(F) {
			panic("misdiagnosis")
		}
		return s.Lookups() - before
	}
	return run(fmt.Sprintf("parallelfinal%d/Q%d", workers, bits), op, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			op()
		}
	})
}

// shardedSweepCase measures a δ-fault campaign sweep through a sharded
// runtime: `shards` independent engine snapshots of Q_bits, one worker
// pinned to each, serving 64 trials per op. Per-trial reseeding makes
// the outcomes bit-identical across shard counts (pinned by the
// campaign tests); the shards = 1 vs shards = 4 ns/op ratio on a
// multi-core host is the sharding headline, since each shard's worker
// draws from its own scratch pool and binding snapshot.
func shardedSweepCase(bits, shards int) Result {
	nw := topology.NewHypercube(bits)
	engines := make([]*core.Engine, shards)
	for i := range engines {
		engines[i] = core.NewEngine(nw)
	}
	rt := campaign.NewShardedRuntime(engines, 1)
	defer rt.Close()
	cfg := campaign.Config{MinFaults: bits, MaxFaults: bits, Trials: 64, Seed: 11}
	op := func() {
		for _, p := range campaign.SweepRuntime(rt, cfg) {
			if p.Exact != p.Trials {
				panic("sweep outcome drifted")
			}
		}
	}
	return run(fmt.Sprintf("shardedsweep%d/Q%d", shards, bits), nil, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			op()
		}
	})
}

// batchSyndromes builds k independent δ-fault mimic syndromes.
func batchSyndromes(nw topology.Network, k int) ([]syndrome.Syndrome, []*bitset.Set) {
	g := nw.Graph()
	syns := make([]syndrome.Syndrome, k)
	faults := make([]*bitset.Set, k)
	for i := range syns {
		F := syndrome.RandomFaults(g.N(), nw.Diagnosability(), rand.New(rand.NewSource(int64(i)+100)))
		faults[i] = F
		syns[i] = syndrome.NewLazy(F, syndrome.Mimic{})
	}
	return syns, faults
}

// loopDiagnoseCase measures k looped free-function Diagnose calls —
// the pre-engine serving pattern and the baseline the batch case is
// compared against.
func loopDiagnoseCase(nw topology.Network, k int) Result {
	syns, faults := batchSyndromes(nw, k)
	op := func() int64 {
		var total int64
		for i, s := range syns {
			before := s.Lookups()
			got, _, err := core.Diagnose(nw, s)
			if err != nil {
				panic(err)
			}
			if !got.Equal(faults[i]) {
				panic("misdiagnosis")
			}
			total += s.Lookups() - before
		}
		return total
	}
	return run(fmt.Sprintf("diagnoseloop%d/%s", k, nw.Name()), op, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			op()
		}
	})
}

// batchDiagnoseCase measures Engine.DiagnoseBatch over the same k
// syndromes in its default configuration (worker pool = GOMAXPROCS).
// Per syndrome it produces identical fault sets and identical look-up
// counts to the loop case (pinned by the core equivalence tests).
// ns/op against diagnoseloop is the serving-path headline; on a
// single-CPU host the gap is pure amortisation + kernel, on multicore
// it additionally includes worker parallelism.
func batchDiagnoseCase(nw topology.Network, k int) Result {
	syns, faults := batchSyndromes(nw, k)
	eng := core.NewEngine(nw)
	op := func() int64 {
		before := int64(0)
		for _, s := range syns {
			before += s.Lookups()
		}
		for i, r := range eng.DiagnoseBatch(syns, core.BatchOptions{}) {
			if r.Err != nil {
				panic(r.Err)
			}
			if !r.Faults.Equal(faults[i]) {
				panic("misdiagnosis")
			}
		}
		after := int64(0)
		for _, s := range syns {
			after += s.Lookups()
		}
		return after - before
	}
	return run(fmt.Sprintf("diagnosebatch%d/%s", k, nw.Name()), op, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			op()
		}
	})
}

// batchGenericCase is batchDiagnoseCase with the structure kernel
// suppressed (Options.GenericFinal): the ablation baseline the
// specialised kernels are judged against. Lookups/op must equal the
// kernel-bound batch case on the same network — kernels change
// throughput, never answers.
func batchGenericCase(nw topology.Network, k int) Result {
	syns, faults := batchSyndromes(nw, k)
	eng := core.NewEngine(nw)
	opt := core.BatchOptions{Options: core.Options{GenericFinal: true}}
	op := func() int64 {
		before := int64(0)
		for _, s := range syns {
			before += s.Lookups()
		}
		for i, r := range eng.DiagnoseBatch(syns, opt) {
			if r.Err != nil {
				panic(r.Err)
			}
			if !r.Faults.Equal(faults[i]) {
				panic("misdiagnosis")
			}
		}
		after := int64(0)
		for _, s := range syns {
			after += s.Lookups()
		}
		return after - before
	}
	return run(fmt.Sprintf("diagnosebatch%dgeneric/%s", k, nw.Name()), op, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			op()
		}
	})
}

// campaignSweepCase measures the campaign serving path end to end: a
// low-fault sweep (f = 0..1, the replay-heavy regime where repeated
// hypotheses dominate — every f = 0 trial is the same empty syndrome)
// through Sweep's persistent runtime, with and without the engine
// result cache. Each op binds a fresh cache so the populating misses
// are always measured; the cached-vs-nocache ns/op ratio is the
// campaign throughput headline.
func campaignSweepCase(nw topology.Network, cached bool) Result {
	name := "campaignsweep/" + nw.Name()
	if !cached {
		name = "campaignsweepnocache/" + nw.Name()
	}
	cfg := campaign.Config{MinFaults: 0, MaxFaults: 1, Trials: 64, Seed: 5, Workers: 1}
	op := func() {
		c := cfg
		if cached {
			c.Cache = core.NewResultCache(256)
		}
		for _, p := range campaign.Sweep(nw, c) {
			if p.Exact != p.Trials {
				panic("sweep outcome drifted")
			}
		}
	}
	return run(name, nil, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			op()
		}
	})
}

// batchRepeatCase measures DiagnoseBatch over a batch whose syndromes
// repeat a few hypotheses (total syndromes over `distinct` distinct
// fault sets) — the cache-friendly repeated-syndrome workload. The
// cached variant binds a fresh ResultCache per op, so each op pays the
// `distinct` populating diagnoses and replays the rest; lookups/op
// records the consultation saving.
func batchRepeatCase(nw topology.Network, total, distinct int, cached bool) Result {
	g := nw.Graph()
	delta := nw.Diagnosability()
	eng := core.NewEngine(nw)
	faultSets := make([]*bitset.Set, distinct)
	for d := range faultSets {
		faultSets[d] = syndrome.RandomFaults(g.N(), delta, rand.New(rand.NewSource(int64(d)+500)))
	}
	name := fmt.Sprintf("batchrepeat%d/%s", total, nw.Name())
	if !cached {
		name = fmt.Sprintf("batchrepeat%dnocache/%s", total, nw.Name())
	}
	op := func() int64 {
		syns := make([]syndrome.Syndrome, total)
		for i := range syns {
			syns[i] = syndrome.NewLazy(faultSets[i%distinct], syndrome.Mimic{})
		}
		var opt core.BatchOptions
		if cached {
			opt.Options.ResultCache = core.NewResultCache(2 * distinct)
		}
		for i, r := range eng.DiagnoseBatch(syns, opt) {
			if r.Err != nil {
				panic(r.Err)
			}
			if !r.Faults.Equal(faultSets[i%distinct]) {
				panic("misdiagnosis")
			}
		}
		var lookups int64
		for _, s := range syns {
			lookups += s.Lookups()
		}
		return lookups
	}
	return run(name, op, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			op()
		}
	})
}

// batchSharedCertCase measures batch-aware certification: hypotheses
// replayed under several adversaries with ShareCertification grouping,
// so each hypothesis's part scan runs once. The saving shows in
// lookups/op (certification consultations disappear for group
// members); fault sets and final passes are bit-identical to
// individual calls.
func batchSharedCertCase(nw topology.Network, hyps int, share bool) Result {
	g := nw.Graph()
	delta := nw.Diagnosability()
	eng := core.NewEngine(nw)
	behaviors := []syndrome.Behavior{syndrome.Mimic{}, syndrome.AllZero{}, syndrome.AllOne{}, syndrome.Inverted{}}
	faultSets := make([]*bitset.Set, hyps)
	for d := range faultSets {
		faultSets[d] = syndrome.RandomFaults(g.N(), delta, rand.New(rand.NewSource(int64(d)+900)))
	}
	total := hyps * len(behaviors)
	name := fmt.Sprintf("batchsharedcert%d/%s", total, nw.Name())
	if !share {
		name = fmt.Sprintf("batchsharedcert%doff/%s", total, nw.Name())
	}
	op := func() int64 {
		syns := make([]syndrome.Syndrome, 0, total)
		for _, F := range faultSets {
			for _, b := range behaviors {
				syns = append(syns, syndrome.NewLazy(F, b))
			}
		}
		for _, r := range eng.DiagnoseBatch(syns, core.BatchOptions{ShareCertification: share}) {
			if r.Err != nil {
				panic(r.Err)
			}
		}
		var lookups int64
		for _, s := range syns {
			lookups += s.Lookups()
		}
		return lookups
	}
	return run(name, op, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			op()
		}
	})
}

// batchSharedFinalCase measures batch-aware final passes compounded
// with shared certification: hypotheses replayed under several
// adversaries with ShareCertification + ShareFinalPrefix grouping, so
// each hypothesis pays one part scan and one behaviour-independent
// final-prefix growth, and members only regrow the suffix past the
// first fault-adjacent frontier. With scatter == false the fault sets
// cluster around far nodes (BFS-last from the certified seed) — the
// repeated-hypothesis serving workload this lever targets, where most
// growth rounds never touch N(F); the `off` twin runs the identical
// batch unshared and the ns/op gap is the headline, the lookups/op gap
// (group totals strictly below unshared) the deterministic gate. With
// scatter == true the hypotheses are uniform random fault sets, whose
// hazard mask truncates the shareable prefix after a few rounds — the
// boundary tree is a sliver of the graph, so the sparse dirty-list
// checkpoint records kilobytes where the dense layout still copies full
// per-node arrays. The `full` twin (share with
// BatchOptions.FullCheckpoint) re-runs the identical shared batch on
// the pre-delta dense layout: identical results and lookups/op, and on
// the scatter pair the bytes/op gap is the delta encoding's win.
func batchSharedFinalCase(nw topology.Network, hyps int, share, full, scatter bool) Result {
	g := nw.Graph()
	delta := nw.Diagnosability()
	eng := core.NewEngine(nw)
	parts, err := eng.Parts()
	if err != nil {
		panic(err)
	}
	faultSets := make([]*bitset.Set, hyps)
	if scatter {
		rng := rand.New(rand.NewSource(23))
		for d := range faultSets {
			faultSets[d] = syndrome.RandomFaults(g.N(), delta, rng)
		}
	} else {
		// Fault clusters centred on the nodes farthest (by BFS distance)
		// from the first part's seed: maximally distant from where the
		// final pass starts growing.
		dist := g.BFSFrom(parts[0].Seed, nil)
		centers := make([]int32, 0, hyps)
		for want := int32(1 << 30); len(centers) < hyps; {
			farD := int32(-1)
			for _, d := range dist {
				if d < want && d > farD {
					farD = d
				}
			}
			want = farD
			for v := int32(0); int(v) < len(dist) && len(centers) < hyps; v++ {
				if dist[v] == farD {
					centers = append(centers, v)
				}
			}
		}
		for d := range faultSets {
			faultSets[d] = syndrome.ClusterFaults(g, centers[d], delta)
		}
	}
	behaviors := []syndrome.Behavior{
		syndrome.Mimic{}, syndrome.AllZero{}, syndrome.AllOne{}, syndrome.Inverted{},
		syndrome.Random{Seed: 1}, syndrome.Random{Seed: 2}, syndrome.Random{Seed: 3}, syndrome.Random{Seed: 4},
	}
	total := hyps * len(behaviors)
	kind := ""
	if scatter {
		kind = "scatter"
	}
	name := fmt.Sprintf("batchsharedfinal%s%d/%s", kind, total, nw.Name())
	if !share {
		name = fmt.Sprintf("batchsharedfinal%s%doff/%s", kind, total, nw.Name())
	} else if full {
		name = fmt.Sprintf("batchsharedfinal%sfull%d/%s", kind, total, nw.Name())
	}
	opt := core.BatchOptions{ShareCertification: share, ShareFinalPrefix: share, FullCheckpoint: full}
	op := func() int64 {
		syns := make([]syndrome.Syndrome, 0, total)
		for _, F := range faultSets {
			for _, b := range behaviors {
				syns = append(syns, syndrome.NewLazy(F, b))
			}
		}
		for i, r := range eng.DiagnoseBatch(syns, opt) {
			if r.Err != nil {
				panic(r.Err)
			}
			if !r.Faults.Equal(faultSets[i/len(behaviors)]) {
				panic("misdiagnosis")
			}
		}
		var lookups int64
		for _, s := range syns {
			lookups += s.Lookups()
		}
		return lookups
	}
	return run(name, op, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			op()
		}
	})
}

// churnNodes picks k deterministic distinct nodes of g to remove.
func churnNodes(n, k int) []int32 {
	rng := rand.New(rand.NewSource(20260808))
	seen := make(map[int32]bool, k)
	nodes := make([]int32, 0, k)
	for len(nodes) < k {
		u := int32(rng.Intn(n))
		if !seen[u] {
			seen[u] = true
			nodes = append(nodes, u)
		}
	}
	return nodes
}

// fullBindCase measures the from-scratch alternative to incremental
// rebinding: constructing Q_n and binding a fresh engine (graph build,
// partition, structure detection). The churnrebind case on the same
// topology is gated against a fraction of this.
func fullBindCase(n int) Result {
	return run(fmt.Sprintf("fullbind/Q%d", n), nil, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng := core.NewEngine(topology.NewHypercube(n))
			if eng.PartsErr() != nil {
				b.Fatal(eng.PartsErr())
			}
		}
	})
}

// churnRebindCase measures one incremental rebind end to end: the O(m)
// compaction of a k-node removal plus the Survivor binding derivation
// (partition survival, δ′, kernel re-verification). Survivor rather
// than Rebind keeps the measured engine pristine across iterations;
// the derivation work is identical.
func churnRebindCase(n, k int) Result {
	eng := core.NewEngine(topology.NewHypercube(n))
	nodes := churnNodes(eng.Graph().N(), k)
	return run(fmt.Sprintf("churnrebind/Q%d", n), nil, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rr := eng.Graph().RemoveNodes(nodes)
			if _, _, err := eng.Survivor(rr); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// churnDiagnoseCase measures the warm serving path of a rebound engine:
// scratch-bound Engine.Diagnose on the surviving component after a
// k-node removal. Steady state must stay allocation-free (the
// allocs/op column is the regression gate) and exact under δ′.
func churnDiagnoseCase(n, k int) Result {
	eng := core.NewEngine(topology.NewHypercube(n))
	rr := eng.Graph().RemoveNodes(churnNodes(eng.Graph().N(), k))
	if _, err := eng.Rebind(rr); err != nil {
		panic(err)
	}
	g := eng.Graph()
	F := syndrome.RandomFaults(g.N(), eng.Diagnosability(), rand.New(rand.NewSource(1)))
	s := syndrome.NewLazy(F, syndrome.Mimic{})
	sc := eng.AcquireScratch()
	opt := core.Options{Scratch: sc}
	op := func() int64 {
		before := s.Lookups()
		got, st, err := eng.DiagnoseOpts(s, opt)
		if err != nil {
			panic(err)
		}
		if !got.Equal(F) || !st.Degraded {
			panic("misdiagnosis")
		}
		return s.Lookups() - before
	}
	return run(fmt.Sprintf("churndiagnose/Q%d", n), op, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			op()
		}
	})
}

// churnFlapCase measures one full flap cycle end to end on a live
// engine: removal compaction + degraded Rebind + restore compaction +
// recovery Rebind (δ′ re-ascent, partition regrowth, kernel
// re-promotion). A full restore returns the engine to a
// pristine-equivalent binding, so the cycle composes across iterations
// without drifting. The gate: one cycle must stay well under the cost
// of the two from-scratch binds it replaces.
func churnFlapCase(n, k int) Result {
	eng := core.NewEngine(topology.NewHypercube(n))
	nodes := churnNodes(eng.Graph().N(), k)
	return run(fmt.Sprintf("churnflap/Q%d", n), nil, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rr := eng.Graph().Remove(nodes, nil)
			if _, err := eng.Rebind(rr); err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Rebind(graph.Restore(rr, nodes, nil)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// servedBatchCase measures the diagnosis service end to end over
// loopback HTTP: hyps × 8-behaviour concurrent clients POST
// /v1/diagnose against a live serve.Server and the op completes when
// every response has arrived and verified. With coalesce the server's
// window gathers all of them into one grouped DiagnoseBatch call
// (MaxBatch = the client count, so the last arrival — not the timer —
// triggers the flush); the off twin diagnoses each request the moment
// it arrives. The ns/op gap is what request coalescing buys a loaded
// server; lookups/op (read from the server's own counter) shows the
// shared-certification + shared-final-prefix bill shrinking.
//
// Hypotheses are drawn by a deterministic seed scan that keeps only
// fault sets whose solo diagnosis certifies the first part
// (PartsScanned == 1): a certified part is fault-free, its scan is
// behaviour-independent, and so the coalesced group's certification
// bill does not depend on which member reached the server first —
// keeping lookups/op exactly reproducible for benchtab -compare.
func servedBatchCase(bits, hyps int, coalesce bool) Result {
	nw := topology.NewHypercube(bits)
	g := nw.Graph()
	delta := nw.Diagnosability()
	spec := fmt.Sprintf("q:%d", bits)

	ref := core.NewEngine(nw)
	rng := rand.New(rand.NewSource(101))
	faultSets := make([]*bitset.Set, 0, hyps)
	for len(faultSets) < hyps {
		F := syndrome.RandomFaults(g.N(), delta, rng)
		_, stats, err := ref.Diagnose(syndrome.NewLazy(F, syndrome.Mimic{}))
		if err != nil || stats.PartsScanned != 1 {
			continue
		}
		faultSets = append(faultSets, F)
	}

	type behSpec struct {
		name string
		seed uint64
	}
	behs := []behSpec{
		{"mimic", 0}, {"all-zero", 0}, {"all-one", 0}, {"inverted", 0},
		{"random", 1}, {"random", 2}, {"random", 3}, {"random", 4},
	}
	total := hyps * len(behs)

	cfg := serve.Config{
		Window:   time.Second, // fallback only; MaxBatch triggers the flush
		MaxBatch: total,
		CacheCap: -1, // no result cache: measure coalescing, not caching
	}
	if !coalesce {
		cfg.NoCoalesce = true
	}
	srv := serve.New(cfg)
	if err := srv.Preload(spec); err != nil {
		panic(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer func() {
		hs.Close()
		srv.Close()
	}()
	url := "http://" + ln.Addr().String() + "/v1/diagnose"
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: total}}

	bodies := make([][]byte, total)
	expected := make([][]int, total)
	for i := range bodies {
		F := faultSets[i/len(behs)]
		bs := behs[i%len(behs)]
		body, err := json.Marshal(serve.DiagnoseRequest{
			Topology: spec, Faults: F.Members(), Behavior: bs.name, Seed: bs.seed,
		})
		if err != nil {
			panic(err)
		}
		bodies[i] = body
		expected[i] = F.Members()
	}

	op := func() int64 {
		before := srv.Snapshot().SyndromeLookups
		var wg sync.WaitGroup
		errs := make(chan error, total)
		for i := 0; i < total; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, err := client.Post(url, "application/json", bytes.NewReader(bodies[i]))
				if err != nil {
					errs <- err
					return
				}
				var dr serve.DiagnoseResponse
				err = json.NewDecoder(resp.Body).Decode(&dr)
				resp.Body.Close()
				switch {
				case err != nil:
					errs <- err
				case resp.StatusCode != http.StatusOK:
					errs <- fmt.Errorf("request %d: status %d (%s)", i, resp.StatusCode, dr.Error)
				case len(dr.Faults) != len(expected[i]):
					errs <- fmt.Errorf("request %d: %d faults, want %d", i, len(dr.Faults), len(expected[i]))
				default:
					for j, id := range dr.Faults {
						if id != expected[i][j] {
							errs <- fmt.Errorf("request %d: misdiagnosis", i)
							return
						}
					}
				}
			}(i)
		}
		wg.Wait()
		select {
		case err := <-errs:
			panic(err)
		default:
		}
		return srv.Snapshot().SyndromeLookups - before
	}
	name := fmt.Sprintf("servedbatch%d/%s", total, nw.Name())
	if !coalesce {
		name = fmt.Sprintf("servedbatch%doff/%s", total, nw.Name())
	}
	return run(name, op, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			op()
		}
	})
}

// graphBuildCase measures CSR construction of Q_n via the Builder.
func graphBuildCase(n int) Result {
	return run(fmt.Sprintf("graphbuild/Q%d", n), nil, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			nw := topology.NewHypercube(n)
			if nw.Graph().N() != 1<<uint(n) {
				b.Fatal("bad size")
			}
		}
	})
}

// boundaryCase measures NeighborsOfSetInto on the diagnosis-shaped
// dense set (all nodes healthy but δ).
func boundaryCase(n int) Result {
	nw := topology.NewHypercube(n)
	g := nw.Graph()
	F := syndrome.RandomFaults(g.N(), n, rand.New(rand.NewSource(9)))
	set := bitset.New(g.N())
	for u := 0; u < g.N(); u++ {
		if !F.Contains(u) {
			set.Add(u)
		}
	}
	out := bitset.New(g.N())
	return run(fmt.Sprintf("neighborsofset/Q%d", n), nil, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.NeighborsOfSetInto(set, out)
			if out.Count() == 0 {
				b.Fatal("no boundary")
			}
		}
	})
}

// Suite runs the regression suite and returns the report.
func Suite() *Report {
	rep := &Report{Schema: 1, GoOS: runtime.GOOS, GoArch: runtime.GOARCH}
	for _, n := range []int{8, 10, 12, 14} {
		rep.Results = append(rep.Results, diagnoseCase(topology.NewHypercube(n)))
	}
	rep.Results = append(rep.Results,
		diagnoseCase(topology.NewStar(8)),
		diagnoseCase(topology.NewKAryNCube(4, 4)),
		setBuilderCase(topology.NewHypercube(12)),
		setBuilderCase(topology.NewHypercube(14)),
		engineDiagnoseCase(topology.NewHypercube(14)),
		loopDiagnoseCase(topology.NewHypercube(14), 64),
		batchDiagnoseCase(topology.NewHypercube(14), 64),
		graphBuildCase(14),
		boundaryCase(14),
	)
	// Structured families served by the PR 3 kernels: engine single-shot
	// plus kernel-vs-generic batch pairs (identical lookups/op within a
	// pair; the ns/op gap is the kernel's win).
	rep.Results = append(rep.Results,
		engineDiagnoseCase(topology.NewFoldedHypercube(12)),
		engineDiagnoseCase(topology.NewAugmentedCube(10)),
		engineDiagnoseCase(topology.NewKAryNCube(4, 7)),
		batchDiagnoseCase(topology.NewFoldedHypercube(12), 64),
		batchGenericCase(topology.NewFoldedHypercube(12), 64),
		batchDiagnoseCase(topology.NewAugmentedCube(10), 64),
		batchGenericCase(topology.NewAugmentedCube(10), 64),
		batchDiagnoseCase(topology.NewKAryNCube(4, 7), 64),
		batchGenericCase(topology.NewKAryNCube(4, 7), 64),
	)
	// PR 4: the persistent campaign runtime + engine result cache
	// (cached vs uncached sweep and repeated-syndrome batches),
	// batch-aware certification, and the mixed-radix kernel pair for
	// the augmented k-ary family.
	rep.Results = append(rep.Results,
		campaignSweepCase(topology.NewHypercube(14), true),
		campaignSweepCase(topology.NewHypercube(14), false),
		batchRepeatCase(topology.NewHypercube(14), 64, 8, true),
		batchRepeatCase(topology.NewHypercube(14), 64, 8, false),
		batchSharedCertCase(topology.NewHypercube(14), 16, true),
		batchSharedCertCase(topology.NewHypercube(14), 16, false),
		engineDiagnoseCase(topology.NewAugmentedKAryNCube(4, 5)),
		batchDiagnoseCase(topology.NewAugmentedKAryNCube(4, 5), 64),
		batchGenericCase(topology.NewAugmentedKAryNCube(4, 5), 64),
	)
	// PR 5: batch-aware final passes — repeated hypotheses share the
	// behaviour-independent final-prefix growth on top of the shared
	// part scan (8 hypotheses × 8 adversaries).
	rep.Results = append(rep.Results,
		batchSharedFinalCase(topology.NewHypercube(14), 8, true, false, false),
		batchSharedFinalCase(topology.NewHypercube(14), 8, false, false, false),
	)
	// PR 6: churn tolerance — a from-scratch bind of Q14, the
	// incremental rebind after a 16-node removal (gated well under the
	// full bind), and the warm degraded-mode serving path (0 allocs/op).
	rep.Results = append(rep.Results,
		fullBindCase(14),
		churnRebindCase(14, 16),
		churnDiagnoseCase(14, 16),
	)
	// PR 7: million-node implicit engines — the descriptor-bound Q20
	// diagnose headline (0 allocs/op warm, no CSR), the implicit-vs-CSR
	// Q14 pair (lookups/op bit-identical to enginediagnose/Q14), and the
	// delta-vs-full checkpoint ablation: the far-cluster full twin (dense
	// boundary tree, encodings cost alike) and the scattered-hypothesis
	// pair, where the sparse dirty lists record the sliver-sized boundary
	// tree and the dense layout still copies full per-node arrays —
	// results and lookups identical across every twin.
	rep.Results = append(rep.Results,
		implicitEngineDiagnoseCase(14),
		implicitEngineDiagnoseCase(20),
		batchSharedFinalCase(topology.NewHypercube(14), 8, true, true, false),
		batchSharedFinalCase(topology.NewHypercube(14), 8, true, false, true),
		batchSharedFinalCase(topology.NewHypercube(14), 8, true, true, true),
	)
	// PR 8: parallel million-node serving — the Q20 implicit final pass
	// under a FinalWorkers fan-out (lookups/op bit-identical between the
	// twins; ns/op scales on multi-core hosts and coincides when clamped
	// to one hardware thread) and the sharded Q14 campaign runtime
	// (1-shard vs 4-shard pools over identical bit-identical sweeps).
	rep.Results = append(rep.Results,
		parallelFinalCase(20, 1),
		parallelFinalCase(20, 4),
		shardedSweepCase(14, 1),
		shardedSweepCase(14, 4),
	)
	// PR 9: recovery tolerance — one full remove-restore flap cycle on a
	// live Q14 engine (both rebinds), gated well under the two
	// from-scratch binds it replaces (compare against 2× fullbind/Q14).
	rep.Results = append(rep.Results,
		churnFlapCase(14, 16),
	)
	// PR 10: diagnosis-as-a-service — 64 concurrent loopback clients
	// against cmd/diagnosed's serving stack, with the coalescing window
	// on versus the diagnose-on-arrival twin. The on case must win on
	// both wall time and the server-side look-up bill.
	rep.Results = append(rep.Results,
		servedBatchCase(14, 8, true),
		servedBatchCase(14, 8, false),
	)
	return rep
}

// QuickSuite is the smoke subset for PR CI (bench.sh -quick): the
// fastest representative of each subsystem, small graphs only, so the
// whole run finishes in seconds while still catching a pathological
// hot-path regression or a panicking serving path.
func QuickSuite() *Report {
	rep := &Report{Schema: 1, GoOS: runtime.GOOS, GoArch: runtime.GOARCH}
	rep.Results = append(rep.Results,
		diagnoseCase(topology.NewHypercube(10)),
		setBuilderCase(topology.NewHypercube(10)),
		engineDiagnoseCase(topology.NewHypercube(10)),
		batchRepeatCase(topology.NewHypercube(10), 16, 4, true),
		batchSharedFinalCase(topology.NewHypercube(10), 2, true, false, false),
		campaignSweepCase(topology.NewHypercube(8), true),
		graphBuildCase(10),
		churnRebindCase(10, 4),
		churnFlapCase(10, 4),
		implicitEngineDiagnoseCase(10),
		servedBatchCase(10, 2, true),
	)
	return rep
}

// Read parses a report previously serialised by Write — the other half
// of the perf-trajectory workflow (cmd/benchtab -compare).
func Read(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("perf: parsing report: %w", err)
	}
	return &rep, nil
}

// Write serialises the report as indented JSON.
func (r *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
