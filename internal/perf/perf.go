// Package perf is the repository's benchmark-regression harness: a
// fixed suite of hot-path measurements (diagnosis end-to-end, the final
// Set_Builder pass, graph construction, boundary extraction) run via
// testing.Benchmark and serialised as JSON. cmd/benchtab's -json mode
// writes the suite to a BENCH_<n>.json file; committing one per PR
// gives the project a perf trajectory that future changes are compared
// against (ns/op, lookups/op and allocs/op per experiment).
package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"testing"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/core"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// Result is one benchmark measurement.
type Result struct {
	Name         string  `json:"name"`
	N            int     `json:"n"` // iterations run
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	LookupsPerOp float64 `json:"lookups_per_op,omitempty"` // syndrome consultations
}

// Report is the file-level JSON document.
type Report struct {
	Schema  int      `json:"schema"`
	GoOS    string   `json:"goos"`
	GoArch  string   `json:"goarch"`
	Results []Result `json:"results"`
}

// run wraps testing.Benchmark. oneOp, when non-nil, performs exactly
// one operation and returns its syndrome look-up count; it is invoked
// once after the timing runs, so lookups_per_op is the operation's
// exact, deterministic count — testing.Benchmark ramps b.N over several
// runs, which would otherwise smear the counter across an unknown
// number of iterations.
func run(name string, oneOp func() int64, fn func(b *testing.B)) Result {
	r := testing.Benchmark(fn)
	res := Result{
		Name:        name,
		N:           r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if oneOp != nil {
		res.LookupsPerOp = float64(oneOp())
	}
	return res
}

// diagnoseCase measures DiagnoseOpts end-to-end on one network with δ
// random faults under the mimic adversary — the same configuration as
// the repository's Theorem 2 benchmark.
func diagnoseCase(nw topology.Network) Result {
	g := nw.Graph()
	rng := rand.New(rand.NewSource(1))
	F := syndrome.RandomFaults(g.N(), nw.Diagnosability(), rng)
	s := syndrome.NewLazy(F, syndrome.Mimic{})
	op := func() int64 {
		before := s.Lookups()
		got, _, err := core.Diagnose(nw, s)
		if err != nil {
			panic(err)
		}
		if !got.Equal(F) {
			panic("misdiagnosis")
		}
		return s.Lookups() - before
	}
	return run("diagnose/"+nw.Name(), op, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			op()
		}
	})
}

// setBuilderCase measures the warm-scratch SetBuilderInto pass alone.
func setBuilderCase(nw topology.Network) Result {
	g := nw.Graph()
	F := syndrome.RandomFaults(g.N(), nw.Diagnosability(), rand.New(rand.NewSource(7)))
	s := syndrome.NewLazy(F, syndrome.Mimic{})
	seed := int32(0)
	for F.Contains(int(seed)) {
		seed++
	}
	sc := core.NewScratch(g.N())
	delta := nw.Diagnosability()
	op := func() int64 {
		r := core.SetBuilderInto(sc, g, s, seed, delta, nil)
		if r.U.Count() == 0 {
			panic("empty result")
		}
		return r.Lookups
	}
	return run("setbuilder/"+nw.Name(), op, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			op()
		}
	})
}

// graphBuildCase measures CSR construction of Q_n via the Builder.
func graphBuildCase(n int) Result {
	return run(fmt.Sprintf("graphbuild/Q%d", n), nil, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			nw := topology.NewHypercube(n)
			if nw.Graph().N() != 1<<uint(n) {
				b.Fatal("bad size")
			}
		}
	})
}

// boundaryCase measures NeighborsOfSetInto on the diagnosis-shaped
// dense set (all nodes healthy but δ).
func boundaryCase(n int) Result {
	nw := topology.NewHypercube(n)
	g := nw.Graph()
	F := syndrome.RandomFaults(g.N(), n, rand.New(rand.NewSource(9)))
	set := bitset.New(g.N())
	for u := 0; u < g.N(); u++ {
		if !F.Contains(u) {
			set.Add(u)
		}
	}
	out := bitset.New(g.N())
	return run(fmt.Sprintf("neighborsofset/Q%d", n), nil, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.NeighborsOfSetInto(set, out)
			if out.Count() == 0 {
				b.Fatal("no boundary")
			}
		}
	})
}

// Suite runs the regression suite and returns the report.
func Suite() *Report {
	rep := &Report{Schema: 1, GoOS: runtime.GOOS, GoArch: runtime.GOARCH}
	for _, n := range []int{8, 10, 12, 14} {
		rep.Results = append(rep.Results, diagnoseCase(topology.NewHypercube(n)))
	}
	rep.Results = append(rep.Results,
		diagnoseCase(topology.NewStar(8)),
		diagnoseCase(topology.NewKAryNCube(4, 4)),
		setBuilderCase(topology.NewHypercube(12)),
		setBuilderCase(topology.NewHypercube(14)),
		graphBuildCase(14),
		boundaryCase(14),
	)
	return rep
}

// Write serialises the report as indented JSON.
func (r *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
