package campaign

import (
	"math/rand"
	"testing"

	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// TestReseedMatchesFreshSource pins the invariant the per-worker PRNG
// hoist rests on: reseeding one rand.Rand reproduces exactly the stream
// a freshly constructed source would give, so campaign fault sets are
// unchanged by the allocation-free refactor.
func TestReseedMatchesFreshSource(t *testing.T) {
	rng := rand.New(rand.NewSource(0))
	for i := 0; i < 8; i++ {
		seed := int64(1_000_003*i + 42)
		rng.Seed(seed)
		a := syndrome.RandomFaults(512, 9, rng)
		b := syndrome.RandomFaults(512, 9, rand.New(rand.NewSource(seed)))
		if !a.Equal(b) {
			t.Fatalf("seed %d: reseeded stream diverged: %v vs %v", seed, a, b)
		}
	}
}

func TestSweepWithinGuaranteeIsAlwaysExact(t *testing.T) {
	nw := topology.NewHypercube(7)
	points := Sweep(nw, Config{
		MinFaults: 0,
		MaxFaults: nw.Diagnosability(),
		Trials:    10,
		Seed:      1,
	})
	if len(points) != nw.Diagnosability()+1 {
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		if p.Exact != p.Trials {
			t.Fatalf("%d faults: %d/%d exact, %d refused, %d silent — guarantee violated",
				p.Faults, p.Exact, p.Trials, p.Refused, p.Silent)
		}
		if p.ExactRate() != 1.0 {
			t.Fatalf("exact rate %f", p.ExactRate())
		}
	}
}

func TestSweepBeyondGuaranteeDegradesGracefully(t *testing.T) {
	nw := topology.NewHypercube(7)
	delta := nw.Diagnosability()
	points := Sweep(nw, Config{
		MinFaults: delta + 1,
		MaxFaults: delta + 8,
		Trials:    20,
		Seed:      2,
	})
	sawNonExact := false
	for _, p := range points {
		if p.Exact+p.Refused+p.Silent != p.Trials {
			t.Fatalf("outcome accounting broken at %d faults", p.Faults)
		}
		if p.Exact != p.Trials {
			sawNonExact = true
		}
	}
	if !sawNonExact {
		t.Fatal("expected degradation somewhere beyond δ+8? campaign saw none — suspicious")
	}
}

func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	nw := topology.NewKAryNCube(3, 3)
	cfg := Config{MinFaults: 4, MaxFaults: 8, Trials: 12, Seed: 3}
	cfg.Workers = 1
	a := Sweep(nw, cfg)
	cfg.Workers = 8
	b := Sweep(nw, cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSweepVerificationPathOnGapG3Instance(t *testing.T) {
	nw := topology.NewNKStar(6, 2) // no partition: verification path
	points := Sweep(nw, Config{
		MinFaults: 0,
		MaxFaults: nw.Diagnosability(),
		Trials:    4,
		Seed:      4,
		Behavior:  syndrome.AllZero{},
	})
	for _, p := range points {
		if p.Exact != p.Trials {
			t.Fatalf("verification path not exact at %d faults: %+v", p.Faults, p)
		}
	}
}

// TestConcurrentSweeps runs two sweeps of the same network at the same
// time, each with internal worker parallelism. Per-trial syndromes are
// private to their goroutine (the plain-counter fast path), so under
// -race this pins the claim that campaign parallelism needs no atomic
// look-up counting.
func TestConcurrentSweeps(t *testing.T) {
	nw := topology.NewHypercube(6)
	done := make(chan []Point, 2)
	for i := 0; i < 2; i++ {
		go func(seed int64) {
			done <- Sweep(nw, Config{
				MinFaults: 1,
				MaxFaults: nw.Diagnosability(),
				Trials:    8,
				Seed:      seed,
				Workers:   4,
			})
		}(int64(i + 1))
	}
	for i := 0; i < 2; i++ {
		points := <-done
		if len(points) != nw.Diagnosability() {
			t.Fatalf("got %d points", len(points))
		}
		for _, p := range points {
			if p.Exact != p.Trials {
				t.Fatalf("%d faults: %d/%d exact — guarantee violated", p.Faults, p.Exact, p.Trials)
			}
		}
	}
}
