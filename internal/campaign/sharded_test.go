package campaign

import (
	"sync"
	"testing"

	"comparisondiag/internal/core"
	"comparisondiag/internal/graph"
	"comparisondiag/internal/topology"
)

// shardedEngines binds count independent engine snapshots of the same
// network — the NewShardedRuntime contract.
func shardedEngines(nw topology.Network, count int) []*core.Engine {
	engines := make([]*core.Engine, count)
	for i := range engines {
		engines[i] = core.NewEngine(nw)
	}
	return engines
}

// TestShardedSweepMatchesUnsharded pins the sharded runtime's
// bit-identity contract: the same sweep Config produces identical
// points on a single-engine pool and on 2- and 4-shard pools — per-trial
// reseeding makes outcomes a function of the trial index alone, and
// every shard serves the same network.
func TestShardedSweepMatchesUnsharded(t *testing.T) {
	setGOMAXPROCS(t, 4)
	nw := topology.NewHypercube(8)
	cfg := Config{MinFaults: 0, MaxFaults: nw.Diagnosability() + 2, Trials: 16, Seed: 11}

	ref := NewRuntime(core.NewEngine(nw), 1)
	want := SweepRuntime(ref, cfg)
	ref.Close()

	for _, shards := range []int{2, 4} {
		rt := NewShardedRuntime(shardedEngines(nw, shards), 1)
		got := SweepRuntime(rt, cfg)
		if s := rt.Stats(); s.Shards != shards || s.Workers != shards {
			t.Fatalf("%d-shard runtime reports %d shards, %d workers", shards, s.Shards, s.Workers)
		}
		rt.Close()
		if !pointsEqual(got, want) {
			t.Fatalf("%d-shard sweep diverged from unsharded: %+v vs %+v", shards, got, want)
		}
	}
}

// TestShardedSweepImplicitEngines runs the sharded sweep over implicit
// (descriptor-backed) engines: no CSR exists, so this also regresses
// SweepRuntime's engine-generic plumbing (it must size fault sets from
// Engine.Adjacency, not the nil Engine.Graph).
func TestShardedSweepImplicitEngines(t *testing.T) {
	setGOMAXPROCS(t, 4)
	const bitsN = 10
	masks := make([]int32, bitsN)
	for i := range masks {
		masks[i] = 1 << uint(i)
	}
	desc := graph.XORCayley{Bits: bitsN, Masks: masks}
	newImplicit := func() *core.Engine {
		eng, err := core.NewCayleyEngine(desc, bitsN)
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	cfg := Config{MinFaults: 0, MaxFaults: bitsN + 1, Trials: 12, Seed: 5}

	ref := NewRuntime(newImplicit(), 1)
	want := SweepRuntime(ref, cfg)
	ref.Close()

	// The guarantee region must be fully exact — the sweep is serving
	// real diagnoses, not just exercising the pool.
	for _, p := range want[:bitsN+1] {
		if p.Exact != p.Trials {
			t.Fatalf("implicit sweep not exact inside the bound: %+v", p)
		}
	}

	rt := NewShardedRuntime([]*core.Engine{newImplicit(), newImplicit()}, 2)
	defer rt.Close()
	if got := SweepRuntime(rt, cfg); !pointsEqual(got, want) {
		t.Fatalf("sharded implicit sweep diverged: %+v vs %+v", got, want)
	}
}

// TestShardedRuntimeWorkerPinning pins the worker-group layout: with k
// engines and w workers per engine, workers 0..w-1 carry engine 0,
// w..2w-1 engine 1, and so on — and every worker diagnoses through its
// own pinned engine's scratch pool.
func TestShardedRuntimeWorkerPinning(t *testing.T) {
	setGOMAXPROCS(t, 4)
	nw := topology.NewHypercube(6)
	engines := shardedEngines(nw, 2)
	rt := NewShardedRuntime(engines, 2)
	defer rt.Close()
	if rt.Workers() != 4 {
		t.Fatalf("2 shards × 2 workers gave %d workers", rt.Workers())
	}
	if got := rt.Engines(); len(got) != 2 || got[0] != engines[0] || got[1] != engines[1] {
		t.Fatal("Engines() does not expose the shard engines in order")
	}

	var mu sync.Mutex
	seen := make(map[int]*core.Engine)
	rt.Run(64, func(w *Worker, i int) {
		mu.Lock()
		defer mu.Unlock()
		if prev, ok := seen[w.ID]; ok && prev != w.Engine {
			t.Errorf("worker %d changed engines mid-lifetime", w.ID)
		}
		seen[w.ID] = w.Engine
		if want := engines[w.ID/2]; w.Engine != want {
			t.Errorf("worker %d pinned to the wrong shard", w.ID)
		}
		if w.Scratch == nil {
			t.Errorf("worker %d has no pinned scratch", w.ID)
		}
	})
}

// TestShardedSweepConcurrent is the race hammer: two goroutines drive
// full sweeps through one sharded runtime at the same time (each Run
// call carries its own cursor), and both must produce the reference
// points. Run with -race in the verify matrix.
func TestShardedSweepConcurrent(t *testing.T) {
	setGOMAXPROCS(t, 4)
	nw := topology.NewHypercube(7)
	cfg := Config{MinFaults: 0, MaxFaults: nw.Diagnosability() + 1, Trials: 10, Seed: 3}

	ref := NewRuntime(core.NewEngine(nw), 1)
	want := SweepRuntime(ref, cfg)
	ref.Close()

	rt := NewShardedRuntime(shardedEngines(nw, 2), 2)
	defer rt.Close()
	var wg sync.WaitGroup
	results := make([][]Point, 4)
	for r := range results {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r] = SweepRuntime(rt, cfg)
		}(r)
	}
	wg.Wait()
	for r, got := range results {
		if !pointsEqual(got, want) {
			t.Fatalf("concurrent sweep %d diverged: %+v vs %+v", r, got, want)
		}
	}
}

// TestShardedRuntimeEmptyPanics pins the constructor guard.
func TestShardedRuntimeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewShardedRuntime accepted an empty engine slice")
		}
	}()
	NewShardedRuntime(nil, 1)
}
