// Package campaign runs Monte-Carlo fault-injection campaigns against
// the diagnosis algorithms. Its purpose is the question the paper's
// guarantee leaves open: what happens when the number of faults
// *exceeds* the diagnosability bound δ? The partition procedure then
// loses its certificate — the interesting distinction is between
// failing loudly (a typed error) and failing silently (a wrong fault
// set with no warning), and where each regime begins.
package campaign

import (
	"errors"

	"comparisondiag/internal/core"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// Outcome classifies one diagnosis attempt.
type Outcome int

const (
	// Exact: the returned fault set equals the injected one.
	Exact Outcome = iota
	// Refused: the algorithm returned a typed error instead of a guess
	// (the desired behaviour beyond the guarantee).
	Refused
	// Silent: the algorithm returned a wrong fault set without error —
	// the dangerous regime.
	Silent
)

// Point aggregates the outcomes at one fault count.
type Point struct {
	Faults  int
	Trials  int
	Exact   int
	Refused int
	Silent  int
}

// ExactRate returns the fraction of exact diagnoses, 0 for an empty
// point (never NaN — rates are exported over JSON, which rejects NaN).
func (p Point) ExactRate() float64 {
	if p.Trials == 0 {
		return 0
	}
	return float64(p.Exact) / float64(p.Trials)
}

// SilentRate returns the fraction of silent misdiagnoses, 0 for an
// empty point.
func (p Point) SilentRate() float64 {
	if p.Trials == 0 {
		return 0
	}
	return float64(p.Silent) / float64(p.Trials)
}

// Config tunes a sweep.
type Config struct {
	// MinFaults..MaxFaults is the sweep range (inclusive).
	MinFaults, MaxFaults int
	// Trials per fault count.
	Trials int
	// Behavior of faulty testers; nil = the mimic adversary.
	Behavior syndrome.Behavior
	// Seed makes the campaign reproducible.
	Seed int64
	// Workers parallelises trials; ≤ 0 means GOMAXPROCS, and requests
	// above it are clamped (core.ClampWorkers). Ignored by
	// SweepRuntime, whose pool fixes the parallelism.
	Workers int
	// Cache, when non-nil, short-circuits repeated syndromes through
	// the engine-level result cache (core.ResultCache): the low-fault
	// end of a sweep repeats hypotheses constantly (every f = 0 trial
	// is the same empty hypothesis), and replaying those outcomes
	// skips their diagnosis entirely. Sweep outcomes are identical
	// with or without a cache.
	Cache *core.ResultCache
	// OnEngine, when non-nil, receives the engine Sweep binds, once,
	// before the first trial — an observability hook so campaign
	// reports can attribute results to the serving configuration
	// (e.g. record Engine.KernelName()). The callback must not retain
	// scratches or mutate the engine.
	OnEngine func(*core.Engine)
}

// Sweep runs the campaign against the network through a core.Engine
// and a persistent Runtime bound once per sweep: the partition is
// built a single time, the worker pool outlives every sweep point
// (no per-point goroutine spawning), every worker owns a dedicated
// scratch and PRNG for its whole lifetime, and each worker reseeds
// that PRNG per trial instead of constructing one — the steady-state
// trial loop allocates only the fault set and syndrome of the trial
// itself.
//
// Callers that run several sweeps against one network should bind the
// runtime themselves (core.NewEngine + NewRuntime) and call
// SweepRuntime so the pool is shared across campaigns.
func Sweep(nw topology.Network, cfg Config) []Point {
	eng := core.NewEngine(nw)
	if cfg.OnEngine != nil {
		cfg.OnEngine(eng)
	}
	rt := NewRuntime(eng, cfg.Workers)
	defer rt.Close()
	return SweepRuntime(rt, cfg)
}

// SweepRuntime is Sweep against a caller-owned Runtime (and its bound
// engine — or engines, under NewShardedRuntime). Trials are dealt to
// the pool in chunks by trial index and every trial reseeds its
// worker's PRNG from (Seed, fault count, index), so the points are
// bit-identical to a sequential loop — worker count, scheduling and
// shard count cannot change an outcome (sharded engines serve the same
// network by the NewShardedRuntime contract). Each trial diagnoses
// through its worker's pinned engine, so a sharded runtime spreads the
// sweep across engine snapshots and scratch pools. Implicit
// (descriptor-backed) engines are served like CSR ones. Config.Workers
// and Config.OnEngine are ignored here: the runtime fixes both.
func SweepRuntime(rt *Runtime, cfg Config) []Point {
	if cfg.Behavior == nil {
		cfg.Behavior = syndrome.Mimic{}
	}
	eng := rt.Engine()
	n := eng.Adjacency().N()
	g := eng.Graph() // nil for implicit engines; only the fallback needs it
	delta := eng.Diagnosability()
	perr := eng.PartsErr()

	var points []Point
	results := make([]Outcome, cfg.Trials)
	for f := cfg.MinFaults; f <= cfg.MaxFaults; f++ {
		p := Point{Faults: f, Trials: cfg.Trials}
		rt.Run(cfg.Trials, func(w *Worker, i int) {
			// Per-trial deterministic seed: reseeding reproduces exactly
			// the stream a fresh rand.NewSource would give, without the
			// per-trial allocation, and independently of which worker
			// claimed the trial.
			w.RNG.Seed(cfg.Seed + int64(f)*1_000_003 + int64(i))
			F := syndrome.RandomFaults(n, f, w.RNG)
			s := syndrome.NewLazy(F, cfg.Behavior)
			if perr != nil {
				if g == nil {
					// Implicit engine with no usable partition: there is
					// no CSR for the verification fallback to scan, so the
					// typed partition error is the verdict.
					results[i] = classify(false, perr)
					return
				}
				// No partition: campaign the verification path.
				got, err := core.DiagnoseWithVerification(g, delta, s)
				results[i] = classify(got != nil && got.Equal(F), err)
				return
			}
			opt := core.Options{Scratch: w.Scratch, ResultCache: cfg.Cache}
			got, _, err := w.Engine.DiagnoseOpts(s, opt)
			results[i] = classify(got != nil && got.Equal(F), err)
		})
		for _, o := range results {
			switch o {
			case Exact:
				p.Exact++
			case Refused:
				p.Refused++
			default:
				p.Silent++
			}
		}
		points = append(points, p)
	}
	return points
}

func classify(exact bool, err error) Outcome {
	switch {
	case err == nil && exact:
		return Exact
	case err != nil && isTypedRefusal(err):
		return Refused
	case err != nil:
		// Unexpected error kinds also count as refusals: the caller was
		// warned.
		return Refused
	default:
		return Silent
	}
}

func isTypedRefusal(err error) bool {
	return errors.Is(err, core.ErrNoHealthyPart) ||
		errors.Is(err, core.ErrTooManyFaults) ||
		errors.Is(err, core.ErrNoConsistentCandidate) ||
		errors.Is(err, topology.ErrNoPartition)
}
