package campaign

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"comparisondiag/internal/core"
	"comparisondiag/internal/syndrome"
)

// Runtime is the persistent serving pool for batch diagnosis work: a
// fixed set of long-lived workers bound to one core.Engine, each owning
// a pinned engine scratch and a private PRNG for its whole lifetime.
// Work arrives as jobs of independent trials indexed 0..n-1 and is
// dealt out in chunks from an atomic cursor, so a runtime serves many
// campaigns, CLI batches and replay drivers back to back without ever
// re-spawning goroutines, re-acquiring scratches or re-allocating
// PRNGs — the per-sweep-point pool construction the transient drivers
// paid disappears.
//
// Determinism contract: a job's trial function must derive everything
// from its trial index (reseeding the worker PRNG per trial, as Sweep
// does), never from the worker identity or the order of execution.
// Chunks are claimed dynamically, so which worker runs a trial is
// scheduling-dependent — but under the contract the results are
// bit-identical to a sequential loop over the same indices.
//
// A Runtime also implements core.BatchPool, so it can be plugged into
// Engine.DiagnoseBatch (see DiagnoseBatch below) and batch-aware
// certification runs on persistent workers too.
//
// A sharded runtime (NewShardedRuntime) spreads its worker groups over
// several engines instead of one; workers then carry their pinned
// engine in Worker.Engine, and trial functions that diagnose through
// it scale past the point where one engine's scratch pool and binding
// snapshot become the contended hot line.
type Runtime struct {
	engines []*core.Engine
	perEng  int // contiguous workers pinned per engine
	workers int
	jobs    chan *runtimeJob

	wg    sync.WaitGroup
	close sync.Once

	trials []atomic.Int64 // per-worker trial counts
	jobCnt atomic.Int64
}

// runtimeJob is one Run call: a chunked trial queue shared by every
// participating worker.
type runtimeJob struct {
	n     int
	chunk int
	next  atomic.Int64
	fn    func(w *Worker, trial int)
	wg    sync.WaitGroup
}

// Worker is the per-goroutine state a Runtime pins for its lifetime
// and hands to every trial function it executes.
type Worker struct {
	// ID is the worker's index in [0, Workers()).
	ID int
	// Engine is the engine this worker is pinned to: the runtime's only
	// engine, or its shard's engine under NewShardedRuntime. Trial
	// functions should diagnose through it (not through
	// Runtime.Engine()) so sharding actually spreads the load.
	Engine *core.Engine
	// Scratch is the worker's dedicated engine scratch (drawn from
	// Engine's pool): pass it via core.Options.Scratch and the
	// steady-state trial loop performs no heap allocation beyond the
	// trial's own inputs.
	Scratch *core.Scratch
	// RNG is the worker's private PRNG. Reseed it per trial from the
	// trial index (see Sweep) to keep results independent of worker
	// scheduling.
	RNG *rand.Rand
}

// NewRuntime starts a persistent pool of workers bound to the engine.
// workers ≤ 0 means GOMAXPROCS; requests above it are clamped (see
// core.ClampWorkers). Callers own the runtime's lifecycle: Close it
// when the serving session ends to release the pinned scratches.
func NewRuntime(eng *core.Engine, workers int) *Runtime {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	workers = core.ClampWorkers(workers)
	return newRuntime([]*core.Engine{eng}, workers)
}

// NewShardedRuntime starts one worker group per engine:
// workersPerEngine contiguous workers pinned to each engine, so every
// group draws scratches from its own pool and reads its own binding
// snapshot — the sharding that lets Q20-scale sweeps use all cores
// instead of contending on one engine. workersPerEngine ≤ 0 divides
// GOMAXPROCS evenly across the shards (at least 1 each); explicit
// requests are honoured as given, since shards may deliberately
// oversubscribe (e.g. one engine per NUMA node with its local threads).
//
// Determinism: the Runtime contract is unchanged — trial functions
// derive everything from the trial index — so per-trial-reseeded work
// (Sweep, SweepRuntime) produces bit-identical outcomes for any shard
// count, provided every engine is bound to the same network. Engines
// serving different networks are the caller's own arrangement and give
// worker-scheduling-dependent results.
func NewShardedRuntime(engines []*core.Engine, workersPerEngine int) *Runtime {
	if len(engines) == 0 {
		panic("campaign: NewShardedRuntime needs at least one engine")
	}
	if workersPerEngine <= 0 {
		workersPerEngine = runtime.GOMAXPROCS(0) / len(engines)
		if workersPerEngine < 1 {
			workersPerEngine = 1
		}
	}
	return newRuntime(engines, len(engines)*workersPerEngine)
}

func newRuntime(engines []*core.Engine, workers int) *Runtime {
	rt := &Runtime{
		engines: engines,
		perEng:  (workers + len(engines) - 1) / len(engines),
		workers: workers,
		jobs:    make(chan *runtimeJob),
		trials:  make([]atomic.Int64, workers),
	}
	for w := 0; w < workers; w++ {
		rt.wg.Add(1)
		go rt.worker(w)
	}
	return rt
}

// Engine returns the runtime's primary engine — its only engine, or
// shard 0's under NewShardedRuntime.
func (rt *Runtime) Engine() *core.Engine { return rt.engines[0] }

// Engines returns the engines the runtime serves, one per shard, in
// worker-group order. The slice is the runtime's own — read only.
func (rt *Runtime) Engines() []*core.Engine { return rt.engines }

// Workers returns the pool size.
func (rt *Runtime) Workers() int { return rt.workers }

// worker is the persistent loop: acquire a scratch and a PRNG once,
// then serve chunked jobs until Close.
func (rt *Runtime) worker(id int) {
	defer rt.wg.Done()
	eng := rt.engines[id/rt.perEng]
	w := &Worker{ID: id, Engine: eng, Scratch: eng.AcquireScratch(), RNG: rand.New(rand.NewSource(0))}
	defer eng.ReleaseScratch(w.Scratch)
	for jb := range rt.jobs {
		served := int64(0)
		for {
			lo := int(jb.next.Add(int64(jb.chunk))) - jb.chunk
			if lo >= jb.n {
				break
			}
			hi := lo + jb.chunk
			if hi > jb.n {
				hi = jb.n
			}
			for i := lo; i < hi; i++ {
				jb.fn(w, i)
			}
			served += int64(hi - lo)
		}
		rt.trials[id].Add(served)
		jb.wg.Done()
	}
}

// Run executes fn(w, i) exactly once for every trial index in [0, n),
// distributed across the pool in chunks, and returns when all trials
// completed. Concurrent Run calls are safe (each job carries its own
// cursor); Run must not be called after Close.
func (rt *Runtime) Run(n int, fn func(w *Worker, trial int)) {
	if n <= 0 {
		return
	}
	// A handful of chunks per worker balances load (trial costs vary a
	// little) while keeping cursor traffic negligible.
	chunk := n / (rt.workers * 4)
	if chunk < 1 {
		chunk = 1
	}
	jb := &runtimeJob{n: n, chunk: chunk, fn: fn}
	participants := rt.workers
	if participants > n {
		participants = n
	}
	jb.wg.Add(participants)
	for i := 0; i < participants; i++ {
		rt.jobs <- jb
	}
	jb.wg.Wait()
	rt.jobCnt.Add(1)
}

// RunScratch implements core.BatchPool, letting Engine.DiagnoseBatch
// (and its batch-aware certification phases) execute on the persistent
// pool instead of transient per-call goroutines.
func (rt *Runtime) RunScratch(n int, fn func(sc *core.Scratch, i int)) {
	rt.Run(n, func(w *Worker, i int) { fn(w.Scratch, i) })
}

// DiagnoseBatch runs the primary engine's batch diagnosis on the
// runtime's pool: identical semantics to Engine.DiagnoseBatch
// (results[i] matches syndromes[i], per-syndrome outcomes bit-identical
// to sequential calls), with opt.Pool and opt.Workers superseded by the
// runtime. On a sharded runtime the batch phases run against the
// primary engine while workers keep their own pinned scratches — all
// shards of a sharded runtime must therefore serve the same network
// (the NewShardedRuntime contract).
func (rt *Runtime) DiagnoseBatch(syndromes []syndrome.Syndrome, opt core.BatchOptions) []core.BatchResult {
	opt.Pool = rt
	return rt.Engine().DiagnoseBatch(syndromes, opt)
}

// Close drains the pool: workers finish their current job, release
// their scratches and exit. Close is idempotent; Run must not be
// called afterwards.
func (rt *Runtime) Close() {
	rt.close.Do(func() {
		close(rt.jobs)
		rt.wg.Wait()
	})
}

// RuntimeStats is an observability snapshot of a Runtime.
type RuntimeStats struct {
	// Workers is the pool size.
	Workers int
	// Shards is the number of engines the workers are spread over
	// (1 for a plain NewRuntime pool).
	Shards int
	// Jobs is the number of completed Run calls.
	Jobs int64
	// Trials[w] counts the trials worker w has executed — the dealt
	// work distribution, useful for spotting skew.
	Trials []int64
}

// Occupancy returns the fraction of workers that have executed at
// least one trial — the exporter's worker-occupancy gauge. 0 for an
// idle or empty pool (never NaN).
func (s RuntimeStats) Occupancy() float64 {
	if len(s.Trials) == 0 {
		return 0
	}
	busy := 0
	for _, n := range s.Trials {
		if n > 0 {
			busy++
		}
	}
	return float64(busy) / float64(len(s.Trials))
}

// TotalTrials sums the per-worker counts.
func (s RuntimeStats) TotalTrials() int64 {
	var t int64
	for _, n := range s.Trials {
		t += n
	}
	return t
}

// Stats snapshots the runtime's counters. Counts for a job are merged
// when the job completes, so a concurrent snapshot may lag an in-flight
// Run.
func (rt *Runtime) Stats() RuntimeStats {
	s := RuntimeStats{Workers: rt.workers, Shards: len(rt.engines), Jobs: rt.jobCnt.Load(), Trials: make([]int64, rt.workers)}
	for w := range rt.trials {
		s.Trials[w] = rt.trials[w].Load()
	}
	return s
}
