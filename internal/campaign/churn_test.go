package campaign

import (
	"math/rand"
	"sync"
	"testing"

	"comparisondiag/internal/core"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// TestRuntimeServesAcrossRebind drives DiagnoseBatch traffic through a
// persistent runtime while the bound engine is rebound under churn:
// the pinned worker scratches must survive the graph change, batches
// racing the rebind may land on either side of it, and batches issued
// after the rebind must serve exact degraded diagnoses.
func TestRuntimeServesAcrossRebind(t *testing.T) {
	nw := topology.NewHypercube(8)
	eng := core.NewEngine(nw)
	rt := NewRuntime(eng, 4)
	defer rt.Close()
	cache := core.NewResultCache(256)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				g := eng.Graph()
				syns := make([]syndrome.Syndrome, 6)
				for i := range syns {
					F := syndrome.RandomFaults(g.N(), rng.Intn(4), rng)
					syns[i] = syndrome.NewLazy(F, syndrome.Mimic{})
				}
				rt.DiagnoseBatch(syns, core.BatchOptions{
					ShareCertification: true,
					Options:            core.Options{ResultCache: cache},
				})
			}
		}(int64(w))
	}

	rng := rand.New(rand.NewSource(20260808))
	for round := 0; round < 4; round++ {
		g := eng.Graph()
		rr := g.RemoveNodes([]int32{int32(rng.Intn(g.N()))})
		if _, err := eng.Rebind(rr, cache); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	close(stop)
	wg.Wait()

	// Post-churn batches through the same runtime must be exact and
	// stamped degraded.
	g := eng.Graph()
	delta := eng.Diagnosability()
	syns := make([]syndrome.Syndrome, 8)
	want := make([]int, len(syns))
	for i := range syns {
		F := syndrome.RandomFaults(g.N(), rng.Intn(delta+1), rng)
		want[i] = F.Count()
		syns[i] = syndrome.NewLazy(F, syndrome.Mimic{})
	}
	for i, r := range rt.DiagnoseBatch(syns, core.BatchOptions{Options: core.Options{ResultCache: cache}}) {
		if r.Err != nil {
			t.Fatalf("post-churn batch[%d]: %v", i, r.Err)
		}
		if r.Faults.Count() != want[i] {
			t.Fatalf("post-churn batch[%d]: %d faults, want %d", i, r.Faults.Count(), want[i])
		}
		if !r.Stats.Degraded || r.Stats.EffectiveDelta != delta {
			t.Fatalf("post-churn batch[%d] not stamped degraded: %+v", i, r.Stats)
		}
	}
}
