package campaign

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"

	"comparisondiag/internal/core"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// setGOMAXPROCS raises the scheduler parallelism for one test (worker
// counts clamp to GOMAXPROCS; the CI container runs with 1).
func setGOMAXPROCS(t *testing.T, n int) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// TestSweepDeterministicAcrossPools pins the tentpole's bit-identity
// claim: the same Config produces identical points whether the sweep
// runs on one worker, on a wide pool, or on a reused caller-owned
// runtime serving several sweeps back to back — trial outcomes depend
// only on the trial index.
func TestSweepDeterministicAcrossPools(t *testing.T) {
	setGOMAXPROCS(t, 4)
	nw := topology.NewHypercube(7)
	cfg := Config{MinFaults: 0, MaxFaults: nw.Diagnosability() + 2, Trials: 12, Seed: 7}

	cfg.Workers = 1
	want := Sweep(nw, cfg)
	cfg.Workers = 4
	if got := Sweep(nw, cfg); !pointsEqual(got, want) {
		t.Fatalf("4-worker sweep diverged from sequential: %+v vs %+v", got, want)
	}

	rt := NewRuntime(core.NewEngine(nw), 3)
	defer rt.Close()
	for round := 0; round < 2; round++ {
		if got := SweepRuntime(rt, cfg); !pointsEqual(got, want) {
			t.Fatalf("shared-runtime sweep round %d diverged: %+v vs %+v", round, got, want)
		}
	}
	if s := rt.Stats(); s.TotalTrials() != int64(2*cfg.Trials*(cfg.MaxFaults+1)) {
		t.Fatalf("runtime served %d trials, want %d", s.TotalTrials(), 2*cfg.Trials*(cfg.MaxFaults+1))
	}
}

// TestSweepWithResultCacheMatches pins the cached sweep: outcomes are
// identical with the cache on, and the low-fault points actually hit it
// (every f = 0 trial after the first replays the empty hypothesis).
func TestSweepWithResultCacheMatches(t *testing.T) {
	nw := topology.NewHypercube(7)
	cfg := Config{MinFaults: 0, MaxFaults: 3, Trials: 10, Seed: 3, Workers: 1}
	want := Sweep(nw, cfg)

	cfg.Cache = core.NewResultCache(256)
	got := Sweep(nw, cfg)
	if !pointsEqual(got, want) {
		t.Fatalf("cached sweep diverged: %+v vs %+v", got, want)
	}
	if cs := cfg.Cache.Stats(); cs.Hits < int64(cfg.Trials-1) {
		t.Fatalf("expected at least %d cache hits from the f=0 point, got %+v", cfg.Trials-1, cs)
	}
}

// TestRuntimeRunChunking pins the queue mechanics: every trial index
// runs exactly once, across job sizes that exercise single-chunk,
// ragged and many-chunk dealing, and the stats ledger adds up.
func TestRuntimeRunChunking(t *testing.T) {
	setGOMAXPROCS(t, 4)
	rt := NewRuntime(core.NewEngine(topology.NewHypercube(5)), 4)
	defer rt.Close()
	var jobs int64
	var total int64
	for _, n := range []int{1, 3, 4, 17, 64} {
		hits := make([]atomic.Int32, n)
		rt.Run(n, func(w *Worker, i int) {
			hits[i].Add(1)
			if w.Scratch == nil || w.RNG == nil {
				t.Error("worker state not pinned")
			}
		})
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("n=%d: trial %d ran %d times", n, i, hits[i].Load())
			}
		}
		jobs++
		total += int64(n)
	}
	s := rt.Stats()
	if s.Jobs != jobs || s.TotalTrials() != total {
		t.Fatalf("stats %+v, want %d jobs and %d trials", s, jobs, total)
	}
	if s.Workers != 4 || len(s.Trials) != 4 {
		t.Fatalf("stats report %d workers", s.Workers)
	}
}

// TestRuntimeDiagnoseBatchMatchesEngine pins the BatchPool plumbing:
// a batch served on the persistent pool is result- and
// lookup-identical to the engine's transient pool.
func TestRuntimeDiagnoseBatchMatchesEngine(t *testing.T) {
	nw := topology.NewHypercube(8)
	g := nw.Graph()
	delta := nw.Diagnosability()
	eng := core.NewEngine(nw)
	rt := NewRuntime(eng, 2)
	defer rt.Close()

	const trials = 10
	syns := make([]syndrome.Syndrome, trials)
	refs := make([]syndrome.Syndrome, trials)
	for i := range syns {
		F := syndrome.RandomFaults(g.N(), 1+i%delta, rand.New(rand.NewSource(int64(i))))
		syns[i] = syndrome.NewLazy(F, syndrome.Mimic{})
		refs[i] = syndrome.NewLazy(F, syndrome.Mimic{})
	}
	got := rt.DiagnoseBatch(syns, core.BatchOptions{})
	want := eng.DiagnoseBatch(refs, core.BatchOptions{})
	for i := range got {
		if (got[i].Err == nil) != (want[i].Err == nil) {
			t.Fatalf("syndrome %d: err %v vs %v", i, got[i].Err, want[i].Err)
		}
		if got[i].Err == nil && !got[i].Faults.Equal(want[i].Faults) {
			t.Fatalf("syndrome %d: fault sets differ", i)
		}
		if got[i].Stats != want[i].Stats {
			t.Fatalf("syndrome %d: stats differ: %+v vs %+v", i, got[i].Stats, want[i].Stats)
		}
	}
}

func pointsEqual(a, b []Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRuntimeDiagnoseBatchSharedFinalPrefix pins the grouped-batch
// plumbing through the persistent pool: ShareCertification +
// ShareFinalPrefix on a Runtime produce the same fault sets and shape
// stats as the engine's transient pool, with members adopting a
// shared final prefix and the group spending strictly fewer look-ups
// than an unshared runtime batch.
func TestRuntimeDiagnoseBatchSharedFinalPrefix(t *testing.T) {
	nw := topology.NewHypercube(8)
	g := nw.Graph()
	delta := nw.Diagnosability()
	eng := core.NewEngine(nw)
	rt := NewRuntime(eng, 3)
	defer rt.Close()

	F := syndrome.ClusterFaults(g, int32(g.N()-1), delta)
	behaviors := syndrome.AllBehaviors(9)
	makeSyns := func() []syndrome.Syndrome {
		var syns []syndrome.Syndrome
		for round := 0; round < 2; round++ {
			for _, b := range behaviors {
				syns = append(syns, syndrome.NewLazy(F, b))
			}
		}
		return syns
	}

	opt := core.BatchOptions{ShareCertification: true, ShareFinalPrefix: true}
	plainSyns := makeSyns()
	plain := rt.DiagnoseBatch(plainSyns, core.BatchOptions{})
	sharedSyns := makeSyns()
	shared := rt.DiagnoseBatch(sharedSyns, opt)
	transient := eng.DiagnoseBatch(makeSyns(), opt)

	var plainLookups, sharedLookups int64
	members := 0
	for i := range shared {
		if shared[i].Err != nil || plain[i].Err != nil || transient[i].Err != nil {
			t.Fatalf("syndrome %d: %v / %v / %v", i, shared[i].Err, plain[i].Err, transient[i].Err)
		}
		if !shared[i].Faults.Equal(plain[i].Faults) || !shared[i].Faults.Equal(transient[i].Faults) {
			t.Fatalf("syndrome %d: runtime grouped batch diverged", i)
		}
		if shared[i].Stats != transient[i].Stats {
			t.Fatalf("syndrome %d: runtime stats %+v differ from transient pool %+v",
				i, shared[i].Stats, transient[i].Stats)
		}
		plainLookups += plainSyns[i].(*syndrome.Lazy).Lookups()
		sharedLookups += sharedSyns[i].(*syndrome.Lazy).Lookups()
		if shared[i].Stats.SharedFinalLookups > 0 {
			members++
		}
	}
	if members == 0 {
		t.Fatal("no member adopted a shared final prefix on the runtime pool")
	}
	if sharedLookups >= plainLookups {
		t.Fatalf("grouped runtime batch consulted %d look-ups, unshared %d", sharedLookups, plainLookups)
	}
}
