package campaign

import (
	"encoding/json"
	"math"
	"testing"
)

// TestPointRatesZeroSafe pins the division-by-zero audit on the
// campaign side: an empty Point's rates are 0, not NaN — NaN rates
// poison JSON encoding, which the /v1/campaign stream relies on.
func TestPointRatesZeroSafe(t *testing.T) {
	var p Point
	if r := p.ExactRate(); r != 0 || math.IsNaN(r) {
		t.Fatalf("empty Point ExactRate = %v, want 0", r)
	}
	if r := p.SilentRate(); r != 0 || math.IsNaN(r) {
		t.Fatalf("empty Point SilentRate = %v, want 0", r)
	}
	if _, err := json.Marshal(map[string]float64{"exact": p.ExactRate(), "silent": p.SilentRate()}); err != nil {
		t.Fatalf("marshalling empty-point rates: %v", err)
	}
	p = Point{Trials: 8, Exact: 6, Silent: 1}
	if r := p.ExactRate(); r != 0.75 {
		t.Fatalf("ExactRate = %v, want 0.75", r)
	}
	if r := p.SilentRate(); r != 0.125 {
		t.Fatalf("SilentRate = %v, want 0.125", r)
	}
}

// TestRuntimeStatsOccupancyZeroSafe pins the worker-occupancy gauge:
// empty and idle pools report 0, a mixed pool the busy fraction.
func TestRuntimeStatsOccupancyZeroSafe(t *testing.T) {
	var zero RuntimeStats
	if got := zero.Occupancy(); got != 0 {
		t.Fatalf("zero RuntimeStats Occupancy = %v, want 0", got)
	}
	idle := RuntimeStats{Workers: 4, Trials: make([]int64, 4)}
	if got := idle.Occupancy(); got != 0 {
		t.Fatalf("idle pool Occupancy = %v, want 0", got)
	}
	mixed := RuntimeStats{Workers: 4, Trials: []int64{5, 0, 2, 0}}
	if got := mixed.Occupancy(); got != 0.5 {
		t.Fatalf("mixed pool Occupancy = %v, want 0.5", got)
	}
}
