package topology

// permCodec ranks and unranks k-permutations (injective k-tuples) of the
// symbol set {0, …, n-1} in lexicographic order. It is shared by the
// star, (n,k)-star, pancake and arrangement families. Ranks are dense in
// [0, n!/(n-k)!), so k-permutations double as graph node ids.
type permCodec struct {
	n, k int
	// fall[i] = (n-i-1)·(n-i-2)···(n-k+1): the number of completions of
	// a prefix of length i+1; fall[k-1] = 1.
	fall []int64
}

func newPermCodec(n, k int) *permCodec {
	c := &permCodec{n: n, k: k, fall: make([]int64, k)}
	v := int64(1)
	for i := k - 1; i >= 0; i-- {
		c.fall[i] = v // ∏_{t=i+1}^{k-1} (n-t)
		v *= int64(n - i)
	}
	return c
}

// Count returns the number of k-permutations, n!/(n-k)!.
func (c *permCodec) Count() int {
	if c.k == 0 {
		return 1
	}
	return int(c.fall[0]) * (c.n)
}

// Rank maps a k-permutation to its lexicographic index.
func (c *permCodec) Rank(p []int8) int32 {
	var used uint32
	var r int64
	for i := 0; i < c.k; i++ {
		// Number of unused symbols smaller than p[i].
		smaller := popcount32(uint32(((uint32(1) << uint(p[i])) - 1) &^ used))
		r += int64(smaller) * c.fall[i]
		used |= 1 << uint(p[i])
	}
	return int32(r)
}

// Unrank writes the k-permutation with the given lexicographic index
// into out (length k).
func (c *permCodec) Unrank(id int32, out []int8) {
	var used uint32
	r := int64(id)
	for i := 0; i < c.k; i++ {
		q := r / c.fall[i]
		r %= c.fall[i]
		// q-th unused symbol.
		for s := 0; s < c.n; s++ {
			if used&(1<<uint(s)) != 0 {
				continue
			}
			if q == 0 {
				out[i] = int8(s)
				used |= 1 << uint(s)
				break
			}
			q--
		}
	}
}

func popcount32(x uint32) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// unusedSymbols appends the symbols of {0..n-1} absent from p to buf.
func unusedSymbols(n int, p []int8, buf []int8) []int8 {
	var used uint32
	for _, s := range p {
		used |= 1 << uint(s)
	}
	for s := 0; s < n; s++ {
		if used&(1<<uint(s)) == 0 {
			buf = append(buf, int8(s))
		}
	}
	return buf
}
