package topology

import (
	"testing"

	"comparisondiag/internal/graph"
)

// TestDeclaredCayleyStructuresVerify pins the contract of every
// CayleyStructure declaration: it must survive graph.VerifyCayley
// against the instance's own CSR adjacency. A family that drifts from
// its declaration (or vice versa) fails here rather than silently
// degrading engines to the generic kernel.
func TestDeclaredCayleyStructuresVerify(t *testing.T) {
	declaring := []Network{
		NewHypercube(4), NewHypercube(8),
		NewFoldedHypercube(3), NewFoldedHypercube(8),
		NewEnhancedHypercube(6, 2), NewEnhancedHypercube(6, 6), NewEnhancedHypercube(8, 4),
		NewAugmentedCube(3), NewAugmentedCube(6),
		NewKAryNCube(3, 3), NewKAryNCube(4, 3), NewKAryNCube(5, 2),
		NewAugmentedKAryNCube(3, 2), NewAugmentedKAryNCube(4, 3), NewAugmentedKAryNCube(3, 4),
	}
	for _, nw := range declaring {
		cs, ok := nw.(CayleyStructured)
		if !ok {
			t.Errorf("%s: expected a CayleyStructure declaration", nw.Name())
			continue
		}
		desc := cs.CayleyStructure()
		if desc == nil {
			t.Errorf("%s: nil descriptor", nw.Name())
			continue
		}
		if desc.Order() != nw.Graph().N() {
			t.Errorf("%s: descriptor order %d, graph has %d nodes", nw.Name(), desc.Order(), nw.Graph().N())
		}
		if desc.Degree() != nw.Graph().MaxDegree() {
			t.Errorf("%s: descriptor degree %d, graph degree %d", nw.Name(), desc.Degree(), nw.Graph().MaxDegree())
		}
		if err := graph.VerifyCayley(nw.Graph(), desc); err != nil {
			t.Errorf("%s: declaration rejected: %v", nw.Name(), err)
		}
	}
}

// TestNonCayleyFamiliesDeclareNothing pins the negative side: families
// with node-dependent edge rules must not implement CayleyStructured —
// any declaration they could make would be rejected by VerifyCayley.
func TestNonCayleyFamiliesDeclareNothing(t *testing.T) {
	for _, nw := range []Network{
		NewCrossedCube(5),
		NewTwistedCube(5),
		NewTwistedNCube(5),
		NewShuffleCube(6),
		NewStar(4),
		NewPancake(4),
		NewNKStar(4, 2),
		NewArrangement(4, 2),
	} {
		if _, ok := nw.(CayleyStructured); ok {
			t.Errorf("%s: declares Cayley structure but its edge rule is node-dependent", nw.Name())
		}
	}
}
