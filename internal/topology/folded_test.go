package topology

import (
	"math/bits"
	"testing"
)

// TestFoldedDiameterHalved: FQ_n's signature property — complement
// edges halve the diameter to ⌈n/2⌉ [3].
func TestFoldedDiameterHalved(t *testing.T) {
	for n := 3; n <= 8; n++ {
		g := NewFoldedHypercube(n).Graph()
		want := (n + 1) / 2
		if e := g.Eccentricity(0); e != want {
			t.Fatalf("diameter(FQ%d) = %d, want %d", n, e, want)
		}
	}
}

// TestFoldedEdgeShape: every edge flips one bit or all bits.
func TestFoldedEdgeShape(t *testing.T) {
	n := 7
	g := NewFoldedHypercube(n).Graph()
	for u := int32(0); int(u) < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			d := bits.OnesCount32(uint32(u ^ v))
			if d != 1 && d != n {
				t.Fatalf("edge %d-%d flips %d bits", u, v, d)
			}
		}
	}
}

// TestFoldedEdgeCount: exactly 2^{n-1} complement edges on top of Q_n.
func TestFoldedEdgeCount(t *testing.T) {
	n := 6
	g := NewFoldedHypercube(n).Graph()
	base := NewHypercube(n).Graph()
	if got, want := g.M(), base.M()+(1<<uint(n-1)); got != want {
		t.Fatalf("M(FQ%d) = %d, want %d", n, got, want)
	}
}

// TestEnhancedEdgeShape: Q_{n,f} edges flip one bit or exactly the f
// high bits.
func TestEnhancedEdgeShape(t *testing.T) {
	n, f := 7, 3
	g := NewEnhancedHypercube(n, f).Graph()
	mask := int32(((1 << uint(f)) - 1) << uint(n-f))
	for u := int32(0); int(u) < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			x := u ^ v
			if bits.OnesCount32(uint32(x)) != 1 && x != mask {
				t.Fatalf("edge %d-%d flips %032b", u, v, x)
			}
		}
	}
}

// TestEnhancedContainsHypercube: Q_n is a spanning subgraph of Q_{n,f},
// the property Theorem 3 uses.
func TestEnhancedContainsHypercube(t *testing.T) {
	n := 6
	e := NewEnhancedHypercube(n, 4).Graph()
	q := NewHypercube(n).Graph()
	for u := int32(0); int(u) < q.N(); u++ {
		for _, v := range q.Neighbors(u) {
			if !e.HasEdge(u, v) {
				t.Fatalf("enhanced cube lost hypercube edge %d-%d", u, v)
			}
		}
	}
}

// TestEnhancedRejectsBadParams documents the constructor contract.
func TestEnhancedRejectsBadParams(t *testing.T) {
	for _, bad := range [][2]int{{4, 1}, {4, 5}, {1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Q(%d,%d) accepted", bad[0], bad[1])
				}
			}()
			NewEnhancedHypercube(bad[0], bad[1])
		}()
	}
}
