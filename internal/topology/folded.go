package topology

import (
	"fmt"

	"comparisondiag/internal/graph"
)

// FoldedHypercube is FQ_n: Q_n plus a complement edge u ~ ū joining each
// node to its bitwise complement [3]. Degree n+1, connectivity n+1,
// diagnosability n+1 for n ≥ 4 [6].
type FoldedHypercube struct {
	n int
	g *graph.Graph
}

// NewFoldedHypercube constructs FQ_n (n ≥ 2).
func NewFoldedHypercube(n int) *FoldedHypercube {
	if n < 2 {
		panic("topology: folded hypercube needs n ≥ 2")
	}
	N := 1 << uint(n)
	full := int32(N - 1)
	g := graph.FromAdjacency(N, func(u int32) []int32 {
		out := make([]int32, 0, n+1)
		for b := 0; b < n; b++ {
			out = append(out, u^int32(1<<uint(b)))
		}
		out = append(out, u^full)
		return out
	})
	return &FoldedHypercube{n: n, g: g}
}

// Name implements Network.
func (f *FoldedHypercube) Name() string { return fmt.Sprintf("FQ%d", f.n) }

// Dim returns n.
func (f *FoldedHypercube) Dim() int { return f.n }

// Graph implements Network.
func (f *FoldedHypercube) Graph() *graph.Graph { return f.g }

// Connectivity implements Network: κ(FQ_n) = n+1 [3].
func (f *FoldedHypercube) Connectivity() int { return f.n + 1 }

// Diagnosability implements Network: δ(FQ_n) = n+1 for n ≥ 4 [6].
func (f *FoldedHypercube) Diagnosability() int { return f.n + 1 }

// CayleyStructure implements CayleyStructured: the single-bit basis
// plus the all-ones complement mask — a multi-bit XOR generator set.
func (f *FoldedHypercube) CayleyStructure() graph.CayleyDescriptor {
	return graph.XORCayley{Bits: f.n, Masks: append(xorBasis(f.n), 1<<uint(f.n)-1)}
}

// Parts implements Network. Complement edges always change the high
// bits, so fixing the high n-m bits induces a plain Q_m — connected with
// minimum degree m ≥ 2.
func (f *FoldedHypercube) Parts(minSize, minCount int) ([]Part, error) {
	return binaryCubeParts(f.g, f.n, 2, minSize, minCount)
}

// EnhancedHypercube is Q_{n,f}: Q_n plus a complement edge flipping the
// f high bits of every node, 2 ≤ f ≤ n [22]. FQ_n is the special case
// f = n. Degree n+1, connectivity n+1, diagnosability n+1 for n ≥ 4 [6].
type EnhancedHypercube struct {
	n, f int
	g    *graph.Graph
}

// NewEnhancedHypercube constructs Q_{n,f} with complement edges flipping
// the f high bits (2 ≤ f ≤ n, n ≥ 2). f ≥ 2 keeps the complement edge
// distinct from the hypercube edges.
func NewEnhancedHypercube(n, f int) *EnhancedHypercube {
	if n < 2 || f < 2 || f > n {
		panic("topology: enhanced hypercube needs n ≥ 2 and 2 ≤ f ≤ n")
	}
	N := 1 << uint(n)
	mask := int32(((1 << uint(f)) - 1) << uint(n-f))
	g := graph.FromAdjacency(N, func(u int32) []int32 {
		out := make([]int32, 0, n+1)
		for b := 0; b < n; b++ {
			out = append(out, u^int32(1<<uint(b)))
		}
		out = append(out, u^mask)
		return out
	})
	return &EnhancedHypercube{n: n, f: f, g: g}
}

// Name implements Network.
func (e *EnhancedHypercube) Name() string { return fmt.Sprintf("Q(%d,%d)", e.n, e.f) }

// Dim returns n.
func (e *EnhancedHypercube) Dim() int { return e.n }

// Graph implements Network.
func (e *EnhancedHypercube) Graph() *graph.Graph { return e.g }

// Connectivity implements Network: κ(Q_{n,f}) = n+1 [22].
func (e *EnhancedHypercube) Connectivity() int { return e.n + 1 }

// Diagnosability implements Network: δ(Q_{n,f}) = n+1 for n ≥ 4 [6].
func (e *EnhancedHypercube) Diagnosability() int { return e.n + 1 }

// CayleyStructure implements CayleyStructured: the single-bit basis
// plus the f-high-bits complement mask.
func (e *EnhancedHypercube) CayleyStructure() graph.CayleyDescriptor {
	mask := int32((1<<uint(e.f) - 1) << uint(e.n-e.f))
	return graph.XORCayley{Bits: e.n, Masks: append(xorBasis(e.n), mask)}
}

// Parts implements Network. The complement edge flips at least one of
// the high n-m bits whenever m ≤ n-1 and f ≥ 2... more precisely it
// flips high bits as long as the partition prefix overlaps the f flipped
// bits; we pick m ≤ n - 1 so every part is either a plain Q_m or Q_m
// plus internal complement chords — connected with min degree ≥ 2 either
// way.
func (e *EnhancedHypercube) Parts(minSize, minCount int) ([]Part, error) {
	return binaryCubeParts(e.g, e.n, 2, minSize, minCount)
}
