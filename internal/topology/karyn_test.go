package topology

import (
	"testing"
	"testing/quick"
)

// leeDistance is the torus metric: per-digit wrap-around distance.
func leeDistance(k, n int, a, b int32) int {
	d := 0
	for i := 0; i < n; i++ {
		da, db := int(a%int32(k)), int(b%int32(k))
		a /= int32(k)
		b /= int32(k)
		diff := da - db
		if diff < 0 {
			diff = -diff
		}
		if k-diff < diff {
			diff = k - diff
		}
		d += diff
	}
	return d
}

// TestKAryDistanceIsLee pins the metric: BFS distance in Q^k_n equals
// Lee distance [5].
func TestKAryDistanceIsLee(t *testing.T) {
	for _, kn := range [][2]int{{3, 3}, {5, 2}, {4, 3}} {
		k, n := kn[0], kn[1]
		g := NewKAryNCube(k, n).Graph()
		dist := g.BFSFrom(0, nil)
		for u := 0; u < g.N(); u++ {
			if int(dist[u]) != leeDistance(k, n, 0, int32(u)) {
				t.Fatalf("Q^%d_%d: dist(0,%d) = %d, want %d", k, n, u, dist[u],
					leeDistance(k, n, 0, int32(u)))
			}
		}
	}
}

// TestKAryDiameter: diameter = n·⌊k/2⌋.
func TestKAryDiameter(t *testing.T) {
	for _, kn := range [][2]int{{3, 3}, {4, 2}, {5, 2}, {6, 2}} {
		k, n := kn[0], kn[1]
		g := NewKAryNCube(k, n).Graph()
		if e := g.Eccentricity(0); e != n*(k/2) {
			t.Fatalf("diameter(Q^%d_%d) = %d, want %d", k, n, e, n*(k/2))
		}
	}
}

// TestKAryPrefixRecursion: fixing the high digit of Q^k_n yields k
// copies of Q^k_{n-1}.
func TestKAryPrefixRecursion(t *testing.T) {
	k := 4
	big := NewKAryNCube(k, 3).Graph()
	small := NewKAryNCube(k, 2).Graph()
	size := int32(16)
	for c := int32(0); c < int32(k); c++ {
		base := c * size
		for u := int32(0); u < size; u++ {
			for v := u + 1; v < size; v++ {
				if small.HasEdge(u, v) != big.HasEdge(base+u, base+v) {
					t.Fatalf("copy %d disagrees at (%d,%d)", c, u, v)
				}
			}
		}
	}
}

// TestAugmentedKArySpansTorus: AQ_{n,k} contains Q^k_n as a spanning
// subgraph — the property the Theorem 4 corollary uses.
func TestAugmentedKArySpansTorus(t *testing.T) {
	k, n := 5, 2
	aug := NewAugmentedKAryNCube(k, n).Graph()
	torus := NewKAryNCube(k, n).Graph()
	for u := int32(0); int(u) < torus.N(); u++ {
		for _, v := range torus.Neighbors(u) {
			if !aug.HasEdge(u, v) {
				t.Fatalf("augmented cube lost torus edge %d-%d", u, v)
			}
		}
	}
}

// TestAugmentedKAryRunEdges: node 0 of AQ_{2,k} must reach (1,1) and
// (k-1,k-1) via the ±(1,1) run edges.
func TestAugmentedKAryRunEdges(t *testing.T) {
	k := 5
	g := NewAugmentedKAryNCube(k, 2).Graph()
	plus := int32(1 + k)            // (1,1)
	minus := int32(k - 1 + (k-1)*k) // (k-1, k-1)
	if !g.HasEdge(0, plus) {
		t.Fatalf("missing +run edge 0-%d", plus)
	}
	if !g.HasEdge(0, minus) {
		t.Fatalf("missing -run edge 0-%d", minus)
	}
}

// Property: k-ary edges change exactly one digit by ±1 (mod k).
func TestQuickKAryEdgeShape(t *testing.T) {
	k, n := 6, 3
	g := NewKAryNCube(k, n).Graph()
	f := func(raw uint16) bool {
		u := int32(raw) % int32(g.N())
		for _, v := range g.Neighbors(u) {
			if leeDistance(k, n, u, v) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
