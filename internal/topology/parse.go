package topology

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse builds a Network from a compact textual spec, the format shared
// by the command-line tools:
//
//	q:10          hypercube Q_10
//	cq:8          crossed cube CQ_8
//	tq:7          twisted cube TQ_7 (odd n)
//	fq:8          folded hypercube FQ_8
//	eq:8,3        enhanced hypercube Q_{8,3}
//	aq:8          augmented cube AQ_8
//	sq:6          shuffle cube SQ_6 (n ≡ 2 mod 4)
//	tnq:8         twisted N-cube TQ'_8
//	kary:4,5      4-ary 5-cube
//	akary:4,3     augmented 4-ary 3-cube AQ_{3,4}
//	star:7        star graph S_7
//	nkstar:7,3    (7,3)-star
//	pancake:7     pancake graph P_7
//	arr:7,4       arrangement graph A_{7,4}
func Parse(spec string) (Network, error) {
	name, argStr, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("topology: spec %q needs the form family:args", spec)
	}
	var args []int
	for _, a := range strings.Split(argStr, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(a))
		if err != nil {
			return nil, fmt.Errorf("topology: bad argument %q in %q", a, spec)
		}
		args = append(args, v)
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("topology: %s takes %d argument(s), got %d", name, n, len(args))
		}
		return nil
	}
	// Constructors panic on out-of-range parameters; surface that as an
	// error for CLI friendliness.
	var nw Network
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("topology: %v", r)
			}
		}()
		switch strings.ToLower(name) {
		case "q", "hypercube":
			if err := need(1); err != nil {
				return err
			}
			nw = NewHypercube(args[0])
		case "cq", "crossed":
			if err := need(1); err != nil {
				return err
			}
			nw = NewCrossedCube(args[0])
		case "tq", "twisted":
			if err := need(1); err != nil {
				return err
			}
			nw = NewTwistedCube(args[0])
		case "fq", "folded":
			if err := need(1); err != nil {
				return err
			}
			nw = NewFoldedHypercube(args[0])
		case "eq", "enhanced":
			if err := need(2); err != nil {
				return err
			}
			nw = NewEnhancedHypercube(args[0], args[1])
		case "aq", "augmented":
			if err := need(1); err != nil {
				return err
			}
			nw = NewAugmentedCube(args[0])
		case "sq", "shuffle":
			if err := need(1); err != nil {
				return err
			}
			nw = NewShuffleCube(args[0])
		case "tnq", "twistedn":
			if err := need(1); err != nil {
				return err
			}
			nw = NewTwistedNCube(args[0])
		case "kary":
			if err := need(2); err != nil {
				return err
			}
			nw = NewKAryNCube(args[0], args[1])
		case "akary":
			if err := need(2); err != nil {
				return err
			}
			nw = NewAugmentedKAryNCube(args[0], args[1])
		case "star":
			if err := need(1); err != nil {
				return err
			}
			nw = NewStar(args[0])
		case "nkstar":
			if err := need(2); err != nil {
				return err
			}
			nw = NewNKStar(args[0], args[1])
		case "pancake":
			if err := need(1); err != nil {
				return err
			}
			nw = NewPancake(args[0])
		case "arr", "arrangement":
			if err := need(2); err != nil {
				return err
			}
			nw = NewArrangement(args[0], args[1])
		default:
			return fmt.Errorf("topology: unknown family %q", name)
		}
		return nil
	}()
	if err != nil {
		return nil, err
	}
	return nw, nil
}
