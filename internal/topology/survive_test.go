package topology

import (
	"testing"

	"comparisondiag/internal/graph"
)

// TestSurvivePartsHypercube removes one node from Q6 and checks that the
// untouched subcube parts are remapped wholesale while the touched
// one is repaired or dropped.
func TestSurvivePartsHypercube(t *testing.T) {
	nw := NewHypercube(6)
	g := nw.Graph()
	delta := nw.Diagnosability()
	parts, err := nw.Parts(delta+1, delta+1)
	if err != nil {
		t.Fatal(err)
	}
	rr := g.RemoveNodes([]int32{0})
	out, _, kept, repaired, dropped := SurviveParts(rr.G, parts, rr.OldToNew, rr.GoneEdges, nil)
	if kept != len(parts)-1 {
		t.Fatalf("kept = %d, want %d untouched parts", kept, len(parts)-1)
	}
	if repaired+dropped != 1 {
		t.Fatalf("repaired=%d dropped=%d, want exactly the one touched part handled", repaired, dropped)
	}
	// Every surviving part must satisfy the structural preconditions on
	// the compacted graph (sizes checked by the caller, so minSize 2).
	if err := ValidatePartition(rr.G, out, 2, len(out)); err != nil {
		t.Fatalf("surviving parts invalid: %v", err)
	}
	// Remapped node slices must stay ascending.
	for pi, p := range out {
		for i := 1; i < len(p.Nodes); i++ {
			if p.Nodes[i-1] >= p.Nodes[i] {
				t.Fatalf("part %d not ascending: %v", pi, p.Nodes)
			}
		}
	}
}

// TestSurvivePartsEdgeChurn removes an edge inside one part: only that
// part may be re-validated; parts crossed by the edge removal but not
// containing it stay kept.
func TestSurvivePartsEdgeChurn(t *testing.T) {
	nw := NewHypercube(6)
	g := nw.Graph()
	parts, err := nw.Parts(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	// An edge inside parts[0]: two nodes of the part that are adjacent.
	var u, v int32 = -1, -1
outer:
	for _, a := range parts[0].Nodes {
		for _, b := range parts[0].Nodes {
			if a < b && g.HasEdge(a, b) {
				u, v = a, b
				break outer
			}
		}
	}
	if u < 0 {
		t.Fatal("no intra-part edge found")
	}
	rr := g.RemoveEdges([][2]int32{{u, v}})
	out, _, kept, repaired, dropped := SurviveParts(rr.G, parts, rr.OldToNew, rr.GoneEdges, nil)
	if kept != len(parts)-1 || repaired+dropped != 1 {
		t.Fatalf("kept=%d repaired=%d dropped=%d, want exactly parts[0] touched", kept, repaired, dropped)
	}
	if err := ValidatePartition(rr.G, out, 2, len(out)); err != nil {
		t.Fatalf("surviving parts invalid: %v", err)
	}
}

// TestSurvivePartsDisconnectedPartDropped splits a part into two pieces
// (while the graph itself stays connected) and checks it is dropped, not
// kept broken.
func TestSurvivePartsDisconnectedPartDropped(t *testing.T) {
	// Two triangles joined both directly (2-3) and through node 6. The
	// part holds both triangles and relies on the 2-3 edge for its own
	// connectivity; removing that edge leaves the graph connected via 6
	// but the part's induced subgraph in two pieces.
	b := graph.NewBuilder(7)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	b.MustAddEdge(2, 0)
	b.MustAddEdge(3, 4)
	b.MustAddEdge(4, 5)
	b.MustAddEdge(5, 3)
	b.MustAddEdge(2, 3)
	b.MustAddEdge(2, 6)
	b.MustAddEdge(6, 3)
	g := b.Build()
	parts := []Part{{Nodes: []int32{0, 1, 2, 3, 4, 5}, Seed: 0}}
	rr := g.RemoveEdges([][2]int32{{2, 3}})
	if rr.G.N() != 7 {
		t.Fatalf("graph should stay connected, survivor has %d nodes", rr.G.N())
	}
	out, _, kept, repaired, dropped := SurviveParts(rr.G, parts, rr.OldToNew, rr.GoneEdges, nil)
	if kept != 0 || repaired != 0 || dropped != 1 || len(out) != 0 {
		t.Fatalf("kept=%d repaired=%d dropped=%d out=%v, want the split part dropped", kept, repaired, dropped, out)
	}
}
