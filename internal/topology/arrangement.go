package topology

import (
	"fmt"

	"comparisondiag/internal/graph"
)

// Arrangement is the arrangement graph A_{n,k} of Day and Tripathi [11]:
// nodes are injective k-tuples over n symbols, edges join tuples that
// differ in exactly one position. Degree k(n-k), connectivity k(n-k)
// [11], diagnosability k(n-k) [6].
//
// Note: the paper's Section 5.2 "proof" for arrangement graphs is a
// copy of the pancake paragraph (gap G2 in DESIGN.md); the partition
// implemented here is the real one — fix the last j positions to get
// n!/(n-j)! copies of A_{n-j,k-j}.
type Arrangement struct {
	n, k  int
	codec *permCodec
	g     *graph.Graph
}

// NewArrangement constructs A_{n,k} for 1 ≤ k ≤ n-1, n ≤ 12.
func NewArrangement(n, k int) *Arrangement {
	if n < 3 || k < 1 || k > n-1 || n > 12 {
		panic("topology: arrangement graph needs 1 ≤ k ≤ n-1, 3 ≤ n ≤ 12")
	}
	codec := newPermCodec(n, k)
	N := codec.Count()
	p := make([]int8, k)
	var unused []int8
	g := graph.FromAdjacency(N, func(u int32) []int32 {
		codec.Unrank(u, p)
		unused = unusedSymbols(n, p, unused[:0])
		out := make([]int32, 0, k*(n-k))
		for i := 0; i < k; i++ {
			old := p[i]
			for _, s := range unused {
				p[i] = s
				out = append(out, codec.Rank(p))
			}
			p[i] = old
		}
		return out
	})
	return &Arrangement{n: n, k: k, codec: codec, g: g}
}

// Name implements Network.
func (a *Arrangement) Name() string { return fmt.Sprintf("A(%d,%d)", a.n, a.k) }

// Dim returns n; Positions returns k.
func (a *Arrangement) Dim() int { return a.n }

// Positions returns k.
func (a *Arrangement) Positions() int { return a.k }

// Graph implements Network.
func (a *Arrangement) Graph() *graph.Graph { return a.g }

// Connectivity implements Network: κ(A_{n,k}) = k(n-k) [11].
func (a *Arrangement) Connectivity() int { return a.k * (a.n - a.k) }

// Diagnosability implements Network: δ(A_{n,k}) = k(n-k) [6].
func (a *Arrangement) Diagnosability() int { return a.k * (a.n - a.k) }

// Parts implements Network. Fixing the last j positions yields
// n!/(n-j)! copies of A_{n-j,k-j}; A_{m,1} is the complete graph K_m.
// For small k the precondition N > δ(δ+1) is unsatisfiable — e.g. every
// A_{n,2} — and ErrNoPartition is returned (gap G3 in DESIGN.md).
func (a *Arrangement) Parts(minSize, minCount int) ([]Part, error) {
	return suffixParts(a.g, a.codec, a.n, a.k, minSize, minCount, func(nRem, kRem int) bool {
		// Induced degree of A_{nRem,kRem} is kRem(nRem-kRem); the
		// nRem ≥ 3 guard covers the K_m case too.
		return nRem >= 3 && kRem*(nRem-kRem) >= 2
	})
}
