package topology

import (
	"testing"
	"testing/quick"
)

// TestCrossedNeighborInvolution: the level-l neighbour map must be an
// involution (the graph is undirected by construction, not by accident).
func TestCrossedNeighborInvolution(t *testing.T) {
	for n := 2; n <= 8; n++ {
		N := int32(1) << uint(n)
		for u := int32(0); u < N; u++ {
			for l := 0; l < n; l++ {
				v := crossedNeighbor(u, l)
				if v == u {
					t.Fatalf("n=%d: self-loop at %d level %d", n, u, l)
				}
				if back := crossedNeighbor(v, l); back != u {
					t.Fatalf("n=%d: neighbour map not involutive at %d level %d (%d -> %d)", n, u, l, v, back)
				}
			}
		}
	}
}

// TestCrossedPrefixRecursion: the half of CQ_n with the top bit fixed
// must induce CQ_{n-1} exactly — the property the partition relies on.
func TestCrossedPrefixRecursion(t *testing.T) {
	big := NewCrossedCube(6).Graph()
	small := NewCrossedCube(5).Graph()
	half := int32(32)
	for u := int32(0); u < half; u++ {
		for v := u + 1; v < half; v++ {
			if small.HasEdge(u, v) != big.HasEdge(u, v) {
				t.Fatalf("lower half disagrees with CQ5 at (%d,%d)", u, v)
			}
			if small.HasEdge(u, v) != big.HasEdge(half+u, half+v) {
				t.Fatalf("upper half disagrees with CQ5 at (%d,%d)", u, v)
			}
		}
	}
}

// TestCrossedCubeDiameter: the crossed cube's signature property is the
// halved diameter ⌈(n+1)/2⌉ [12].
func TestCrossedCubeDiameter(t *testing.T) {
	for n := 3; n <= 8; n++ {
		g := NewCrossedCube(n).Graph()
		want := (n + 2) / 2 // ⌈(n+1)/2⌉
		diam := 0
		// Eccentricity from a sample of nodes; crossed cubes are not
		// node-transitive, so scan all nodes for small n.
		for u := int32(0); int(u) < g.N(); u++ {
			if e := g.Eccentricity(u); e > diam {
				diam = e
			}
		}
		if diam != want {
			t.Fatalf("diameter(CQ%d) = %d, want %d", n, diam, want)
		}
	}
}

// TestCrossedPairRelation pins the pair map on the four 2-bit values.
func TestCrossedPairRelation(t *testing.T) {
	// Pair-related pairs: (00,00), (10,10), (01,11), (11,01). The map
	// flips bit 1 exactly when bit 0 is set. Level-2 neighbour of u
	// applies it to pair (1,0).
	cases := map[int32]int32{
		0b000: 0b100, // pair 00 stays
		0b010: 0b110, // pair 10 stays
		0b001: 0b111, // pair 01 becomes 11
		0b011: 0b101, // pair 11 becomes 01
	}
	for u, want := range cases {
		if got := crossedNeighbor(u, 2); got != want {
			t.Fatalf("level-2 neighbour of %03b = %03b, want %03b", u, got, want)
		}
	}
}

// Property: neighbours at level l agree above l and differ at l.
func TestQuickCrossedLevelStructure(t *testing.T) {
	n := 9
	f := func(raw uint16, lRaw uint8) bool {
		u := int32(raw) & (1<<uint(n) - 1)
		l := int(lRaw) % n
		v := crossedNeighbor(u, l)
		highMask := int32(-1) << uint(l+1)
		if (u^v)&highMask != 0 {
			return false // must agree above l
		}
		return (u^v)&(1<<uint(l)) != 0 // must differ at l
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
