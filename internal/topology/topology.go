// Package topology constructs the interconnection-network families the
// paper applies its algorithm to (Section 5): hypercubes and their
// variants (crossed, twisted, folded, enhanced, augmented, shuffle,
// twisted-N), k-ary n-cubes and augmented k-ary n-cubes, (n,k)-stars,
// stars, pancake graphs and arrangement graphs.
//
// Each family exposes, beside the graph itself, the two quantities the
// diagnosis theory needs — claimed connectivity κ and diagnosability δ —
// and a partition generator producing more than δ disjoint connected
// parts of more than δ nodes each (Theorem 1's precondition). Claims are
// cross-checked against exact computations on small instances in tests.
package topology

import (
	"errors"
	"fmt"
	"slices"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/graph"
)

// Part is one cell of a diagnosis partition: a connected set of nodes
// with a designated seed for Set_Builder. Nodes are in ascending order.
type Part struct {
	Nodes []int32
	Seed  int32
}

// Network is an interconnection network with known diagnosis metadata.
type Network interface {
	// Name identifies the instance, e.g. "Q10" or "S(7,3)".
	Name() string
	// Graph returns the underlying undirected graph.
	Graph() *graph.Graph
	// Connectivity returns the connectivity κ claimed by the literature
	// for this instance.
	Connectivity() int
	// Diagnosability returns the diagnosability δ claimed by the
	// literature for this instance.
	Diagnosability() int
	// Parts returns at least minCount disjoint connected parts, each
	// with at least minSize nodes and minimum induced degree ≥ 2. It
	// returns ErrNoPartition when the family cannot meet the request.
	Parts(minSize, minCount int) ([]Part, error)
}

// ErrNoPartition reports that a network cannot be split into enough
// sufficiently large connected parts — e.g. (n,2)-stars, where
// N = n(n-1) < (δ+1)² (gap G3 in DESIGN.md).
var ErrNoPartition = errors.New("topology: no partition with requested part size and count exists")

// rangeParts builds parts that are contiguous id ranges [i·size,
// (i+1)·size) — the natural shape for dimensional networks where a part
// is "fix the high digits". seedOffset picks the seed within each range.
func rangeParts(total, size int) []Part {
	// One flat backing array for every part's Nodes: Diagnose recomputes
	// the partition per call, so building total/size separate slices
	// would dominate its allocation profile.
	flat := make([]int32, total)
	for i := range flat {
		flat[i] = int32(i)
	}
	parts := make([]Part, 0, total/size)
	for lo := 0; lo < total; lo += size {
		parts = append(parts, Part{Nodes: flat[lo : lo+size : lo+size], Seed: int32(lo)})
	}
	return parts
}

// groupParts builds parts by grouping node ids on a key function —
// the natural shape for permutation networks where a part is "fix the
// last j positions". Keys must be in [0, numKeys).
func groupParts(n, numKeys int, key func(u int32) int) []Part {
	// Counting pass, then one flat backing array shared by all buckets
	// (same allocation-profile concern as rangeParts). Node ids are
	// assigned in ascending order, so each bucket comes out sorted.
	counts := make([]int32, numKeys)
	for u := int32(0); int(u) < n; u++ {
		counts[key(u)]++
	}
	flat := make([]int32, n)
	buckets := make([][]int32, numKeys)
	off := int32(0)
	for k, c := range counts {
		buckets[k] = flat[off : off : off+c]
		off += c
	}
	for u := int32(0); int(u) < n; u++ {
		k := key(u)
		buckets[k] = append(buckets[k], u)
	}
	parts := make([]Part, 0, numKeys)
	for _, b := range buckets {
		if len(b) == 0 {
			continue
		}
		parts = append(parts, Part{Nodes: b, Seed: b[0]})
	}
	return parts
}

// mergeParts greedily merges undersized parts with adjacent parts until
// every part has at least minSize nodes, failing if that would leave
// fewer than minCount parts. Used by families whose natural recursion
// step is coarse (the shuffle-cube splits 16-ways, so one level down the
// parts may be too small, but pairs of adjacent copies are fine).
func mergeParts(g *graph.Graph, parts []Part, minSize, minCount int) ([]Part, error) {
	for {
		if len(parts) < minCount {
			return nil, ErrNoPartition
		}
		small := -1
		for i, p := range parts {
			if len(p.Nodes) < minSize {
				small = i
				break
			}
		}
		if small == -1 {
			return parts, nil
		}
		// Find a part adjacent to parts[small].
		mask := bitset.FromMembers(g.N(), parts[small].Nodes)
		nb := g.NeighborsOfSet(mask)
		partner := -1
		for i, p := range parts {
			if i == small {
				continue
			}
			for _, u := range p.Nodes {
				if nb.Contains(int(u)) {
					partner = i
					break
				}
			}
			if partner != -1 {
				break
			}
		}
		if partner == -1 {
			return nil, ErrNoPartition
		}
		merged := append(append([]int32{}, parts[small].Nodes...), parts[partner].Nodes...)
		sortInt32(merged)
		np := make([]Part, 0, len(parts)-1)
		for i, p := range parts {
			if i == small || i == partner {
				continue
			}
			np = append(np, p)
		}
		np = append(np, Part{Nodes: merged, Seed: merged[0]})
		parts = np
	}
}

// granularity describes one available partition refinement level of a
// family: the part size, the part count, and a constructor.
type granularity struct {
	size, count int
	build       func() []Part
}

// chooseParts selects a partition meeting minSize and minCount from the
// family's granularity levels (sorted by ascending size). It prefers the
// smallest natural fit; when no level fits outright it pads parts of the
// coarsest level with enough parts by donating nodes from surplus parts
// (padParts). This rescues instances like FQ_7, where δ+1 = 9 but
// subcube sizes and counts are powers of two (8 and 16 never both ≥ 9).
func chooseParts(g *graph.Graph, levels []granularity, minSize, minCount int) ([]Part, error) {
	for _, lv := range levels {
		if lv.size >= minSize && lv.count >= minCount {
			return lv.build(), nil
		}
	}
	for i := len(levels) - 1; i >= 0; i-- {
		lv := levels[i]
		if lv.count < minCount {
			continue
		}
		if padded, err := padParts(g, lv.build(), minSize, minCount); err == nil {
			return padded, nil
		}
	}
	return nil, ErrNoPartition
}

// padParts keeps the first minCount parts and grows each to minSize by
// donating nodes from the remaining parts. A single node is donated when
// it already has two neighbours in the growing part; otherwise an edge
// {a, b} with each endpoint adjacent to the part is donated, so every
// added node keeps induced degree ≥ 2 and the part stays connected. The
// result is a family of disjoint certified-shape parts that no longer
// covers V — Theorem 1 only needs disjointness, not coverage.
func padParts(g *graph.Graph, parts []Part, minSize, minCount int) ([]Part, error) {
	if len(parts) < minCount {
		return nil, ErrNoPartition
	}
	pool := bitset.New(g.N())
	for _, p := range parts[minCount:] {
		for _, u := range p.Nodes {
			pool.Add(int(u))
		}
	}
	kept := make([]Part, minCount)
	for pi := range kept {
		nodes := append([]int32{}, parts[pi].Nodes...)
		mask := bitset.FromMembers(g.N(), nodes)
		for len(nodes) < minSize {
			a, b, ok := findDonation(g, mask, pool)
			if !ok {
				return nil, ErrNoPartition
			}
			pool.Remove(int(a))
			mask.Add(int(a))
			nodes = append(nodes, a)
			if b >= 0 {
				pool.Remove(int(b))
				mask.Add(int(b))
				nodes = append(nodes, b)
			}
		}
		sortInt32(nodes)
		kept[pi] = Part{Nodes: nodes, Seed: nodes[0]}
	}
	return kept, nil
}

// findDonation locates either a pool node with ≥ 2 neighbours in mask
// (returned as (a, -1)) or a pool edge {a, b} with both endpoints
// adjacent to mask.
func findDonation(g *graph.Graph, mask, pool *bitset.Set) (int32, int32, bool) {
	var single int32 = -1
	var pa, pb int32 = -1, -1
	pool.ForEach(func(i int) bool {
		a := int32(i)
		deg := 0
		for _, v := range g.Neighbors(a) {
			if mask.Contains(int(v)) {
				deg++
			}
		}
		if deg >= 2 {
			single = a
			return false
		}
		if deg == 1 && pa == -1 {
			for _, b := range g.Neighbors(a) {
				if !pool.Contains(int(b)) {
					continue
				}
				for _, w := range g.Neighbors(b) {
					if w != a && mask.Contains(int(w)) {
						pa, pb = a, b
						break
					}
				}
				if pa != -1 {
					break
				}
			}
		}
		return true
	})
	if single >= 0 {
		return single, -1, true
	}
	if pa >= 0 {
		return pa, pb, true
	}
	return -1, -1, false
}

func sortInt32(a []int32) { slices.Sort(a) }

// ValidatePartition checks the Theorem 1 preconditions for a partition:
// parts disjoint, each connected in g, each with at least minSize nodes
// and induced minimum degree ≥ 2, and at least minCount parts. Tests use
// it against every family.
func ValidatePartition(g *graph.Graph, parts []Part, minSize, minCount int) error {
	if len(parts) < minCount {
		return fmt.Errorf("topology: %d parts, need ≥ %d", len(parts), minCount)
	}
	seen := bitset.New(g.N())
	for pi, p := range parts {
		if len(p.Nodes) < minSize {
			return fmt.Errorf("topology: part %d has %d nodes, need ≥ %d", pi, len(p.Nodes), minSize)
		}
		mask := bitset.New(g.N())
		for _, u := range p.Nodes {
			if seen.Contains(int(u)) {
				return fmt.Errorf("topology: node %d in two parts", u)
			}
			seen.Add(int(u))
			mask.Add(int(u))
		}
		if !mask.Contains(int(p.Seed)) {
			return fmt.Errorf("topology: seed %d outside part %d", p.Seed, pi)
		}
		if !g.ConnectedWithin(mask) {
			return fmt.Errorf("topology: part %d not connected", pi)
		}
		for _, u := range p.Nodes {
			deg := 0
			for _, v := range g.Neighbors(u) {
				if mask.Contains(int(v)) {
					deg++
				}
			}
			if deg < 2 {
				return fmt.Errorf("topology: node %d has induced degree %d < 2 in part %d", u, deg, pi)
			}
		}
	}
	return nil
}

// pow returns b^e for small non-negative integers.
func pow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}
