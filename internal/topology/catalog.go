package topology

// FamilyInfo describes one interconnection-network family: its spec
// grammar, parameter constraints and the formulas the literature
// provides. Catalog is consumed by the command-line tools' help output
// and by sweep-style tests.
type FamilyInfo struct {
	// Spec is the Parse prefix, e.g. "q" or "nkstar".
	Spec string
	// Name is the family's display name.
	Name string
	// Params documents the constructor arguments.
	Params string
	// DegreeFormula, KappaFormula, DeltaFormula are human-readable.
	DegreeFormula, KappaFormula, DeltaFormula string
	// Conditions states when the δ formula is certified.
	Conditions string
	// Reference is the paper's citation index for the family.
	Reference string
	// Example is a valid spec for a moderate instance.
	Example string
}

// Catalog lists every family of the paper's Section 5.
func Catalog() []FamilyInfo {
	return []FamilyInfo{
		{"q", "hypercube Q_n", "n ≥ 2", "n", "n", "n", "n ≥ 5 [23]; δ(Q4)=4, δ(Q3)=2 by exact computation", "[23]", "q:10"},
		{"cq", "crossed cube CQ_n", "n ≥ 2", "n", "n", "n", "n ≥ 4", "[12,14,16]", "cq:9"},
		{"tq", "twisted cube TQ_n", "odd n ≥ 3", "n", "n", "n", "n ≥ 5 (odd)", "[15,7]", "tq:9"},
		{"fq", "folded hypercube FQ_n", "n ≥ 2", "n+1", "n+1", "n+1", "n ≥ 4", "[3]", "fq:9"},
		{"eq", "enhanced hypercube Q_{n,f}", "n ≥ 2, 2 ≤ f ≤ n", "n+1", "n+1", "n+1", "n ≥ 4", "[22]", "eq:9,4"},
		{"aq", "augmented cube AQ_n", "n ≥ 2", "2n-1", "2n-1 (4 for n=3)", "2n-1 (4 for n=3)", "n ≥ 5; partitions need n ≥ 8 (gap G3)", "[10]", "aq:9"},
		{"sq", "shuffle cube SQ_n", "n ≡ 2 (mod 4)", "n", "n", "n", "n ≥ 4", "[17]", "sq:10"},
		{"tnq", "twisted N-cube TQ'_n", "n ≥ 2", "n", "n", "n", "n ≥ 4", "[13]", "tnq:9"},
		{"kary", "k-ary n-cube Q^k_n", "k ≥ 3, n ≥ 1", "2n", "2n", "2n", "excl. the small pairs of [6]", "[5]", "kary:4,4"},
		{"akary", "augmented k-ary n-cube AQ_{n,k}", "k ≥ 3, n ≥ 2", "4n-2", "4n-2", "4n-2", "(n,k) ≠ (2,3); partitions need k^n ≥ (4n-1)²", "[25]", "akary:7,2"},
		{"star", "star graph S_n", "3 ≤ n ≤ 12", "n-1", "n-1", "n-1", "n ≥ 4", "[1,28]", "star:7"},
		{"nkstar", "(n,k)-star S_{n,k}", "2 ≤ k ≤ n-1, n ≤ 12", "n-1", "n-1", "n-1", "(n,k) ≠ (3,2); k = 2 hits gap G3", "[9]", "nkstar:7,3"},
		{"pancake", "pancake graph P_n", "3 ≤ n ≤ 12", "n-1", "n-1", "n-1", "n ≥ 4", "[2]", "pancake:7"},
		{"arr", "arrangement graph A_{n,k}", "1 ≤ k ≤ n-1, n ≤ 12", "k(n-k)", "k(n-k)", "k(n-k)", "k = 2 hits gap G3", "[11]", "arr:7,4"},
	}
}
