package topology

import (
	"fmt"

	"comparisondiag/internal/graph"
)

// Star is the star graph S_n of Akers, Harel and Krishnamurthy [1]:
// nodes are permutations of n symbols, edges swap the first symbol with
// the symbol at position i for i = 2..n. Degree n-1, connectivity n-1,
// diagnosability n-1 for n ≥ 4 [28].
type Star struct {
	n     int
	codec *permCodec
	g     *graph.Graph
}

// NewStar constructs S_n (3 ≤ n ≤ 12; larger stars exceed reasonable
// memory as n! nodes).
func NewStar(n int) *Star {
	if n < 3 || n > 12 {
		panic("topology: star graph needs 3 ≤ n ≤ 12")
	}
	codec := newPermCodec(n, n)
	N := codec.Count()
	p := make([]int8, n)
	g := graph.FromAdjacency(N, func(u int32) []int32 {
		codec.Unrank(u, p)
		out := make([]int32, 0, n-1)
		for i := 1; i < n; i++ {
			p[0], p[i] = p[i], p[0]
			out = append(out, codec.Rank(p))
			p[0], p[i] = p[i], p[0]
		}
		return out
	})
	return &Star{n: n, codec: codec, g: g}
}

// Name implements Network.
func (s *Star) Name() string { return fmt.Sprintf("S%d", s.n) }

// Dim returns n.
func (s *Star) Dim() int { return s.n }

// Graph implements Network.
func (s *Star) Graph() *graph.Graph { return s.g }

// Connectivity implements Network: κ(S_n) = n-1 [1].
func (s *Star) Connectivity() int { return s.n - 1 }

// Diagnosability implements Network: δ(S_n) = n-1 for n ≥ 4 [28].
func (s *Star) Diagnosability() int { return s.n - 1 }

// Parts implements Network. Fixing the last j symbols partitions S_n
// into n!/(n-j)! copies of S_{n-j} (swaps touch only position 1 and
// positions ≤ n-j once the suffix is fixed). Requires n-j ≥ 3 so parts
// keep induced degree ≥ 2.
func (s *Star) Parts(minSize, minCount int) ([]Part, error) {
	return suffixParts(s.g, s.codec, s.n, s.n, minSize, minCount, func(nRem, kRem int) bool {
		return nRem >= 3
	})
}

// suffixParts partitions a permutation-family graph (k-permutations of n
// symbols ranked by codec) by fixing the last j positions, preferring
// the largest viable j (smallest parts) meeting minSize and minCount and
// falling back to donor padding. partOK(nRem, kRem) reports whether a
// part with nRem remaining symbols and kRem free positions keeps the
// family's structural guarantees (connected, induced degree ≥ 2).
func suffixParts(g *graph.Graph, codec *permCodec, n, k, minSize, minCount int, partOK func(nRem, kRem int) bool) ([]Part, error) {
	total := codec.Count()
	var levels []granularity
	for j := k - 1; j >= 1; j-- { // ascending part size
		// size = (n-j)!/(n-k)!, count = n!/(n-j)!.
		size := 1
		for v := n - j; v > n-k; v-- {
			size *= v
		}
		if size < 3 || !partOK(n-j, k-j) {
			continue
		}
		count := total / size
		jj := j
		levels = append(levels, granularity{size, count, func() []Part {
			sufCodec := newPermCodec(n, jj)
			p := make([]int8, k)
			suffix := make([]int8, jj)
			return groupParts(total, sufCodec.Count(), func(u int32) int {
				codec.Unrank(u, p)
				copy(suffix, p[k-jj:])
				return int(sufCodec.Rank(suffix))
			})
		}})
	}
	return chooseParts(g, levels, minSize, minCount)
}

// NKStar is the (n,k)-star graph S_{n,k} of Chiang and Chen [9]: nodes
// are injective k-tuples over n symbols; edges either swap position 1
// with position i (2 ≤ i ≤ k) or replace the symbol in position 1 by an
// unused symbol. Degree n-1, connectivity n-1 [9], diagnosability n-1
// for (n,k) ≠ (3,2) [6].
type NKStar struct {
	n, k  int
	codec *permCodec
	g     *graph.Graph
}

// NewNKStar constructs S_{n,k} for 2 ≤ k ≤ n-1, n ≤ 12.
func NewNKStar(n, k int) *NKStar {
	if n < 3 || k < 2 || k > n-1 || n > 12 {
		panic("topology: (n,k)-star needs 2 ≤ k ≤ n-1, 3 ≤ n ≤ 12")
	}
	codec := newPermCodec(n, k)
	N := codec.Count()
	p := make([]int8, k)
	var unused []int8
	g := graph.FromAdjacency(N, func(u int32) []int32 {
		codec.Unrank(u, p)
		out := make([]int32, 0, n-1)
		for i := 1; i < k; i++ {
			p[0], p[i] = p[i], p[0]
			out = append(out, codec.Rank(p))
			p[0], p[i] = p[i], p[0]
		}
		unused = unusedSymbols(n, p, unused[:0])
		old := p[0]
		for _, s := range unused {
			p[0] = s
			out = append(out, codec.Rank(p))
		}
		p[0] = old
		return out
	})
	return &NKStar{n: n, k: k, codec: codec, g: g}
}

// Name implements Network.
func (s *NKStar) Name() string { return fmt.Sprintf("S(%d,%d)", s.n, s.k) }

// Dim returns n; Positions returns k.
func (s *NKStar) Dim() int { return s.n }

// Positions returns k.
func (s *NKStar) Positions() int { return s.k }

// Graph implements Network.
func (s *NKStar) Graph() *graph.Graph { return s.g }

// Connectivity implements Network: κ(S_{n,k}) = n-1 [9].
func (s *NKStar) Connectivity() int { return s.n - 1 }

// Diagnosability implements Network: δ(S_{n,k}) = n-1 [6].
func (s *NKStar) Diagnosability() int { return s.n - 1 }

// Parts implements Network. Fixing the last j positions partitions
// S_{n,k} into n!/(n-j)! copies of S_{n-j,k-j}; S_{m,1} is the complete
// graph K_m (min degree m-1 ≥ 2 needs m ≥ 3). For k = 2 the partition
// precondition of Theorem 1 is unsatisfiable — N = n(n-1) is smaller
// than (δ+1)² — and ErrNoPartition is returned (gap G3 in DESIGN.md).
func (s *NKStar) Parts(minSize, minCount int) ([]Part, error) {
	return suffixParts(s.g, s.codec, s.n, s.k, minSize, minCount, func(nRem, kRem int) bool {
		// S_{m,1} = K_m and S_{m,l} both need m ≥ 3 for induced degree ≥ 2.
		return nRem >= 3
	})
}
