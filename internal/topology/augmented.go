package topology

import (
	"fmt"

	"comparisondiag/internal/graph"
)

// AugmentedCube is AQ_n of Choudum and Sunitha [10]: Q_n plus
// "suffix-complement" edges u ~ u ⊕ (2^{i+1} - 1) flipping the low i+1
// bits, for i = 1..n-1. Degree 2n-1, connectivity 2n-1 [10],
// diagnosability 2n-1 for n ≥ 5 [6].
//
// (The literature writes the complemented run at the front; we place it
// at the low end so that fixing the high bits yields the recursive
// sub-copies AQ_m — the same graph up to bit reversal.)
type AugmentedCube struct {
	n int
	g *graph.Graph
}

// NewAugmentedCube constructs AQ_n (n ≥ 2).
func NewAugmentedCube(n int) *AugmentedCube {
	if n < 2 {
		panic("topology: augmented cube needs n ≥ 2")
	}
	N := 1 << uint(n)
	g := graph.FromAdjacency(N, func(u int32) []int32 {
		out := make([]int32, 0, 2*n-1)
		for b := 0; b < n; b++ {
			out = append(out, u^int32(1<<uint(b)))
		}
		for i := 1; i < n; i++ {
			out = append(out, u^int32((1<<uint(i+1))-1))
		}
		return out
	})
	return &AugmentedCube{n: n, g: g}
}

// Name implements Network.
func (a *AugmentedCube) Name() string { return fmt.Sprintf("AQ%d", a.n) }

// Dim returns n.
func (a *AugmentedCube) Dim() int { return a.n }

// Graph implements Network.
func (a *AugmentedCube) Graph() *graph.Graph { return a.g }

// Connectivity implements Network: κ(AQ_n) = 2n-1 for n ≠ 3, and 4 for
// the known exceptional case AQ_3 [10] (verified exactly in tests).
func (a *AugmentedCube) Connectivity() int {
	if a.n == 3 {
		return 4
	}
	return 2*a.n - 1
}

// Diagnosability implements Network: δ(AQ_n) = 2n-1 for n ≥ 5 [6]. For
// n = 3 the connectivity exception caps the usable fault bound at 4.
func (a *AugmentedCube) Diagnosability() int {
	if a.n == 3 {
		return 4
	}
	return 2*a.n - 1
}

// CayleyStructure implements CayleyStructured: the single-bit basis
// plus the low-run complement masks 2^(i+1)-1 — all multi-bit.
func (a *AugmentedCube) CayleyStructure() graph.CayleyDescriptor {
	masks := xorBasis(a.n)
	for i := 1; i < a.n; i++ {
		masks = append(masks, 1<<uint(i+1)-1)
	}
	return graph.XORCayley{Bits: a.n, Masks: masks}
}

// Parts implements Network. Suffix-complement edges with i+1 ≤ m stay
// inside a high-bits-fixed part, so every part induces AQ_m — connected
// with minimum degree 2m-1 ≥ 3 for m ≥ 2.
func (a *AugmentedCube) Parts(minSize, minCount int) ([]Part, error) {
	return binaryCubeParts(a.g, a.n, 2, minSize, minCount)
}

// TwistedNCube is TQ'_n of Esfahanian, Ni and Sagan [13]: Q_n with one
// 2-dimensional face re-wired. On the face {0, 1, 2, 3} (all high bits
// zero) the dimension-0 edges {0,1} and {2,3} are replaced by the
// diagonals {0,3} and {1,2}. Degree n, connectivity n [13],
// diagnosability n for n ≥ 4 [6].
type TwistedNCube struct {
	n int
	g *graph.Graph
}

// NewTwistedNCube constructs TQ'_n (n ≥ 2).
func NewTwistedNCube(n int) *TwistedNCube {
	if n < 2 {
		panic("topology: twisted N-cube needs n ≥ 2")
	}
	N := 1 << uint(n)
	g := graph.FromAdjacency(N, func(u int32) []int32 {
		out := make([]int32, 0, n)
		onFace := u < 4
		for b := 0; b < n; b++ {
			v := u ^ int32(1<<uint(b))
			if onFace && b == 0 {
				// Twist: 0↔3 and 1↔2 instead of 0↔1 and 2↔3; all four
				// rewired endpoints are u XOR 3.
				v = u ^ 3
			}
			out = append(out, v)
		}
		return out
	})
	return &TwistedNCube{n: n, g: g}
}

// Name implements Network.
func (t *TwistedNCube) Name() string { return fmt.Sprintf("TQ'%d", t.n) }

// Dim returns n.
func (t *TwistedNCube) Dim() int { return t.n }

// Graph implements Network.
func (t *TwistedNCube) Graph() *graph.Graph { return t.g }

// Connectivity implements Network: κ(TQ'_n) = n [13].
func (t *TwistedNCube) Connectivity() int { return t.n }

// Diagnosability implements Network: δ(TQ'_n) = n for n ≥ 4 [6].
func (t *TwistedNCube) Diagnosability() int { return t.n }

// Parts implements Network. The twisted face sits inside the part with
// prefix 0 (for any m ≥ 2), which therefore induces TQ'_m; every other
// part is a plain Q_m.
func (t *TwistedNCube) Parts(minSize, minCount int) ([]Part, error) {
	return binaryCubeParts(t.g, t.n, 2, minSize, minCount)
}
