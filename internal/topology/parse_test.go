package topology

import (
	"strings"
	"testing"
)

func TestParseValidSpecs(t *testing.T) {
	cases := []struct {
		spec string
		name string
		n    int
	}{
		{"q:6", "Q6", 64},
		{"hypercube:6", "Q6", 64},
		{"cq:5", "CQ5", 32},
		{"tq:5", "TQ5", 32},
		{"fq:5", "FQ5", 32},
		{"eq:5,3", "Q(5,3)", 32},
		{"aq:5", "AQ5", 32},
		{"sq:6", "SQ6", 64},
		{"tnq:5", "TQ'5", 32},
		{"kary:3,3", "Q^3_3", 27},
		{"akary:4,2", "AQ(2,4)", 16},
		{"star:4", "S4", 24},
		{"nkstar:5,3", "S(5,3)", 60},
		{"pancake:4", "P4", 24},
		{"arr:5,2", "A(5,2)", 20},
		{"ARR:5,2", "A(5,2)", 20}, // case-insensitive family
	}
	for _, c := range cases {
		nw, err := Parse(c.spec)
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		if nw.Name() != c.name {
			t.Errorf("%s: name %q, want %q", c.spec, nw.Name(), c.name)
		}
		if nw.Graph().N() != c.n {
			t.Errorf("%s: N = %d, want %d", c.spec, nw.Graph().N(), c.n)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"",           // no colon
		"q",          // no args
		"q:",         // empty arg
		"q:abc",      // non-numeric
		"q:5,5",      // wrong arity
		"bogus:5",    // unknown family
		"tq:4",       // twisted cube needs odd n (constructor panic → error)
		"sq:8",       // shuffle needs n ≡ 2 mod 4
		"nkstar:5,9", // k out of range
		"kary:2,3",   // k ≥ 3 required
		"arr:5",      // missing k
		"q:1",        // dimension too small
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("spec %q: expected error", spec)
		} else if strings.Contains(err.Error(), "panic") {
			t.Errorf("spec %q: raw panic leaked: %v", spec, err)
		}
	}
}
