package topology

import (
	"fmt"

	"comparisondiag/internal/graph"
)

// KAryNCube is the k-ary n-cube Q^k_n: nodes are n-digit base-k strings,
// with edges joining strings differing by ±1 (mod k) in one digit.
// Degree 2n for k ≥ 3, connectivity 2n [5], diagnosability 2n except for
// the small cases listed in [6] (the paper excludes (k,n) ∈ {(3,2),
// (3,3), (3,4), (4,2), (4,3), (5,2)}).
type KAryNCube struct {
	k, n int
	g    *graph.Graph
}

// NewKAryNCube constructs Q^k_n for k ≥ 3, n ≥ 1.
func NewKAryNCube(k, n int) *KAryNCube {
	if k < 3 || n < 1 {
		panic("topology: k-ary n-cube needs k ≥ 3, n ≥ 1")
	}
	N := pow(k, n)
	g := graph.FromAdjacency(N, func(u int32) []int32 {
		out := make([]int32, 0, 2*n)
		stride := int32(1)
		x := u
		for d := 0; d < n; d++ {
			digit := x % int32(k)
			up := u + stride
			if digit == int32(k-1) {
				up = u - int32(k-1)*stride
			}
			down := u - stride
			if digit == 0 {
				down = u + int32(k-1)*stride
			}
			out = append(out, up, down)
			x /= int32(k)
			stride *= int32(k)
		}
		return out
	})
	return &KAryNCube{k: k, n: n, g: g}
}

// Name implements Network.
func (q *KAryNCube) Name() string { return fmt.Sprintf("Q^%d_%d", q.k, q.n) }

// Arity returns k; Dim returns n.
func (q *KAryNCube) Arity() int { return q.k }

// Dim returns n.
func (q *KAryNCube) Dim() int { return q.n }

// Graph implements Network.
func (q *KAryNCube) Graph() *graph.Graph { return q.g }

// Connectivity implements Network: κ(Q^k_n) = 2n [5].
func (q *KAryNCube) Connectivity() int { return 2 * q.n }

// Diagnosability implements Network: δ(Q^k_n) = 2n outside the small
// exceptions of [6].
func (q *KAryNCube) Diagnosability() int { return 2 * q.n }

// CayleyStructure implements CayleyStructured: Q^k_n is the Cayley
// graph of Z_k^n with the ±1-per-digit generators. (The augmented
// variant declares the general mixed-radix descriptor instead: its run
// edges wrap each digit independently, which no fixed id delta — and
// hence no AdditiveCayley — expresses.)
func (q *KAryNCube) CayleyStructure() graph.CayleyDescriptor {
	return graph.AdditiveCayley{K: q.k, Dims: q.n}
}

// Parts implements Network: fixing the high n-m digits yields k^{n-m}
// copies of Q^k_m as contiguous ranges (min induced degree 2m ≥ 2).
func (q *KAryNCube) Parts(minSize, minCount int) ([]Part, error) {
	return karyParts(q.g, q.k, q.n, minSize, minCount)
}

func karyParts(g *graph.Graph, k, n, minSize, minCount int) ([]Part, error) {
	var levels []granularity
	for m := 1; m < n; m++ {
		size := pow(k, m)
		count := pow(k, n-m)
		levels = append(levels, granularity{size, count, func() []Part {
			return rangeParts(pow(k, n), size)
		}})
	}
	return chooseParts(g, levels, minSize, minCount)
}

// AugmentedKAryNCube is AQ_{n,k} of Xiang and Stewart [25]: Q^k_n plus
// "run" edges u ~ u ± (1,…,1,0,…,0) over the i low digits for each
// i = 2..n. Degree 4n-2, connectivity 4n-2 [25], diagnosability 4n-2 for
// (n,k) ≠ (2,3) [6].
//
// (As with the augmented cube we place the incremented run at the low
// digits so high-digit partitions induce the recursive sub-copies.)
type AugmentedKAryNCube struct {
	k, n int
	g    *graph.Graph
}

// NewAugmentedKAryNCube constructs AQ_{n,k} for k ≥ 3, n ≥ 2. Note [6]
// does not certify δ = 4n-2 for (n,k) = (2,3).
func NewAugmentedKAryNCube(k, n int) *AugmentedKAryNCube {
	if k < 3 || n < 2 {
		panic("topology: augmented k-ary n-cube needs k ≥ 3, n ≥ 2")
	}
	N := pow(k, n)
	// runDelta[i] = id-space delta of +(1,…,1 over i low digits).
	g := graph.FromAdjacency(N, func(u int32) []int32 {
		out := make([]int32, 0, 4*n-2)
		digits := make([]int32, n)
		x := u
		for d := 0; d < n; d++ {
			digits[d] = x % int32(k)
			x /= int32(k)
		}
		// ±1 per digit (torus edges).
		stride := int32(1)
		for d := 0; d < n; d++ {
			up := u + stride
			if digits[d] == int32(k-1) {
				up = u - int32(k-1)*stride
			}
			down := u - stride
			if digits[d] == 0 {
				down = u + int32(k-1)*stride
			}
			out = append(out, up, down)
			stride *= int32(k)
		}
		// ± runs of length i over the low digits.
		for i := 2; i <= n; i++ {
			up, down := u, u
			stride = 1
			for d := 0; d < i; d++ {
				if digits[d] == int32(k-1) {
					up -= int32(k-1) * stride
				} else {
					up += stride
				}
				if digits[d] == 0 {
					down += int32(k-1) * stride
				} else {
					down -= stride
				}
				stride *= int32(k)
			}
			out = append(out, up, down)
		}
		return out
	})
	return &AugmentedKAryNCube{k: k, n: n, g: g}
}

// Name implements Network.
func (a *AugmentedKAryNCube) Name() string { return fmt.Sprintf("AQ(%d,%d)", a.n, a.k) }

// Arity returns k; Dim returns n.
func (a *AugmentedKAryNCube) Arity() int { return a.k }

// Dim returns n.
func (a *AugmentedKAryNCube) Dim() int { return a.n }

// Graph implements Network.
func (a *AugmentedKAryNCube) Graph() *graph.Graph { return a.g }

// Connectivity implements Network: κ(AQ_{n,k}) = 4n-2 [25].
func (a *AugmentedKAryNCube) Connectivity() int { return 4*a.n - 2 }

// Diagnosability implements Network: δ(AQ_{n,k}) = 4n-2 for
// (n,k) ≠ (2,3) [6].
func (a *AugmentedKAryNCube) Diagnosability() int { return 4*a.n - 2 }

// Parts implements Network. Run edges over i ≤ m low digits stay inside
// a high-digit part, so each part induces AQ_{m,k} (or the torus cycle
// C_k when m = 1, still connected with degree 2).
func (a *AugmentedKAryNCube) Parts(minSize, minCount int) ([]Part, error) {
	return karyParts(a.g, a.k, a.n, minSize, minCount)
}

// CayleyStructure implements CayleyStructured: AQ_{n,k} is the Cayley
// graph of Z_k^n whose generators are the ±1 unit vectors (the torus
// edges) plus the ± run vectors (1,…,1,0,…,0) over the i low digits for
// i = 2..n. The run additions wrap every digit independently, so their
// id-space deltas are node-dependent and only the mixed-radix
// descriptor (with its per-borrow-pattern step compilation in the
// engine) expresses them.
func (a *AugmentedKAryNCube) CayleyStructure() graph.CayleyDescriptor {
	radices := make([]int, a.n)
	for d := range radices {
		radices[d] = a.k
	}
	var gens [][]int
	unit := func(d, q int) []int {
		g := make([]int, a.n)
		g[d] = q
		return g
	}
	for d := 0; d < a.n; d++ {
		gens = append(gens, unit(d, 1), unit(d, a.k-1))
	}
	for i := 2; i <= a.n; i++ {
		up := make([]int, a.n)
		down := make([]int, a.n)
		for d := 0; d < i; d++ {
			up[d] = 1
			down[d] = a.k - 1
		}
		gens = append(gens, up, down)
	}
	return graph.MixedRadixCayley{Radices: radices, Gens: gens}
}
