package topology

import (
	"testing"
)

// small instances whose structural claims we verify exactly.
func smallInstances() []Network {
	return []Network{
		NewHypercube(3),
		NewHypercube(4),
		NewHypercube(5),
		NewCrossedCube(4),
		NewCrossedCube(5),
		NewTwistedCube(3),
		NewTwistedCube(5),
		NewFoldedHypercube(4),
		NewEnhancedHypercube(5, 3),
		NewAugmentedCube(3),
		NewAugmentedCube(4),
		NewShuffleCube(6),
		NewTwistedNCube(4),
		NewKAryNCube(3, 2),
		NewKAryNCube(3, 3),
		NewKAryNCube(4, 2),
		NewAugmentedKAryNCube(4, 2),
		NewStar(4),
		NewStar(5),
		NewNKStar(5, 2),
		NewNKStar(5, 3),
		NewPancake(4),
		NewPancake(5),
		NewArrangement(5, 2),
		NewArrangement(5, 3),
	}
}

func expectedDegree(nw Network) int {
	switch v := nw.(type) {
	case *Hypercube:
		return v.Dim()
	case *CrossedCube:
		return v.Dim()
	case *TwistedCube:
		return v.Dim()
	case *FoldedHypercube:
		return v.Dim() + 1
	case *EnhancedHypercube:
		return v.Dim() + 1
	case *AugmentedCube:
		return 2*v.Dim() - 1
	case *ShuffleCube:
		return v.Dim()
	case *TwistedNCube:
		return v.Dim()
	case *KAryNCube:
		return 2 * v.Dim()
	case *AugmentedKAryNCube:
		return 4*v.Dim() - 2
	case *Star:
		return v.Dim() - 1
	case *NKStar:
		return v.Dim() - 1
	case *Pancake:
		return v.Dim() - 1
	case *Arrangement:
		return v.Positions() * (v.Dim() - v.Positions())
	}
	return -1
}

func TestStructureOfAllFamilies(t *testing.T) {
	for _, nw := range smallInstances() {
		nw := nw
		t.Run(nw.Name(), func(t *testing.T) {
			g := nw.Graph()
			if err := g.Validate(); err != nil {
				t.Fatalf("invalid graph: %v", err)
			}
			if d := expectedDegree(nw); !g.IsRegular(d) {
				t.Fatalf("not %d-regular (min %d, max %d)", d, g.MinDegree(), g.MaxDegree())
			}
			if !g.Connected() {
				t.Fatal("not connected")
			}
		})
	}
}

// TestConnectivityClaims verifies the κ used by the diagnosis theory via
// exact max-flow computation. This is the check that keeps the
// substituted constructions (twisted, shuffle) honest.
func TestConnectivityClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("connectivity verification is slow")
	}
	for _, nw := range smallInstances() {
		nw := nw
		t.Run(nw.Name(), func(t *testing.T) {
			t.Parallel()
			got := nw.Graph().VertexConnectivity()
			if got != nw.Connectivity() {
				t.Fatalf("computed κ = %d, claimed %d", got, nw.Connectivity())
			}
		})
	}
}

// TestKappaAtLeastDelta checks the central precondition of Theorem 1 for
// every instance: κ ≥ δ as claimed.
func TestKappaAtLeastDelta(t *testing.T) {
	for _, nw := range smallInstances() {
		if nw.Connectivity() < nw.Diagnosability() {
			t.Errorf("%s: claimed κ=%d < δ=%d", nw.Name(), nw.Connectivity(), nw.Diagnosability())
		}
	}
}

// partitionInstances are instances large enough for the δ+1 partition to
// exist; paired with the expectation of success or failure.
func TestPartitionPrecondition(t *testing.T) {
	feasible := []Network{
		NewHypercube(7),
		NewHypercube(8), // natural fit at m=4: 16 parts of 16 nodes
		NewHypercube(10),
		NewCrossedCube(7),
		NewTwistedCube(7),
		NewFoldedHypercube(7),      // padded
		NewEnhancedHypercube(7, 4), // padded
		NewAugmentedCube(8),        // smallest AQ_n with N ≥ (δ+1)²
		NewAugmentedCube(9),        // padded
		NewShuffleCube(6),          // merged copies
		NewShuffleCube(10),
		NewTwistedNCube(7),
		NewKAryNCube(3, 4),
		NewKAryNCube(4, 3),          // padded
		NewKAryNCube(5, 3),          // padded
		NewAugmentedKAryNCube(7, 2), // 7 parts of 7 nodes exactly
		NewStar(5),
		NewStar(6),
		NewNKStar(6, 3),
		NewNKStar(7, 4),
		NewPancake(5),
		NewPancake(6),
		NewArrangement(6, 4),
		NewArrangement(7, 3), // padded
		NewArrangement(7, 4),
	}
	for _, nw := range feasible {
		nw := nw
		t.Run(nw.Name(), func(t *testing.T) {
			d := nw.Diagnosability()
			parts, err := nw.Parts(d+1, d+1)
			if err != nil {
				t.Fatalf("no partition: %v", err)
			}
			if err := ValidatePartition(nw.Graph(), parts, d+1, d+1); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPartitionInfeasibleCases documents gap G3: families whose size
// cannot meet the Theorem 1 precondition must say so, not mislead.
func TestPartitionInfeasibleCases(t *testing.T) {
	cases := []Network{
		NewNKStar(6, 2),             // N = 30 < (δ+1)² = 36
		NewArrangement(7, 2),        // N = 42 < (δ+1)² = 121
		NewHypercube(3),             // too few subcubes of size > δ
		NewAugmentedCube(7),         // N = 128 < (δ+1)² = 196
		NewAugmentedKAryNCube(5, 2), // N = 25 < (δ+1)² = 49
	}
	for _, nw := range cases {
		d := nw.Diagnosability()
		if _, err := nw.Parts(d+1, d+1); err == nil {
			t.Errorf("%s: expected ErrNoPartition", nw.Name())
		}
	}
}

func TestPartitionCoversAllNodes(t *testing.T) {
	for _, nw := range []Network{NewHypercube(7), NewStar(6), NewKAryNCube(3, 4), NewShuffleCube(6)} {
		d := nw.Diagnosability()
		parts, err := nw.Parts(d+1, d+1)
		if err != nil {
			t.Fatalf("%s: %v", nw.Name(), err)
		}
		total := 0
		for _, p := range parts {
			total += len(p.Nodes)
		}
		if total != nw.Graph().N() {
			t.Errorf("%s: partition covers %d of %d nodes", nw.Name(), total, nw.Graph().N())
		}
	}
}

func TestHypercubeNeighbors(t *testing.T) {
	q := NewHypercube(4)
	nb := q.Graph().Neighbors(0)
	want := []int32{1, 2, 4, 8}
	if len(nb) != 4 {
		t.Fatalf("deg(0) = %d", len(nb))
	}
	for i, v := range want {
		if nb[i] != v {
			t.Fatalf("neighbours of 0: %v, want %v", nb, want)
		}
	}
}

func TestCrossedCubeDiffersFromHypercube(t *testing.T) {
	q := NewHypercube(4).Graph()
	c := NewCrossedCube(4).Graph()
	same := true
	for u := int32(0); int(u) < q.N() && same; u++ {
		qa, ca := q.Neighbors(u), c.Neighbors(u)
		for i := range qa {
			if qa[i] != ca[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("CQ4 identical to Q4: crossing rule is a no-op")
	}
	// The crossed cube has smaller diameter than the hypercube: for
	// CQ4 the eccentricity of 0 should be < 4.
	if e := c.Eccentricity(0); e >= 4 {
		t.Fatalf("CQ4 eccentricity %d, want < 4", e)
	}
}

func TestTwistedFamiliesDifferFromHypercube(t *testing.T) {
	q := NewHypercube(4).Graph()
	tn := NewTwistedNCube(4).Graph()
	if tn.HasEdge(0, 1) {
		t.Fatal("TQ'4 should have removed the edge {0,1}")
	}
	if !tn.HasEdge(0, 3) || !tn.HasEdge(1, 2) {
		t.Fatal("TQ'4 missing diagonal twist edges")
	}
	if !q.HasEdge(0, 1) {
		t.Fatal("sanity: Q4 has edge {0,1}")
	}
	tw := NewTwistedCube(5).Graph()
	diff := false
	for u := int32(0); int(u) < tw.N(); u++ {
		for _, v := range tw.Neighbors(u) {
			if !NewHypercube(5).Graph().HasEdge(u, v) {
				diff = true
				break
			}
		}
		if diff {
			break
		}
	}
	if !diff {
		t.Fatal("TQ5 is a subgraph of Q5: no twist present")
	}
}

func TestFoldedHypercubeComplementEdges(t *testing.T) {
	f := NewFoldedHypercube(4).Graph()
	if !f.HasEdge(0, 15) || !f.HasEdge(5, 10) {
		t.Fatal("complement edges missing")
	}
}

func TestEnhancedHypercubeIsFoldedWhenFEqualsN(t *testing.T) {
	e := NewEnhancedHypercube(4, 4).Graph()
	f := NewFoldedHypercube(4).Graph()
	for u := int32(0); int(u) < e.N(); u++ {
		ea, fa := e.Neighbors(u), f.Neighbors(u)
		if len(ea) != len(fa) {
			t.Fatalf("degree mismatch at %d", u)
		}
		for i := range ea {
			if ea[i] != fa[i] {
				t.Fatalf("Q(4,4) and FQ4 differ at node %d", u)
			}
		}
	}
}

func TestAugmentedCubeStructure(t *testing.T) {
	a := NewAugmentedCube(3).Graph()
	// AQ3: node 0 has hypercube neighbours 1,2,4 and suffix complements
	// 3 (low 2 bits) and 7 (low 3 bits).
	for _, v := range []int32{1, 2, 3, 4, 7} {
		if !a.HasEdge(0, v) {
			t.Fatalf("AQ3 missing edge 0-%d", v)
		}
	}
	if a.Degree(0) != 5 {
		t.Fatalf("deg = %d, want 5", a.Degree(0))
	}
}

func TestKAryNCubeTorusStructure(t *testing.T) {
	q := NewKAryNCube(4, 2).Graph() // 4x4 torus
	if q.N() != 16 {
		t.Fatalf("N = %d", q.N())
	}
	// Node 0 = (0,0): neighbours (±1, 0), (0, ±1) = ids 1, 3, 4, 12.
	for _, v := range []int32{1, 3, 4, 12} {
		if !q.HasEdge(0, v) {
			t.Fatalf("torus missing edge 0-%d", v)
		}
	}
	if !q.IsRegular(4) {
		t.Fatal("4-ary 2-cube must be 4-regular")
	}
}

func TestStarS3IsSixCycle(t *testing.T) {
	s := NewStar(3).Graph()
	if s.N() != 6 || !s.IsRegular(2) || !s.Connected() {
		t.Fatal("S3 must be a 6-cycle")
	}
}

func TestPancakeP3IsSixCycle(t *testing.T) {
	p := NewPancake(3).Graph()
	if p.N() != 6 || !p.IsRegular(2) || !p.Connected() {
		t.Fatal("P3 must be a 6-cycle")
	}
}

func TestNKStarMatchesStarWhenKIsNMinus1(t *testing.T) {
	// S(n, n-1) is isomorphic to S_n; check sizes and regularity (a
	// full isomorphism check is overkill here).
	nk := NewNKStar(5, 4).Graph()
	st := NewStar(5).Graph()
	if nk.N() != st.N() || nk.M() != st.M() {
		t.Fatalf("S(5,4) has N=%d M=%d; S5 has N=%d M=%d", nk.N(), nk.M(), st.N(), st.M())
	}
}

func TestArrangementA_n1_IsComplete(t *testing.T) {
	a := NewArrangement(5, 1).Graph()
	if a.N() != 5 || !a.IsRegular(4) {
		t.Fatal("A(5,1) must be K5")
	}
}

func TestPermCodecRoundTrip(t *testing.T) {
	for _, nk := range [][2]int{{5, 5}, {6, 3}, {7, 4}, {4, 1}, {8, 2}} {
		c := newPermCodec(nk[0], nk[1])
		p := make([]int8, nk[1])
		seen := map[int32]bool{}
		for id := int32(0); int(id) < c.Count(); id++ {
			c.Unrank(id, p)
			// Injectivity of the tuple.
			var mask uint32
			for _, s := range p {
				if s < 0 || int(s) >= nk[0] {
					t.Fatalf("(%d,%d): symbol %d out of range", nk[0], nk[1], s)
				}
				if mask&(1<<uint(s)) != 0 {
					t.Fatalf("(%d,%d): duplicate symbol in tuple %v", nk[0], nk[1], p)
				}
				mask |= 1 << uint(s)
			}
			r := c.Rank(p)
			if r != id {
				t.Fatalf("(%d,%d): rank(unrank(%d)) = %d", nk[0], nk[1], id, r)
			}
			if seen[r] {
				t.Fatalf("duplicate rank %d", r)
			}
			seen[r] = true
		}
	}
}

func TestPermCodecLexOrder(t *testing.T) {
	c := newPermCodec(3, 3)
	want := [][]int8{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	p := make([]int8, 3)
	for id, w := range want {
		c.Unrank(int32(id), p)
		for i := range w {
			if p[i] != w[i] {
				t.Fatalf("unrank(%d) = %v, want %v", id, p, w)
			}
		}
	}
}

func TestShuffleCubeRecursiveStructure(t *testing.T) {
	s := NewShuffleCube(6).Graph()
	if s.N() != 64 || !s.IsRegular(6) {
		t.Fatalf("SQ6 wrong shape: N=%d", s.N())
	}
	// The low-id copy {0..3} must induce a 4-cycle (SQ2 = Q2).
	for _, e := range [][2]int32{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if !s.HasEdge(e[0], e[1]) {
			t.Fatalf("SQ6 missing SQ2-core edge %v", e)
		}
	}
	if s.HasEdge(0, 3) {
		t.Fatal("SQ2 core must be a 4-cycle, not K4")
	}
}

func TestMergePartsRescuesShuffle6(t *testing.T) {
	s := NewShuffleCube(6)
	d := s.Diagnosability() // 6
	parts, err := s.Parts(d+1, d+1)
	if err != nil {
		t.Fatalf("SQ6 partition failed: %v", err)
	}
	for _, p := range parts {
		if len(p.Nodes) < d+1 {
			t.Fatalf("part with %d nodes < %d", len(p.Nodes), d+1)
		}
	}
	if err := ValidatePartition(s.Graph(), parts, d+1, d+1); err != nil {
		t.Fatal(err)
	}
}
