package topology

import (
	"fmt"
	"math/bits"

	"comparisondiag/internal/graph"
)

// TwistedCube is a twisted cube TQ_n in the spirit of Hilbers, Koopman
// and van de Snepscheut [15], defined for odd n. Dimension 0 is a plain
// hypercube dimension; the remaining dimensions come in pairs (j, j+1)
// for odd j, and the 4-cycle spanned by each pair is wired either
// straight or "twisted" depending on the parity of the bits below j:
//
//	parity 0:  u ~ u⊕2^j,       u ~ u⊕2^{j+1}        (straight face)
//	parity 1:  u ~ u⊕2^j⊕2^{j+1}, u ~ u⊕2^{j+1}      (twisted face)
//
// Both wirings are 2-regular 4-cycles and involutive, so the graph is
// well-formed and n-regular. The exact cross-edge tables of [15] are not
// reproducible offline; this construction preserves the properties the
// diagnosis theory uses — n-regularity, partition into 4 copies of
// TQ_{n-2} by fixing the two high bits, and connectivity n (verified
// empirically in tests for small n). See DESIGN.md, substitutions.
type TwistedCube struct {
	n int
	g *graph.Graph
}

// NewTwistedCube constructs TQ_n for odd n ≥ 3.
func NewTwistedCube(n int) *TwistedCube {
	if n < 3 || n%2 == 0 {
		panic("topology: twisted cube needs odd n ≥ 3")
	}
	N := 1 << uint(n)
	g := graph.FromAdjacency(N, func(u int32) []int32 {
		out := make([]int32, 0, n)
		out = append(out, u^1) // dimension 0
		for j := 1; j < n; j += 2 {
			below := uint32(u) & ((1 << uint(j)) - 1)
			parity := bits.OnesCount32(below) & 1
			if parity == 0 {
				out = append(out, u^int32(1<<uint(j)), u^int32(1<<uint(j+1)))
			} else {
				out = append(out, u^int32(3<<uint(j)), u^int32(1<<uint(j+1)))
			}
		}
		return out
	})
	return &TwistedCube{n: n, g: g}
}

// Name implements Network.
func (t *TwistedCube) Name() string { return fmt.Sprintf("TQ%d", t.n) }

// Dim returns n.
func (t *TwistedCube) Dim() int { return t.n }

// Graph implements Network.
func (t *TwistedCube) Graph() *graph.Graph { return t.g }

// Connectivity implements Network: κ(TQ_n) = n [7].
func (t *TwistedCube) Connectivity() int { return t.n }

// Diagnosability implements Network: δ(TQ_n) = n for n ≥ 4 [6]; for the
// odd dimensions we construct this means n ≥ 5.
func (t *TwistedCube) Diagnosability() int { return t.n }

// Parts implements Network. Pair levels below m only read bits below m,
// so fixing the high bits in steps of two yields 4^b copies of TQ_{n-2b};
// a final single-bit refinement is impossible (pairs are atomic), so
// part dimensions are n-2b with b ≥ 1... the search below simply walks
// the odd dimensions m = n-2, n-4, …, 3.
func (t *TwistedCube) Parts(minSize, minCount int) ([]Part, error) {
	var levels []granularity
	for m := 3; m <= t.n-2; m += 2 {
		size := 1 << uint(m)
		count := 1 << uint(t.n-m)
		levels = append(levels, granularity{size, count, func() []Part {
			return rangeParts(1<<uint(t.n), size)
		}})
	}
	return chooseParts(t.g, levels, minSize, minCount)
}
