package topology

import (
	"math/bits"
	"testing"
	"testing/quick"
)

// TestHypercubeDistanceIsHamming pins the defining metric property: BFS
// distance in Q_n equals Hamming distance.
func TestHypercubeDistanceIsHamming(t *testing.T) {
	q := NewHypercube(8)
	g := q.Graph()
	dist := g.BFSFrom(0, nil)
	for u := 0; u < g.N(); u++ {
		if int(dist[u]) != bits.OnesCount32(uint32(u)) {
			t.Fatalf("dist(0,%d) = %d, want %d", u, dist[u], bits.OnesCount32(uint32(u)))
		}
	}
}

func TestHypercubeDiameter(t *testing.T) {
	for n := 3; n <= 7; n++ {
		if e := NewHypercube(n).Graph().Eccentricity(0); e != n {
			t.Fatalf("diameter(Q%d) = %d, want %d", n, e, n)
		}
	}
}

// TestHypercubeBipartite: Q_n is bipartite (no odd cycles), checked via
// 2-colouring by parity.
func TestHypercubeBipartite(t *testing.T) {
	g := NewHypercube(6).Graph()
	for u := int32(0); int(u) < g.N(); u++ {
		pu := bits.OnesCount32(uint32(u)) & 1
		for _, v := range g.Neighbors(u) {
			if bits.OnesCount32(uint32(v))&1 == pu {
				t.Fatalf("edge %d-%d within a parity class", u, v)
			}
		}
	}
}

// TestHypercubeSubcubeRanges: each Parts range must induce Q_m exactly.
func TestHypercubeSubcubeRanges(t *testing.T) {
	q := NewHypercube(8)
	parts, err := q.Parts(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	ref := NewHypercube(4).Graph()
	g := q.Graph()
	for _, p := range parts[:3] {
		base := p.Nodes[0]
		for i := int32(0); i < 16; i++ {
			for j := i + 1; j < 16; j++ {
				want := ref.HasEdge(i, j)
				got := g.HasEdge(base+i, base+j)
				if want != got {
					t.Fatalf("part at %d: edge (%d,%d) mismatch", base, i, j)
				}
			}
		}
	}
}

// Property: the edge relation is symmetric and flips exactly one bit.
func TestQuickHypercubeEdgeShape(t *testing.T) {
	g := NewHypercube(10).Graph()
	f := func(raw uint16) bool {
		u := int32(raw) & 1023
		for _, v := range g.Neighbors(u) {
			if bits.OnesCount32(uint32(u^v)) != 1 {
				return false
			}
			if !g.HasEdge(v, u) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
