package topology

import (
	"comparisondiag/internal/bitset"
	"comparisondiag/internal/graph"
)

// SurviveParts maps a Theorem 1 partition through a graph removal onto
// the compacted surviving component g2. Parts untouched by the churn —
// every node survives into the component and no removed edge ran inside
// the part — are remapped wholesale: their connectivity and induced
// degrees are preserved by construction, so no re-check is needed.
// Touched parts are trimmed to their surviving nodes and re-validated
// (connected in g2, induced minimum degree ≥ 2, at least two nodes);
// parts that pass are kept as "repaired", the rest are dropped. The
// caller applies its own minimum-size filter afterwards (the effective
// fault bound is not known until the surviving part census exists).
//
// oldToNew is the removal's id map (-1 = gone); goneEdges lists the
// explicitly removed edges in old ids. flat, when non-nil, supplies the
// backing array for the surviving parts' node slices (grown as needed
// and returned), so a rebinding engine reuses one allocation across
// churn events. Part order is preserved; remapped node slices stay
// ascending because the compaction assigns new ids in increasing old-id
// order. Seeds follow their part when they survive and fall back to the
// part's smallest surviving node otherwise.
func SurviveParts(g2 *graph.Graph, parts []Part, oldToNew []int32, goneEdges [][2]int32, flat []int32) (out []Part, outFlat []int32, kept, repaired, dropped int) {
	// Mark which parts the churn touched. Node churn: any part member
	// with no new id. Edge churn: any removed edge with both endpoints
	// in the same part (partOf covers exactly the partitioned nodes —
	// padded partitions need not cover V).
	touched := make([]bool, len(parts))
	var partOf []int32
	if len(goneEdges) > 0 {
		partOf = make([]int32, len(oldToNew))
		for i := range partOf {
			partOf[i] = -1
		}
		for pi, p := range parts {
			for _, u := range p.Nodes {
				partOf[u] = int32(pi)
			}
		}
		for _, e := range goneEdges {
			if pu := partOf[e[0]]; pu >= 0 && pu == partOf[e[1]] {
				touched[pu] = true
			}
		}
	}
	for pi, p := range parts {
		if touched[pi] {
			continue
		}
		for _, u := range p.Nodes {
			if oldToNew[u] < 0 {
				touched[pi] = true
				break
			}
		}
	}

	// One backing array for every surviving part (the allocation-profile
	// concern of rangeParts): pre-size it so mid-loop growth can never
	// split the parts across two arrays.
	total := 0
	for _, p := range parts {
		total += len(p.Nodes)
	}
	if cap(flat) < total {
		flat = make([]int32, 0, total)
	}
	flat = flat[:0]
	var mask *bitset.Set
	for pi, p := range parts {
		lo := len(flat)
		for _, u := range p.Nodes {
			if nu := oldToNew[u]; nu >= 0 {
				flat = append(flat, nu)
			}
		}
		nodes := flat[lo:len(flat):len(flat)]
		if !touched[pi] {
			out = append(out, Part{Nodes: nodes, Seed: oldToNew[p.Seed]})
			kept++
			continue
		}
		if len(nodes) < 2 {
			flat = flat[:lo]
			dropped++
			continue
		}
		if mask == nil {
			mask = bitset.New(g2.N())
		}
		if !validPartOn(g2, nodes, mask) {
			flat = flat[:lo]
			dropped++
			continue
		}
		seed := oldToNew[p.Seed]
		if seed < 0 {
			seed = nodes[0]
		}
		out = append(out, Part{Nodes: nodes, Seed: seed})
		repaired++
	}
	return out, flat, kept, repaired, dropped
}

// validPartOn is the Theorem 1 per-part re-validation shared by
// SurviveParts and RegrowParts: the candidate node set (in g2 ids) must
// be connected in g2 with induced minimum degree ≥ 2. mask is caller-
// supplied scratch over g2's nodes, handed back clear.
func validPartOn(g2 *graph.Graph, nodes []int32, mask *bitset.Set) bool {
	ok := true
	for _, u := range nodes {
		mask.Add(int(u))
	}
	if !g2.ConnectedWithin(mask) {
		ok = false
	}
	if ok {
	degrees:
		for _, u := range nodes {
			deg := 0
			for _, v := range g2.Neighbors(u) {
				if mask.Contains(int(v)) {
					deg++
					if deg >= 2 {
						continue degrees
					}
				}
			}
			ok = false
			break
		}
	}
	for _, u := range nodes {
		mask.Remove(int(u))
	}
	return ok
}
