package topology

import (
	"math/bits"
	"testing"
)

// TestShuffleTablesWellFormed: every suffix class has four distinct
// non-zero prefix deltas — the contract that makes the construction
// n-regular and symmetric.
func TestShuffleTablesWellFormed(t *testing.T) {
	union := map[int32]bool{}
	for s, row := range shuffleTables {
		seen := map[int32]bool{}
		for _, d := range row {
			if d == 0 || d > 0xF {
				t.Fatalf("suffix %d: delta %#x out of range", s, d)
			}
			if seen[d] {
				t.Fatalf("suffix %d: duplicate delta %#x", s, d)
			}
			seen[d] = true
			union[d] = true
		}
	}
	// The union must generate the 4-bit prefix group so the 16-copy
	// quotient is connected; containing all four single-bit deltas is
	// sufficient.
	for _, b := range []int32{1, 2, 4, 8} {
		if !union[b] {
			t.Fatalf("union of tables misses generator %#x", b)
		}
	}
}

// TestShuffleCrossEdgesPreserveSuffix: cross edges never change the
// global 2-bit suffix, so both endpoints use the same table row.
func TestShuffleCrossEdgesPreserveSuffix(t *testing.T) {
	g := NewShuffleCube(6).Graph()
	for u := int32(0); int(u) < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if x := u ^ v; x&^3 != 0 && u&3 != v&3 {
				t.Fatalf("cross edge %d-%d changed the suffix", u, v)
			}
		}
	}
}

// TestShuffleRecursion: the low 16 copies of SQ_10 each induce SQ_6.
func TestShuffleRecursion(t *testing.T) {
	big := NewShuffleCube(10).Graph()
	small := NewShuffleCube(6).Graph()
	copySize := int32(64)
	for c := int32(0); c < 16; c += 5 { // sample copies 0, 5, 10, 15
		base := c * copySize
		for u := int32(0); u < copySize; u++ {
			for v := u + 1; v < copySize; v++ {
				if small.HasEdge(u, v) != big.HasEdge(base+u, base+v) {
					t.Fatalf("copy %d disagrees with SQ6 at (%d,%d)", c, u, v)
				}
			}
		}
	}
}

// TestShuffleCrossEdgeCountPerNode: each node has exactly 4 cross edges
// per recursion level.
func TestShuffleCrossEdgeCountPerNode(t *testing.T) {
	g := NewShuffleCube(10).Graph()
	for _, u := range []int32{0, 63, 511, 1023} {
		perLevel := map[int]int{}
		for _, v := range g.Neighbors(u) {
			x := uint32(u ^ v)
			if x <= 3 {
				continue // SQ2 core
			}
			level := (bits.TrailingZeros32(x) - 2) / 4
			perLevel[level]++
		}
		for level, cnt := range perLevel {
			if cnt != 4 {
				t.Fatalf("node %d: %d cross edges at level %d, want 4", u, cnt, level)
			}
		}
		if len(perLevel) != 2 { // SQ10 has levels at bits 2..5 and 6..9
			t.Fatalf("node %d: %d levels, want 2", u, len(perLevel))
		}
	}
}

// TestTwistedCubeFaceWiring pins the two wirings of the pair-dimension
// faces: straight 4-cycles on even parity, twisted on odd.
func TestTwistedCubeFaceWiring(t *testing.T) {
	g := NewTwistedCube(3).Graph()
	// Pair level j=1 uses bits 1,2; parity = bit 0.
	// Even parity (u=0): straight face — neighbours 0^2=2 and 0^4=4.
	for _, want := range []int32{2, 4} {
		if !g.HasEdge(0, want) {
			t.Fatalf("even face: missing edge 0-%d", want)
		}
	}
	if g.HasEdge(0, 6) {
		t.Fatal("even face must not have the diagonal 0-6")
	}
	// Odd parity (u=1): twisted face — neighbours 1^6=7 and 1^4=5.
	for _, want := range []int32{7, 5} {
		if !g.HasEdge(1, want) {
			t.Fatalf("odd face: missing edge 1-%d", want)
		}
	}
	if g.HasEdge(1, 3) {
		t.Fatal("odd face must not have the straight edge 1-3")
	}
}

// TestTwistedCubeRecursion: the four quarters of TQ_7 induce TQ_5.
func TestTwistedCubeRecursion(t *testing.T) {
	big := NewTwistedCube(7).Graph()
	small := NewTwistedCube(5).Graph()
	quarter := int32(32)
	for c := int32(0); c < 4; c++ {
		base := c * quarter
		for u := int32(0); u < quarter; u++ {
			for v := u + 1; v < quarter; v++ {
				if small.HasEdge(u, v) != big.HasEdge(base+u, base+v) {
					t.Fatalf("quarter %d disagrees with TQ5 at (%d,%d)", c, u, v)
				}
			}
		}
	}
}

// TestTwistedCubeRejectsEvenDim documents the odd-n contract of [15].
func TestTwistedCubeRejectsEvenDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TQ4 accepted")
		}
	}()
	NewTwistedCube(4)
}
