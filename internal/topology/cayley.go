package topology

import "comparisondiag/internal/graph"

// CayleyStructured is the optional Network extension through which a
// family declares the algebraic structure it was constructed from:
// XOR generator sets for the binary-cube variants, additive ±1-per-digit
// generators for k-ary tori (see graph.CayleyDescriptor). Engines use
// the declaration to bind a word-parallel final-pass kernel — but only
// after graph.VerifyCayley confirms it against the CSR adjacency, so a
// buggy declaration degrades to the generic kernel instead of
// corrupting results.
//
// Families whose edge rules are node-dependent — crossed cubes
// (pair-relations), twisted cubes and twisted N-cubes (a rewired face),
// shuffle cubes (suffix-selected tables), the permutation families —
// have no uniform generator set and correctly do not implement this
// interface; augmented k-ary n-cubes don't either, because their run
// edges wrap each digit independently and are not a fixed id delta.
type CayleyStructured interface {
	Network
	// CayleyStructure returns the instance's descriptor, or nil when
	// this particular instance declares none.
	CayleyStructure() graph.CayleyDescriptor
}

// xorBasis returns the single-bit masks {2^0 … 2^(n-1)} that every
// binary-cube variant's declaration starts from.
func xorBasis(n int) []int32 {
	masks := make([]int32, n)
	for b := range masks {
		masks[b] = 1 << uint(b)
	}
	return masks
}
