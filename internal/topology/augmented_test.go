package topology

import (
	"math/bits"
	"testing"
)

// TestAugmentedCubeDiameter: AQ_n has diameter ⌈n/2⌉ [10] (our variant
// places the complemented runs at the low bits — a bit-reversal
// isomorphism, so the metric is unchanged).
func TestAugmentedCubeDiameter(t *testing.T) {
	for n := 2; n <= 8; n++ {
		g := NewAugmentedCube(n).Graph()
		want := (n + 1) / 2
		if e := g.Eccentricity(0); e != want {
			t.Fatalf("diameter(AQ%d) = %d, want %d", n, e, want)
		}
	}
}

// TestAugmentedCubeEdgeShape: edges flip one bit or a low run of ≥ 2
// bits.
func TestAugmentedCubeEdgeShape(t *testing.T) {
	n := 6
	g := NewAugmentedCube(n).Graph()
	for u := int32(0); int(u) < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			x := uint32(u ^ v)
			single := bits.OnesCount32(x) == 1
			run := x > 1 && x&(x+1) == 0 // 2^{i+1}-1 shapes
			if !single && !run {
				t.Fatalf("edge %d-%d flips %06b", u, v, x)
			}
		}
	}
}

// TestAugmentedCubePrefixRecursion: fixing the top bit induces AQ_{n-1}.
func TestAugmentedCubePrefixRecursion(t *testing.T) {
	big := NewAugmentedCube(5).Graph()
	small := NewAugmentedCube(4).Graph()
	half := int32(16)
	for u := int32(0); u < half; u++ {
		for v := u + 1; v < half; v++ {
			if small.HasEdge(u, v) != big.HasEdge(u, v) ||
				small.HasEdge(u, v) != big.HasEdge(half+u, half+v) {
				t.Fatalf("AQ5 halves disagree with AQ4 at (%d,%d)", u, v)
			}
		}
	}
}

// TestAugmentedCubeConnectivityException pins the n = 3 special case:
// κ(AQ3) = 4 < 2n-1, verified exactly (the library must not claim 5).
func TestAugmentedCubeConnectivityException(t *testing.T) {
	if testing.Short() {
		t.Skip("exact connectivity")
	}
	a := NewAugmentedCube(3)
	if got := a.Graph().VertexConnectivity(); got != 4 {
		t.Fatalf("κ(AQ3) = %d, want 4", got)
	}
	if a.Connectivity() != 4 || a.Diagnosability() != 4 {
		t.Fatal("claimed values must reflect the exception")
	}
}

// TestTwistedNCubeIsLocalSurgery: TQ'_n differs from Q_n on exactly the
// four rewired edges (two removed, two added).
func TestTwistedNCubeIsLocalSurgery(t *testing.T) {
	n := 6
	tq := NewTwistedNCube(n).Graph()
	q := NewHypercube(n).Graph()
	var removed, added [][2]int32
	for u := int32(0); int(u) < q.N(); u++ {
		for _, v := range q.Neighbors(u) {
			if u < v && !tq.HasEdge(u, v) {
				removed = append(removed, [2]int32{u, v})
			}
		}
		for _, v := range tq.Neighbors(u) {
			if u < v && !q.HasEdge(u, v) {
				added = append(added, [2]int32{u, v})
			}
		}
	}
	if len(removed) != 2 || len(added) != 2 {
		t.Fatalf("surgery wrong size: removed %v, added %v", removed, added)
	}
	if removed[0] != [2]int32{0, 1} || removed[1] != [2]int32{2, 3} {
		t.Fatalf("removed %v, want [[0 1] [2 3]]", removed)
	}
	if added[0] != [2]int32{0, 3} || added[1] != [2]int32{1, 2} {
		t.Fatalf("added %v, want [[0 3] [1 2]]", added)
	}
}

// TestTwistedNCubeBreaksBipartiteness: the twist creates odd cycles —
// the structural signature distinguishing TQ'_n from Q_n.
func TestTwistedNCubeBreaksBipartiteness(t *testing.T) {
	g := NewTwistedNCube(5).Graph()
	// 2-colour by BFS; the twist must produce a conflict.
	color := make([]int8, g.N())
	for i := range color {
		color[i] = -1
	}
	color[0] = 0
	queue := []int32{0}
	conflict := false
	for len(queue) > 0 && !conflict {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if color[v] == -1 {
				color[v] = 1 - color[u]
				queue = append(queue, v)
			} else if color[v] == color[u] {
				conflict = true
			}
		}
	}
	if !conflict {
		t.Fatal("TQ'5 is bipartite — twist missing")
	}
}
