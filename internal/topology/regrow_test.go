package topology

import (
	"testing"

	"comparisondiag/internal/graph"
)

// TestRegrowPartsFullRestore flaps one node of Q6 and checks that the
// re-grown partition is element-wise identical to the anchor partition.
func TestRegrowPartsFullRestore(t *testing.T) {
	nw := NewHypercube(6)
	g := nw.Graph()
	delta := nw.Diagnosability()
	anchor, err := nw.Parts(delta+1, delta+1)
	if err != nil {
		t.Fatal(err)
	}
	rr := g.RemoveNodes([]int32{0})
	prev, _, _, _, _ := SurviveParts(rr.G, anchor, rr.OldToNew, rr.GoneEdges, nil)
	gr := graph.Restore(rr, []int32{0}, nil)
	out, _, kept, regrown, readmitted, dropped := RegrowParts(gr.G, anchor, gr.OldToNew, gr.Remaining.GoneEdges, prev, gr.SurvivorToNew, nil)
	if dropped != 0 {
		t.Fatalf("full restore dropped %d parts", dropped)
	}
	if kept+regrown+readmitted != len(anchor) {
		t.Fatalf("census %d/%d/%d does not cover the %d anchor parts", kept, regrown, readmitted, len(anchor))
	}
	if len(out) != len(anchor) {
		t.Fatalf("got %d parts, want %d", len(out), len(anchor))
	}
	for pi := range out {
		if out[pi].Seed != anchor[pi].Seed || len(out[pi].Nodes) != len(anchor[pi].Nodes) {
			t.Fatalf("part %d differs after full restore: %+v vs %+v", pi, out[pi], anchor[pi])
		}
		for i, u := range out[pi].Nodes {
			if u != anchor[pi].Nodes[i] {
				t.Fatalf("part %d node %d = %d, want %d", pi, i, u, anchor[pi].Nodes[i])
			}
		}
	}
}

// TestRegrowPartsPartialRestore removes two nodes from different Q6
// parts and restores one: that part regrows to full membership, the
// other keeps serving its trimmed membership, and untouched parts stay
// kept.
func TestRegrowPartsPartialRestore(t *testing.T) {
	nw := NewHypercube(6)
	g := nw.Graph()
	delta := nw.Diagnosability()
	anchor, err := nw.Parts(delta+1, delta+1)
	if err != nil {
		t.Fatal(err)
	}
	// One node from anchor[0], one from anchor[1].
	a, b := anchor[0].Nodes[1], anchor[1].Nodes[1]
	rr := g.Remove([]int32{a, b}, nil)
	prev, _, _, _, _ := SurviveParts(rr.G, anchor, rr.OldToNew, rr.GoneEdges, nil)
	gr := graph.Restore(rr, []int32{a}, nil)
	out, _, kept, regrown, readmitted, dropped := RegrowParts(gr.G, anchor, gr.OldToNew, gr.Remaining.GoneEdges, prev, gr.SurvivorToNew, nil)
	if readmitted+dropped != len(anchor)-len(prev) {
		t.Fatalf("readmitted=%d dropped=%d, want them to cover the %d missing parts", readmitted, dropped, len(anchor)-len(prev))
	}
	if regrown < 1 {
		t.Fatalf("regrown = %d, want at least the part containing %d", regrown, a)
	}
	if len(out) < len(prev) {
		t.Fatalf("growth lost parts: %d served before, %d after", len(prev), len(out))
	}
	if kept+regrown+readmitted != len(out) {
		t.Fatalf("census %d/%d/%d does not add up to %d parts", kept, regrown, readmitted, len(out))
	}
	if err := ValidatePartition(gr.G, out, 2, len(out)); err != nil {
		t.Fatalf("re-grown parts invalid: %v", err)
	}
	for pi, p := range out {
		for i := 1; i < len(p.Nodes); i++ {
			if p.Nodes[i-1] >= p.Nodes[i] {
				t.Fatalf("part %d not ascending: %v", pi, p.Nodes)
			}
		}
	}
}

// TestRegrowPartsFallbackKeepsServedPart builds a case where the grown
// membership of a part is invalid (the restored node returns with no
// surviving in-part neighbours) while the currently served trim stays
// valid: RegrowParts must fall back to the served membership instead of
// dropping the part.
func TestRegrowPartsFallbackKeepsServedPart(t *testing.T) {
	// Part P0 = {0,1,2,3,8}: the cycle 0-1-2-3-0 with chord 1-3 and
	// node 8 hung on 2 and 0. Part P1 = {5,6,7}: a triangle. Spine
	// edges 0-5, 4-5 and the cross edge 2-6 keep everything connected
	// (2-6 is what lets a restored node 2 rejoin the component even
	// when all its in-part edges are still gone).
	b := graph.NewBuilder(9)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	b.MustAddEdge(2, 3)
	b.MustAddEdge(3, 0)
	b.MustAddEdge(1, 3)
	b.MustAddEdge(2, 8)
	b.MustAddEdge(8, 0)
	b.MustAddEdge(2, 6)
	b.MustAddEdge(5, 6)
	b.MustAddEdge(6, 7)
	b.MustAddEdge(5, 7)
	b.MustAddEdge(0, 5)
	b.MustAddEdge(4, 5)
	g := b.Build()
	anchor := []Part{
		{Nodes: []int32{0, 1, 2, 3, 8}, Seed: 0},
		{Nodes: []int32{5, 6, 7}, Seed: 5},
	}
	if err := ValidatePartition(g, anchor, 2, 2); err != nil {
		t.Fatalf("anchor partition invalid: %v", err)
	}
	// Remove nodes 2 and 8 plus edges 1-2 and 2-3: P0 trims to the
	// valid triangle {0,1,3}.
	rr := g.Remove([]int32{2, 8}, [][2]int32{{1, 2}, {2, 3}})
	prev, _, _, _, _ := SurviveParts(rr.G, anchor, rr.OldToNew, rr.GoneEdges, nil)
	if len(prev) != 2 {
		t.Fatalf("expected both parts to survive the removal, got %d", len(prev))
	}
	// Restore only node 2: it rejoins the component through 2-6, but its
	// in-part edges (1-2, 2-3 still removed; 2-8 endpoint still gone)
	// are all absent, so the grown membership {0,1,2,3} is invalid.
	gr := graph.Restore(rr, []int32{2}, nil)
	out, _, kept, _, _, dropped := RegrowParts(gr.G, anchor, gr.OldToNew, gr.Remaining.GoneEdges, prev, gr.SurvivorToNew, nil)
	if dropped != 0 {
		t.Fatalf("fallback should keep the served part, dropped = %d", dropped)
	}
	if len(out) != 2 {
		t.Fatalf("got %d parts, want 2", len(out))
	}
	if kept != 2 {
		t.Fatalf("kept = %d, want 2 (part 0 via fallback, part 1 wholesale)", kept)
	}
	if err := ValidatePartition(gr.G, out, 2, 2); err != nil {
		t.Fatalf("served parts invalid after fallback: %v", err)
	}
	// The fallback membership is the served trim: node 2 must not be in
	// part 0 (its grown membership was invalid).
	for _, u := range out[0].Nodes {
		if gr.NewToOld[u] == 2 {
			t.Fatalf("invalid grown membership served: node 2 present in %v", out[0].Nodes)
		}
	}
}

// TestRegrowPartsNoPrev drops invalid parts when no served partition is
// supplied.
func TestRegrowPartsNoPrev(t *testing.T) {
	nw := NewHypercube(6)
	g := nw.Graph()
	anchor, err := nw.Parts(7, 7)
	if err != nil {
		t.Fatal(err)
	}
	rr := g.RemoveNodes([]int32{anchor[0].Nodes[0], anchor[0].Nodes[1]})
	gr := graph.Restore(rr, nil, nil) // nothing restored: residual = removal
	out, _, _, _, _, _ := RegrowParts(gr.G, anchor, gr.OldToNew, gr.Remaining.GoneEdges, nil, nil, nil)
	if err := ValidatePartition(gr.G, out, 2, len(out)); err != nil {
		t.Fatalf("parts invalid: %v", err)
	}
}
