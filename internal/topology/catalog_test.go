package topology

import "testing"

// TestCatalogExamplesParse: every catalogued example spec must build,
// and its spec prefix must round-trip through Parse.
func TestCatalogExamplesParse(t *testing.T) {
	if len(Catalog()) != 14 {
		t.Fatalf("catalog lists %d families, the paper has 14", len(Catalog()))
	}
	for _, fam := range Catalog() {
		nw, err := Parse(fam.Example)
		if err != nil {
			t.Errorf("%s: example %q does not parse: %v", fam.Name, fam.Example, err)
			continue
		}
		if nw.Graph().N() == 0 {
			t.Errorf("%s: empty graph", fam.Name)
		}
		if nw.Diagnosability() < 1 || nw.Connectivity() < nw.Diagnosability() {
			t.Errorf("%s: κ=%d < δ=%d", fam.Name, nw.Connectivity(), nw.Diagnosability())
		}
	}
}

// TestCatalogFieldsNonEmpty keeps the documentation honest.
func TestCatalogFieldsNonEmpty(t *testing.T) {
	for _, fam := range Catalog() {
		if fam.Spec == "" || fam.Name == "" || fam.Params == "" ||
			fam.DegreeFormula == "" || fam.KappaFormula == "" ||
			fam.DeltaFormula == "" || fam.Reference == "" || fam.Example == "" {
			t.Errorf("catalog entry %q has empty fields", fam.Spec)
		}
	}
}
