package topology

import (
	"comparisondiag/internal/bitset"
	"comparisondiag/internal/graph"
)

// RegrowParts maps a pre-churn (anchor) Theorem 1 partition onto a
// re-grown component g2 — the ascending twin of SurviveParts. Each
// anchor part is re-admitted as far as the growth allows: parts whose
// members are all present again and untouched by still-gone edges are
// remapped wholesale (their induced subgraph is identical to the anchor
// graph's, so no re-check is needed), partially present parts are
// trimmed to their present nodes and re-validated exactly like
// SurviveParts repairs (connected in g2, induced minimum degree ≥ 2, at
// least two nodes). The caller applies its own minimum-size filter
// afterwards, as with SurviveParts.
//
// prev is the partition currently served (the one SurviveParts produced
// for the pre-growth survivor) with prevToNew the growth's total
// survivor id map; it anchors the census and the monotonicity fallback:
// a re-grown part that fails re-validation — a restored node can return
// with too few of its part-neighbours — falls back to its currently
// served membership, which stays valid because every survivor node and
// edge persists into g2. The served partition therefore never loses a
// part across a growth. prev may be nil (no current partition to fall
// back on), in which case invalid parts are dropped.
//
// The census: kept counts parts serving exactly their current
// membership (including the fallback), regrown counts current parts
// that gained nodes back, readmitted counts parts with no current
// counterpart that re-validated from scratch, dropped counts parts
// still unservable. anchorToNew is the growth's pre-churn id map (-1 =
// still gone); stillGone lists the still-removed edges in pre-churn
// ids. flat optionally supplies the backing array as in SurviveParts.
// Part order follows the anchor partition — after a full restore the
// output is element-wise identical to it.
func RegrowParts(g2 *graph.Graph, anchor []Part, anchorToNew []int32, stillGone [][2]int32, prev []Part, prevToNew []int32, flat []int32) (out []Part, outFlat []int32, kept, regrown, readmitted, dropped int) {
	// Mark which anchor parts the residual churn still touches: a member
	// still gone, or a still-gone edge with both endpoints inside.
	touched := make([]bool, len(anchor))
	if len(stillGone) > 0 {
		partOf := make([]int32, len(anchorToNew))
		for i := range partOf {
			partOf[i] = -1
		}
		for pi, p := range anchor {
			for _, u := range p.Nodes {
				partOf[u] = int32(pi)
			}
		}
		for _, e := range stillGone {
			if pu := partOf[e[0]]; pu >= 0 && pu == partOf[e[1]] {
				touched[pu] = true
			}
		}
	}
	for pi, p := range anchor {
		if touched[pi] {
			continue
		}
		for _, u := range p.Nodes {
			if anchorToNew[u] < 0 {
				touched[pi] = true
				break
			}
		}
	}

	// Locate each anchor part's current counterpart. Parts are disjoint
	// and a current part's members all persist into g2, so one owner id
	// per g2 node resolves the match.
	var prevOwner []int32
	if len(prev) > 0 {
		prevOwner = make([]int32, g2.N())
		for i := range prevOwner {
			prevOwner[i] = -1
		}
		for j, p := range prev {
			for _, u := range p.Nodes {
				prevOwner[prevToNew[u]] = int32(j)
			}
		}
	}

	// One backing array; current memberships are subsets of their anchor
	// parts, so the anchor total bounds the fallback appends too.
	total := 0
	for _, p := range anchor {
		total += len(p.Nodes)
	}
	if cap(flat) < total {
		flat = make([]int32, 0, total)
	}
	flat = flat[:0]
	var mask *bitset.Set
	for pi, p := range anchor {
		lo := len(flat)
		for _, u := range p.Nodes {
			if nu := anchorToNew[u]; nu >= 0 {
				flat = append(flat, nu)
			}
		}
		nodes := flat[lo:len(flat):len(flat)]
		prevIdx := int32(-1)
		if prevOwner != nil {
			for _, u := range nodes {
				if j := prevOwner[u]; j >= 0 {
					prevIdx = j
					break
				}
			}
		}
		valid := !touched[pi]
		if !valid && len(nodes) >= 2 {
			if mask == nil {
				mask = bitset.New(g2.N())
			}
			valid = validPartOn(g2, nodes, mask)
		}
		if valid {
			seed := anchorToNew[p.Seed]
			if seed < 0 {
				seed = nodes[0]
			}
			out = append(out, Part{Nodes: nodes, Seed: seed})
			switch {
			case prevIdx < 0:
				readmitted++
			case len(nodes) == len(prev[prevIdx].Nodes):
				kept++
			default:
				regrown++
			}
			continue
		}
		flat = flat[:lo]
		if prevIdx < 0 {
			dropped++
			continue
		}
		// Monotonicity fallback: keep serving the current membership.
		pp := prev[prevIdx]
		for _, u := range pp.Nodes {
			flat = append(flat, prevToNew[u])
		}
		out = append(out, Part{Nodes: flat[lo:len(flat):len(flat)], Seed: prevToNew[pp.Seed]})
		kept++
	}
	return out, flat, kept, regrown, readmitted, dropped
}
