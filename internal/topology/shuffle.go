package topology

import (
	"fmt"

	"comparisondiag/internal/graph"
)

// shuffleTables maps the global 2-bit suffix of a node to the set of
// four 4-bit prefix deltas along which it has cross edges at each
// recursion level. Every set has four distinct non-zero members and is
// used symmetrically (the suffix is invariant along a cross edge), so
// the relation is well-formed. The union of the tables generates the
// 4-bit prefix space, keeping the 16-copy quotient connected.
//
// The exact tables of Li, Tan and Hsu [17] are not reproducible offline;
// these preserve the structural contract the diagnosis theory needs —
// n-regularity, recursive partition into 16 copies of SQ_{n-4}, and
// connectivity n, the latter verified empirically for SQ_6 in tests.
// See DESIGN.md, substitutions.
var shuffleTables = [4][4]int32{
	{0x1, 0x2, 0x4, 0x8},
	{0x3, 0x6, 0xC, 0x9},
	{0x5, 0xA, 0xF, 0x7},
	{0xB, 0xD, 0xE, 0x6},
}

// ShuffleCube is the shuffle-cube SQ_n, defined for n ≡ 2 (mod 4):
// SQ_2 = Q_2, and SQ_n consists of 16 copies of SQ_{n-4} (indexed by the
// four high bits) plus four cross edges per node whose high-bit deltas
// are selected by the node's global 2-bit suffix. Degree n, connectivity
// n, diagnosability n for n ≥ 4 [17, 6].
type ShuffleCube struct {
	n int
	g *graph.Graph
}

// NewShuffleCube constructs SQ_n for n ≡ 2 (mod 4), n ≥ 2.
func NewShuffleCube(n int) *ShuffleCube {
	if n < 2 || n%4 != 2 {
		panic("topology: shuffle cube needs n ≡ 2 (mod 4)")
	}
	N := 1 << uint(n)
	g := graph.FromAdjacency(N, func(u int32) []int32 {
		out := make([]int32, 0, n)
		// SQ_2 core on the low two bits.
		out = append(out, u^1, u^2)
		// Cross edges at each recursion level: the level-t prefix is the
		// 4 bits starting at position 2+4t.
		s := u & 3
		for p := 2; p+4 <= n; p += 4 {
			for _, d := range shuffleTables[s] {
				out = append(out, u^(d<<uint(p)))
			}
		}
		return out
	})
	return &ShuffleCube{n: n, g: g}
}

// Name implements Network.
func (s *ShuffleCube) Name() string { return fmt.Sprintf("SQ%d", s.n) }

// Dim returns n.
func (s *ShuffleCube) Dim() int { return s.n }

// Graph implements Network.
func (s *ShuffleCube) Graph() *graph.Graph { return s.g }

// Connectivity implements Network: κ(SQ_n) = n [17].
func (s *ShuffleCube) Connectivity() int { return s.n }

// Diagnosability implements Network: δ(SQ_n) = n for n ≥ 4 [6].
func (s *ShuffleCube) Diagnosability() int { return s.n }

// Parts implements Network. The recursion step is 16-way, so natural
// part sizes are 2^{n-4b}; when the natural size is too small (SQ_6
// splits into parts of 4 < δ+1 = 7), undersized parts are merged with
// adjacent copies, which preserves connectedness and induced degree.
func (s *ShuffleCube) Parts(minSize, minCount int) ([]Part, error) {
	// Prefer the smallest natural granularity that fits outright.
	for m := 2; m <= s.n-4; m += 4 {
		size := 1 << uint(m)
		count := 1 << uint(s.n-m)
		if size >= minSize && count >= minCount {
			return rangeParts(1<<uint(s.n), size), nil
		}
	}
	// Fall back to merging adjacent copies, coarsest viable level first
	// (fewest merges needed).
	for m := s.n - 4; m >= 2; m -= 4 {
		count := 1 << uint(s.n-m)
		if count < minCount {
			continue
		}
		parts := rangeParts(1<<uint(s.n), 1<<uint(m))
		if merged, err := mergeParts(s.g, parts, minSize, minCount); err == nil {
			return merged, nil
		}
	}
	return nil, ErrNoPartition
}
