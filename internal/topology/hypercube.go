package topology

import (
	"fmt"

	"comparisondiag/internal/graph"
)

// Hypercube is the n-dimensional hypercube Q_n: nodes are bit-strings of
// length n, edges join strings at Hamming distance 1. Degree n,
// connectivity n, diagnosability n for n ≥ 5 [23].
type Hypercube struct {
	n int
	g *graph.Graph
}

// NewHypercube constructs Q_n (n ≥ 2).
func NewHypercube(n int) *Hypercube {
	if n < 2 {
		panic("topology: hypercube needs n ≥ 2")
	}
	N := 1 << uint(n)
	g := graph.FromAdjacency(N, func(u int32) []int32 {
		out := make([]int32, 0, n)
		for b := 0; b < n; b++ {
			out = append(out, u^int32(1<<uint(b)))
		}
		return out
	})
	return &Hypercube{n: n, g: g}
}

// Name implements Network.
func (h *Hypercube) Name() string { return fmt.Sprintf("Q%d", h.n) }

// Dim returns n.
func (h *Hypercube) Dim() int { return h.n }

// Graph implements Network.
func (h *Hypercube) Graph() *graph.Graph { return h.g }

// Connectivity implements Network: κ(Q_n) = n.
func (h *Hypercube) Connectivity() int { return h.n }

// Diagnosability implements Network: δ(Q_n) = n for n ≥ 5 [23].
func (h *Hypercube) Diagnosability() int { return h.n }

// CayleyStructure implements CayleyStructured: Q_n is the Cayley graph
// of GF(2)^n with the single-bit generators.
func (h *Hypercube) CayleyStructure() graph.CayleyDescriptor {
	return graph.XORCayley{Bits: h.n, Masks: xorBasis(h.n)}
}

// Parts implements Network. A part is a subcube Q_m obtained by fixing
// the high n-m bits, so parts are contiguous id ranges. The smallest m
// meeting minSize is used, provided enough parts remain; when powers of
// two cannot meet both bounds, parts are padded with donated edges.
func (h *Hypercube) Parts(minSize, minCount int) ([]Part, error) {
	return binaryCubeParts(h.g, h.n, 2, minSize, minCount)
}

// binaryCubeParts enumerates the subcube granularities (fixing the high
// n-m bits for m ≥ minDim) shared by every binary-cube variant: in all
// of them this induces a connected sub-network with minimum degree ≥ 2.
// Selection and padding fall to chooseParts.
func binaryCubeParts(g *graph.Graph, n, minDim, minSize, minCount int) ([]Part, error) {
	var levels []granularity
	for m := minDim; m < n; m++ {
		size := 1 << uint(m)
		count := 1 << uint(n-m)
		levels = append(levels, granularity{size, count, func() []Part {
			return rangeParts(1<<uint(n), size)
		}})
	}
	return chooseParts(g, levels, minSize, minCount)
}
