package topology

import (
	"fmt"

	"comparisondiag/internal/graph"
)

// Pancake is the pancake graph P_n of Akers and Krishnamurthy [2]:
// nodes are permutations of n symbols, edges reverse a prefix of length
// 2..n. Degree n-1, connectivity n-1 [2], diagnosability n-1 for
// n ≥ 4 [6].
type Pancake struct {
	n     int
	codec *permCodec
	g     *graph.Graph
}

// NewPancake constructs P_n (3 ≤ n ≤ 12).
func NewPancake(n int) *Pancake {
	if n < 3 || n > 12 {
		panic("topology: pancake graph needs 3 ≤ n ≤ 12")
	}
	codec := newPermCodec(n, n)
	N := codec.Count()
	p := make([]int8, n)
	g := graph.FromAdjacency(N, func(u int32) []int32 {
		codec.Unrank(u, p)
		out := make([]int32, 0, n-1)
		for l := 2; l <= n; l++ {
			reversePrefix(p, l)
			out = append(out, codec.Rank(p))
			reversePrefix(p, l)
		}
		return out
	})
	return &Pancake{n: n, codec: codec, g: g}
}

func reversePrefix(p []int8, l int) {
	for i, j := 0, l-1; i < j; i, j = i+1, j-1 {
		p[i], p[j] = p[j], p[i]
	}
}

// Name implements Network.
func (p *Pancake) Name() string { return fmt.Sprintf("P%d", p.n) }

// Dim returns n.
func (p *Pancake) Dim() int { return p.n }

// Graph implements Network.
func (p *Pancake) Graph() *graph.Graph { return p.g }

// Connectivity implements Network: κ(P_n) = n-1 [2].
func (p *Pancake) Connectivity() int { return p.n - 1 }

// Diagnosability implements Network: δ(P_n) = n-1 for n ≥ 4 [6].
func (p *Pancake) Diagnosability() int { return p.n - 1 }

// Parts implements Network. Prefix reversals of length < n never move
// the last symbol, so fixing the last j symbols partitions P_n into
// n!/(n-j)! copies of P_{n-j}; P_3 (a 6-cycle) is the smallest part
// shape with induced degree ≥ 2.
func (p *Pancake) Parts(minSize, minCount int) ([]Part, error) {
	return suffixParts(p.g, p.codec, p.n, p.n, minSize, minCount, func(nRem, kRem int) bool {
		return nRem >= 3
	})
}
