package topology

import (
	"errors"
	"slices"
	"testing"

	"comparisondiag/internal/graph"
)

// declaredFamilies returns every declared-Cayley instance the coset
// tests compare against its own CSR-derived partition. Sizes are chosen
// so the family's Parts succeeds without padding at the quoted request
// (range partitions only) — padding is a graph-walking repair the
// descriptor path deliberately does not reproduce.
func declaredFamilies() []CayleyStructured {
	return []CayleyStructured{
		NewHypercube(8),
		NewFoldedHypercube(6),
		NewEnhancedHypercube(7, 3),
		NewAugmentedCube(5),
		NewKAryNCube(4, 4),
		NewAugmentedKAryNCube(4, 4),
	}
}

// TestCayleyAdjacencyMatchesFamilies pins the implicit adjacency against
// the family constructors' independently built CSR graphs: for every
// declared instance, every node's generated neighbour list must equal
// the materialised one.
func TestCayleyAdjacencyMatchesFamilies(t *testing.T) {
	for _, nw := range declaredFamilies() {
		t.Run(nw.Name(), func(t *testing.T) {
			desc := nw.CayleyStructure()
			if desc == nil {
				t.Fatalf("%s declares no descriptor", nw.Name())
			}
			ca, err := graph.NewCayleyAdjacency(desc)
			if err != nil {
				t.Fatal(err)
			}
			g := nw.Graph()
			if ca.N() != g.N() {
				t.Fatalf("order %d, graph has %d nodes", ca.N(), g.N())
			}
			var buf []int32
			for u := int32(0); int(u) < g.N(); u++ {
				buf = ca.AppendNeighbors(u, buf)
				if !slices.Equal(buf, g.Neighbors(u)) {
					t.Fatalf("node %d: implicit %v, family CSR %v", u, buf, g.Neighbors(u))
				}
			}
		})
	}
}

// TestCayleyPartsMatchesFamilyParts pins the Theorem 1 partition derived
// from the coset structure against the family's own Parts across the
// request range an engine actually issues (every tightened bound from 1
// up to δ+1): part-for-part identical node ranges and seeds whenever
// the CSR path succeeds without padding, and ErrNoPartition only when
// the CSR path also fails.
func TestCayleyPartsMatchesFamilyParts(t *testing.T) {
	for _, nw := range declaredFamilies() {
		t.Run(nw.Name(), func(t *testing.T) {
			desc := nw.CayleyStructure()
			for bound := 1; bound <= nw.Diagnosability()+1; bound++ {
				want, wantErr := nw.Parts(bound, bound)
				got, gotErr := CayleyParts(desc, bound, bound)
				if wantErr != nil {
					if gotErr == nil {
						t.Fatalf("bound %d: family refused (%v), descriptor produced %d parts", bound, wantErr, len(got))
					}
					continue
				}
				if gotErr != nil {
					// The descriptor path may refuse a level the CSR path
					// only reaches by padding; it must say so with the
					// canonical sentinel, and never invent a partition.
					if !errors.Is(gotErr, ErrNoPartition) {
						t.Fatalf("bound %d: unexpected error %v", bound, gotErr)
					}
					continue
				}
				if len(got) != len(want) {
					t.Fatalf("bound %d: %d parts from descriptor, %d from family", bound, len(got), len(want))
				}
				for i := range want {
					if got[i].Seed != want[i].Seed || !slices.Equal(got[i].Nodes, want[i].Nodes) {
						t.Fatalf("bound %d part %d: descriptor (seed %d, %d nodes) differs from family (seed %d, %d nodes)",
							bound, i, got[i].Seed, len(got[i].Nodes), want[i].Seed, len(want[i].Nodes))
					}
				}
			}
		})
	}
}

// TestCayleyPartsRefusals pins the error paths: undeclared descriptor
// kinds and impossible requests return ErrNoPartition.
func TestCayleyPartsRefusals(t *testing.T) {
	if _, err := CayleyParts(nil, 2, 2); !errors.Is(err, ErrNoPartition) {
		t.Fatalf("nil descriptor: %v", err)
	}
	// A request larger than any coset level can serve.
	desc := NewHypercube(6).CayleyStructure()
	if _, err := CayleyParts(desc, 1<<6, 2); !errors.Is(err, ErrNoPartition) {
		t.Fatalf("oversized request: %v", err)
	}
}
