package topology

import (
	"testing"
	"testing/quick"
)

// TestStarDiameter: diameter(S_n) = ⌊3(n-1)/2⌋ [1].
func TestStarDiameter(t *testing.T) {
	for n := 3; n <= 6; n++ {
		g := NewStar(n).Graph()
		want := 3 * (n - 1) / 2
		// Star graphs are node-transitive: one eccentricity suffices.
		if e := g.Eccentricity(0); e != want {
			t.Fatalf("diameter(S%d) = %d, want %d", n, e, want)
		}
	}
}

// TestPancakeDiameter pins the known pancake numbers for small n:
// the maximum number of prefix reversals to sort a permutation.
func TestPancakeDiameter(t *testing.T) {
	want := map[int]int{3: 3, 4: 4, 5: 5, 6: 7, 7: 8}
	for n, w := range want {
		g := NewPancake(n).Graph()
		if e := g.Eccentricity(0); e != w {
			t.Fatalf("diameter(P%d) = %d, want %d", n, e, w)
		}
	}
}

// TestStarEdgesSwapFirstSymbol: every S_n edge swaps position 1 with
// some position i, leaving the rest fixed.
func TestStarEdgesSwapFirstSymbol(t *testing.T) {
	n := 5
	st := NewStar(n)
	g := st.Graph()
	p := make([]int8, n)
	q := make([]int8, n)
	for u := int32(0); int(u) < g.N(); u++ {
		st.codec.Unrank(u, p)
		for _, v := range g.Neighbors(u) {
			st.codec.Unrank(v, q)
			diffs := 0
			swapPos := -1
			for i := range p {
				if p[i] != q[i] {
					diffs++
					if i > 0 {
						swapPos = i
					}
				}
			}
			if diffs != 2 || swapPos == -1 || p[0] != q[swapPos] || q[0] != p[swapPos] {
				t.Fatalf("edge %v-%v is not a position-1 swap", p, q)
			}
		}
	}
}

// TestNKStarEdgeShapes: edges are either position-1 swaps or symbol
// replacements at position 1.
func TestNKStarEdgeShapes(t *testing.T) {
	nk := NewNKStar(6, 3)
	g := nk.Graph()
	p := make([]int8, 3)
	q := make([]int8, 3)
	for u := int32(0); int(u) < g.N(); u++ {
		nk.codec.Unrank(u, p)
		swapEdges, replaceEdges := 0, 0
		for _, v := range g.Neighbors(u) {
			nk.codec.Unrank(v, q)
			diffs := 0
			for i := range p {
				if p[i] != q[i] {
					diffs++
				}
			}
			switch diffs {
			case 1:
				if p[0] == q[0] {
					t.Fatalf("replacement not at position 1: %v-%v", p, q)
				}
				replaceEdges++
			case 2:
				if p[0] == q[0] {
					t.Fatalf("swap does not involve position 1: %v-%v", p, q)
				}
				swapEdges++
			default:
				t.Fatalf("edge %v-%v differs in %d positions", p, q, diffs)
			}
		}
		if swapEdges != 2 || replaceEdges != 3 { // k-1 = 2 swaps, n-k = 3 replacements
			t.Fatalf("node %v: %d swaps, %d replacements", p, swapEdges, replaceEdges)
		}
	}
}

// TestPancakeEdgesArePrefixReversals: verified symbolically.
func TestPancakeEdgesArePrefixReversals(t *testing.T) {
	n := 5
	pc := NewPancake(n)
	g := pc.Graph()
	p := make([]int8, n)
	q := make([]int8, n)
	for u := int32(0); int(u) < g.N(); u += 7 { // sample
		pc.codec.Unrank(u, p)
		for _, v := range g.Neighbors(u) {
			pc.codec.Unrank(v, q)
			// Find the reversal length: the longest prefix where q is
			// reversed p, with identical suffix.
			l := -1
			for L := 2; L <= n; L++ {
				ok := true
				for i := 0; i < L; i++ {
					if q[i] != p[L-1-i] {
						ok = false
						break
					}
				}
				for i := L; i < n && ok; i++ {
					if q[i] != p[i] {
						ok = false
					}
				}
				if ok {
					l = L
					break
				}
			}
			if l == -1 {
				t.Fatalf("edge %v-%v is not a prefix reversal", p, q)
			}
		}
	}
}

// TestArrangementEdgeShape: A_{n,k} edges differ in exactly one
// position (property check via quick over node pairs).
func TestArrangementEdgeShape(t *testing.T) {
	a := NewArrangement(6, 3)
	g := a.Graph()
	p := make([]int8, 3)
	q := make([]int8, 3)
	f := func(raw uint16) bool {
		u := int32(raw) % int32(g.N())
		a.codec.Unrank(u, p)
		for _, v := range g.Neighbors(u) {
			a.codec.Unrank(v, q)
			diffs := 0
			for i := range p {
				if p[i] != q[i] {
					diffs++
				}
			}
			if diffs != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestStarSuffixPartsInduceSmallerStars: the partition property behind
// Theorem 5, verified against a freshly built S_{n-1}.
func TestStarSuffixPartsInduceSmallerStars(t *testing.T) {
	st := NewStar(5)
	// Request parts of ≥ 24 nodes to force the j = 1 granularity, whose
	// parts are copies of S4. (The δ+1 default legitimately picks the
	// finer S3-copy granularity.)
	parts, err := st.Parts(24, 5)
	if err != nil {
		t.Fatal(err)
	}
	small := NewStar(4).Graph()
	g := st.Graph()
	for _, part := range parts[:2] {
		if len(part.Nodes) != small.N() {
			t.Fatalf("part size %d, want %d", len(part.Nodes), small.N())
		}
		// Count induced edges: must equal M(S4). (An exact isomorphism
		// check is overkill; equal size, regularity and edge count of
		// an induced connected subgraph of a star graph pin it down.)
		edges := 0
		inPart := map[int32]bool{}
		for _, u := range part.Nodes {
			inPart[u] = true
		}
		for _, u := range part.Nodes {
			for _, v := range g.Neighbors(u) {
				if u < v && inPart[v] {
					edges++
				}
			}
		}
		if edges != small.M() {
			t.Fatalf("induced part has %d edges, S4 has %d", edges, small.M())
		}
	}
}
