package topology

import (
	"fmt"

	"comparisondiag/internal/graph"
)

// CrossedCube is the crossed cube CQ_n of Efe [12]: same node set as
// Q_n, but the cross edge at level l "twists" the lower bit pairs via
// the pair-relation. Degree n, connectivity n [16], diagnosability n for
// n ≥ 4 [14, 6].
//
// Adjacency (standard pair-related definition): u and v are joined at
// level l iff they agree above bit l, differ at bit l, agree at bit l-1
// when l is odd, and for every complete pair (2j+1, 2j) below l the pairs
// (u_{2j+1}u_{2j}) and (v_{2j+1}v_{2j}) are pair-related:
// y = x when x_0 = 0, and y = (¬x_1)x_0 when x_0 = 1.
type CrossedCube struct {
	n int
	g *graph.Graph
}

// NewCrossedCube constructs CQ_n (n ≥ 2).
func NewCrossedCube(n int) *CrossedCube {
	if n < 2 {
		panic("topology: crossed cube needs n ≥ 2")
	}
	N := 1 << uint(n)
	g := graph.FromAdjacency(N, func(u int32) []int32 {
		out := make([]int32, 0, n)
		for l := 0; l < n; l++ {
			out = append(out, crossedNeighbor(u, l))
		}
		return out
	})
	return &CrossedCube{n: n, g: g}
}

// crossedNeighbor returns u's level-l neighbour in CQ_n. The pair map
// flips bit 2j+1 exactly when bit 2j is set, for every complete pair
// below l; that map is an involution and leaves bit 2j intact, so the
// edge relation is symmetric.
func crossedNeighbor(u int32, l int) int32 {
	v := u ^ int32(1<<uint(l))
	for j := 0; 2*j+1 < l; j++ {
		if u&(1<<uint(2*j)) != 0 {
			v ^= 1 << uint(2*j+1)
		}
	}
	return v
}

// Name implements Network.
func (c *CrossedCube) Name() string { return fmt.Sprintf("CQ%d", c.n) }

// Dim returns n.
func (c *CrossedCube) Dim() int { return c.n }

// Graph implements Network.
func (c *CrossedCube) Graph() *graph.Graph { return c.g }

// Connectivity implements Network: κ(CQ_n) = n [16].
func (c *CrossedCube) Connectivity() int { return c.n }

// Diagnosability implements Network: δ(CQ_n) = n for n ≥ 4 [14].
func (c *CrossedCube) Diagnosability() int { return c.n }

// Parts implements Network. Fixing the high n-m bits of CQ_n induces
// CQ_m (the definition is prefix-recursive: levels below m only read
// bits below m), so parts are again contiguous ranges.
func (c *CrossedCube) Parts(minSize, minCount int) ([]Part, error) {
	return binaryCubeParts(c.g, c.n, 2, minSize, minCount)
}
