package core

import (
	"math/bits"

	"comparisondiag/internal/graph"
	"comparisondiag/internal/syndrome"
)

// The XOR-Cayley kernel: word-parallel final-pass rounds for any graph
// with N(u) = {u ⊕ m : m ∈ masks} — plain hypercubes (single-bit
// masks, the paper's flagship Q_n family) and the multi-bit variants
// (folded/enhanced hypercubes' complement mask, augmented cubes' run
// masks). XOR by a mask permutes the node bitset, and that permutation
// is a composition of one delta swap per low mask bit (d < 6, in-word
// butterflies) plus one word-index XOR for the high bits — so each
// round discovers 64 admission candidates per handful of ALU ops
// instead of one adjacency visit per edge.
//
// Exactness. The reference pass tests each candidate v by its frontier
// neighbours in ascending node order until one answers 0. For XOR
// generators the tester via mask m is u = v ⊕ m, and for two masks
// m1, m2 the order of their testers is decided by one bit of v:
//
//	v⊕m1 < v⊕m2  ⇔  v_h = (m1)_h,  h = msb(m1 ⊕ m2)
//
// (the two testers differ exactly at the bits of m1⊕m2, so the highest
// such bit decides). compileXORSchedule turns that comparator into a
// fixed sequence of steps (mask, condition-on-v) whose per-candidate
// subsequence is sorted for every v: split the mask set at the highest
// bit h where it disagrees into A (bit set) and B (bit clear); for
// candidates with v_h = 1 all of A's testers precede all of B's, and
// vice versa; within each side the order depends only on lower bits.
// Emitting the smaller side twice under complementary v_h conditions
// around the other side realises both orders in one linear schedule:
//
//	[A | v_h=1]  [B]  [A | v_h=0]
//
// For Q_n this compiles to exactly the two-phase dimension sweep of the
// PR 2 kernel (descending dimensions over v_d=1, ascending over
// v_d=0); for FQ_n/AQ_n it interleaves the multi-bit masks at their
// v-dependent rank. Step conditions are conjunctions of single-bit
// literals, encoded as a word-index filter (bits ≥ 6) plus an in-word
// pattern (bits < 6), so a step still costs a handful of ALU ops per
// 64 candidates.
//
// Admissions update U immediately, so a node admitted by one step
// vanishes from every later step's candidate words — exactly the
// reference's prefix-until-0 suppression (see runWordKernel for the
// shared round loop and the full equivalence argument).

// deltaSwapMasks[d] selects the lower element of each bit pair at
// distance 2^d — the classic butterfly masks. Its complement is the
// set of in-word positions whose node id has bit d set.
var deltaSwapMasks = [6]uint64{
	0x5555555555555555, 0x3333333333333333, 0x0f0f0f0f0f0f0f0f,
	0x00ff00ff00ff00ff, 0x0000ffff0000ffff, 0x00000000ffffffff,
}

// xorStep is one compiled schedule entry: test the candidates selected
// by the condition (wiMask/wiVal on the word index, pat in-word)
// against their frontier neighbour across mask.
type xorStep struct {
	mask    int32  // generator; the tester of candidate v is v ^ mask
	wordXor uint32 // mask >> 6: word reindex of the frontier read
	low     uint32 // mask & 63: in-word delta-swap composition
	wiMask  uint32 // word-index condition: process wi iff wi&wiMask == wiVal
	wiVal   uint32
	pat     uint64 // in-word candidate pattern from bit literals < 6
}

type xorKernel struct {
	steps     []xorStep
	multi     bool
	threshold int // frontier size where word rounds beat the sweep
}

// bindXORKernel binds the kernel to a graph declared (and verified) to
// be XOR-Cayley. Floors: ≥ 64 nodes (below that the word logic cannot
// win) and ≤ 32 generators; the descriptor must match the graph order
// and carry well-formed masks.
func bindXORKernel(desc graph.CayleyDescriptor, a graph.Adjacencer) finalKernel {
	xc, ok := desc.(graph.XORCayley)
	if !ok {
		return nil
	}
	n := a.N()
	if n < 64 || n&(n-1) != 0 || xc.Order() != n {
		return nil
	}
	if len(xc.Masks) == 0 || len(xc.Masks) > 32 {
		return nil
	}
	for _, m := range xc.Masks {
		if m <= 0 || int(m) >= n {
			return nil
		}
	}
	sched := compileXORSchedule(xc.Masks)
	if sched == nil {
		return nil
	}
	steps := make([]xorStep, len(sched))
	for i, s := range sched {
		st := xorStep{
			mask:    s.mask,
			wordXor: uint32(s.mask >> 6),
			low:     uint32(s.mask & 63),
			pat:     ^uint64(0),
		}
		for _, lt := range s.lits {
			if lt.bit >= 6 {
				st.wiMask |= 1 << uint(lt.bit-6)
				if lt.val {
					st.wiVal |= 1 << uint(lt.bit-6)
				}
			} else if lt.val {
				st.pat &= ^deltaSwapMasks[lt.bit]
			} else {
				st.pat &= deltaSwapMasks[lt.bit]
			}
		}
		steps[i] = st
	}
	// Round cost: word visits per round, each weighted by its
	// delta-swap chain (a step conditioned on j word-index bits touches
	// words/2^j words).
	words := n / 64
	cost := 0
	for _, st := range steps {
		cost += (words >> bits.OnesCount32(st.wiMask)) * (1 + bits.OnesCount32(st.low))
	}
	return &xorKernel{steps: steps, multi: xc.MultiBit(), threshold: sweepThresholdFor(cost, a)}
}

// xorLit is one condition literal: node bit `bit` of the candidate must
// equal val.
type xorLit struct {
	bit int
	val bool
}

// xorSched is one schedule entry before encoding: a mask plus the
// conjunction of literals gating it.
type xorSched struct {
	mask int32
	lits []xorLit
}

// compileXORSchedule emits the order-exact step sequence for a mask
// set (see the file comment for the construction). Returns nil on a
// degenerate mask set (duplicates — no disagreement bit to split on).
// The duplicate-smaller-side recursion keeps the schedule linear for
// every deployed family (2n-1 steps for Q_n, 2n+4 for FQ_n, ~6n for
// AQ_n); a pathological set could still blow up, so the length is
// capped and oversized schedules refuse to bind.
func compileXORSchedule(masks []int32) []xorSched {
	const maxSteps = 4096
	if len(masks) == 1 {
		return []xorSched{{mask: masks[0]}}
	}
	var or int32
	and := int32(-1)
	for _, m := range masks {
		or |= m
		and &= m
	}
	if or&^and == 0 {
		return nil // all masks equal: duplicates in the generator set
	}
	h := 31 - bits.LeadingZeros32(uint32(or&^and))
	a := make([]int32, 0, len(masks))
	b := make([]int32, 0, len(masks))
	for _, m := range masks {
		if m&(1<<uint(h)) != 0 {
			a = append(a, m)
		} else {
			b = append(b, m)
		}
	}
	sa, sb := compileXORSchedule(a), compileXORSchedule(b)
	if sa == nil || sb == nil {
		return nil
	}
	// For v_h = 1, A's testers (bit h flipped off) all precede B's; for
	// v_h = 0 the order reverses. Duplicate the smaller compiled side
	// under complementary v_h literals around the other side.
	var out []xorSched
	if len(sa) <= len(sb) {
		out = make([]xorSched, 0, 2*len(sa)+len(sb))
		out = append(out, withXORLit(sa, h, true)...)
		out = append(out, sb...)
		out = append(out, withXORLit(sa, h, false)...)
	} else {
		out = make([]xorSched, 0, len(sa)+2*len(sb))
		out = append(out, withXORLit(sb, h, false)...)
		out = append(out, sa...)
		out = append(out, withXORLit(sb, h, true)...)
	}
	if len(out) > maxSteps {
		return nil
	}
	return out
}

// withXORLit copies the schedule with one literal prepended to every
// entry's condition.
func withXORLit(s []xorSched, bit int, val bool) []xorSched {
	out := make([]xorSched, len(s))
	for i, e := range s {
		lits := make([]xorLit, 0, len(e.lits)+1)
		lits = append(lits, xorLit{bit, val})
		lits = append(lits, e.lits...)
		out[i] = xorSched{mask: e.mask, lits: lits}
	}
	return out
}

// Name implements finalKernel.
func (k *xorKernel) Name() string {
	if k.multi {
		return "xor-cayley[multi-bit]"
	}
	return "xor-cayley"
}

func (k *xorKernel) run(sc *Scratch, a graph.Adjacencer, l *syndrome.Lazy, u0 int32, delta int) *SetBuilderResult {
	return runWordKernel(sc, a, l, u0, delta, k)
}

func (k *xorKernel) sweepThreshold() int { return k.threshold }

// round implements wordRounder: one sweep of the compiled schedule.
// Word indices matching a step's condition are enumerated directly
// (submask iteration over the free bits), so a step conditioned on j
// word bits touches only a 2^-j fraction of the bitset.
func (k *xorKernel) round(fw, uw []uint64, parent []int32, l *syndrome.Lazy) int {
	admitted := 0
	last := uint32(len(uw) - 1) // len(uw) is a power of two
	for si := range k.steps {
		st := &k.steps[si]
		free := last &^ st.wiMask
		s := uint32(0)
		for {
			wi := st.wiVal | s
			// The frontier word holding the testers of wi's candidates,
			// permuted into candidate positions: word-index XOR for the
			// high mask bits, one delta swap per low mask bit.
			w := fw[wi^st.wordXor]
			if w != 0 {
				for r := st.low; r != 0; r &= r - 1 {
					d := uint(bits.TrailingZeros32(r))
					lo := deltaSwapMasks[d]
					sh := uint(1) << d
					w = (w&lo)<<sh | (w>>sh)&lo
				}
				if w &= st.pat &^ uw[wi]; w != 0 {
					m := st.mask
					base := int32(wi) << 6
					for ; w != 0; w &= w - 1 {
						v := base + int32(bits.TrailingZeros64(w))
						u := v ^ m
						if l.Test(u, v, parent[u]) == 0 {
							uw[v>>6] |= 1 << (uint32(v) & 63)
							parent[v] = u
							admitted++
						}
					}
				}
			}
			s = (s - free) & free
			if s == 0 {
				break
			}
		}
	}
	return admitted
}

// roundRange implements rangedRounder: the compiled schedule restricted
// to the candidate words [lo, hi). Candidate suppression (the uw mask
// in each step) lives in the candidate's own word, so a worker that
// owns a word for the whole round observes exactly the admissions the
// sequential schedule would — results and look-ups are bit-identical.
// The per-word body mirrors round's; it is kept separate (on a concrete
// *syndrome.Shard) so the sequential path stays devirtualised on
// *syndrome.Lazy.
func (k *xorKernel) roundRange(fw, uw []uint64, parent []int32, sh *syndrome.Shard, lo, hi int) int {
	admitted := 0
	last := uint32(len(uw) - 1) // len(uw) is a power of two
	for si := range k.steps {
		st := &k.steps[si]
		if st.wiMask == 0 {
			// Unconditioned step: every word qualifies — walk the owned
			// range directly instead of enumerating submasks.
			for wi := uint32(lo); wi < uint32(hi); wi++ {
				admitted += st.testWord(wi, fw, uw, parent, sh)
			}
			continue
		}
		free := last &^ st.wiMask
		s := uint32(0)
		for {
			wi := st.wiVal | s
			if wi >= uint32(lo) && wi < uint32(hi) {
				admitted += st.testWord(wi, fw, uw, parent, sh)
			}
			s = (s - free) & free
			if s == 0 {
				break
			}
		}
	}
	return admitted
}

// testWord runs one schedule step against one candidate word: permute
// the frontier word into candidate positions, mask to live candidates,
// and test the survivors across the step's generator.
func (st *xorStep) testWord(wi uint32, fw, uw []uint64, parent []int32, sh *syndrome.Shard) int {
	w := fw[wi^st.wordXor]
	if w == 0 {
		return 0
	}
	for r := st.low; r != 0; r &= r - 1 {
		d := uint(bits.TrailingZeros32(r))
		lo := deltaSwapMasks[d]
		shft := uint(1) << d
		w = (w&lo)<<shft | (w>>shft)&lo
	}
	if w &= st.pat &^ uw[wi]; w == 0 {
		return 0
	}
	admitted := 0
	m := st.mask
	base := int32(wi) << 6
	for ; w != 0; w &= w - 1 {
		v := base + int32(bits.TrailingZeros64(w))
		u := v ^ m
		if sh.Test(u, v, parent[u]) == 0 {
			uw[v>>6] |= 1 << (uint32(v) & 63)
			parent[v] = u
			admitted++
		}
	}
	return admitted
}
