package core

import (
	"math/bits"
	"slices"

	"comparisondiag/internal/graph"
	"comparisondiag/internal/syndrome"
)

// A hypercube-adjacency graph has N(u) = { u ^ 2^d : d ∈ D } for a set
// of bit positions D — the paper's flagship Q_n family (Theorem 2).
// For it the engine's final Set_Builder pass can discover each round's
// admission candidates word-parallel: the nodes with a frontier
// neighbour across dimension d are exactly the frontier bitset XOR-
// permuted by 2^d, and that permutation is a word reindex (d ≥ 6) or a
// single in-word delta swap (d < 6) — 64 nodes per ALU operation
// instead of one adjacency visit per edge. On Q14 this removes ~85% of
// the generic sweep's per-edge work.
//
// Detection runs once at Engine bind time (syndrome-independent, O(m));
// the kernel preserves the reference pass's exact per-node test order,
// so results and look-up counts stay bit-identical (see
// setBuilderXorInto).

// xorCayleyMasks returns the dimension mask set if g has hypercube
// adjacency usable by the word-parallel kernel (power-of-two order ≥
// 64, every mask a distinct bit power, degree ≤ 32), or nil. O(m):
// every edge {u, v} must have u^v in N(0).
func xorCayleyMasks(g *graph.Graph) []int32 {
	n := g.N()
	if n < 64 || n&(n-1) != 0 {
		return nil
	}
	masks := g.Neighbors(0)
	if len(masks) == 0 || len(masks) > 32 {
		return nil
	}
	var mset int32
	for _, m := range masks {
		if m&(m-1) != 0 || mset&m != 0 {
			return nil // not a bit power, or repeated
		}
		mset |= m
	}
	deg := len(masks)
	for u := int32(1); int(u) < n; u++ {
		adj := g.Neighbors(u)
		if len(adj) != deg {
			return nil
		}
		for _, v := range adj {
			x := u ^ v
			if x&(x-1) != 0 || mset&x == 0 {
				return nil
			}
		}
	}
	out := make([]int32, deg)
	copy(out, masks)
	return out
}

// deltaSwapMasks[d] selects the lower element of each bit pair at
// distance 2^d — the classic butterfly masks. Its complement is the
// set of in-word positions whose node id has bit d set.
var deltaSwapMasks = [6]uint64{
	0x5555555555555555, 0x3333333333333333, 0x0f0f0f0f0f0f0f0f,
	0x00ff00ff00ff00ff, 0x0000ffff0000ffff, 0x00000000ffffffff,
}

// setBuilderXorInto is setBuilderLazyInto for hypercube-adjacency
// graphs: the same output and the same syndrome look-up count as the
// reference SetBuilder, with each large round's candidate discovery
// done word-parallel.
//
// Per round the reference invariant is: every non-member is tested by
// its frontier neighbours in ascending node order until one answers 0
// (see setBuilderLazyInto). The kernel reproduces that order without
// ever enumerating a node's adjacency, in two phases over the
// dimensions:
//
//   - phase one walks the dimensions descending, restricted to
//     candidates whose id has that bit set — their testers v^2^d lie
//     below them, and descending d yields those testers in ascending
//     order;
//   - phase two walks the dimensions ascending, restricted to
//     candidates with the bit clear — testers above them, ascending.
//
// Admissions update U immediately, so a node admitted by one dimension
// vanishes from every later dimension's candidate word — exactly the
// reference's prefix-until-0 suppression. Each (dimension, word) step
// costs a handful of ALU operations for 64 candidates.
func setBuilderXorInto(sc *Scratch, g *graph.Graph, l *syndrome.Lazy, u0 int32, delta int, masks []int32) *SetBuilderResult {
	sc.ensure(g.N())
	sc.resetTree()
	res := &sc.res
	*res = SetBuilderResult{U: sc.u, Parent: sc.parent, Contributors: sc.contributors}
	res.U.Add(int(u0))
	start := l.Lookups()

	// Build U_1 exactly as the reference loop: u0 tests unordered pairs
	// of its neighbours; a 0 result certifies both participants at once.
	adj := g.Neighbors(u0)
	frontier := sc.frontier[:0]
	next := sc.next[:0]
	for i := 0; i < len(adj); i++ {
		for j := i + 1; j < len(adj); j++ {
			vi, vj := adj[i], adj[j]
			if res.U.Contains(int(vi)) && res.U.Contains(int(vj)) {
				continue
			}
			if l.Test(u0, vi, vj) == 0 {
				for _, v := range [2]int32{vi, vj} {
					if !res.U.Contains(int(v)) {
						res.U.Add(int(v))
						res.Parent[v] = u0
						frontier = append(frontier, v)
					}
				}
			}
		}
	}
	if len(frontier) > 0 {
		res.Rounds = 1
	}

	added := sc.added
	offs, tgts := g.Adjacency()
	uw := res.U.Words()
	parent := res.Parent
	fw := sc.fsetBuf().Words()
	pw := sc.prevBuf()
	// Word-parallel rounds test each candidate's frontier neighbours in
	// ascending order, which equals the reference's frontier-order sweep
	// only while the frontier is sorted. Round 2+ frontiers always are;
	// a faulty seed's arbitrary pair answers can scramble the U_1
	// frontier, and those rounds must take the order-preserving sweep.
	sorted := slices.IsSorted(frontier)
	// Contributor bookkeeping is deferred: the contributor set is
	// exactly the set of parents, reconstructed in one pass at the end,
	// and the AllHealthy threshold is monotone, so the final count
	// decides it — this drops a membership test from every admission.
	// admitVia tests candidate word w (nodes with a round-start frontier
	// neighbour across m, not yet in U) and admits the vouched-for.
	admitVia := func(w uint64, wi int, m int32) int {
		admitted := 0
		for w != 0 {
			v := int32(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
			u := v ^ m
			if l.Test(u, v, parent[u]) == 0 {
				uw[v>>6] |= 1 << (uint(v) & 63)
				parent[v] = u
				admitted++
			}
		}
		return admitted
	}
	for len(frontier) > 0 {
		admitted := 0
		if !sorted || len(frontier) <= len(uw) {
			// Small round: the devirtualised reference sweep (as in
			// setBuilderLazyInto) beats whole-bitset permutes.
			for _, u := range frontier {
				tu := parent[u]
				for ai, end := offs[u], offs[u+1]; ai < end; ai++ {
					v := tgts[ai]
					if uw[v>>6]&(1<<(uint(v)&63)) != 0 {
						continue
					}
					if l.Test(u, v, tu) == 0 {
						uw[v>>6] |= 1 << (uint(v) & 63)
						parent[v] = u
						added.Add(int(v))
						admitted++
					}
				}
			}
			if admitted == 0 {
				break
			}
			next = added.Drain(next[:0])
			sorted = true
		} else {
			copy(pw, uw)
			// Word-parallel round against the fixed round-start frontier.
			for _, u := range frontier {
				fw[u>>6] |= 1 << (uint(u) & 63)
			}
			// Phase one: dimensions descending, candidates with bit d set
			// (testers v-2^d below them, in ascending order).
			for mi := len(masks) - 1; mi >= 0; mi-- {
				m := masks[mi]
				if d := uint(bits.TrailingZeros32(uint32(m))); d < 6 {
					hi := ^deltaSwapMasks[d]
					sh := uint(1) << d
					a := deltaSwapMasks[d]
					for wi, w := range fw {
						w = (w&a)<<sh | (w>>sh)&a // permute by 2^d
						if w = w &^ uw[wi] & hi; w != 0 {
							admitted += admitVia(w, wi, m)
						}
					}
				} else {
					// Only words whose index has bit d-6 set hold
					// candidates with node bit d set; stride over them.
					wx := int(m) >> 6
					step := wx // = 1 << (d-6)
					for base := step; base < len(fw); base += 2 * step {
						for wi := base; wi < base+step; wi++ {
							if w := fw[wi^wx] &^ uw[wi]; w != 0 {
								admitted += admitVia(w, wi, m)
							}
						}
					}
				}
			}
			// Phase two: dimensions ascending, candidates with bit d
			// clear (testers v+2^d above them, in ascending order; all
			// phase-one testers were below, so the combined order per
			// candidate is ascending).
			for _, m := range masks {
				if d := uint(bits.TrailingZeros32(uint32(m))); d < 6 {
					lo := deltaSwapMasks[d]
					sh := uint(1) << d
					for wi, w := range fw {
						w = (w&lo)<<sh | (w>>sh)&lo
						if w = w &^ uw[wi] & lo; w != 0 {
							admitted += admitVia(w, wi, m)
						}
					}
				} else {
					wx := int(m) >> 6
					step := wx
					for base := 0; base < len(fw); base += 2 * step {
						for wi := base; wi < base+step; wi++ {
							if w := fw[wi^wx] &^ uw[wi]; w != 0 {
								admitted += admitVia(w, wi, m)
							}
						}
					}
				}
			}
			for _, u := range frontier {
				fw[u>>6] &^= 1 << (uint(u) & 63)
			}
			if admitted == 0 {
				break
			}
			// The new frontier is the U delta against the round-start
			// snapshot, read out in ascending order — the sorted frontier
			// the reference Drain produces, without per-admission set
			// maintenance.
			next = next[:0]
			for wi, w := range uw {
				for d := w &^ pw[wi]; d != 0; d &= d - 1 {
					next = append(next, int32(wi<<6+bits.TrailingZeros64(d)))
				}
			}
		}
		frontier, next = next, frontier
		res.Rounds++
	}
	sc.frontier, sc.next = frontier, next

	// Reconstruct the contributor set: exactly the parents of admitted
	// nodes (a node was marked contributor when it admitted someone, and
	// every admission records its parent). AllHealthy is monotone in the
	// contributor count, so the final count decides it — identical to
	// the per-round checks of the reference pass.
	for wi, w := range uw {
		for ; w != 0; w &= w - 1 {
			if p := parent[wi<<6+bits.TrailingZeros64(w)]; p >= 0 {
				res.Contributors.Add(int(p))
			}
		}
	}
	res.AllHealthy = res.Contributors.Count() > delta
	res.Lookups = l.Lookups() - start
	return res
}
