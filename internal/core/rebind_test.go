package core

import (
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// zeroDegraded strips the churn stamp so degraded-engine Stats can be
// compared whole-struct against the free reference path.
func zeroDegraded(st Stats) Stats {
	st.Degraded = false
	st.EffectiveDelta = 0
	return st
}

// TestRebindDifferential removes random node sets from a hypercube and
// cross-checks three ways of serving the surviving component — the
// rebound engine, a Survivor engine, and the free DiagnoseGraph
// reference on the rebound partition — for identical fault sets, Stats
// and look-up counts, across behaviours.
func TestRebindDifferential(t *testing.T) {
	nw := topology.NewHypercube(8)
	rng := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 12; trial++ {
		base := NewEngine(nw)
		eng := NewEngine(nw)
		k := 1 + rng.Intn(12)
		seen := map[int32]bool{}
		var nodes []int32
		for len(nodes) < k {
			u := int32(rng.Intn(nw.Graph().N()))
			if !seen[u] {
				seen[u] = true
				nodes = append(nodes, u)
			}
		}
		rr := eng.Graph().RemoveNodes(nodes)
		surv, repS, err := base.Survivor(rr)
		if err != nil {
			t.Fatalf("trial %d: Survivor: %v", trial, err)
		}
		rep, err := eng.Rebind(rr)
		if err != nil {
			t.Fatalf("trial %d: Rebind: %v", trial, err)
		}
		if *rep != *repS {
			t.Fatalf("trial %d: Rebind report %+v != Survivor report %+v", trial, rep, repS)
		}
		if !eng.Degraded() || !surv.Degraded() {
			t.Fatalf("trial %d: churned engines must report Degraded", trial)
		}
		if eng.Diagnosability() != rep.EffectiveDelta {
			t.Fatalf("trial %d: Diagnosability() = %d, want report δ′ %d", trial, eng.Diagnosability(), rep.EffectiveDelta)
		}
		if base.Degraded() || base.Diagnosability() != nw.Diagnosability() {
			t.Fatalf("trial %d: Survivor mutated its source engine", trial)
		}
		parts, perr := eng.Parts()
		if perr != nil {
			t.Fatalf("trial %d: rebound engine unservable: %v", trial, perr)
		}
		delta2 := eng.Diagnosability()
		g2 := eng.Graph()
		for _, b := range []syndrome.Behavior{syndrome.Mimic{}, syndrome.Random{Seed: uint64(trial)}} {
			F := syndrome.RandomFaults(g2.N(), rng.Intn(delta2+1), rng)
			f1, st1, err1 := eng.Diagnose(syndrome.NewLazy(F, b))
			f2, st2, err2 := surv.Diagnose(syndrome.NewLazy(F, b))
			f3, st3, err3 := DiagnoseGraph(g2, delta2, parts, syndrome.NewLazy(F, b), Options{})
			if err1 != nil || err2 != nil || err3 != nil {
				t.Fatalf("trial %d: errs %v / %v / %v", trial, err1, err2, err3)
			}
			if !f1.Equal(F) {
				t.Fatalf("trial %d: rebound engine diagnosed %v, want hypothesis %v", trial, f1, F)
			}
			if !f1.Equal(f2) || !f1.Equal(f3) {
				t.Fatalf("trial %d: fault sets diverge across serving paths", trial)
			}
			if !st1.Degraded || st1.EffectiveDelta != delta2 {
				t.Fatalf("trial %d: missing degraded stamp: %+v", trial, st1)
			}
			if *st1 != *st2 {
				t.Fatalf("trial %d: rebound stats %+v != survivor stats %+v", trial, st1, st2)
			}
			if st3.Degraded || st3.EffectiveDelta != 0 {
				t.Fatalf("trial %d: free path must not be stamped degraded: %+v", trial, st3)
			}
			if zeroDegraded(*st1) != *st3 {
				t.Fatalf("trial %d: engine stats %+v != reference stats %+v", trial, st1, st3)
			}
		}
	}
}

// TestRebindChainComposes applies two successive removals through
// Rebind and checks the twice-degraded engine still diagnoses its
// hypotheses exactly.
func TestRebindChainComposes(t *testing.T) {
	eng := NewEngine(topology.NewHypercube(8))
	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 2; step++ {
		rr := eng.Graph().RemoveNodes([]int32{int32(rng.Intn(eng.Graph().N()))})
		if _, err := eng.Rebind(rr); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	delta2 := eng.Diagnosability()
	if delta2 <= 0 {
		t.Fatalf("δ′ = %d after two single-node removals, want positive", delta2)
	}
	for trial := 0; trial < 8; trial++ {
		F := syndrome.RandomFaults(eng.Graph().N(), rng.Intn(delta2+1), rng)
		got, st, err := eng.Diagnose(syndrome.NewLazy(F, syndrome.Mimic{}))
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(F) || !st.Degraded {
			t.Fatalf("trial %d: got %v (degraded=%v), want %v", trial, got, st.Degraded, F)
		}
	}
}

// TestRebindEmptyRemovalIsClean checks a no-op removal neither degrades
// the engine nor drops its structure kernel.
func TestRebindEmptyRemovalIsClean(t *testing.T) {
	nw := topology.NewHypercube(7)
	eng := NewEngine(nw)
	kern := eng.KernelName()
	if kern == "generic" {
		t.Fatal("hypercube engine should bind a structure kernel")
	}
	rep, err := eng.Rebind(eng.Graph().Remove(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if eng.Degraded() || rep.EffectiveDelta != nw.Diagnosability() {
		t.Fatalf("empty removal degraded the engine: %+v", rep)
	}
	if eng.KernelName() != kern || rep.KernelFallbackReason != "" {
		t.Fatalf("empty removal dropped the kernel: %s -> %s (%s)", kern, eng.KernelName(), rep.KernelFallbackReason)
	}
	_, st, err := eng.Diagnose(syndrome.NewLazy(bitset.New(eng.Graph().N()), syndrome.Mimic{}))
	if err != nil {
		t.Fatal(err)
	}
	if st.Degraded || st.EffectiveDelta != 0 {
		t.Fatalf("non-degraded engine stamped stats: %+v", st)
	}
}

// TestRebindCayleyFallback checks that node churn on a Cayley topology
// drops the structure kernel with a logged reason (the XOR descriptor
// cannot describe a punctured hypercube).
func TestRebindCayleyFallback(t *testing.T) {
	eng := NewEngine(topology.NewHypercube(7))
	before := eng.KernelName()
	rep, err := eng.Rebind(eng.Graph().RemoveNodes([]int32{3}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.KernelBefore != before || rep.KernelAfter != "generic" || eng.KernelName() != "generic" {
		t.Fatalf("want kernel %s -> generic, got %s -> %s", before, rep.KernelBefore, rep.KernelAfter)
	}
	if !strings.Contains(rep.KernelFallbackReason, "no longer verifies") {
		t.Fatalf("want a fallback reason, got %q", rep.KernelFallbackReason)
	}
}

// TestRebindRejectsStaleRemoval checks a removal built from a different
// graph generation fails without mutating the engine.
func TestRebindRejectsStaleRemoval(t *testing.T) {
	eng := NewEngine(topology.NewHypercube(7))
	rr := eng.Graph().RemoveNodes([]int32{0})
	if _, err := eng.Rebind(rr); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Rebind(rr); err == nil {
		t.Fatal("stale removal (old-generation id map) must be rejected")
	}
}

// TestRebindCacheFlushAndRemap checks ResultCache.Rebind keeps exactly
// the surviving entries — remapped into new-id space and served as
// post-churn hits — and flushes entries touching removed ids.
func TestRebindCacheFlushAndRemap(t *testing.T) {
	nw := topology.NewHypercube(8)
	eng := NewEngine(nw)
	cache := NewResultCache(64)
	g := eng.Graph()
	removed := int32(5)

	// Hypothesis A contains the node about to be removed; B does not.
	A := bitset.FromMembers(g.N(), []int32{removed, 9})
	B := bitset.FromMembers(g.N(), []int32{100, 200})
	opt := Options{ResultCache: cache}
	if _, _, err := eng.DiagnoseOpts(syndrome.NewLazy(A, syndrome.Mimic{}), opt); err != nil {
		t.Fatal(err)
	}
	if _, st, err := eng.DiagnoseOpts(syndrome.NewLazy(B, syndrome.Mimic{}), opt); err != nil || st.Degraded {
		t.Fatalf("prime B: err=%v degraded=%v", err, st.Degraded)
	}
	if cs := cache.Stats(); cs.Entries != 2 {
		t.Fatalf("primed cache has %d entries, want 2", cs.Entries)
	}

	rr := g.RemoveNodes([]int32{removed})
	rep, err := eng.Rebind(rr, cache)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheFlushed != 1 || rep.CacheKept != 1 {
		t.Fatalf("cache census flushed=%d kept=%d, want 1/1", rep.CacheFlushed, rep.CacheKept)
	}

	// B remapped into new-id space must now be a hit with remapped
	// faults and the degraded stamp.
	B2, ok := remapSet(B, rr.OldToNew, eng.Graph().N())
	if !ok {
		t.Fatal("B should survive the removal")
	}
	before := cache.Stats()
	faults, st, err := eng.DiagnoseOpts(syndrome.NewLazy(B2, syndrome.Mimic{}), opt)
	if err != nil {
		t.Fatal(err)
	}
	if after := cache.Stats(); after.Hits != before.Hits+1 {
		t.Fatalf("remapped entry missed: %+v -> %+v", before, after)
	}
	if !faults.Equal(B2) {
		t.Fatalf("remapped hit returned %v, want %v", faults, B2)
	}
	if !st.Degraded || st.EffectiveDelta != eng.Diagnosability() || st.Delta != eng.Diagnosability() {
		t.Fatalf("remapped hit not stamped for the degraded binding: %+v", st)
	}

	// The flushed hypothesis (remapped is impossible — it contained the
	// removed node) re-diagnoses as a miss under the new epoch.
	A2 := bitset.FromMembers(eng.Graph().N(), []int32{1, 2})
	before = cache.Stats()
	if _, _, err := eng.DiagnoseOpts(syndrome.NewLazy(A2, syndrome.Mimic{}), opt); err != nil {
		t.Fatal(err)
	}
	if after := cache.Stats(); after.Misses != before.Misses+1 {
		t.Fatalf("fresh hypothesis after rebind should miss: %+v -> %+v", before, after)
	}
}

// TestCacheAdmitOnSecondSight pins the admission policy: first sighting
// bypasses, second sighting admits, third is a hit.
func TestCacheAdmitOnSecondSight(t *testing.T) {
	eng := NewEngine(topology.NewHypercube(7))
	cache := NewResultCacheWithAdmission(32, true)
	F := syndrome.RandomFaults(eng.Graph().N(), 3, rand.New(rand.NewSource(1)))
	opt := Options{ResultCache: cache}
	for i := 0; i < 3; i++ {
		if _, _, err := eng.DiagnoseOpts(syndrome.NewLazy(F, syndrome.Mimic{}), opt); err != nil {
			t.Fatal(err)
		}
	}
	cs := cache.Stats()
	if cs.Bypassed != 1 || cs.Entries != 1 || cs.Hits != 1 || cs.Misses != 2 {
		t.Fatalf("admission counters %+v, want bypassed=1 entries=1 hits=1 misses=2", cs)
	}
	// Default policy stays bypass-free.
	if ds := NewResultCache(8).Stats(); ds.Bypassed != 0 {
		t.Fatalf("default cache reports bypasses: %+v", ds)
	}
}

// TestDiagnoseDuringRebindRace hammers concurrent Diagnose and
// DiagnoseBatch calls against successive Rebinds; correctness of each
// individual answer is checked elsewhere — this test exists for the
// race detector and asserts only that served calls stay internally
// consistent.
func TestDiagnoseDuringRebindRace(t *testing.T) {
	eng := NewEngine(topology.NewHypercube(8))
	cache := NewResultCache(128)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// The binding loaded inside Diagnose may be newer
				// (smaller) than g — ids stay in range either way, and
				// any outcome is acceptable under a torn snapshot.
				g := eng.Graph()
				F := syndrome.RandomFaults(g.N(), rng.Intn(4), rng)
				if i%3 == 0 {
					eng.DiagnoseBatch([]syndrome.Syndrome{
						syndrome.NewLazy(F, syndrome.Mimic{}),
						syndrome.NewLazy(F, syndrome.Mimic{}),
					}, BatchOptions{ShareCertification: true, ShareFinalPrefix: true})
					continue
				}
				eng.DiagnoseOpts(syndrome.NewLazy(F, syndrome.Mimic{}), Options{ResultCache: cache})
			}
		}(int64(w))
	}
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 6; round++ {
		g := eng.Graph()
		rr := g.RemoveNodes([]int32{int32(rng.Intn(g.N()))})
		if _, err := eng.Rebind(rr, cache); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	close(stop)
	wg.Wait()
	if !eng.Degraded() {
		t.Fatal("engine should be degraded after the churn rounds")
	}
}

// TestRebindNoSurvivingPartition drives the budget to exhaustion and
// checks the engine keeps serving δ′ = 0 (or reports the sentinel when
// even that is impossible) instead of panicking.
func TestRebindNoSurvivingPartition(t *testing.T) {
	eng := NewEngine(topology.NewHypercube(6))
	rng := rand.New(rand.NewSource(11))
	for eng.Graph().N() > 8 {
		g := eng.Graph()
		var nodes []int32
		seen := map[int32]bool{}
		for len(nodes) < 4 {
			u := int32(rng.Intn(g.N()))
			if !seen[u] {
				seen[u] = true
				nodes = append(nodes, u)
			}
		}
		if _, err := eng.Rebind(g.RemoveNodes(nodes)); err != nil {
			t.Fatal(err)
		}
		if perr := eng.PartsErr(); perr != nil {
			if !errors.Is(perr, ErrNoSurvivingPartition) {
				t.Fatalf("unexpected parts error: %v", perr)
			}
			if _, _, derr := eng.Diagnose(syndrome.NewLazy(bitset.New(eng.Graph().N()), syndrome.Mimic{})); !errors.Is(derr, ErrNoSurvivingPartition) {
				t.Fatalf("unservable engine should wrap the sentinel, got %v", derr)
			}
			return
		}
	}
	// All the way down to ≤ 8 nodes the partition kept shrinking but
	// serving: that is also a pass (δ′ reached the floor gracefully).
	if eng.Diagnosability() < 0 {
		t.Fatal("δ′ went negative")
	}
}

// TestRebindWarmDiagnoseZeroAlloc checks the steady-state scratch path
// stays allocation-free after a rebind.
func TestRebindWarmDiagnoseZeroAlloc(t *testing.T) {
	eng := NewEngine(topology.NewHypercube(8))
	if _, err := eng.Rebind(eng.Graph().RemoveNodes([]int32{17, 42})); err != nil {
		t.Fatal(err)
	}
	g := eng.Graph()
	F := syndrome.RandomFaults(g.N(), eng.Diagnosability(), rand.New(rand.NewSource(3)))
	s := syndrome.NewLazy(F, syndrome.Mimic{})
	sc := eng.AcquireScratch()
	defer eng.ReleaseScratch(sc)
	opt := Options{Scratch: sc}
	if _, _, err := eng.DiagnoseOpts(s, opt); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, _, err := eng.DiagnoseOpts(s, opt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm diagnose after rebind allocates %.1f per op, want 0", allocs)
	}
}
