package core

import (
	"errors"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/graph"
	"comparisondiag/internal/syndrome"
)

// ErrNoConsistentCandidate means no candidate fault set of size ≤ δ was
// consistent with the syndrome — the syndrome was produced by more than
// δ faults, or the graph is not δ-diagnosable.
var ErrNoConsistentCandidate = errors.New("core: no consistent fault hypothesis of size ≤ δ found")

// DiagnoseWithVerification solves the fault diagnosis problem without a
// partition: it seeds Set_Builder at successive nodes, forms the
// candidate fault set N(U_r), and accepts the first candidate that is
// fully consistent with the syndrome. Because the true fault set is the
// unique consistent hypothesis of size ≤ δ on a δ-diagnosable graph, an
// accepted candidate is exact.
//
// Among any δ+1 distinct seeds at least one is healthy, and a healthy
// seed on a graph with κ ≥ δ yields the true fault set (Theorem 1), so
// typically only a handful of seeds are tried. Each verification costs a
// full syndrome sweep, so this is the expensive fallback for instances
// whose partition precondition is unsatisfiable (gap G3: (n,2)-stars,
// A_{n,2}, AQ_7, …); prefer Diagnose whenever a partition exists.
func DiagnoseWithVerification(g *graph.Graph, delta int, s syndrome.Syndrome) (*bitset.Set, error) {
	sc := getScratch(g.N())
	defer putScratch(sc)
	cand := sc.faultsBuf()
	for u0 := int32(0); int(u0) < g.N(); u0++ {
		r := SetBuilderInto(sc, g, s, u0, delta, nil)
		g.NeighborsOfSetInto(r.U, cand)
		if cand.Count() > delta {
			continue
		}
		if syndrome.Consistent(g, s, cand) {
			return cand.Clone(), nil
		}
	}
	return nil, ErrNoConsistentCandidate
}
