package core

import (
	"errors"
	"math/rand"
	"testing"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// sharedFinalBehaviors is the behaviour panel grouped-batch tests
// replay one hypothesis under.
func sharedFinalBehaviors() []syndrome.Behavior {
	return []syndrome.Behavior{
		syndrome.Mimic{}, syndrome.AllZero{}, syndrome.AllOne{},
		syndrome.Inverted{}, syndrome.Random{Seed: 11},
	}
}

// checkSharedFinalGroup runs one fault hypothesis through a grouped
// DiagnoseBatch on the given network/engine and pins the
// ShareFinalPrefix contract against the paper-literal free functions:
//
//   - fault sets, errors and the shape fields of Stats (Seed, Rounds,
//     HealthyCount, FaultCount, CertifiedPart) bit-identical;
//   - prefix look-ups attributed once (to the representative), members
//     reporting the delta: member.FinalLookups +
//     member.SharedFinalLookups == free.FinalLookups, and the member's
//     own syndrome consulted exactly TotalLookups times;
//   - the group-total look-ups strictly below the unshared total
//     whenever a non-empty prefix was shared.
func checkSharedFinalGroup(t *testing.T, nw topology.Network, eng *Engine, F *bitset.Set, bopt BatchOptions) {
	t.Helper()
	behaviors := sharedFinalBehaviors()
	var syns, refs []syndrome.Syndrome
	for _, b := range behaviors {
		syns = append(syns, syndrome.NewLazy(F, b))
		refs = append(refs, syndrome.NewLazy(F, b))
	}
	bopt.ShareFinalPrefix = true
	results := eng.DiagnoseBatch(syns, bopt)

	var freeTotal, groupTotal int64
	sharedAny := false
	for i, r := range results {
		want, wantStats, wantErr := Diagnose(nw, refs[i])
		if (r.Err == nil) != (wantErr == nil) || (wantErr != nil && !errors.Is(r.Err, wantErr)) {
			t.Fatalf("syndrome %d (%s): err %v, free function %v", i, behaviors[i].Name(), r.Err, wantErr)
		}
		if wantErr == nil && !r.Faults.Equal(want) {
			t.Fatalf("syndrome %d (%s): fault set differs from free function", i, behaviors[i].Name())
		}
		freeTotal += refs[i].Lookups()
		groupTotal += syns[i].Lookups()
		if i == 0 {
			// The representative pays the full, canonical run.
			if wantStats != nil && r.Stats != *wantStats {
				t.Fatalf("representative stats %+v differ from free-function %+v", r.Stats, *wantStats)
			}
			if syns[i].Lookups() != refs[i].Lookups() {
				t.Fatalf("representative look-up counter diverged: %d vs %d", syns[i].Lookups(), refs[i].Lookups())
			}
			continue
		}
		st := r.Stats
		if wantStats == nil {
			continue
		}
		if st.Seed != wantStats.Seed || st.Rounds != wantStats.Rounds ||
			st.HealthyCount != wantStats.HealthyCount || st.FaultCount != wantStats.FaultCount ||
			st.CertifiedPart != wantStats.CertifiedPart || st.Delta != wantStats.Delta {
			t.Fatalf("syndrome %d (%s): shape stats %+v differ from free function %+v", i, behaviors[i].Name(), st, *wantStats)
		}
		if st.FinalLookups+st.SharedFinalLookups != wantStats.FinalLookups {
			t.Fatalf("syndrome %d (%s): member final %d + shared prefix %d ≠ free final %d",
				i, behaviors[i].Name(), st.FinalLookups, st.SharedFinalLookups, wantStats.FinalLookups)
		}
		if st.SharedFinalRounds < 0 || st.SharedFinalRounds > st.Rounds {
			t.Fatalf("syndrome %d: shared rounds %d outside [0, %d]", i, st.SharedFinalRounds, st.Rounds)
		}
		if st.TotalLookups != st.CertLookups+st.FinalLookups {
			t.Fatalf("syndrome %d: total %d ≠ cert %d + final %d", i, st.TotalLookups, st.CertLookups, st.FinalLookups)
		}
		if syns[i].Lookups() != st.TotalLookups {
			t.Fatalf("syndrome %d: syndrome consulted %d times, stats report %d", i, syns[i].Lookups(), st.TotalLookups)
		}
		if bopt.ShareCertification {
			if st.CertLookups != 0 {
				t.Fatalf("syndrome %d: member spent %d certification look-ups with shared scans", i, st.CertLookups)
			}
		} else if st.CertLookups != wantStats.CertLookups {
			t.Fatalf("syndrome %d: unshared-scan member cert %d ≠ free %d", i, st.CertLookups, wantStats.CertLookups)
		}
		if st.SharedFinalLookups > 0 {
			sharedAny = true
		}
	}
	if sharedAny && groupTotal >= freeTotal {
		t.Fatalf("group total %d look-ups not below unshared total %d despite a shared prefix", groupTotal, freeTotal)
	}
}

// TestShareFinalPrefixAccounting pins the shared-final-prefix contract
// on a kernel-bound engine (Q9: xor-cayley) for a far-clustered
// hypothesis — the workload with a long behaviour-independent prefix —
// with and without composed certification sharing.
func TestShareFinalPrefixAccounting(t *testing.T) {
	nw := topology.NewHypercube(9)
	g := nw.Graph()
	eng := NewEngine(nw)
	parts, err := eng.Parts()
	if err != nil {
		t.Fatal(err)
	}
	// Faults clustered around the complement of the first part's seed:
	// far from the certified seed, so several rounds stay clean.
	center := parts[0].Seed ^ int32(g.N()-1)
	F := syndrome.ClusterFaults(g, center, nw.Diagnosability())

	t.Run("final-only", func(t *testing.T) {
		checkSharedFinalGroup(t, nw, eng, F, BatchOptions{})
	})
	t.Run("with-shared-cert", func(t *testing.T) {
		checkSharedFinalGroup(t, nw, eng, F, BatchOptions{ShareCertification: true})
	})
}

// TestShareFinalPrefixGenericAndKernels pins the contract across every
// final-pass driver: the generic adaptive sweep (GenericFinal), the
// xor-cayley kernel (Q8), the additive-rotate kernel (k-ary torus) and
// the mixed-radix kernel (augmented k-ary), under random fault loads.
func TestShareFinalPrefixGenericAndKernels(t *testing.T) {
	cases := []struct {
		name    string
		nw      topology.Network
		generic bool
	}{
		{"q8-kernel", topology.NewHypercube(8), false},
		{"q8-generic", topology.NewHypercube(8), true},
		{"kary4x4-additive", topology.NewKAryNCube(4, 4), false},
		{"akary4x4-mixedradix", topology.NewAugmentedKAryNCube(4, 4), false},
		{"star6-generic", topology.NewStar(6), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := NewEngine(tc.nw)
			g := tc.nw.Graph()
			rng := rand.New(rand.NewSource(77))
			for trial := 0; trial < 3; trial++ {
				f := 1 + rng.Intn(tc.nw.Diagnosability())
				F := syndrome.RandomFaults(g.N(), f, rng)
				bopt := BatchOptions{ShareCertification: true, Options: Options{GenericFinal: tc.generic}}
				checkSharedFinalGroup(t, tc.nw, eng, F, bopt)
			}
		})
	}
}

// TestShareFinalPrefixCompletePrefix pins the clean-to-termination
// case: the empty hypothesis's final pass never touches a hazard, so
// members adopt the whole result and consult the syndrome only for
// their (shared or own) certification scan.
func TestShareFinalPrefixCompletePrefix(t *testing.T) {
	nw := topology.NewHypercube(8)
	eng := NewEngine(nw)
	F := bitset.New(nw.Graph().N())
	checkSharedFinalGroup(t, nw, eng, F, BatchOptions{ShareCertification: true})

	// Directly: members of the empty hypothesis report zero final
	// look-ups of their own.
	var syns []syndrome.Syndrome
	for _, b := range sharedFinalBehaviors() {
		syns = append(syns, syndrome.NewLazy(F, b))
	}
	results := eng.DiagnoseBatch(syns, BatchOptions{ShareCertification: true, ShareFinalPrefix: true})
	for i, r := range results[1:] {
		if r.Err != nil {
			t.Fatalf("member %d: %v", i+1, r.Err)
		}
		if r.Stats.FinalLookups != 0 || r.Stats.SharedFinalLookups == 0 {
			t.Fatalf("member %d: final %d, shared %d; want complete prefix adoption",
				i+1, r.Stats.FinalLookups, r.Stats.SharedFinalLookups)
		}
		if r.Stats.TotalLookups != 0 || syns[i+1].Lookups() != 0 {
			t.Fatalf("member %d consulted its syndrome %d times, want 0", i+1, syns[i+1].Lookups())
		}
	}
}

// TestShareFinalPrefixHazardousSeed pins the empty-prefix case: when
// the certified seed itself borders a fault, even the pair scan is
// hazardous, no checkpoint is recorded, and members run (and account
// for) their full final pass.
func TestShareFinalPrefixHazardousSeed(t *testing.T) {
	nw := topology.NewHypercube(8)
	g := nw.Graph()
	eng := NewEngine(nw)
	parts, err := eng.Parts()
	if err != nil {
		t.Fatal(err)
	}
	// One fault adjacent to the certified part's seed, placed outside
	// every candidate part... the seed's lowest-bit neighbour is in the
	// same part for the range partition, so certification moves on; use
	// a neighbour across the top dimension instead, which lives far
	// outside part 0's id range.
	seed0 := parts[0].Seed
	F := bitset.New(g.N())
	F.Add(int(seed0) ^ (g.N() >> 1))

	// The general contract still holds (members simply share nothing)…
	checkSharedFinalGroup(t, nw, eng, F, BatchOptions{ShareCertification: true})

	// …and if part 0 still certified (the fault lives elsewhere), the
	// hazardous seed must have suppressed the checkpoint entirely.
	var syns []syndrome.Syndrome
	for _, b := range sharedFinalBehaviors() {
		syns = append(syns, syndrome.NewLazy(F, b))
	}
	results := eng.DiagnoseBatch(syns, BatchOptions{ShareCertification: true, ShareFinalPrefix: true})
	if results[0].Err == nil && results[0].Stats.CertifiedPart == 0 {
		for i, r := range results[1:] {
			if r.Stats.SharedFinalLookups != 0 || r.Stats.SharedFinalRounds != 0 {
				t.Fatalf("member %d adopted a prefix (%d look-ups) from a hazardous seed",
					i+1, r.Stats.SharedFinalLookups)
			}
		}
	}
}

// TestShareFinalPrefixOnExternalPool pins the BatchPool plumbing: the
// two-phase grouped batch with prefix sharing behaves identically on a
// caller-supplied pool (the campaign.Runtime shape).
func TestShareFinalPrefixOnExternalPool(t *testing.T) {
	nw := topology.NewHypercube(8)
	delta := nw.Diagnosability()
	g := nw.Graph()
	eng := NewEngine(nw)
	F := syndrome.ClusterFaults(g, int32(g.N()-1), delta)
	var syns, refs []syndrome.Syndrome
	for _, b := range sharedFinalBehaviors() {
		syns = append(syns, syndrome.NewLazy(F, b))
		refs = append(refs, syndrome.NewLazy(F, b))
	}
	results := eng.DiagnoseBatch(syns, BatchOptions{
		ShareCertification: true, ShareFinalPrefix: true, Pool: seqPool{eng},
	})
	shared := false
	for i, r := range results {
		want, _, wantErr := Diagnose(nw, refs[i])
		if (r.Err == nil) != (wantErr == nil) || (wantErr == nil && !r.Faults.Equal(want)) {
			t.Fatalf("syndrome %d: pooled prefix-shared batch diverged", i)
		}
		if i > 0 && r.Stats.SharedFinalLookups > 0 {
			shared = true
		}
	}
	if !shared {
		t.Fatal("no member adopted a prefix on the external pool")
	}
}

// TestShareFinalPrefixWarmCache pins the cache composition: when the
// group representative is served from a warm result cache, no
// checkpoint gets recorded — members then have no prefix to adopt, so
// they must fall back to the cache themselves (their runs would be
// fully canonical) instead of degrading to full diagnoses.
func TestShareFinalPrefixWarmCache(t *testing.T) {
	nw := topology.NewHypercube(8)
	g := nw.Graph()
	eng := NewEngine(nw)
	F := syndrome.ClusterFaults(g, int32(g.N()-1), nw.Diagnosability())
	cache := NewResultCache(32)
	makeSyns := func() []syndrome.Syndrome {
		var syns []syndrome.Syndrome
		for _, b := range sharedFinalBehaviors() {
			syns = append(syns, syndrome.NewLazy(F, b))
		}
		return syns
	}

	// Warm the cache with every (hypothesis, behaviour) key.
	warm := makeSyns()
	for i, r := range eng.DiagnoseBatch(warm, BatchOptions{Options: Options{ResultCache: cache}}) {
		if r.Err != nil {
			t.Fatalf("warm-up %d: %v", i, r.Err)
		}
	}

	syns := makeSyns()
	results := eng.DiagnoseBatch(syns, BatchOptions{
		ShareFinalPrefix: true, Options: Options{ResultCache: cache},
	})
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("syndrome %d: %v", i, r.Err)
		}
		if !r.Faults.Equal(warm[i].(*syndrome.Lazy).Faults()) && r.Stats.FaultCount > 0 {
			t.Fatalf("syndrome %d: cached grouped batch misdiagnosed", i)
		}
		if got := syns[i].Lookups(); got != 0 {
			t.Fatalf("syndrome %d consulted %d look-ups on a warm cache, want 0", i, got)
		}
	}
}
