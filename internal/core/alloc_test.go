package core

import (
	"math/rand"
	"testing"

	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// TestSetBuilderIntoZeroAllocs pins the hot-path contract: on a warm
// scratch, SetBuilderInto performs no heap allocation.
func TestSetBuilderIntoZeroAllocs(t *testing.T) {
	nw := topology.NewHypercube(10)
	g := nw.Graph()
	delta := nw.Diagnosability()
	F := syndrome.RandomFaults(g.N(), delta, rand.New(rand.NewSource(1)))
	s := syndrome.NewLazy(F, syndrome.Mimic{})
	seed := int32(0)
	for F.Contains(int(seed)) {
		seed++
	}
	sc := NewScratch(g.N())
	// Warm the scratch so the frontier buffers reach their steady-state
	// capacity.
	SetBuilderInto(sc, g, s, seed, delta, nil)

	allocs := testing.AllocsPerRun(20, func() {
		r := SetBuilderInto(sc, g, s, seed, delta, nil)
		if r.U.Count() == 0 {
			t.Fatal("empty result")
		}
	})
	if allocs != 0 {
		t.Fatalf("SetBuilderInto on warm scratch allocated %.1f objects/op, want 0", allocs)
	}
}

// TestDiagnoseWarmScratchZeroAllocs pins the end-to-end contract: with
// caller-supplied Parts and Scratch, a sequential DiagnoseOpts performs
// no heap allocation in steady state.
func TestDiagnoseWarmScratchZeroAllocs(t *testing.T) {
	nw := topology.NewHypercube(10)
	delta := nw.Diagnosability()
	parts, err := nw.Parts(delta+1, delta+1)
	if err != nil {
		t.Fatal(err)
	}
	F := syndrome.RandomFaults(nw.Graph().N(), delta, rand.New(rand.NewSource(2)))
	s := syndrome.NewLazy(F, syndrome.Mimic{})
	opt := Options{Parts: parts, Scratch: NewScratch(nw.Graph().N())}
	// Warm run.
	if _, _, err := DiagnoseOpts(nw, s, opt); err != nil {
		t.Fatal(err)
	}

	allocs := testing.AllocsPerRun(20, func() {
		got, _, err := DiagnoseOpts(nw, s, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(F) {
			t.Fatal("misdiagnosis")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm DiagnoseOpts allocated %.1f objects/op, want 0", allocs)
	}
}

// TestScratchResultsMatchAllocatingAPI checks that the scratch-reusing
// path is behaviourally identical to the allocating wrappers: same
// fault set, same stats, same look-up count — the paper's look-up
// economy must be bit-for-bit preserved by the reuse machinery.
func TestScratchResultsMatchAllocatingAPI(t *testing.T) {
	for _, trial := range []int64{1, 2, 3, 4, 5} {
		nw := topology.NewHypercube(8)
		delta := nw.Diagnosability()
		F := syndrome.RandomFaults(nw.Graph().N(), delta, rand.New(rand.NewSource(trial)))

		s1 := syndrome.NewLazy(F, syndrome.Mimic{})
		f1, st1, err1 := DiagnoseOpts(nw, s1, Options{})

		parts, err := nw.Parts(delta+1, delta+1)
		if err != nil {
			t.Fatal(err)
		}
		s2 := syndrome.NewLazy(F, syndrome.Mimic{})
		sc := NewScratch(nw.Graph().N())
		f2, st2, err2 := DiagnoseOpts(nw, s2, Options{Parts: parts, Scratch: sc})

		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: error mismatch: %v vs %v", trial, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if !f1.Equal(f2) {
			t.Fatalf("trial %d: fault sets differ: %v vs %v", trial, f1, f2)
		}
		if *st1 != *st2 {
			t.Fatalf("trial %d: stats differ: %+v vs %+v", trial, st1, st2)
		}
		if s1.Lookups() != s2.Lookups() {
			t.Fatalf("trial %d: lookups differ: %d vs %d", trial, s1.Lookups(), s2.Lookups())
		}
	}
}
