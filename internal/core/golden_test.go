package core

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// The golden tier: small committed fixtures of (topology, fault set,
// behaviour) → expected fault set and per-phase look-up counts,
// replayed against both the paper-literal free functions and the
// engine serving path. Because every final-pass kernel is defined to
// be result- and look-up-identical to the reference, a refactor of the
// final pass that changes any golden number is a visible diff in
// testdata/golden/, not a silent drift.
//
// Regenerate with:
//
//	go test ./internal/core -run Golden -update-golden

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden fixtures from the current implementation")

// goldenStats is the pinned cost profile: the Stats shape fields plus
// the per-phase look-up split.
type goldenStats struct {
	Delta         int   `json:"delta"`
	PartsScanned  int   `json:"partsScanned"`
	CertifiedPart int   `json:"certifiedPart"`
	Seed          int32 `json:"seed"`
	HealthyCount  int   `json:"healthyCount"`
	FaultCount    int   `json:"faultCount"`
	Rounds        int   `json:"rounds"`
	CertLookups   int64 `json:"certLookups"`
	FinalLookups  int64 `json:"finalLookups"`
	TotalLookups  int64 `json:"totalLookups"`

	// Churn stamps: zero on pristine engines, populated by the flap tier
	// of the corpus for the degraded phases.
	Degraded       bool `json:"degraded,omitempty"`
	EffectiveDelta int  `json:"effectiveDelta,omitempty"`
}

type goldenFixture struct {
	Net          string  `json:"net"`
	Faults       []int32 `json:"faults"`
	Behavior     string  `json:"behavior"`
	BehaviorSeed uint64  `json:"behaviorSeed,omitempty"`

	WantErr    string      `json:"wantErr,omitempty"`
	WantFaults []int32     `json:"wantFaults,omitempty"`
	WantStats  goldenStats `json:"wantStats"`
}

// goldenCases defines the corpus: a declared family per kernel
// (xor-cayley, multi-bit, additive-rotate, mixed-radix), a generic
// permutation family, every adversary class, and one beyond-δ refusal.
// The injected fault sets are frozen into the fixtures at -update time.
var goldenCases = []struct {
	name     string
	net      string
	behavior string
	bseed    uint64
	faults   func(nw topology.Network) *bitset.Set
}{
	{"q8-mimic-delta", "q:8", "mimic", 0, randomGolden(1)},
	{"q8-allzero-cluster", "q:8", "allzero", 0, clusterGolden()},
	{"q10-inverted-delta", "q:10", "inverted", 0, randomGolden(2)},
	{"fq7-random-half", "fq:7", "random", 99, halfGolden(3)},
	{"kary4x3-allone", "kary:4,3", "allone", 0, randomGolden(4)},
	{"akary4x4-mimic", "akary:4,4", "mimic", 0, randomGolden(5)},
	{"star6-mimic", "star:6", "mimic", 0, randomGolden(6)},
	{"q8-empty", "q:8", "mimic", 0, func(nw topology.Network) *bitset.Set {
		return bitset.New(nw.Graph().N())
	}},
	{"q8-beyond-delta", "q:8", "allzero", 0, func(nw topology.Network) *bitset.Set {
		// The extremal neighbourhood configuration beyond the bound:
		// a refusal, pinned error string included.
		return syndrome.NeighborhoodFaults(nw.Graph(), 0, nw.Diagnosability()+2)
	}},
}

func randomGolden(seed int64) func(topology.Network) *bitset.Set {
	return func(nw topology.Network) *bitset.Set {
		return syndrome.RandomFaults(nw.Graph().N(), nw.Diagnosability(), rand.New(rand.NewSource(seed)))
	}
}

func halfGolden(seed int64) func(topology.Network) *bitset.Set {
	return func(nw topology.Network) *bitset.Set {
		return syndrome.RandomFaults(nw.Graph().N(), nw.Diagnosability()/2, rand.New(rand.NewSource(seed)))
	}
}

func clusterGolden() func(topology.Network) *bitset.Set {
	return func(nw topology.Network) *bitset.Set {
		return syndrome.ClusterFaults(nw.Graph(), int32(nw.Graph().N()-1), nw.Diagnosability())
	}
}

func goldenBehavior(name string, seed uint64) syndrome.Behavior {
	switch name {
	case "allzero":
		return syndrome.AllZero{}
	case "allone":
		return syndrome.AllOne{}
	case "mimic":
		return syndrome.Mimic{}
	case "inverted":
		return syndrome.Inverted{}
	case "random":
		return syndrome.Random{Seed: seed}
	}
	panic("unknown golden behaviour " + name)
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".json")
}

func statsToGolden(st *Stats) goldenStats {
	if st == nil {
		return goldenStats{}
	}
	return goldenStats{
		Delta: st.Delta, PartsScanned: st.PartsScanned, CertifiedPart: st.CertifiedPart,
		Seed: st.Seed, HealthyCount: st.HealthyCount, FaultCount: st.FaultCount,
		Rounds: st.Rounds, CertLookups: st.CertLookups, FinalLookups: st.FinalLookups,
		TotalLookups: st.TotalLookups,
		Degraded:     st.Degraded, EffectiveDelta: st.EffectiveDelta,
	}
}

// TestGoldenSyndromes replays the committed corpus through the free
// functions and the engine and compares field by field.
func TestGoldenSyndromes(t *testing.T) {
	if *updateGolden {
		writeGoldenFixtures(t)
	}
	files, err := filepath.Glob(goldenPath("*"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no golden fixtures found (%v); run with -update-golden to create them", err)
	}
	for _, path := range files {
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		t.Run(name, func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var fx goldenFixture
			if err := json.Unmarshal(raw, &fx); err != nil {
				t.Fatal(err)
			}
			nw, err := topology.Parse(fx.Net)
			if err != nil {
				t.Fatal(err)
			}
			F := bitset.FromMembers(nw.Graph().N(), fx.Faults)
			behavior := goldenBehavior(fx.Behavior, fx.BehaviorSeed)

			check := func(label string, got *bitset.Set, st *Stats, err error) {
				t.Helper()
				if fx.WantErr != "" {
					if err == nil || !strings.Contains(err.Error(), fx.WantErr) {
						t.Fatalf("%s: err %v, fixture wants %q", label, err, fx.WantErr)
					}
				} else if err != nil {
					t.Fatalf("%s: unexpected error %v", label, err)
				} else if !got.Equal(bitset.FromMembers(nw.Graph().N(), fx.WantFaults)) {
					t.Fatalf("%s: fault set %v differs from fixture %v", label, got, fx.WantFaults)
				}
				if g := statsToGolden(st); g != fx.WantStats {
					t.Fatalf("%s: stats drifted from golden fixture:\n got %+v\nwant %+v", label, g, fx.WantStats)
				}
			}

			got, st, derr := Diagnose(nw, syndrome.NewLazy(F, behavior))
			check("free", got, st, derr)
			eng := NewEngine(nw)
			got, st, derr = eng.Diagnose(syndrome.NewLazy(F, behavior))
			check("engine["+eng.KernelName()+"]", got, st, derr)
		})
	}
}

// writeGoldenFixtures regenerates the corpus from goldenCases and the
// current free-function implementation.
func writeGoldenFixtures(t *testing.T) {
	t.Helper()
	if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
		t.Fatal(err)
	}
	for _, c := range goldenCases {
		nw, err := topology.Parse(c.net)
		if err != nil {
			t.Fatal(err)
		}
		F := c.faults(nw)
		fx := goldenFixture{
			Net: c.net, Faults: F.Members32(), Behavior: c.behavior, BehaviorSeed: c.bseed,
		}
		got, st, derr := Diagnose(nw, syndrome.NewLazy(F, goldenBehavior(c.behavior, c.bseed)))
		if derr != nil {
			fx.WantErr = derr.Error()
		} else {
			fx.WantFaults = got.Members32()
		}
		fx.WantStats = statsToGolden(st)
		raw, err := json.MarshalIndent(&fx, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(c.name), append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("golden: wrote %s\n", goldenPath(c.name))
	}
}
