package core

import (
	"math/rand"
	"testing"

	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// TestEngineBatchMatchesFreeLoopOnStructuredFamilies is the serving-
// path equivalence pin for the new kernels: Engine.DiagnoseBatch on a
// kernel-bound engine must produce, per syndrome, the same fault set
// and the same look-up count as the looped paper-literal free function.
func TestEngineBatchMatchesFreeLoopOnStructuredFamilies(t *testing.T) {
	nets := []topology.Network{
		topology.NewFoldedHypercube(8),       // xor-cayley[multi-bit]
		topology.NewAugmentedCube(8),         // xor-cayley[multi-bit]
		topology.NewKAryNCube(4, 4),          // additive-rotate, word-aligned
		topology.NewKAryNCube(3, 5),          // additive-rotate, ragged tail
		topology.NewAugmentedKAryNCube(5, 3), // additive-rotate[mixed-radix], ragged tail
		topology.NewAugmentedKAryNCube(4, 4), // additive-rotate[mixed-radix], word-aligned
	}
	const trials = 12
	for _, nw := range nets {
		eng := NewEngine(nw)
		if eng.KernelName() == "generic" {
			t.Fatalf("%s: expected a structure kernel", nw.Name())
		}
		g := nw.Graph()
		delta := nw.Diagnosability()

		syns := make([]syndrome.Syndrome, trials)
		refs := make([]syndrome.Syndrome, trials)
		faults := make([]int, trials)
		for i := range syns {
			f := 1 + i%(delta+2) // spans healthy-dominant through beyond-δ
			faults[i] = f
			F := syndrome.RandomFaults(g.N(), f, rand.New(rand.NewSource(int64(i))))
			syns[i] = syndrome.NewLazy(F, syndrome.Mimic{})
			refs[i] = syndrome.NewLazy(F, syndrome.Mimic{})
		}
		results := eng.DiagnoseBatch(syns, BatchOptions{Workers: 3})
		for i, r := range results {
			want, wantStats, wantErr := Diagnose(nw, refs[i])
			if (r.Err == nil) != (wantErr == nil) {
				t.Fatalf("%s syndrome %d (f=%d): err %v vs %v", nw.Name(), i, faults[i], r.Err, wantErr)
			}
			if wantErr == nil && !r.Faults.Equal(want) {
				t.Fatalf("%s syndrome %d: fault sets differ", nw.Name(), i)
			}
			if wantErr == nil && r.Stats.TotalLookups != wantStats.TotalLookups {
				t.Fatalf("%s syndrome %d: lookups %d vs free-function %d",
					nw.Name(), i, r.Stats.TotalLookups, wantStats.TotalLookups)
			}
			if syns[i].Lookups() != refs[i].Lookups() {
				t.Fatalf("%s syndrome %d: syndrome counters diverged", nw.Name(), i)
			}
		}
	}
}

// TestGenericFinalOptionMatchesKernel pins the ablation knob: with
// Options.GenericFinal the engine must take the generic adaptive pass
// and still produce identical results and look-up counts.
func TestGenericFinalOptionMatchesKernel(t *testing.T) {
	for _, nw := range []topology.Network{
		topology.NewFoldedHypercube(8),
		topology.NewKAryNCube(4, 4),
		topology.NewAugmentedKAryNCube(4, 4),
	} {
		eng := NewEngine(nw)
		delta := nw.Diagnosability()
		for trial := int64(0); trial < 5; trial++ {
			F := syndrome.RandomFaults(nw.Graph().N(), delta, rand.New(rand.NewSource(trial)))
			sKer := syndrome.NewLazy(F, syndrome.Mimic{})
			sGen := syndrome.NewLazy(F, syndrome.Mimic{})
			got, gotStats, err := eng.Diagnose(sKer)
			if err != nil {
				t.Fatal(err)
			}
			want, wantStats, err := eng.DiagnoseOpts(sGen, Options{GenericFinal: true})
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) || gotStats.TotalLookups != wantStats.TotalLookups {
				t.Fatalf("%s trial %d: kernel and generic paths diverge (%d vs %d lookups)",
					nw.Name(), trial, gotStats.TotalLookups, wantStats.TotalLookups)
			}
		}
	}
}

// TestEngineKernelWarmZeroAllocs extends the zero-allocation contract
// to the new kernels: a warm engine Diagnose through the multi-bit XOR
// kernel and the additive-rotate kernel allocates nothing.
func TestEngineKernelWarmZeroAllocs(t *testing.T) {
	for _, nw := range []topology.Network{
		topology.NewFoldedHypercube(9),
		topology.NewKAryNCube(4, 4),
		topology.NewAugmentedKAryNCube(4, 4),
	} {
		eng := NewEngine(nw)
		if eng.KernelName() == "generic" {
			t.Fatalf("%s: expected a structure kernel", nw.Name())
		}
		delta := nw.Diagnosability()
		F := syndrome.RandomFaults(nw.Graph().N(), delta, rand.New(rand.NewSource(3)))
		s := syndrome.NewLazy(F, syndrome.Mimic{})
		sc := eng.AcquireScratch()
		defer eng.ReleaseScratch(sc)
		opt := Options{Scratch: sc}
		if _, _, err := eng.DiagnoseOpts(s, opt); err != nil { // warm
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(20, func() {
			got, _, err := eng.DiagnoseOpts(s, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(F) {
				t.Fatal("misdiagnosis")
			}
		})
		if allocs != 0 {
			t.Fatalf("%s: warm kernel Diagnose allocated %.1f objects/op, want 0", nw.Name(), allocs)
		}
	}
}
