package core

import (
	"math/bits"
	"slices"

	"comparisondiag/internal/graph"
	"comparisondiag/internal/syndrome"
)

// setBuilderLazyInto is the engine's serving kernel: SetBuilderInto
// specialised for the unrestricted final pass over a *syndrome.Lazy.
// It produces bit-identical output — the same U, Parent, Contributors,
// Rounds, AllHealthy AND the same syndrome look-up count — as the
// reference loop, by preserving its per-node test discipline while
// removing its two throughput sinks:
//
//   - devirtualisation: tests go through a concrete (*Lazy).Test call
//     instead of an interface dispatch per look-up, and the restrict
//     closure of the general builder disappears entirely;
//
//   - adaptive scan direction: each growth round costs Θ(Δ·min(|Fr|,
//     |V∖U|)) instead of Θ(Δ·|Fr|). Once U is dense (the common regime:
//     almost all nodes are healthy), iterating the few remaining
//     non-members and probing their frontier neighbours is far cheaper
//     than sweeping the huge frontier past neighbours already in U.
//
// Why the look-up count is identical: in the reference loop, a non-member
// v is tested by its frontier neighbours in ascending order — the
// frontier is sorted and each admission is visible immediately — so v's
// testers form exactly the prefix of its ascending frontier neighbours
// ending at the first 0 answer (all of them if none answers 0). The
// inverted scan consults literally that prefix for each v. Only the
// interleaving across different v differs, which is unobservable for
// any deterministic syndrome (the Syndrome contract: repeated
// consultation of an entry yields the same answer).
func setBuilderLazyInto(sc *Scratch, a graph.Adjacencer, l *syndrome.Lazy, u0 int32, delta int) *SetBuilderResult {
	sc.ensure(a.N())
	csr := graph.CSR(a)
	sc.resetTree()
	res := &sc.res
	*res = SetBuilderResult{U: sc.u, Parent: sc.parent, Contributors: sc.contributors}
	start := l.Lookups()
	var frontier, next []int32
	var uCount, contribCount int

	if fp := sc.prefixRes; fp != nil {
		// Resume from the group's shared prefix: the behaviour-
		// independent rounds were grown once by the representative (see
		// finalPrefix); this member only consults the syndrome past the
		// checkpoint, so res.Lookups comes out as the suffix count.
		frontier = fp.loadInto(sc, res)
		contribCount = fp.restoreContributors(res)
		next = sc.next[:0]
		uCount = fp.uCount
		res.Rounds = fp.rounds
		if contribCount > delta {
			res.AllHealthy = true
		}
		if fp.complete {
			sc.frontier, sc.next = frontier, next
			res.Lookups = 0
			return res
		}
	} else {
		res.U.Add(int(u0))
		uCount = 1
		rec := sc.prefixRec
		if rec != nil && !rec.begin(a, l.Faults(), u0) {
			rec = nil // even the pair scan is hazardous: no shareable prefix
			sc.prefixRec = nil
		}

		// Build U_1 exactly as the reference loop: u0 tests unordered pairs
		// of its neighbours; a 0 result certifies both participants at once.
		var adj []int32
		if csr != nil {
			adj = csr.Neighbors(u0)
		} else {
			sc.nbuf = a.AppendNeighbors(u0, sc.nbuf)
			adj = sc.nbuf
		}
		frontier = sc.frontier[:0]
		next = sc.next[:0]
		for i := 0; i < len(adj); i++ {
			for j := i + 1; j < len(adj); j++ {
				vi, vj := adj[i], adj[j]
				if res.U.Contains(int(vi)) && res.U.Contains(int(vj)) {
					continue
				}
				if l.Test(u0, vi, vj) == 0 {
					for _, v := range [2]int32{vi, vj} {
						if !res.U.Contains(int(v)) {
							res.U.Add(int(v))
							res.Parent[v] = u0
							frontier = append(frontier, v)
							uCount++
						}
					}
				}
			}
		}
		if len(frontier) > 0 {
			res.Contributors.Add(int(u0))
			contribCount = 1
			res.Rounds = 1
		}
		if contribCount > delta {
			res.AllHealthy = true
		}
	}

	n := a.N()
	added := sc.added
	var offs, tgts []int32
	if csr != nil {
		offs, tgts = csr.Adjacency()
	}
	uw := res.U.Words()
	parent := res.Parent
	// The dense branch tests each candidate's frontier neighbours in
	// ascending order, which equals the reference's frontier-order sweep
	// only while the frontier is sorted. Round 2+ frontiers always are
	// (Drain yields ascending); the U_1 frontier is sorted for a healthy
	// seed but a faulty seed's arbitrary pair answers can scramble it —
	// those rounds must take the order-preserving sweep. (A resumed
	// frontier was recorded at a round boundary, hence sorted.)
	sorted := slices.IsSorted(frontier)
	for len(frontier) > 0 {
		if rec := sc.prefixRec; rec != nil && rec.frontierHazardous(frontier) {
			// The next round would consult a comparison involving a
			// hypothesised-faulty node: this round boundary is the end
			// of the behaviour-independent prefix.
			rec.snapshot(res, frontier, uCount, res.Rounds, l.Lookups()-start)
			sc.prefixRec = nil
		}
		admitted := 0
		if !sorted || len(frontier) <= n-uCount {
			// Sparse regime: the reference frontier sweep, devirtualised
			// and walking the CSR arrays directly, with the contributor
			// bookkeeping hoisted out of the inner loop.
			for _, u := range frontier {
				tu := parent[u]
				contributed := false
				var nbrs []int32
				if csr != nil {
					nbrs = tgts[offs[u]:offs[u+1]]
				} else {
					sc.nbuf = a.AppendNeighbors(u, sc.nbuf)
					nbrs = sc.nbuf
				}
				for _, v := range nbrs {
					if uw[v>>6]&(1<<(uint(v)&63)) != 0 {
						continue
					}
					if l.Test(u, v, tu) == 0 {
						uw[v>>6] |= 1 << (uint(v) & 63)
						parent[v] = u
						added.Add(int(v))
						admitted++
						contributed = true
					}
				}
				if contributed && !res.Contributors.Contains(int(u)) {
					res.Contributors.Add(int(u))
					contribCount++
				}
			}
			if admitted == 0 {
				break
			}
			next = added.Drain(next[:0])
			sorted = true
		} else {
			// Dense regime: walk V∖U and probe each non-member's frontier
			// neighbours in ascending order until one vouches for it —
			// the same test prefix the frontier sweep would consult. The
			// frontier-membership gather uses the same mask trick, with
			// set bits (frontier members) walked in ascending order.
			fset := sc.fsetBuf()
			fw := fset.Words()
			for _, u := range frontier {
				fw[u>>6] |= 1 << (uint(u) & 63)
			}
			next = next[:0]
			for wi, w := range uw {
				inv := ^w
				if wi == len(uw)-1 {
					if tail := n & 63; tail != 0 {
						inv &= 1<<uint(tail) - 1
					}
				}
				for inv != 0 {
					v := int32(wi<<6 + bits.TrailingZeros64(inv))
					inv &= inv - 1
					var nbrs []int32
					if csr != nil {
						nbrs = tgts[offs[v]:offs[v+1]]
					} else {
						sc.nbuf = a.AppendNeighbors(v, sc.nbuf)
						nbrs = sc.nbuf
					}
					for _, u := range nbrs {
						if fw[u>>6]&(1<<(uint(u)&63)) == 0 {
							continue
						}
						if l.Test(u, v, parent[u]) != 0 {
							continue
						}
						parent[v] = u
						next = append(next, v)
						admitted++
						if !res.Contributors.Contains(int(u)) {
							res.Contributors.Add(int(u))
							contribCount++
						}
						break
					}
				}
			}
			for _, u := range frontier {
				fw[u>>6] &^= 1 << (uint(u) & 63)
			}
			if admitted == 0 {
				break
			}
			// The complement walk visits v in ascending id order, so next
			// is already the sorted frontier the reference Drain produces.
			for _, v := range next {
				uw[v>>6] |= 1 << (uint(v) & 63)
			}
		}
		uCount += admitted
		frontier, next = next, frontier
		res.Rounds++
		if contribCount > delta {
			res.AllHealthy = true
		}
	}
	sc.frontier, sc.next = frontier, next
	res.Lookups = l.Lookups() - start
	if rec := sc.prefixRec; rec != nil {
		// The pass terminated without ever touching the hazard mask
		// (e.g. the empty hypothesis): the whole result is behaviour-
		// independent and members adopt it outright.
		rec.snapshotComplete(res, uCount, res.Lookups)
		sc.prefixRec = nil
	}
	return res
}
