package core

import (
	"math/bits"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/graph"
)

// finalPrefix is the shared-final-prefix checkpoint of a grouped batch
// (BatchOptions.ShareFinalPrefix): the final Set_Builder state — U, the
// tree, the frontier and the look-up count — at the boundary of the
// behaviour-independent prefix of the pass.
//
// Why a prefix exists. A test result s_u(v, w) depends on the faulty-
// tester behaviour only when the tester u is hypothesised faulty, and
// on the hypothesis only through the membership of u, v and w in F. The
// final pass grows U from a healthy seed by consulting s_u(v, t(u))
// for frontier nodes u; as long as the frontier avoids F ∪ N(F), every
// consulted comparison has a healthy tester, a healthy tree parent and
// a healthy candidate, so every answer is 0 under every behaviour —
// the rounds are a plain BFS expansion whose admissions, tree parents
// and look-up trace are identical for all behaviours of one fault
// hypothesis. The recorder therefore runs the pass once (on the group
// representative), checks each round's start frontier against the
// hazard mask F ∪ N(F), and snapshots the state the moment the next
// round would consult a comparison involving a hypothesised-faulty
// node. Members load the snapshot and resume with their own behaviour;
// if the whole pass stayed clean (e.g. the empty hypothesis), the
// checkpoint is the complete result and members consult nothing.
//
// The conservative boundary (any involvement of a faulty node, not
// just faulty testers) keeps the argument one induction deep: while
// rounds are clean, only healthy nodes enter U, so the frontier can
// never smuggle in a faulty tester unnoticed.
//
// Concurrency: a checkpoint is written once by the representative's
// worker (phase A of diagnoseGrouped) and read concurrently by member
// workers (phase B); the phases are separated by a pool barrier.
// Encoding. U grows from empty (the caller resets the tree before the
// pass), so the checkpoint state is fully described by the non-zero U
// words and the parents of their set bits. The default layout is that
// sparse delta encoding — dirtyIdx/dirtyW list the touched words,
// parents packs the tree entries of their set bits in ascending node
// order — which costs O(touched words + |U|) to record and restore
// instead of the full-array O(n) copies per batch member. The pre-delta
// full-copy layout (dense uw/parent snapshots) is kept behind
// BatchOptions.FullCheckpoint as the ablation baseline.
type finalPrefix struct {
	valid    bool  // a checkpoint was recorded; members may resume
	complete bool  // the whole pass was clean; members adopt everything
	full     bool  // use the dense full-copy layout (ablation)
	u0       int32 // seed the prefix grew from (resume sanity check)
	rounds   int   // growth rounds contained in the prefix
	lookups  int64 // syndrome consultations the prefix spent
	uCount   int   // |U| at the checkpoint

	// Delta layout (default): sparse dirty lists.
	dirtyIdx []int32  // indices of non-zero U words, ascending
	dirtyW   []uint64 // their word values
	parents  []int32  // tree parents of the set bits, packed ascending

	// Full-copy layout (full == true): dense snapshots.
	uw     []uint64
	parent []int32

	frontier []int32 // round-start frontier at the boundary (sorted)

	hazard []uint64 // F ∪ N(F) mask, used only while recording
	nbuf   []int32  // neighbour buffer for implicit adjacencies
}

// begin arms the recorder for one final pass: it materialises the
// hazard mask F ∪ N(F) and pins the seed. It returns false — and the
// checkpoint stays invalid — when even the seed's own pair scan would
// consult a hazardous comparison (u0 faulty or adjacent to a fault):
// the shareable prefix is empty and members simply run in full.
func (fp *finalPrefix) begin(a graph.Adjacencer, faults *bitset.Set, u0 int32) bool {
	g := graph.CSR(a)
	words := (a.N() + 63) / 64
	if len(fp.hazard) != words {
		fp.hazard = make([]uint64, words)
	} else {
		for i := range fp.hazard {
			fp.hazard[i] = 0
		}
	}
	for wi, w := range faults.Words() {
		for ; w != 0; w &= w - 1 {
			f := int32(wi<<6 + bits.TrailingZeros64(w))
			fp.hazard[f>>6] |= 1 << (uint32(f) & 63)
			var nbrs []int32
			if g != nil {
				nbrs = g.Neighbors(f)
			} else {
				fp.nbuf = a.AppendNeighbors(f, fp.nbuf)
				nbrs = fp.nbuf
			}
			for _, nb := range nbrs {
				fp.hazard[nb>>6] |= 1 << (uint32(nb) & 63)
			}
		}
	}
	fp.u0 = u0
	return !fp.hazardous(u0)
}

// hazardous reports whether v is faulty or has a faulty neighbour.
func (fp *finalPrefix) hazardous(v int32) bool {
	return fp.hazard[v>>6]&(1<<(uint32(v)&63)) != 0
}

// frontierHazardous reports whether any frontier node touches the
// hazard mask — i.e. whether the next round would consult a comparison
// involving a hypothesised-faulty node.
func (fp *finalPrefix) frontierHazardous(frontier []int32) bool {
	for _, u := range frontier {
		if fp.hazard[u>>6]&(1<<(uint32(u)&63)) != 0 {
			return true
		}
	}
	return false
}

// snapshot records the checkpoint at a round boundary: the pass's
// state before the first round that would consult a hazardous
// comparison. frontier must be the (sorted) round-start frontier.
func (fp *finalPrefix) snapshot(res *SetBuilderResult, frontier []int32, uCount, rounds int, lookups int64) {
	uw := res.U.Words()
	if fp.full {
		if len(fp.uw) != len(uw) {
			fp.uw = make([]uint64, len(uw))
			fp.parent = make([]int32, len(res.Parent))
		}
		copy(fp.uw, uw)
		copy(fp.parent, res.Parent)
	} else {
		// Size the lists exactly before filling them: one popcount-free
		// pass counts the dirty words, and uCount is the parent count,
		// so recording costs at most two allocations sized to the
		// boundary tree — no append-doubling churn, and nothing
		// proportional to the graph.
		nz := 0
		for _, w := range uw {
			if w != 0 {
				nz++
			}
		}
		if cap(fp.dirtyIdx) < nz {
			fp.dirtyIdx = make([]int32, 0, nz)
			fp.dirtyW = make([]uint64, 0, nz)
		}
		if cap(fp.parents) < uCount {
			fp.parents = make([]int32, 0, uCount)
		}
		fp.dirtyIdx = fp.dirtyIdx[:0]
		fp.dirtyW = fp.dirtyW[:0]
		fp.parents = fp.parents[:0]
		parent := res.Parent
		for wi, w := range uw {
			if w == 0 {
				continue
			}
			fp.dirtyIdx = append(fp.dirtyIdx, int32(wi))
			fp.dirtyW = append(fp.dirtyW, w)
			for ; w != 0; w &= w - 1 {
				fp.parents = append(fp.parents, parent[wi<<6+bits.TrailingZeros64(w)])
			}
		}
	}
	fp.frontier = append(fp.frontier[:0], frontier...)
	fp.uCount, fp.rounds, fp.lookups = uCount, rounds, lookups
	fp.valid, fp.complete = true, false
}

// snapshotComplete records a pass that stayed clean to termination:
// the checkpoint is the whole result and members resume past the loop,
// consulting nothing.
func (fp *finalPrefix) snapshotComplete(res *SetBuilderResult, uCount int, lookups int64) {
	fp.snapshot(res, nil, uCount, res.Rounds, lookups)
	fp.complete = true
}

// loadInto restores the checkpoint into a member's scratch-backed
// result: U and the tree are copied and the round-start frontier is
// copied into the scratch's frontier buffer. The caller must already
// have called resetTree, so Parent entries outside U are -1 in
// fp.parent and the straight copy is exact. The contributor set is
// NOT restored here: the word-kernel driver defers contributors and
// rebuilds them from the final parents anyway, so only the generic
// sweep (which tracks them live) calls restoreContributors.
func (fp *finalPrefix) loadInto(sc *Scratch, res *SetBuilderResult) (frontier []int32) {
	if fp.full {
		copy(res.U.Words(), fp.uw)
		copy(res.Parent, fp.parent)
	} else {
		uw := res.U.Words()
		parent := res.Parent
		pi := 0
		for i, wi := range fp.dirtyIdx {
			w := fp.dirtyW[i]
			uw[wi] = w
			for ; w != 0; w &= w - 1 {
				parent[int32(wi)<<6+int32(bits.TrailingZeros64(w))] = fp.parents[pi]
				pi++
			}
		}
	}
	return append(sc.frontier[:0], fp.frontier...)
}

// restoreContributors rebuilds the checkpoint's contributor set from
// the tree — the contributors are exactly the parents of admitted
// nodes — and returns its count.
func (fp *finalPrefix) restoreContributors(res *SetBuilderResult) int {
	if fp.full {
		for wi, w := range fp.uw {
			for ; w != 0; w &= w - 1 {
				if p := fp.parent[wi<<6+bits.TrailingZeros64(w)]; p >= 0 {
					res.Contributors.Add(int(p))
				}
			}
		}
		return res.Contributors.Count()
	}
	for _, p := range fp.parents {
		if p >= 0 {
			res.Contributors.Add(int(p))
		}
	}
	return res.Contributors.Count()
}
