package core

import (
	"math/rand"
	"slices"
	"testing"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/graph"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// implicitFamilies returns the declared-Cayley instances the implicit
// engine differential tests run over, paired with the CSR engine built
// from the same family. Sizes match the topology coset tests: the
// family partition at δ+1 is a pure range partition there, so the
// descriptor-derived parts are bit-identical and every downstream
// quantity (seeds, scan order, look-ups) must follow.
func implicitFamilies() []topology.CayleyStructured {
	return []topology.CayleyStructured{
		topology.NewHypercube(8),
		topology.NewFoldedHypercube(6),
		topology.NewEnhancedHypercube(6, 3),
		topology.NewAugmentedCube(8),
		topology.NewKAryNCube(4, 4),
		topology.NewAugmentedKAryNCube(4, 4),
	}
}

// TestImplicitEngineMatchesCSR is the tentpole differential: an engine
// bound straight from the descriptor (no CSR ever materialised) must be
// observationally identical to the CSR-backed engine on the same family
// — same partition, same fault sets, same whole-struct Stats (and hence
// the same per-phase syndrome look-up counts) — across every behaviour,
// random fault loads, tightened fault bounds, and the generic-final
// ablation.
func TestImplicitEngineMatchesCSR(t *testing.T) {
	for _, nw := range implicitFamilies() {
		t.Run(nw.Name(), func(t *testing.T) {
			delta := nw.Diagnosability()
			csrEng := NewEngine(nw)
			impEng, err := NewCayleyEngine(nw.CayleyStructure(), delta)
			if err != nil {
				t.Fatal(err)
			}
			if impEng.Graph() != nil {
				t.Fatal("implicit engine materialised a graph")
			}
			if graph.CSR(impEng.Adjacency()) != nil {
				t.Fatal("implicit engine serves a CSR adjacency")
			}

			wantParts, err := csrEng.Parts()
			if err != nil {
				t.Fatal(err)
			}
			gotParts, err := impEng.Parts()
			if err != nil {
				t.Fatal(err)
			}
			if len(gotParts) != len(wantParts) {
				t.Fatalf("%d implicit parts, %d CSR parts", len(gotParts), len(wantParts))
			}
			for i := range wantParts {
				if gotParts[i].Seed != wantParts[i].Seed || !slices.Equal(gotParts[i].Nodes, wantParts[i].Nodes) {
					t.Fatalf("part %d differs between implicit and CSR engines", i)
				}
			}

			rng := rand.New(rand.NewSource(123))
			n := nw.Graph().N()
			for _, b := range syndrome.AllBehaviors(7) {
				for trial := 0; trial < 2; trial++ {
					F := syndrome.RandomFaults(n, 1+rng.Intn(delta), rng)
					for _, opt := range []Options{
						{},
						{FaultBound: 1 + F.Count()%delta},
						{GenericFinal: true},
					} {
						sImp := syndrome.NewLazy(F, b)
						sCsr := syndrome.NewLazy(F, b)
						gotF, gotSt, gotErr := impEng.DiagnoseOpts(sImp, opt)
						wantF, wantSt, wantErr := csrEng.DiagnoseOpts(sCsr, opt)
						if (gotErr == nil) != (wantErr == nil) {
							t.Fatalf("%s opt %+v: err %v vs %v", b.Name(), opt, gotErr, wantErr)
						}
						if wantErr != nil {
							continue
						}
						if !gotF.Equal(wantF) {
							t.Fatalf("%s opt %+v: fault sets differ", b.Name(), opt)
						}
						if *gotSt != *wantSt {
							t.Fatalf("%s opt %+v: stats %+v vs %+v", b.Name(), opt, *gotSt, *wantSt)
						}
						if sImp.Lookups() != sCsr.Lookups() {
							t.Fatalf("%s opt %+v: %d look-ups implicit, %d CSR",
								b.Name(), opt, sImp.Lookups(), sCsr.Lookups())
						}
					}
				}
			}
		})
	}
}

// TestImplicitEngineBatch pins the grouped batch paths on an implicit
// engine against the CSR engine: member-for-member identical fault
// sets and Stats under every ShareCertification × ShareFinalPrefix
// combination, with and without a result cache. This is the path the
// shared-final delta checkpoints (and their full-copy ablation) ride.
func TestImplicitEngineBatch(t *testing.T) {
	for _, nw := range []topology.CayleyStructured{
		topology.NewHypercube(8),
		topology.NewAugmentedKAryNCube(4, 4),
	} {
		t.Run(nw.Name(), func(t *testing.T) {
			delta := nw.Diagnosability()
			csrEng := NewEngine(nw)
			impEng, err := NewCayleyEngine(nw.CayleyStructure(), delta)
			if err != nil {
				t.Fatal(err)
			}
			g := nw.Graph()
			F := syndrome.ClusterFaults(g, int32(g.N()-1), delta)
			behaviors := sharedFinalBehaviors()
			for _, tc := range []struct {
				bopt  BatchOptions
				cache bool
			}{
				{bopt: BatchOptions{}},
				{bopt: BatchOptions{ShareCertification: true}},
				{bopt: BatchOptions{ShareFinalPrefix: true}},
				{bopt: BatchOptions{ShareCertification: true, ShareFinalPrefix: true}},
				{bopt: BatchOptions{ShareCertification: true, ShareFinalPrefix: true, FullCheckpoint: true}},
				{bopt: BatchOptions{ShareFinalPrefix: true}, cache: true},
			} {
				bopt, boptCsr := tc.bopt, tc.bopt
				if tc.cache {
					// One cache per engine: sharing one instance would let
					// the second batch answer from the first engine's work.
					bopt.Options.ResultCache = NewResultCache(32)
					boptCsr.Options.ResultCache = NewResultCache(32)
				}
				var sImp, sCsr []syndrome.Syndrome
				for _, b := range behaviors {
					sImp = append(sImp, syndrome.NewLazy(F, b))
					sCsr = append(sCsr, syndrome.NewLazy(F, b))
				}
				got := impEng.DiagnoseBatch(sImp, bopt)
				want := csrEng.DiagnoseBatch(sCsr, boptCsr)
				for i := range want {
					if (got[i].Err == nil) != (want[i].Err == nil) {
						t.Fatalf("bopt %+v member %d: err %v vs %v", bopt, i, got[i].Err, want[i].Err)
					}
					if want[i].Err != nil {
						continue
					}
					if !got[i].Faults.Equal(want[i].Faults) {
						t.Fatalf("bopt %+v member %d: fault sets differ", bopt, i)
					}
					if got[i].Stats != want[i].Stats {
						t.Fatalf("bopt %+v member %d: stats %+v vs %+v", bopt, i, got[i].Stats, want[i].Stats)
					}
					if sImp[i].Lookups() != sCsr[i].Lookups() {
						t.Fatalf("bopt %+v member %d: %d look-ups implicit, %d CSR",
							bopt, i, sImp[i].Lookups(), sCsr[i].Lookups())
					}
				}
			}
		})
	}
}

// TestImplicitEngineRefusals pins the implicit engine's declared
// limitations: no rebinding (churn is defined against a materialised
// graph), no descriptor swap, and a positive fault bound required.
func TestImplicitEngineRefusals(t *testing.T) {
	desc := topology.NewHypercube(8).CayleyStructure()
	if _, err := NewCayleyEngine(desc, 0); err == nil {
		t.Fatal("zero fault bound accepted")
	}
	if _, err := NewCayleyEngine(graph.XORCayley{Bits: 4, Masks: []int32{1, 1}}, 2); err == nil {
		t.Fatal("malformed descriptor accepted")
	}
	eng, err := NewCayleyEngine(desc, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.BindCayley(desc); err == nil {
		t.Fatal("BindCayley succeeded on an implicit engine")
	}
	if _, err := eng.Rebind(&graph.Removal{}); err == nil {
		t.Fatal("Rebind succeeded on an implicit engine")
	}
}

// TestImplicitQ18Smoke is the CI scale leg: bind a quarter-million-node
// hypercube engine straight from its descriptor and diagnose a
// clustered fault load exactly. Memory stays descriptor-sized plus
// scratch (no 2·m CSR target array); a second warm diagnose must not
// allocate. Skipped under -short.
func TestImplicitQ18Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("quarter-million-node smoke leg")
	}
	const bitsN = 18
	masks := make([]int32, bitsN)
	for i := range masks {
		masks[i] = 1 << uint(i)
	}
	desc := graph.XORCayley{Bits: bitsN, Masks: masks}
	eng, err := NewCayleyEngine(desc, bitsN)
	if err != nil {
		t.Fatal(err)
	}
	n := 1 << bitsN

	// A clustered hypothesis far from part 0's seed: the centre node and
	// its first δ−1 descriptor-generated neighbours.
	ca, err := graph.NewCayleyAdjacency(desc)
	if err != nil {
		t.Fatal(err)
	}
	centre := int32(n - 1)
	F := bitset.New(n)
	F.Add(int(centre))
	var buf []int32
	buf = ca.AppendNeighbors(centre, buf)
	for _, v := range buf[:bitsN-1] {
		F.Add(int(v))
	}

	found, st, err := eng.Diagnose(syndrome.NewLazy(F, syndrome.Mimic{}))
	if err != nil {
		t.Fatal(err)
	}
	if !found.Equal(F) {
		t.Fatalf("Q18 implicit diagnose misidentified the fault set (%d found, %d injected)",
			found.Count(), F.Count())
	}
	if st.FaultCount != bitsN || st.HealthyCount != n-bitsN {
		t.Fatalf("Q18 stats: %d faults, %d healthy; want %d and %d", st.FaultCount, st.HealthyCount, bitsN, n-bitsN)
	}

	// Warm path: scratch pooled, syndrome fresh — zero allocations.
	sc := eng.AcquireScratch()
	defer eng.ReleaseScratch(sc)
	s2 := syndrome.NewLazy(F, syndrome.Mimic{})
	allocs := testing.AllocsPerRun(3, func() {
		if _, _, err := eng.DiagnoseOpts(s2, Options{Scratch: sc}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("warm implicit diagnose allocated %.0f times per run", allocs)
	}
}

// TestImplicitQ18ParallelSmoke is the CI parallel scale leg: the same
// quarter-million-node implicit engine serving a FinalWorkers fan-out.
// The word kernels split rounds at word granularity, so the parallel
// diagnosis must match the sequential one bit for bit — fault set and
// look-up count both. Skipped under -short.
func TestImplicitQ18ParallelSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("quarter-million-node smoke leg")
	}
	setGOMAXPROCS(t, 4)
	const bitsN = 18
	masks := make([]int32, bitsN)
	for i := range masks {
		masks[i] = 1 << uint(i)
	}
	desc := graph.XORCayley{Bits: bitsN, Masks: masks}
	eng, err := NewCayleyEngine(desc, bitsN)
	if err != nil {
		t.Fatal(err)
	}
	n := 1 << bitsN

	ca, err := graph.NewCayleyAdjacency(desc)
	if err != nil {
		t.Fatal(err)
	}
	centre := int32(n - 1)
	F := bitset.New(n)
	F.Add(int(centre))
	var buf []int32
	buf = ca.AppendNeighbors(centre, buf)
	for _, v := range buf[:bitsN-1] {
		F.Add(int(v))
	}

	seqSet, seqStats, err := eng.DiagnoseOpts(syndrome.NewLazy(F, syndrome.Mimic{}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	parSet, parStats, err := eng.DiagnoseOpts(syndrome.NewLazy(F, syndrome.Mimic{}), Options{FinalWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !parSet.Equal(seqSet) || !parSet.Equal(F) {
		t.Fatal("Q18 parallel diagnose diverged from the sequential fault set")
	}
	if parStats.FinalWorkersUsed != 4 {
		t.Fatalf("Q18 parallel FinalWorkersUsed = %d, want 4", parStats.FinalWorkersUsed)
	}
	norm := *parStats
	norm.FinalWorkersUsed = seqStats.FinalWorkersUsed
	if norm != *seqStats {
		t.Fatalf("Q18 parallel Stats diverged from sequential:\nseq %+v\npar %+v", *seqStats, *parStats)
	}
}
