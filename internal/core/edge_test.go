package core

import (
	"math/rand"
	"testing"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/graph"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// TestSetBuilderSeedWithoutPairsStaysAlone: a seed whose restriction
// leaves fewer than two neighbours can certify nothing (U1 needs a
// pair), so U stays {u0}.
func TestSetBuilderSeedWithoutPairsStaysAlone(t *testing.T) {
	g := q7.Graph()
	mask := bitset.New(g.N())
	mask.Add(0)
	mask.Add(1) // exactly one neighbour of 0
	s := syndrome.NewLazy(bitset.New(g.N()), nil)
	r := SetBuilder(g, s, 0, 7, mask)
	if r.U.Count() != 1 || r.AllHealthy {
		t.Fatalf("expected lone seed: |U|=%d allHealthy=%v", r.U.Count(), r.AllHealthy)
	}
	if r.Rounds != 0 {
		t.Fatalf("rounds = %d, want 0", r.Rounds)
	}
}

// TestSetBuilderLookupFieldMatchesCounter: the result's Lookups must
// equal the syndrome counter delta.
func TestSetBuilderLookupFieldMatchesCounter(t *testing.T) {
	g := q7.Graph()
	F := syndrome.RandomFaults(g.N(), 5, rand.New(rand.NewSource(8)))
	s := syndrome.NewLazy(F, syndrome.Random{Seed: 1})
	before := s.Lookups()
	r := SetBuilder(g, s, 3, 7, nil)
	if r.Lookups != s.Lookups()-before {
		t.Fatalf("result lookups %d, counter delta %d", r.Lookups, s.Lookups()-before)
	}
}

// TestSetBuilderAllOneSyndromeStallsImmediately: if every test is 1 the
// seed certifies nobody.
func TestSetBuilderAllOneSyndromeStallsImmediately(t *testing.T) {
	g := q7.Graph()
	// Every node faulty with all-one behaviour: all tests read 1.
	F := bitset.New(g.N())
	for i := 0; i < g.N(); i++ {
		F.Add(i)
	}
	s := syndrome.NewLazy(F, syndrome.AllOne{})
	r := SetBuilder(g, s, 0, 7, nil)
	if r.U.Count() != 1 {
		t.Fatalf("|U| = %d, want 1", r.U.Count())
	}
}

// TestCertifyPartRejectsDegenerateParts: a part with an induced
// degree-1 member must be rejected regardless of the syndrome, because
// the certificate's soundness precondition fails.
func TestCertifyPartRejectsDegenerateParts(t *testing.T) {
	// A path 0-1-2 inside C8: endpoints have induced degree 1.
	b := graph.NewBuilder(8)
	for i := 0; i < 8; i++ {
		b.MustAddEdge(int32(i), int32((i+1)%8))
	}
	g := b.Build()
	nodes := []int32{0, 1, 2}
	mask := bitset.FromMembers(8, nodes)
	s := syndrome.NewLazy(bitset.New(8), nil)
	if CertifyPart(g, s, nodes, mask) {
		t.Fatal("degenerate part certified")
	}
}

// TestDiagnoseStatsPartsScanned: with faults planted in the first k
// candidate parts, certification must walk past exactly those parts.
func TestDiagnoseStatsPartsScanned(t *testing.T) {
	parts, err := q7.Parts(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	g := q7.Graph()
	// One fault in parts 0..2; parts[3] clean.
	F := bitset.New(g.N())
	for i := 0; i < 3; i++ {
		F.Add(int(parts[i].Nodes[1]))
	}
	s := syndrome.NewLazy(F, syndrome.Mimic{})
	got, stats, err := DiagnoseOpts(q7, s, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(F) {
		t.Fatal("misdiagnosis")
	}
	if stats.CertifiedPart != 3 || stats.PartsScanned != 4 {
		t.Fatalf("certified part %d after %d scans, want 3 after 4",
			stats.CertifiedPart, stats.PartsScanned)
	}
}

// TestDiagnoseAnyPropagatesRealErrors: non-partition errors must not be
// swallowed by the fallback.
func TestDiagnoseAnyPropagatesRealErrors(t *testing.T) {
	// More than δ faults spread over every candidate part: certification
	// fails, and DiagnoseAny must report that rather than fall back.
	parts, err := q7.Parts(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	g := q7.Graph()
	F := bitset.New(g.N())
	for _, p := range parts {
		F.Add(int(p.Nodes[0]))
	}
	s := syndrome.NewLazy(F, syndrome.Mimic{})
	_, _, err = DiagnoseAny(q7, s)
	if err == nil {
		t.Fatal("expected an error with > δ faults everywhere")
	}
}

// TestDiagnoseOnEveryBehaviourTwistedFamilies exercises the substituted
// constructions end to end (they are only as good as their diagnosis).
func TestDiagnoseOnEveryBehaviourTwistedFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, nw := range []topology.Network{
		topology.NewTwistedCube(9),
		topology.NewShuffleCube(10),
	} {
		g := nw.Graph()
		delta := nw.Diagnosability()
		for _, b := range syndrome.AllBehaviors(3) {
			F := syndrome.RandomFaults(g.N(), delta, rng)
			s := syndrome.NewLazy(F, b)
			got, _, err := Diagnose(nw, s)
			if err != nil {
				t.Fatalf("%s/%s: %v", nw.Name(), b.Name(), err)
			}
			if !got.Equal(F) {
				t.Fatalf("%s/%s: misdiagnosis", nw.Name(), b.Name())
			}
		}
	}
}
