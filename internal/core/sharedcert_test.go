package core

import (
	"math/rand"
	"testing"

	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// TestShareCertificationAccounting pins the grouped-batch contract:
// syndromes of one fault hypothesis share the representative's part
// scan. For every member (non-representative): the fault set and the
// final-pass look-ups are bit-identical to an individual call, the
// syndrome is only consulted during its final pass, and the Stats
// record the shared verdict — CertifiedPart and PartsScanned copied
// from the representative, CertLookups pinned to 0, TotalLookups equal
// to FinalLookups. Representatives and hypotheses outside the guards
// keep free-function Stats exactly.
func TestShareCertificationAccounting(t *testing.T) {
	nw := topology.NewHypercube(9)
	g := nw.Graph()
	delta := nw.Diagnosability()
	eng := NewEngine(nw)

	behaviors := []syndrome.Behavior{syndrome.Mimic{}, syndrome.AllZero{}, syndrome.Inverted{}}
	hyps := []int{1, delta / 2, delta}
	var syns, refs []syndrome.Syndrome
	for h, f := range hyps {
		F := syndrome.RandomFaults(g.N(), f, rand.New(rand.NewSource(int64(600+h))))
		for _, b := range behaviors {
			syns = append(syns, syndrome.NewLazy(F, b))
			refs = append(refs, syndrome.NewLazy(F, b))
		}
	}
	// A beyond-bound hypothesis must be excluded from grouping and keep
	// full individual accounting.
	beyond := syndrome.RandomFaults(g.N(), delta+2, rand.New(rand.NewSource(99)))
	syns = append(syns, syndrome.NewLazy(beyond, syndrome.Mimic{}), syndrome.NewLazy(beyond, syndrome.AllZero{}))
	refs = append(refs, syndrome.NewLazy(beyond, syndrome.Mimic{}), syndrome.NewLazy(beyond, syndrome.AllZero{}))

	results := eng.DiagnoseBatch(syns, BatchOptions{ShareCertification: true})

	perGroup := len(behaviors)
	grouped := len(hyps) * perGroup
	for i, r := range results {
		want, wantStats, wantErr := Diagnose(nw, refs[i])
		if (r.Err == nil) != (wantErr == nil) {
			t.Fatalf("syndrome %d: err %v vs %v", i, r.Err, wantErr)
		}
		if wantErr == nil && !r.Faults.Equal(want) {
			t.Fatalf("syndrome %d: fault set differs from individual call", i)
		}
		isMember := i < grouped && i%perGroup != 0
		if !isMember {
			// Representatives and ungrouped syndromes: free-function
			// accounting, bit for bit.
			if wantStats != nil && r.Stats != *wantStats {
				t.Fatalf("syndrome %d: representative stats %+v differ from free-function %+v", i, r.Stats, *wantStats)
			}
			if syns[i].Lookups() != refs[i].Lookups() {
				t.Fatalf("syndrome %d: representative look-up counter diverged", i)
			}
			continue
		}
		rep := results[(i/perGroup)*perGroup]
		if r.Stats.CertLookups != 0 {
			t.Fatalf("syndrome %d: member spent %d certification look-ups, want 0", i, r.Stats.CertLookups)
		}
		if r.Stats.CertifiedPart != rep.Stats.CertifiedPart || r.Stats.PartsScanned != rep.Stats.PartsScanned {
			t.Fatalf("syndrome %d: member verdict (%d,%d) differs from representative (%d,%d)",
				i, r.Stats.CertifiedPart, r.Stats.PartsScanned, rep.Stats.CertifiedPart, rep.Stats.PartsScanned)
		}
		if wantStats != nil {
			if r.Stats.FinalLookups != wantStats.FinalLookups {
				t.Fatalf("syndrome %d: member final pass spent %d look-ups, free function %d",
					i, r.Stats.FinalLookups, wantStats.FinalLookups)
			}
			if r.Stats.Seed != wantStats.Seed || r.Stats.Rounds != wantStats.Rounds ||
				r.Stats.HealthyCount != wantStats.HealthyCount || r.Stats.FaultCount != wantStats.FaultCount {
				t.Fatalf("syndrome %d: member final-pass shape differs from free function", i)
			}
		}
		if r.Stats.TotalLookups != r.Stats.FinalLookups {
			t.Fatalf("syndrome %d: member total %d ≠ final %d", i, r.Stats.TotalLookups, r.Stats.FinalLookups)
		}
		if syns[i].Lookups() != r.Stats.FinalLookups {
			t.Fatalf("syndrome %d: member syndrome consulted %d times, final pass reports %d",
				i, syns[i].Lookups(), r.Stats.FinalLookups)
		}
	}
}

// TestShareCertificationPaperStrategyUngrouped pins the guard: the
// paper's contributor certificate grows a restricted Set_Builder whose
// verdict depends on faulty-tester behaviour inside mixed parts, so
// StrategyPaper batches must not share scans — every syndrome
// certifies individually and total look-ups match the free functions.
func TestShareCertificationPaperStrategyUngrouped(t *testing.T) {
	nw := topology.NewHypercube(7)
	delta := nw.Diagnosability()
	parts, err := nw.Parts(2*delta+2, delta+1)
	if err != nil {
		t.Fatal(err)
	}
	F := syndrome.RandomFaults(nw.Graph().N(), delta, rand.New(rand.NewSource(4)))
	syns := []syndrome.Syndrome{
		syndrome.NewLazy(F, syndrome.Mimic{}),
		syndrome.NewLazy(F, syndrome.AllZero{}),
	}
	refs := []syndrome.Syndrome{
		syndrome.NewLazy(F, syndrome.Mimic{}),
		syndrome.NewLazy(F, syndrome.AllZero{}),
	}
	eng := NewEngine(nw)
	opt := Options{Strategy: StrategyPaper, Parts: parts}
	for i, r := range eng.DiagnoseBatch(syns, BatchOptions{ShareCertification: true, Options: opt}) {
		want, wantStats, wantErr := DiagnoseOpts(nw, refs[i], opt)
		if (r.Err == nil) != (wantErr == nil) {
			t.Fatalf("syndrome %d: err %v vs %v", i, r.Err, wantErr)
		}
		if wantErr == nil && (!r.Faults.Equal(want) || r.Stats != *wantStats) {
			t.Fatalf("syndrome %d: paper-strategy batch diverged from individual call", i)
		}
		if syns[i].Lookups() != refs[i].Lookups() {
			t.Fatalf("syndrome %d: paper-strategy member skipped its own certification", i)
		}
	}
}

// TestShareCertificationOnRuntimePool runs the grouped batch on an
// externally supplied BatchPool (the campaign.Runtime shape, modelled
// here by a trivial sequential pool) to pin the Pool plumbing.
type seqPool struct{ e *Engine }

func (p seqPool) RunScratch(n int, fn func(sc *Scratch, i int)) {
	sc := p.e.AcquireScratch()
	defer p.e.ReleaseScratch(sc)
	for i := 0; i < n; i++ {
		fn(sc, i)
	}
}

func TestShareCertificationOnExternalPool(t *testing.T) {
	nw := topology.NewHypercube(8)
	delta := nw.Diagnosability()
	F := syndrome.RandomFaults(nw.Graph().N(), delta, rand.New(rand.NewSource(12)))
	syns := []syndrome.Syndrome{
		syndrome.NewLazy(F, syndrome.Mimic{}),
		syndrome.NewLazy(F, syndrome.Inverted{}),
		syndrome.NewLazy(F, syndrome.AllOne{}),
	}
	eng := NewEngine(nw)
	results := eng.DiagnoseBatch(syns, BatchOptions{ShareCertification: true, Pool: seqPool{eng}})
	for i, r := range results {
		want, _, wantErr := Diagnose(nw, syndrome.NewLazy(F, syns[i].(*syndrome.Lazy).Behavior()))
		if (r.Err == nil) != (wantErr == nil) || (wantErr == nil && !r.Faults.Equal(want)) {
			t.Fatalf("syndrome %d: pooled grouped batch diverged", i)
		}
	}
	if results[1].Stats.CertLookups != 0 || results[2].Stats.CertLookups != 0 {
		t.Fatal("members on the external pool did not share the scan")
	}
}
