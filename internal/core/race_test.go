package core

import (
	"math/rand"
	"sync"
	"testing"

	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// TestParallelCertifySharding exercises the per-worker sharded look-up
// counters: parallel certification shares one Lazy syndrome across
// workers (each taking a Shard view), and the merged counter must
// account for exactly the look-ups the call reports. Run under -race
// this also proves the shards keep the plain-counter Lazy data-race
// free.
func TestParallelCertifySharding(t *testing.T) {
	setGOMAXPROCS(t, 4)
	nw := topology.NewHypercube(9)
	delta := nw.Diagnosability()
	for trial := int64(0); trial < 8; trial++ {
		F := syndrome.RandomFaults(nw.Graph().N(), delta, rand.New(rand.NewSource(trial)))
		s := syndrome.NewLazy(F, syndrome.Mimic{})
		got, stats, err := DiagnoseOpts(nw, s, Options{Workers: 4})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !got.Equal(F) {
			t.Fatalf("trial %d: misdiagnosis", trial)
		}
		if s.Lookups() != stats.TotalLookups {
			t.Fatalf("trial %d: lookup accounting drifted: syndrome says %d, stats say %d",
				trial, s.Lookups(), stats.TotalLookups)
		}
	}
}

// TestParallelCertifyMatchesSequentialResult pins determinism of the
// parallel scan: it must certify a part yielding the same fault set as
// the sequential scan (the least certifying index wins).
func TestParallelCertifyMatchesSequentialResult(t *testing.T) {
	setGOMAXPROCS(t, 4)
	nw := topology.NewHypercube(9)
	delta := nw.Diagnosability()
	for trial := int64(10); trial < 16; trial++ {
		F := syndrome.RandomFaults(nw.Graph().N(), delta, rand.New(rand.NewSource(trial)))
		seqFaults, seqStats, err := DiagnoseOpts(nw, syndrome.NewLazy(F, syndrome.Mimic{}), Options{})
		if err != nil {
			t.Fatal(err)
		}
		parFaults, parStats, err := DiagnoseOpts(nw, syndrome.NewLazy(F, syndrome.Mimic{}), Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !seqFaults.Equal(parFaults) {
			t.Fatalf("trial %d: parallel fault set differs", trial)
		}
		if seqStats.CertifiedPart != parStats.CertifiedPart {
			t.Fatalf("trial %d: certified part %d (sequential) vs %d (parallel)",
				trial, seqStats.CertifiedPart, parStats.CertifiedPart)
		}
	}
}

// TestConcurrentDiagnoses runs many diagnoses at once, each with its
// own syndrome but drawing scratches from the shared pool — the
// campaign workload shape. Meaningful mainly under -race.
func TestConcurrentDiagnoses(t *testing.T) {
	setGOMAXPROCS(t, 4)
	nw := topology.NewHypercube(8)
	delta := nw.Diagnosability()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				F := syndrome.RandomFaults(nw.Graph().N(), delta, rand.New(rand.NewSource(seed*100+int64(i))))
				s := syndrome.NewLazy(F, syndrome.Mimic{})
				got, _, err := DiagnoseOpts(nw, s, Options{Workers: 2})
				if err != nil {
					errs <- err
					return
				}
				if !got.Equal(F) {
					t.Error("misdiagnosis under concurrency")
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
