package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/graph"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// Strategy selects how parts are certified fault-free during the search
// phase of Diagnose.
type Strategy int

const (
	// StrategyScan uses the O(Δ|P|) scan certificate (CertifyPart):
	// sound and complete whenever the partition preconditions hold.
	// This is the default.
	StrategyScan Strategy = iota
	// StrategyPaper uses the paper's literal contributor-count
	// certificate (restricted Set_Builder). Sound, but incomplete at the
	// paper's prescribed part sizes (gap G1); exposed for the ablation.
	StrategyPaper
)

// Options tunes Diagnose.
type Options struct {
	// Strategy selects the part certificate (default StrategyScan).
	Strategy Strategy
	// Workers > 1 certifies candidate parts concurrently. 0 or 1 means
	// sequential; negative means GOMAXPROCS.
	Workers int
	// Parts, when non-nil, overrides the network's own partition.
	Parts []topology.Part
	// FaultBound, when in (0, δ), tightens the assumed fault bound: if
	// the caller knows |F| ≤ t < δ, smaller and fewer parts suffice and
	// certification gets cheaper. Values ≤ 0 or > δ use δ.
	FaultBound int
	// Scratch, when non-nil, supplies the working buffers and makes the
	// sequential diagnosis path allocation-free: the returned fault set
	// and Stats are then views into the scratch, valid until its next
	// use (see Scratch). When nil, Diagnose draws a scratch from an
	// internal pool and returns caller-owned copies.
	Scratch *Scratch
	// FinalWorkers > 1 splits the final Set_Builder growth rounds across
	// that many workers on large graphs (≥ 4096 nodes; smaller graphs
	// stay sequential), for CSR and implicit adjacencies alike. The
	// fault set, tree and round count are always identical to the
	// sequential pass. On an engine with a bound word kernel the rounds
	// split at word granularity and even the look-up count stays
	// bit-identical (see rangedRounder); on the generic barrier pass
	// frontier workers cannot observe same-round admissions, so the
	// look-up count may exceed the sequential pass (see
	// SetBuilderParallel). 0 or 1 keeps the sequential pass; negative
	// means GOMAXPROCS. Stats.FinalWorkersUsed reports the fan-out that
	// actually engaged.
	FinalWorkers int
	// GenericFinal suppresses the engine's structure-specialised final
	// kernel, forcing the generic adaptive pass (setBuilderLazyInto).
	// Results and look-up counts are identical either way; the knob
	// exists for ablations and the perf suite's kernel-vs-generic
	// comparison. Ignored by the free functions (which never bind a
	// kernel).
	GenericFinal bool
	// ResultCache, when non-nil, memoises whole diagnosis outcomes on
	// the engine serving path: a *syndrome.Lazy whose fault hypothesis
	// and behaviour were already diagnosed under the same effective
	// fault bound and strategy is answered from the cache without any
	// syndrome consultation, and misses populate it. Results are
	// copied out on every hit (see ResultCache). The free functions
	// ignore the field — they are the paper-literal reference and
	// always recompute.
	ResultCache *ResultCache
	// fastFinal routes the final pass through the engine's specialised
	// kernel when the syndrome is a *syndrome.Lazy (set by Engine; the
	// free functions keep the reference loop). Output and look-up count
	// are identical either way — see setBuilderLazyInto.
	fastFinal bool
	// kernel carries the engine's bound structure kernel into the final
	// pass (see kernel.go); nil for generic topologies.
	kernel finalKernel
	// shared carries a certification verdict computed once per fault
	// hypothesis by a grouped DiagnoseBatch (see
	// BatchOptions.ShareCertification): the certified part index and
	// the group representative's scan footprint. When set, the part
	// scan is skipped entirely — only the final pass consults the
	// syndrome — and the Stats record the shared verdict with
	// CertLookups pinned to 0 (this syndrome spent none).
	shared *sharedScan
	// recordPrefix asks the final pass to record the group's shared
	// final-prefix checkpoint (set by a grouped DiagnoseBatch on each
	// group representative; see BatchOptions.ShareFinalPrefix and
	// finalPrefix). Recording never changes the representative's own
	// results or accounting.
	recordPrefix *finalPrefix
	// resumePrefix lets the final pass resume from a recorded
	// checkpoint instead of regrowing the behaviour-independent prefix
	// (set by a grouped DiagnoseBatch on group members). The member's
	// FinalLookups then cover only its own consultations past the
	// checkpoint; the adopted prefix is reported via the Stats
	// SharedFinal* fields.
	resumePrefix *finalPrefix
}

// sharedScan is the immutable part-certification verdict a grouped
// batch shares across all syndromes of one fault hypothesis.
type sharedScan struct {
	certified    int // index of the certified part, -1 for none
	partsScanned int // the representative's scan length
}

// Stats reports what a Diagnose call did — the quantities compared in
// the paper's Sections 3 and 6.
type Stats struct {
	Delta         int   // fault bound δ used
	PartsScanned  int   // parts examined before one certified
	CertifiedPart int   // index of the certified part
	Seed          int32 // seed of the final Set_Builder pass
	HealthyCount  int   // |U_r| of the final pass
	FaultCount    int   // |N| = number of faults reported
	Rounds        int   // growth rounds of the final pass
	CertLookups   int64 // syndrome look-ups spent certifying parts
	FinalLookups  int64 // syndrome look-ups of the final pass
	TotalLookups  int64 // all look-ups of this call

	// SharedFinalRounds and SharedFinalLookups are non-zero only for
	// members of a ShareFinalPrefix group: the growth rounds and
	// syndrome look-ups of the adopted behaviour-independent prefix,
	// which the group representative computed (and whose consultations
	// the representative's Stats carry). For such members FinalLookups
	// counts only the consultations past the checkpoint, so
	// FinalLookups + SharedFinalLookups equals the free-function
	// FinalLookups of the same syndrome.
	SharedFinalRounds  int
	SharedFinalLookups int64

	// FinalWorkersUsed reports the fan-out the final pass actually ran
	// with when Options.FinalWorkers requested parallelism (a request
	// above 1, or negative for GOMAXPROCS): the worker count that
	// engaged, or 1 when the request could not engage — a graph below
	// the parallel size gate, or a single available hardware thread —
	// and the pass silently took the sequential path. It stays 0
	// whenever FinalWorkers is 0 or 1, so whole-struct Stats comparisons
	// against the sequential reference path remain valid.
	FinalWorkersUsed int

	// Degraded marks a diagnosis served by a churn-degraded engine
	// (one that went through Engine.Rebind or was created by
	// Engine.Survivor): the result is still an exact Theorem 1
	// diagnosis, but of the surviving component under the degraded
	// fault bound EffectiveDelta rather than the originally bound
	// network under δ. Both fields stay zero on every non-degraded
	// path — the free functions and freshly bound engines — so
	// whole-struct Stats comparisons against the reference path remain
	// valid there.
	Degraded       bool
	EffectiveDelta int
}

// ErrNoHealthyPart means no candidate part certified as fault-free.
// Under the stated preconditions (|F| ≤ δ, valid partition) this cannot
// happen with StrategyScan; with StrategyPaper it records gap G1, and
// otherwise it signals that the fault set exceeded δ.
var ErrNoHealthyPart = errors.New("core: no part certified fault-free (fault bound exceeded, or paper certificate too weak — see DESIGN.md gap G1)")

// ErrTooManyFaults means the diagnosis produced more than δ fault
// candidates, proving the syndrome was generated by a fault set larger
// than the diagnosability bound.
var ErrTooManyFaults = errors.New("core: diagnosed fault set exceeds the diagnosability bound")

// Diagnose solves the fault diagnosis problem for the network: given a
// syndrome produced by at most δ = nw.Diagnosability() faults, it
// returns exactly the fault set (Theorem 1). It uses default Options.
//
// Diagnose rebuilds all syndrome-independent state (partition,
// candidate order) per call and runs the paper-literal reference loop.
// Callers diagnosing one network repeatedly should bind an Engine
// instead: identical results and look-up counts, amortised setup.
func Diagnose(nw topology.Network, s syndrome.Syndrome) (*bitset.Set, *Stats, error) {
	return DiagnoseOpts(nw, s, Options{})
}

// DiagnoseOpts is Diagnose with explicit Options. It is the per-call
// equivalent of NewEngine(nw).DiagnoseOpts(s, opt) without retaining
// the engine.
func DiagnoseOpts(nw topology.Network, s syndrome.Syndrome, opt Options) (*bitset.Set, *Stats, error) {
	delta := nw.Diagnosability()
	if opt.FaultBound > 0 && opt.FaultBound < delta {
		// A tighter caller-supplied bound is sound as long as it really
		// bounds |F|: κ ≥ δ > t keeps the Theorem 1 closure valid.
		delta = opt.FaultBound
	}
	parts := opt.Parts
	if parts == nil {
		var err error
		parts, err = nw.Parts(delta+1, delta+1)
		if err != nil {
			return nil, nil, fmt.Errorf("diagnosing %s: %w", nw.Name(), err)
		}
	}
	return DiagnoseGraph(nw.Graph(), delta, parts, s, opt)
}

// DiagnoseGraph runs the Theorem 1 procedure on an explicit graph,
// fault bound and partition: scan parts until one certifies fault-free,
// grow the healthy set from its seed with an unrestricted Set_Builder,
// and return the neighbourhood N of the healthy set — exactly the fault
// set when κ(g) ≥ delta and the partition satisfies the preconditions
// (≥ delta+1 disjoint connected parts, each larger than delta with
// induced minimum degree ≥ 2).
//
// Without Options.Scratch the returned fault set and Stats are owned by
// the caller; with it they are scratch views (see Options.Scratch).
func DiagnoseGraph(g *graph.Graph, delta int, parts []topology.Part, s syndrome.Syndrome, opt Options) (*bitset.Set, *Stats, error) {
	if opt.Scratch != nil {
		return diagnoseInto(opt.Scratch, g, delta, parts, s, opt)
	}
	sc := getScratch(g.N())
	faults, stats, err := diagnoseInto(sc, g, delta, parts, s, opt)
	faults, stats = cloneResults(faults, stats)
	putScratch(sc)
	return faults, stats, err
}

// diagnoseInto is the allocation-free core of DiagnoseGraph; everything
// it returns lives in sc. The adjacency may be CSR-backed or implicit
// (graph.CayleyAdjacency, via Engine's implicit mode); results and
// look-up counts are identical either way.
func diagnoseInto(sc *Scratch, a graph.Adjacencer, delta int, parts []topology.Part, s syndrome.Syndrome, opt Options) (*bitset.Set, *Stats, error) {
	sc.ensure(a.N())
	stats := &sc.stats
	*stats = Stats{Delta: delta, CertifiedPart: -1}
	startLookups := s.Lookups()

	// Only delta+1 disjoint parts are needed: one of them must be
	// fault-free.
	candidates := parts
	if len(candidates) > delta+1 {
		candidates = candidates[:delta+1]
	}

	var certified int
	if opt.shared != nil {
		// Grouped batch: this hypothesis was already certified by its
		// group representative; adopt the shared verdict. CertLookups
		// comes out 0 below because this syndrome was never consulted
		// during the scan.
		stats.PartsScanned = opt.shared.partsScanned
		certified = opt.shared.certified
	} else if workers := ClampWorkers(opt.Workers); workers > 1 {
		certified = certifyParallel(a, s, candidates, delta, opt.Strategy, workers)
		stats.PartsScanned = len(candidates) // parallel scan may touch all
	} else {
		certified = -1
		for i, p := range candidates {
			stats.PartsScanned = i + 1
			if certifyOne(sc, a, s, p, delta, opt.Strategy) {
				certified = i
				break
			}
		}
	}
	if certified < 0 {
		return nil, stats, ErrNoHealthyPart
	}
	stats.CertifiedPart = certified
	stats.CertLookups = s.Lookups() - startLookups

	seed := candidates[certified].Seed
	stats.Seed = seed

	beforeFinal := s.Lookups()
	finalWorkers := ClampWorkers(opt.FinalWorkers)
	parallel := finalWorkers > 1 && a.N() >= parallelFinalMinNodes
	if opt.FinalWorkers > 1 || opt.FinalWorkers < 0 {
		// Parallelism was requested: stamp the fan-out that actually
		// engaged, so a silently-sequential pass (small graph, single
		// hardware thread) is visible instead of indistinguishable from
		// a parallel one (cmd/diagnose prints this).
		stats.FinalWorkersUsed = 1
		if parallel {
			stats.FinalWorkersUsed = finalWorkers
		}
	}
	var final *SetBuilderResult
	var resumed *finalPrefix
	if parallel {
		// Parallel final passes never record or resume a shared-prefix
		// checkpoint (see BatchOptions.ShareFinalPrefix): grouped members
		// run in full.
		if opt.fastFinal && opt.kernel != nil {
			if lz, ok := s.(*syndrome.Lazy); ok {
				// Bound word kernel: rounds split at word granularity, so
				// the tree AND the look-up count stay bit-identical to the
				// sequential kernel (see rangedRounder).
				sc.finalWorkers = finalWorkers
				final = opt.kernel.run(sc, a, lz, seed, delta)
				sc.finalWorkers = 0
			}
		}
		if final == nil {
			// Generic barrier pass (CSR or implicit adjacency): identical
			// tree, look-ups may grow — workers cannot observe same-round
			// admissions (see SetBuilderParallel).
			final = setBuilderParallelInto(sc, a, s, seed, delta, nil, finalWorkers)
		}
	} else if opt.fastFinal {
		if lz, ok := s.(*syndrome.Lazy); ok {
			// Checkpoint plumbing rides on the scratch so every final
			// kernel (word-parallel drivers and the generic sweep) sees
			// it without widening the kernel interface. Resume engages
			// only when the checkpoint grew from this call's certified
			// seed — with unshared certification a member's own scan is
			// behaviour-independent under the grouping guards, so this
			// guard only bites when those guarantees were broken.
			if fp := opt.resumePrefix; fp != nil && fp.valid && fp.u0 == seed {
				sc.prefixRes = fp
				resumed = fp
			}
			sc.prefixRec = opt.recordPrefix
			if opt.kernel != nil {
				final = opt.kernel.run(sc, a, lz, seed, delta)
			} else {
				final = setBuilderLazyInto(sc, a, lz, seed, delta)
			}
			sc.prefixRec, sc.prefixRes = nil, nil
		}
	}
	if final == nil {
		final = SetBuilderInto(sc, a, s, seed, delta, nil)
	}
	stats.FinalLookups = s.Lookups() - beforeFinal
	if resumed != nil {
		stats.SharedFinalRounds = resumed.rounds
		stats.SharedFinalLookups = resumed.lookups
	}
	stats.Rounds = final.Rounds
	stats.HealthyCount = final.U.Count()

	faults := sc.faultsBuf()
	sc.nbuf = graph.NeighborsOfSetOnInto(a, final.U, faults, sc.nbuf)
	stats.FaultCount = faults.Count()
	stats.TotalLookups = s.Lookups() - startLookups
	if stats.FaultCount > delta {
		return nil, stats, ErrTooManyFaults
	}
	return faults, stats, nil
}

// certifyOne runs the selected certificate on one part using sc's
// reusable mask (populated and cleared member-wise — O(|part|), not
// O(n)) and neighbour buffer. Both the sequential scan and the
// parallel workers go through here, so the two paths cannot diverge.
func certifyOne(sc *Scratch, a graph.Adjacencer, s syndrome.Syndrome, p topology.Part, delta int, strat Strategy) bool {
	mask := sc.maskBuf()
	for _, v := range p.Nodes {
		mask.Add(int(v))
	}
	ok := false
	if strat == StrategyPaper {
		ok = certifyPaperInto(sc, a, s, p.Seed, delta, mask) != nil
	} else {
		ok, sc.ns, sc.nbuf = certifyScan(a, s, p.Nodes, mask, sc.ns, sc.nbuf)
	}
	for _, v := range p.Nodes {
		mask.Remove(int(v))
	}
	return ok
}

// certifyParallel scans candidate parts concurrently and returns the
// least index that certifies, or -1. The result is deterministic: an
// index is only skipped when a smaller or equal index has already
// certified. Each worker draws its own pooled Scratch and — when the
// syndrome supports sharding — a per-worker Shard view, so look-up
// counting stays exact without a contended atomic per Test.
func certifyParallel(a graph.Adjacencer, s syndrome.Syndrome, parts []topology.Part, delta int, strat Strategy, workers int) int {
	best := atomic.Int64{}
	best.Store(int64(len(parts)))
	var wg sync.WaitGroup
	idx := atomic.Int64{}
	idx.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var ws syndrome.Syndrome
			if sharder, ok := s.(syndrome.Sharder); ok {
				shard := sharder.Shard()
				defer shard.Close()
				ws = shard
			} else {
				// Non-sharding syndromes must tolerate concurrent Test
				// themselves (the ForConcurrent contract).
				ws = syndrome.ForConcurrent(s)
			}
			sc := getScratch(a.N())
			defer putScratch(sc)
			for {
				i := idx.Add(1)
				if i >= int64(len(parts)) {
					return
				}
				if i >= best.Load() {
					continue
				}
				if certifyOne(sc, a, ws, parts[i], delta, strat) {
					for {
						cur := best.Load()
						if i >= cur || best.CompareAndSwap(cur, i) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	if b := best.Load(); b < int64(len(parts)) {
		return int(b)
	}
	return -1
}
