package core

import (
	"slices"
	"sync"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/graph"
	"comparisondiag/internal/syndrome"
)

const (
	// parallelFinalMinNodes gates Options.FinalWorkers: below this many
	// nodes the frontier never grows large enough to pay for per-round
	// goroutine coordination.
	parallelFinalMinNodes = 4096
	// parallelFrontierMin is the per-round threshold: smaller frontiers
	// are grown in-line on the calling goroutine.
	parallelFrontierMin = 256
)

// parallelAdmission records one 0-answer found by a worker: tester u
// vouched for non-member v.
type parallelAdmission struct {
	v, u int32
}

// SetBuilderParallel is SetBuilder with the growth rounds split across
// workers — the final-pass variant for multi-million-node graphs. The
// adjacency may be CSR-backed or implicit (graph.CayleyAdjacency):
// workers on an implicit adjacency generate neighbours into private
// buffers, so descriptor-bound engines fan out exactly like CSR ones.
// It allocates a fresh Scratch; hot paths should reuse one via an
// Engine (Options.FinalWorkers) instead.
//
// The result — U, Parent, Contributors, Rounds, AllHealthy — is
// identical to the sequential SetBuilder: within a round every frontier
// neighbour of a non-member may test it, and the least tester answering
// 0 becomes the parent, which is exactly the sequential tie-break. The
// look-up COUNT may exceed the sequential pass, because workers cannot
// observe admissions made concurrently in the same round and therefore
// keep testing nodes a sequential sweep would already have admitted.
// Callers that need the paper's exact look-up economy use the
// sequential pass; callers that need wall-clock on huge graphs use this
// one. (The engine's word kernels have a stronger parallel mode that
// keeps even the look-up count exact — see runWordKernel.)
func SetBuilderParallel(a graph.Adjacencer, s syndrome.Syndrome, u0 int32, delta int, restrict *bitset.Set, workers int) *SetBuilderResult {
	if workers = ClampWorkers(workers); workers < 2 {
		// One hardware thread: the barrier machinery cannot pay for
		// itself, and the sequential pass is additionally look-up-exact.
		return SetBuilderInto(NewScratch(a.N()), a, s, u0, delta, restrict)
	}
	return setBuilderParallelInto(NewScratch(a.N()), a, s, u0, delta, restrict, workers)
}

// setBuilderParallelInto runs the parallel growth rounds inside sc.
// workers must be ≥ 2; each worker takes a sharded syndrome view so
// look-up counting stays exact without a contended atomic, and (on an
// implicit adjacency) a private neighbour-generation buffer.
func setBuilderParallelInto(sc *Scratch, a graph.Adjacencer, s syndrome.Syndrome, u0 int32, delta int, restrict *bitset.Set, workers int) *SetBuilderResult {
	sc.ensure(a.N())
	sc.resetTree()
	csr := graph.CSR(a)
	var offs, tgts []int32
	if csr != nil {
		offs, tgts = csr.Adjacency()
	}
	res := &sc.res
	*res = SetBuilderResult{U: sc.u, Parent: sc.parent, Contributors: sc.contributors}
	res.U.Add(int(u0))
	start := s.Lookups()

	in := func(v int32) bool {
		return restrict == nil || restrict.Contains(int(v))
	}
	// neigh enumerates u's neighbours: a zero-copy CSR view, or
	// generation into the supplied buffer for implicit adjacencies.
	neigh := func(u int32, buf []int32) ([]int32, []int32) {
		if csr != nil {
			return tgts[offs[u]:offs[u+1]], buf
		}
		buf = a.AppendNeighbors(u, buf)
		return buf, buf
	}

	// Round 1 is the O(Δ²) pair scan of the seed — always in-line.
	var adj []int32
	adj, sc.nbuf = neigh(u0, sc.nbuf)
	frontier := sc.frontier[:0]
	next := sc.next[:0]
	for i := 0; i < len(adj); i++ {
		if !in(adj[i]) {
			continue
		}
		for j := i + 1; j < len(adj); j++ {
			if !in(adj[j]) {
				continue
			}
			vi, vj := adj[i], adj[j]
			if res.U.Contains(int(vi)) && res.U.Contains(int(vj)) {
				continue
			}
			if s.Test(u0, vi, vj) == 0 {
				for _, v := range [2]int32{vi, vj} {
					if !res.U.Contains(int(v)) {
						res.U.Add(int(v))
						res.Parent[v] = u0
						frontier = append(frontier, v)
					}
				}
			}
		}
	}
	contribCount := 0
	if len(frontier) > 0 {
		res.Contributors.Add(int(u0))
		contribCount = 1
		res.Rounds = 1
	}
	if contribCount > delta {
		res.AllHealthy = true
	}

	// Per-worker syndrome views, admission buffers and neighbour
	// buffers, reused across rounds. Shards are closed before the final
	// count so the parent's Lookups is exact.
	views := make([]syndrome.Syndrome, workers)
	var shards []*syndrome.Shard
	for w := range views {
		if sh, ok := s.(syndrome.Sharder); ok {
			shard := sh.Shard()
			views[w] = shard
			shards = append(shards, shard)
		} else {
			views[w] = syndrome.ForConcurrent(s)
		}
	}
	admits := make([][]parallelAdmission, workers)
	nbufs := make([][]int32, workers)

	added := sc.added
	var wg sync.WaitGroup
	// Barrier rounds break admission ties towards the least tester,
	// which matches the sequential sweep only while the frontier is
	// sorted; a faulty seed can scramble the U_1 frontier (see
	// setBuilderLazyInto), and those rounds must stay sequential.
	sorted := slices.IsSorted(frontier)
	for len(frontier) > 0 {
		admitted := 0
		if !sorted || len(frontier) < parallelFrontierMin {
			// Small round: the sequential sweep, directly on s. Mid-round
			// admissions are visible (fewer look-ups); the resulting tree
			// is the same either way — see the equivalence note above.
			for _, u := range frontier {
				tu := res.Parent[u]
				var nbrs []int32
				nbrs, sc.nbuf = neigh(u, sc.nbuf)
				for _, v := range nbrs {
					if res.U.Contains(int(v)) || !in(v) {
						continue
					}
					if s.Test(u, v, tu) == 0 {
						res.U.Add(int(v))
						res.Parent[v] = u
						added.Add(int(v))
						admitted++
						if !res.Contributors.Contains(int(u)) {
							res.Contributors.Add(int(u))
							contribCount++
						}
					}
				}
			}
		} else {
			// Barrier round: workers scan disjoint frontier chunks against
			// the round-start U (it only changes at the merge below).
			nw := workers
			if nw > len(frontier) {
				nw = len(frontier)
			}
			chunk := (len(frontier) + nw - 1) / nw
			work := frontier
			wg.Add(nw)
			for w := 0; w < nw; w++ {
				lo := w * chunk
				hi := min(lo+chunk, len(work))
				go func(w, lo, hi int) {
					defer wg.Done()
					buf := admits[w][:0]
					nbuf := nbufs[w]
					ws := views[w]
					for _, u := range work[lo:hi] {
						tu := res.Parent[u]
						var nbrs []int32
						nbrs, nbuf = neigh(u, nbuf)
						for _, v := range nbrs {
							if res.U.Contains(int(v)) || !in(v) {
								continue
							}
							if ws.Test(u, v, tu) == 0 {
								buf = append(buf, parallelAdmission{v: v, u: u})
							}
						}
					}
					admits[w] = buf
					nbufs[w] = nbuf
				}(w, lo, hi)
			}
			wg.Wait()
			// Merge: the least tester answering 0 wins each node — the
			// sequential tie-break, independent of worker scheduling.
			for w := 0; w < nw; w++ {
				for _, a := range admits[w] {
					if !added.Contains(int(a.v)) {
						added.Add(int(a.v))
						res.Parent[a.v] = a.u
						admitted++
					} else if a.u < res.Parent[a.v] {
						res.Parent[a.v] = a.u
					}
				}
			}
			if admitted > 0 {
				next = added.Drain(next[:0])
				for _, v := range next {
					res.U.Add(int(v))
					p := res.Parent[v]
					if !res.Contributors.Contains(int(p)) {
						res.Contributors.Add(int(p))
						contribCount++
					}
				}
				frontier, next = next, frontier
				res.Rounds++
				if contribCount > delta {
					res.AllHealthy = true
				}
				continue
			}
		}
		if admitted == 0 {
			break
		}
		next = added.Drain(next[:0])
		sorted = true // Drain yields ascending order
		frontier, next = next, frontier
		res.Rounds++
		if contribCount > delta {
			res.AllHealthy = true
		}
	}
	sc.frontier, sc.next = frontier, next
	for _, sh := range shards {
		sh.Close()
	}
	res.Lookups = s.Lookups() - start
	return res
}
