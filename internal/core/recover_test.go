package core

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"comparisondiag/internal/graph"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// distinctNodes draws k distinct node ids below n.
func distinctNodes(n, k int, rng *rand.Rand) []int32 {
	seen := map[int32]bool{}
	var nodes []int32
	for len(nodes) < k {
		u := int32(rng.Intn(n))
		if !seen[u] {
			seen[u] = true
			nodes = append(nodes, u)
		}
	}
	return nodes
}

// TestFlapRebindBitIdenticalToFreshBind is the keystone recovery
// property: after remove-then-restore, the engine is bit-identical to a
// fresh bind on the restored graph — fault sets, whole Stats (degraded
// stamp cleared), per-syndrome look-up counts, and the kernel name.
func TestFlapRebindBitIdenticalToFreshBind(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for _, nw := range []topology.Network{topology.NewHypercube(8), topology.NewKAryNCube(3, 4)} {
		fresh := NewEngine(nw)
		eng := NewEngine(nw)
		for trial := 0; trial < 4; trial++ {
			nodes := distinctNodes(eng.Graph().N(), 1+rng.Intn(6), rng)
			var edges [][2]int32
			if u := nodes[0]; len(fresh.Graph().Neighbors(u)) > 1 {
				edges = [][2]int32{{u, fresh.Graph().Neighbors(u)[1]}}
			}
			rr := eng.Graph().Remove(nodes, edges)
			if _, err := eng.Rebind(rr); err != nil {
				t.Fatalf("%s trial %d: Rebind(removal): %v", nw.Name(), trial, err)
			}
			if !eng.Degraded() {
				t.Fatalf("%s trial %d: engine not degraded after removal", nw.Name(), trial)
			}
			gr := graph.Restore(rr, nodes, edges)
			rep, err := eng.Rebind(gr)
			if err != nil {
				t.Fatalf("%s trial %d: Rebind(growth): %v", nw.Name(), trial, err)
			}
			if !rep.Grew || rep.StillGone != 0 {
				t.Fatalf("%s trial %d: unexpected growth report %+v", nw.Name(), trial, rep)
			}
			if eng.Degraded() {
				t.Fatalf("%s trial %d: degraded stamp did not clear on full restore", nw.Name(), trial)
			}
			if eng.Diagnosability() != fresh.Diagnosability() {
				t.Fatalf("%s trial %d: δ′ = %d after flap, want δ = %d", nw.Name(), trial, eng.Diagnosability(), fresh.Diagnosability())
			}
			if eng.KernelName() != fresh.KernelName() {
				t.Fatalf("%s trial %d: kernel %q after flap, want %q", nw.Name(), trial, eng.KernelName(), fresh.KernelName())
			}
			pf, _ := fresh.Parts()
			pe, perr := eng.Parts()
			if perr != nil || len(pe) != len(pf) {
				t.Fatalf("%s trial %d: parts %d (err %v), want %d", nw.Name(), trial, len(pe), perr, len(pf))
			}
			for pi := range pe {
				if pe[pi].Seed != pf[pi].Seed || len(pe[pi].Nodes) != len(pf[pi].Nodes) {
					t.Fatalf("%s trial %d: part %d differs after flap", nw.Name(), trial, pi)
				}
				for i := range pe[pi].Nodes {
					if pe[pi].Nodes[i] != pf[pi].Nodes[i] {
						t.Fatalf("%s trial %d: part %d node %d differs", nw.Name(), trial, pi, i)
					}
				}
			}
			for _, b := range []syndrome.Behavior{syndrome.Mimic{}, syndrome.Random{Seed: uint64(trial)}} {
				F := syndrome.RandomFaults(eng.Graph().N(), rng.Intn(eng.Diagnosability()+1), rng)
				s1 := syndrome.NewLazy(F, b)
				s2 := syndrome.NewLazy(F, b)
				f1, st1, err1 := eng.Diagnose(s1)
				f2, st2, err2 := fresh.Diagnose(s2)
				if err1 != nil || err2 != nil {
					t.Fatalf("%s trial %d: errs %v / %v", nw.Name(), trial, err1, err2)
				}
				if !f1.Equal(f2) {
					t.Fatalf("%s trial %d: fault sets diverge", nw.Name(), trial)
				}
				if *st1 != *st2 {
					t.Fatalf("%s trial %d: flapped stats %+v != fresh stats %+v", nw.Name(), trial, st1, st2)
				}
				if s1.Lookups() != s2.Lookups() {
					t.Fatalf("%s trial %d: per-syndrome lookups %d != %d", nw.Name(), trial, s1.Lookups(), s2.Lookups())
				}
			}
		}
	}
}

// TestGrowthRebindPartialDifferential restores only part of a removal
// and cross-checks the still-degraded engine against the free reference
// on the regrown partition.
func TestGrowthRebindPartialDifferential(t *testing.T) {
	nw := topology.NewHypercube(8)
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		eng := NewEngine(nw)
		nodes := distinctNodes(eng.Graph().N(), 2+rng.Intn(10), rng)
		rr := eng.Graph().RemoveNodes(nodes)
		if _, err := eng.Rebind(rr); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		deltaBefore := eng.Diagnosability()
		gr := graph.Restore(rr, nodes[:len(nodes)/2], nil)
		rep, err := eng.Rebind(gr)
		if err != nil {
			t.Fatalf("trial %d: growth rebind: %v", trial, err)
		}
		if !eng.Degraded() {
			t.Fatalf("trial %d: partial restore must stay degraded", trial)
		}
		if got := eng.Diagnosability(); got < deltaBefore {
			t.Fatalf("trial %d: δ′ fell from %d to %d on a node-restore growth", trial, deltaBefore, got)
		}
		if rep.EffectiveDelta != eng.Diagnosability() {
			t.Fatalf("trial %d: report δ′ %d != engine %d", trial, rep.EffectiveDelta, eng.Diagnosability())
		}
		parts, perr := eng.Parts()
		if perr != nil {
			t.Fatalf("trial %d: unservable after growth: %v", trial, perr)
		}
		delta2 := eng.Diagnosability()
		g2 := eng.Graph()
		for i := 0; i < 3; i++ {
			F := syndrome.RandomFaults(g2.N(), rng.Intn(delta2+1), rng)
			f1, st1, err1 := eng.Diagnose(syndrome.NewLazy(F, syndrome.Mimic{}))
			f2, st2, err2 := DiagnoseGraph(g2, delta2, parts, syndrome.NewLazy(F, syndrome.Mimic{}), Options{})
			if err1 != nil || err2 != nil {
				t.Fatalf("trial %d: errs %v / %v", trial, err1, err2)
			}
			if !f1.Equal(f2) || !f1.Equal(F) {
				t.Fatalf("trial %d: fault sets diverge from reference", trial)
			}
			if !st1.Degraded || st1.EffectiveDelta != delta2 {
				t.Fatalf("trial %d: missing degraded stamp after partial growth: %+v", trial, st1)
			}
			if zeroDegraded(*st1) != *st2 {
				t.Fatalf("trial %d: engine stats %+v != reference %+v", trial, st1, st2)
			}
		}
	}
}

// TestGrowthRebindDeltaAscends restores a heavy removal node by node
// and checks δ′ climbs monotonically back to δ.
func TestGrowthRebindDeltaAscends(t *testing.T) {
	nw := topology.NewHypercube(7)
	eng := NewEngine(nw)
	rng := rand.New(rand.NewSource(17))
	nodes := distinctNodes(eng.Graph().N(), 10, rng)
	rr := eng.Graph().RemoveNodes(nodes)
	if _, err := eng.Rebind(rr); err != nil {
		t.Fatal(err)
	}
	last := eng.Diagnosability()
	cur := rr
	for i := len(nodes) - 1; i >= 0; i-- {
		gr := graph.Restore(cur, nodes[i:], nil)
		if _, err := eng.Rebind(gr); err != nil {
			t.Fatalf("restoring %d nodes: %v", len(nodes)-i, err)
		}
		if got := eng.Diagnosability(); got < last {
			t.Fatalf("δ′ fell from %d to %d while restoring", last, got)
		} else {
			last = got
		}
		cur = gr.Remaining
	}
	if last != nw.Diagnosability() || eng.Degraded() {
		t.Fatalf("after full re-growth δ′ = %d (degraded=%v), want δ = %d", last, eng.Degraded(), nw.Diagnosability())
	}
}

// TestGrowthKernelPromotion checks the generic→kernel transition: a
// removal drops the hypercube kernel to generic, a full restore
// re-verifies the kept descriptor and re-binds it, logged in the
// report.
func TestGrowthKernelPromotion(t *testing.T) {
	nw := topology.NewHypercube(7)
	eng := NewEngine(nw)
	want := eng.KernelName()
	if want == "generic" {
		t.Fatal("expected a specialised kernel on a fresh hypercube bind")
	}
	rr := eng.Graph().RemoveNodes([]int32{5})
	rep, err := eng.Rebind(rr)
	if err != nil {
		t.Fatal(err)
	}
	if eng.KernelName() != "generic" || rep.KernelFallbackReason == "" {
		t.Fatalf("expected generic fallback after node removal, got %q (%+v)", eng.KernelName(), rep)
	}
	rep2, err := eng.Rebind(graph.Restore(rr, []int32{5}, nil))
	if err != nil {
		t.Fatal(err)
	}
	if eng.KernelName() != want {
		t.Fatalf("kernel %q after full restore, want %q", eng.KernelName(), want)
	}
	if rep2.KernelPromotion == "" || !strings.Contains(rep2.KernelPromotion, want) {
		t.Fatalf("promotion not logged: %+v", rep2)
	}
	if rep2.KernelBefore != "generic" || rep2.KernelAfter != want {
		t.Fatalf("kernel transition %q->%q, want generic->%q", rep2.KernelBefore, rep2.KernelAfter, want)
	}
}

// TestGrowthCacheRemap runs a ResultCache through a full flap: entries
// populated before the churn are flushed or remapped on the way down
// and remapped back on the way up, with the degraded stamp cleared —
// post-recovery hits serve non-degraded Stats.
func TestGrowthCacheRemap(t *testing.T) {
	nw := topology.NewHypercube(7)
	eng := NewEngine(nw)
	cache := NewResultCache(64)
	rng := rand.New(rand.NewSource(23))
	opt := Options{ResultCache: cache}

	var syns []*syndrome.Lazy
	for i := 0; i < 6; i++ {
		F := syndrome.RandomFaults(eng.Graph().N(), 1+rng.Intn(3), rng)
		s := syndrome.NewLazy(F, syndrome.Mimic{})
		if _, _, err := eng.DiagnoseOpts(s, opt); err != nil {
			t.Fatal(err)
		}
		syns = append(syns, s)
	}
	rr := eng.Graph().RemoveNodes([]int32{3, 77})
	rep1, err := eng.Rebind(rr, cache)
	if err != nil {
		t.Fatal(err)
	}
	gr := graph.Restore(rr, []int32{3, 77}, nil)
	rep2, err := eng.Rebind(gr, cache)
	if err != nil {
		t.Fatal(err)
	}
	// Growth remaps through a total id map: everything the removal kept
	// must survive the growth.
	if rep2.CacheFlushed != 0 || rep2.CacheKept != rep1.CacheKept {
		t.Fatalf("growth cache census %d flushed/%d kept, want 0/%d", rep2.CacheFlushed, rep2.CacheKept, rep1.CacheKept)
	}
	if rep2.CacheKept == 0 {
		t.Skip("removal flushed every entry; nothing to check post-recovery")
	}
	before := cache.Stats()
	served := 0
	for _, s := range syns {
		F := s.Faults()
		if F.Count() > eng.Diagnosability() {
			continue
		}
		_, st, err := eng.DiagnoseOpts(syndrome.NewLazy(F.Clone(), syndrome.Mimic{}), opt)
		if err != nil {
			t.Fatal(err)
		}
		if cache.Stats().Hits > before.Hits+int64(served) {
			served++
			if st.Degraded || st.EffectiveDelta != 0 {
				t.Fatalf("post-recovery cache hit still stamped degraded: %+v", st)
			}
		}
	}
	if served == 0 && rep2.CacheKept > 0 {
		t.Fatalf("no remapped entry served a hit after recovery (kept %d)", rep2.CacheKept)
	}
}

// TestGrowthRebindRejectsMismatched checks the growth-side validation:
// growing an engine that was never churned, and growing across the
// wrong anchor, both fail without mutating the engine.
func TestGrowthRebindRejectsMismatched(t *testing.T) {
	nw := topology.NewHypercube(6)
	eng := NewEngine(nw)
	g := eng.Graph()
	rr := g.RemoveNodes([]int32{1})
	gr := graph.Restore(rr, []int32{1}, nil)
	if _, err := eng.Rebind(gr); err == nil {
		t.Fatal("growth rebind on an unchurned engine must fail")
	}
	if _, err := eng.Rebind(rr); err != nil {
		t.Fatal(err)
	}
	// A second removal makes gr stale: it maps the first survivor, not
	// the current one.
	rr2 := eng.Graph().RemoveNodes([]int32{0})
	if _, err := eng.Rebind(rr2); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Rebind(graph.Restore(rr, []int32{1}, nil)); err == nil {
		t.Fatal("stale growth (wrong survivor space) must be rejected")
	}
	if eng.Graph().N() != rr2.G.N() {
		t.Fatal("failed growth rebind mutated the engine")
	}
}

// goneNodes lists the old-space ids a mapping leaves behind.
func goneNodes(oldToNew []int32) []int32 {
	var gone []int32
	for old := int32(0); int(old) < len(oldToNew); old++ {
		if oldToNew[old] < 0 {
			gone = append(gone, old)
		}
	}
	return gone
}

// TestRecoverQuickInterleavings is the testing/quick differential leg:
// random remove/restore interleavings on Q6 — removals stack, restores
// chew at the most recent chain — each step cross-checked against the
// free reference, then the whole stack is unwound and the engine
// checked bit-identical to a fresh bind.
func TestRecoverQuickInterleavings(t *testing.T) {
	nw := topology.NewHypercube(6)
	type chain struct {
		res  *graph.Removal // residual removal vs its own anchor world
		gone []int32        // anchor-space ids still out
	}
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := NewEngine(nw)
		var stack []chain
		steps := 3 + rng.Intn(5)
		for step := 0; step < steps; step++ {
			if len(stack) == 0 || rng.Intn(2) == 0 {
				// Remove 1-3 random current nodes; the removal anchors at
				// the engine's current world, so it stacks on top.
				g := eng.Graph()
				if g.N() < 8 {
					break
				}
				picks := distinctNodes(g.N(), 1+rng.Intn(3), rng)
				rr := g.RemoveNodes(picks)
				if rr.G.N() == 0 {
					continue
				}
				if _, err := eng.Rebind(rr); err != nil {
					t.Logf("seed %d step %d: removal rebind: %v", seed, step, err)
					return false
				}
				stack = append(stack, chain{res: rr, gone: goneNodes(rr.OldToNew)})
			} else {
				// Restore a random non-empty subset of the top chain's
				// gone set; a full restore pops the chain and re-exposes
				// the removal beneath it.
				top := &stack[len(stack)-1]
				k := 1 + rng.Intn(len(top.gone))
				subset := make([]int32, 0, k)
				for _, u := range rng.Perm(len(top.gone))[:k] {
					subset = append(subset, top.gone[u])
				}
				gr := graph.Restore(top.res, subset, nil)
				if _, err := eng.Rebind(gr); err != nil {
					t.Logf("seed %d step %d: growth rebind: %v", seed, step, err)
					return false
				}
				top.res = gr.Remaining
				top.gone = goneNodes(gr.OldToNew)
				if len(top.gone) == 0 && len(gr.Remaining.GoneEdges) == 0 {
					stack = stack[:len(stack)-1]
				}
			}
			if perr := eng.PartsErr(); perr != nil {
				continue // unservable this step; later restores may lift it
			}
			parts, _ := eng.Parts()
			delta2 := eng.Diagnosability()
			g2 := eng.Graph()
			F := syndrome.RandomFaults(g2.N(), rng.Intn(delta2+1), rng)
			f1, st1, err1 := eng.Diagnose(syndrome.NewLazy(F, syndrome.Mimic{}))
			f2, st2, err2 := DiagnoseGraph(g2, delta2, parts, syndrome.NewLazy(F, syndrome.Mimic{}), Options{})
			if err1 != nil || err2 != nil {
				t.Logf("seed %d step %d: errs %v / %v", seed, step, err1, err2)
				return false
			}
			if !f1.Equal(f2) {
				t.Logf("seed %d step %d: fault sets diverge", seed, step)
				return false
			}
			if eng.Degraded() {
				if zeroDegraded(*st1) != *st2 {
					t.Logf("seed %d step %d: stats diverge: %+v vs %+v", seed, step, st1, st2)
					return false
				}
			} else if *st1 != *st2 {
				t.Logf("seed %d step %d: stats diverge: %+v vs %+v", seed, step, st1, st2)
				return false
			}
		}
		// Unwind the whole stack: each full restore re-exposes the
		// removal beneath it, and the last one clears the degraded stamp.
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			gr := graph.Restore(top.res, top.gone, top.res.GoneEdges)
			if _, err := eng.Rebind(gr); err != nil {
				t.Logf("seed %d: unwinding %d chains: %v", seed, len(stack), err)
				return false
			}
			if gr.StillGone != 0 || len(gr.Remaining.GoneEdges) != 0 {
				t.Logf("seed %d: full restore left %d nodes/%d edges gone", seed, gr.StillGone, len(gr.Remaining.GoneEdges))
				return false
			}
			stack = stack[:len(stack)-1]
		}
		if eng.Degraded() {
			t.Logf("seed %d: still degraded after unwinding every chain", seed)
			return false
		}
		fresh := NewEngine(nw)
		if eng.Diagnosability() != fresh.Diagnosability() || eng.KernelName() != fresh.KernelName() {
			t.Logf("seed %d: recovered engine differs from fresh bind", seed)
			return false
		}
		F := syndrome.RandomFaults(eng.Graph().N(), rng.Intn(fresh.Diagnosability()+1), rng)
		f1, st1, err1 := eng.Diagnose(syndrome.NewLazy(F, syndrome.Mimic{}))
		f2, st2, err2 := fresh.Diagnose(syndrome.NewLazy(F, syndrome.Mimic{}))
		if err1 != nil || err2 != nil || !f1.Equal(f2) || *st1 != *st2 {
			t.Logf("seed %d: final diagnosis differs from fresh bind", seed)
			return false
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveredWarmDiagnoseZeroAlloc pins the scratch-pool contract
// across a flap: the graph grows back, scratches resize once, and the
// warm post-recovery diagnose path allocates nothing.
func TestRecoveredWarmDiagnoseZeroAlloc(t *testing.T) {
	eng := NewEngine(topology.NewHypercube(8))
	rr := eng.Graph().RemoveNodes([]int32{17, 42})
	if _, err := eng.Rebind(rr); err != nil {
		t.Fatal(err)
	}
	// Warm the degraded path first so pooled scratches hold the smaller
	// graph, then recover — the regrown binding must resize them without
	// breaking the steady state.
	gSmall := eng.Graph()
	sPre := syndrome.NewLazy(syndrome.RandomFaults(gSmall.N(), 2, rand.New(rand.NewSource(5))), syndrome.Mimic{})
	if _, _, err := eng.Diagnose(sPre); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Rebind(graph.Restore(rr, []int32{17, 42}, nil)); err != nil {
		t.Fatal(err)
	}
	if eng.Degraded() {
		t.Fatal("engine still degraded after full restore")
	}
	g := eng.Graph()
	F := syndrome.RandomFaults(g.N(), eng.Diagnosability(), rand.New(rand.NewSource(3)))
	s := syndrome.NewLazy(F, syndrome.Mimic{})
	sc := eng.AcquireScratch()
	defer eng.ReleaseScratch(sc)
	opt := Options{Scratch: sc}
	if _, _, err := eng.DiagnoseOpts(s, opt); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, _, err := eng.DiagnoseOpts(s, opt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm diagnose after recovery allocates %.1f per op, want 0", allocs)
	}
}

// TestCacheSketchAdmission checks the count-min admission gate: below
// the threshold inserts are bypassed, at it they are admitted, and the
// bypass census lands in CacheStats.
func TestCacheSketchAdmission(t *testing.T) {
	nw := topology.NewHypercube(6)
	eng := NewEngine(nw)
	cache := NewResultCacheWithSketch(32, 3)
	rng := rand.New(rand.NewSource(9))
	F := syndrome.RandomFaults(eng.Graph().N(), 2, rng)
	opt := Options{ResultCache: cache}
	for i := 1; i <= 4; i++ {
		if _, _, err := eng.DiagnoseOpts(syndrome.NewLazy(F.Clone(), syndrome.Mimic{}), opt); err != nil {
			t.Fatal(err)
		}
		st := cache.Stats()
		switch {
		case i < 3:
			if st.Entries != 0 || st.Bypassed != int64(i) {
				t.Fatalf("sighting %d: entries=%d bypassed=%d, want 0/%d", i, st.Entries, st.Bypassed, i)
			}
		case i == 3:
			if st.Entries != 1 || st.Bypassed != 2 {
				t.Fatalf("sighting 3: entries=%d bypassed=%d, want 1/2", st.Entries, st.Bypassed)
			}
		default:
			if st.Hits != 1 {
				t.Fatalf("sighting 4: hits=%d, want 1 (admitted entry must serve)", st.Hits)
			}
		}
	}
	// threshold ≤ 1 must behave like the default policy.
	plain := NewResultCacheWithSketch(32, 1)
	if _, _, err := eng.DiagnoseOpts(syndrome.NewLazy(F.Clone(), syndrome.Mimic{}), Options{ResultCache: plain}); err != nil {
		t.Fatal(err)
	}
	if st := plain.Stats(); st.Entries != 1 || st.Bypassed != 0 {
		t.Fatalf("threshold 1: entries=%d bypassed=%d, want 1/0", st.Entries, st.Bypassed)
	}
}

// TestCacheSketchAging drives enough distinct insertions through a tiny
// sketch to force at least one halving reset.
func TestCacheSketchAging(t *testing.T) {
	c := NewResultCacheWithSketch(1, 2)
	width := len(c.sketch.counters[0])
	for i := 0; i < width*cmAgeFactor+8; i++ {
		c.sketch.addEstimate(uint64(i) * 0x9e3779b97f4a7c15)
	}
	if c.sketch.resets == 0 {
		t.Fatal("sketch never aged")
	}
	if st := c.Stats(); st.SketchResets == 0 {
		t.Fatal("SketchResets not surfaced in CacheStats")
	}
}

// TestGrowthRebindLiftsUnservable drives an engine into
// ErrNoSurvivingPartition with one heavy removal and checks a full
// restore lifts it all the way back to δ.
func TestGrowthRebindLiftsUnservable(t *testing.T) {
	nw := topology.NewHypercube(6)
	rng := rand.New(rand.NewSource(31))
	var eng *Engine
	var rr *graph.Removal
	for k := 8; k <= 56 && eng == nil; k += 8 {
		for trial := 0; trial < 20; trial++ {
			e := NewEngine(nw)
			r := e.Graph().RemoveNodes(distinctNodes(e.Graph().N(), k, rng))
			if r.G.N() == 0 {
				continue
			}
			if _, err := e.Rebind(r); err != nil {
				t.Fatal(err)
			}
			if errors.Is(e.PartsErr(), ErrNoSurvivingPartition) {
				eng, rr = e, r
				break
			}
		}
	}
	if eng == nil {
		t.Skip("no removal produced the unservable sentinel")
	}
	gr := graph.Restore(rr, goneNodes(rr.OldToNew), rr.GoneEdges)
	rep, err := eng.Rebind(gr)
	if err != nil {
		t.Fatal(err)
	}
	if eng.PartsErr() != nil {
		t.Fatalf("full restore should lift the sentinel, got %v (report %+v)", eng.PartsErr(), rep)
	}
	if eng.Diagnosability() != nw.Diagnosability() || eng.Degraded() {
		t.Fatalf("δ′ = %d (degraded=%v) after lifting restore, want δ = %d", eng.Diagnosability(), eng.Degraded(), nw.Diagnosability())
	}
}
