package core

import (
	"comparisondiag/internal/bitset"
	"comparisondiag/internal/graph"
	"comparisondiag/internal/syndrome"
)

// CertifyPart decides whether the part is provably fault-free by the
// scan certificate: every "path pair" test inside the part must be 0.
// For each member u with part-neighbours n_1 < n_2 < … < n_d it consults
// s_u(n_1, n_2), s_u(n_2, n_3), …, s_u(n_{d-1}, n_d) — every neighbour
// appears in some consulted pair, so d-1 look-ups per node suffice
// instead of C(d, 2).
//
// Soundness (DESIGN.md §3): if the part is connected, has more than δ
// nodes, every member has at least two part-neighbours, and all scans
// are 0, the part is fault-free. An all-faulty part would need more than
// δ faults; a mixed part has a healthy member adjacent (inside the part)
// to a faulty one, and one of its consulted pairs contains that faulty
// neighbour, forcing a 1 from a healthy tester.
//
// Completeness: a fault-free part always passes, because each tester and
// both tested nodes are healthy.
func CertifyPart(a graph.Adjacencer, s syndrome.Syndrome, nodes []int32, mask *bitset.Set) bool {
	ok, _, _ := certifyScan(a, s, nodes, mask, nil, nil)
	return ok
}

// certifyScan is CertifyPart with external buffers: ns collects the
// masked part-neighbours and nbuf holds generated neighbour lists when
// the adjacency is implicit (a CSR serves zero-copy views and never
// touches nbuf). Both (possibly grown) buffers are returned so hot
// paths can keep them in a Scratch and stay allocation-free.
func certifyScan(a graph.Adjacencer, s syndrome.Syndrome, nodes []int32, mask *bitset.Set, ns, nbuf []int32) (bool, []int32, []int32) {
	g := graph.CSR(a)
	for _, u := range nodes {
		var adj []int32
		if g != nil {
			adj = g.Neighbors(u)
		} else {
			nbuf = a.AppendNeighbors(u, nbuf)
			adj = nbuf
		}
		ns = ns[:0]
		for _, v := range adj {
			if mask.Contains(int(v)) {
				ns = append(ns, v)
			}
		}
		if len(ns) < 2 {
			// Precondition violated: the certificate cannot vouch for u.
			return false, ns, nbuf
		}
		for i := 0; i+1 < len(ns); i++ {
			if s.Test(u, ns[i], ns[i+1]) == 1 {
				return false, ns, nbuf
			}
		}
	}
	return true, ns, nbuf
}

// CertifyPartPaper runs the paper's own per-part certificate: a
// restricted Set_Builder whose contributor count must exceed δ. It
// returns the certifying Set_Builder result (AllHealthy true) or nil.
//
// This is sound but — as gap G1 in DESIGN.md records — incomplete for
// parts whose BFS trees have ≤ δ internal nodes even when the part is
// larger than δ; the ablation experiment A1 quantifies how often that
// bites at the paper's prescribed part sizes.
func CertifyPartPaper(a graph.Adjacencer, s syndrome.Syndrome, seed int32, delta int, mask *bitset.Set) *SetBuilderResult {
	return certifyPaperInto(NewScratch(a.N()), a, s, seed, delta, mask)
}

// certifyPaperInto is CertifyPartPaper against a reusable Scratch; the
// returned result (when non-nil) is a view into the scratch.
func certifyPaperInto(sc *Scratch, a graph.Adjacencer, s syndrome.Syndrome, seed int32, delta int, mask *bitset.Set) *SetBuilderResult {
	r := SetBuilderInto(sc, a, s, seed, delta, mask)
	if r.AllHealthy {
		return r
	}
	return nil
}
