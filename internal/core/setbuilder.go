// Package core implements the paper's primary contribution: the
// Set_Builder algorithm (Section 4) and the partition-based fault
// diagnosis procedure of Theorem 1, with the look-up economy the paper
// argues for in Section 6 — syndromes are consulted on demand, never
// materialised wholesale.
//
// The hot path is allocation-free in steady state: all working storage
// (bitsets, the parent array, frontier buffers, part masks) lives in a
// Scratch, pooled internally by Diagnose and exposed to callers via
// SetBuilderInto and Options.Scratch. See Scratch for the reuse
// contract of results produced against a scratch.
package core

import (
	"comparisondiag/internal/bitset"
	"comparisondiag/internal/graph"
	"comparisondiag/internal/syndrome"
)

// SetBuilderResult carries the outcome of one Set_Builder run.
type SetBuilderResult struct {
	// AllHealthy reports that the contributor count exceeded δ, proving
	// every node of U healthy (the paper's certificate).
	AllHealthy bool
	// U is the final set U_r.
	U *bitset.Set
	// Parent is the tree function t: Parent[v] is v's parent in T, or
	// -1 for the root u0 and for nodes outside U. The paper notes this
	// healthy spanning tree is a reusable by-product.
	Parent []int32
	// Contributors is the set C_1 ∪ … ∪ C_r of internal tree nodes.
	Contributors *bitset.Set
	// Rounds is r, the number of while-loop iterations that grew U.
	Rounds int
	// Lookups is the number of syndrome consultations performed.
	Lookups int64
}

// SetBuilder is the paper's Set_Builder(u0) (Section 4.1). It grows
// U_0 = {u0} ⊆ U_1 ⊆ … by adding a node v when some frontier node u
// reports s_u(v, t(u)) = 0, recording tree parents t(v) (ties broken
// towards the least frontier node, matching the paper's fixed ordering),
// until U stabilises. If the internal-node count ever exceeds delta, all
// of U is provably healthy and AllHealthy is set.
//
// restrict, when non-nil, confines growth to the given node set — the
// paper's Set_Builder(u0, H) used during the per-part search. The seed
// u0 must belong to restrict.
//
// Complexity: O(Δ·|U_r|) time; at most (Δ-1)(Δ/2 + |U_r| - 1) syndrome
// look-ups (Section 6): C(Δ,2) for the root's pair scan and at most Δ-1
// per subsequent tree node.
//
// SetBuilder allocates a fresh Scratch per call, so the caller owns the
// result outright. Hot paths should call SetBuilderInto with a reused
// Scratch instead, which performs no allocation in steady state.
func SetBuilder(g *graph.Graph, s syndrome.Syndrome, u0 int32, delta int, restrict *bitset.Set) *SetBuilderResult {
	return SetBuilderInto(NewScratch(g.N()), g, s, u0, delta, restrict)
}

// SetBuilderInto is SetBuilder running entirely inside the given
// Scratch: on a warm scratch (capacity matching the graph, frontier
// buffers grown by earlier runs) it performs zero heap allocations. The
// result — including U, Parent and Contributors — is a view into the
// scratch, valid until the scratch's next use; see Scratch for the
// contract.
//
// The adjacency may be CSR-backed (zero-copy neighbour views) or an
// implicit generator (graph.CayleyAdjacency); neighbour lists are
// generated into a scratch buffer in the latter case, and the test
// order — hence the look-up count — is identical either way because
// both enumerate neighbours in ascending id order.
func SetBuilderInto(sc *Scratch, a graph.Adjacencer, s syndrome.Syndrome, u0 int32, delta int, restrict *bitset.Set) *SetBuilderResult {
	sc.ensure(a.N())
	csr := graph.CSR(a)
	neigh := func(u int32) []int32 {
		if csr != nil {
			return csr.Neighbors(u)
		}
		sc.nbuf = a.AppendNeighbors(u, sc.nbuf)
		return sc.nbuf
	}
	sc.resetTree()
	res := &sc.res
	*res = SetBuilderResult{U: sc.u, Parent: sc.parent, Contributors: sc.contributors}
	res.U.Add(int(u0))
	start := s.Lookups()

	in := func(v int32) bool {
		return restrict == nil || restrict.Contains(int(v))
	}

	// Build U_1: u0 tests unordered pairs of its neighbours; a 0 result
	// certifies both participants at once.
	adj := neigh(u0)
	frontier := sc.frontier[:0]
	next := sc.next[:0]
	for i := 0; i < len(adj); i++ {
		if !in(adj[i]) {
			continue
		}
		for j := i + 1; j < len(adj); j++ {
			if !in(adj[j]) {
				continue
			}
			vi, vj := adj[i], adj[j]
			if res.U.Contains(int(vi)) && res.U.Contains(int(vj)) {
				continue
			}
			if s.Test(u0, vi, vj) == 0 {
				for _, v := range [2]int32{vi, vj} {
					if !res.U.Contains(int(v)) {
						res.U.Add(int(v))
						res.Parent[v] = u0
						frontier = append(frontier, v)
					}
				}
			}
		}
	}
	contribCount := 0
	if len(frontier) > 0 {
		res.Contributors.Add(int(u0))
		contribCount = 1
		res.Rounds = 1
	}
	if contribCount > delta {
		res.AllHealthy = true
	}

	// Grow U_i from the frontier U_{i-1} \ U_{i-2}. Frontier nodes are
	// kept in ascending id order so the first frontier node to admit v
	// is the least — the paper's t(v) tie-break. Admitted nodes are
	// collected in the `added` bitset and drained, which yields exactly
	// that ascending order without a comparison sort.
	added := sc.added
	for len(frontier) > 0 {
		admitted := 0
		for _, u := range frontier {
			tu := res.Parent[u]
			for _, v := range neigh(u) {
				if res.U.Contains(int(v)) || !in(v) {
					continue
				}
				if s.Test(u, v, tu) == 0 {
					res.U.Add(int(v))
					res.Parent[v] = u
					added.Add(int(v))
					admitted++
					if !res.Contributors.Contains(int(u)) {
						res.Contributors.Add(int(u))
						contribCount++
					}
				}
			}
		}
		if admitted == 0 {
			break
		}
		next = added.Drain(next[:0])
		frontier, next = next, frontier
		res.Rounds++
		if contribCount > delta {
			res.AllHealthy = true
		}
	}
	// Hand the (possibly grown) buffers back so later runs reuse their
	// capacity.
	sc.frontier, sc.next = frontier, next
	res.Lookups = s.Lookups() - start
	return res
}
