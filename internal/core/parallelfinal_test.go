package core

import (
	"math/rand"
	"slices"
	"testing"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// TestSetBuilderParallelMatchesSequential pins the parallel final
// pass's determinism contract: U, Parent, Contributors, Rounds and
// AllHealthy are identical to the sequential SetBuilder (only the
// look-up count may grow), and the look-up accounting through the
// shard views stays exact.
func TestSetBuilderParallelMatchesSequential(t *testing.T) {
	setGOMAXPROCS(t, 4)
	for _, nw := range []topology.Network{
		topology.NewHypercube(12), // crosses the per-round parallel threshold
		topology.NewHypercube(9),
		topology.NewStar(7),
	} {
		g := nw.Graph()
		delta := nw.Diagnosability()
		for trial := int64(0); trial < 4; trial++ {
			F := syndrome.RandomFaults(g.N(), delta, rand.New(rand.NewSource(trial)))
			seed := int32(0)
			for F.Contains(int(seed)) {
				seed++
			}

			sSeq := syndrome.NewLazy(F, syndrome.Mimic{})
			seq := SetBuilder(g, sSeq, seed, delta, nil)

			sPar := syndrome.NewLazy(F, syndrome.Mimic{})
			par := SetBuilderParallel(g, sPar, seed, delta, nil, 4)

			if !seq.U.Equal(par.U) {
				t.Fatalf("%s trial %d: U differs", nw.Name(), trial)
			}
			if !slices.Equal(seq.Parent, par.Parent) {
				t.Fatalf("%s trial %d: Parent tree differs", nw.Name(), trial)
			}
			if !seq.Contributors.Equal(par.Contributors) {
				t.Fatalf("%s trial %d: Contributors differ", nw.Name(), trial)
			}
			if seq.Rounds != par.Rounds || seq.AllHealthy != par.AllHealthy {
				t.Fatalf("%s trial %d: rounds/AllHealthy differ: %d/%v vs %d/%v",
					nw.Name(), trial, seq.Rounds, seq.AllHealthy, par.Rounds, par.AllHealthy)
			}
			if par.Lookups < seq.Lookups {
				t.Fatalf("%s trial %d: parallel pass reported fewer look-ups (%d) than sequential (%d)",
					nw.Name(), trial, par.Lookups, seq.Lookups)
			}
			if sPar.Lookups() != par.Lookups {
				t.Fatalf("%s trial %d: shard accounting drifted: syndrome %d vs result %d",
					nw.Name(), trial, sPar.Lookups(), par.Lookups)
			}
		}
	}
}

// TestSetBuilderParallelRestricted checks the restricted variant (the
// per-part Set_Builder shape) keeps growth inside the restriction.
func TestSetBuilderParallelRestricted(t *testing.T) {
	setGOMAXPROCS(t, 4)
	nw := topology.NewHypercube(10)
	g := nw.Graph()
	delta := nw.Diagnosability()
	parts, err := nw.Parts(delta+1, delta+1)
	if err != nil {
		t.Fatal(err)
	}
	F := syndrome.RandomFaults(g.N(), delta, rand.New(rand.NewSource(5)))
	restrict := topologyPartMask(g.N(), parts[3])

	sSeq := syndrome.NewLazy(F, syndrome.Mimic{})
	seq := SetBuilder(g, sSeq, parts[3].Seed, delta, restrict)
	sPar := syndrome.NewLazy(F, syndrome.Mimic{})
	par := SetBuilderParallel(g, sPar, parts[3].Seed, delta, restrict, 3)

	if !seq.U.Equal(par.U) {
		t.Fatal("restricted U differs")
	}
	if !par.U.IsSubsetOf(restrict) {
		t.Fatal("parallel growth escaped the restriction")
	}
}

// TestDiagnoseFinalWorkersMatchesSequential runs the whole diagnosis
// with a parallel final pass on a graph past the size gate and checks
// the fault set matches the sequential result.
func TestDiagnoseFinalWorkersMatchesSequential(t *testing.T) {
	setGOMAXPROCS(t, 4)
	nw := topology.NewHypercube(12) // 4096 nodes: exactly at the gate
	delta := nw.Diagnosability()
	for trial := int64(0); trial < 3; trial++ {
		F := syndrome.RandomFaults(nw.Graph().N(), delta, rand.New(rand.NewSource(trial)))
		sSeq := syndrome.NewLazy(F, syndrome.Mimic{})
		fSeq, stSeq, err := DiagnoseOpts(nw, sSeq, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sPar := syndrome.NewLazy(F, syndrome.Mimic{})
		fPar, stPar, err := DiagnoseOpts(nw, sPar, Options{FinalWorkers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !fSeq.Equal(fPar) {
			t.Fatalf("trial %d: fault sets differ under FinalWorkers", trial)
		}
		if stSeq.Rounds != stPar.Rounds || stSeq.HealthyCount != stPar.HealthyCount {
			t.Fatalf("trial %d: final pass shape differs: %+v vs %+v", trial, stSeq, stPar)
		}
		if sPar.Lookups() != stPar.TotalLookups {
			t.Fatalf("trial %d: lookup accounting drifted under FinalWorkers", trial)
		}
	}
}

// topologyPartMask builds a bitset mask for one part.
func topologyPartMask(n int, p topology.Part) *bitset.Set {
	m := bitset.New(n)
	for _, u := range p.Nodes {
		m.Add(int(u))
	}
	return m
}
