package core

import (
	"math/rand"
	"slices"
	"testing"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/graph"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// TestSetBuilderParallelMatchesSequential pins the parallel final
// pass's determinism contract: U, Parent, Contributors, Rounds and
// AllHealthy are identical to the sequential SetBuilder (only the
// look-up count may grow), and the look-up accounting through the
// shard views stays exact.
func TestSetBuilderParallelMatchesSequential(t *testing.T) {
	setGOMAXPROCS(t, 4)
	for _, nw := range []topology.Network{
		topology.NewHypercube(12), // crosses the per-round parallel threshold
		topology.NewHypercube(9),
		topology.NewStar(7),
	} {
		g := nw.Graph()
		delta := nw.Diagnosability()
		for trial := int64(0); trial < 4; trial++ {
			F := syndrome.RandomFaults(g.N(), delta, rand.New(rand.NewSource(trial)))
			seed := int32(0)
			for F.Contains(int(seed)) {
				seed++
			}

			sSeq := syndrome.NewLazy(F, syndrome.Mimic{})
			seq := SetBuilder(g, sSeq, seed, delta, nil)

			sPar := syndrome.NewLazy(F, syndrome.Mimic{})
			par := SetBuilderParallel(g, sPar, seed, delta, nil, 4)

			if !seq.U.Equal(par.U) {
				t.Fatalf("%s trial %d: U differs", nw.Name(), trial)
			}
			if !slices.Equal(seq.Parent, par.Parent) {
				t.Fatalf("%s trial %d: Parent tree differs", nw.Name(), trial)
			}
			if !seq.Contributors.Equal(par.Contributors) {
				t.Fatalf("%s trial %d: Contributors differ", nw.Name(), trial)
			}
			if seq.Rounds != par.Rounds || seq.AllHealthy != par.AllHealthy {
				t.Fatalf("%s trial %d: rounds/AllHealthy differ: %d/%v vs %d/%v",
					nw.Name(), trial, seq.Rounds, seq.AllHealthy, par.Rounds, par.AllHealthy)
			}
			if par.Lookups < seq.Lookups {
				t.Fatalf("%s trial %d: parallel pass reported fewer look-ups (%d) than sequential (%d)",
					nw.Name(), trial, par.Lookups, seq.Lookups)
			}
			if sPar.Lookups() != par.Lookups {
				t.Fatalf("%s trial %d: shard accounting drifted: syndrome %d vs result %d",
					nw.Name(), trial, sPar.Lookups(), par.Lookups)
			}
		}
	}
}

// TestSetBuilderParallelRestricted checks the restricted variant (the
// per-part Set_Builder shape) keeps growth inside the restriction.
func TestSetBuilderParallelRestricted(t *testing.T) {
	setGOMAXPROCS(t, 4)
	nw := topology.NewHypercube(10)
	g := nw.Graph()
	delta := nw.Diagnosability()
	parts, err := nw.Parts(delta+1, delta+1)
	if err != nil {
		t.Fatal(err)
	}
	F := syndrome.RandomFaults(g.N(), delta, rand.New(rand.NewSource(5)))
	restrict := topologyPartMask(g.N(), parts[3])

	sSeq := syndrome.NewLazy(F, syndrome.Mimic{})
	seq := SetBuilder(g, sSeq, parts[3].Seed, delta, restrict)
	sPar := syndrome.NewLazy(F, syndrome.Mimic{})
	par := SetBuilderParallel(g, sPar, parts[3].Seed, delta, restrict, 3)

	if !seq.U.Equal(par.U) {
		t.Fatal("restricted U differs")
	}
	if !par.U.IsSubsetOf(restrict) {
		t.Fatal("parallel growth escaped the restriction")
	}
}

// TestDiagnoseFinalWorkersMatchesSequential runs the whole diagnosis
// with a parallel final pass on a graph past the size gate and checks
// the fault set matches the sequential result.
func TestDiagnoseFinalWorkersMatchesSequential(t *testing.T) {
	setGOMAXPROCS(t, 4)
	nw := topology.NewHypercube(12) // 4096 nodes: exactly at the gate
	delta := nw.Diagnosability()
	for trial := int64(0); trial < 3; trial++ {
		F := syndrome.RandomFaults(nw.Graph().N(), delta, rand.New(rand.NewSource(trial)))
		sSeq := syndrome.NewLazy(F, syndrome.Mimic{})
		fSeq, stSeq, err := DiagnoseOpts(nw, sSeq, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sPar := syndrome.NewLazy(F, syndrome.Mimic{})
		fPar, stPar, err := DiagnoseOpts(nw, sPar, Options{FinalWorkers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !fSeq.Equal(fPar) {
			t.Fatalf("trial %d: fault sets differ under FinalWorkers", trial)
		}
		if stSeq.Rounds != stPar.Rounds || stSeq.HealthyCount != stPar.HealthyCount {
			t.Fatalf("trial %d: final pass shape differs: %+v vs %+v", trial, stSeq, stPar)
		}
		if sPar.Lookups() != stPar.TotalLookups {
			t.Fatalf("trial %d: lookup accounting drifted under FinalWorkers", trial)
		}
	}
}

// TestSetBuilderParallelImplicit pins the Adjacencer-generic parallel
// pass on an implicit (descriptor-backed) adjacency: same tree as the
// sequential pass, look-ups may only grow, shard accounting exact —
// the contract the CSR path already pins, now without a CSR.
func TestSetBuilderParallelImplicit(t *testing.T) {
	setGOMAXPROCS(t, 4)
	const bitsN = 12
	masks := make([]int32, bitsN)
	for i := range masks {
		masks[i] = 1 << uint(i)
	}
	ca, err := graph.NewCayleyAdjacency(graph.XORCayley{Bits: bitsN, Masks: masks})
	if err != nil {
		t.Fatal(err)
	}
	n := ca.N()
	delta := bitsN
	for trial := int64(0); trial < 4; trial++ {
		F := syndrome.RandomFaults(n, delta, rand.New(rand.NewSource(trial)))
		seed := int32(0)
		for F.Contains(int(seed)) {
			seed++
		}

		sSeq := syndrome.NewLazy(F, syndrome.Mimic{})
		seq := SetBuilderInto(NewScratch(n), ca, sSeq, seed, delta, nil)

		sPar := syndrome.NewLazy(F, syndrome.Mimic{})
		par := SetBuilderParallel(ca, sPar, seed, delta, nil, 4)

		if !seq.U.Equal(par.U) {
			t.Fatalf("trial %d: U differs on implicit adjacency", trial)
		}
		if !slices.Equal(seq.Parent, par.Parent) {
			t.Fatalf("trial %d: Parent tree differs on implicit adjacency", trial)
		}
		if !seq.Contributors.Equal(par.Contributors) {
			t.Fatalf("trial %d: Contributors differ on implicit adjacency", trial)
		}
		if seq.Rounds != par.Rounds || seq.AllHealthy != par.AllHealthy {
			t.Fatalf("trial %d: rounds/AllHealthy differ: %d/%v vs %d/%v",
				trial, seq.Rounds, seq.AllHealthy, par.Rounds, par.AllHealthy)
		}
		if par.Lookups < seq.Lookups {
			t.Fatalf("trial %d: parallel pass reported fewer look-ups (%d) than sequential (%d)",
				trial, par.Lookups, seq.Lookups)
		}
		if sPar.Lookups() != par.Lookups {
			t.Fatalf("trial %d: shard accounting drifted: syndrome %d vs result %d",
				trial, sPar.Lookups(), par.Lookups)
		}
	}
}

// TestFinalWorkersKernelLookupExact pins the stronger contract of the
// word-kernel parallel mode: an engine with a bound kernel serving
// FinalWorkers = 4 produces not just the same fault set but the same
// look-up count as FinalWorkers = 1 — rounds split at word granularity
// (see rangedRounder). Checked on a CSR-bound and an implicit engine.
func TestFinalWorkersKernelLookupExact(t *testing.T) {
	setGOMAXPROCS(t, 4)
	const bitsN = 12
	masks := make([]int32, bitsN)
	for i := range masks {
		masks[i] = 1 << uint(i)
	}
	implicit, err := NewCayleyEngine(graph.XORCayley{Bits: bitsN, Masks: masks}, bitsN)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		eng  *Engine
	}{
		{"csr", NewEngine(topology.NewHypercube(bitsN))},
		{"implicit", implicit},
	} {
		n := tc.eng.Adjacency().N()
		delta := tc.eng.Diagnosability()
		for trial := int64(0); trial < 3; trial++ {
			F := syndrome.RandomFaults(n, delta, rand.New(rand.NewSource(trial)))

			sSeq := syndrome.NewLazy(F, syndrome.Mimic{})
			fSeq, stSeq, err := tc.eng.DiagnoseOpts(sSeq, Options{})
			if err != nil {
				t.Fatal(err)
			}
			sPar := syndrome.NewLazy(F, syndrome.Mimic{})
			fPar, stPar, err := tc.eng.DiagnoseOpts(sPar, Options{FinalWorkers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if !fSeq.Equal(fPar) {
				t.Fatalf("%s trial %d: fault sets differ under FinalWorkers", tc.name, trial)
			}
			if stPar.FinalWorkersUsed != 4 {
				t.Fatalf("%s trial %d: FinalWorkersUsed = %d, want 4", tc.name, trial, stPar.FinalWorkersUsed)
			}
			// The kernel path keeps everything — including look-ups —
			// bit-identical, so the whole Stats must match once the
			// effective-worker stamp is normalised away.
			norm := *stPar
			norm.FinalWorkersUsed = stSeq.FinalWorkersUsed
			if norm != *stSeq {
				t.Fatalf("%s trial %d: Stats differ under kernel FinalWorkers:\nseq %+v\npar %+v",
					tc.name, trial, *stSeq, *stPar)
			}
			if sPar.Lookups() != stPar.TotalLookups {
				t.Fatalf("%s trial %d: lookup accounting drifted under FinalWorkers", tc.name, trial)
			}
		}
	}
}

// TestFinalWorkersUsedStamping pins the effective-fan-out stamp: 0 when
// no parallelism was requested, 1 when a request could not engage
// (below the size gate, or a single hardware thread), the engaged
// count otherwise.
func TestFinalWorkersUsedStamping(t *testing.T) {
	setGOMAXPROCS(t, 4)
	small := topology.NewHypercube(8) // 256 nodes: below parallelFinalMinNodes
	big := topology.NewHypercube(12)

	diag := func(nw topology.Network, opt Options) *Stats {
		t.Helper()
		F := syndrome.RandomFaults(nw.Graph().N(), nw.Diagnosability(), rand.New(rand.NewSource(1)))
		_, st, err := DiagnoseOpts(nw, syndrome.NewLazy(F, syndrome.Mimic{}), opt)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	if got := diag(big, Options{}).FinalWorkersUsed; got != 0 {
		t.Fatalf("sequential request stamped FinalWorkersUsed = %d, want 0", got)
	}
	if got := diag(big, Options{FinalWorkers: 1}).FinalWorkersUsed; got != 0 {
		t.Fatalf("FinalWorkers=1 stamped FinalWorkersUsed = %d, want 0", got)
	}
	if got := diag(small, Options{FinalWorkers: 4}).FinalWorkersUsed; got != 1 {
		t.Fatalf("below-gate request stamped FinalWorkersUsed = %d, want 1", got)
	}
	if got := diag(big, Options{FinalWorkers: 4}).FinalWorkersUsed; got != 4 {
		t.Fatalf("engaged request stamped FinalWorkersUsed = %d, want 4", got)
	}

	setGOMAXPROCS(t, 1)
	if got := diag(big, Options{FinalWorkers: 4}).FinalWorkersUsed; got != 1 {
		t.Fatalf("single-thread request stamped FinalWorkersUsed = %d, want 1", got)
	}
}

// TestFinalWorkersBatchDifferential crosses FinalWorkers ∈ {1, 4} with
// {CSR, implicit} engines, behaviours and the Share* batch flags: fault
// sets and the shape fields of Stats must be identical, and look-up
// counts equal except where the parallel pass documents growth — a
// ShareFinalPrefix member runs in full under FinalWorkers > 1 instead
// of resuming the shared checkpoint, so its own totals may only grow.
func TestFinalWorkersBatchDifferential(t *testing.T) {
	setGOMAXPROCS(t, 4)
	const bitsN = 12
	masks := make([]int32, bitsN)
	for i := range masks {
		masks[i] = 1 << uint(i)
	}
	implicit, err := NewCayleyEngine(graph.XORCayley{Bits: bitsN, Masks: masks}, bitsN)
	if err != nil {
		t.Fatal(err)
	}
	engines := []struct {
		name string
		eng  *Engine
	}{
		{"csr", NewEngine(topology.NewHypercube(bitsN))},
		{"implicit", implicit},
	}
	behaviours := []syndrome.Behavior{syndrome.Mimic{}, syndrome.AllZero{}, syndrome.Inverted{}}
	shareCombos := []struct {
		name             string
		cert, finalShare bool
	}{
		{"plain", false, false},
		{"cert", true, false},
		{"final", false, true},
		{"both", true, true},
	}

	for _, ec := range engines {
		n := ec.eng.Adjacency().N()
		delta := ec.eng.Diagnosability()
		// Two hypotheses × four syndromes each: grouping has real groups.
		hyp := []*bitset.Set{
			syndrome.RandomFaults(n, delta, rand.New(rand.NewSource(7))),
			syndrome.RandomFaults(n, delta-1, rand.New(rand.NewSource(8))),
		}
		for _, beh := range behaviours {
			syns := func() []syndrome.Syndrome {
				s := make([]syndrome.Syndrome, 8)
				for i := range s {
					s[i] = syndrome.NewLazy(hyp[i%2], beh)
				}
				return s
			}
			for _, combo := range shareCombos {
				bopt := BatchOptions{ShareCertification: combo.cert, ShareFinalPrefix: combo.finalShare}
				bopt.Options = Options{FinalWorkers: 1}
				r1 := ec.eng.DiagnoseBatch(syns(), bopt)
				bopt.Options = Options{FinalWorkers: 4}
				r4 := ec.eng.DiagnoseBatch(syns(), bopt)
				for i := range r1 {
					if (r1[i].Err == nil) != (r4[i].Err == nil) {
						t.Fatalf("%s/%s/%s syndrome %d: error divergence: %v vs %v",
							ec.name, beh.Name(), combo.name, i, r1[i].Err, r4[i].Err)
					}
					if r1[i].Err != nil {
						continue
					}
					if !r1[i].Faults.Equal(r4[i].Faults) {
						t.Fatalf("%s/%s/%s syndrome %d: fault sets differ across FinalWorkers",
							ec.name, beh.Name(), combo.name, i)
					}
					s1, s4 := r1[i].Stats, r4[i].Stats
					if s1.Delta != s4.Delta || s1.CertifiedPart != s4.CertifiedPart ||
						s1.Seed != s4.Seed || s1.HealthyCount != s4.HealthyCount ||
						s1.FaultCount != s4.FaultCount || s1.Rounds != s4.Rounds {
						t.Fatalf("%s/%s/%s syndrome %d: Stats shape differs:\nfw1 %+v\nfw4 %+v",
							ec.name, beh.Name(), combo.name, i, s1, s4)
					}
					if !combo.finalShare {
						// Kernel engines split at word granularity: look-ups
						// stay bit-identical without a shared prefix in play.
						if s1.TotalLookups != s4.TotalLookups {
							t.Fatalf("%s/%s/%s syndrome %d: look-ups differ without ShareFinalPrefix: %d vs %d",
								ec.name, beh.Name(), combo.name, i, s1.TotalLookups, s4.TotalLookups)
						}
					} else if s4.TotalLookups < s1.TotalLookups {
						// Parallel members run in full instead of resuming:
						// their own consultations may only grow.
						t.Fatalf("%s/%s/%s syndrome %d: parallel member spent fewer look-ups (%d) than resumed member (%d)",
							ec.name, beh.Name(), combo.name, i, s4.TotalLookups, s1.TotalLookups)
					}
				}
			}
		}
	}
}

// topologyPartMask builds a bitset mask for one part.
func topologyPartMask(n int, p topology.Part) *bitset.Set {
	m := bitset.New(n)
	for _, u := range p.Nodes {
		m.Add(int(u))
	}
	return m
}
