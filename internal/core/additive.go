package core

import (
	"math/bits"
	"slices"

	"comparisondiag/internal/graph"
	"comparisondiag/internal/syndrome"
)

// The additive-rotate kernel: word-parallel final-pass rounds for k-ary
// n-cubes (tori), where node ids are n-digit base-k strings and every
// node is adjacent to u ± 1 (mod k) in each digit. Rotating digit d by
// ±1 shifts a node's id by ±k^d except at the wrap, so the set of
// candidates reachable from the frontier across one generator direction
// is the frontier bitset funnel-shifted by a fixed bit distance, gated
// by a precomputed digit-condition mask that encodes the wrap:
//
//	v = u + s_d     needs digit_d(v) ≥ 1     (no carry out of digit d)
//	v = u + (k-1)s_d needs digit_d(v) = k-1  (the 0 → k-1 wrap)
//	v = u - s_d     needs digit_d(v) ≤ k-2   (no borrow)
//	v = u - (k-1)s_d needs digit_d(v) = 0    (the k-1 → 0 wrap)
//
// A shifted id whose digit-d addition carried (or subtraction borrowed)
// lands outside the condition mask, so only genuine torus edges
// survive — no per-node digit arithmetic in the round. Because the
// conditions are arbitrary N-bit masks (k^d periods don't align with
// words), they are materialised per dimension at bind time; the funnel
// shift itself is ~3 ALU ops per word for 64 candidates, for any k.
//
// Exactness. Candidate v's testers below it have deltas s_d (digit ≥ 1)
// and (k-1)s_d (digit = k-1); above it, s_d (digit ≤ k-2) and (k-1)s_d
// (digit = 0). Since (k-1)s_d < k·s_d = s_{d+1} ≤ (k-1)s_{d+1} and
// s_d < (k-1)s_d for k ≥ 3, the deltas interleave totally:
//
//	… > (k-1)s_1 > s_1 > (k-1)s_0 > s_0   (descending: below-testers)
//	s_0 < (k-1)s_0 < s_1 < (k-1)s_1 < …   (ascending: above-testers)
//
// so walking dimensions descending with the two "+" steps, then
// ascending with the two "−" steps, visits every candidate's testers in
// ascending node order — the reference pass's exact prefix (see
// runWordKernel for the shared round loop and equivalence argument).

// addStep is one schedule entry: candidates gated by cond are tested by
// their frontier neighbour at v - shift. words indexes cond's non-zero
// words, so a round only visits words that can produce candidates —
// high-dimension wrap conditions (digit = 0 or k-1 at stride ≥ 64) and
// the mixed-radix compiler's borrow-pattern masks are block-sparse, and
// scanning their empty words would dominate the round cost.
type addStep struct {
	shift int      // tester of candidate v is v - shift
	cond  []uint64 // digit condition on v, tail-masked to [0, n)
	words []int32  // indices of non-zero cond words

	// ids, when non-nil, replaces cond/words entirely: the step's
	// candidates listed explicitly in ascending id order, probed one by
	// one instead of word-at-a-time. The mixed-radix pruner emits this
	// layout for sparse-but-spread conditions (few candidates scattered
	// over many words), where per-word funnel shifts would mostly visit
	// empty lanes. Candidate order — hence the look-up trace — is
	// unchanged: both layouts enumerate the step's candidates ascending.
	ids []int32
}

// stepWords fills each step's non-zero word index list and returns the
// total word-visit cost of one round.
func stepWords(steps []addStep) int {
	cost := 0
	for si := range steps {
		st := &steps[si]
		st.words = st.words[:0]
		for wi, w := range st.cond {
			if w != 0 {
				st.words = append(st.words, int32(wi))
			}
		}
		cost += len(st.words)
	}
	return cost
}

type additiveKernel struct {
	name      string
	steps     []addStep
	threshold int // frontier size where word rounds beat the sweep
}

// bindAdditiveKernel binds the kernel to a graph declared (and
// verified) to be a k-ary Dims-cube. Floor: ≥ 64 nodes; k ≥ 3 keeps the
// two generator directions distinct.
func bindAdditiveKernel(desc graph.CayleyDescriptor, a graph.Adjacencer) finalKernel {
	ac, ok := desc.(graph.AdditiveCayley)
	if !ok {
		return nil
	}
	n := a.N()
	if n < 64 || ac.K < 3 || ac.Dims < 1 || ac.Order() != n {
		return nil
	}
	k, dims := ac.K, ac.Dims
	words := (n + 63) / 64

	// Digit-condition masks, one pass over the id space: eq0[d] selects
	// ids with digit d = 0, eqTop[d] those with digit d = k-1; the two
	// complements are taken against the valid-id tail mask (k^n is not
	// a word multiple for odd k).
	eq0 := make([][]uint64, dims)
	eqTop := make([][]uint64, dims)
	notZero := make([][]uint64, dims)
	notTop := make([][]uint64, dims)
	for d := 0; d < dims; d++ {
		eq0[d] = make([]uint64, words)
		eqTop[d] = make([]uint64, words)
		notZero[d] = make([]uint64, words)
		notTop[d] = make([]uint64, words)
	}
	for v := 0; v < n; v++ {
		x := v
		bit := uint64(1) << (uint(v) & 63)
		wi := v >> 6
		for d := 0; d < dims; d++ {
			switch digit := x % k; digit {
			case 0:
				eq0[d][wi] |= bit
			case k - 1:
				eqTop[d][wi] |= bit
			}
			x /= k
		}
	}
	for wi := 0; wi < words; wi++ {
		valid := ^uint64(0)
		if wi == words-1 && n&63 != 0 {
			valid = 1<<(uint(n)&63) - 1
		}
		for d := 0; d < dims; d++ {
			notZero[d][wi] = valid &^ eq0[d][wi]
			notTop[d][wi] = valid &^ eqTop[d][wi]
		}
	}

	stride := make([]int, dims)
	s := 1
	for d := 0; d < dims; d++ {
		stride[d] = s
		s *= k
	}
	// The order-exact schedule (see the file comment): below-testers by
	// descending delta, then above-testers by ascending delta.
	steps := make([]addStep, 0, 4*dims)
	for d := dims - 1; d >= 0; d-- {
		steps = append(steps,
			addStep{shift: (k - 1) * stride[d], cond: eqTop[d]},
			addStep{shift: stride[d], cond: notZero[d]},
		)
	}
	for d := 0; d < dims; d++ {
		steps = append(steps,
			addStep{shift: -stride[d], cond: notTop[d]},
			addStep{shift: -(k - 1) * stride[d], cond: eq0[d]},
		)
	}
	// Every step funnel-shifts the frontier bitset across its live
	// words, so a round costs the summed non-zero word count.
	return &additiveKernel{name: "additive-rotate", steps: steps, threshold: sweepThresholdFor(stepWords(steps), a)}
}

// Name implements finalKernel. The funnel-shift round is shared with
// the mixed-radix binder (see mixedradix.go), which reports its own
// name.
func (k *additiveKernel) Name() string { return k.name }

func (k *additiveKernel) run(sc *Scratch, a graph.Adjacencer, l *syndrome.Lazy, u0 int32, delta int) *SetBuilderResult {
	return runWordKernel(sc, a, l, u0, delta, k)
}

func (k *additiveKernel) sweepThreshold() int { return k.threshold }

// round implements wordRounder: per step, the frontier bitset is
// funnel-shifted by the step's delta (out-of-range words read as zero —
// the condition mask has already excluded every wrap that isn't a real
// edge) and surviving candidates are tested by v - shift.
func (k *additiveKernel) round(fw, uw []uint64, parent []int32, l *syndrome.Lazy) int {
	admitted := 0
	words := len(fw)
	for si := range k.steps {
		st := &k.steps[si]
		t := st.shift
		if st.ids != nil {
			// Listed step: probe each candidate directly — is it still
			// outside U, and is its tester v - shift in the frontier?
			for _, v := range st.ids {
				if uw[v>>6]&(1<<(uint32(v)&63)) != 0 {
					continue
				}
				u := v - int32(t)
				if fw[u>>6]&(1<<(uint32(u)&63)) == 0 {
					continue
				}
				if l.Test(u, v, parent[u]) == 0 {
					uw[v>>6] |= 1 << (uint32(v) & 63)
					parent[v] = u
					admitted++
				}
			}
			continue
		}
		qoff := (-t) >> 6 // floor division: int shifts are arithmetic
		r := uint((-t) & 63)
		for _, wi32 := range st.words {
			wi := int(wi32)
			cw := st.cond[wi] &^ uw[wi]
			if cw == 0 {
				continue
			}
			// 64 bits of the frontier starting at bit wi·64 - t: bit b
			// is the tester of candidate wi·64 + b.
			q := wi + qoff
			var w uint64
			if r == 0 {
				if uint(q) < uint(words) {
					w = fw[q]
				}
			} else {
				if uint(q) < uint(words) {
					w = fw[q] >> r
				}
				if uint(q+1) < uint(words) {
					w |= fw[q+1] << (64 - r)
				}
			}
			if w &= cw; w != 0 {
				base := int32(wi) << 6
				for ; w != 0; w &= w - 1 {
					v := base + int32(bits.TrailingZeros64(w))
					u := v - int32(t)
					if l.Test(u, v, parent[u]) == 0 {
						uw[v>>6] |= 1 << (uint32(v) & 63)
						parent[v] = u
						admitted++
					}
				}
			}
		}
	}
	return admitted
}

// roundRange implements rangedRounder: the schedule restricted to the
// candidate words [lo, hi). Each step's live-word list (and a listed
// step's candidate ids) is ascending, so the owned slice is found by
// binary search; candidate suppression stays in the candidate's own uw
// word, giving the bit-identical-result-and-look-ups argument of the
// XOR kernel (see rangedRounder). The bodies mirror round's, kept
// separate (on a concrete *syndrome.Shard) so the sequential path
// stays devirtualised on *syndrome.Lazy. Covers the mixed-radix
// schedules too — their binder emits an additiveKernel.
func (k *additiveKernel) roundRange(fw, uw []uint64, parent []int32, sh *syndrome.Shard, lo, hi int) int {
	admitted := 0
	words := len(fw)
	for si := range k.steps {
		st := &k.steps[si]
		t := st.shift
		if st.ids != nil {
			ids := st.ids
			i, _ := slices.BinarySearch(ids, int32(lo)<<6)
			j := len(ids)
			if hi < words {
				j, _ = slices.BinarySearch(ids, int32(hi)<<6)
			}
			for _, v := range ids[i:j] {
				if uw[v>>6]&(1<<(uint32(v)&63)) != 0 {
					continue
				}
				u := v - int32(t)
				if fw[u>>6]&(1<<(uint32(u)&63)) == 0 {
					continue
				}
				if sh.Test(u, v, parent[u]) == 0 {
					uw[v>>6] |= 1 << (uint32(v) & 63)
					parent[v] = u
					admitted++
				}
			}
			continue
		}
		i, _ := slices.BinarySearch(st.words, int32(lo))
		j, _ := slices.BinarySearch(st.words, int32(hi))
		qoff := (-t) >> 6 // floor division: int shifts are arithmetic
		r := uint((-t) & 63)
		for _, wi32 := range st.words[i:j] {
			wi := int(wi32)
			cw := st.cond[wi] &^ uw[wi]
			if cw == 0 {
				continue
			}
			q := wi + qoff
			var w uint64
			if r == 0 {
				if uint(q) < uint(words) {
					w = fw[q]
				}
			} else {
				if uint(q) < uint(words) {
					w = fw[q] >> r
				}
				if uint(q+1) < uint(words) {
					w |= fw[q+1] << (64 - r)
				}
			}
			if w &= cw; w != 0 {
				base := int32(wi) << 6
				for ; w != 0; w &= w - 1 {
					v := base + int32(bits.TrailingZeros64(w))
					u := v - int32(t)
					if sh.Test(u, v, parent[u]) == 0 {
						uw[v>>6] |= 1 << (uint32(v) & 63)
						parent[v] = u
						admitted++
					}
				}
			}
		}
	}
	return admitted
}
