package core

import (
	"container/list"
	"reflect"
	"sync"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/syndrome"
)

// ResultCache is an engine-level memo of complete diagnosis outcomes,
// keyed by the syndrome's identity: the packed fault-hypothesis words
// of a *syndrome.Lazy plus its faulty-tester behaviour, the effective
// fault bound and the certification strategy. Two lazy syndromes that
// agree on all of those serve byte-identical test tables, so the whole
// diagnosis — fault set, Stats, even the typed error — is a pure
// function of the key and can be replayed without consulting the
// syndrome at all.
//
// The cache is opt-in (Options.ResultCache) and only consulted on the
// engine serving path; the free functions stay paper-literal and
// always recompute. It is bounded (least-recently-used eviction at
// Capacity entries), safe for concurrent use from many Diagnose and
// DiagnoseBatch callers at once, and copy-clean: entries own private
// clones of both the key fault set and the result, and every hit is
// copied out again, so no cached state is ever aliased by callers or
// scratches.
//
// A hit returns the Stats of the populating run. Results and look-up
// counts are deterministic for the sequential configuration, so for a
// fixed engine and Options the replayed Stats are exactly what a fresh
// call would report; configurations whose counts are scheduling-
// dependent (Workers or FinalWorkers above 1) replay the first run's
// counts. The syndrome's own Lookups counter does not advance on a hit
// — short-circuiting those consultations is the cache's entire point.
type ResultCache struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // *cacheEntry values, front = most recent
	byHash    map[uint64][]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

// cacheEntry is one memoised diagnosis. All fields are immutable after
// insertion, so reads may continue after the cache lock is released.
type cacheEntry struct {
	hash     uint64
	faults   *bitset.Set // key: cloned fault hypothesis
	behavior syndrome.Behavior
	delta    int
	strategy Strategy

	resFaults *bitset.Set // nil when the diagnosis errored
	stats     Stats
	err       error
}

// DefaultCacheCapacity bounds a ResultCache constructed with a
// non-positive capacity.
const DefaultCacheCapacity = 1024

// NewResultCache returns an empty cache holding at most capacity
// diagnosis results (≤ 0 means DefaultCacheCapacity).
func NewResultCache(capacity int) *ResultCache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &ResultCache{
		capacity: capacity,
		ll:       list.New(),
		byHash:   make(map[uint64][]*list.Element),
	}
}

// CacheStats is a point-in-time observability snapshot of a
// ResultCache.
type CacheStats struct {
	Hits, Misses, Evictions int64
	Entries, Capacity       int
}

// Stats returns the cache's counters. Safe for concurrent use.
func (c *ResultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Entries: c.ll.Len(), Capacity: c.capacity,
	}
}

// cacheable reports whether the syndrome can act as a cache key: its
// behaviour must support Go equality (all of the package's behaviours
// are comparable structs; a hypothetical closure-backed behaviour is
// simply never cached rather than panicking on ==).
func cacheable(lz *syndrome.Lazy) bool {
	b := lz.Behavior()
	if b == nil {
		return false
	}
	return reflect.TypeOf(b).Comparable()
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvMix folds one 64-bit value into an FNV-1a accumulator bytewise.
func fnvMix(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime64
		x >>= 8
	}
	return h
}

// faultsHash hashes a packed fault hypothesis (FNV-1a over its words) —
// the grouping key of batch-shared certification and the first half of
// the result-cache key.
func faultsHash(faults *bitset.Set) uint64 {
	h := uint64(fnvOffset64)
	for _, w := range faults.Words() {
		h = fnvMix(h, w)
	}
	return h
}

// cacheHash extends faultsHash with the remaining key fields: the
// scalar key parts and the behaviour's name. Behaviours that differ
// only in name-invisible state (e.g. two Random seeds) land in one
// bucket and are separated by the equality walk.
func cacheHash(faults *bitset.Set, behavior syndrome.Behavior, delta int, strat Strategy) uint64 {
	h := faultsHash(faults)
	h = fnvMix(h, uint64(delta))
	h = fnvMix(h, uint64(strat))
	for _, ch := range []byte(behavior.Name()) {
		h ^= uint64(ch)
		h *= fnvPrime64
	}
	return h
}

// lookup returns the memoised entry for the syndrome under the given
// effective fault bound and strategy, promoting it to most-recently
// used. The returned entry is immutable; callers copy out of it.
func (c *ResultCache) lookup(lz *syndrome.Lazy, delta int, strat Strategy) (*cacheEntry, bool) {
	b := lz.Behavior()
	h := cacheHash(lz.Faults(), b, delta, strat)
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, el := range c.byHash[h] {
		e := el.Value.(*cacheEntry)
		if e.delta == delta && e.strategy == strat && e.behavior == b && e.faults.Equal(lz.Faults()) {
			c.ll.MoveToFront(el)
			c.hits++
			return e, true
		}
	}
	c.misses++
	return nil, false
}

// insert memoises one diagnosis outcome, cloning the key and result so
// the entry shares no storage with the caller. A concurrent duplicate
// (two callers missing on the same key and both diagnosing) keeps the
// first entry; the outcomes are identical by construction.
func (c *ResultCache) insert(lz *syndrome.Lazy, delta int, strat Strategy, faults *bitset.Set, stats *Stats, err error) {
	b := lz.Behavior()
	h := cacheHash(lz.Faults(), b, delta, strat)
	e := &cacheEntry{
		hash:     h,
		faults:   lz.Faults().Clone(),
		behavior: b,
		delta:    delta,
		strategy: strat,
		err:      err,
	}
	if faults != nil {
		e.resFaults = faults.Clone()
	}
	if stats != nil {
		e.stats = *stats
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, el := range c.byHash[h] {
		old := el.Value.(*cacheEntry)
		if old.delta == delta && old.strategy == strat && old.behavior == b && old.faults.Equal(e.faults) {
			return
		}
	}
	c.byHash[h] = append(c.byHash[h], c.ll.PushFront(e))
	for c.ll.Len() > c.capacity {
		c.evict(c.ll.Back())
	}
}

// evict removes one element (called with the lock held).
func (c *ResultCache) evict(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	chain := c.byHash[e.hash]
	for i, cand := range chain {
		if cand == el {
			chain[i] = chain[len(chain)-1]
			chain = chain[:len(chain)-1]
			break
		}
	}
	if len(chain) == 0 {
		delete(c.byHash, e.hash)
	} else {
		c.byHash[e.hash] = chain
	}
	c.evictions++
}
