package core

import (
	"container/list"
	"reflect"
	"sync"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/syndrome"
)

// ResultCache is an engine-level memo of complete diagnosis outcomes,
// keyed by the syndrome's identity: the packed fault-hypothesis words
// of a *syndrome.Lazy plus its faulty-tester behaviour, the effective
// fault bound and the certification strategy. Two lazy syndromes that
// agree on all of those serve byte-identical test tables, so the whole
// diagnosis — fault set, Stats, even the typed error — is a pure
// function of the key and can be replayed without consulting the
// syndrome at all.
//
// The cache is opt-in (Options.ResultCache) and only consulted on the
// engine serving path; the free functions stay paper-literal and
// always recompute. It is bounded (least-recently-used eviction at
// Capacity entries), safe for concurrent use from many Diagnose and
// DiagnoseBatch callers at once, and copy-clean: entries own private
// clones of both the key fault set and the result, and every hit is
// copied out again, so no cached state is ever aliased by callers or
// scratches.
//
// A hit returns the Stats of the populating run. Results and look-up
// counts are deterministic for the sequential configuration, so for a
// fixed engine and Options the replayed Stats are exactly what a fresh
// call would report; configurations whose counts are scheduling-
// dependent (Workers or FinalWorkers above 1) replay the first run's
// counts. The syndrome's own Lookups counter does not advance on a hit
// — short-circuiting those consultations is the cache's entire point.
type ResultCache struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // *cacheEntry values, front = most recent
	byHash    map[uint64][]*list.Element
	hits      int64
	misses    int64
	evictions int64
	bypassed  int64

	// admitOnSecond gates admission on a hypothesis having been seen
	// before: the first sighting of a key records it in seen and skips
	// the insert, so one-shot hypotheses never displace entries that
	// are actually re-queried. seen is bounded (cleared wholesale past
	// seenBound) and keyed by the entry hash — a collision can at worst
	// admit an entry one sighting early, never corrupt a result.
	admitOnSecond bool
	seen          map[uint64]struct{}

	// sketch generalises the admission gate to a frequency threshold: a
	// count-min sketch over hypothesis keys estimates how often each
	// has completed, and an insert is admitted only once the estimate
	// reaches sketchThreshold sightings. Collisions can at worst admit
	// early (count-min never under-estimates its own increments), never
	// corrupt a result.
	sketch          *cmSketch
	sketchThreshold int
}

// cmSketch is a small count-min sketch with saturating byte counters:
// cmRows rows of one power-of-two-wide counter array, indexed by
// independent mixes of the entry hash. Periodic halving (every
// width*cmAgeFactor increments) ages historic frequencies out, so a
// hypothesis that stopped recurring eventually has to earn admission
// again. Guarded by the cache mutex.
type cmSketch struct {
	counters [cmRows][]uint8
	mask     uint64
	adds     int
	resets   int64
}

const (
	cmRows      = 4
	cmAgeFactor = 16
)

// newCMSketch sizes the sketch for a cache of the given capacity: 8
// counters per row per cache slot (floor 256) keeps the collision rate
// negligible for the admission use case at a few KiB per row.
func newCMSketch(capacity int) *cmSketch {
	width := 256
	for width < 8*capacity {
		width *= 2
	}
	s := &cmSketch{mask: uint64(width - 1)}
	for r := range s.counters {
		s.counters[r] = make([]uint8, width)
	}
	return s
}

// addEstimate records one sighting of hash h and returns the count-min
// estimate including it, halving every counter first when the aging
// window is up.
func (s *cmSketch) addEstimate(h uint64) int {
	if s.adds >= len(s.counters[0])*cmAgeFactor {
		for r := range s.counters {
			for i := range s.counters[r] {
				s.counters[r][i] /= 2
			}
		}
		s.adds = 0
		s.resets++
	}
	s.adds++
	est := int(^uint(0) >> 1)
	x := h
	for r := range s.counters {
		// Distinct odd-multiplier mixes give the rows independent views
		// of the same key (splitmix-style finalisation).
		x = (x ^ (x >> 31)) * 0x9e3779b97f4a7c15
		i := x & s.mask
		if c := s.counters[r][i]; c < 255 {
			s.counters[r][i] = c + 1
		}
		if v := int(s.counters[r][i]); v < est {
			est = v
		}
	}
	return est
}

// clear zeroes the sketch (on Rebind: frequencies in old-id space say
// nothing about the new world).
func (s *cmSketch) clear() {
	for r := range s.counters {
		for i := range s.counters[r] {
			s.counters[r][i] = 0
		}
	}
	s.adds = 0
}

// cacheEntry is one memoised diagnosis. All fields are immutable after
// insertion, so reads may continue after the cache lock is released.
// Rebind replaces entries rather than mutating them for the same
// reason.
type cacheEntry struct {
	hash     uint64
	faults   *bitset.Set // key: cloned fault hypothesis
	behavior syndrome.Behavior
	delta    int
	strategy Strategy
	epoch    uint64 // engine binding epoch the entry was produced under

	resFaults *bitset.Set // nil when the diagnosis errored
	stats     Stats
	err       error
}

// DefaultCacheCapacity bounds a ResultCache constructed with a
// non-positive capacity.
const DefaultCacheCapacity = 1024

// NewResultCache returns an empty cache holding at most capacity
// diagnosis results (≤ 0 means DefaultCacheCapacity). Every completed
// diagnosis is admitted immediately.
func NewResultCache(capacity int) *ResultCache {
	return NewResultCacheWithAdmission(capacity, false)
}

// NewResultCacheWithAdmission is NewResultCache with an explicit
// admission policy. With admitOnSecond set, a fault hypothesis is only
// cached on its second sighting: the first diagnosis of a key records
// the key and bypasses the insert (counted in CacheStats.Bypassed), so
// workloads dominated by one-shot hypotheses stop churning the LRU
// list with entries that will never be hit again. Lookups are
// unaffected — an admitted entry serves hits exactly as under the
// default policy.
func NewResultCacheWithAdmission(capacity int, admitOnSecond bool) *ResultCache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	c := &ResultCache{
		capacity:      capacity,
		ll:            list.New(),
		byHash:        make(map[uint64][]*list.Element),
		admitOnSecond: admitOnSecond,
	}
	if admitOnSecond {
		c.seen = make(map[uint64]struct{})
	}
	return c
}

// NewResultCacheWithSketch returns a cache whose admission is gated by
// a count-min frequency sketch over hypothesis keys — the
// generalisation of admit-on-second-sight to an arbitrary recurrence
// threshold: a completed diagnosis is admitted only once its key has
// been sighted at least threshold times (the current completion
// included), so with threshold 2 the first sighting is declined like
// admit-on-second-sight, and higher thresholds reserve the LRU for
// genuinely hot hypotheses. Declined inserts count in
// CacheStats.Bypassed; the sketch ages by periodic halving
// (CacheStats.SketchResets) so cooled-off keys have to earn admission
// again. threshold ≤ 1 admits everything, like NewResultCache.
func NewResultCacheWithSketch(capacity, threshold int) *ResultCache {
	c := NewResultCache(capacity)
	if threshold > 1 {
		c.sketch = newCMSketch(c.capacity)
		c.sketchThreshold = threshold
	}
	return c
}

// seenBound caps the admission-policy sighting set at a multiple of the
// cache capacity; past it the set is cleared wholesale (an O(1) reset
// beats tracking per-key recency for what is only a heuristic).
func (c *ResultCache) seenBound() int { return 8 * c.capacity }

// CacheStats is a point-in-time observability snapshot of a
// ResultCache.
type CacheStats struct {
	Hits, Misses, Evictions int64
	// Bypassed counts completed diagnoses the admission policy declined
	// to cache (first sightings under admit-on-second-sight,
	// below-threshold sightings under the frequency sketch); always 0
	// under the default admit-everything policy.
	Bypassed int64
	// SketchResets counts aging halvings of the frequency sketch
	// (NewResultCacheWithSketch only); a growing value means the
	// admission gate is live and recurrence is being re-earned.
	SketchResets      int64
	Entries, Capacity int
}

// HitRate returns Hits/(Hits+Misses) in [0, 1], and 0 for a cache that
// has never been consulted — never NaN, so exporters may publish it
// unconditionally.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns the cache's counters. Safe for concurrent use.
func (c *ResultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Bypassed: c.bypassed,
		Entries:  c.ll.Len(), Capacity: c.capacity,
	}
	if c.sketch != nil {
		st.SketchResets = c.sketch.resets
	}
	return st
}

// cacheable reports whether the syndrome can act as a cache key: its
// behaviour must support Go equality (all of the package's behaviours
// are comparable structs; a hypothetical closure-backed behaviour is
// simply never cached rather than panicking on ==).
func cacheable(lz *syndrome.Lazy) bool {
	b := lz.Behavior()
	if b == nil {
		return false
	}
	return reflect.TypeOf(b).Comparable()
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvMix folds one 64-bit value into an FNV-1a accumulator bytewise.
func fnvMix(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime64
		x >>= 8
	}
	return h
}

// faultsHash hashes a packed fault hypothesis (FNV-1a over its words) —
// the grouping key of batch-shared certification and the first half of
// the result-cache key.
func faultsHash(faults *bitset.Set) uint64 {
	h := uint64(fnvOffset64)
	for _, w := range faults.Words() {
		h = fnvMix(h, w)
	}
	return h
}

// cacheHash extends faultsHash with the remaining key fields: the
// scalar key parts and the behaviour's name. Behaviours that differ
// only in name-invisible state (e.g. two Random seeds) land in one
// bucket and are separated by the equality walk.
func cacheHash(faults *bitset.Set, behavior syndrome.Behavior, delta int, strat Strategy) uint64 {
	h := faultsHash(faults)
	h = fnvMix(h, uint64(delta))
	h = fnvMix(h, uint64(strat))
	for _, ch := range []byte(behavior.Name()) {
		h ^= uint64(ch)
		h *= fnvPrime64
	}
	return h
}

// lookup returns the memoised entry for the syndrome under the given
// effective fault bound, strategy and engine binding epoch, promoting
// it to most-recently used. The epoch keys entries to one binding
// generation, so a diagnosis racing an Engine.Rebind can neither serve
// nor be served by results from the other side of the churn. The
// returned entry is immutable; callers copy out of it.
func (c *ResultCache) lookup(lz *syndrome.Lazy, delta int, strat Strategy, epoch uint64) (*cacheEntry, bool) {
	b := lz.Behavior()
	h := cacheHash(lz.Faults(), b, delta, strat)
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, el := range c.byHash[h] {
		e := el.Value.(*cacheEntry)
		if e.delta == delta && e.strategy == strat && e.epoch == epoch && e.behavior == b && e.faults.Equal(lz.Faults()) {
			c.ll.MoveToFront(el)
			c.hits++
			return e, true
		}
	}
	c.misses++
	return nil, false
}

// insert memoises one diagnosis outcome, cloning the key and result so
// the entry shares no storage with the caller. A concurrent duplicate
// (two callers missing on the same key and both diagnosing) keeps the
// first entry; the outcomes are identical by construction. Under
// admit-on-second-sight the first sighting of a key only records it
// and bypasses the insert.
func (c *ResultCache) insert(lz *syndrome.Lazy, delta int, strat Strategy, epoch uint64, faults *bitset.Set, stats *Stats, err error) {
	b := lz.Behavior()
	h := cacheHash(lz.Faults(), b, delta, strat)
	e := &cacheEntry{
		hash:     h,
		faults:   lz.Faults().Clone(),
		behavior: b,
		delta:    delta,
		strategy: strat,
		epoch:    epoch,
		err:      err,
	}
	if faults != nil {
		e.resFaults = faults.Clone()
	}
	if stats != nil {
		e.stats = *stats
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.admitOnSecond {
		if _, ok := c.seen[h]; !ok {
			if len(c.seen) >= c.seenBound() {
				clear(c.seen)
			}
			c.seen[h] = struct{}{}
			c.bypassed++
			return
		}
	}
	if c.sketch != nil {
		if c.sketch.addEstimate(h) < c.sketchThreshold {
			c.bypassed++
			return
		}
	}
	for _, el := range c.byHash[h] {
		old := el.Value.(*cacheEntry)
		if old.delta == delta && old.strategy == strat && old.epoch == epoch && old.behavior == b && old.faults.Equal(e.faults) {
			return
		}
	}
	c.byHash[h] = append(c.byHash[h], c.ll.PushFront(e))
	for c.ll.Len() > c.capacity {
		c.evict(c.ll.Back())
	}
}

// Rebind rewrites the cache for an engine rebound across a churn delta
// (normally invoked through Engine.Rebind, which passes the right
// arguments — in the growth direction the map is the total
// SurvivorToNew, so no entry is lost to missing ids). Entries that
// cannot survive the churn are flushed: any entry touching a gone id
// (in its key hypothesis, its result fault set, or its recorded seed),
// any errored or bound-tightened entry, and any entry whose hypothesis
// exceeds the new bound. The rest are replaced — never mutated, since
// hits read entries after the lock is released — by remapped clones in
// new-id space, keyed to the new epoch and bound: their fault sets are
// exactly what a fresh diagnosis of the same hypothesis would report
// (Theorem 1 makes the result a pure function of the hypothesis while
// it respects the bound). The remapped Stats keep the populating run's
// cost profile (look-up counts, parts scanned) from before the churn,
// with Delta/Degraded/EffectiveDelta rewritten to the new binding —
// degraded reports the rebound engine's stamp, so a full recovery
// clears the fields exactly as live diagnoses would. LRU order, the
// admission sighting set and the frequency sketch are reset wholesale.
func (c *ResultCache) Rebind(oldToNew []int32, newN, oldDelta, newDelta int, epoch uint64, degraded bool) (flushed, kept int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	oldLL := c.ll
	c.ll = list.New()
	c.byHash = make(map[uint64][]*list.Element)
	if c.seen != nil {
		clear(c.seen)
	}
	if c.sketch != nil {
		c.sketch.clear()
	}
	for el := oldLL.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		ne, ok := remapEntry(e, oldToNew, newN, oldDelta, newDelta, epoch, degraded)
		if !ok {
			flushed++
			continue
		}
		c.byHash[ne.hash] = append(c.byHash[ne.hash], c.ll.PushBack(ne))
		kept++
	}
	return flushed, kept
}

// remapEntry builds the post-churn replacement for one entry, or
// reports that it must be flushed.
func remapEntry(e *cacheEntry, oldToNew []int32, newN, oldDelta, newDelta int, epoch uint64, degraded bool) (*cacheEntry, bool) {
	if e.err != nil || e.delta != oldDelta || e.resFaults == nil {
		return nil, false
	}
	if int(e.stats.Seed) >= len(oldToNew) || oldToNew[e.stats.Seed] < 0 {
		return nil, false
	}
	if e.faults.Count() > newDelta {
		return nil, false
	}
	key, ok := remapSet(e.faults, oldToNew, newN)
	if !ok {
		return nil, false
	}
	res, ok := remapSet(e.resFaults, oldToNew, newN)
	if !ok {
		return nil, false
	}
	st := e.stats
	st.Seed = oldToNew[e.stats.Seed]
	st.Delta = newDelta
	st.Degraded = degraded
	if degraded {
		st.EffectiveDelta = newDelta
	} else {
		st.EffectiveDelta = 0
	}
	return &cacheEntry{
		hash:      cacheHash(key, e.behavior, newDelta, e.strategy),
		faults:    key,
		behavior:  e.behavior,
		delta:     newDelta,
		strategy:  e.strategy,
		epoch:     epoch,
		resFaults: res,
		stats:     st,
		err:       nil,
	}, true
}

// remapSet maps a bitset through the removal's id map; ok is false when
// any member was removed.
func remapSet(s *bitset.Set, oldToNew []int32, newN int) (*bitset.Set, bool) {
	out := bitset.New(newN)
	ok := true
	s.ForEach(func(i int) bool {
		if i >= len(oldToNew) || oldToNew[i] < 0 {
			ok = false
			return false
		}
		out.Add(int(oldToNew[i]))
		return true
	})
	return out, ok
}

// evict removes one element (called with the lock held).
func (c *ResultCache) evict(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	chain := c.byHash[e.hash]
	for i, cand := range chain {
		if cand == el {
			chain[i] = chain[len(chain)-1]
			chain = chain[:len(chain)-1]
			break
		}
	}
	if len(chain) == 0 {
		delete(c.byHash, e.hash)
	} else {
		c.byHash[e.hash] = chain
	}
	c.evictions++
}
