package core

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// TestDeltaCheckpointMatchesFullCopy pins the delta-encoded shared-final
// checkpoint (the default since the sparse dirty-list layout landed)
// against the pre-delta full-copy layout kept behind
// BatchOptions.FullCheckpoint: on the same engine, hypothesis and
// behaviour panel the two batches must agree member-for-member on fault
// sets, errors, the whole Stats struct — including the SharedFinal*
// adoption accounting — and the exact per-syndrome look-up counts.
// Cases cover every final-pass driver (generic sweep, xor-cayley,
// additive-rotate, mixed-radix) and the empty hypothesis whose prefix
// is complete.
func TestDeltaCheckpointMatchesFullCopy(t *testing.T) {
	cases := []struct {
		name    string
		nw      topology.Network
		generic bool
	}{
		{"q8-kernel", topology.NewHypercube(8), false},
		{"q8-generic", topology.NewHypercube(8), true},
		{"kary4x4-additive", topology.NewKAryNCube(4, 4), false},
		{"akary4x4-mixedradix", topology.NewAugmentedKAryNCube(4, 4), false},
		{"star6-generic", topology.NewStar(6), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := NewEngine(tc.nw)
			g := tc.nw.Graph()
			rng := rand.New(rand.NewSource(41))
			loads := [][]int{{0}, {1}, {tc.nw.Diagnosability()}}
			for trial := 0; trial < 3; trial++ {
				loads = append(loads, []int{1 + rng.Intn(tc.nw.Diagnosability())})
			}
			for _, load := range loads {
				F := syndrome.RandomFaults(g.N(), load[0], rng)
				behaviors := sharedFinalBehaviors()
				var sDelta, sFull []syndrome.Syndrome
				for _, b := range behaviors {
					sDelta = append(sDelta, syndrome.NewLazy(F, b))
					sFull = append(sFull, syndrome.NewLazy(F, b))
				}
				base := BatchOptions{
					ShareCertification: true, ShareFinalPrefix: true,
					Options: Options{GenericFinal: tc.generic},
				}
				full := base
				full.FullCheckpoint = true
				got := eng.DiagnoseBatch(sDelta, base)
				want := eng.DiagnoseBatch(sFull, full)
				for i := range want {
					if (got[i].Err == nil) != (want[i].Err == nil) {
						t.Fatalf("|F|=%d member %d: err %v (delta) vs %v (full)", load[0], i, got[i].Err, want[i].Err)
					}
					if want[i].Err == nil && !got[i].Faults.Equal(want[i].Faults) {
						t.Fatalf("|F|=%d member %d: fault sets differ between checkpoint layouts", load[0], i)
					}
					if got[i].Stats != want[i].Stats {
						t.Fatalf("|F|=%d member %d: stats %+v (delta) vs %+v (full)", load[0], i, got[i].Stats, want[i].Stats)
					}
					if sDelta[i].Lookups() != sFull[i].Lookups() {
						t.Fatalf("|F|=%d member %d: %d look-ups (delta) vs %d (full)",
							load[0], i, sDelta[i].Lookups(), sFull[i].Lookups())
					}
				}
			}
		})
	}
}

// TestDeltaCheckpointGoldenCorpus replays every committed golden
// fixture (testdata/golden: frozen topology + fault set + adversary,
// including the empty hypothesis and the beyond-δ refusal) through
// shared-final batches under both checkpoint layouts. Member 0 of each
// batch runs the fixture's own adversary — its fault set (or pinned
// refusal) must still match the corpus — and every member must be
// bit-identical between the delta and full-copy encodings: fault sets,
// whole Stats struct, per-syndrome look-up counts.
func TestDeltaCheckpointGoldenCorpus(t *testing.T) {
	files, err := filepath.Glob(goldenPath("*"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no golden fixtures found (%v)", err)
	}
	for _, path := range files {
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		t.Run(name, func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var fx goldenFixture
			if err := json.Unmarshal(raw, &fx); err != nil {
				t.Fatal(err)
			}
			nw, err := topology.Parse(fx.Net)
			if err != nil {
				t.Fatal(err)
			}
			n := nw.Graph().N()
			F := bitset.FromMembers(n, fx.Faults)
			eng := NewEngine(nw)
			panel := func() []syndrome.Syndrome {
				ss := []syndrome.Syndrome{
					syndrome.NewLazy(F, goldenBehavior(fx.Behavior, fx.BehaviorSeed)),
				}
				for _, b := range sharedFinalBehaviors() {
					ss = append(ss, syndrome.NewLazy(F, b))
				}
				return ss
			}
			sDelta, sFull := panel(), panel()
			base := BatchOptions{ShareCertification: true, ShareFinalPrefix: true}
			full := base
			full.FullCheckpoint = true
			got := eng.DiagnoseBatch(sDelta, base)
			want := eng.DiagnoseBatch(sFull, full)
			for i := range want {
				if (got[i].Err == nil) != (want[i].Err == nil) {
					t.Fatalf("member %d: err %v (delta) vs %v (full)", i, got[i].Err, want[i].Err)
				}
				if want[i].Err == nil && !got[i].Faults.Equal(want[i].Faults) {
					t.Fatalf("member %d: fault sets differ between checkpoint layouts", i)
				}
				if got[i].Stats != want[i].Stats {
					t.Fatalf("member %d: stats %+v (delta) vs %+v (full)", i, got[i].Stats, want[i].Stats)
				}
				if sDelta[i].Lookups() != sFull[i].Lookups() {
					t.Fatalf("member %d: %d look-ups (delta) vs %d (full)",
						i, sDelta[i].Lookups(), sFull[i].Lookups())
				}
			}
			switch {
			case fx.WantErr != "":
				if got[0].Err == nil || !strings.Contains(got[0].Err.Error(), fx.WantErr) {
					t.Fatalf("fixture adversary: err %v, corpus pins %q", got[0].Err, fx.WantErr)
				}
			case got[0].Err != nil:
				t.Fatalf("fixture adversary: unexpected error %v", got[0].Err)
			case !got[0].Faults.Equal(bitset.FromMembers(n, fx.WantFaults)):
				t.Fatalf("fixture adversary: fault set %v differs from corpus %v",
					got[0].Faults, fx.WantFaults)
			}
		})
	}
}

// TestFullCheckpointAgainstFreeFunctions runs the full-copy ablation
// layout through the canonical shared-final contract checker, so both
// checkpoint encodings — not just the default — stay pinned to the
// paper-literal free functions.
func TestFullCheckpointAgainstFreeFunctions(t *testing.T) {
	nw := topology.NewHypercube(9)
	g := nw.Graph()
	eng := NewEngine(nw)
	parts, err := eng.Parts()
	if err != nil {
		t.Fatal(err)
	}
	center := parts[0].Seed ^ int32(g.N()-1)
	F := syndrome.ClusterFaults(g, center, nw.Diagnosability())
	checkSharedFinalGroup(t, nw, eng, F, BatchOptions{
		ShareCertification: true, FullCheckpoint: true,
	})
}
