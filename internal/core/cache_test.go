package core

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// setGOMAXPROCS raises (or pins) the scheduler's parallelism for one
// test and restores it afterwards. Worker counts are clamped to
// GOMAXPROCS everywhere (see ClampWorkers), so tests that exercise
// genuinely parallel paths must lift the limit explicitly — the CI
// container runs with GOMAXPROCS=1.
func setGOMAXPROCS(t *testing.T, n int) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// repeatedSyndromes builds `total` lazy syndromes drawn from `distinct`
// (fault set, behaviour) pairs, each a fresh Lazy value (DiagnoseBatch
// requires distinct syndromes even for one hypothesis). Returned
// alongside: an equal reference syndrome per slot for free-function
// comparison.
func repeatedSyndromes(nw topology.Network, total, distinct int) (syns, refs []syndrome.Syndrome) {
	g := nw.Graph()
	delta := nw.Diagnosability()
	behaviors := syndrome.AllBehaviors(11)
	faultSets := make([]*bitset.Set, distinct)
	for d := range faultSets {
		faultSets[d] = syndrome.RandomFaults(g.N(), 1+d%(delta), rand.New(rand.NewSource(int64(300+d))))
	}
	syns = make([]syndrome.Syndrome, total)
	refs = make([]syndrome.Syndrome, total)
	for i := range syns {
		d := i % distinct
		b := behaviors[d%len(behaviors)]
		syns[i] = syndrome.NewLazy(faultSets[d], b)
		refs[i] = syndrome.NewLazy(faultSets[d], b)
	}
	return syns, refs
}

// TestResultCacheBatchMatchesLoop pins the cache's core contract: a
// cached batch produces, per syndrome, exactly the fault set, Stats
// and error of the free-function loop — while repeated syndromes are
// never consulted at all (their Lookups stay 0) and the cache records
// one miss per distinct hypothesis.
func TestResultCacheBatchMatchesLoop(t *testing.T) {
	nw := topology.NewHypercube(10)
	const total, distinct = 32, 8
	syns, refs := repeatedSyndromes(nw, total, distinct)
	eng := NewEngine(nw)
	cache := NewResultCache(64)
	results := eng.DiagnoseBatch(syns, BatchOptions{Options: Options{ResultCache: cache}})
	for i, r := range results {
		want, wantStats, wantErr := Diagnose(nw, refs[i])
		if (r.Err == nil) != (wantErr == nil) {
			t.Fatalf("syndrome %d: err %v vs %v", i, r.Err, wantErr)
		}
		if wantErr == nil && !r.Faults.Equal(want) {
			t.Fatalf("syndrome %d: cached fault set differs", i)
		}
		if r.Stats != *wantStats {
			t.Fatalf("syndrome %d: cached stats %+v differ from free-function %+v", i, r.Stats, *wantStats)
		}
		if i >= distinct && syns[i].Lookups() != 0 {
			t.Fatalf("syndrome %d: repeated syndrome was consulted %d times, want 0", i, syns[i].Lookups())
		}
		if i < distinct && syns[i].Lookups() != refs[i].Lookups() {
			t.Fatalf("syndrome %d: populating run consulted %d, reference %d", i, syns[i].Lookups(), refs[i].Lookups())
		}
	}
	cs := cache.Stats()
	if cs.Misses != distinct || cs.Hits != total-distinct {
		t.Fatalf("cache stats %+v, want %d misses and %d hits", cs, distinct, total-distinct)
	}
	if cs.Entries != distinct || cs.Evictions != 0 {
		t.Fatalf("cache stats %+v, want %d entries and no evictions", cs, distinct)
	}
}

// TestResultCacheOffIsBitIdentical is the acceptance pin for the
// default path: with no cache, batch results — fault sets and
// per-syndrome look-up counts — are bit-identical to the free-function
// loop even when the batch repeats syndromes.
func TestResultCacheOffIsBitIdentical(t *testing.T) {
	nw := topology.NewHypercube(9)
	syns, refs := repeatedSyndromes(nw, 12, 4)
	eng := NewEngine(nw)
	for i, r := range eng.DiagnoseBatch(syns, BatchOptions{}) {
		want, wantStats, wantErr := Diagnose(nw, refs[i])
		if (r.Err == nil) != (wantErr == nil) {
			t.Fatalf("syndrome %d: err %v vs %v", i, r.Err, wantErr)
		}
		if wantErr == nil && !r.Faults.Equal(want) {
			t.Fatalf("syndrome %d: fault sets differ", i)
		}
		if wantErr == nil && r.Stats.TotalLookups != wantStats.TotalLookups {
			t.Fatalf("syndrome %d: lookups %d vs %d", i, r.Stats.TotalLookups, wantStats.TotalLookups)
		}
		if syns[i].Lookups() != refs[i].Lookups() {
			t.Fatalf("syndrome %d: syndrome counters diverged", i)
		}
	}
}

// TestResultCacheScratchHit pins the Options.Scratch interaction: a
// cache hit served into a caller scratch returns views (not aliases of
// cached state) identical to a fresh diagnosis, and the error outcomes
// (beyond-δ hypotheses) replay as faithfully as the successes.
func TestResultCacheScratchHit(t *testing.T) {
	nw := topology.NewHypercube(8)
	g := nw.Graph()
	delta := nw.Diagnosability()
	eng := NewEngine(nw)
	cache := NewResultCache(8)
	sc := eng.AcquireScratch()
	defer eng.ReleaseScratch(sc)
	opt := Options{Scratch: sc, ResultCache: cache}

	okF := syndrome.RandomFaults(g.N(), delta, rand.New(rand.NewSource(5)))
	// Beyond-δ faults under the all-one adversary: growth stops at every
	// fault, so the surviving healthy set's boundary exceeds δ and the
	// diagnosis fails with a typed error — deterministically cacheable.
	badF := syndrome.RandomFaults(g.N(), delta+3, rand.New(rand.NewSource(6)))
	for trial := 0; trial < 2; trial++ { // second round is all hits
		s := syndrome.NewLazy(okF, syndrome.Mimic{})
		got, stats, err := eng.DiagnoseOpts(s, opt)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !got.Equal(okF) {
			t.Fatalf("trial %d: misdiagnosis", trial)
		}
		if trial == 1 && s.Lookups() != 0 {
			t.Fatalf("hit consulted the syndrome %d times", s.Lookups())
		}
		if got != sc.faultsBuf() || stats != &sc.stats {
			t.Fatalf("trial %d: results are not scratch views", trial)
		}

		sBad := syndrome.NewLazy(badF, syndrome.AllOne{})
		_, _, errBad := eng.DiagnoseOpts(sBad, opt)
		if !errors.Is(errBad, ErrTooManyFaults) && !errors.Is(errBad, ErrNoHealthyPart) {
			t.Fatalf("trial %d: beyond-δ error not replayed: %v", trial, errBad)
		}
		if trial == 1 && sBad.Lookups() != 0 {
			t.Fatalf("error hit consulted the syndrome %d times", sBad.Lookups())
		}
	}
	if cs := cache.Stats(); cs.Hits != 2 || cs.Misses != 2 {
		t.Fatalf("cache stats %+v, want 2 hits and 2 misses", cs)
	}
}

// TestResultCacheKeySeparation pins the key: hypotheses equal in fault
// set but differing in behaviour — including two Random behaviours
// that differ only in seed — must not collide.
func TestResultCacheKeySeparation(t *testing.T) {
	nw := topology.NewHypercube(8)
	delta := nw.Diagnosability()
	F := syndrome.RandomFaults(nw.Graph().N(), delta, rand.New(rand.NewSource(9)))
	eng := NewEngine(nw)
	cache := NewResultCache(16)
	behaviors := []syndrome.Behavior{
		syndrome.Mimic{}, syndrome.AllOne{}, syndrome.Random{Seed: 1}, syndrome.Random{Seed: 2},
	}
	for round := 0; round < 2; round++ {
		for _, b := range behaviors {
			s := syndrome.NewLazy(F, b)
			got, _, err := eng.DiagnoseOpts(s, Options{ResultCache: cache})
			want, _, wantErr := Diagnose(nw, syndrome.NewLazy(F, b))
			if (err == nil) != (wantErr == nil) || (err == nil && !got.Equal(want)) {
				t.Fatalf("round %d %s: cached result diverges from reference", round, b.Name())
			}
		}
	}
	if cs := cache.Stats(); cs.Misses != int64(len(behaviors)) || cs.Hits != int64(len(behaviors)) {
		t.Fatalf("cache stats %+v, want %d misses and %d hits", cache.Stats(), len(behaviors), len(behaviors))
	}
	// A tightened fault bound is a distinct key: it changes the
	// partition the diagnosis runs on.
	s := syndrome.NewLazy(syndrome.RandomFaults(nw.Graph().N(), 2, rand.New(rand.NewSource(3))), syndrome.Mimic{})
	if _, _, err := eng.DiagnoseOpts(s, Options{ResultCache: cache, FaultBound: 2}); err != nil {
		t.Fatal(err)
	}
	s2 := syndrome.NewLazy(s.Faults(), syndrome.Mimic{})
	if _, _, err := eng.DiagnoseOpts(s2, Options{ResultCache: cache}); err != nil {
		t.Fatal(err)
	}
	if s2.Lookups() == 0 {
		t.Fatal("bounded and unbounded diagnoses shared a cache entry")
	}
}

// TestResultCacheEviction pins the bound: the cache never exceeds its
// capacity, evicts least-recently-used entries, and stays correct
// throughout.
func TestResultCacheEviction(t *testing.T) {
	nw := topology.NewHypercube(8)
	g := nw.Graph()
	eng := NewEngine(nw)
	cache := NewResultCache(2)
	for i := 0; i < 6; i++ {
		F := syndrome.RandomFaults(g.N(), 3, rand.New(rand.NewSource(int64(i%3))))
		s := syndrome.NewLazy(F, syndrome.Mimic{})
		got, _, err := eng.DiagnoseOpts(s, Options{ResultCache: cache})
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(F) {
			t.Fatalf("i=%d: misdiagnosis under eviction pressure", i)
		}
	}
	cs := cache.Stats()
	if cs.Entries > 2 {
		t.Fatalf("cache grew to %d entries, capacity 2", cs.Entries)
	}
	if cs.Evictions == 0 {
		t.Fatal("expected evictions with 3 hypotheses and capacity 2")
	}
}

// TestResultCacheConcurrentBatches hammers one shared cache from
// several concurrent DiagnoseBatch calls over overlapping hypothesis
// sets — the -race half of the cache contract. Every result must still
// equal its injected hypothesis.
func TestResultCacheConcurrentBatches(t *testing.T) {
	setGOMAXPROCS(t, 4)
	nw := topology.NewHypercube(8)
	g := nw.Graph()
	delta := nw.Diagnosability()
	eng := NewEngine(nw)
	cache := NewResultCache(32)
	faultSets := make([]*bitset.Set, 6)
	for d := range faultSets {
		faultSets[d] = syndrome.RandomFaults(g.N(), 1+d%delta, rand.New(rand.NewSource(int64(40+d))))
	}
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			syns := make([]syndrome.Syndrome, 18)
			want := make([]*bitset.Set, len(syns))
			for i := range syns {
				F := faultSets[(seed+i)%len(faultSets)]
				want[i] = F
				syns[i] = syndrome.NewLazy(F, syndrome.Mimic{})
			}
			opt := BatchOptions{Workers: 2, Options: Options{ResultCache: cache}}
			for i, r := range eng.DiagnoseBatch(syns, opt) {
				if r.Err != nil {
					t.Error(r.Err)
					return
				}
				if !r.Faults.Equal(want[i]) {
					t.Error("misdiagnosis under concurrent cached batches")
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if cs := cache.Stats(); cs.Hits == 0 {
		t.Fatalf("expected cache hits across concurrent batches, got %+v", cs)
	}
}
