package core

import (
	"comparisondiag/internal/graph"
	"comparisondiag/internal/syndrome"
)

// finalKernel is a specialised engine for the final (unrestricted)
// Set_Builder pass, bound once to a graph whose algebraic structure a
// graph.CayleyDescriptor describes. A kernel must produce output —
// U, Parent, Contributors, Rounds, AllHealthy AND the syndrome look-up
// count — bit-identical to the reference SetBuilder: specialisation
// changes throughput, never answers. The equivalence argument every
// kernel relies on is the reference pass's per-candidate test
// discipline: a non-member v is tested by its frontier neighbours in
// ascending node order until one answers 0, so any kernel that consults
// exactly that prefix per candidate is indistinguishable (see
// runWordKernel and the per-kernel order proofs).
type finalKernel interface {
	// Name is the observability tag reported by Engine.KernelName and
	// the CLI tools, e.g. "xor-cayley[multi-bit]".
	Name() string
	run(sc *Scratch, a graph.Adjacencer, l *syndrome.Lazy, u0 int32, delta int) *SetBuilderResult
}

// kernelBinder is one registry entry: bind inspects a descriptor and
// returns a kernel when it can serve (descriptor family matches, graph
// meets the kernel's floor), or nil to pass.
type kernelBinder struct {
	family string
	bind   func(desc graph.CayleyDescriptor, a graph.Adjacencer) finalKernel
}

// finalKernelRegistry is consulted in priority order at engine bind
// time: the XOR kernel first (cheapest per-round permutes), then the
// additive-rotate kernel for tori, then the mixed-radix compiler for
// general per-digit additive structure (augmented k-ary cubes). Adding
// a kernel for a new structure family means adding a descriptor type
// in internal/graph, a binder here, and a declaration in
// internal/topology — see docs/kernels.md.
var finalKernelRegistry = []kernelBinder{
	{"xor-cayley", bindXORKernel},
	{"additive-rotate", bindAdditiveKernel},
	{"additive-rotate[mixed-radix]", bindMixedRadixKernel},
}

// bindFinalKernel consults the registry in priority order. A nil result
// means no kernel fits and the engine serves the generic adaptive pass
// (setBuilderLazyInto). Callers must have validated the descriptor
// against the graph first (graph.VerifyCayley, or a detection probe):
// binders trust the descriptor's shape claims beyond cheap sanity
// checks.
func bindFinalKernel(desc graph.CayleyDescriptor, a graph.Adjacencer) finalKernel {
	if desc == nil {
		return nil
	}
	for _, kb := range finalKernelRegistry {
		if k := kb.bind(desc, a); k != nil {
			return k
		}
	}
	return nil
}
