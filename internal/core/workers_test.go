package core

import (
	"math/rand"
	"testing"

	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// TestClampWorkers pins the normalisation table against a known
// GOMAXPROCS.
func TestClampWorkers(t *testing.T) {
	setGOMAXPROCS(t, 3)
	for _, c := range []struct{ in, want int }{
		{-1, 3}, {-100, 3}, {0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 3}, {1 << 20, 3},
	} {
		if got := ClampWorkers(c.in); got != c.want {
			t.Errorf("ClampWorkers(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestWorkersClampPlumbing pins that the clamp actually governs the
// certification path: at GOMAXPROCS=1 an absurd Options.Workers must
// take the sequential scan, observable through PartsScanned (the
// sequential scan stops at the certified part; the parallel scan
// reports the whole candidate list).
func TestWorkersClampPlumbing(t *testing.T) {
	setGOMAXPROCS(t, 1)
	nw := topology.NewHypercube(9)
	delta := nw.Diagnosability()
	for trial := int64(0); trial < 4; trial++ {
		F := syndrome.RandomFaults(nw.Graph().N(), delta, rand.New(rand.NewSource(trial)))
		_, seqStats, err := DiagnoseOpts(nw, syndrome.NewLazy(F, syndrome.Mimic{}), Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		_, clampedStats, err := DiagnoseOpts(nw, syndrome.NewLazy(F, syndrome.Mimic{}), Options{Workers: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		if *clampedStats != *seqStats {
			t.Fatalf("trial %d: clamped run took the parallel path: %+v vs sequential %+v",
				trial, *clampedStats, *seqStats)
		}
	}
}
