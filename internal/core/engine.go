package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/graph"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// Engine is a diagnosis handle bound once to a network: it precomputes
// and owns everything syndrome-independent — the Theorem 1 partition
// (plus tightened partitions per FaultBound, built lazily), the part
// candidate order, and a pool of correctly sized Scratches — so that
// serving many syndromes against one fixed network pays the setup cost
// once instead of per call.
//
// The free functions (Diagnose, DiagnoseOpts, DiagnoseGraph) remain the
// paper-literal reference path and rebuild that state per call; the
// Engine is the serving path. Both produce identical fault sets, stats
// and syndrome look-up counts for the same inputs: the engine's
// specialised final Set_Builder pass (see setBuilderLazyInto) consults
// exactly the same test prefix per node as the reference loop.
//
// An Engine is safe for concurrent use: Diagnose and DiagnoseBatch may
// be called from many goroutines at once, as long as each individual
// Syndrome still follows its own concurrency contract (a *syndrome.Lazy
// belongs to one call at a time; see syndrome.Syndrome).
//
// An Engine is also churn-tolerant: all rebindable state lives in one
// immutable binding snapshot behind an atomic pointer, and Rebind swaps
// it for a degraded binding derived from a graph.Removal. Every call
// loads exactly one snapshot up front, so diagnoses racing a Rebind see
// either the old world or the new one, never a mixture.
type Engine struct {
	name string
	bnd  atomic.Pointer[binding]

	// mu serialises Rebind/BindCayley against each other and guards the
	// lazily built tightened-partition maps of whichever binding is
	// being extended.
	mu sync.Mutex

	pool sync.Pool // *Scratch sized for the current binding's graph
}

// binding is the engine's rebindable state: everything derived from the
// (current) graph. All fields are immutable after publication except the
// tight/tightErr maps, which grow lazily under Engine.mu.
type binding struct {
	nw    topology.Network // nil for graph-bound and implicit engines
	g     *graph.Graph     // nil for implicit (descriptor-backed) engines
	adj   graph.Adjacencer // the served adjacency: g, or an implicit generator
	delta int

	// baseDelta is the δ of the original bind; connBudget is the
	// engine's remaining connectivity lower-bound budget (κ at bind
	// time, decremented by every removal — see deriveBinding).
	baseDelta  int
	connBudget int

	parts    []topology.Part // default partition for delta; nil iff partsErr != nil
	partsErr error

	// kernel is the specialised final-pass kernel bound from the
	// network's declared Cayley structure (or from-scratch detection);
	// nil routes the final pass through the generic adaptive kernel.
	// desc is the verified descriptor the kernel was bound from, kept so
	// a rebind can re-verify it against the surviving component.
	kernel finalKernel
	desc   graph.CayleyDescriptor

	// degraded marks a binding produced by churn (Rebind/Survivor):
	// diagnoses are stamped Stats.Degraded with EffectiveDelta = delta.
	// A growth rebind that restores the full pre-churn structure clears
	// it again (unless the anchor itself was degraded).
	degraded bool

	// prev anchors the recovery direction: for a removal-derived binding
	// it is the binding the removal was applied to, and growth-derived
	// bindings inherit it unchanged — so prev always holds the world a
	// graph.Growth's OldToNew map speaks about (its parts are what
	// RegrowParts regrows toward). nil for bindings never churned.
	prev *binding

	// epoch counts rebinds. ResultCache entries are keyed on it, so an
	// in-flight diagnosis racing a Rebind can never publish a pre-churn
	// result where a post-churn lookup would find it.
	epoch uint64

	tight    map[int][]topology.Part // FaultBound-tightened partitions
	tightErr map[int]error
}

// NewEngine binds an engine to the network, eagerly building the
// default partition for δ = nw.Diagnosability(). Construction never
// fails: on gap-G3 instances with no Theorem 1 partition the error is
// recorded and returned by PartsErr and by every Diagnose call, so
// callers can route to DiagnoseWithVerification once instead of
// handling errors per syndrome.
func NewEngine(nw topology.Network) *Engine {
	b := &binding{
		nw:         nw,
		g:          nw.Graph(),
		delta:      nw.Diagnosability(),
		connBudget: nw.Connectivity(),
	}
	b.adj = b.g
	b.baseDelta = b.delta
	b.parts, b.partsErr = nw.Parts(b.delta+1, b.delta+1)
	b.kernel, b.desc = bindStructure(nw, b.g)
	e := &Engine{name: nw.Name()}
	e.bnd.Store(b)
	return e
}

// bindStructure resolves the engine's final-pass kernel at bind time:
// a declared descriptor first (validated against the CSR adjacency by
// graph.VerifyCayley, so a buggy declaration degrades to the generic
// kernel instead of corrupting results), then the from-scratch XOR
// probe for networks that declare nothing. Both paths are O(m) and run
// once per engine. The verified descriptor is returned alongside the
// kernel so a later Rebind can re-verify it on the surviving component.
func bindStructure(nw topology.Network, g *graph.Graph) (finalKernel, graph.CayleyDescriptor) {
	if cs, ok := nw.(topology.CayleyStructured); ok {
		if desc := cs.CayleyStructure(); desc != nil && graph.VerifyCayley(g, desc) == nil {
			// A verified declaration is the whole truth about the
			// adjacency; when no kernel covers it (e.g. below the
			// 64-node floor), re-probing from scratch could only
			// rediscover the same structure.
			return bindFinalKernel(desc, g), desc
		}
	}
	if desc, ok := graph.DetectXORCayley(g); ok {
		return bindFinalKernel(desc, g), desc
	}
	return nil, nil
}

// kernelName is the observability tag for a (possibly nil) kernel.
func kernelName(k finalKernel) string {
	if k == nil {
		return "generic"
	}
	return k.Name()
}

// KernelName reports the bound final-pass kernel — "xor-cayley",
// "xor-cayley[multi-bit]", "additive-rotate",
// "additive-rotate[mixed-radix]", or "generic" when no structure
// bound. Observability only: all kernels are defined to be result- and
// look-up-identical.
func (e *Engine) KernelName() string { return kernelName(e.bnd.Load().kernel) }

// BindCayley routes the final pass of a graph-bound engine through a
// structure kernel: the descriptor is first verified against the
// engine's graph (an untrusted or stale descriptor is rejected with an
// error and changes nothing), then offered to the kernel registry. A
// nil return with KernelName() still "generic" means the descriptor was
// genuine but no kernel covers it (e.g. below the 64-node word floor).
// The binding swap is atomic (diagnoses racing the call see the old or
// the new kernel, both correct), but callers should still bind before
// the engine starts serving.
func (e *Engine) BindCayley(desc graph.CayleyDescriptor) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	b := e.bnd.Load()
	if b.g == nil {
		return errors.New("core: implicit engine already is its descriptor binding; BindCayley needs a CSR-bound engine")
	}
	if err := graph.VerifyCayley(b.g, desc); err != nil {
		return err
	}
	nb := *b
	nb.kernel = bindFinalKernel(desc, b.g)
	nb.desc = desc
	e.bnd.Store(&nb)
	return nil
}

// NewGraphEngine binds an engine to an explicit graph, fault bound and
// partition — the DiagnoseGraph analogue for callers that construct
// their own topology. The parts must satisfy the Theorem 1
// preconditions for delta (see topology.ValidatePartition). Binding is
// O(1): unlike NewEngine, no adjacency-structure detection runs, so a
// graph-bound engine starts on the generic final-pass kernel; callers
// that know their graph's algebraic structure can opt in afterwards
// with BindCayley, which verifies the claim before trusting it.
func NewGraphEngine(g *graph.Graph, delta int, parts []topology.Part) *Engine {
	e := &Engine{name: "graph"}
	e.bnd.Store(&binding{g: g, adj: g, delta: delta, baseDelta: delta, connBudget: delta, parts: parts})
	return e
}

// NewCayleyEngine binds an engine directly from a Cayley descriptor —
// the implicit-adjacency mode: no CSR is ever materialised, neighbours
// are generated algebraically on demand (graph.CayleyAdjacency), and
// the Theorem 1 partition is computed from the descriptor's coset
// structure (topology.CayleyParts) instead of an edge scan. Memory is
// O(descriptor) plus the diagnosis scratch, independent of edge count —
// a Q20 hypercube binds in kilobytes where the CSR's targets array
// alone is ~80 MB — and results and syndrome look-up counts are
// bit-identical to a CSR-bound engine on the same graph.
//
// delta is the fault bound δ served, which for the declared families is
// the graph's connectivity (e.g. n for Q_n). The descriptor is shape-
// validated (graph.NewCayleyAdjacency); a malformed descriptor returns
// an error. A coset partition that cannot be derived for the requested
// bound is recorded exactly like NewEngine records a partition error —
// construction still succeeds and every Diagnose reports it.
//
// Implicit engines serve Diagnose/DiagnoseOpts/DiagnoseBatch in full
// (including FaultBound tightening, sharing, result caches, and
// Options.FinalWorkers fan-out — a bound word kernel splits its rounds
// at word granularity and keeps even the look-up count bit-identical;
// see rangedRounder). They do not support Rebind/Survivor (churn
// removal is defined against a CSR) or BindCayley (the structure is
// the binding), and Graph() returns nil.
func NewCayleyEngine(desc graph.CayleyDescriptor, delta int) (*Engine, error) {
	ca, err := graph.NewCayleyAdjacency(desc)
	if err != nil {
		return nil, err
	}
	if delta <= 0 {
		return nil, fmt.Errorf("core: implicit bind needs a positive fault bound, got %d", delta)
	}
	b := &binding{
		adj:        ca,
		delta:      delta,
		baseDelta:  delta,
		connBudget: delta,
		desc:       desc,
	}
	b.parts, b.partsErr = topology.CayleyParts(desc, delta+1, delta+1)
	b.kernel = bindFinalKernel(desc, ca)
	e := &Engine{name: desc.String()}
	e.bnd.Store(b)
	return e, nil
}

// Graph returns the bound graph (the surviving component after a
// Rebind), or nil for implicit (descriptor-backed) engines, which never
// materialise one — see Adjacency for the always-available view.
func (e *Engine) Graph() *graph.Graph { return e.bnd.Load().g }

// Adjacency returns the adjacency the engine serves: the CSR graph for
// ordinary engines, or the implicit generator (*graph.CayleyAdjacency)
// for descriptor-bound ones.
func (e *Engine) Adjacency() graph.Adjacencer { return e.bnd.Load().adj }

// Network returns the bound network, or nil for graph-bound engines.
// After a Rebind the network still identifies the original topology the
// engine was bound to, even though the served graph is its surviving
// component.
func (e *Engine) Network() topology.Network { return e.bnd.Load().nw }

// Diagnosability returns the fault bound the engine currently serves: δ
// as bound, or the degraded δ′ after a Rebind.
func (e *Engine) Diagnosability() int { return e.bnd.Load().delta }

// Degraded reports whether the engine serves a churn-degraded binding
// (it went through Rebind, or was created by Survivor). Degraded
// engines stamp Stats.Degraded/EffectiveDelta on every diagnosis.
func (e *Engine) Degraded() bool { return e.bnd.Load().degraded }

// Parts returns the precomputed default partition (or the recorded
// construction error).
func (e *Engine) Parts() ([]topology.Part, error) {
	b := e.bnd.Load()
	return b.parts, b.partsErr
}

// PartsErr reports whether the engine holds a valid Theorem 1 partition;
// non-nil means every Diagnose call will fail the same way and the
// caller should use DiagnoseWithVerification.
func (e *Engine) PartsErr() error { return e.bnd.Load().partsErr }

// partsFor returns a partition valid for the given fault bound. The
// default bound returns the bind-time partition without locking (the
// allocation-free hot path). Tighter bounds are built once per distinct
// value and cached — successes and failures alike, so the engine
// returns exactly what the free DiagnoseOpts would have (same parts or
// the same construction error), preserving the documented equivalence.
// Degraded bindings always serve their δ′ partition: the network's
// partition generator describes the pre-churn graph, and the δ′ parts
// remain valid for every tighter bound (sizes and count only need to
// reach bound+1 ≤ δ′+1).
func (e *Engine) partsFor(b *binding, bound int) ([]topology.Part, error) {
	implicit := b.nw == nil && b.g == nil && b.desc != nil
	if bound >= b.delta || (b.nw == nil && !implicit) || b.degraded {
		return b.parts, b.partsErr
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if p, ok := b.tight[bound]; ok {
		return p, b.tightErr[bound]
	}
	var p []topology.Part
	var err error
	if implicit {
		p, err = topology.CayleyParts(b.desc, bound+1, bound+1)
	} else {
		p, err = b.nw.Parts(bound+1, bound+1)
	}
	if b.tight == nil {
		b.tight = make(map[int][]topology.Part)
		b.tightErr = make(map[int]error)
	}
	b.tight[bound], b.tightErr[bound] = p, err
	return p, err
}

// AcquireScratch returns a scratch sized for the engine's graph, drawn
// from the engine's own pool. Callers that diagnose in a loop (one
// worker, many syndromes) should acquire once, pass it via
// Options.Scratch, and release when done; ReleaseScratch returns it to
// the pool. Scratches survive a Rebind: they resize lazily to whichever
// graph the next call serves.
func (e *Engine) AcquireScratch() *Scratch {
	n := e.bnd.Load().adj.N()
	if v := e.pool.Get(); v != nil {
		sc := v.(*Scratch)
		sc.ensure(n)
		return sc
	}
	return NewScratch(n)
}

// ReleaseScratch returns a scratch obtained from AcquireScratch to the
// engine's pool. Results handed out against the scratch (fault set and
// Stats views) become invalid.
func (e *Engine) ReleaseScratch(sc *Scratch) { e.pool.Put(sc) }

// Diagnose solves the fault diagnosis problem for one syndrome using
// the engine's precomputed state and default Options. The returned
// fault set and Stats are caller-owned copies.
func (e *Engine) Diagnose(s syndrome.Syndrome) (*bitset.Set, *Stats, error) {
	return e.DiagnoseOpts(s, Options{})
}

// DiagnoseOpts is Diagnose with explicit Options. Semantics match the
// free DiagnoseOpts — same fault sets, same Stats, same syndrome
// look-up counts — with the per-call partition construction replaced by
// the engine's precomputed state and the final Set_Builder pass run
// through the engine's specialised kernel when the syndrome is a
// *syndrome.Lazy. With Options.Scratch set the call is allocation-free
// in steady state and the results are scratch views (see Scratch).
//
// With Options.ResultCache set, a lazy syndrome whose fault hypothesis
// and behaviour were already diagnosed under the same effective fault
// bound and strategy is served from the cache — identical results,
// zero syndrome consultations; misses populate the cache.
func (e *Engine) DiagnoseOpts(s syndrome.Syndrome, opt Options) (*bitset.Set, *Stats, error) {
	return e.diagnose(e.bnd.Load(), s, opt)
}

// diagnose runs one call against a fixed binding snapshot.
func (e *Engine) diagnose(b *binding, s syndrome.Syndrome, opt Options) (*bitset.Set, *Stats, error) {
	delta := b.delta
	if opt.FaultBound > 0 && opt.FaultBound < delta {
		delta = opt.FaultBound
	}
	var lz *syndrome.Lazy
	if opt.ResultCache != nil && opt.Parts == nil && opt.shared == nil &&
		(opt.resumePrefix == nil || !opt.resumePrefix.valid) {
		// Grouped members whose run will carry shared accounting
		// (CertLookups 0 and/or suffix-only FinalLookups) skip the
		// cache: those Stats must not be memoised as the hypothesis's
		// canonical full-run Stats, and a hit would bypass the shared
		// state they are supposed to adopt. A member whose group
		// recorded no usable checkpoint runs fully canonically, so it
		// still consults (and populates) the cache — otherwise a warm-
		// cache representative hit (which records no checkpoint) would
		// degrade every member of the group to a full diagnosis.
		if l, ok := s.(*syndrome.Lazy); ok && cacheable(l) {
			lz = l
			if ent, hit := opt.ResultCache.lookup(l, delta, opt.Strategy, b.epoch); hit {
				return e.serveCached(b, ent, opt.Scratch)
			}
		}
	}
	parts := opt.Parts
	if parts == nil {
		var err error
		parts, err = e.partsFor(b, delta)
		if err != nil {
			return nil, nil, fmt.Errorf("diagnosing %s: %w", e.name, err)
		}
	}
	opt.fastFinal = true
	if !opt.GenericFinal {
		opt.kernel = b.kernel
	}
	var faults *bitset.Set
	var stats *Stats
	var err error
	if opt.Scratch != nil {
		faults, stats, err = diagnoseInto(opt.Scratch, b.adj, delta, parts, s, opt)
	} else {
		sc := e.AcquireScratch()
		sc.ensure(b.adj.N()) // the pool may hand back a scratch sized for a newer binding
		faults, stats, err = diagnoseInto(sc, b.adj, delta, parts, s, opt)
		faults, stats = cloneResults(faults, stats)
		e.ReleaseScratch(sc)
	}
	if stats != nil && b.degraded {
		stats.Degraded = true
		stats.EffectiveDelta = b.delta
	}
	if lz != nil && stats != nil {
		opt.ResultCache.insert(lz, delta, opt.Strategy, b.epoch, faults, stats, err)
	}
	return faults, stats, err
}

// serveCached copies a memoised diagnosis out of the cache: into the
// caller's scratch (preserving the Options.Scratch view contract) when
// one is supplied, as caller-owned clones otherwise. Cached state is
// never aliased.
func (e *Engine) serveCached(b *binding, ent *cacheEntry, sc *Scratch) (*bitset.Set, *Stats, error) {
	if sc != nil {
		sc.ensure(b.adj.N())
		sc.stats = ent.stats
		if ent.resFaults == nil {
			return nil, &sc.stats, ent.err
		}
		f := sc.faultsBuf()
		f.CopyFrom(ent.resFaults)
		return f, &sc.stats, ent.err
	}
	st := ent.stats
	if ent.resFaults == nil {
		return nil, &st, ent.err
	}
	return ent.resFaults.Clone(), &st, ent.err
}

// BatchPool abstracts the worker pool DiagnoseBatch distributes its
// syndromes on. RunScratch must invoke fn exactly once for every index
// in [0, n) — each invocation receiving a *Scratch that belongs to the
// executing worker for the duration of the call — and return only once
// every index has completed. The engine's default pool spawns transient
// goroutines per call; campaign.Runtime implements the interface with
// persistent workers (pinned scratches, no per-batch pool
// construction) so long-running batch clients share one runtime across
// campaigns, CLI batches and replay drivers.
type BatchPool interface {
	RunScratch(n int, fn func(sc *Scratch, i int))
}

// transientPool is the default BatchPool: goroutines spawned per call,
// each owning a pooled engine scratch, work distributed by an atomic
// cursor.
type transientPool struct {
	e       *Engine
	workers int
}

// RunScratch implements BatchPool.
func (p transientPool) RunScratch(n int, fn func(sc *Scratch, i int)) {
	workers := p.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	workers = ClampWorkers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		sc := p.e.AcquireScratch()
		for i := 0; i < n; i++ {
			fn(sc, i)
		}
		p.e.ReleaseScratch(sc)
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := p.e.AcquireScratch()
			defer p.e.ReleaseScratch(sc)
			for {
				i := next.Add(1)
				if i >= int64(n) {
					return
				}
				fn(sc, int(i))
			}
		}()
	}
	wg.Wait()
}

// BatchOptions tunes DiagnoseBatch.
type BatchOptions struct {
	// Workers is the size of the worker pool diagnosing syndromes
	// concurrently; 0 or negative means GOMAXPROCS, and requests above
	// it are clamped (see ClampWorkers). Each worker owns a dedicated
	// Scratch from the engine pool, so steady-state batches allocate
	// only the caller-owned results. Ignored when Pool is set.
	Workers int
	// Pool, when non-nil, supplies the worker pool the batch runs on
	// instead of transient per-call goroutines — see BatchPool and
	// campaign.Runtime. The pool decides its own parallelism.
	Pool BatchPool
	// ShareCertification groups the batch's lazy syndromes by fault
	// hypothesis and runs the Theorem 1 part scan once per group: the
	// group's first syndrome certifies normally, and every other
	// member adopts the shared verdict, paying only its final
	// Set_Builder pass. Fault sets and final-pass look-ups stay
	// bit-identical to individual calls; the members' Stats record the
	// shared verdict with CertLookups = 0 and PartsScanned copied from
	// the representative. Opt-in because it changes the members'
	// observed total look-up counts (that saving is the feature).
	//
	// Sharing is sound because the scan certificate's per-part verdict
	// does not depend on faulty-tester behaviour while the hypothesis
	// respects the fault bound: a fault-free part is tested only by
	// healthy members, a mixed part always contains a healthy member
	// whose consulted pair holds its faulty part-neighbour (forcing a
	// 1), and the one behaviour-dependent case — an all-faulty part —
	// would need more than δ faults. Syndromes outside the guards
	// (non-lazy, StrategyPaper, caller-supplied Parts, hypotheses
	// beyond the bound) are diagnosed individually within the batch.
	ShareCertification bool
	// ShareFinalPrefix additionally shares the behaviour-independent
	// prefix of the final Set_Builder pass across each group: the
	// representative's final pass records a checkpoint at the first
	// round whose frontier would consult a comparison involving a
	// hypothesised-faulty node, and every other member resumes from it,
	// consulting the syndrome only past the checkpoint. While the
	// frontier avoids F ∪ N(F) every consulted comparison has a healthy
	// tester, parent and candidate, so those rounds' admissions, tree
	// and look-up trace are identical under every behaviour — see
	// finalPrefix for the full argument. Fault sets and the shape
	// fields of Stats (Seed, Rounds, HealthyCount, FaultCount) stay
	// bit-identical to individual calls; the accounting contract is
	// that prefix look-ups are paid once by the representative and
	// members report only their own suffix (FinalLookups), with the
	// adopted prefix recorded in Stats.SharedFinalRounds /
	// SharedFinalLookups. Grouping guards match ShareCertification;
	// the flags compose but are independent — either may be set alone.
	// FinalWorkers > 1 final passes (on graphs large enough to engage
	// the parallel pass) record no checkpoint and members run in full.
	ShareFinalPrefix bool
	// FullCheckpoint makes ShareFinalPrefix checkpoints use the
	// pre-delta dense layout: full copies of the U words and the whole
	// parent array per group, restored wholesale per member. The default
	// (false) records only the words and tree entries the prefix
	// actually touched — O(touched + |U|) instead of O(n) per snapshot
	// and restore, which is what keeps million-node batches affordable.
	// Results and look-up counts are identical either way; the flag
	// exists for the ablation benchmark and the bit-identity tests.
	FullCheckpoint bool
	// Options applies to every diagnosis in the batch. Scratch is
	// ignored (workers bind their own); Workers inside Options still
	// selects parallel part certification per syndrome and composes
	// with the batch pool — leave it 0 for the deterministic,
	// lookup-identical sequential path.
	Options Options
}

// BatchResult is the outcome of one syndrome in a DiagnoseBatch call.
// Faults and Stats are caller-owned (never scratch views).
type BatchResult struct {
	Faults *bitset.Set
	Stats  Stats
	Err    error
}

// DiagnoseBatch diagnoses many syndromes against the bound network
// through a worker pool, amortising all syndrome-independent setup.
// results[i] always corresponds to syndromes[i] regardless of worker
// scheduling, and each syndrome's fault set and look-up count are
// identical to what a sequential Diagnose call would produce — batching
// changes throughput, not answers. The whole batch runs against one
// binding snapshot: a concurrent Rebind affects only later calls.
//
// Each syndrome is driven by exactly one worker, so plain *syndrome.Lazy
// syndromes are safe here; the syndromes themselves must be distinct.
func (e *Engine) DiagnoseBatch(syndromes []syndrome.Syndrome, opt BatchOptions) []BatchResult {
	results := make([]BatchResult, len(syndromes))
	if len(syndromes) == 0 {
		return results
	}
	b := e.bnd.Load()
	pool := opt.Pool
	if pool == nil {
		pool = transientPool{e: e, workers: opt.Workers}
	}
	if opt.ShareCertification || opt.ShareFinalPrefix {
		e.diagnoseGrouped(b, pool, syndromes, opt, results)
		return results
	}
	pool.RunScratch(len(syndromes), func(sc *Scratch, i int) {
		results[i] = e.diagnoseOne(b, syndromes[i], opt.Options, sc)
	})
	return results
}

// diagnoseGrouped implements BatchOptions.ShareCertification and
// BatchOptions.ShareFinalPrefix: phase A diagnoses each fault
// hypothesis's first syndrome (and every ungroupable one) in full —
// recording, when final-prefix sharing is on, the group's shared
// final-prefix checkpoint as a side effect — and phase B re-runs the
// remaining group members under the representative's certification
// verdict and/or resumed from its checkpoint. See the two BatchOptions
// fields for the soundness arguments and the accounting contracts.
func (e *Engine) diagnoseGrouped(b *binding, pool BatchPool, syndromes []syndrome.Syndrome, bopt BatchOptions, results []BatchResult) {
	opt := bopt.Options
	delta := b.delta
	if opt.FaultBound > 0 && opt.FaultBound < delta {
		delta = opt.FaultBound
	}
	groupable := opt.Strategy == StrategyScan && opt.Parts == nil

	type group struct {
		rep     int
		members []int
		fp      *finalPrefix
	}
	var phaseA []int // representatives and ungroupable syndromes
	var groups []*group
	byHash := make(map[uint64][]*group)
	for i, s := range syndromes {
		lz, ok := s.(*syndrome.Lazy)
		if !ok || !groupable || lz.Faults().Count() > delta {
			phaseA = append(phaseA, i)
			continue
		}
		h := faultsHash(lz.Faults())
		var grp *group
		for _, cand := range byHash[h] {
			if syndromes[cand.rep].(*syndrome.Lazy).Faults().Equal(lz.Faults()) {
				grp = cand
				break
			}
		}
		if grp == nil {
			grp = &group{rep: i}
			byHash[h] = append(byHash[h], grp)
			groups = append(groups, grp)
			phaseA = append(phaseA, i)
			continue
		}
		grp.members = append(grp.members, i)
	}

	// Arm final-prefix recording on every representative that actually
	// has members to share with; singleton groups record nothing.
	var recFor map[int]*finalPrefix
	if bopt.ShareFinalPrefix {
		recFor = make(map[int]*finalPrefix)
		for _, grp := range groups {
			if len(grp.members) > 0 {
				grp.fp = &finalPrefix{full: bopt.FullCheckpoint}
				recFor[grp.rep] = grp.fp
			}
		}
	}

	pool.RunScratch(len(phaseA), func(sc *Scratch, k int) {
		i := phaseA[k]
		o := opt
		o.recordPrefix = recFor[i]
		results[i] = e.diagnoseOne(b, syndromes[i], o, sc)
	})

	type memberTask struct {
		idx    int
		shared *sharedScan
		fp     *finalPrefix
	}
	var phaseB []memberTask
	for _, grp := range groups {
		if len(grp.members) == 0 {
			continue
		}
		rep := results[grp.rep]
		var sh *sharedScan
		// A completed scan is shareable whether it certified
		// (Err == nil or the final pass overflowed the bound) or
		// exhausted the candidates (ErrNoHealthyPart); any other error
		// happened before certification, so members diagnose in full
		// and fail the same way the representative did.
		if bopt.ShareCertification &&
			(rep.Err == nil || errors.Is(rep.Err, ErrNoHealthyPart) || errors.Is(rep.Err, ErrTooManyFaults)) {
			sh = &sharedScan{certified: rep.Stats.CertifiedPart, partsScanned: rep.Stats.PartsScanned}
		}
		for _, m := range grp.members {
			phaseB = append(phaseB, memberTask{m, sh, grp.fp})
		}
	}
	pool.RunScratch(len(phaseB), func(sc *Scratch, k int) {
		t := phaseB[k]
		o := opt
		o.shared = t.shared
		o.resumePrefix = t.fp
		results[t.idx] = e.diagnoseOne(b, syndromes[t.idx], o, sc)
	})
}

// diagnoseOne runs one batch element on a worker-owned scratch and
// copies the results out of it.
func (e *Engine) diagnoseOne(b *binding, s syndrome.Syndrome, opt Options, sc *Scratch) BatchResult {
	opt.Scratch = sc
	sc.ensure(b.adj.N())
	faults, stats, err := e.diagnose(b, s, opt)
	var r BatchResult
	if faults != nil {
		r.Faults = faults.Clone()
	}
	if stats != nil {
		r.Stats = *stats
	}
	r.Err = err
	return r
}

// cloneResults copies scratch-view diagnosis results into caller-owned
// values (nil-safe on both).
func cloneResults(faults *bitset.Set, stats *Stats) (*bitset.Set, *Stats) {
	var f *bitset.Set
	if faults != nil {
		f = faults.Clone()
	}
	var st *Stats
	if stats != nil {
		cp := *stats
		st = &cp
	}
	return f, st
}
