package core

import (
	"slices"
	"testing"

	"comparisondiag/internal/graph"
)

// The fuzz tier targets the two step compilers — the pieces of the
// kernel layer whose correctness burden is an *ordering* argument, not
// a data-path one: every emitted schedule must visit each candidate's
// testers in strictly ascending node order (the reference pass's test
// prefix) and cover each generator exactly once. Both targets check the
// compiled schedule against the naive comparison sort of the testers.
// Seed corpora live in testdata/fuzz/ and cover the deployed families
// (Q/FQ/EQ/AQ mask sets, torus and augmented k-ary radix shapes).

// fuzzMasks decodes a mask set from fuzz bytes: 2..12 masks of up to
// 10 bits. Duplicates are possible (and meaningful: the compiler must
// refuse them).
func fuzzMasks(data []byte) []int32 {
	if len(data) < 3 {
		return nil
	}
	n := 2 + int(data[0])%11
	masks := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		a := data[1+(2*i)%(len(data)-1)]
		b := data[1+(2*i+1)%(len(data)-1)]
		m := int32(a)<<8 | int32(b)
		m = 1 + (m+int32(i))%1023
		masks = append(masks, m)
	}
	return masks
}

// FuzzCompileXORSchedule pins compileXORSchedule: a duplicate-free
// mask set of this size always compiles, a duplicated one never does,
// and a compiled schedule is order-exact — for every candidate v the
// steps whose conditions v satisfies yield exactly the testers
// {v ⊕ m} in strictly ascending order, matching the naive sort.
func FuzzCompileXORSchedule(f *testing.F) {
	f.Add([]byte{6, 0, 1, 0, 2, 0, 4, 0, 8, 0, 16, 0, 32})   // Q6-like
	f.Add([]byte{7, 0, 1, 0, 2, 0, 4, 0, 8, 0, 16, 0, 63})   // folded
	f.Add([]byte{11, 0, 1, 0, 3, 0, 7, 0, 15, 0, 31, 0, 63}) // augmented runs
	f.Add([]byte{3, 9, 9, 9, 9})                             // duplicates
	f.Add([]byte{12, 255, 255, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		masks := fuzzMasks(data)
		if masks == nil {
			return
		}
		dup := false
		for i := range masks {
			for j := i + 1; j < len(masks); j++ {
				if masks[i] == masks[j] {
					dup = true
				}
			}
		}
		sched := compileXORSchedule(masks)
		if dup {
			if sched != nil {
				t.Fatalf("masks %v: duplicates compiled", masks)
			}
			return
		}
		if sched == nil {
			// ≤ 12 distinct masks expand well below the step cap, so a
			// refusal here is a compiler bug.
			t.Fatalf("masks %v: duplicate-free set refused", masks)
		}
		for v := int32(0); v < 1024; v++ {
			want := make([]int32, len(masks))
			for i, m := range masks {
				want[i] = v ^ m
			}
			slices.Sort(want) // the naive comparison sort
			var got []int32
			seen := map[int32]bool{}
			for _, st := range sched {
				ok := true
				for _, lt := range st.lits {
					if (v&(1<<uint(lt.bit)) != 0) != lt.val {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				if seen[st.mask] {
					t.Fatalf("masks %v v=%d: mask %#x scheduled twice", masks, v, st.mask)
				}
				seen[st.mask] = true
				got = append(got, v^st.mask)
			}
			if !slices.Equal(got, want) {
				t.Fatalf("masks %v v=%d: schedule order %v, naive sort %v", masks, v, got, want)
			}
		}
	})
}

// fuzzMixedRadix decodes a mixed-radix descriptor from fuzz bytes:
// 3..4 dimensions of arity 2..5 and 1..3 distinct non-zero generator
// digit vectors.
func fuzzMixedRadix(data []byte) *graph.MixedRadixCayley {
	if len(data) < 8 {
		return nil
	}
	dims := 3 + int(data[0])%2
	radices := make([]int, dims)
	for d := range radices {
		radices[d] = 2 + int(data[1+d])%4
	}
	nGens := 1 + int(data[1+dims])%3
	at := 2 + dims
	var gens [][]int
	for i := 0; i < nGens; i++ {
		gen := make([]int, dims)
		zero := true
		for d := range gen {
			gen[d] = int(data[(at+i*dims+d)%len(data)]) % radices[d]
			if gen[d] != 0 {
				zero = false
			}
		}
		if zero {
			continue
		}
		dup := false
		for _, g := range gens {
			if slices.Equal(g, gen) {
				dup = true
				break
			}
		}
		if !dup {
			gens = append(gens, gen)
		}
	}
	if len(gens) == 0 {
		return nil
	}
	return &graph.MixedRadixCayley{Radices: radices, Gens: gens}
}

// FuzzMixedRadixSteps pins the mixed-radix step compiler: the emitted
// addStep schedule (one step per generator × borrow pattern, sorted by
// descending shift) must, for every candidate id v, select exactly the
// testers {v ⊖ g : g ∈ Gens} in strictly ascending order — the naive
// comparison sort of the digit-wise subtractions.
func FuzzMixedRadixSteps(f *testing.F) {
	f.Add([]byte{0, 2, 2, 2, 1, 1, 0, 0, 1, 1, 1, 0})       // torus-ish unit + run
	f.Add([]byte{1, 2, 2, 2, 2, 2, 1, 1, 1, 1, 3, 3, 3, 3}) // 4 dims
	f.Add([]byte{0, 3, 1, 0, 2, 2, 1, 1, 1, 2, 2, 0})       // augmented shape
	f.Fuzz(func(t *testing.T, data []byte) {
		mr := fuzzMixedRadix(data)
		if mr == nil {
			return
		}
		n := mr.Order()
		if n < 64 || n > 4096 {
			return // below the kernel's word floor / needlessly slow
		}
		// The binder only reads the graph's size and max degree, so a
		// ring of the right order stands in for the real adjacency —
		// this fuzzes the schedule compiler, not descriptor validation.
		g := graph.FromAdjacency(n, func(u int32) []int32 {
			return []int32{int32((int(u) + 1) % n), int32((int(u) + n - 1) % n)}
		})
		k := bindMixedRadixKernel(*mr, g)
		if k == nil {
			t.Fatalf("radices %v gens %v: binder refused a well-formed descriptor", mr.Radices, mr.Gens)
		}
		steps := k.(*additiveKernel).steps

		stride := make([]int, len(mr.Radices))
		s := 1
		for d, kd := range mr.Radices {
			stride[d] = s
			s *= kd
		}
		sub := func(v int, gen []int) int {
			u := 0
			x := v
			for d, kd := range mr.Radices {
				digit := x % kd
				x /= kd
				u += ((digit - gen[d] + kd) % kd) * stride[d]
			}
			return u
		}
		for v := 0; v < n; v++ {
			want := make([]int, 0, len(mr.Gens))
			for _, gen := range mr.Gens {
				want = append(want, sub(v, gen))
			}
			slices.Sort(want) // the naive comparison sort
			var got []int
			for si := range steps {
				st := &steps[si]
				// The pruner may have rewritten the step to an explicit
				// candidate list (see addStep.ids); membership is then a
				// search in the ascending ids instead of a mask probe.
				if st.ids != nil {
					if _, ok := slices.BinarySearch(st.ids, int32(v)); !ok {
						continue
					}
				} else if st.cond[v>>6]&(1<<(uint(v)&63)) == 0 {
					continue
				}
				u := v - st.shift
				if u < 0 || u >= n {
					t.Fatalf("radices %v gens %v v=%d: tester %d out of range", mr.Radices, mr.Gens, v, u)
				}
				got = append(got, u)
			}
			if !slices.Equal(got, want) {
				t.Fatalf("radices %v gens %v v=%d: schedule order %v, naive sort %v",
					mr.Radices, mr.Gens, v, got, want)
			}
		}
	})
}
