package core

import (
	"math/rand"
	"testing"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

func BenchmarkSetBuilderQ12(b *testing.B) {
	nw := topology.NewHypercube(12)
	g := nw.Graph()
	F := syndrome.RandomFaults(g.N(), 12, rand.New(rand.NewSource(1)))
	s := syndrome.NewLazy(F, syndrome.Mimic{})
	seed := int32(0)
	for F.Contains(int(seed)) {
		seed++
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := SetBuilder(g, s, seed, 12, nil)
		if r.U.Count() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkCertifyPartQ12(b *testing.B) {
	nw := topology.NewHypercube(12)
	g := nw.Graph()
	parts, err := nw.Parts(13, 13)
	if err != nil {
		b.Fatal(err)
	}
	F := syndrome.RandomFaults(g.N(), 12, rand.New(rand.NewSource(2)))
	s := syndrome.NewLazy(F, syndrome.Mimic{})
	mask := bitset.FromMembers(g.N(), parts[0].Nodes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CertifyPart(g, s, parts[0].Nodes, mask)
	}
}

func BenchmarkDiagnoseVerificationS62(b *testing.B) {
	nk := topology.NewNKStar(6, 2)
	g := nk.Graph()
	F := syndrome.RandomFaults(g.N(), 5, rand.New(rand.NewSource(3)))
	s := syndrome.NewLazy(F, syndrome.Mimic{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := DiagnoseWithVerification(g, 5, s)
		if err != nil || !got.Equal(F) {
			b.Fatal("fallback failed")
		}
	}
}
