package core

import (
	"errors"
	"fmt"

	"comparisondiag/internal/graph"
	"comparisondiag/internal/topology"
)

// ErrNoSurvivingPartition means churn left the surviving component
// without any valid Theorem 1 partition, even at fault bound 0: the
// rebound engine holds no parts and every Diagnose call fails with this
// error (wrapped), mirroring how a fresh bind reports
// topology.ErrNoPartition.
var ErrNoSurvivingPartition = errors.New("core: churn left no valid Theorem 1 partition on the surviving component")

// RebindReport describes what one Rebind or Survivor call did — the
// observability record for churn events, in both directions.
type RebindReport struct {
	OldN, NewN int // graph sizes before/after

	// Grew distinguishes the delta direction: false for a removal
	// rebind, true for a growth rebind. The loss census fields are zero
	// on growth rebinds and vice versa.
	Grew bool

	// Churn census, copied from the graph.Removal: explicitly removed
	// nodes, explicitly removed surviving-relevant edges, and nodes
	// stranded outside the largest surviving component.
	RemovedNodes, RemovedEdges, Stranded int

	// Recovery census, copied from the graph.Growth: nodes explicitly
	// re-admitted, stranded survivors reconnected, and pre-churn nodes
	// still gone after the growth.
	Readmitted, Reconnected, StillGone int

	// BaseDelta is the δ of the original (pre-churn) bind;
	// EffectiveDelta is the degraded bound δ′ the rebound engine serves.
	BaseDelta, EffectiveDelta int

	// Partition census. On removals (topology.SurviveParts): parts
	// remapped untouched, parts trimmed and re-validated successfully,
	// and parts dropped. On growths (topology.RegrowParts): PartsKept
	// counts parts serving their pre-growth membership, PartsRepaired
	// counts parts that regrew, PartsReadmitted counts parts with no
	// served counterpart that re-validated from scratch. PartsErr
	// records the rebound engine's partition error
	// (ErrNoSurvivingPartition, or a carried-over pre-churn error), nil
	// when the engine can serve.
	PartsKept, PartsRepaired, PartsReadmitted, PartsDropped int
	PartsErr                                                error

	// Final-pass kernel transition. When a declared/bound Cayley
	// descriptor no longer verifies on the surviving component the
	// engine falls back to the generic kernel and
	// KernelFallbackReason says why; empty when the kernel carried
	// over (or there was none). The descriptor itself is kept through
	// the fallback, and a growth rebind re-verifies it: once the full
	// structure returns the specialised kernel re-binds automatically,
	// recorded in KernelPromotion.
	KernelBefore, KernelAfter string
	KernelFallbackReason      string
	KernelPromotion           string

	// Result-cache census over the caches passed to Rebind: entries
	// flushed because they could not survive the churn, and entries
	// remapped into the new id space.
	CacheFlushed, CacheKept int
}

// String renders the report as a single human-readable line.
func (r *RebindReport) String() string {
	var s string
	if r.Grew {
		s = fmt.Sprintf("regrow %d->%d nodes (+%d readmitted, +%d reconnected, %d still gone): delta %d->%d, parts %d kept/%d regrown/%d readmitted/%d dropped, kernel %s->%s, cache %d flushed/%d kept",
			r.OldN, r.NewN, r.Readmitted, r.Reconnected, r.StillGone,
			r.BaseDelta, r.EffectiveDelta,
			r.PartsKept, r.PartsRepaired, r.PartsReadmitted, r.PartsDropped,
			r.KernelBefore, r.KernelAfter,
			r.CacheFlushed, r.CacheKept)
	} else {
		s = fmt.Sprintf("rebind %d->%d nodes (-%d nodes, -%d edges, %d stranded): delta %d->%d, parts %d kept/%d repaired/%d dropped, kernel %s->%s, cache %d flushed/%d kept",
			r.OldN, r.NewN, r.RemovedNodes, r.RemovedEdges, r.Stranded,
			r.BaseDelta, r.EffectiveDelta,
			r.PartsKept, r.PartsRepaired, r.PartsDropped,
			r.KernelBefore, r.KernelAfter,
			r.CacheFlushed, r.CacheKept)
	}
	if r.PartsErr != nil {
		s += fmt.Sprintf(" [parts: %v]", r.PartsErr)
	}
	if r.KernelFallbackReason != "" {
		s += fmt.Sprintf(" [kernel: %s]", r.KernelFallbackReason)
	}
	if r.KernelPromotion != "" {
		s += fmt.Sprintf(" [kernel: %s]", r.KernelPromotion)
	}
	return s
}

// Rebind atomically re-targets the engine at the surviving component of
// a graph.Removal produced from the engine's current graph
// (e.Graph().RemoveNodes / RemoveEdges / Remove), instead of forcing
// callers to rebuild an engine from scratch when the network churns.
// The rebind is incremental: the Theorem 1 partition is re-derived from
// the existing parts (untouched parts are remapped wholesale, only
// parts touched by the churn are re-validated — see
// topology.SurviveParts), the degraded fault bound δ′ is recomputed
// from the surviving census, the bound Cayley descriptor is re-verified
// against the surviving component (falling back to the generic final
// pass, with the reason recorded in the report, when the structure did
// not survive), and the lazily built tightened-partition cache is
// invalidated. The engine's scratch pool carries over — pooled
// scratches resize lazily — so steady-state diagnosis stays
// allocation-free across the rebind.
//
// Any ResultCaches the caller has been passing to this engine's
// diagnoses should be handed in here: entries keyed on removed ids are
// flushed and the rest are remapped into the new id space (see
// ResultCache.Rebind); the census lands in the report. In-flight
// diagnoses concurrent with Rebind are safe — each call runs against
// one immutable binding snapshot, and the binding epoch keys cache
// traffic to its own generation — they simply complete against the
// pre-churn world.
//
// After a successful rebind the engine reports Degraded() and stamps
// Stats.Degraded/EffectiveDelta on every diagnosis. A removal that
// leaves no valid partition still succeeds: the engine then serves
// errors, exactly like a fresh bind on a partitionless instance
// (PartsErr returns ErrNoSurvivingPartition). Rebind only fails — and
// changes nothing — when the removal is malformed (wrong graph, empty
// survivor).
//
// Rebinds compose in both directions: a second Rebind takes a Removal
// produced from the current (post-churn) graph, and a growth rebind
// takes a graph.Growth produced by graph.Restore from the removal the
// engine last survived (or from a previous growth's Remaining). A
// growth ascends: δ′ grows back toward δ under the same budget formula
// run in reverse, dropped parts are re-admitted (topology.RegrowParts),
// the kept descriptor is re-verified so the specialised kernel
// re-binds once full structure returns, cache entries are remapped
// through the growth's total survivor id map, and a growth that
// restores the complete pre-churn structure clears the degraded stamp
// — diagnoses become bit-identical to a fresh bind's.
func (e *Engine) Rebind(d graph.Delta, caches ...*ResultCache) (*RebindReport, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	b := e.bnd.Load()
	nb, rep, idMap, err := deriveDelta(b, d)
	if err != nil {
		return nil, err
	}
	// Flush before publishing: entries rewritten here carry the new
	// epoch, and nothing can insert under that epoch until the new
	// binding is visible. Stale inserts racing us keep the old epoch
	// and are unreachable after the swap (they age out of the LRU).
	for _, c := range caches {
		if c == nil {
			continue
		}
		fl, kp := c.Rebind(idMap, nb.g.N(), b.delta, nb.delta, nb.epoch, nb.degraded)
		rep.CacheFlushed += fl
		rep.CacheKept += kp
	}
	e.bnd.Store(nb)
	return rep, nil
}

// Survivor derives a new engine for the delta's resulting component
// without touching e — the non-mutating sibling of Rebind for callers
// that want to keep serving the original binding (or diagnose a
// hypothetical churn). The derivation is identical to Rebind's; the
// new engine starts with its own empty scratch pool, and no caches are
// rewritten (pass the survivor its own fresh ResultCache).
func (e *Engine) Survivor(d graph.Delta) (*Engine, *RebindReport, error) {
	nb, rep, _, err := deriveDelta(e.bnd.Load(), d)
	if err != nil {
		return nil, nil, err
	}
	ne := &Engine{name: e.name}
	ne.bnd.Store(nb)
	return ne, rep, nil
}

// deriveDelta dispatches on the delta direction and returns the id map
// the caches remap through: the removal's OldToNew (partial — flushes
// entries touching removed ids) or the growth's SurvivorToNew (total —
// every entry of the served component survives a growth).
func deriveDelta(b *binding, d graph.Delta) (*binding, *RebindReport, []int32, error) {
	switch dd := d.(type) {
	case *graph.Removal:
		nb, rep, err := deriveBinding(b, dd)
		if err != nil {
			return nil, nil, nil, err
		}
		return nb, rep, dd.OldToNew, nil
	case *graph.Growth:
		nb, rep, err := deriveGrowth(b, dd)
		if err != nil {
			return nil, nil, nil, err
		}
		return nb, rep, dd.SurvivorToNew, nil
	default:
		return nil, nil, nil, fmt.Errorf("core: unknown churn delta %T", d)
	}
}

// deriveBinding computes the degraded binding for a removal applied to
// binding b. Pure with respect to b (shared slices are never written),
// so concurrent readers of b are unaffected.
func deriveBinding(b *binding, rr *graph.Removal) (*binding, *RebindReport, error) {
	if b.g == nil {
		return nil, nil, errors.New("core: implicit (descriptor-backed) engines cannot rebind — churn removals are defined against a materialised graph")
	}
	if len(rr.OldToNew) != b.g.N() {
		return nil, nil, fmt.Errorf("core: removal maps %d nodes but the engine's graph has %d (removal must be produced from Engine.Graph())", len(rr.OldToNew), b.g.N())
	}
	g2 := rr.G
	if g2 == nil || g2.N() == 0 {
		return nil, nil, errors.New("core: removal left no surviving component to rebind to")
	}
	rep := &RebindReport{
		OldN: b.g.N(), NewN: g2.N(),
		RemovedNodes: rr.RemovedNodes, RemovedEdges: rr.RemovedEdges, Stranded: rr.Stranded,
		BaseDelta:    b.baseDelta,
		KernelBefore: kernelName(b.kernel),
	}
	nb := &binding{
		nw:        b.nw,
		g:         g2,
		adj:       g2,
		baseDelta: b.baseDelta,
		epoch:     b.epoch + 1,
		prev:      b, // the world a later graph.Restore regrows toward
	}

	// Connectivity budget: each removed node or edge can lower κ by at
	// most one, so the budget is a sound lower bound on κ(g2) as long
	// as the original bind's bound was (κ for NewEngine, δ itself for
	// NewGraphEngine). Stranded nodes left with the removed ones.
	nb.connBudget = b.connBudget - (rr.RemovedNodes + rr.Stranded) - rr.RemovedEdges

	// Partition survival: remap untouched parts, re-validate touched
	// ones. A pre-churn partition error carries over — there is
	// nothing to survive.
	var parts2 []topology.Part
	if b.partsErr != nil {
		nb.partsErr = b.partsErr
	} else {
		var kept, repaired, dropped int
		parts2, _, kept, repaired, dropped = topology.SurviveParts(g2, b.parts, rr.OldToNew, rr.GoneEdges, nil)
		rep.PartsKept, rep.PartsRepaired, rep.PartsDropped = kept, repaired, dropped
	}

	// Degraded bound δ′: the largest d not exceeding the connectivity
	// budget and the surviving minimum degree for which Theorem 1 still
	// has enough material — at least d+1 surviving parts of at least
	// d+1 nodes. (Part sizes need only exceed the bound actually
	// served, which is why SurviveParts leaves the size filter to us.)
	dmax := b.delta
	if nb.connBudget < dmax {
		dmax = nb.connBudget
	}
	if md := g2.MinDegree(); md < dmax {
		dmax = md
	}
	if dmax < 0 {
		// The survivor is a single connected component, so the bound
		// δ′ = 0 (diagnose under "no faults survive") is always sound
		// even after the budget is exhausted.
		dmax = 0
	}
	delta2 := -1
	if nb.partsErr == nil {
		for d := dmax; d >= 0; d-- {
			cnt := 0
			for _, p := range parts2 {
				if len(p.Nodes) >= d+1 {
					cnt++
				}
			}
			if cnt >= d+1 {
				delta2 = d
				break
			}
		}
	}
	if delta2 < 0 {
		nb.delta = 0
		if nb.partsErr == nil {
			nb.partsErr = ErrNoSurvivingPartition
		}
	} else {
		nb.delta = delta2
		served := parts2[:0] // parts2 owns its backing; filter in place
		for _, p := range parts2 {
			if len(p.Nodes) >= delta2+1 {
				served = append(served, p)
			}
		}
		nb.parts = served
	}
	rep.EffectiveDelta = nb.delta
	rep.PartsErr = nb.partsErr

	// Kernel survival: the bound descriptor described the old
	// adjacency; trust it on the survivor only if it verifies there.
	// The descriptor itself is carried through a fallback — it still
	// describes the pre-churn structure, which is exactly what a growth
	// rebind needs to re-verify for the generic→kernel promotion.
	if b.desc != nil {
		nb.desc = b.desc
		if err := graph.VerifyCayley(g2, b.desc); err == nil {
			nb.kernel = bindFinalKernel(b.desc, g2)
		} else {
			rep.KernelFallbackReason = fmt.Sprintf("bound %s descriptor no longer verifies on the surviving component (%v); final pass falls back to the generic kernel", kernelName(b.kernel), err)
		}
	}
	rep.KernelAfter = kernelName(nb.kernel)

	nb.degraded = b.degraded || nb.delta < b.delta ||
		rr.RemovedNodes+rr.RemovedEdges+rr.Stranded > 0
	return nb, rep, nil
}

// deriveGrowth computes the recovered binding for a growth applied to
// binding b — the ascending twin of deriveBinding. Pure with respect to
// b and its anchor (shared slices are never written), so concurrent
// readers are unaffected.
func deriveGrowth(b *binding, gr *graph.Growth) (*binding, *RebindReport, error) {
	if b.g == nil {
		return nil, nil, errors.New("core: implicit (descriptor-backed) engines cannot rebind — churn deltas are defined against a materialised graph")
	}
	anchor := b.prev
	if anchor == nil {
		return nil, nil, errors.New("core: engine has no churn to recover from — growth rebinds regrow a previous removal")
	}
	if len(gr.SurvivorToNew) != b.g.N() {
		return nil, nil, fmt.Errorf("core: growth maps %d survivors but the engine's graph has %d (growth must be produced by graph.Restore from the removal this engine last survived)", len(gr.SurvivorToNew), b.g.N())
	}
	if anchor.g == nil || len(gr.OldToNew) != anchor.g.N() {
		return nil, nil, fmt.Errorf("core: growth is anchored at a %d-node graph but the engine's pre-churn graph has %d nodes", len(gr.OldToNew), anchor.g.N())
	}
	g2 := gr.G
	if g2 == nil || g2.N() == 0 {
		return nil, nil, errors.New("core: growth carries no component to rebind to")
	}
	rm := gr.Remaining
	rep := &RebindReport{
		OldN: b.g.N(), NewN: g2.N(),
		Grew:       true,
		Readmitted: gr.Readmitted, Reconnected: gr.Reconnected, StillGone: gr.StillGone,
		BaseDelta:    b.baseDelta,
		KernelBefore: kernelName(b.kernel),
	}
	nb := &binding{
		nw:        b.nw,
		g:         g2,
		adj:       g2,
		baseDelta: b.baseDelta,
		epoch:     b.epoch + 1,
		prev:      anchor, // further growths keep regrowing toward the same world
	}
	if gr.StillGone == 0 && len(rm.GoneEdges) == 0 {
		// Full restore: the new binding is the anchor's world, ids and
		// all, so its recovery frame is whatever the anchor's was. This
		// is what lets stacked removals unwind — fully regrowing the
		// latest removal re-exposes the one beneath it.
		nb.prev = anchor.prev
	}

	// The budget formula run in reverse: re-derive it from the anchor's
	// budget and what is still gone, so restored structure hands its
	// decrement back. A full restore recovers the anchor budget exactly.
	nb.connBudget = anchor.connBudget - (rm.RemovedNodes + rm.Stranded) - rm.RemovedEdges

	// Partition re-growth: re-admit the anchor partition as far as the
	// growth allows, falling back per part to the currently served
	// membership (see topology.RegrowParts) — the served partition
	// never loses a part across a growth. An anchor-time partition
	// error carries over; a post-removal ErrNoSurvivingPartition does
	// not — re-growth is exactly what can lift it.
	var parts2 []topology.Part
	if anchor.partsErr != nil {
		nb.partsErr = anchor.partsErr
	} else {
		var kept, regrown, readmitted, dropped int
		parts2, _, kept, regrown, readmitted, dropped = topology.RegrowParts(g2, anchor.parts, gr.OldToNew, rm.GoneEdges, b.parts, gr.SurvivorToNew, nil)
		rep.PartsKept, rep.PartsRepaired, rep.PartsReadmitted, rep.PartsDropped = kept, regrown, readmitted, dropped
	}

	// δ′ ascent: the same bound search as the descent, ceilinged by the
	// anchor's δ instead of the degraded one. With full structure back
	// the budget, minimum degree and part census all recover, so δ′
	// lands on δ.
	dmax := anchor.delta
	if nb.connBudget < dmax {
		dmax = nb.connBudget
	}
	if md := g2.MinDegree(); md < dmax {
		dmax = md
	}
	if dmax < 0 {
		dmax = 0
	}
	delta2 := -1
	if nb.partsErr == nil {
		for d := dmax; d >= 0; d-- {
			cnt := 0
			for _, p := range parts2 {
				if len(p.Nodes) >= d+1 {
					cnt++
				}
			}
			if cnt >= d+1 {
				delta2 = d
				break
			}
		}
	}
	if delta2 < 0 {
		nb.delta = 0
		if nb.partsErr == nil {
			nb.partsErr = ErrNoSurvivingPartition
		}
	} else {
		nb.delta = delta2
		served := parts2[:0]
		for _, p := range parts2 {
			if len(p.Nodes) >= delta2+1 {
				served = append(served, p)
			}
		}
		nb.parts = served
	}
	rep.EffectiveDelta = nb.delta
	rep.PartsErr = nb.partsErr

	// Kernel recovery: re-verify the kept descriptor against the
	// re-grown component. Once the full structure is back this
	// succeeds and the specialised kernel re-binds — the
	// generic→kernel promotion the fallback path was holding the
	// descriptor for.
	if b.desc != nil {
		nb.desc = b.desc
		if err := graph.VerifyCayley(g2, b.desc); err == nil {
			nb.kernel = bindFinalKernel(b.desc, g2)
			if b.kernel == nil && nb.kernel != nil {
				rep.KernelPromotion = fmt.Sprintf("bound descriptor verifies again on the re-grown component; final pass promoted from the generic kernel to %s", kernelName(nb.kernel))
			}
		} else {
			rep.KernelFallbackReason = fmt.Sprintf("bound descriptor still does not verify on the re-grown component (%v); final pass stays on the generic kernel", err)
		}
	}
	rep.KernelAfter = kernelName(nb.kernel)

	// The degraded stamp clears exactly when the pre-churn structure is
	// fully back: nothing still gone means the re-grown graph is the
	// anchor graph, ids and all.
	nb.degraded = anchor.degraded || gr.StillGone > 0 || len(rm.GoneEdges) > 0
	return nb, rep, nil
}
