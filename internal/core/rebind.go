package core

import (
	"errors"
	"fmt"

	"comparisondiag/internal/graph"
	"comparisondiag/internal/topology"
)

// ErrNoSurvivingPartition means churn left the surviving component
// without any valid Theorem 1 partition, even at fault bound 0: the
// rebound engine holds no parts and every Diagnose call fails with this
// error (wrapped), mirroring how a fresh bind reports
// topology.ErrNoPartition.
var ErrNoSurvivingPartition = errors.New("core: churn left no valid Theorem 1 partition on the surviving component")

// RebindReport describes what one Rebind or Survivor call did — the
// observability record for churn events.
type RebindReport struct {
	OldN, NewN int // graph sizes before/after

	// Churn census, copied from the graph.Removal: explicitly removed
	// nodes, explicitly removed surviving-relevant edges, and nodes
	// stranded outside the largest surviving component.
	RemovedNodes, RemovedEdges, Stranded int

	// BaseDelta is the δ of the original (pre-churn) bind;
	// EffectiveDelta is the degraded bound δ′ the rebound engine serves.
	BaseDelta, EffectiveDelta int

	// Partition survival census (see topology.SurviveParts): parts
	// remapped untouched, parts trimmed and re-validated successfully,
	// and parts dropped. PartsErr records the rebound engine's
	// partition error (ErrNoSurvivingPartition, or a carried-over
	// pre-churn error), nil when the engine can serve.
	PartsKept, PartsRepaired, PartsDropped int
	PartsErr                               error

	// Final-pass kernel transition. When a declared/bound Cayley
	// descriptor no longer verifies on the surviving component the
	// engine falls back to the generic kernel and
	// KernelFallbackReason says why; empty when the kernel carried
	// over (or there was none).
	KernelBefore, KernelAfter string
	KernelFallbackReason      string

	// Result-cache census over the caches passed to Rebind: entries
	// flushed because they could not survive the churn, and entries
	// remapped into the new id space.
	CacheFlushed, CacheKept int
}

// String renders the report as a single human-readable line.
func (r *RebindReport) String() string {
	s := fmt.Sprintf("rebind %d->%d nodes (-%d nodes, -%d edges, %d stranded): delta %d->%d, parts %d kept/%d repaired/%d dropped, kernel %s->%s, cache %d flushed/%d kept",
		r.OldN, r.NewN, r.RemovedNodes, r.RemovedEdges, r.Stranded,
		r.BaseDelta, r.EffectiveDelta,
		r.PartsKept, r.PartsRepaired, r.PartsDropped,
		r.KernelBefore, r.KernelAfter,
		r.CacheFlushed, r.CacheKept)
	if r.PartsErr != nil {
		s += fmt.Sprintf(" [parts: %v]", r.PartsErr)
	}
	if r.KernelFallbackReason != "" {
		s += fmt.Sprintf(" [kernel: %s]", r.KernelFallbackReason)
	}
	return s
}

// Rebind atomically re-targets the engine at the surviving component of
// a graph.Removal produced from the engine's current graph
// (e.Graph().RemoveNodes / RemoveEdges / Remove), instead of forcing
// callers to rebuild an engine from scratch when the network churns.
// The rebind is incremental: the Theorem 1 partition is re-derived from
// the existing parts (untouched parts are remapped wholesale, only
// parts touched by the churn are re-validated — see
// topology.SurviveParts), the degraded fault bound δ′ is recomputed
// from the surviving census, the bound Cayley descriptor is re-verified
// against the surviving component (falling back to the generic final
// pass, with the reason recorded in the report, when the structure did
// not survive), and the lazily built tightened-partition cache is
// invalidated. The engine's scratch pool carries over — pooled
// scratches resize lazily — so steady-state diagnosis stays
// allocation-free across the rebind.
//
// Any ResultCaches the caller has been passing to this engine's
// diagnoses should be handed in here: entries keyed on removed ids are
// flushed and the rest are remapped into the new id space (see
// ResultCache.Rebind); the census lands in the report. In-flight
// diagnoses concurrent with Rebind are safe — each call runs against
// one immutable binding snapshot, and the binding epoch keys cache
// traffic to its own generation — they simply complete against the
// pre-churn world.
//
// After a successful rebind the engine reports Degraded() and stamps
// Stats.Degraded/EffectiveDelta on every diagnosis. A removal that
// leaves no valid partition still succeeds: the engine then serves
// errors, exactly like a fresh bind on a partitionless instance
// (PartsErr returns ErrNoSurvivingPartition). Rebind only fails — and
// changes nothing — when the removal is malformed (wrong graph, empty
// survivor).
//
// Rebinds compose: a second Rebind takes a Removal produced from the
// current (post-churn) graph.
func (e *Engine) Rebind(rr *graph.Removal, caches ...*ResultCache) (*RebindReport, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	b := e.bnd.Load()
	nb, rep, err := deriveBinding(b, rr)
	if err != nil {
		return nil, err
	}
	// Flush before publishing: entries rewritten here carry the new
	// epoch, and nothing can insert under that epoch until the new
	// binding is visible. Stale inserts racing us keep the old epoch
	// and are unreachable after the swap (they age out of the LRU).
	for _, c := range caches {
		if c == nil {
			continue
		}
		fl, kp := c.Rebind(rr.OldToNew, nb.g.N(), b.delta, nb.delta, nb.epoch)
		rep.CacheFlushed += fl
		rep.CacheKept += kp
	}
	e.bnd.Store(nb)
	return rep, nil
}

// Survivor derives a new degraded engine for the removal's surviving
// component without touching e — the non-mutating sibling of Rebind for
// callers that want to keep serving the original binding (or diagnose
// a hypothetical churn). The derivation is identical to Rebind's; the
// new engine starts with its own empty scratch pool, and no caches are
// rewritten (pass the survivor its own fresh ResultCache).
func (e *Engine) Survivor(rr *graph.Removal) (*Engine, *RebindReport, error) {
	nb, rep, err := deriveBinding(e.bnd.Load(), rr)
	if err != nil {
		return nil, nil, err
	}
	ne := &Engine{name: e.name}
	ne.bnd.Store(nb)
	return ne, rep, nil
}

// deriveBinding computes the degraded binding for a removal applied to
// binding b. Pure with respect to b (shared slices are never written),
// so concurrent readers of b are unaffected.
func deriveBinding(b *binding, rr *graph.Removal) (*binding, *RebindReport, error) {
	if b.g == nil {
		return nil, nil, errors.New("core: implicit (descriptor-backed) engines cannot rebind — churn removals are defined against a materialised graph")
	}
	if len(rr.OldToNew) != b.g.N() {
		return nil, nil, fmt.Errorf("core: removal maps %d nodes but the engine's graph has %d (removal must be produced from Engine.Graph())", len(rr.OldToNew), b.g.N())
	}
	g2 := rr.G
	if g2 == nil || g2.N() == 0 {
		return nil, nil, errors.New("core: removal left no surviving component to rebind to")
	}
	rep := &RebindReport{
		OldN: b.g.N(), NewN: g2.N(),
		RemovedNodes: rr.RemovedNodes, RemovedEdges: rr.RemovedEdges, Stranded: rr.Stranded,
		BaseDelta:    b.baseDelta,
		KernelBefore: kernelName(b.kernel),
	}
	nb := &binding{
		nw:        b.nw,
		g:         g2,
		adj:       g2,
		baseDelta: b.baseDelta,
		epoch:     b.epoch + 1,
	}

	// Connectivity budget: each removed node or edge can lower κ by at
	// most one, so the budget is a sound lower bound on κ(g2) as long
	// as the original bind's bound was (κ for NewEngine, δ itself for
	// NewGraphEngine). Stranded nodes left with the removed ones.
	nb.connBudget = b.connBudget - (rr.RemovedNodes + rr.Stranded) - rr.RemovedEdges

	// Partition survival: remap untouched parts, re-validate touched
	// ones. A pre-churn partition error carries over — there is
	// nothing to survive.
	var parts2 []topology.Part
	if b.partsErr != nil {
		nb.partsErr = b.partsErr
	} else {
		var kept, repaired, dropped int
		parts2, _, kept, repaired, dropped = topology.SurviveParts(g2, b.parts, rr.OldToNew, rr.GoneEdges, nil)
		rep.PartsKept, rep.PartsRepaired, rep.PartsDropped = kept, repaired, dropped
	}

	// Degraded bound δ′: the largest d not exceeding the connectivity
	// budget and the surviving minimum degree for which Theorem 1 still
	// has enough material — at least d+1 surviving parts of at least
	// d+1 nodes. (Part sizes need only exceed the bound actually
	// served, which is why SurviveParts leaves the size filter to us.)
	dmax := b.delta
	if nb.connBudget < dmax {
		dmax = nb.connBudget
	}
	if md := g2.MinDegree(); md < dmax {
		dmax = md
	}
	if dmax < 0 {
		// The survivor is a single connected component, so the bound
		// δ′ = 0 (diagnose under "no faults survive") is always sound
		// even after the budget is exhausted.
		dmax = 0
	}
	delta2 := -1
	if nb.partsErr == nil {
		for d := dmax; d >= 0; d-- {
			cnt := 0
			for _, p := range parts2 {
				if len(p.Nodes) >= d+1 {
					cnt++
				}
			}
			if cnt >= d+1 {
				delta2 = d
				break
			}
		}
	}
	if delta2 < 0 {
		nb.delta = 0
		if nb.partsErr == nil {
			nb.partsErr = ErrNoSurvivingPartition
		}
	} else {
		nb.delta = delta2
		served := parts2[:0] // parts2 owns its backing; filter in place
		for _, p := range parts2 {
			if len(p.Nodes) >= delta2+1 {
				served = append(served, p)
			}
		}
		nb.parts = served
	}
	rep.EffectiveDelta = nb.delta
	rep.PartsErr = nb.partsErr

	// Kernel survival: the bound descriptor described the old
	// adjacency; trust it on the survivor only if it verifies there.
	if b.kernel != nil && b.desc != nil {
		if err := graph.VerifyCayley(g2, b.desc); err == nil {
			nb.kernel = bindFinalKernel(b.desc, g2)
			nb.desc = b.desc
		} else {
			rep.KernelFallbackReason = fmt.Sprintf("bound %s descriptor no longer verifies on the surviving component (%v); final pass falls back to the generic kernel", kernelName(b.kernel), err)
		}
	}
	rep.KernelAfter = kernelName(nb.kernel)

	nb.degraded = b.degraded || nb.delta < b.delta ||
		rr.RemovedNodes+rr.RemovedEdges+rr.Stranded > 0
	return nb, rep, nil
}
