package core

import (
	"math/rand"
	"testing"

	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// BenchmarkFinalKernels compares each structure kernel against the
// generic adaptive pass on the same instance and syndrome — the
// isolated final-pass half of the diagnosebatch-vs-generic perf cases.
func BenchmarkFinalKernels(b *testing.B) {
	for _, nw := range []topology.Network{
		topology.NewFoldedHypercube(12),
		topology.NewAugmentedCube(10),
		topology.NewKAryNCube(4, 7),
		topology.NewHypercube(14),
	} {
		g := nw.Graph()
		delta := nw.Diagnosability()
		k := bindFinalKernel(nw.(topology.CayleyStructured).CayleyStructure(), g)
		if k == nil {
			b.Fatalf("%s: no kernel", nw.Name())
		}
		F := syndrome.RandomFaults(g.N(), delta, rand.New(rand.NewSource(1)))
		seed := int32(0)
		for F.Contains(int(seed)) {
			seed++
		}
		s := syndrome.NewLazy(F, syndrome.Mimic{})
		sc := NewScratch(g.N())
		b.Run("kernel/"+nw.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				k.run(sc, g, s, seed, delta)
			}
		})
		b.Run("generic/"+nw.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				setBuilderLazyInto(sc, g, s, seed, delta)
			}
		})
	}
}
