package core

import (
	"errors"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// DiagnoseAny diagnoses with the best available method: the Theorem 1
// partition procedure when the network admits one, falling back to the
// verification-based procedure on gap-G3 instances whose partition
// precondition is unsatisfiable. Stats is nil when the fallback ran.
func DiagnoseAny(nw topology.Network, s syndrome.Syndrome) (*bitset.Set, *Stats, error) {
	faults, stats, err := Diagnose(nw, s)
	if err == nil {
		return faults, stats, nil
	}
	if errors.Is(err, topology.ErrNoPartition) {
		faults, verr := DiagnoseWithVerification(nw.Graph(), nw.Diagnosability(), s)
		if verr != nil {
			return nil, nil, verr
		}
		return faults, nil, nil
	}
	return nil, stats, err
}
