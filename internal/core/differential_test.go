package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/graph"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// randomInstance is one generated differential case: an arbitrary
// connected graph (not a declared family) with a partition whose parts
// satisfy the Theorem 1 part preconditions (connected, larger than δ,
// induced minimum degree ≥ 2) — the conditions the grouped-batch
// soundness arguments rely on.
type randomInstance struct {
	g     *graph.Graph
	delta int
	parts []topology.Part
}

// genRandomInstance builds δ+1 disjoint cycle-with-chords parts, a few
// leftover nodes, and random inter-part edges forming a connected
// graph. Everything derives from rng, so a failing quick seed replays.
func genRandomInstance(rng *rand.Rand) randomInstance {
	delta := 1 + rng.Intn(3)
	nParts := delta + 1

	type edge struct{ u, v int32 }
	seen := map[edge]bool{}
	var edges []edge
	addEdge := func(u, v int32) {
		if u == v {
			return
		}
		if u > v {
			u, v = v, u
		}
		if seen[edge{u, v}] {
			return
		}
		seen[edge{u, v}] = true
		edges = append(edges, edge{u, v})
	}

	var parts []topology.Part
	next := int32(0)
	for p := 0; p < nParts; p++ {
		size := delta + 2 + rng.Intn(4)
		nodes := make([]int32, size)
		for i := range nodes {
			nodes[i] = next
			next++
		}
		// A cycle guarantees connectivity and induced min degree 2;
		// random chords vary the internal structure.
		for i := range nodes {
			addEdge(nodes[i], nodes[(i+1)%size])
		}
		for c := rng.Intn(3); c > 0; c-- {
			addEdge(nodes[rng.Intn(size)], nodes[rng.Intn(size)])
		}
		parts = append(parts, topology.Part{Nodes: nodes, Seed: nodes[rng.Intn(size)]})
	}
	// Leftover nodes outside every part, each wired at least twice.
	for extra := rng.Intn(4); extra > 0; extra-- {
		v := next
		next++
		addEdge(v, int32(rng.Intn(int(v))))
		addEdge(v, int32(rng.Intn(int(v))))
	}
	n := int(next)
	// Chain the parts (graph connectivity), then sprinkle cross edges.
	for p := 0; p+1 < nParts; p++ {
		a := parts[p].Nodes[rng.Intn(len(parts[p].Nodes))]
		b := parts[p+1].Nodes[rng.Intn(len(parts[p+1].Nodes))]
		addEdge(a, b)
	}
	for c := 2 + rng.Intn(2*n); c > 0; c-- {
		addEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}

	b := graph.NewBuilder(n)
	for _, e := range edges {
		b.MustAddEdge(e.u, e.v)
	}
	return randomInstance{g: b.Build(), delta: delta, parts: parts}
}

// diffStats compares a batch result against the free-function outcome
// under the documented accounting contract: reps and ungrouped
// syndromes must match bit for bit; members of a grouped batch keep
// the shape fields and satisfy the shared-scan / shared-prefix
// look-up identities.
func diffStats(r BatchResult, want *bitset.Set, wantStats *Stats, wantErr error,
	member, shareCert, shareFinal bool) error {
	if (r.Err == nil) != (wantErr == nil) {
		return fmt.Errorf("err %v, free function %v", r.Err, wantErr)
	}
	if wantErr == nil && !r.Faults.Equal(want) {
		return fmt.Errorf("fault set differs from free function")
	}
	if wantStats == nil {
		return nil
	}
	st := r.Stats
	if !member {
		if st != *wantStats {
			return fmt.Errorf("stats %+v differ from free-function %+v", st, *wantStats)
		}
		return nil
	}
	if st.Seed != wantStats.Seed || st.Rounds != wantStats.Rounds ||
		st.HealthyCount != wantStats.HealthyCount || st.FaultCount != wantStats.FaultCount ||
		st.CertifiedPart != wantStats.CertifiedPart || st.Delta != wantStats.Delta ||
		st.PartsScanned != wantStats.PartsScanned {
		return fmt.Errorf("member shape stats %+v differ from free-function %+v", st, *wantStats)
	}
	if shareCert {
		if st.CertLookups != 0 {
			return fmt.Errorf("member CertLookups = %d with shared scans", st.CertLookups)
		}
	} else if st.CertLookups != wantStats.CertLookups {
		return fmt.Errorf("member CertLookups %d ≠ free %d", st.CertLookups, wantStats.CertLookups)
	}
	if shareFinal {
		if st.FinalLookups+st.SharedFinalLookups != wantStats.FinalLookups {
			return fmt.Errorf("member final %d + shared %d ≠ free final %d",
				st.FinalLookups, st.SharedFinalLookups, wantStats.FinalLookups)
		}
	} else if st.FinalLookups != wantStats.FinalLookups || st.SharedFinalLookups != 0 {
		return fmt.Errorf("member final %d (shared %d) ≠ free final %d",
			st.FinalLookups, st.SharedFinalLookups, wantStats.FinalLookups)
	}
	if st.TotalLookups != st.CertLookups+st.FinalLookups {
		return fmt.Errorf("member total %d ≠ cert %d + final %d", st.TotalLookups, st.CertLookups, st.FinalLookups)
	}
	return nil
}

// runDifferentialMatrix drives one engine through Diagnose and every
// DiagnoseBatch Share* × cache combination over the given fault
// hypotheses and asserts everything against freeRef, the paper-literal
// reference runner for the same instance.
func runDifferentialMatrix(t *testing.T, tag string, eng *Engine, hyps []*bitset.Set, delta int,
	freeRef func(s syndrome.Syndrome) (*bitset.Set, *Stats, error)) {
	t.Helper()
	behaviors := syndrome.AllBehaviors(42)

	makeSyns := func() ([]syndrome.Syndrome, []int) {
		var syns []syndrome.Syndrome
		var hypOf []int
		for h, F := range hyps {
			for _, b := range behaviors {
				syns = append(syns, syndrome.NewLazy(F, b))
				hypOf = append(hypOf, h)
			}
		}
		// One duplicated (hypothesis, behaviour) pair exercises cache
		// hits in ungrouped runs and member replay in grouped ones.
		syns = append(syns, syndrome.NewLazy(hyps[0], behaviors[0]))
		hypOf = append(hypOf, 0)
		return syns, hypOf
	}

	// The paper-literal reference, once per distinct syndrome position.
	refSyns, _ := makeSyns()
	type refOut struct {
		faults *bitset.Set
		stats  *Stats
		err    error
	}
	refs := make([]refOut, len(refSyns))
	for i, s := range refSyns {
		f, st, err := freeRef(s)
		refs[i] = refOut{f, st, err}
	}

	// Engine single-syndrome serving path: bit-identical, lookups too.
	syns, _ := makeSyns()
	for i, s := range syns {
		f, st, err := eng.DiagnoseOpts(s, Options{})
		berr := diffStats(BatchResult{Faults: f, Stats: derefStats(st), Err: err},
			refs[i].faults, refs[i].stats, refs[i].err, false, false, false)
		if berr != nil {
			t.Fatalf("%s: engine Diagnose syndrome %d: %v", tag, i, berr)
		}
		if s.Lookups() != refSyns[i].Lookups() {
			t.Fatalf("%s: engine Diagnose syndrome %d consulted %d, free %d", tag, i, s.Lookups(), refSyns[i].Lookups())
		}
	}

	for _, shareCert := range []bool{false, true} {
		for _, shareFinal := range []bool{false, true} {
			for _, cached := range []bool{false, true} {
				name := fmt.Sprintf("%s cert=%v final=%v cache=%v", tag, shareCert, shareFinal, cached)
				syns, hypOf := makeSyns()
				opt := BatchOptions{ShareCertification: shareCert, ShareFinalPrefix: shareFinal}
				if cached {
					opt.Options.ResultCache = NewResultCache(64)
				}
				results := eng.DiagnoseBatch(syns, opt)
				grouped := shareCert || shareFinal
				// Grouping keys on fault-set equality, so two hypothesis
				// indices holding equal sets share one group.
				var seenSets []*bitset.Set
				for i, r := range results {
					F := hyps[hypOf[i]]
					groupableHyp := F.Count() <= delta
					member := false
					if grouped && groupableHyp {
						for _, s := range seenSets {
							if s.Equal(F) {
								member = true
								break
							}
						}
						if !member {
							seenSets = append(seenSets, F)
						}
					}
					if err := diffStats(r, refs[i].faults, refs[i].stats, refs[i].err,
						member, member && shareCert, member && shareFinal); err != nil {
						t.Fatalf("%s: syndrome %d: %v", name, i, err)
					}
					if !cached && !member && syns[i].Lookups() != refSyns[i].Lookups() {
						t.Fatalf("%s: syndrome %d consulted %d, free function %d",
							name, i, syns[i].Lookups(), refSyns[i].Lookups())
					}
					if !cached && member && r.Err == nil && syns[i].Lookups() != r.Stats.TotalLookups {
						t.Fatalf("%s: member syndrome %d consulted %d, stats say %d",
							name, i, syns[i].Lookups(), r.Stats.TotalLookups)
					}
				}
			}
		}
	}
}

func derefStats(st *Stats) Stats {
	if st == nil {
		return Stats{}
	}
	return *st
}

// TestDifferentialRandomGraphs is the differential property tier:
// testing/quick-driven random connected graphs — not declared
// topology families — with random partitions, fault loads (including
// beyond-δ hypotheses) and all behaviours, asserting the engine
// serving paths (Diagnose, DiagnoseBatch under every Share*
// combination, cache on and off) against the paper-literal free
// functions field by field.
func TestDifferentialRandomGraphs(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(20260729))}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := genRandomInstance(rng)
		if !inst.g.Connected() {
			// The generator chains all parts and wires leftovers, so
			// this would be a generator bug worth failing on.
			t.Errorf("seed %d: generated graph disconnected", seed)
			return false
		}
		var hyps []*bitset.Set
		hyps = append(hyps,
			syndrome.RandomFaults(inst.g.N(), rng.Intn(inst.delta+1), rng),
			syndrome.RandomFaults(inst.g.N(), inst.delta, rng),
			// Beyond the bound: must be diagnosed (or refused)
			// individually, never grouped.
			syndrome.RandomFaults(inst.g.N(), inst.delta+1+rng.Intn(3), rng),
		)
		eng := NewGraphEngine(inst.g, inst.delta, inst.parts)
		tag := fmt.Sprintf("seed=%d n=%d δ=%d", seed, inst.g.N(), inst.delta)
		runDifferentialMatrix(t, tag, eng, hyps, inst.delta, func(s syndrome.Syndrome) (*bitset.Set, *Stats, error) {
			return DiagnoseGraph(inst.g, inst.delta, inst.parts, s, Options{})
		})
		return !t.Failed()
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestDifferentialDeclaredFamilies runs the same matrix over declared
// families (kernel-bound engines) with random fault loads and a random
// tightened fault bound, against the free functions.
func TestDifferentialDeclaredFamilies(t *testing.T) {
	nets := []topology.Network{
		topology.NewHypercube(7),
		topology.NewKAryNCube(4, 3),
	}
	rng := rand.New(rand.NewSource(7))
	for _, nw := range nets {
		g := nw.Graph()
		delta := nw.Diagnosability()
		eng := NewEngine(nw)
		for trial := 0; trial < 3; trial++ {
			bound := 0
			if rng.Intn(2) == 1 {
				bound = 1 + rng.Intn(delta)
			}
			eff := delta
			if bound > 0 && bound < delta {
				eff = bound
			}
			var hyps []*bitset.Set
			hyps = append(hyps,
				syndrome.RandomFaults(g.N(), rng.Intn(eff+1), rng),
				syndrome.RandomFaults(g.N(), eff, rng),
				syndrome.RandomFaults(g.N(), eff+1, rng),
			)
			tag := fmt.Sprintf("%s trial=%d bound=%d", nw.Name(), trial, bound)
			matrixEng := eng
			opts := Options{FaultBound: bound}
			runMatrixWithOptions(t, tag, matrixEng, hyps, eff, opts, func(s syndrome.Syndrome) (*bitset.Set, *Stats, error) {
				return DiagnoseOpts(nw, s, opts)
			})
		}
	}
}

// runMatrixWithOptions is runDifferentialMatrix with base Options
// applied to every engine call (e.g. a tightened FaultBound).
func runMatrixWithOptions(t *testing.T, tag string, eng *Engine, hyps []*bitset.Set, delta int,
	base Options, freeRef func(s syndrome.Syndrome) (*bitset.Set, *Stats, error)) {
	t.Helper()
	behaviors := syndrome.AllBehaviors(42)
	makeSyns := func() ([]syndrome.Syndrome, []int) {
		var syns []syndrome.Syndrome
		var hypOf []int
		for h, F := range hyps {
			for _, b := range behaviors {
				syns = append(syns, syndrome.NewLazy(F, b))
				hypOf = append(hypOf, h)
			}
		}
		return syns, hypOf
	}
	refSyns, _ := makeSyns()
	type refOut struct {
		faults *bitset.Set
		stats  *Stats
		err    error
	}
	refs := make([]refOut, len(refSyns))
	for i, s := range refSyns {
		f, st, err := freeRef(s)
		refs[i] = refOut{f, st, err}
	}
	for _, shareCert := range []bool{false, true} {
		for _, shareFinal := range []bool{false, true} {
			for _, cached := range []bool{false, true} {
				name := fmt.Sprintf("%s cert=%v final=%v cache=%v", tag, shareCert, shareFinal, cached)
				syns, hypOf := makeSyns()
				opt := BatchOptions{ShareCertification: shareCert, ShareFinalPrefix: shareFinal, Options: base}
				if cached {
					opt.Options.ResultCache = NewResultCache(64)
				}
				results := eng.DiagnoseBatch(syns, opt)
				grouped := shareCert || shareFinal
				// Grouping keys on fault-set equality, so two hypothesis
				// indices holding equal sets share one group.
				var seenSets []*bitset.Set
				for i, r := range results {
					F := hyps[hypOf[i]]
					groupableHyp := F.Count() <= delta
					member := false
					if grouped && groupableHyp {
						for _, s := range seenSets {
							if s.Equal(F) {
								member = true
								break
							}
						}
						if !member {
							seenSets = append(seenSets, F)
						}
					}
					if err := diffStats(r, refs[i].faults, refs[i].stats, refs[i].err,
						member, member && shareCert, member && shareFinal); err != nil {
						t.Fatalf("%s: syndrome %d: %v", name, i, err)
					}
				}
			}
		}
	}
}
