package core

import (
	"math/bits"
	"sync"

	"comparisondiag/internal/bitset"
)

// Scratch holds every buffer the diagnosis hot path needs, so that a
// warm scratch makes SetBuilderInto — and a whole DiagnoseGraph call
// when supplied via Options.Scratch — run without heap allocation:
//
//   - the U / Contributors bitsets and the Parent slice of Set_Builder,
//     plus its two frontier buffers;
//   - one reusable part mask for certification, populated and cleared
//     member-wise (O(|part|), not O(n)) between candidate parts;
//   - the part-neighbour buffer of the scan certificate;
//   - the output fault set and Stats of DiagnoseGraph.
//
// Reuse contract: results handed out against a Scratch
// (SetBuilderResult from SetBuilderInto, the fault set and Stats from a
// Diagnose call with Options.Scratch set) are views into these buffers.
// They stay valid until the scratch is used again; callers that need
// them longer must copy (bitset.Clone, slices.Clone) first, and must
// not modify them in place. A Scratch belongs to one goroutine at a
// time.
type Scratch struct {
	n            int
	res          SetBuilderResult
	u            *bitset.Set
	contributors *bitset.Set
	parent       []int32
	frontier     []int32
	next         []int32
	added        *bitset.Set // nodes admitted this round, drained in order
	mask         *bitset.Set // kept empty between certifications
	fset         *bitset.Set // frontier membership for inverted-scan rounds
	prev         []uint64    // round-start U snapshot (XOR-Cayley kernel)
	ns           []int32
	nbuf         []int32 // neighbour-generation buffer (implicit adjacency)
	faults       *bitset.Set
	stats        Stats

	// prefixRec / prefixRes carry a shared-final-prefix checkpoint
	// (see finalPrefix) into the next final pass: prefixRec asks the
	// pass to record the checkpoint at the behaviour-independence
	// boundary, prefixRes asks it to resume from one. Both are set and
	// cleared around the pass by diagnoseInto — they are per-call
	// plumbing, not reusable scratch state.
	prefixRec *finalPrefix
	prefixRes *finalPrefix

	// finalWorkers asks the next word-kernel final pass to split its
	// rounds across this many goroutines (runWordKernel). Like the
	// prefix fields it is per-call plumbing, set and cleared around the
	// pass by diagnoseInto.
	finalWorkers int

	// pnext / pnbuf are the per-worker next-frontier and
	// neighbour-generation buffers of parallel word-kernel rounds,
	// grown on demand and reused across rounds and calls.
	pnext [][]int32
	pnbuf [][]int32
}

// NewScratch returns a Scratch for graphs on n nodes. The mask and
// fault-set buffers are allocated lazily, so a scratch used only for
// SetBuilderInto never pays for them.
func NewScratch(n int) *Scratch {
	sc := &Scratch{}
	sc.init(n)
	return sc
}

func (sc *Scratch) init(n int) {
	sc.n = n
	sc.u = bitset.New(n)
	sc.contributors = bitset.New(n)
	sc.parent = make([]int32, n)
	for i := range sc.parent {
		sc.parent[i] = -1
	}
	sc.frontier = sc.frontier[:0]
	sc.next = sc.next[:0]
	sc.added = bitset.New(n)
	sc.mask = nil
	sc.fset = nil
	sc.prev = nil
	sc.ns = sc.ns[:0]
	sc.nbuf = sc.nbuf[:0]
	sc.faults = nil
}

// ensure makes the scratch usable for a graph on n nodes, reallocating
// only on a capacity change.
func (sc *Scratch) ensure(n int) {
	if sc.n != n {
		sc.init(n)
	}
}

// resetTree clears the previous Set_Builder state: Parent entries are
// reset member-wise from the old U when it is sparse (only nodes that
// joined U ever get a parent), or with one straight fill when U is
// dense — after a successful diagnosis U holds nearly every node, and
// the bit-extraction bookkeeping costs several times the fill itself.
func (sc *Scratch) resetTree() {
	if sc.u.Count() >= sc.n/4 {
		for i := range sc.parent {
			sc.parent[i] = -1
		}
	} else {
		for wi, w := range sc.u.Words() {
			for w != 0 {
				sc.parent[wi<<6+bits.TrailingZeros64(w)] = -1
				w &= w - 1
			}
		}
	}
	sc.u.Clear()
	sc.contributors.Clear()
	// added self-drains every round and fset is cleared member-wise after
	// every inverted round; clear both defensively in case an earlier run
	// aborted mid-round (e.g. a panicking syndrome).
	sc.added.Clear()
	if sc.fset != nil {
		sc.fset.Clear()
	}
}

// workerBufs returns the per-worker next-frontier and neighbour
// buffers, grown to hold at least workers entries each.
func (sc *Scratch) workerBufs(workers int) (pnext, pnbuf [][]int32) {
	for len(sc.pnext) < workers {
		sc.pnext = append(sc.pnext, nil)
	}
	for len(sc.pnbuf) < workers {
		sc.pnbuf = append(sc.pnbuf, nil)
	}
	return sc.pnext, sc.pnbuf
}

// fsetBuf returns the reusable (empty) frontier-membership set.
func (sc *Scratch) fsetBuf() *bitset.Set {
	if sc.fset == nil {
		sc.fset = bitset.New(sc.n)
	}
	return sc.fset
}

// prevBuf returns the reusable round-start U snapshot buffer.
func (sc *Scratch) prevBuf() []uint64 {
	if sc.prev == nil {
		sc.prev = make([]uint64, (sc.n+63)/64)
	}
	return sc.prev
}

// maskBuf returns the reusable (empty) part mask.
func (sc *Scratch) maskBuf() *bitset.Set {
	if sc.mask == nil {
		sc.mask = bitset.New(sc.n)
	}
	return sc.mask
}

// faultsBuf returns the reusable output fault set.
func (sc *Scratch) faultsBuf() *bitset.Set {
	if sc.faults == nil {
		sc.faults = bitset.New(sc.n)
	}
	return sc.faults
}

// ScratchFootprintBytes estimates the resident size of one fully
// populated Scratch for graphs on n nodes: the dense per-node arrays
// every diagnosis touches — the parent tree (4 bytes/node), the two
// frontier buffers (worst case 4 bytes/node each), and the seven
// word-granular sets and snapshots (U, Contributors, added, part mask,
// frontier membership, round-start U snapshot, output fault set — one
// bit/node each). Engines keep one scratch per serving worker in their
// pool, so a deployment's scratch budget is this figure times the pool
// size; cmd/topoinfo prints it next to the adjacency memory models
// (ROADMAP: dense scratch is fine at Q20, revisit at Q24).
func ScratchFootprintBytes(n int) int64 {
	words := int64((n + 63) / 64)
	return 3*4*int64(n) + 7*8*words
}

// scratchPool recycles Scratches across Diagnose calls so steady-state
// diagnosis on a fixed-size graph allocates nothing per call beyond the
// caller-owned copies of its results.
var scratchPool sync.Pool

func getScratch(n int) *Scratch {
	if v := scratchPool.Get(); v != nil {
		sc := v.(*Scratch)
		sc.ensure(n)
		return sc
	}
	return NewScratch(n)
}

func putScratch(sc *Scratch) { scratchPool.Put(sc) }
