package core

import "testing"

// TestCacheStatsHitRateZeroSafe pins the division-by-zero audit: an
// empty cache's derived hit rate is 0, not NaN, so exporters can
// publish it unconditionally.
func TestCacheStatsHitRateZeroSafe(t *testing.T) {
	var zero CacheStats
	if got := zero.HitRate(); got != 0 {
		t.Fatalf("zero CacheStats HitRate = %v, want 0", got)
	}
	if got := (CacheStats{Hits: 3, Misses: 1}).HitRate(); got != 0.75 {
		t.Fatalf("HitRate(3 hits, 1 miss) = %v, want 0.75", got)
	}
	c := NewResultCache(4)
	if got := c.Stats().HitRate(); got != 0 {
		t.Fatalf("fresh cache HitRate = %v, want 0", got)
	}
}
