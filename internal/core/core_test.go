package core

import (
	"errors"
	"math/rand"
	"testing"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

var (
	q7  = topology.NewHypercube(7)
	q6  = topology.NewHypercube(6)
	st6 = topology.NewStar(6)
)

func behaviors() []syndrome.Behavior { return syndrome.AllBehaviors(0xC0FFEE) }

func TestSetBuilderHealthySeedGrowsHealthyComponent(t *testing.T) {
	g := q7.Graph()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		F := syndrome.RandomFaults(g.N(), rng.Intn(8), rng)
		for _, b := range behaviors() {
			s := syndrome.NewLazy(F, b)
			// Choose a healthy seed.
			seed := int32(-1)
			for u := 0; u < g.N(); u++ {
				if !F.Contains(u) {
					seed = int32(u)
					break
				}
			}
			r := SetBuilder(g, s, seed, q7.Diagnosability(), nil)
			if r.U.Intersects(F) {
				t.Fatalf("behaviour %s: healthy seed grew a faulty node (F=%v, U=%v)", b.Name(), F, r.U)
			}
			// U must equal the healthy component of the seed in G - F.
			healthy := bitset.New(g.N())
			for u := 0; u < g.N(); u++ {
				if !F.Contains(u) {
					healthy.Add(u)
				}
			}
			dist := g.BFSFrom(seed, healthy)
			want := bitset.New(g.N())
			for u := 0; u < g.N(); u++ {
				if dist[u] >= 0 {
					want.Add(u)
				}
			}
			// The root needs at least one healthy pair to start; with a
			// healthy component of Q7 and ≤ 7 faults this always holds
			// unless the component is a single node.
			if want.Count() > 2 && !r.U.Equal(want) {
				t.Fatalf("behaviour %s: U=%v want healthy component %v (F=%v)", b.Name(), r.U, want, F)
			}
		}
	}
}

func TestSetBuilderTreeInvariants(t *testing.T) {
	g := q7.Graph()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		F := syndrome.RandomFaults(g.N(), rng.Intn(8), rng)
		s := syndrome.NewLazy(F, syndrome.Random{Seed: uint64(trial)})
		seed := int32(rng.Intn(g.N()))
		r := SetBuilder(g, s, seed, q7.Diagnosability(), nil)
		if !r.U.Contains(int(seed)) {
			t.Fatal("seed not in U")
		}
		if r.Parent[seed] != -1 {
			t.Fatal("root has a parent")
		}
		r.U.ForEach(func(i int) bool {
			if int32(i) == seed {
				return true
			}
			p := r.Parent[i]
			if p < 0 || !r.U.Contains(int(p)) {
				t.Fatalf("node %d has parent %d outside U", i, p)
			}
			if !g.HasEdge(int32(i), p) {
				t.Fatalf("tree edge %d-%d not a graph edge", i, p)
			}
			if !r.Contributors.Contains(int(p)) {
				t.Fatalf("parent %d of %d not recorded as contributor", p, i)
			}
			return true
		})
		// Contributors are internal tree nodes; all must be in U.
		if !r.Contributors.IsSubsetOf(r.U) {
			t.Fatal("contributor outside U")
		}
	}
}

func TestSetBuilderRoundsBoundWhenNotAllHealthy(t *testing.T) {
	// The paper: if Set_Builder terminates with all_healthy false then
	// r ≤ δ+1, because contributor sets per level are disjoint and
	// non-empty.
	g := q7.Graph()
	delta := q7.Diagnosability()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		F := syndrome.RandomFaults(g.N(), delta, rng)
		s := syndrome.NewLazy(F, syndrome.AllOne{})
		r := SetBuilder(g, s, int32(rng.Intn(g.N())), delta, nil)
		if !r.AllHealthy && r.Rounds > delta+1 {
			t.Fatalf("rounds %d > δ+1 = %d without AllHealthy", r.Rounds, delta+1)
		}
	}
}

func TestSetBuilderAllHealthySoundness(t *testing.T) {
	// Whenever the contributor certificate fires, U must be disjoint
	// from the true fault set — under every behaviour.
	g := q7.Graph()
	delta := q7.Diagnosability()
	rng := rand.New(rand.NewSource(17))
	fired := 0
	for trial := 0; trial < 100; trial++ {
		F := syndrome.RandomFaults(g.N(), rng.Intn(delta+1), rng)
		for _, b := range behaviors() {
			s := syndrome.NewLazy(F, b)
			r := SetBuilder(g, s, int32(rng.Intn(g.N())), delta, nil)
			if r.AllHealthy {
				fired++
				if r.U.Intersects(F) {
					t.Fatalf("behaviour %s: AllHealthy certificate lied (F=%v ∩ U≠∅)", b.Name(), F)
				}
			}
		}
	}
	if fired == 0 {
		t.Fatal("certificate never fired across 500 runs; test is vacuous")
	}
}

func TestSetBuilderRestrictedStaysInside(t *testing.T) {
	g := q7.Graph()
	mask := bitset.New(g.N())
	for i := 0; i < 16; i++ { // the subcube Q4 with high bits 000
		mask.Add(i)
	}
	s := syndrome.NewLazy(bitset.New(g.N()), nil)
	r := SetBuilder(g, s, 0, q7.Diagnosability(), mask)
	if !r.U.IsSubsetOf(mask) {
		t.Fatalf("restricted growth escaped the mask: %v", r.U)
	}
	if r.U.Count() != 16 {
		t.Fatalf("fault-free restricted growth should cover the subcube, got %d", r.U.Count())
	}
}

func TestSetBuilderLookupBound(t *testing.T) {
	// Section 6: at most (Δ-1)(Δ/2 + |U_r| - 1) look-ups.
	g := q7.Graph()
	delta := q7.Diagnosability()
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		F := syndrome.RandomFaults(g.N(), rng.Intn(delta+1), rng)
		s := syndrome.NewLazy(F, syndrome.Random{Seed: uint64(trial)})
		r := SetBuilder(g, s, int32(rng.Intn(g.N())), delta, nil)
		d := float64(g.MaxDegree())
		bound := (d - 1) * (d/2 + float64(r.U.Count()) - 1)
		if float64(r.Lookups) > bound+0.5 {
			t.Fatalf("lookups %d exceed paper bound %.1f (|U|=%d)", r.Lookups, bound, r.U.Count())
		}
	}
}

func TestCertifyPartFaultFreeAlwaysPasses(t *testing.T) {
	g := q7.Graph()
	parts, err := q7.Parts(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Faults entirely in part 1; part 0 must certify under every
	// behaviour.
	F := bitset.FromMembers(g.N(), parts[1].Nodes[:3])
	for _, b := range behaviors() {
		s := syndrome.NewLazy(F, b)
		mask := bitset.FromMembers(g.N(), parts[0].Nodes)
		if !CertifyPart(g, s, parts[0].Nodes, mask) {
			t.Fatalf("behaviour %s: fault-free part rejected", b.Name())
		}
	}
}

func TestCertifyPartMixedAlwaysFails(t *testing.T) {
	g := q7.Graph()
	parts, _ := q7.Parts(8, 8)
	// One fault inside part 0 (not more than δ in total, part has 8 > δ? — δ=7,
	// part size 8 > 7 ✓, so soundness applies).
	F := bitset.FromMembers(g.N(), parts[0].Nodes[2:3])
	for _, b := range behaviors() {
		s := syndrome.NewLazy(F, b)
		mask := bitset.FromMembers(g.N(), parts[0].Nodes)
		if CertifyPart(g, s, parts[0].Nodes, mask) {
			t.Fatalf("behaviour %s: mixed part certified", b.Name())
		}
	}
}

func TestCertifyPartAllFaultyCaveat(t *testing.T) {
	// Documented limit: an ALL-faulty part with all-zero liars passes
	// the scan — which is why Theorem 1 requires |P| > δ. This test
	// pins the caveat so nobody "fixes" the certificate silently.
	g := q6.Graph()
	parts, _ := q6.Parts(7, 7)
	F := bitset.FromMembers(g.N(), parts[0].Nodes) // 8 faults — beyond δ=6
	s := syndrome.NewLazy(F, syndrome.AllZero{})
	mask := bitset.FromMembers(g.N(), parts[0].Nodes)
	if !CertifyPart(g, s, parts[0].Nodes, mask) {
		t.Fatal("all-faulty all-zero part should (vacuously) pass the scan")
	}
}

// diagnosisInstances returns moderate instances of every family for
// end-to-end diagnosis tests.
func diagnosisInstances() []topology.Network {
	return []topology.Network{
		q7,
		topology.NewCrossedCube(7),
		topology.NewTwistedCube(7),
		topology.NewFoldedHypercube(7),
		topology.NewEnhancedHypercube(7, 3),
		topology.NewAugmentedCube(8),
		topology.NewShuffleCube(6),
		topology.NewTwistedNCube(7),
		topology.NewKAryNCube(3, 4),
		topology.NewKAryNCube(4, 3),
		topology.NewAugmentedKAryNCube(7, 2),
		st6,
		topology.NewNKStar(6, 3),
		topology.NewPancake(6),
		topology.NewArrangement(6, 4),
		topology.NewArrangement(7, 3),
	}
}

func TestDiagnoseExactAcrossFamiliesAndBehaviours(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, nw := range diagnosisInstances() {
		nw := nw
		t.Run(nw.Name(), func(t *testing.T) {
			g := nw.Graph()
			delta := nw.Diagnosability()
			for trial := 0; trial < 6; trial++ {
				size := rng.Intn(delta + 1)
				F := syndrome.RandomFaults(g.N(), size, rng)
				for _, b := range behaviors() {
					s := syndrome.NewLazy(F, b)
					got, stats, err := Diagnose(nw, s)
					if err != nil {
						t.Fatalf("behaviour %s |F|=%d: %v", b.Name(), size, err)
					}
					if !got.Equal(F) {
						t.Fatalf("behaviour %s: diagnosed %v, want %v", b.Name(), got, F)
					}
					if stats.FaultCount != size {
						t.Fatalf("stats fault count %d, want %d", stats.FaultCount, size)
					}
				}
			}
		})
	}
}

func TestDiagnoseMaximumFaultLoad(t *testing.T) {
	// Exactly δ faults, including the extremal neighbourhood
	// configuration, under the nastiest adversary (mimic).
	for _, nw := range diagnosisInstances() {
		nw := nw
		t.Run(nw.Name(), func(t *testing.T) {
			g := nw.Graph()
			delta := nw.Diagnosability()
			rng := rand.New(rand.NewSource(5))
			cases := []*bitset.Set{
				syndrome.RandomFaults(g.N(), delta, rng),
				syndrome.NeighborhoodFaults(g, int32(g.N()/2), delta),
				syndrome.ClusterFaults(g, 0, delta),
			}
			for ci, F := range cases {
				s := syndrome.NewLazy(F, syndrome.Mimic{})
				got, _, err := Diagnose(nw, s)
				if err != nil {
					t.Fatalf("case %d: %v", ci, err)
				}
				if !got.Equal(F) {
					t.Fatalf("case %d: diagnosed %v, want %v", ci, got, F)
				}
			}
		})
	}
}

func TestDiagnoseNoFaults(t *testing.T) {
	for _, nw := range []topology.Network{q7, st6} {
		s := syndrome.NewLazy(bitset.New(nw.Graph().N()), nil)
		got, stats, err := Diagnose(nw, s)
		if err != nil {
			t.Fatal(err)
		}
		if got.Count() != 0 {
			t.Fatalf("phantom faults: %v", got)
		}
		if stats.HealthyCount != nw.Graph().N() {
			t.Fatalf("healthy set %d of %d", stats.HealthyCount, nw.Graph().N())
		}
	}
}

func TestDiagnoseParallelMatchesSequential(t *testing.T) {
	setGOMAXPROCS(t, 4)
	rng := rand.New(rand.NewSource(41))
	g := q7.Graph()
	for trial := 0; trial < 10; trial++ {
		F := syndrome.RandomFaults(g.N(), rng.Intn(8), rng)
		s := syndrome.NewLazy(F, syndrome.Random{Seed: uint64(trial)})
		seqF, seqStats, err := DiagnoseOpts(q7, s, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		parF, parStats, err := DiagnoseOpts(q7, s, Options{Workers: -1})
		if err != nil {
			t.Fatal(err)
		}
		if !seqF.Equal(parF) {
			t.Fatalf("parallel result differs: %v vs %v", parF, seqF)
		}
		if seqStats.CertifiedPart != parStats.CertifiedPart {
			t.Fatalf("certified part differs: %d vs %d", parStats.CertifiedPart, seqStats.CertifiedPart)
		}
	}
}

func TestDiagnosePaperStrategyNeedsBiggerParts(t *testing.T) {
	// Gap G1: with the paper's prescribed part size (> δ), the
	// contributor certificate cannot fire on Q7 (subcube BFS trees have
	// ≤ 4 internal nodes); with parts of ≥ 2δ+2 nodes it succeeds.
	g := q7.Graph()
	delta := q7.Diagnosability()
	F := syndrome.RandomFaults(g.N(), delta, rand.New(rand.NewSource(2)))
	s := syndrome.NewLazy(F, syndrome.Mimic{})

	_, _, err := DiagnoseOpts(q7, s, Options{Strategy: StrategyPaper})
	if !errors.Is(err, ErrNoHealthyPart) {
		t.Fatalf("expected ErrNoHealthyPart at paper part sizes, got %v", err)
	}

	bigParts, err := q7.Parts(2*delta+2, delta+1)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DiagnoseOpts(q7, s, Options{Strategy: StrategyPaper, Parts: bigParts})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(F) {
		t.Fatalf("paper strategy with big parts: %v, want %v", got, F)
	}
}

func TestDiagnoseDetectsFaultOverload(t *testing.T) {
	// One fault planted in each candidate part defeats every
	// certificate, and the library must report that rather than guess.
	parts, err := q7.Parts(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	g := q7.Graph()
	F := bitset.New(g.N())
	for _, p := range parts {
		F.Add(int(p.Nodes[0]))
	}
	if F.Count() <= q7.Diagnosability() {
		t.Fatal("test setup: need more than δ faults")
	}
	s := syndrome.NewLazy(F, syndrome.Mimic{})
	_, _, err = Diagnose(q7, s)
	if !errors.Is(err, ErrNoHealthyPart) {
		t.Fatalf("expected ErrNoHealthyPart, got %v", err)
	}
}

func TestDiagnoseWithVerificationOnPartitionlessFamily(t *testing.T) {
	// S(6,2): N = 30 < (δ+1)² = 36, so Theorem 1's partition does not
	// exist (gap G3) — but the verification fallback still solves it.
	nk := topology.NewNKStar(6, 2)
	g := nk.Graph()
	delta := nk.Diagnosability()
	if _, err := nk.Parts(delta+1, delta+1); !errors.Is(err, topology.ErrNoPartition) {
		t.Fatalf("expected ErrNoPartition for S(6,2), got %v", err)
	}
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 5; trial++ {
		F := syndrome.RandomFaults(g.N(), rng.Intn(delta+1), rng)
		for _, b := range behaviors() {
			s := syndrome.NewLazy(F, b)
			got, err := DiagnoseWithVerification(g, delta, s)
			if err != nil {
				t.Fatalf("behaviour %s: %v", b.Name(), err)
			}
			if !got.Equal(F) {
				t.Fatalf("behaviour %s: got %v want %v", b.Name(), got, F)
			}
		}
	}
}

func TestDiagnoseGraphOnCustomGraphAndPartition(t *testing.T) {
	// The machinery is not tied to the built-in families: a 6x6 torus
	// (κ = 4 = δ) split into 6 column rings.
	k := topology.NewKAryNCube(6, 2)
	g := k.Graph()
	delta := 4
	parts, err := k.Parts(delta+1, delta+1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		F := syndrome.RandomFaults(g.N(), rng.Intn(delta+1), rng)
		s := syndrome.NewLazy(F, syndrome.Random{Seed: uint64(trial)})
		got, _, err := DiagnoseGraph(g, delta, parts, s, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(F) {
			t.Fatalf("got %v want %v", got, F)
		}
	}
}

func TestStatsLookupAccounting(t *testing.T) {
	g := q7.Graph()
	F := syndrome.RandomFaults(g.N(), 5, rand.New(rand.NewSource(1)))
	s := syndrome.NewLazy(F, syndrome.Mimic{})
	_, stats, err := Diagnose(q7, s)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalLookups != s.Lookups() {
		t.Fatalf("stats lookups %d, syndrome counted %d", stats.TotalLookups, s.Lookups())
	}
	if stats.CertLookups+stats.FinalLookups != stats.TotalLookups {
		t.Fatalf("lookup breakdown inconsistent: %d + %d != %d",
			stats.CertLookups, stats.FinalLookups, stats.TotalLookups)
	}
	// The whole point of the paper's Section 6: far fewer look-ups than
	// the full syndrome table.
	if stats.TotalLookups >= syndrome.TableSize(g) {
		t.Fatalf("consulted %d entries, full table has %d", stats.TotalLookups, syndrome.TableSize(g))
	}
}
