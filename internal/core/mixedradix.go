package core

import (
	"fmt"
	"math/bits"
	"sort"

	"comparisondiag/internal/graph"
)

// The mixed-radix binder generalises the additive-rotate kernel to any
// declared graph.MixedRadixCayley structure — per-dimension arities and
// arbitrary digit-vector generators, which is what the augmented k-ary
// n-cube's run edges ±(1,…,1,0,…,0) need (ROADMAP's "composed digit
// rotations"). It compiles the structure down to the very addStep
// schedule the torus kernel runs, so the word-parallel round machinery
// (funnel-shifted frontiers gated by digit-condition masks, see
// additive.go and runWordKernel) is reused unchanged.
//
// Compilation. A candidate v is adjacent to tester u = v ⊖ g (digit-wise
// subtraction, each digit modulo its own arity). Digit d of that
// subtraction borrows exactly when v_d < g_d, so fixing a borrow
// pattern B over g's non-zero digits fixes the id-space delta:
//
//	u = v - shift(g, B),  shift(g, B) = Σ_d (g_d - [d ∈ B]·K_d)·s_d
//
// where s_d is the stride of dimension d. One (g, B) pair therefore
// becomes one addStep whose condition mask selects precisely the ids
// realising the pattern: v_d < g_d for d ∈ B, v_d ≥ g_d otherwise. The
// per-(dimension, threshold) "digit < t" masks are materialised in one
// pass over the id space at bind time.
//
// Exactness. For one candidate v and one generator g exactly one borrow
// pattern applies (it is a function of v's digits), so the steps
// partition v's testers: each neighbour appears in exactly one step
// whose condition v satisfies. Distinct generators reach distinct
// neighbours (they are distinct group elements), and a neighbour's id
// determines its step's shift, so running the steps in descending shift
// order visits every candidate's testers in strictly ascending node
// order — the reference pass's exact prefix discipline (see
// runWordKernel for why that makes output and look-up count
// bit-identical). Mixed-radix number systems make the shift injective:
// Σ c_d·s_d with |c_d| < K_d vanishes only for c = 0, so a step's shift
// is zero or duplicated only for dead (empty-condition) steps, which
// are dropped.

// mixedRadixMaxSteps caps the compiled schedule: a generator with b
// non-zero digits expands into 2^b borrow patterns, and a pathological
// descriptor (many long generators) would turn every round into a full
// sweep of thousands of masks. Beyond the cap the binder declines and
// the engine serves the generic kernel — a throughput choice, never a
// correctness one.
const mixedRadixMaxSteps = 4096

// bindMixedRadixKernel binds the compiled schedule to a graph declared
// (and verified) to be a mixed-radix Cayley graph. Floor: ≥ 64 nodes,
// like every word kernel.
func bindMixedRadixKernel(desc graph.CayleyDescriptor, a graph.Adjacencer) finalKernel {
	mr, ok := desc.(graph.MixedRadixCayley)
	if !ok {
		return nil
	}
	n := a.N()
	dims := len(mr.Radices)
	if n < 64 || dims < 1 || len(mr.Gens) == 0 || mr.Order() != n {
		return nil
	}
	total := 0
	for _, gen := range mr.Gens {
		if len(gen) != dims {
			return nil
		}
		nz := 0
		for d, q := range gen {
			if q < 0 || q >= mr.Radices[d] {
				return nil
			}
			if q != 0 {
				nz++
			}
		}
		if nz == 0 || nz > 16 {
			return nil
		}
		total += 1 << nz
		if total > mixedRadixMaxSteps {
			return nil
		}
	}
	words := (n + 63) / 64

	stride := make([]int, dims)
	s := 1
	for d, k := range mr.Radices {
		stride[d] = s
		s *= k
	}

	// Collect the thresholds each dimension is compared against, then
	// materialise every "digit_d(v) < t" mask in one pass over the ids.
	ltMask := make([]map[int][]uint64, dims)
	for d := range ltMask {
		ltMask[d] = make(map[int][]uint64)
	}
	for _, gen := range mr.Gens {
		for d, q := range gen {
			if q != 0 && ltMask[d][q] == nil {
				ltMask[d][q] = make([]uint64, words)
			}
		}
	}
	for v := 0; v < n; v++ {
		x := v
		bit := uint64(1) << (uint(v) & 63)
		wi := v >> 6
		for d, k := range mr.Radices {
			digit := x % k
			for t, mask := range ltMask[d] {
				if digit < t {
					mask[wi] |= bit
				}
			}
			x /= k
		}
	}
	valid := make([]uint64, words)
	for wi := range valid {
		valid[wi] = ^uint64(0)
	}
	if n&63 != 0 {
		valid[words-1] = 1<<(uint(n)&63) - 1
	}

	steps := make([]addStep, 0, total)
	for _, gen := range mr.Gens {
		var nz []int
		for d, q := range gen {
			if q != 0 {
				nz = append(nz, d)
			}
		}
		for pat := 0; pat < 1<<len(nz); pat++ {
			shift := 0
			cond := make([]uint64, words)
			copy(cond, valid)
			for j, d := range nz {
				q := gen[d]
				lt := ltMask[d][q]
				if pat>>j&1 == 1 {
					// Digit d borrows: v_d < g_d.
					shift += (q - mr.Radices[d]) * stride[d]
					for wi := range cond {
						cond[wi] &= lt[wi]
					}
				} else {
					shift += q * stride[d]
					for wi := range cond {
						cond[wi] &^= lt[wi]
					}
				}
			}
			live := false
			for _, w := range cond {
				if w != 0 {
					live = true
					break
				}
			}
			if live {
				steps = append(steps, addStep{shift: shift, cond: cond})
			}
		}
	}
	// Descending shift = ascending tester id per candidate (see the
	// file comment); stable to keep binding deterministic.
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].shift > steps[j].shift })

	// Schedule pruner. First merge adjacent equal-shift steps: their
	// conditions are disjoint — for one generator, exactly one borrow
	// pattern fits a candidate; across generators, a candidate v
	// satisfying two equal-shift conditions would make the one tester
	// v - shift the digit-wise difference by both generators, forcing
	// them equal — so OR-ing the conditions preserves the candidate set
	// and, shifts being equal, the tester order, while one funnel pass
	// serves what were several. Equal shifts are common: the balanced
	// digit coefficients g_d - [borrow]·K_d are not a unique
	// representation (e.g. 2·1 = -1·1 + 1·3 in radix 3), and the
	// augmented cubes' run generators collide with their unit
	// generators' wraps, merging ~25% of AQ(6,3)'s raw schedule.
	merged := 0
	out := steps[:0]
	for _, st := range steps {
		if len(out) > 0 && out[len(out)-1].shift == st.shift {
			prev := &out[len(out)-1]
			for wi := range prev.cond {
				prev.cond[wi] |= st.cond[wi]
			}
			merged++
			continue
		}
		out = append(out, st)
	}
	steps = out

	// Then prune by condition density: a step whose candidates are few
	// but scattered across many words pays a funnel shift per live word
	// to test almost nothing. Such steps switch to an explicit ascending
	// candidate list probed one id at a time (see addStep.ids); the
	// enumeration order per step is unchanged, so the look-up trace is
	// bit-identical either way.
	listed := 0
	cost := 0
	for si := range steps {
		st := &steps[si]
		st.words = st.words[:0]
		pc := 0
		for wi, w := range st.cond {
			if w != 0 {
				st.words = append(st.words, int32(wi))
				pc += bits.OnesCount64(w)
			}
		}
		if 2*pc <= 3*len(st.words) {
			ids := make([]int32, 0, pc)
			for _, wi := range st.words {
				for w := st.cond[wi]; w != 0; w &= w - 1 {
					ids = append(ids, wi<<6+int32(bits.TrailingZeros64(w)))
				}
			}
			st.ids = ids
			st.cond, st.words = nil, nil
			cost += pc
			listed++
		} else {
			cost += len(st.words)
		}
	}
	return &additiveKernel{
		name: fmt.Sprintf("additive-rotate[mixed-radix,steps=%d,merged=%d,listed=%d]",
			len(steps), merged, listed),
		steps:     steps,
		threshold: mixedRadixThreshold(cost, len(steps), a),
	}
}

// mixedRadixThreshold is the word-round crossover for compiled
// mixed-radix schedules. It differs from the shared sweepThresholdFor
// in two calibrated ways: a compiled schedule runs hundreds of steps
// per round (the torus kernel runs 4·dims), so the per-step loop
// overhead joins the per-word visit cost; and the dense, small-diameter
// graphs this kernel serves make a sweep probe cheaper than the
// generic model's estimate, pushing the crossover further up. Both
// corrections only move the round-path choice — every path is
// result- and look-up-identical (see runWordKernel), so a miscalibrated
// threshold costs nanoseconds, never answers.
func mixedRadixThreshold(cost, steps int, a graph.Adjacencer) int {
	words := (a.N() + 63) / 64
	deg := a.MaxDegree()
	if deg == 0 {
		return words
	}
	t := (5*cost + 40*steps) / (2 * deg)
	if t < words {
		t = words
	}
	return t
}
