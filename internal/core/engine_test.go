package core

import (
	"math/rand"
	"sync"
	"testing"

	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// engineNetworks is the equivalence-test matrix: hypercubes exercise
// the word-parallel XOR-Cayley kernel (Q12 crosses its per-round
// threshold many rounds in a row), the folded hypercube its multi-bit
// complement mask, and the star and k-ary cube the generic adaptive
// kernel (their adjacency is not XOR-structured).
func engineNetworks() []topology.Network {
	return []topology.Network{
		topology.NewHypercube(8),
		topology.NewHypercube(12),
		topology.NewFoldedHypercube(8),
		topology.NewStar(6),
		topology.NewKAryNCube(4, 3),
	}
}

// TestEngineMatchesFreeFunctions pins the engine's core contract: for
// the same syndrome, Engine.Diagnose and the free DiagnoseOpts produce
// identical fault sets, identical Stats (including every look-up
// counter) and leave the syndrome with identical Lookups totals — the
// specialised final pass must be observationally equivalent to the
// reference loop.
func TestEngineMatchesFreeFunctions(t *testing.T) {
	for _, nw := range engineNetworks() {
		eng := NewEngine(nw)
		delta := nw.Diagnosability()
		for trial := int64(0); trial < 6; trial++ {
			F := syndrome.RandomFaults(nw.Graph().N(), delta, rand.New(rand.NewSource(trial)))

			s1 := syndrome.NewLazy(F, syndrome.Mimic{})
			f1, st1, err1 := DiagnoseOpts(nw, s1, Options{})

			s2 := syndrome.NewLazy(F, syndrome.Mimic{})
			f2, st2, err2 := eng.Diagnose(s2)

			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%s trial %d: error mismatch: %v vs %v", nw.Name(), trial, err1, err2)
			}
			if err1 != nil {
				continue
			}
			if !f1.Equal(f2) {
				t.Fatalf("%s trial %d: fault sets differ: %v vs %v", nw.Name(), trial, f1, f2)
			}
			if *st1 != *st2 {
				t.Fatalf("%s trial %d: stats differ:\nfree   %+v\nengine %+v", nw.Name(), trial, st1, st2)
			}
			if s1.Lookups() != s2.Lookups() {
				t.Fatalf("%s trial %d: lookups differ: %d vs %d", nw.Name(), trial, s1.Lookups(), s2.Lookups())
			}
		}
	}
}

// TestEngineEquivalenceBeyondGuarantee extends the equivalence to the
// campaign regime past δ, where certified parts can be wrong and the
// final pass can run from a faulty seed with faulty testers: the
// specialised kernel must still mirror the reference loop exactly,
// error-for-error and look-up-for-look-up, under every adversary.
func TestEngineEquivalenceBeyondGuarantee(t *testing.T) {
	nw := topology.NewHypercube(8)
	eng := NewEngine(nw)
	delta := nw.Diagnosability()
	for _, b := range syndrome.AllBehaviors(99) {
		for f := delta; f <= delta+4; f++ {
			for trial := int64(0); trial < 4; trial++ {
				F := syndrome.RandomFaults(nw.Graph().N(), f, rand.New(rand.NewSource(1000+trial)))
				s1 := syndrome.NewLazy(F, b)
				f1, st1, err1 := DiagnoseOpts(nw, s1, Options{})
				s2 := syndrome.NewLazy(F, b)
				f2, st2, err2 := eng.Diagnose(s2)

				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("%s f=%d trial %d: error mismatch: %v vs %v", b.Name(), f, trial, err1, err2)
				}
				if s1.Lookups() != s2.Lookups() {
					t.Fatalf("%s f=%d trial %d: lookups differ: %d vs %d", b.Name(), f, trial, s1.Lookups(), s2.Lookups())
				}
				if err1 != nil {
					continue
				}
				if !f1.Equal(f2) {
					t.Fatalf("%s f=%d trial %d: fault sets differ", b.Name(), f, trial)
				}
				if *st1 != *st2 {
					t.Fatalf("%s f=%d trial %d: stats differ:\nfree   %+v\nengine %+v", b.Name(), f, trial, st1, st2)
				}
			}
		}
	}
}

// TestEngineDiagnoseWarmZeroAllocs pins the tentpole's allocation
// contract: a warm Engine.Diagnose with a bound scratch — no
// caller-supplied Parts needed, unlike the free-function path — runs at
// zero allocations per op.
func TestEngineDiagnoseWarmZeroAllocs(t *testing.T) {
	nw := topology.NewHypercube(10)
	eng := NewEngine(nw)
	F := syndrome.RandomFaults(nw.Graph().N(), nw.Diagnosability(), rand.New(rand.NewSource(2)))
	s := syndrome.NewLazy(F, syndrome.Mimic{})
	sc := eng.AcquireScratch()
	defer eng.ReleaseScratch(sc)
	opt := Options{Scratch: sc}
	// Warm run (grows frontier buffers, allocates the lazy fset).
	if _, _, err := eng.DiagnoseOpts(s, opt); err != nil {
		t.Fatal(err)
	}

	allocs := testing.AllocsPerRun(20, func() {
		got, _, err := eng.DiagnoseOpts(s, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(F) {
			t.Fatal("misdiagnosis")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Engine.Diagnose with bound scratch allocated %.1f objects/op, want 0", allocs)
	}
}

// TestDiagnoseBatchMatchesSequentialLoop is the batch-equivalence
// regression: DiagnoseBatch and a sequential Diagnose loop must produce
// identical fault sets and identical TotalLookups for every syndrome,
// and results[i] must correspond to syndromes[i].
func TestDiagnoseBatchMatchesSequentialLoop(t *testing.T) {
	nw := topology.NewHypercube(9)
	eng := NewEngine(nw)
	delta := nw.Diagnosability()
	const k = 24

	loopSyn := make([]*syndrome.Lazy, k)
	batchSyn := make([]syndrome.Syndrome, k)
	want := make([]BatchResult, k)
	for i := 0; i < k; i++ {
		// Mixed severities: some trials past δ so errors flow through too.
		f := delta + i%3 - 1
		F := syndrome.RandomFaults(nw.Graph().N(), f, rand.New(rand.NewSource(int64(i))))
		loopSyn[i] = syndrome.NewLazy(F, syndrome.Mimic{})
		batchSyn[i] = syndrome.NewLazy(F, syndrome.Mimic{})
		got, st, err := Diagnose(nw, loopSyn[i])
		want[i] = BatchResult{Faults: got, Err: err}
		if st != nil {
			want[i].Stats = *st
		}
	}

	for _, workers := range []int{1, 4} {
		results := eng.DiagnoseBatch(batchSyn, BatchOptions{Workers: workers})
		if len(results) != k {
			t.Fatalf("workers=%d: %d results for %d syndromes", workers, len(results), k)
		}
		for i, r := range results {
			if (r.Err == nil) != (want[i].Err == nil) {
				t.Fatalf("workers=%d syndrome %d: error mismatch: %v vs %v", workers, i, r.Err, want[i].Err)
			}
			if r.Err != nil {
				continue
			}
			if !r.Faults.Equal(want[i].Faults) {
				t.Fatalf("workers=%d syndrome %d: fault sets differ", workers, i)
			}
			if r.Stats.TotalLookups != want[i].Stats.TotalLookups {
				t.Fatalf("workers=%d syndrome %d: TotalLookups %d (batch) vs %d (loop)",
					workers, i, r.Stats.TotalLookups, want[i].Stats.TotalLookups)
			}
			if r.Stats != want[i].Stats {
				t.Fatalf("workers=%d syndrome %d: stats differ:\nbatch %+v\nloop  %+v",
					workers, i, r.Stats, want[i].Stats)
			}
		}
	}
	// The batch drove each syndrome exactly once: its counter must agree
	// with the loop twin's.
	for i := range batchSyn {
		// Batch ran twice (workers 1 and 4), the loop once.
		if got, want := batchSyn[i].(*syndrome.Lazy).Lookups(), 2*loopSyn[i].Lookups(); got != want {
			t.Fatalf("syndrome %d: batch lookup counter %d, want %d", i, got, want)
		}
	}
}

// TestEngineFaultBound checks the tightened-partition cache: a bounded
// engine call matches the free function's bounded call exactly.
func TestEngineFaultBound(t *testing.T) {
	nw := topology.NewHypercube(10)
	eng := NewEngine(nw)
	for trial := int64(0); trial < 3; trial++ {
		F := syndrome.RandomFaults(nw.Graph().N(), 3, rand.New(rand.NewSource(trial)))
		s1 := syndrome.NewLazy(F, syndrome.Mimic{})
		f1, st1, err1 := DiagnoseOpts(nw, s1, Options{FaultBound: 3})
		s2 := syndrome.NewLazy(F, syndrome.Mimic{})
		f2, st2, err2 := eng.DiagnoseOpts(s2, Options{FaultBound: 3})
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: %v / %v", trial, err1, err2)
		}
		if !f1.Equal(f2) || *st1 != *st2 || s1.Lookups() != s2.Lookups() {
			t.Fatalf("trial %d: bounded engine diverged from free function", trial)
		}
	}

	// Infeasible tightened bounds must fail identically too: parts of
	// size 2 cannot have induced minimum degree 2, so FaultBound 1 has
	// no partition and both paths must say so rather than silently
	// substituting the δ partition.
	F := syndrome.RandomFaults(nw.Graph().N(), 1, rand.New(rand.NewSource(9)))
	_, _, errFree := DiagnoseOpts(nw, syndrome.NewLazy(F, syndrome.Mimic{}), Options{FaultBound: 1})
	_, _, errEng := eng.DiagnoseOpts(syndrome.NewLazy(F, syndrome.Mimic{}), Options{FaultBound: 1})
	if (errFree == nil) != (errEng == nil) {
		t.Fatalf("infeasible bound: error mismatch: free %v vs engine %v", errFree, errEng)
	}
}

// TestEnginePartsErr pins the gap-G3 contract: binding to a network
// with no Theorem 1 partition records the error once and every
// diagnosis returns it typed.
func TestEnginePartsErr(t *testing.T) {
	nk := topology.NewNKStar(6, 2) // N = 30 < (δ+1)²: no partition
	eng := NewEngine(nk)
	if eng.PartsErr() == nil {
		t.Fatal("expected a partition error for S(6,2)")
	}
	F := syndrome.RandomFaults(nk.Graph().N(), 2, rand.New(rand.NewSource(1)))
	_, _, err := eng.Diagnose(syndrome.NewLazy(F, syndrome.Mimic{}))
	if err == nil {
		t.Fatal("expected Diagnose to fail on a partition-less engine")
	}
}

// TestConcurrentDiagnoseBatchSharedEngine hammers one engine from
// several concurrent DiagnoseBatch calls, each with its own syndromes —
// the serving-path shape. Meaningful mainly under -race: the partition,
// the tightened-partition cache and the scratch pool are shared.
func TestConcurrentDiagnoseBatchSharedEngine(t *testing.T) {
	setGOMAXPROCS(t, 4)
	nw := topology.NewHypercube(8)
	eng := NewEngine(nw)
	delta := nw.Diagnosability()
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			// Alternate FaultBound to race the tightened-partition cache;
			// bounded calls get fault sets that respect the bound.
			opt := BatchOptions{Workers: 3}
			nFaults := delta
			if seed%2 == 1 {
				opt.Options.FaultBound = delta - 1
				nFaults = delta - 1
			}
			syns := make([]syndrome.Syndrome, 8)
			for i := range syns {
				F := syndrome.RandomFaults(nw.Graph().N(), nFaults, rand.New(rand.NewSource(seed*100+int64(i))))
				syns[i] = syndrome.NewLazy(F, syndrome.Mimic{})
			}
			for _, r := range eng.DiagnoseBatch(syns, opt) {
				if r.Err != nil {
					t.Error(r.Err)
					return
				}
				if r.Faults.Count() > delta {
					t.Error("fault set exceeds bound")
					return
				}
			}
		}(int64(c))
	}
	wg.Wait()
}
