package core

import "runtime"

// ClampWorkers normalises a caller-supplied worker count against the
// scheduler's actual parallelism: negative means "as many as the
// runtime will run" and any request above runtime.GOMAXPROCS(0) is
// clamped down to it — goroutines beyond that only add scheduling and
// coordination overhead, they can never run simultaneously. Zero passes
// through unchanged so call sites keep their own zero semantics
// ("sequential" for Options.Workers/FinalWorkers, "default pool" for
// batch and campaign drivers).
//
// Every concurrency knob in the repository funnels through here —
// parallel part certification, the parallel final pass, engine batch
// pools, the campaign runtime and the BSP simulator — so an untrusted
// or misconfigured worker count degrades to the hardware's parallelism
// instead of a thousand idle goroutines.
func ClampWorkers(n int) int {
	max := runtime.GOMAXPROCS(0)
	if n < 0 || n > max {
		return max
	}
	return n
}
