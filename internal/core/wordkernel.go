package core

import (
	"math/bits"
	"slices"
	"sync"

	"comparisondiag/internal/graph"
	"comparisondiag/internal/syndrome"
)

// wordRounder is the per-structure half of a word-parallel final-pass
// kernel: one growth round against the fixed round-start frontier
// bitset fw, admitting into uw/parent via l and returning the admission
// count. The driver (runWordKernel) owns everything else — the U_1 pair
// scan, the sorted-frontier gate, the small-round reference sweep, the
// round-start snapshot and next-frontier extraction, and the deferred
// contributor reconstruction — so a new structure family only has to
// supply its round permutation schedule.
//
// round contract: for every candidate v ∉ U with a neighbour in the
// frontier, test v by its frontier neighbours in ascending node order,
// stopping at the first 0 answer (admission: set v's bit in uw, record
// parent[v], count it). Admissions must be visible immediately, so a
// node admitted by one step is excluded as candidate from every later
// step of the same round — the reference pass's prefix-until-0
// suppression.
type wordRounder interface {
	Name() string
	round(fw, uw []uint64, parent []int32, l *syndrome.Lazy) int
	// sweepThreshold is the frontier size above which the kernel's
	// word-parallel round beats the reference sweep, fixed at bind time
	// (see sweepThresholdFor); smaller frontiers take the sweep.
	sweepThreshold() int
}

// rangedRounder is the multi-worker half of a wordRounder: one growth
// round restricted to the candidate words [lo, hi). Splitting a round
// at word granularity keeps even the look-up count bit-identical to
// the sequential kernel: every candidate v lives in exactly one word,
// so exactly one worker tests it; the frontier bitset fw and the
// parents of frontier testers are frozen for the round; and a
// same-round admission only ever suppresses later tests of the
// admitted node itself (its own uw word), which its owning worker
// observes exactly as the sequential round would. Word ownership is a
// fixed contiguous range for the whole round — an admission in one
// step must suppress the same candidate in every later step — and uw
// reads and writes stay inside the owned range, so workers share no
// mutable words (see runWordKernel).
type rangedRounder interface {
	wordRounder
	roundRange(fw, uw []uint64, parent []int32, sh *syndrome.Shard, lo, hi int) int
}

// sweepThresholdFor converts a kernel's fixed round cost (word visits
// weighted by per-word permute work) into the frontier size above which
// the word-parallel path wins. The sweep spends ~|frontier|·deg probes
// per round (CSR read + bitset test each); a word visit costs a couple
// probes' worth of ALU work, hence the factor. Degree ties the two:
// dense small graphs (augmented cubes: deg ≈ word count) cross over
// much later than big sparse ones, which is what the old flat
// words-count gate got wrong. The word floor stays: below one word per
// frontier node the permutes cannot pay for themselves.
func sweepThresholdFor(roundCost int, a graph.Adjacencer) int {
	words := (a.N() + 63) / 64
	deg := a.MaxDegree()
	if deg == 0 {
		return words
	}
	t := 2 * roundCost / deg
	if t < words {
		t = words
	}
	return t
}

// runWordKernel drives a word-parallel kernel to the same output and
// the same syndrome look-up count as the reference SetBuilder.
//
// Why the look-up count is identical: in the reference loop, a
// non-member v is tested by its frontier neighbours in ascending node
// order until one answers 0 (the frontier is sorted and each admission
// is visible immediately), so v's testers form exactly the prefix of
// its ascending frontier neighbours ending at the first 0 answer. The
// kernel's round consults literally that prefix for each v; only the
// interleaving across different v differs, which is unobservable for
// any deterministic syndrome.
func runWordKernel(sc *Scratch, a graph.Adjacencer, l *syndrome.Lazy, u0 int32, delta int, k wordRounder) *SetBuilderResult {
	sc.ensure(a.N())
	csr := graph.CSR(a)
	sc.resetTree()
	res := &sc.res
	*res = SetBuilderResult{U: sc.u, Parent: sc.parent, Contributors: sc.contributors}
	start := l.Lookups()

	var frontier, next []int32
	var uCount int
	if fp := sc.prefixRes; fp != nil {
		// Resume from the group's shared prefix (see finalPrefix): the
		// checkpoint was recorded at a round boundary, so the loaded
		// frontier is sorted and the loop continues exactly where the
		// representative's behaviour-independent rounds stopped. A
		// complete checkpoint stores an empty frontier, so the loop is
		// skipped and only the contributor reconstruction below runs.
		frontier = fp.loadInto(sc, res)
		next = sc.next[:0]
		uCount = fp.uCount
		res.Rounds = fp.rounds
	} else {
		res.U.Add(int(u0))
		rec := sc.prefixRec
		if rec != nil && !rec.begin(a, l.Faults(), u0) {
			rec = nil // even the pair scan is hazardous: no shareable prefix
			sc.prefixRec = nil
		}

		// Build U_1 exactly as the reference loop: u0 tests unordered pairs
		// of its neighbours; a 0 result certifies both participants at once.
		var adj []int32
		if csr != nil {
			adj = csr.Neighbors(u0)
		} else {
			sc.nbuf = a.AppendNeighbors(u0, sc.nbuf)
			adj = sc.nbuf
		}
		frontier = sc.frontier[:0]
		next = sc.next[:0]
		for i := 0; i < len(adj); i++ {
			for j := i + 1; j < len(adj); j++ {
				vi, vj := adj[i], adj[j]
				if res.U.Contains(int(vi)) && res.U.Contains(int(vj)) {
					continue
				}
				if l.Test(u0, vi, vj) == 0 {
					for _, v := range [2]int32{vi, vj} {
						if !res.U.Contains(int(v)) {
							res.U.Add(int(v))
							res.Parent[v] = u0
							frontier = append(frontier, v)
						}
					}
				}
			}
		}
		if len(frontier) > 0 {
			res.Rounds = 1
		}
		uCount = 1 + len(frontier)
	}

	n := a.N()
	added := sc.added
	var offs, tgts []int32
	if csr != nil {
		offs, tgts = csr.Adjacency()
	}
	uw := res.U.Words()
	parent := res.Parent
	fw := sc.fsetBuf().Words()
	pw := sc.prevBuf()
	// Word-parallel rounds test each candidate's frontier neighbours in
	// ascending order, which equals the reference's frontier-order sweep
	// only while the frontier is sorted. Round 2+ frontiers always are;
	// a faulty seed's arbitrary pair answers can scramble the U_1
	// frontier, and those rounds must take the order-preserving sweep.
	sorted := slices.IsSorted(frontier)
	threshold := k.sweepThreshold()
	// Parallel fan-out (Options.FinalWorkers, via sc.finalWorkers):
	// word-granular rounds split their candidate words across workers,
	// which keeps results AND look-up counts bit-identical to the
	// sequential kernel (see rangedRounder; the dense sweep defers
	// membership updates, so its candidate words are independent too).
	// Each worker counts look-ups on its own syndrome shard, merged
	// before the final count. diagnoseInto never combines this with a
	// shared-prefix record/resume (parallel members run in full).
	workers := sc.finalWorkers
	rk, ranged := k.(rangedRounder)
	if !ranged || workers < 2 {
		workers = 1
	}
	var shards []*syndrome.Shard
	var wadm []int
	if workers > 1 {
		shards = make([]*syndrome.Shard, workers)
		for i := range shards {
			shards[i] = l.Shard()
		}
		wadm = make([]int, workers)
	}
	// Contributor bookkeeping is deferred: the contributor set is
	// exactly the set of parents, reconstructed in one pass at the end,
	// and the AllHealthy threshold is monotone, so the final count
	// decides it — this drops a membership test from every admission.
	for len(frontier) > 0 {
		if rec := sc.prefixRec; rec != nil && rec.frontierHazardous(frontier) {
			// End of the behaviour-independent prefix: the next round
			// would consult a comparison involving a hypothesised-faulty
			// node (see finalPrefix).
			rec.snapshot(res, frontier, uCount, res.Rounds, l.Lookups()-start)
			sc.prefixRec = nil
		}
		admitted := 0
		if sorted && len(frontier) > threshold {
			copy(pw, uw)
			// Word-parallel round against the fixed round-start frontier.
			for _, u := range frontier {
				fw[u>>6] |= 1 << (uint(u) & 63)
			}
			if workers > 1 && len(frontier) >= parallelFrontierMin {
				admitted = parallelKernelRound(rk, fw, uw, parent, shards, wadm, workers)
			} else {
				admitted = k.round(fw, uw, parent, l)
			}
			for _, u := range frontier {
				fw[u>>6] &^= 1 << (uint(u) & 63)
			}
			if admitted == 0 {
				break
			}
			// The new frontier is the U delta against the round-start
			// snapshot, read out in ascending order — the sorted frontier
			// the reference Drain produces, without per-admission set
			// maintenance.
			next = next[:0]
			for wi, w := range uw {
				for d := w &^ pw[wi]; d != 0; d &= d - 1 {
					next = append(next, int32(wi<<6+bits.TrailingZeros64(d)))
				}
			}
		} else if sorted && len(frontier) > n-uCount {
			// Dense sweep round: few non-members remain, so walk V∖U and
			// probe each non-member's frontier neighbours in ascending
			// order until one vouches — the same test prefix, far fewer
			// probes (the adaptive direction of setBuilderLazyInto).
			for _, u := range frontier {
				fw[u>>6] |= 1 << (uint(u) & 63)
			}
			next = next[:0]
			if workers > 1 && n-uCount >= parallelFrontierMin {
				next, admitted = parallelComplementSweep(sc, a, offs, tgts, uw, fw, parent, shards, wadm, n, workers, next)
			} else {
				for wi, w := range uw {
					inv := ^w
					if wi == len(uw)-1 {
						if tail := n & 63; tail != 0 {
							inv &= 1<<uint(tail) - 1
						}
					}
					for inv != 0 {
						v := int32(wi<<6 + bits.TrailingZeros64(inv))
						inv &= inv - 1
						var nbrs []int32
						if csr != nil {
							nbrs = tgts[offs[v]:offs[v+1]]
						} else {
							sc.nbuf = a.AppendNeighbors(v, sc.nbuf)
							nbrs = sc.nbuf
						}
						for _, u := range nbrs {
							if fw[u>>6]&(1<<(uint(u)&63)) == 0 {
								continue
							}
							if l.Test(u, v, parent[u]) != 0 {
								continue
							}
							parent[v] = u
							next = append(next, v)
							admitted++
							break
						}
					}
				}
			}
			for _, u := range frontier {
				fw[u>>6] &^= 1 << (uint(u) & 63)
			}
			if admitted == 0 {
				break
			}
			// The complement walk visits v ascending, so next is already
			// the sorted frontier; membership is applied afterwards
			// (admitted nodes are not frontier members this round, so
			// deferral is unobservable — see setBuilderLazyInto).
			for _, v := range next {
				uw[v>>6] |= 1 << (uint(v) & 63)
			}
		} else {
			// Small (or unsorted) round: the devirtualised reference
			// sweep (as in setBuilderLazyInto) beats whole-bitset
			// permutes and is the only order-preserving option for a
			// scrambled U_1 frontier.
			for _, u := range frontier {
				tu := parent[u]
				var nbrs []int32
				if csr != nil {
					nbrs = tgts[offs[u]:offs[u+1]]
				} else {
					sc.nbuf = a.AppendNeighbors(u, sc.nbuf)
					nbrs = sc.nbuf
				}
				for _, v := range nbrs {
					if uw[v>>6]&(1<<(uint(v)&63)) != 0 {
						continue
					}
					if l.Test(u, v, tu) == 0 {
						uw[v>>6] |= 1 << (uint(v) & 63)
						parent[v] = u
						added.Add(int(v))
						admitted++
					}
				}
			}
			if admitted == 0 {
				break
			}
			next = added.Drain(next[:0])
			sorted = true
		}
		uCount += admitted
		frontier, next = next, frontier
		res.Rounds++
	}
	sc.frontier, sc.next = frontier, next

	// Reconstruct the contributor set: exactly the parents of admitted
	// nodes (a node was marked contributor when it admitted someone, and
	// every admission records its parent). AllHealthy is monotone in the
	// contributor count, so the final count decides it — identical to
	// the per-round checks of the reference pass.
	for wi, w := range uw {
		for ; w != 0; w &= w - 1 {
			if p := parent[wi<<6+bits.TrailingZeros64(w)]; p >= 0 {
				res.Contributors.Add(int(p))
			}
		}
	}
	res.AllHealthy = res.Contributors.Count() > delta
	for _, sh := range shards {
		sh.Close()
	}
	res.Lookups = l.Lookups() - start
	if rec := sc.prefixRec; rec != nil {
		// Clean to termination: the whole result is behaviour-
		// independent and members adopt it outright (see finalPrefix).
		rec.snapshotComplete(res, uCount, res.Lookups)
		sc.prefixRec = nil
	}
	return res
}

// parallelKernelRound fans one word-parallel kernel round out across
// contiguous candidate-word ranges, fixed for the whole round: an
// admission in one step must suppress the same candidate in every
// later step, so word ownership cannot move mid-round. Results and
// look-ups are bit-identical to the sequential round (rangedRounder).
// It lives outside runWordKernel so the goroutine closures cannot
// force the driver's hot-loop locals onto the heap on sequential
// calls.
func parallelKernelRound(rk rangedRounder, fw, uw []uint64, parent []int32, shards []*syndrome.Shard, wadm []int, workers int) int {
	words := len(uw)
	chunk := (words + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, words)
		wadm[w] = 0
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			wadm[w] = rk.roundRange(fw, uw, parent, shards[w], lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	admitted := 0
	for _, c := range wadm {
		admitted += c
	}
	return admitted
}

// parallelComplementSweep fans one dense complement-walk round out
// across candidate-word ranges. Membership is deferred until after the
// walk even in the sequential sweep, so candidate words are independent
// and the split keeps the test prefixes — and thus the look-up count —
// bit-identical. Worker ranges ascend, so concatenating their next
// buffers in worker order reproduces the sorted frontier.
func parallelComplementSweep(sc *Scratch, a graph.Adjacencer, offs, tgts []int32, uw, fw []uint64, parent []int32, shards []*syndrome.Shard, wadm []int, n, workers int, next []int32) ([]int32, int) {
	words := len(uw)
	chunk := (words + workers - 1) / workers
	pnext, pnbuf := sc.workerBufs(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, words)
		wadm[w] = 0
		pnext[w] = pnext[w][:0]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			pnext[w], pnbuf[w], wadm[w] = complementSweepShard(
				a, offs, tgts, uw, fw, parent, shards[w], n, lo, hi, pnext[w], pnbuf[w])
		}(w, lo, hi)
	}
	wg.Wait()
	admitted := 0
	for w := 0; w < workers; w++ {
		admitted += wadm[w]
		next = append(next, pnext[w]...)
	}
	return next, admitted
}

// complementSweepShard is one worker's slice of a parallel dense sweep
// round: walk the non-members whose ids fall in words [lo, hi) of uw
// and probe each one's frontier neighbours in ascending order until one
// vouches. It mirrors the sequential branch of runWordKernel — kept
// separate (with a concrete *syndrome.Shard) so the sequential path
// stays devirtualised on *syndrome.Lazy. Membership stays deferred:
// uw is read-only here, next collects admissions in ascending order.
func complementSweepShard(a graph.Adjacencer, offs, tgts []int32, uw, fw []uint64, parent []int32, sh *syndrome.Shard, n, lo, hi int, next, nbuf []int32) ([]int32, []int32, int) {
	admitted := 0
	csrOK := offs != nil
	for wi := lo; wi < hi; wi++ {
		inv := ^uw[wi]
		if wi == len(uw)-1 {
			if tail := n & 63; tail != 0 {
				inv &= 1<<uint(tail) - 1
			}
		}
		for inv != 0 {
			v := int32(wi<<6 + bits.TrailingZeros64(inv))
			inv &= inv - 1
			var nbrs []int32
			if csrOK {
				nbrs = tgts[offs[v]:offs[v+1]]
			} else {
				nbuf = a.AppendNeighbors(v, nbuf)
				nbrs = nbuf
			}
			for _, u := range nbrs {
				if fw[u>>6]&(1<<(uint(u)&63)) == 0 {
					continue
				}
				if sh.Test(u, v, parent[u]) != 0 {
					continue
				}
				parent[v] = u
				next = append(next, v)
				admitted++
				break
			}
		}
	}
	return next, nbuf, admitted
}
