package core

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/graph"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// The flap tier of the golden corpus: each fixture walks one engine
// through a full churn cycle — pristine, degraded after a removal,
// still-degraded after a partial restore, recovered after the full
// restore — and pins the served fault set and the per-phase look-up
// split at every stop. A change to the rebind path that shifts any
// phase's cost profile is a visible diff in testdata/golden/flap/.
//
// Regenerate with:
//
//	go test ./internal/core -run GoldenFlap -update-golden

// goldenFlapPhase pins one diagnosis in one phase of the cycle. Fault
// ids are in the phase graph's own id space (survivor ids while
// degraded, original ids before and after).
type goldenFlapPhase struct {
	Faults     []int32     `json:"faults"`
	WantErr    string      `json:"wantErr,omitempty"`
	WantFaults []int32     `json:"wantFaults,omitempty"`
	WantStats  goldenStats `json:"wantStats"`
}

type goldenFlapFixture struct {
	Net          string     `json:"net"`
	Behavior     string     `json:"behavior"`
	BehaviorSeed uint64     `json:"behaviorSeed,omitempty"`
	RemoveNodes  []int32    `json:"removeNodes"`
	RemoveEdges  [][2]int32 `json:"removeEdges,omitempty"`
	RestoreFirst int        `json:"restoreFirst"`

	Before  goldenFlapPhase `json:"before"`
	During  goldenFlapPhase `json:"during"`
	Partial goldenFlapPhase `json:"partial"`
	After   goldenFlapPhase `json:"after"`
}

var goldenFlapCases = []struct {
	name         string
	net          string
	behavior     string
	bseed        uint64
	removeNodes  []int32
	removeEdges  [][2]int32
	restoreFirst int
}{
	{"q8-flap-mimic", "q:8", "mimic", 0, []int32{3, 60, 129, 200}, [][2]int32{{0, 1}}, 2},
	{"kary4x3-flap-allzero", "kary:4,3", "allzero", 0, []int32{5, 17, 33}, nil, 1},
	{"q10-flap-random", "q:10", "random", 7, []int32{100, 400, 900}, nil, 2},
}

const flapPhases = 4

var flapPhaseNames = [flapPhases]string{"before", "during", "partial", "after"}

func goldenFlapPath(name string) string {
	return filepath.Join("testdata", "golden", "flap", name+".json")
}

// runFlapPhases drives the engine through the four-phase cycle, calling
// pick to choose the fault set diagnosed in each phase and visit with
// the outcome. The removal and the two restore waves happen between
// phases 0→1, 1→2 and 2→3.
func runFlapPhases(t *testing.T, nw topology.Network, behavior syndrome.Behavior,
	removeNodes []int32, removeEdges [][2]int32, restoreFirst int,
	pick func(phase int, eng *Engine) *bitset.Set,
	visit func(phase int, F *bitset.Set, got *bitset.Set, st *Stats, derr error)) {
	t.Helper()
	eng := NewEngine(nw)
	var rr *graph.Removal
	var gr *graph.Growth
	for phase := 0; phase < flapPhases; phase++ {
		switch phase {
		case 1:
			rr = eng.Graph().Remove(removeNodes, removeEdges)
			if _, err := eng.Rebind(rr); err != nil {
				t.Fatalf("phase %s: removal rebind: %v", flapPhaseNames[phase], err)
			}
			if !eng.Degraded() {
				t.Fatalf("phase %s: engine not degraded after removal", flapPhaseNames[phase])
			}
		case 2:
			gr = graph.Restore(rr, removeNodes[:restoreFirst], nil)
			if _, err := eng.Rebind(gr); err != nil {
				t.Fatalf("phase %s: partial growth rebind: %v", flapPhaseNames[phase], err)
			}
		case 3:
			full := graph.Restore(gr.Remaining, removeNodes[restoreFirst:], removeEdges)
			if _, err := eng.Rebind(full); err != nil {
				t.Fatalf("phase %s: full growth rebind: %v", flapPhaseNames[phase], err)
			}
			if eng.Degraded() {
				t.Fatalf("phase %s: engine still degraded after full restore", flapPhaseNames[phase])
			}
		}
		F := pick(phase, eng)
		got, st, derr := eng.Diagnose(syndrome.NewLazy(F, behavior))
		visit(phase, F, got, st, derr)
	}
}

// TestGoldenFlapSyndromes replays the committed flap corpus.
func TestGoldenFlapSyndromes(t *testing.T) {
	if *updateGolden {
		writeGoldenFlapFixtures(t)
	}
	files, err := filepath.Glob(goldenFlapPath("*"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no flap golden fixtures found (%v); run with -update-golden to create them", err)
	}
	for _, path := range files {
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		t.Run(name, func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var fx goldenFlapFixture
			if err := json.Unmarshal(raw, &fx); err != nil {
				t.Fatal(err)
			}
			nw, err := topology.Parse(fx.Net)
			if err != nil {
				t.Fatal(err)
			}
			phases := [flapPhases]*goldenFlapPhase{&fx.Before, &fx.During, &fx.Partial, &fx.After}
			runFlapPhases(t, nw, goldenBehavior(fx.Behavior, fx.BehaviorSeed),
				fx.RemoveNodes, fx.RemoveEdges, fx.RestoreFirst,
				func(phase int, eng *Engine) *bitset.Set {
					return bitset.FromMembers(eng.Graph().N(), phases[phase].Faults)
				},
				func(phase int, F, got *bitset.Set, st *Stats, derr error) {
					px := phases[phase]
					label := flapPhaseNames[phase]
					if px.WantErr != "" {
						if derr == nil || !strings.Contains(derr.Error(), px.WantErr) {
							t.Fatalf("%s: err %v, fixture wants %q", label, derr, px.WantErr)
						}
					} else if derr != nil {
						t.Fatalf("%s: unexpected error %v", label, derr)
					} else if !got.Equal(bitset.FromMembers(got.Len(), px.WantFaults)) {
						t.Fatalf("%s: fault set %v differs from fixture %v", label, got, px.WantFaults)
					}
					if g := statsToGolden(st); g != px.WantStats {
						t.Fatalf("%s: stats drifted from golden fixture:\n got %+v\nwant %+v", label, g, px.WantStats)
					}
				})
		})
	}
}

// writeGoldenFlapFixtures regenerates the flap corpus. Fault sets are
// drawn within each phase's effective δ′ so every phase serves a
// successful diagnosis.
func writeGoldenFlapFixtures(t *testing.T) {
	t.Helper()
	if err := os.MkdirAll(filepath.Join("testdata", "golden", "flap"), 0o755); err != nil {
		t.Fatal(err)
	}
	for _, c := range goldenFlapCases {
		nw, err := topology.Parse(c.net)
		if err != nil {
			t.Fatal(err)
		}
		fx := goldenFlapFixture{
			Net: c.net, Behavior: c.behavior, BehaviorSeed: c.bseed,
			RemoveNodes: c.removeNodes, RemoveEdges: c.removeEdges, RestoreFirst: c.restoreFirst,
		}
		phases := [flapPhases]*goldenFlapPhase{&fx.Before, &fx.During, &fx.Partial, &fx.After}
		rng := rand.New(rand.NewSource(int64(len(c.name)) * 7919))
		runFlapPhases(t, nw, goldenBehavior(c.behavior, c.bseed),
			c.removeNodes, c.removeEdges, c.restoreFirst,
			func(phase int, eng *Engine) *bitset.Set {
				return syndrome.RandomFaults(eng.Graph().N(), eng.Diagnosability(), rng)
			},
			func(phase int, F, got *bitset.Set, st *Stats, derr error) {
				px := phases[phase]
				px.Faults = F.Members32()
				if derr != nil {
					px.WantErr = derr.Error()
				} else {
					px.WantFaults = got.Members32()
				}
				px.WantStats = statsToGolden(st)
			})
		raw, err := json.MarshalIndent(&fx, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFlapPath(c.name), append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("golden: wrote %s\n", goldenFlapPath(c.name))
	}
}
