package core

import (
	"math/rand"
	"slices"
	"strings"
	"testing"

	"comparisondiag/internal/graph"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// declaredKernel binds the final-pass kernel a network's declared
// Cayley structure resolves to, failing the test when nothing binds.
func declaredKernel(t *testing.T, nw topology.Network) finalKernel {
	t.Helper()
	cs, ok := nw.(topology.CayleyStructured)
	if !ok {
		t.Fatalf("%s: no Cayley declaration", nw.Name())
	}
	desc := cs.CayleyStructure()
	if err := graph.VerifyCayley(nw.Graph(), desc); err != nil {
		t.Fatalf("%s: declaration rejected: %v", nw.Name(), err)
	}
	k := bindFinalKernel(desc, nw.Graph())
	if k == nil {
		t.Fatalf("%s: no kernel bound for %v", nw.Name(), desc)
	}
	return k
}

// TestKernelBinding pins which families bind which kernel — the
// registry's observable contract. Multi-bit XOR families (folded,
// enhanced, augmented) now get the generalised word-parallel kernel
// instead of falling back to the generic pass, tori bind the
// additive-rotate kernel, and node-dependent or undersized families
// stay generic.
func TestKernelBinding(t *testing.T) {
	cases := []struct {
		nw   topology.Network
		want string
	}{
		{topology.NewHypercube(8), "xor-cayley"},
		{topology.NewHypercube(14), "xor-cayley"},
		{topology.NewFoldedHypercube(8), "xor-cayley[multi-bit]"},
		{topology.NewEnhancedHypercube(8, 3), "xor-cayley[multi-bit]"},
		{topology.NewAugmentedCube(6), "xor-cayley[multi-bit]"},
		{topology.NewAugmentedCube(8), "xor-cayley[multi-bit]"},
		{topology.NewKAryNCube(4, 4), "additive-rotate"},
		{topology.NewKAryNCube(3, 5), "additive-rotate"},
		// Augmented k-ary cubes declare the mixed-radix descriptor; the
		// run generators compile into per-borrow-pattern steps.
		{topology.NewAugmentedKAryNCube(4, 3), "additive-rotate[mixed-radix]"},
		{topology.NewAugmentedKAryNCube(3, 6), "additive-rotate[mixed-radix]"},
		// Negative cases: permutation families have no uniform
		// generator set and must stay on the generic kernel.
		{topology.NewStar(5), "generic"},
		{topology.NewPancake(5), "generic"},
		// Node-dependent cube variants likewise.
		{topology.NewCrossedCube(8), "generic"},
		{topology.NewTwistedNCube(8), "generic"},
		{topology.NewShuffleCube(6), "generic"},
		// Q5 has 32 < 64 nodes: genuine structure, below the word floor.
		{topology.NewHypercube(5), "generic"},
		{topology.NewKAryNCube(3, 3), "generic"},
		{topology.NewAugmentedKAryNCube(3, 3), "generic"}, // 27 < 64 nodes
	}
	for _, c := range cases {
		got := NewEngine(c.nw).KernelName()
		if c.want == "additive-rotate[mixed-radix]" {
			// The mixed-radix name carries the schedule pruner's counts
			// (steps/merged/listed), which are sizes, not contract.
			if !strings.HasPrefix(got, "additive-rotate[mixed-radix") {
				t.Errorf("%s: kernel %q, want %q prefix", c.nw.Name(), got, c.want)
			}
		} else if got != c.want {
			t.Errorf("%s: kernel %q, want %q", c.nw.Name(), got, c.want)
		}
	}
}

// TestGraphEngineBindCayley pins the untrusted-descriptor path: a
// graph-bound engine starts generic, binds a kernel only after the
// descriptor survives verification, and rejects descriptors that do
// not match the graph.
func TestGraphEngineBindCayley(t *testing.T) {
	nw := topology.NewFoldedHypercube(8)
	delta := nw.Diagnosability()
	parts, err := nw.Parts(delta+1, delta+1)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewGraphEngine(nw.Graph(), delta, parts)
	if eng.KernelName() != "generic" {
		t.Fatalf("graph-bound engine starts with %q, want generic", eng.KernelName())
	}
	// A wrong claim (plain-hypercube masks on a folded cube) must be
	// rejected and leave the engine untouched.
	if err := eng.BindCayley(topology.NewHypercube(8).CayleyStructure()); err == nil {
		t.Fatal("mismatched descriptor accepted")
	}
	if eng.KernelName() != "generic" {
		t.Fatal("rejected descriptor still bound a kernel")
	}
	if err := eng.BindCayley(nw.CayleyStructure()); err != nil {
		t.Fatal(err)
	}
	if eng.KernelName() != "xor-cayley[multi-bit]" {
		t.Fatalf("kernel %q after BindCayley", eng.KernelName())
	}
	// The kernel-bound graph engine must stay result- and
	// look-up-identical to the free functions.
	F := syndrome.RandomFaults(nw.Graph().N(), delta, rand.New(rand.NewSource(5)))
	sEng := syndrome.NewLazy(F, syndrome.Mimic{})
	sRef := syndrome.NewLazy(F, syndrome.Mimic{})
	got, gotStats, err := eng.Diagnose(sEng)
	if err != nil {
		t.Fatal(err)
	}
	want, wantStats, err := DiagnoseGraph(nw.Graph(), delta, parts, sRef, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) || gotStats.TotalLookups != wantStats.TotalLookups {
		t.Fatalf("graph engine diverged: lookups %d vs %d", gotStats.TotalLookups, wantStats.TotalLookups)
	}
}

// structuredNetworks are the kernel-bound instances every equivalence
// suite below runs over: single-bit and multi-bit XOR families plus
// even- and odd-arity tori (odd arity exercises the non-word-aligned
// tail masks).
func structuredNetworks() []topology.Network {
	return []topology.Network{
		topology.NewHypercube(6),
		topology.NewHypercube(9),
		topology.NewFoldedHypercube(8),
		topology.NewEnhancedHypercube(7, 3),
		topology.NewAugmentedCube(6),
		topology.NewKAryNCube(4, 3),
		topology.NewKAryNCube(3, 4),
		topology.NewKAryNCube(4, 5),
		topology.NewAugmentedKAryNCube(4, 3), // mixed-radix, 64 nodes
		topology.NewAugmentedKAryNCube(5, 3), // mixed-radix, ragged tail
		topology.NewAugmentedKAryNCube(3, 6), // mixed-radix, long run generators
		topology.NewAugmentedKAryNCube(4, 5), // mixed-radix, word-round regime
	}
}

// TestKernelsMatchReferenceWithFaultySeed pins the unsorted-frontier
// regression: a faulty seed's arbitrary pair answers can produce an
// out-of-order U_1 frontier (e.g. Inverted admits a low neighbour via
// a high faulty one, then a middle neighbour), and the reference then
// sweeps in frontier order, not ascending order. Every specialised
// kernel must reproduce that, not assume sortedness.
func TestKernelsMatchReferenceWithFaultySeed(t *testing.T) {
	// Q8/Q9-sized instances matter most: their word counts are below Δ,
	// so an out-of-order U_1 frontier can reach the word-parallel
	// rounds (verified: with the order gate removed, inverted-adversary
	// trials diverge from the reference).
	nets := append(structuredNetworks(), topology.NewHypercube(12))
	for _, nw := range nets {
		g := nw.Graph()
		delta := nw.Diagnosability()
		k := declaredKernel(t, nw)
		t.Run(nw.Name(), func(t *testing.T) {
			testKernelsFaultySeed(t, g, delta, k)
		})
	}
}

func testKernelsFaultySeed(t *testing.T, g *graph.Graph, delta int, k finalKernel) {
	for _, b := range syndrome.AllBehaviors(3) {
		for trial := int64(0); trial < 20; trial++ {
			// Seed 0 is always faulty, plus random companions.
			F := syndrome.RandomFaults(g.N(), delta, rand.New(rand.NewSource(trial)))
			F.Add(0)
			sRef := syndrome.NewLazy(F, b)
			ref := SetBuilder(g, sRef, 0, delta, nil)

			sKer := syndrome.NewLazy(F, b)
			got := k.run(NewScratch(g.N()), g, sKer, 0, delta)
			sLzy := syndrome.NewLazy(F, b)
			lzy := setBuilderLazyInto(NewScratch(g.N()), g, sLzy, 0, delta)

			for name, r := range map[string]*SetBuilderResult{k.Name(): got, "lazy": lzy} {
				if !ref.U.Equal(r.U) || !slices.Equal(ref.Parent, r.Parent) {
					t.Fatalf("%s trial %d %s: tree differs from reference", b.Name(), trial, name)
				}
				if !ref.Contributors.Equal(r.Contributors) ||
					ref.Rounds != r.Rounds || ref.AllHealthy != r.AllHealthy {
					t.Fatalf("%s trial %d %s: metadata differs", b.Name(), trial, name)
				}
				if ref.Lookups != r.Lookups {
					t.Fatalf("%s trial %d %s: lookups %d vs reference %d", b.Name(), trial, name, r.Lookups, ref.Lookups)
				}
			}
			if sKer.Lookups() != sRef.Lookups() || sLzy.Lookups() != sRef.Lookups() {
				t.Fatalf("%s trial %d: syndrome counters diverged", b.Name(), trial)
			}

			sPar := syndrome.NewLazy(F, b)
			par := SetBuilderParallel(g, sPar, 0, delta, nil, 4)
			if !ref.U.Equal(par.U) || !slices.Equal(ref.Parent, par.Parent) {
				t.Fatalf("%s trial %d parallel: tree differs from reference", b.Name(), trial)
			}
		}
	}
}

// TestStructureKernelsMatchReference compares every registry kernel
// against the reference SetBuilder field by field — including Parent,
// Contributors and the exact look-up count — across behaviours, fault
// loads (healthy-dominant, at δ, beyond δ) and seeds, on sizes that
// exercise both the word-parallel and the small-round sweep paths.
func TestStructureKernelsMatchReference(t *testing.T) {
	for _, nw := range structuredNetworks() {
		g := nw.Graph()
		delta := nw.Diagnosability()
		k := declaredKernel(t, nw)
		for _, b := range syndrome.AllBehaviors(7) {
			for _, f := range []int{1, delta, delta + 3} {
				F := syndrome.RandomFaults(g.N(), f, rand.New(rand.NewSource(int64(g.N()*100+f))))
				seed := int32(0)
				for F.Contains(int(seed)) {
					seed++
				}
				sRef := syndrome.NewLazy(F, b)
				ref := SetBuilder(g, sRef, seed, delta, nil)

				sKer := syndrome.NewLazy(F, b)
				got := k.run(NewScratch(g.N()), g, sKer, seed, delta)

				if !ref.U.Equal(got.U) {
					t.Fatalf("%s %s f=%d: U differs", nw.Name(), b.Name(), f)
				}
				if !slices.Equal(ref.Parent, got.Parent) {
					t.Fatalf("%s %s f=%d: Parent differs", nw.Name(), b.Name(), f)
				}
				if !ref.Contributors.Equal(got.Contributors) {
					t.Fatalf("%s %s f=%d: Contributors differ", nw.Name(), b.Name(), f)
				}
				if ref.Rounds != got.Rounds || ref.AllHealthy != got.AllHealthy {
					t.Fatalf("%s %s f=%d: rounds/AllHealthy differ", nw.Name(), b.Name(), f)
				}
				if ref.Lookups != got.Lookups || sRef.Lookups() != sKer.Lookups() {
					t.Fatalf("%s %s f=%d: lookups differ: %d vs %d", nw.Name(), b.Name(), f, got.Lookups, ref.Lookups)
				}
			}
		}
	}
}

// TestXORScheduleIsOrderExact checks the compiled schedule directly:
// for every candidate id, the subsequence of steps whose condition the
// candidate satisfies must list that candidate's testers in strictly
// ascending order, and cover every mask exactly once.
func TestXORScheduleIsOrderExact(t *testing.T) {
	maskSets := map[string][]int32{
		"Q6":     {1, 2, 4, 8, 16, 32},
		"FQ6":    {1, 2, 4, 8, 16, 32, 63},
		"EQ6_3":  {1, 2, 4, 8, 16, 32, 56},
		"AQ6":    {1, 2, 4, 8, 16, 32, 3, 7, 15, 31, 63},
		"dense3": {1, 2, 3, 4, 5, 6, 7},
	}
	for name, masks := range maskSets {
		sched := compileXORSchedule(masks)
		if sched == nil {
			t.Fatalf("%s: schedule refused", name)
		}
		n := int32(64)
		for v := int32(0); v < n; v++ {
			var testers []int32
			seen := map[int32]bool{}
			for _, st := range sched {
				ok := true
				for _, lt := range st.lits {
					if (v&(1<<uint(lt.bit)) != 0) != lt.val {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				if seen[st.mask] {
					t.Fatalf("%s v=%d: mask %#x scheduled twice", name, v, st.mask)
				}
				seen[st.mask] = true
				testers = append(testers, v^st.mask)
			}
			if len(testers) != len(masks) {
				t.Fatalf("%s v=%d: %d testers scheduled, want %d", name, v, len(testers), len(masks))
			}
			if !slices.IsSorted(testers) {
				t.Fatalf("%s v=%d: testers out of order: %v", name, v, testers)
			}
		}
	}
	if compileXORSchedule([]int32{4, 4}) != nil {
		t.Fatal("duplicate mask set compiled")
	}
}
