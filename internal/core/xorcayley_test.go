package core

import (
	"math/rand"
	"slices"
	"testing"

	"comparisondiag/internal/graph"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// TestXorCayleyDetection pins which families the word-parallel kernel
// binds to: hypercubes yes; folded hypercubes no (the complement mask
// is not a bit power); permutation and k-ary families no.
func TestXorCayleyDetection(t *testing.T) {
	if m := xorCayleyMasks(topology.NewHypercube(8).Graph()); len(m) != 8 {
		t.Fatalf("Q8: expected 8 dimension masks, got %v", m)
	}
	for _, m := range xorCayleyMasks(topology.NewHypercube(8).Graph()) {
		if m&(m-1) != 0 {
			t.Fatalf("Q8 mask %d not a bit power", m)
		}
	}
	if m := xorCayleyMasks(topology.NewFoldedHypercube(8).Graph()); m != nil {
		t.Fatalf("FQ8 should not bind the hypercube kernel, got %v", m)
	}
	if m := xorCayleyMasks(topology.NewStar(5).Graph()); m != nil {
		t.Fatalf("S5 should not bind the hypercube kernel, got %v", m)
	}
	if m := xorCayleyMasks(topology.NewKAryNCube(4, 3).Graph()); m != nil {
		t.Fatalf("Q^4_3 should not bind the hypercube kernel, got %v", m)
	}
	// Q5 has 32 < 64 nodes: correct but below the word-logic floor.
	if m := xorCayleyMasks(topology.NewHypercube(5).Graph()); m != nil {
		t.Fatalf("Q5 is below the kernel's size floor, got %v", m)
	}
}

// TestKernelsMatchReferenceWithFaultySeed pins the unsorted-frontier
// regression: a faulty seed's arbitrary pair answers can produce an
// out-of-order U_1 frontier (e.g. Inverted admits a low neighbour via
// a high faulty one, then a middle neighbour), and the reference then
// sweeps in frontier order, not ascending order. Every specialised
// kernel must reproduce that, not assume sortedness.
func TestKernelsMatchReferenceWithFaultySeed(t *testing.T) {
	// Q8 and Q9 matter most: their word counts (4 and 8) are below Δ,
	// so an out-of-order U_1 frontier can reach the word-parallel
	// rounds (verified: with the order gate removed, inverted-adversary
	// trials diverge from the reference on both).
	for _, dim := range []int{8, 9, 12} {
		nw := topology.NewHypercube(dim)
		g := nw.Graph()
		delta := nw.Diagnosability()
		masks := xorCayleyMasks(g)
		t.Run(nw.Name(), func(t *testing.T) {
			testKernelsFaultySeed(t, g, delta, masks)
		})
	}
}

func testKernelsFaultySeed(t *testing.T, g *graph.Graph, delta int, masks []int32) {
	for _, b := range syndrome.AllBehaviors(3) {
		for trial := int64(0); trial < 20; trial++ {
			// Seed 0 is always faulty, plus random companions.
			F := syndrome.RandomFaults(g.N(), delta, rand.New(rand.NewSource(trial)))
			F.Add(0)
			sRef := syndrome.NewLazy(F, b)
			ref := SetBuilder(g, sRef, 0, delta, nil)

			sXor := syndrome.NewLazy(F, b)
			xor := setBuilderXorInto(NewScratch(g.N()), g, sXor, 0, delta, masks)
			sLzy := syndrome.NewLazy(F, b)
			lzy := setBuilderLazyInto(NewScratch(g.N()), g, sLzy, 0, delta)

			for name, got := range map[string]*SetBuilderResult{"xor": xor, "lazy": lzy} {
				if !ref.U.Equal(got.U) || !slices.Equal(ref.Parent, got.Parent) {
					t.Fatalf("%s trial %d %s: tree differs from reference", b.Name(), trial, name)
				}
				if !ref.Contributors.Equal(got.Contributors) ||
					ref.Rounds != got.Rounds || ref.AllHealthy != got.AllHealthy {
					t.Fatalf("%s trial %d %s: metadata differs", b.Name(), trial, name)
				}
				if ref.Lookups != got.Lookups {
					t.Fatalf("%s trial %d %s: lookups %d vs reference %d", b.Name(), trial, name, got.Lookups, ref.Lookups)
				}
			}
			if sXor.Lookups() != sRef.Lookups() || sLzy.Lookups() != sRef.Lookups() {
				t.Fatalf("%s trial %d: syndrome counters diverged", b.Name(), trial)
			}

			sPar := syndrome.NewLazy(F, b)
			par := SetBuilderParallel(g, sPar, 0, delta, nil, 4)
			if !ref.U.Equal(par.U) || !slices.Equal(ref.Parent, par.Parent) {
				t.Fatalf("%s trial %d parallel: tree differs from reference", b.Name(), trial)
			}
		}
	}
}

// TestXorKernelMatchesReference compares the word-parallel kernel
// against the reference SetBuilder field by field — including Parent,
// Contributors and the exact look-up count — across behaviours, fault
// loads and seeds, on sizes that exercise both the word-parallel and
// the small-round sweep paths.
func TestXorKernelMatchesReference(t *testing.T) {
	for _, dim := range []int{6, 9, 12} {
		nw := topology.NewHypercube(dim)
		g := nw.Graph()
		delta := nw.Diagnosability()
		masks := xorCayleyMasks(g)
		if masks == nil {
			t.Fatalf("Q%d not detected", dim)
		}
		for _, b := range syndrome.AllBehaviors(7) {
			for _, f := range []int{1, delta, delta + 3} {
				F := syndrome.RandomFaults(g.N(), f, rand.New(rand.NewSource(int64(dim*100+f))))
				seed := int32(0)
				for F.Contains(int(seed)) {
					seed++
				}
				sRef := syndrome.NewLazy(F, b)
				ref := SetBuilder(g, sRef, seed, delta, nil)

				sXor := syndrome.NewLazy(F, b)
				xor := setBuilderXorInto(NewScratch(g.N()), g, sXor, seed, delta, masks)

				if !ref.U.Equal(xor.U) {
					t.Fatalf("Q%d %s f=%d: U differs", dim, b.Name(), f)
				}
				if !slices.Equal(ref.Parent, xor.Parent) {
					t.Fatalf("Q%d %s f=%d: Parent differs", dim, b.Name(), f)
				}
				if !ref.Contributors.Equal(xor.Contributors) {
					t.Fatalf("Q%d %s f=%d: Contributors differ", dim, b.Name(), f)
				}
				if ref.Rounds != xor.Rounds || ref.AllHealthy != xor.AllHealthy {
					t.Fatalf("Q%d %s f=%d: rounds/AllHealthy differ", dim, b.Name(), f)
				}
				if ref.Lookups != xor.Lookups || sRef.Lookups() != sXor.Lookups() {
					t.Fatalf("Q%d %s f=%d: lookups differ: %d vs %d", dim, b.Name(), f, ref.Lookups, xor.Lookups)
				}
			}
		}
	}
}
