package bitset

import "testing"

func BenchmarkAddContains(b *testing.B) {
	s := New(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x := i & 0xFFFF
		s.Add(x)
		if !s.Contains(x) {
			b.Fatal("lost member")
		}
	}
}

func BenchmarkCount(b *testing.B) {
	s := New(1 << 16)
	for i := 0; i < 1<<16; i += 3 {
		s.Add(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Count() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkUnion(b *testing.B) {
	x, y := New(1<<16), New(1<<16)
	for i := 0; i < 1<<16; i += 2 {
		x.Add(i)
		y.Add(i + 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Union(y)
	}
}

func BenchmarkForEach(b *testing.B) {
	s := New(1 << 16)
	for i := 0; i < 1<<16; i += 5 {
		s.Add(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		s.ForEach(func(int) bool { n++; return true })
		if n == 0 {
			b.Fatal("no members")
		}
	}
}
