package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicAddRemoveContains(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Contains(i) {
			t.Fatalf("fresh set contains %d", i)
		}
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("added %d not contained", i)
		}
	}
	if s.Count() != 8 {
		t.Fatalf("count = %d, want 8", s.Count())
	}
	s.Remove(64)
	if s.Contains(64) || s.Count() != 7 {
		t.Fatalf("remove failed: count=%d", s.Count())
	}
}

func TestClearAndClone(t *testing.T) {
	s := New(100)
	s.Add(5)
	s.Add(99)
	c := s.Clone()
	s.Clear()
	if s.Count() != 0 {
		t.Fatal("clear left members")
	}
	if !c.Contains(5) || !c.Contains(99) || c.Count() != 2 {
		t.Fatal("clone not independent")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromMembers(64, []int32{1, 2, 3})
	b := FromMembers(64, []int32{3, 4})
	u := a.Clone()
	u.Union(b)
	if got := u.Members(); len(got) != 4 {
		t.Fatalf("union = %v", got)
	}
	i := a.Clone()
	i.Intersect(b)
	if got := i.Members(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("intersect = %v", got)
	}
	d := a.Clone()
	d.Subtract(b)
	if got := d.Members(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("subtract = %v", got)
	}
	if !i.IsSubsetOf(a) || !i.IsSubsetOf(b) {
		t.Fatal("intersection must be subset of both")
	}
	if !a.Intersects(b) {
		t.Fatal("a and b share 3")
	}
	if a.Intersects(FromMembers(64, []int32{10, 11})) {
		t.Fatal("phantom intersection")
	}
}

func TestEqualAndCopyFrom(t *testing.T) {
	a := FromMembers(50, []int32{7, 13})
	b := New(50)
	if a.Equal(b) {
		t.Fatal("unequal sets reported equal")
	}
	b.CopyFrom(a)
	if !a.Equal(b) {
		t.Fatal("copy not equal")
	}
	if a.Equal(New(51)) {
		t.Fatal("different capacities must not be equal")
	}
}

func TestForEachOrderAndEarlyStop(t *testing.T) {
	s := FromMembers(200, []int32{5, 70, 150})
	var got []int
	s.ForEach(func(i int) bool { got = append(got, i); return true })
	if len(got) != 3 || got[0] != 5 || got[1] != 70 || got[2] != 150 {
		t.Fatalf("order wrong: %v", got)
	}
	var n int
	s.ForEach(func(i int) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestMembers32(t *testing.T) {
	s := FromMembers(10, []int32{9, 0, 4})
	m := s.Members32()
	if len(m) != 3 || m[0] != 0 || m[1] != 4 || m[2] != 9 {
		t.Fatalf("members32 = %v", m)
	}
}

func TestString(t *testing.T) {
	if got := FromMembers(10, []int32{1, 3}).String(); got != "{1 3}" {
		t.Fatalf("String = %q", got)
	}
	if got := New(4).String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
}

// Property: Count always equals the number of distinct members added.
func TestQuickCountMatchesDistinct(t *testing.T) {
	f := func(raw []uint16) bool {
		s := New(1 << 16)
		distinct := map[uint16]bool{}
		for _, r := range raw {
			s.Add(int(r))
			distinct[r] = true
		}
		return s.Count() == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: (A ∪ B) ⊇ A, (A ∩ B) ⊆ A, |A∪B| + |A∩B| = |A| + |B|.
func TestQuickInclusionExclusion(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 100; iter++ {
		a, b := New(512), New(512)
		for i := 0; i < 512; i++ {
			if rng.Intn(3) == 0 {
				a.Add(i)
			}
			if rng.Intn(3) == 0 {
				b.Add(i)
			}
		}
		u := a.Clone()
		u.Union(b)
		x := a.Clone()
		x.Intersect(b)
		if !a.IsSubsetOf(u) || !b.IsSubsetOf(u) {
			t.Fatal("union not superset")
		}
		if !x.IsSubsetOf(a) || !x.IsSubsetOf(b) {
			t.Fatal("intersection not subset")
		}
		if u.Count()+x.Count() != a.Count()+b.Count() {
			t.Fatal("inclusion-exclusion violated")
		}
	}
}

func TestDrain(t *testing.T) {
	s := New(200)
	want := []int32{0, 1, 63, 64, 65, 127, 128, 199}
	for _, v := range want {
		s.Add(int(v))
	}
	buf := make([]int32, 0, 4)
	got := s.Drain(buf)
	if len(got) != len(want) {
		t.Fatalf("drained %d members, want %d", len(got), len(want))
	}
	for i, v := range want {
		if got[i] != v {
			t.Fatalf("member %d: got %d, want %d", i, got[i], v)
		}
	}
	if s.Count() != 0 {
		t.Fatalf("set not emptied: %v", s)
	}
	// Draining an empty set keeps the buffer untouched.
	if out := s.Drain(got[:0]); len(out) != 0 {
		t.Fatalf("drain of empty set returned %v", out)
	}
}
