// Package bitset provides a dense, fixed-capacity bit set over node
// identifiers. It is the workhorse set representation for the diagnosis
// algorithms: fault sets, visited sets and part masks are all bitsets so
// membership tests on multi-million-node networks stay allocation-free.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

// Set is a fixed-capacity bit set. The zero value is unusable; construct
// with New. Sets of different capacities must not be mixed in binary
// operations.
type Set struct {
	words []uint64
	n     int // capacity in bits
}

// New returns a Set able to hold members in [0, n).
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity of the set in bits.
func (s *Set) Len() int { return s.n }

// Add inserts i into the set.
func (s *Set) Add(i int) { s.words[i>>6] |= 1 << uint(i&63) }

// Remove deletes i from the set.
func (s *Set) Remove(i int) { s.words[i>>6] &^= 1 << uint(i&63) }

// Contains reports whether i is a member.
func (s *Set) Contains(i int) bool { return s.words[i>>6]&(1<<uint(i&63)) != 0 }

// Count returns the number of members.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clear removes all members, keeping capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with the contents of o. The two sets must have
// equal capacity.
func (s *Set) CopyFrom(o *Set) {
	if s.n != o.n {
		panic("bitset: capacity mismatch")
	}
	copy(s.words, o.words)
}

// Union adds every member of o to s.
func (s *Set) Union(o *Set) {
	if s.n != o.n {
		panic("bitset: capacity mismatch")
	}
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// Intersect removes members of s not present in o.
func (s *Set) Intersect(o *Set) {
	if s.n != o.n {
		panic("bitset: capacity mismatch")
	}
	for i, w := range o.words {
		s.words[i] &= w
	}
}

// Subtract removes every member of o from s.
func (s *Set) Subtract(o *Set) {
	if s.n != o.n {
		panic("bitset: capacity mismatch")
	}
	for i, w := range o.words {
		s.words[i] &^= w
	}
}

// Equal reports whether s and o hold exactly the same members.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// IsSubsetOf reports whether every member of s is also in o.
func (s *Set) IsSubsetOf(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range s.words {
		if w&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s and o share at least one member.
func (s *Set) Intersects(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range s.words {
		if w&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// Words exposes the backing word array (word i holds members
// [64i, 64i+63]). It exists so hot loops can work member-wise at word
// level: readers (e.g. graph.NeighborsOfSetInto) iterate without a
// closure call per member, and owning kernels (the engine's final
// Set_Builder passes) set and clear bits in place — sound because a
// Set holds no derived state beyond the words. Non-owners must treat
// the slice as read-only, and nobody may resize it.
func (s *Set) Words() []uint64 { return s.words }

// ForEach calls f for every member in ascending order. If f returns
// false iteration stops early.
func (s *Set) ForEach(f func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !f(wi<<6 + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Drain appends the members to buf in ascending order, removing them
// from the set, and returns the extended buffer. It is how hot loops
// turn a set of freshly discovered nodes into a sorted work list
// without a comparison sort: one O(capacity/64) word sweep.
func (s *Set) Drain(buf []int32) []int32 {
	for wi, w := range s.words {
		if w == 0 {
			continue
		}
		base := wi << 6
		for w != 0 {
			buf = append(buf, int32(base+bits.TrailingZeros64(w)))
			w &= w - 1
		}
		s.words[wi] = 0
	}
	return buf
}

// Members returns the members in ascending order.
func (s *Set) Members() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool { out = append(out, i); return true })
	return out
}

// Members32 returns the members in ascending order as int32 node ids.
func (s *Set) Members32() []int32 {
	out := make([]int32, 0, s.Count())
	s.ForEach(func(i int) bool { out = append(out, int32(i)); return true })
	return out
}

// String renders the set as "{a b c}" for debugging and test failure
// messages.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}

// FromMembers builds a Set with capacity n containing exactly the given
// members.
func FromMembers(n int, members []int32) *Set {
	s := New(n)
	for _, m := range members {
		s.Add(int(m))
	}
	return s
}
