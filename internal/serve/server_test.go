package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/campaign"
	"comparisondiag/internal/core"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// postDiagnose fires one /v1/diagnose request and decodes the reply.
func postDiagnose(t *testing.T, url string, req DiagnoseRequest) (int, DiagnoseResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url+"/v1/diagnose", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	var dr DiagnoseResponse
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatalf("decode (%d): %v", resp.StatusCode, err)
	}
	return resp.StatusCode, dr
}

// soloDiagnose runs the reference path: a fresh engine, one Diagnose.
func soloDiagnose(t *testing.T, spec string, faults *bitset.Set, b syndrome.Behavior) (*bitset.Set, *core.Stats) {
	t.Helper()
	nw, err := topology.Parse(spec)
	if err != nil {
		t.Fatalf("parse %s: %v", spec, err)
	}
	eng := core.NewEngine(nw)
	got, stats, err := eng.Diagnose(syndrome.NewLazy(faults, b))
	if err != nil {
		t.Fatalf("solo diagnose: %v", err)
	}
	return got, stats
}

func equalInts(a []int, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkBitIdentical pins the served response against the solo
// reference: the fault set and every Stats field solo Diagnose
// defines, with the shared-accounting contracts (PR 4/5) for the
// fields batching redistributes — members of a certification group
// report Cert 0 with the group scan copied, and shared-prefix members
// split solo's FinalLookups into Final + SharedFinal exactly.
func checkBitIdentical(t *testing.T, label string, dr DiagnoseResponse, soloF *bitset.Set, solo *core.Stats) {
	t.Helper()
	if !equalInts(dr.Faults, soloF.Members()) {
		t.Errorf("%s: faults = %v, solo = %v", label, dr.Faults, soloF.Members())
	}
	if dr.Delta != solo.Delta || dr.Seed != solo.Seed || dr.Rounds != solo.Rounds ||
		dr.Healthy != solo.HealthyCount || dr.FaultCount != solo.FaultCount ||
		dr.PartsScanned != solo.PartsScanned || dr.CertifiedPart != solo.CertifiedPart {
		t.Errorf("%s: cost fields diverge from solo: got Δ=%d seed=%d rounds=%d healthy=%d faults=%d parts=%d cert=%d, solo Δ=%d seed=%d rounds=%d healthy=%d faults=%d parts=%d cert=%d",
			label, dr.Delta, dr.Seed, dr.Rounds, dr.Healthy, dr.FaultCount, dr.PartsScanned, dr.CertifiedPart,
			solo.Delta, solo.Seed, solo.Rounds, solo.HealthyCount, solo.FaultCount, solo.PartsScanned, solo.CertifiedPart)
	}
	if got := dr.Lookups.Final + dr.Lookups.SharedFinal; got != solo.FinalLookups {
		t.Errorf("%s: final %d + shared %d = %d, solo final = %d",
			label, dr.Lookups.Final, dr.Lookups.SharedFinal, got, solo.FinalLookups)
	}
	if dr.Lookups.Cert > 0 && dr.Lookups.Cert != solo.CertLookups {
		t.Errorf("%s: cert = %d, solo cert = %d", label, dr.Lookups.Cert, solo.CertLookups)
	}
	if dr.Lookups.Cert == solo.CertLookups && dr.Lookups.SharedFinal == 0 &&
		dr.Lookups.Total != solo.TotalLookups {
		t.Errorf("%s: canonical response but total = %d, solo = %d",
			label, dr.Lookups.Total, solo.TotalLookups)
	}
}

// TestServedCoalescedBitIdentical is the tentpole pin: N concurrent
// clients with overlapping hypotheses are coalesced into one grouped
// batch (width > 1 observed) and every response is bit-identical to a
// solo Engine.Diagnose of the same request; identical concurrent
// requests share one diagnosis. A second identical round exercises the
// warm result cache and must keep the same answers.
func TestServedCoalescedBitIdentical(t *testing.T) {
	const spec = "q:8"
	behaviors := []syndrome.Behavior{syndrome.Mimic{}, syndrome.AllZero{}, syndrome.AllOne{}, syndrome.Inverted{}}
	rng := rand.New(rand.NewSource(41))
	var hyps []*bitset.Set
	for h := 0; h < 3; h++ {
		hyps = append(hyps, syndrome.RandomFaults(256, 4+2*h, rng))
	}
	unique := len(hyps) * len(behaviors) // 12

	srv := New(Config{
		Window:   5 * time.Second, // fallback only; MaxBatch triggers the flush
		MaxBatch: unique,
		Workers:  2,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Solo references, computed once up front.
	type ref struct {
		faults *bitset.Set
		stats  *core.Stats
	}
	refs := make(map[string]ref)
	for hi, F := range hyps {
		for _, b := range behaviors {
			got, stats := soloDiagnose(t, spec, F, b)
			refs[fmt.Sprintf("%d/%s", hi, b.Name())] = ref{faults: got.Clone(), stats: stats}
		}
	}

	reqFor := func(hi int, b syndrome.Behavior) DiagnoseRequest {
		return DiagnoseRequest{Topology: spec, Faults: hyps[hi].Members(), Behavior: b.Name()}
	}

	round := func(roundName string, dups int) {
		var wg sync.WaitGroup
		type result struct {
			label  string
			status int
			dr     DiagnoseResponse
		}
		results := make(chan result, unique+dups)
		// Fire the duplicates of (hyp 0, mimic) first and wait until all
		// of them are pending, so the dedup group is fully assembled
		// before the batch can possibly flush.
		for d := 0; d < dups; d++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				status, dr := postDiagnose(t, ts.URL, reqFor(0, syndrome.Mimic{}))
				results <- result{"0/mimic(dup)", status, dr}
			}()
		}
		if dups > 0 {
			deadline := time.Now().Add(5 * time.Second)
			for srv.Snapshot().PendingRequests < int64(dups) {
				if time.Now().After(deadline) {
					t.Fatalf("%s: duplicates never became pending", roundName)
				}
				time.Sleep(time.Millisecond)
			}
		}
		first := 0
		if dups > 0 {
			first = 1 // (hyp 0, mimic) is already pending
		}
		launched := 0
		for hi := range hyps {
			for bi, b := range behaviors {
				if hi == 0 && bi == 0 && first == 1 {
					continue
				}
				launched++
				wg.Add(1)
				go func(hi int, b syndrome.Behavior) {
					defer wg.Done()
					status, dr := postDiagnose(t, ts.URL, reqFor(hi, b))
					results <- result{fmt.Sprintf("%d/%s", hi, b.Name()), status, dr}
				}(hi, b)
			}
		}
		wg.Wait()
		close(results)
		for r := range results {
			if r.status != http.StatusOK {
				t.Fatalf("%s %s: status %d (%s)", roundName, r.label, r.status, r.dr.Error)
			}
			key := strings.TrimSuffix(r.label, "(dup)")
			ref := refs[key]
			checkBitIdentical(t, roundName+" "+r.label, r.dr, ref.faults, ref.stats)
			if r.dr.BatchWidth != unique {
				t.Errorf("%s %s: batch width = %d, want %d", roundName, r.label, r.dr.BatchWidth, unique)
			}
			// The first duplicate to arrive is the group's original, so
			// dups submissions make a group of dups waiters.
			wantWaiters := 1
			if strings.HasSuffix(r.label, "(dup)") || (key == "0/mimic" && dups > 0) {
				wantWaiters = dups
			}
			if r.dr.Waiters != wantWaiters {
				t.Errorf("%s %s: waiters = %d, want %d", roundName, r.label, r.dr.Waiters, wantWaiters)
			}
		}
	}

	round("round1", 4)
	snap := srv.Snapshot()
	if snap.MaxBatchWidth != int64(unique) {
		t.Errorf("max batch width = %d, want %d", snap.MaxBatchWidth, unique)
	}
	if snap.CoalescedRequests == 0 {
		t.Error("no coalesced requests counted")
	}
	if snap.DedupHits != 3 {
		t.Errorf("dedup hits = %d, want 3", snap.DedupHits)
	}

	// Round 2: same traffic against the warm cache. Representatives now
	// replay canonical outcomes from the cache; the answers must not
	// move.
	round("round2", 0)
	snap = srv.Snapshot()
	if len(snap.Engines) != 1 || !snap.Engines[0].HasCache {
		t.Fatalf("expected one cached engine in the registry, got %+v", snap.Engines)
	}
	if snap.Engines[0].Cache.Hits == 0 {
		t.Error("round 2 produced no cache hits")
	}
	if snap.Engines[0].Cache.HitRate() <= 0 {
		t.Error("cache hit rate not positive after a warm round")
	}
	if snap.SharedFinalLookups == 0 {
		t.Error("no shared-final savings counted across grouped batches")
	}
}

// TestGracefulShutdownDrains pins the drain contract: requests sitting
// in an unexpired coalescing window when Close is called are flushed
// and answered — nothing is dropped — and the flush serves them as one
// coalesced batch.
func TestGracefulShutdownDrains(t *testing.T) {
	const spec = "q:6"
	srv := New(Config{
		Window:   10 * time.Minute, // never expires during the test
		MaxBatch: 100,              // never size-triggers
		Workers:  2,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	rng := rand.New(rand.NewSource(7))
	const n = 6
	type result struct {
		i      int
		status int
		dr     DiagnoseResponse
	}
	hyps := make([]*bitset.Set, n)
	results := make(chan result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		hyps[i] = syndrome.RandomFaults(64, 3, rng)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, dr := postDiagnose(t, ts.URL, DiagnoseRequest{
				Topology: spec, Faults: hyps[i].Members(), Behavior: "mimic",
			})
			results <- result{i, status, dr}
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.Snapshot().PendingRequests < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests became pending", srv.Snapshot().PendingRequests, n)
		}
		time.Sleep(time.Millisecond)
	}

	srv.Close() // must flush the window and answer everything
	wg.Wait()
	close(results)
	for r := range results {
		if r.status != http.StatusOK {
			t.Fatalf("request %d: status %d after drain (%s)", r.i, r.status, r.dr.Error)
		}
		soloF, solo := soloDiagnose(t, spec, hyps[r.i], syndrome.Mimic{})
		checkBitIdentical(t, fmt.Sprintf("drained %d", r.i), r.dr, soloF, solo)
		if r.dr.BatchWidth != n {
			t.Errorf("request %d: drained batch width = %d, want %d", r.i, r.dr.BatchWidth, n)
		}
	}

	// After Close the server refuses new work.
	status, _ := postDiagnose(t, ts.URL, DiagnoseRequest{Topology: spec, Faults: []int{1}})
	if status != http.StatusServiceUnavailable {
		t.Errorf("post-close request: status %d, want 503", status)
	}
}

// TestRegistryEviction pins the LRU: binding past the cap evicts the
// least recently used engine, and an evicted spec rebinds cleanly on
// its next request.
func TestRegistryEviction(t *testing.T) {
	srv := New(Config{RegistryCap: 2, NoCoalesce: true})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	post := func(spec string) {
		t.Helper()
		status, dr := postDiagnose(t, ts.URL, DiagnoseRequest{Topology: spec, Faults: []int{0, 3}})
		if status != http.StatusOK {
			t.Fatalf("%s: status %d (%s)", spec, status, dr.Error)
		}
	}
	post("q:6")
	post("q:7")
	post("q:6") // bump q:6 to MRU
	post("q:8") // evicts q:7
	keys := srv.residentKeys()
	if len(keys) != 2 || keys[0] != "q:8" || keys[1] != "q:6" {
		t.Fatalf("resident keys = %v, want [q:8 q:6]", keys)
	}
	post("q:7") // rebinds, evicting q:6
	keys = srv.residentKeys()
	if len(keys) != 2 || keys[0] != "q:7" || keys[1] != "q:8" {
		t.Fatalf("resident keys after rebind = %v, want [q:7 q:8]", keys)
	}
}

// TestCampaignStream pins the campaign endpoint against the in-process
// reference: the streamed NDJSON points must be bit-identical to a
// direct campaign.Sweep with the same config (the per-trial seed
// formula is position-independent, so per-point serving can't move
// outcomes).
func TestCampaignStream(t *testing.T) {
	const spec = "q:8"
	srv := New(Config{NoCoalesce: true, CacheCap: -1})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	req := CampaignRequest{Topology: spec, MinFaults: 0, MaxFaults: 10, Trials: 16, Behavior: "mimic", Seed: 7}
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/campaign", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var got []CampaignPoint
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var p CampaignPoint
		if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		got = append(got, p)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream: %v", err)
	}

	nw, _ := topology.Parse(spec)
	want := campaign.Sweep(nw, campaign.Config{
		MinFaults: 0, MaxFaults: 10, Trials: 16, Behavior: syndrome.Mimic{}, Seed: 7,
	})
	if len(got) != len(want) {
		t.Fatalf("streamed %d points, want %d", len(got), len(want))
	}
	for i, p := range want {
		g := got[i]
		if g.Faults != p.Faults || g.Trials != p.Trials || g.Exact != p.Exact ||
			g.Refused != p.Refused || g.Silent != p.Silent {
			t.Errorf("point %d: got %+v, want %+v", i, g, p)
		}
	}
	if snap := srv.Snapshot(); snap.Campaigns != 1 || snap.CampaignPoints != int64(len(want)) {
		t.Errorf("campaign counters = %d jobs / %d points, want 1 / %d",
			snap.Campaigns, snap.CampaignPoints, len(want))
	}
}

// TestImplicitServing pins descriptor-backed binding: an "implicit"
// request binds a Cayley engine (no CSR) and its response matches the
// solo implicit reference bit for bit.
func TestImplicitServing(t *testing.T) {
	srv := New(Config{NoCoalesce: true})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	F := bitset.New(1 << 10)
	for _, id := range []int{5, 99, 500, 1000} {
		F.Add(id)
	}
	status, dr := postDiagnose(t, ts.URL, DiagnoseRequest{
		Topology: "q:10", Implicit: true, Faults: F.Members(), Behavior: "inverted",
	})
	if status != http.StatusOK {
		t.Fatalf("status %d (%s)", status, dr.Error)
	}

	eng, err := implicitEngine("q:10")
	if err != nil {
		t.Fatalf("implicit reference: %v", err)
	}
	got, stats, err := eng.Diagnose(syndrome.NewLazy(F, syndrome.Inverted{}))
	if err != nil {
		t.Fatalf("solo implicit diagnose: %v", err)
	}
	checkBitIdentical(t, "implicit", dr, got, stats)
	keys := srv.residentKeys()
	if len(keys) != 1 || keys[0] != "implicit:q:10" {
		t.Fatalf("resident keys = %v, want [implicit:q:10]", keys)
	}
	// CSR and implicit bindings of one spec are distinct entries.
	if status, _ := postDiagnose(t, ts.URL, DiagnoseRequest{Topology: "q:10", Faults: []int{1}}); status != http.StatusOK {
		t.Fatalf("CSR sibling bind failed: %d", status)
	}
	if keys = srv.residentKeys(); len(keys) != 2 {
		t.Fatalf("resident keys = %v, want two entries", keys)
	}
}

// TestDiagnoseValidation sweeps the request-rejection matrix.
func TestDiagnoseValidation(t *testing.T) {
	srv := New(Config{NoCoalesce: true})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/diagnose", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed JSON", `{"topology":`, http.StatusBadRequest},
		{"unknown field", `{"topology":"q:6","bogus":1}`, http.StatusBadRequest},
		{"missing topology", `{"faults":[1]}`, http.StatusBadRequest},
		{"bad topology", `{"topology":"nonsense:9"}`, http.StatusBadRequest},
		{"bad behavior", `{"topology":"q:6","behavior":"liar"}`, http.StatusBadRequest},
		{"fault out of range", `{"topology":"q:6","faults":[64]}`, http.StatusBadRequest},
		{"negative fault", `{"topology":"q:6","faults":[-1]}`, http.StatusBadRequest},
		{"negative bound", `{"topology":"q:6","faults":[1],"bound":-2}`, http.StatusBadRequest},
		{"implicit non-hypercube", `{"topology":"star:5","implicit":true,"faults":[1]}`, http.StatusBadRequest},
		{"beyond bound", `{"topology":"q:6","faults":[0,1,2,3,4,5,6,7,8,9,10,11]}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		if got := post(tc.body); got != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, got, tc.want)
		}
	}
	// Method checks.
	if resp, err := http.Get(ts.URL + "/v1/diagnose"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /v1/diagnose: status %d, want 405", resp.StatusCode)
		}
	}
	// Campaign validation.
	postC := func(body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/campaign", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	campaignCases := []struct {
		name string
		body string
		want int
	}{
		{"zero trials", `{"topology":"q:6","min_faults":0,"max_faults":2}`, http.StatusBadRequest},
		{"inverted range", `{"topology":"q:6","min_faults":3,"max_faults":1,"trials":4}`, http.StatusBadRequest},
		{"too many points", `{"topology":"q:6","min_faults":0,"max_faults":9999,"trials":1}`, http.StatusBadRequest},
		{"max beyond nodes", `{"topology":"q:6","min_faults":0,"max_faults":65,"trials":1}`, http.StatusBadRequest},
	}
	for _, tc := range campaignCases {
		if got := postC(tc.body); got != tc.want {
			t.Errorf("campaign %s: status %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestMetricsEndpoint checks the exporter surface: /healthz, and the
// metric families the acceptance criteria name (cache hit rate,
// shared-prefix savings, worker occupancy) present in /metrics.
func TestMetricsEndpoint(t *testing.T) {
	srv := New(Config{Window: time.Millisecond, MaxBatch: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Two concurrent same-hypothesis requests so sharing engages.
	var wg sync.WaitGroup
	for _, b := range []string{"mimic", "allzero"} {
		wg.Add(1)
		go func(b string) {
			defer wg.Done()
			postDiagnose(t, ts.URL, DiagnoseRequest{Topology: "q:6", Faults: []int{3, 9}, Behavior: b})
		}(b)
	}
	wg.Wait()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: status %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, family := range []string{
		"diagnosed_requests_total",
		"diagnosed_responses_total",
		"diagnosed_diagnoses_total",
		"diagnosed_batch_width_max",
		"diagnosed_syndrome_lookups_total",
		"diagnosed_syndrome_lookups_per_second",
		"diagnosed_shared_final_lookups_total",
		"diagnosed_cache_hit_rate{engine=\"q:6\"}",
		"diagnosed_runtime_worker_occupancy{engine=\"q:6\"}",
		"diagnosed_engine_delta{engine=\"q:6\"",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("/metrics missing %q", family)
		}
	}
}

// TestSnapshotZeroSafe pins the division-by-zero audit at the service
// level: a fresh server's derived rates are zeros, not NaN.
func TestSnapshotZeroSafe(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	snap := srv.Snapshot()
	if snap.MeanBatchWidth != 0 {
		t.Errorf("MeanBatchWidth = %v on a fresh server", snap.MeanBatchWidth)
	}
	if snap.LookupsPerSecond != 0 {
		t.Errorf("LookupsPerSecond = %v on a fresh server", snap.LookupsPerSecond)
	}
	var buf bytes.Buffer
	writePrometheus(&buf, snap)
	if strings.Contains(buf.String(), "NaN") {
		t.Error("fresh /metrics contains NaN")
	}
}
