// Package serve is the diagnosis-as-a-service front end: an HTTP/JSON
// server over the engine stack (core.Engine, campaign.Runtime,
// core.ResultCache) that turns concurrent point requests into the
// grouped batches the shared-certification and shared-final-prefix
// machinery was built for.
//
// The request path is: an engine registry keyed by topology spec
// (lazy bind, CSR or implicit Cayley, bounded LRU of bound engines) →
// a per-engine request coalescer (concurrent /v1/diagnose requests
// within a short window become one Engine.DiagnoseBatch call, grouped
// by fault hypothesis) → the engine's persistent worker pool. Answers
// are bit-identical to solo Engine.Diagnose calls by the
// DiagnoseBatch contract; coalescing changes the look-up bill, not
// the verdicts. /v1/campaign streams sweep points as they finish, and
// /metrics exports the whole stack's counters in Prometheus text.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/campaign"
	"comparisondiag/internal/core"
	"comparisondiag/internal/graph"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// Config tunes a Server. The zero value serves with the defaults
// noted on each field.
type Config struct {
	// RegistryCap bounds the LRU of bound engines (default 8). The
	// least recently used engine is evicted — its worker pool shuts
	// down once in-flight requests drain — when a new spec binds past
	// the cap.
	RegistryCap int
	// Window is the coalescing window: the first diagnose request of a
	// quiet engine waits at most this long for company before its
	// batch flushes (default 2ms). A batch also flushes as soon as
	// MaxBatch distinct requests are pending, so a saturated server
	// never waits out the window.
	Window time.Duration
	// NoCoalesce disables the window entirely: every request is
	// diagnosed the moment it arrives, as a width-1 batch. This is the
	// ablation twin of the servedbatch benchmarks.
	NoCoalesce bool
	// MaxBatch flushes a window early once this many distinct requests
	// are pending (default 64).
	MaxBatch int
	// Workers sizes each engine's persistent worker pool; ≤ 0 means
	// GOMAXPROCS (see campaign.NewRuntime).
	Workers int
	// CacheCap is the per-engine result-cache capacity: 0 means the
	// default (1024 outcomes), negative disables caching.
	CacheCap int
	// NoShareCert and NoShareFinal switch the batch sharing flags off
	// (ablation/debugging; both default on — engaging them is the
	// point of coalescing).
	NoShareCert  bool
	NoShareFinal bool
}

const (
	defaultRegistryCap = 8
	defaultWindow      = 2 * time.Millisecond
	defaultMaxBatch    = 64
	defaultCacheCap    = 1024
)

// Server is the HTTP front end. Create with New, serve via any
// http.Server (it implements http.Handler), stop with Close.
type Server struct {
	cfg Config
	met metrics
	reg *registry

	mux      *http.ServeMux
	closed   atomic.Bool
	inflight sync.WaitGroup
}

// New builds a Server from cfg (zero value = defaults).
func New(cfg Config) *Server {
	if cfg.RegistryCap <= 0 {
		cfg.RegistryCap = defaultRegistryCap
	}
	if cfg.Window <= 0 {
		cfg.Window = defaultWindow
	}
	if cfg.NoCoalesce {
		cfg.Window = 0
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = defaultMaxBatch
	}
	if cfg.CacheCap == 0 {
		cfg.CacheCap = defaultCacheCap
	}
	s := &Server{cfg: cfg}
	s.met.start = time.Now()
	s.reg = newRegistry(cfg.RegistryCap, s.buildEntry)
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/diagnose", s.handleDiagnose)
	mux.HandleFunc("/v1/campaign", s.handleCampaign)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close gracefully drains the server: new requests are refused with
// 503, pending coalescing windows flush immediately so every accepted
// request still receives its response, in-flight handlers (diagnoses
// and campaign streams) run to completion, and then every engine's
// worker pool shuts down. Idempotent.
func (s *Server) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	s.reg.drain()
	s.inflight.Wait()
	s.reg.closeAll()
}

// Preload binds a topology spec ahead of traffic (cmd/diagnosed
// -preload): the bind cost is paid at startup instead of on the first
// request. The spec may carry the "implicit:" prefix.
func (s *Server) Preload(spec string) error {
	e, err := s.reg.get(normalizeKey(spec))
	if err != nil {
		return err
	}
	e.release()
	return nil
}

// Snapshot copies the service counters — the programmatic form of
// /metrics, used by the integration tests and the loopback benches.
func (s *Server) Snapshot() Snapshot {
	snap := s.met.snapshotCounters()
	for _, e := range s.reg.snapshot() {
		snap.PendingRequests += int64(e.co.pendingCount())
		es := EngineSnapshot{
			Key:      e.key,
			Kernel:   e.eng.KernelName(),
			Delta:    e.eng.Diagnosability(),
			Degraded: e.eng.Degraded(),
			Runtime:  e.rt.Stats(),
		}
		if e.cache != nil {
			es.Cache = e.cache.Stats()
			es.HasCache = true
		}
		snap.Engines = append(snap.Engines, es)
	}
	return snap
}

// normalizeKey canonicalises a spec so "Q:14" and " q:14 " share one
// engine. The "implicit:" prefix selects descriptor-backed binding.
func normalizeKey(spec string) string {
	return strings.ToLower(strings.ReplaceAll(strings.TrimSpace(spec), " ", ""))
}

// buildEntry binds the engine for a registry key and assembles its
// serving apparatus (pool, cache, coalescer).
func (s *Server) buildEntry(key string) (*entry, error) {
	spec, implicit := strings.CutPrefix(key, "implicit:")
	var eng *core.Engine
	var err error
	if implicit {
		eng, err = implicitEngine(spec)
	} else {
		var nw topology.Network
		nw, err = topology.Parse(spec)
		if err == nil {
			eng = core.NewEngine(nw)
		}
	}
	if err != nil {
		return nil, err
	}
	var cache *core.ResultCache
	if s.cfg.CacheCap > 0 {
		cache = core.NewResultCache(s.cfg.CacheCap)
	}
	rt := campaign.NewRuntime(eng, s.cfg.Workers)
	e := &entry{key: key, eng: eng, cache: cache, rt: rt}
	window := s.cfg.Window
	if s.cfg.NoCoalesce {
		window = 0
	}
	e.co = newCoalescer(eng, rt, cache, window, s.cfg.MaxBatch,
		!s.cfg.NoShareCert, !s.cfg.NoShareFinal, &s.met)
	return e, nil
}

// implicitEngine binds a descriptor-backed engine for the families
// whose Cayley structure is derivable from the spec alone — currently
// the hypercubes ("q:<n>", δ = n): the XOR descriptor is written down
// directly, so no CSR is ever built and million-node graphs bind in
// microseconds (see docs/scale.md). Other families must bind in the
// default CSR mode.
func implicitEngine(spec string) (*core.Engine, error) {
	name, arg, ok := strings.Cut(spec, ":")
	if !ok || (name != "q" && name != "hypercube") {
		return nil, fmt.Errorf("serve: implicit mode supports hypercube specs (q:<n>), got %q", spec)
	}
	n, err := strconv.Atoi(arg)
	if err != nil || n < 2 {
		return nil, fmt.Errorf("serve: bad implicit hypercube dimension %q", arg)
	}
	masks := make([]int32, n)
	for i := range masks {
		masks[i] = 1 << uint(i)
	}
	return core.NewCayleyEngine(graph.XORCayley{Bits: n, Masks: masks}, n)
}

// DiagnoseRequest is the /v1/diagnose request body.
type DiagnoseRequest struct {
	// Topology is the spec to diagnose against ("q:14", "star:6", ...).
	Topology string `json:"topology"`
	// Implicit selects descriptor-backed binding (hypercubes only).
	Implicit bool `json:"implicit,omitempty"`
	// Faults is the fault hypothesis: node ids presumed faulty.
	Faults []int `json:"faults"`
	// Behavior names the faulty-tester adversary (default "mimic").
	Behavior string `json:"behavior,omitempty"`
	// Seed parameterises the "random" behaviour.
	Seed uint64 `json:"seed,omitempty"`
	// Bound tightens the fault bound below δ (0 = the engine's δ).
	Bound int `json:"bound,omitempty"`
}

// LookupBill itemises the syndrome look-ups of one response. For a
// request served as a shared-prefix group member, Final counts only
// the consultations past the adopted checkpoint and SharedFinal the
// inherited prefix, so Final + SharedFinal equals the solo Diagnose
// FinalLookups of the same syndrome; Cert is 0 for members whose
// certification the group representative carried (see docs/service.md
// for the full accounting contract).
type LookupBill struct {
	Cert        int64 `json:"cert"`
	Final       int64 `json:"final"`
	SharedFinal int64 `json:"shared_final"`
	Total       int64 `json:"total"`
}

// DiagnoseResponse is the /v1/diagnose response body.
type DiagnoseResponse struct {
	Topology       string     `json:"topology"`
	Kernel         string     `json:"kernel"`
	Delta          int        `json:"delta"`
	Degraded       bool       `json:"degraded,omitempty"`
	EffectiveDelta int        `json:"effective_delta,omitempty"`
	Faults         []int      `json:"faults"`
	Lookups        LookupBill `json:"lookups"`
	Seed           int32      `json:"seed"`
	Rounds         int        `json:"rounds"`
	Healthy        int        `json:"healthy"`
	FaultCount     int        `json:"fault_count"`
	PartsScanned   int        `json:"parts_scanned"`
	CertifiedPart  int        `json:"certified_part"`
	BatchWidth     int        `json:"batch_width"`
	Waiters        int        `json:"waiters"`
	Error          string     `json:"error,omitempty"`
}

// begin gates a handler on the drain state. It returns false (and has
// already written 503) when the server is closing.
func (s *Server) begin(w http.ResponseWriter) bool {
	s.inflight.Add(1)
	if s.closed.Load() {
		s.inflight.Done()
		httpError(w, http.StatusServiceUnavailable, "server is shutting down")
		return false
	}
	return true
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleDiagnose(w http.ResponseWriter, r *http.Request) {
	if !s.begin(w) {
		return
	}
	defer s.inflight.Done()
	s.met.requests.Add(1)
	if r.Method != http.MethodPost {
		s.met.errors.Add(1)
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req DiagnoseRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.met.errors.Add(1)
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Topology == "" {
		s.met.errors.Add(1)
		httpError(w, http.StatusBadRequest, "topology is required")
		return
	}
	behavior, err := syndrome.ParseBehavior(req.Behavior, req.Seed)
	if err != nil {
		s.met.errors.Add(1)
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Bound < 0 {
		s.met.errors.Add(1)
		httpError(w, http.StatusBadRequest, "bound must be ≥ 0")
		return
	}
	key := normalizeKey(req.Topology)
	if req.Implicit {
		key = "implicit:" + key
	}
	ent, err := s.reg.get(key)
	if err != nil {
		s.met.errors.Add(1)
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer ent.release()

	n := ent.eng.Adjacency().N()
	faults := bitset.New(n)
	for _, id := range req.Faults {
		if id < 0 || id >= n {
			s.met.errors.Add(1)
			httpError(w, http.StatusBadRequest, "fault id %d out of range [0, %d)", id, n)
			return
		}
		faults.Add(id)
	}

	ch, err := ent.co.Submit(requestKey(faults, behavior.Name(), req.Seed, req.Bound), faults, behavior, req.Bound)
	if err != nil {
		s.met.errors.Add(1)
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	out := <-ch

	resp := DiagnoseResponse{
		Topology:       req.Topology,
		Kernel:         ent.eng.KernelName(),
		Delta:          out.Stats.Delta,
		Degraded:       out.Stats.Degraded,
		EffectiveDelta: out.Stats.EffectiveDelta,
		Lookups: LookupBill{
			Cert:        out.Stats.CertLookups,
			Final:       out.Stats.FinalLookups,
			SharedFinal: out.Stats.SharedFinalLookups,
			Total:       out.Stats.TotalLookups,
		},
		Seed:          out.Stats.Seed,
		Rounds:        out.Stats.Rounds,
		Healthy:       out.Stats.HealthyCount,
		FaultCount:    out.Stats.FaultCount,
		PartsScanned:  out.Stats.PartsScanned,
		CertifiedPart: out.Stats.CertifiedPart,
		BatchWidth:    out.BatchWidth,
		Waiters:       out.Waiters,
	}
	w.Header().Set("Content-Type", "application/json")
	if out.Err != nil {
		// A diagnosis refusal (fault bound exceeded, no certified part)
		// is a well-formed verdict about the hypothesis, not a server
		// fault: 422 with the typed error's message.
		s.met.errors.Add(1)
		resp.Error = out.Err.Error()
		w.WriteHeader(http.StatusUnprocessableEntity)
		json.NewEncoder(w).Encode(resp)
		return
	}
	if out.Faults != nil {
		resp.Faults = out.Faults.Members()
	} else {
		resp.Faults = []int{}
	}
	s.met.responses.Add(1)
	json.NewEncoder(w).Encode(resp)
}

// requestKey identifies a diagnose request up to bit-identical
// outcome: fault hypothesis words, behaviour, behaviour seed, and
// fault bound. Identical concurrent requests coalesce onto one
// diagnosis.
func requestKey(faults *bitset.Set, behaviorName string, seed uint64, bound int) string {
	var b strings.Builder
	words := faults.Words()
	b.Grow(len(words)*16 + len(behaviorName) + 32)
	for _, wd := range words {
		fmt.Fprintf(&b, "%016x", wd)
	}
	fmt.Fprintf(&b, "|%s|%d|%d", behaviorName, seed, bound)
	return b.String()
}

// CampaignRequest is the /v1/campaign request body.
type CampaignRequest struct {
	Topology  string `json:"topology"`
	Implicit  bool   `json:"implicit,omitempty"`
	MinFaults int    `json:"min_faults"`
	MaxFaults int    `json:"max_faults"`
	Trials    int    `json:"trials"`
	Behavior  string `json:"behavior,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
}

// CampaignPoint is one streamed /v1/campaign line (NDJSON).
type CampaignPoint struct {
	Faults     int     `json:"faults"`
	Trials     int     `json:"trials"`
	Exact      int     `json:"exact"`
	Refused    int     `json:"refused"`
	Silent     int     `json:"silent"`
	ExactRate  float64 `json:"exact_rate"`
	SilentRate float64 `json:"silent_rate"`
}

const (
	maxCampaignTrials = 1_000_000
	maxCampaignPoints = 4096
)

func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	if !s.begin(w) {
		return
	}
	defer s.inflight.Done()
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req CampaignRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Topology == "" {
		httpError(w, http.StatusBadRequest, "topology is required")
		return
	}
	behavior, err := syndrome.ParseBehavior(req.Behavior, uint64(req.Seed))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	switch {
	case req.Trials < 1 || req.Trials > maxCampaignTrials:
		httpError(w, http.StatusBadRequest, "trials must be in [1, %d]", maxCampaignTrials)
		return
	case req.MinFaults < 0 || req.MaxFaults < req.MinFaults:
		httpError(w, http.StatusBadRequest, "need 0 ≤ min_faults ≤ max_faults")
		return
	case req.MaxFaults-req.MinFaults+1 > maxCampaignPoints:
		httpError(w, http.StatusBadRequest, "at most %d sweep points per job", maxCampaignPoints)
		return
	}
	key := normalizeKey(req.Topology)
	if req.Implicit {
		key = "implicit:" + key
	}
	ent, err := s.reg.get(key)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer ent.release()
	if n := ent.eng.Adjacency().N(); req.MaxFaults > n {
		httpError(w, http.StatusBadRequest, "max_faults %d exceeds %d nodes", req.MaxFaults, n)
		return
	}

	s.met.campaigns.Add(1)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	// One SweepRuntime call per fault count: the per-trial seed formula
	// depends only on (Seed, fault count, trial index), so the streamed
	// points are bit-identical to a single whole-range sweep.
	for f := req.MinFaults; f <= req.MaxFaults; f++ {
		pts := campaign.SweepRuntime(ent.rt, campaign.Config{
			MinFaults: f, MaxFaults: f,
			Trials:   req.Trials,
			Behavior: behavior,
			Seed:     req.Seed,
			Cache:    ent.cache,
		})
		p := pts[0]
		enc.Encode(CampaignPoint{
			Faults: p.Faults, Trials: p.Trials,
			Exact: p.Exact, Refused: p.Refused, Silent: p.Silent,
			ExactRate: p.ExactRate(), SilentRate: p.SilentRate(),
		})
		s.met.campaignPoints.Add(1)
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.Snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	writePrometheus(w, snap)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		httpError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ok")
}

// residentKeys is a test helper: the resident registry keys, most
// recently used first.
func (s *Server) residentKeys() []string {
	var keys []string
	for _, e := range s.reg.snapshot() {
		keys = append(keys, e.key)
	}
	return keys
}
