package serve

import (
	"container/list"
	"sync"
	"sync/atomic"

	"comparisondiag/internal/campaign"
	"comparisondiag/internal/core"
)

// entry is one bound engine with its serving apparatus: the persistent
// worker pool the coalesced batches run on, the engine-level result
// cache, and the coalescer itself. Entries are reference counted:
// residency in the registry holds one reference and every in-flight
// request another, so an eviction never tears the pool out from under
// a request — the runtime closes when the last user releases.
type entry struct {
	key   string
	eng   *core.Engine
	cache *core.ResultCache
	rt    *campaign.Runtime
	co    *coalescer

	refs atomic.Int64
	elem *list.Element // registry LRU position; nil once evicted
}

func (e *entry) retain() { e.refs.Add(1) }

// release drops one reference; the last one drains the coalescer and
// shuts the worker pool down.
func (e *entry) release() {
	if e.refs.Add(-1) == 0 {
		e.co.close()
		e.rt.Close()
	}
}

// registry is the bounded LRU of bound engines, keyed by normalized
// topology spec. Binding is lazy (first request for a spec builds and
// binds the engine) and deduplicated: concurrent first requests for
// one spec wait for a single build instead of binding twice.
type registry struct {
	cap   int
	build func(key string) (*entry, error)

	mu       sync.Mutex
	entries  map[string]*entry
	lru      *list.List // of *entry; front = most recently used
	building map[string]chan struct{}
}

func newRegistry(cap int, build func(string) (*entry, error)) *registry {
	return &registry{
		cap:      cap,
		build:    build,
		entries:  make(map[string]*entry),
		lru:      list.New(),
		building: make(map[string]chan struct{}),
	}
}

// get returns the entry for key, binding it on first use and bumping
// it to the front of the LRU. The caller owns one reference and must
// release() it when the request completes.
func (r *registry) get(key string) (*entry, error) {
	for {
		r.mu.Lock()
		if e, ok := r.entries[key]; ok {
			r.lru.MoveToFront(e.elem)
			e.retain()
			r.mu.Unlock()
			return e, nil
		}
		if ch, ok := r.building[key]; ok {
			// Someone else is binding this spec; wait and re-check (the
			// build may also have failed, in which case we retry it).
			r.mu.Unlock()
			<-ch
			continue
		}
		ch := make(chan struct{})
		r.building[key] = ch
		r.mu.Unlock()

		e, err := r.build(key)

		r.mu.Lock()
		delete(r.building, key)
		close(ch)
		if err != nil {
			r.mu.Unlock()
			return nil, err
		}
		e.refs.Store(1) // the residency reference
		e.elem = r.lru.PushFront(e)
		r.entries[key] = e
		e.retain() // the caller's reference
		evicted := r.evictOverCapLocked()
		r.mu.Unlock()
		for _, ev := range evicted {
			ev.release()
		}
		return e, nil
	}
}

// evictOverCapLocked trims the LRU tail down to capacity. Caller holds
// mu; the returned entries must be released outside the lock (the last
// reference shuts a worker pool down, which must not happen under mu).
func (r *registry) evictOverCapLocked() []*entry {
	var evicted []*entry
	for r.lru.Len() > r.cap {
		back := r.lru.Back()
		ev := back.Value.(*entry)
		r.lru.Remove(back)
		ev.elem = nil
		delete(r.entries, ev.key)
		evicted = append(evicted, ev)
	}
	return evicted
}

// snapshot lists the resident entries, most recently used first.
func (r *registry) snapshot() []*entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	es := make([]*entry, 0, r.lru.Len())
	for el := r.lru.Front(); el != nil; el = el.Next() {
		es = append(es, el.Value.(*entry))
	}
	return es
}

// drain flushes every resident coalescer and refuses their later
// submissions — the first step of a graceful shutdown.
func (r *registry) drain() {
	for _, e := range r.snapshot() {
		e.co.close()
	}
}

// closeAll evicts everything; pools shut down as references drain.
func (r *registry) closeAll() {
	r.mu.Lock()
	es := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		es = append(es, e)
	}
	r.entries = make(map[string]*entry)
	r.lru.Init()
	for _, e := range es {
		e.elem = nil
	}
	r.mu.Unlock()
	for _, e := range es {
		e.release()
	}
}
