package serve

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"comparisondiag/internal/campaign"
	"comparisondiag/internal/core"
)

// metrics is the server-wide counter set. Every field is an atomic so
// the /metrics exporter (and Server.Snapshot) can poll concurrently
// with serving without locks or torn reads.
type metrics struct {
	start time.Time

	requests  atomic.Int64 // /v1/diagnose requests accepted
	responses atomic.Int64 // /v1/diagnose 200s written
	errors    atomic.Int64 // /v1/diagnose non-200s (4xx/5xx + diagnosis refusals)

	diagnoses atomic.Int64 // distinct syndromes actually diagnosed
	batches   atomic.Int64 // DiagnoseBatch flushes issued
	coalesced atomic.Int64 // syndromes served in batches of width > 1
	widthSum  atomic.Int64 // Σ batch widths (mean = widthSum/batches)
	widthMax  atomic.Int64 // widest batch observed
	dedup     atomic.Int64 // requests folded onto an identical pending request

	lookups     atomic.Int64 // syndrome look-ups spent by served diagnoses
	sharedFinal atomic.Int64 // look-ups inherited from shared final prefixes

	campaigns      atomic.Int64 // /v1/campaign jobs accepted
	campaignPoints atomic.Int64 // sweep points streamed
}

// noteBatch folds one flushed sub-batch into the counters.
func (m *metrics) noteBatch(width int, lookups, shared int64) {
	m.batches.Add(1)
	m.diagnoses.Add(int64(width))
	m.widthSum.Add(int64(width))
	if width > 1 {
		m.coalesced.Add(int64(width))
	}
	for {
		cur := m.widthMax.Load()
		if int64(width) <= cur || m.widthMax.CompareAndSwap(cur, int64(width)) {
			break
		}
	}
	m.lookups.Add(lookups)
	m.sharedFinal.Add(shared)
}

// Snapshot is a point-in-time copy of the service counters — what
// /metrics renders as Prometheus text. Derived rates are division-by-
// zero safe: a fresh server reports zeros, never NaN.
type Snapshot struct {
	Uptime time.Duration

	Requests, Responses, Errors int64

	// Diagnoses counts distinct syndromes diagnosed; DedupHits counts
	// requests answered by an identical concurrent request's diagnosis.
	Diagnoses, Batches, CoalescedRequests, DedupHits int64
	MaxBatchWidth                                    int64
	MeanBatchWidth                                   float64

	SyndromeLookups    int64
	LookupsPerSecond   float64
	SharedFinalLookups int64

	Campaigns, CampaignPoints int64

	// PendingRequests is the number of requests currently waiting in
	// coalescing windows across all resident engines.
	PendingRequests int64

	// Engines lists the resident registry entries, most recently used
	// first.
	Engines []EngineSnapshot
}

// EngineSnapshot is the per-engine slice of a Snapshot.
type EngineSnapshot struct {
	Key      string
	Kernel   string
	Delta    int
	Degraded bool
	Cache    core.CacheStats
	HasCache bool
	Runtime  campaign.RuntimeStats
}

// snapshotCounters fills the scalar half of a Snapshot.
func (m *metrics) snapshotCounters() Snapshot {
	s := Snapshot{
		Uptime:             time.Since(m.start),
		Requests:           m.requests.Load(),
		Responses:          m.responses.Load(),
		Errors:             m.errors.Load(),
		Diagnoses:          m.diagnoses.Load(),
		Batches:            m.batches.Load(),
		CoalescedRequests:  m.coalesced.Load(),
		DedupHits:          m.dedup.Load(),
		MaxBatchWidth:      m.widthMax.Load(),
		SyndromeLookups:    m.lookups.Load(),
		SharedFinalLookups: m.sharedFinal.Load(),
		Campaigns:          m.campaigns.Load(),
		CampaignPoints:     m.campaignPoints.Load(),
	}
	if s.Batches > 0 {
		s.MeanBatchWidth = float64(m.widthSum.Load()) / float64(s.Batches)
	}
	if secs := s.Uptime.Seconds(); secs > 0 {
		s.LookupsPerSecond = float64(s.SyndromeLookups) / secs
	}
	return s
}

// writePrometheus renders the snapshot in the Prometheus text format:
// `# HELP`/`# TYPE` preamble per family, one sample per line, engine
// families labelled by registry key.
func writePrometheus(w io.Writer, s Snapshot) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	gauge("diagnosed_uptime_seconds", "Seconds since the server started.", s.Uptime.Seconds())
	counter("diagnosed_requests_total", "Diagnose requests accepted.", s.Requests)
	counter("diagnosed_responses_total", "Diagnose responses served.", s.Responses)
	counter("diagnosed_errors_total", "Diagnose requests refused or failed.", s.Errors)
	counter("diagnosed_diagnoses_total", "Distinct syndromes diagnosed.", s.Diagnoses)
	counter("diagnosed_batches_total", "Coalesced DiagnoseBatch flushes.", s.Batches)
	counter("diagnosed_coalesced_requests_total", "Requests served in batches of width > 1.", s.CoalescedRequests)
	counter("diagnosed_dedup_hits_total", "Requests folded onto an identical pending request.", s.DedupHits)
	gauge("diagnosed_batch_width_max", "Widest coalesced batch observed.", float64(s.MaxBatchWidth))
	gauge("diagnosed_batch_width_mean", "Mean coalesced batch width.", s.MeanBatchWidth)
	counter("diagnosed_syndrome_lookups_total", "Syndrome look-ups spent by served diagnoses.", s.SyndromeLookups)
	gauge("diagnosed_syndrome_lookups_per_second", "Look-up throughput over the server's uptime.", s.LookupsPerSecond)
	counter("diagnosed_shared_final_lookups_total", "Look-ups saved via shared final prefixes.", s.SharedFinalLookups)
	counter("diagnosed_campaigns_total", "Campaign jobs accepted.", s.Campaigns)
	counter("diagnosed_campaign_points_total", "Campaign sweep points streamed.", s.CampaignPoints)
	gauge("diagnosed_pending_requests", "Requests waiting in coalescing windows.", float64(s.PendingRequests))
	gauge("diagnosed_registry_engines", "Engines resident in the registry.", float64(len(s.Engines)))

	labelled := func(name, help, typ string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	if len(s.Engines) > 0 {
		labelled("diagnosed_engine_delta", "Fault bound the engine serves.", "gauge")
		for _, e := range s.Engines {
			fmt.Fprintf(w, "diagnosed_engine_delta{engine=%q,kernel=%q} %d\n", e.Key, e.Kernel, e.Delta)
		}
		labelled("diagnosed_engine_degraded", "1 when the engine serves a churn-degraded binding.", "gauge")
		for _, e := range s.Engines {
			v := 0
			if e.Degraded {
				v = 1
			}
			fmt.Fprintf(w, "diagnosed_engine_degraded{engine=%q} %d\n", e.Key, v)
		}
		labelled("diagnosed_cache_hit_rate", "Result-cache hit rate in [0,1].", "gauge")
		for _, e := range s.Engines {
			fmt.Fprintf(w, "diagnosed_cache_hit_rate{engine=%q} %g\n", e.Key, e.Cache.HitRate())
		}
		labelled("diagnosed_cache_hits_total", "Result-cache hits.", "counter")
		for _, e := range s.Engines {
			fmt.Fprintf(w, "diagnosed_cache_hits_total{engine=%q} %d\n", e.Key, e.Cache.Hits)
		}
		labelled("diagnosed_cache_misses_total", "Result-cache misses.", "counter")
		for _, e := range s.Engines {
			fmt.Fprintf(w, "diagnosed_cache_misses_total{engine=%q} %d\n", e.Key, e.Cache.Misses)
		}
		labelled("diagnosed_cache_entries", "Result-cache resident entries.", "gauge")
		for _, e := range s.Engines {
			fmt.Fprintf(w, "diagnosed_cache_entries{engine=%q} %d\n", e.Key, e.Cache.Entries)
		}
		labelled("diagnosed_cache_evictions_total", "Result-cache evictions.", "counter")
		for _, e := range s.Engines {
			fmt.Fprintf(w, "diagnosed_cache_evictions_total{engine=%q} %d\n", e.Key, e.Cache.Evictions)
		}
		labelled("diagnosed_runtime_workers", "Persistent runtime workers bound to the engine.", "gauge")
		for _, e := range s.Engines {
			fmt.Fprintf(w, "diagnosed_runtime_workers{engine=%q} %d\n", e.Key, e.Runtime.Workers)
		}
		labelled("diagnosed_runtime_jobs_total", "Completed runtime jobs.", "counter")
		for _, e := range s.Engines {
			fmt.Fprintf(w, "diagnosed_runtime_jobs_total{engine=%q} %d\n", e.Key, e.Runtime.Jobs)
		}
		labelled("diagnosed_runtime_trials_total", "Trials executed across the engine's workers.", "counter")
		for _, e := range s.Engines {
			fmt.Fprintf(w, "diagnosed_runtime_trials_total{engine=%q} %d\n", e.Key, e.Runtime.TotalTrials())
		}
		labelled("diagnosed_runtime_worker_occupancy", "Fraction of workers that have executed a trial.", "gauge")
		for _, e := range s.Engines {
			fmt.Fprintf(w, "diagnosed_runtime_worker_occupancy{engine=%q} %g\n", e.Key, e.Runtime.Occupancy())
		}
	}
}
