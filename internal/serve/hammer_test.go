package serve

import (
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"comparisondiag/internal/campaign"
	"comparisondiag/internal/core"
	"comparisondiag/internal/graph"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// TestObservabilityPollingRace is the satellite audit for the snapshot
// paths the /metrics exporter polls while the stack serves: per-worker
// Runtime.Stats trial loads, ResultCache.Stats, the Stats.Degraded
// stamping window around Engine.Rebind, and the derived-rate helpers.
// Run under -race (verify.sh's matrix includes this package); the test
// asserts nothing beyond "no torn read and no panic" — the serving
// goroutines' results are deliberately ignored because a flapping
// engine legitimately refuses hypotheses above its momentary δ′.
func TestObservabilityPollingRace(t *testing.T) {
	nw, err := topology.Parse("q:6")
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(nw)
	cache := core.NewResultCacheWithSketch(64, 2)
	rt := campaign.NewRuntime(eng, 2)
	defer rt.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Serving load: grouped batches through the persistent pool.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for {
				select {
				case <-stop:
					return
				default:
				}
				syns := make([]syndrome.Syndrome, 4)
				for j := range syns {
					F := syndrome.RandomFaults(64, 3, rng)
					syns[j] = syndrome.NewLazy(F, syndrome.Mimic{})
				}
				rt.DiagnoseBatch(syns, core.BatchOptions{
					ShareCertification: true, ShareFinalPrefix: true,
					Options: core.Options{ResultCache: cache},
				})
			}
		}(w)
	}

	// Churn: flap cycles rebind the engine (and epoch-flush the cache)
	// while the pollers read Degraded/Diagnosability/KernelName.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
			}
			g := eng.Graph()
			gone := []int32{int32(rng.Intn(g.N()))}
			rr := g.Remove(gone, nil)
			if _, err := eng.Rebind(rr, cache); err != nil {
				t.Error("removal rebind:", err)
				return
			}
			if _, err := eng.Rebind(graph.Restore(rr, gone, nil), cache); err != nil {
				t.Error("growth rebind:", err)
				return
			}
		}
	}()

	// Pollers: the exporter's exact read set, spinning.
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rs := rt.Stats()
				_ = rs.TotalTrials()
				_ = rs.Occupancy()
				cs := cache.Stats()
				_ = cs.HitRate()
				_ = eng.Degraded()
				_ = eng.Diagnosability()
				_ = eng.KernelName()
				_ = eng.PartsErr()
			}
		}()
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestServerSnapshotPollingRace hammers the HTTP layer the same way:
// concurrent diagnose and campaign traffic against Server.Snapshot,
// /metrics and /healthz pollers. Run under -race.
func TestServerSnapshotPollingRace(t *testing.T) {
	srv := New(Config{Window: time.Millisecond, MaxBatch: 8, Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) + 1))
			for {
				select {
				case <-stop:
					return
				default:
				}
				F := syndrome.RandomFaults(64, 1+rng.Intn(4), rng)
				behaviors := []string{"mimic", "allzero", "allone", "inverted"}
				postDiagnose(t, ts.URL, DiagnoseRequest{
					Topology: "q:6", Faults: F.Members(), Behavior: behaviors[rng.Intn(len(behaviors))],
				})
			}
		}(c)
	}
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := srv.Snapshot()
				for _, e := range snap.Engines {
					_ = e.Cache.HitRate()
					_ = e.Runtime.Occupancy()
				}
			}
		}()
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
}
