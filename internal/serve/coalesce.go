package serve

import (
	"errors"
	"sort"
	"sync"
	"time"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/core"
	"comparisondiag/internal/syndrome"
)

// ErrClosing is returned by Submit while the server (or one engine
// entry) is shutting down: requests already accepted are flushed and
// answered, new ones are refused.
var ErrClosing = errors.New("serve: shutting down")

// Outcome is one request's diagnosis as delivered by the coalescer.
type Outcome struct {
	// Faults is read-only and may be shared with every other waiter of
	// the same deduplicated request.
	Faults *bitset.Set
	Stats  core.Stats
	Err    error
	// BatchWidth is the number of distinct syndromes in the
	// DiagnoseBatch call that produced this outcome (1 = solo).
	BatchWidth int
	// Waiters is the number of identical concurrent requests this
	// outcome was fanned out to (≥ 1).
	Waiters int
}

// request is one distinct pending diagnosis; identical concurrent
// submissions append their channel instead of a second syndrome (the
// grouped batch path requires the syndromes of a batch to be distinct
// objects, and one diagnosis answers them all anyway).
type request struct {
	syn   *syndrome.Lazy
	bound int
	out   []chan Outcome
}

// coalescer batches the concurrent diagnose requests of one engine:
// the first request of a quiet window arms a timer; until it fires —
// or maxBatch distinct requests accumulate, whichever is first — later
// requests pile into the same pending set, and the flush runs them as
// one grouped Engine.DiagnoseBatch call. Requests sharing a fault
// hypothesis land in one certification group (ShareCertification) and
// inherit the behaviour-independent final prefix (ShareFinalPrefix),
// so the per-batch look-up bill shrinks the more the traffic overlaps;
// answers are bit-identical to solo Diagnose calls by the DiagnoseBatch
// contract. Batches mixing fault bounds are split per bound, since
// Options.FaultBound is batch-wide.
type coalescer struct {
	eng        *core.Engine
	pool       core.BatchPool
	cache      *core.ResultCache
	window     time.Duration // ≤ 0 flushes every submission immediately
	maxBatch   int
	shareCert  bool
	shareFinal bool
	met        *metrics

	mu      sync.Mutex
	pending map[string]*request
	order   []*request // insertion order, the flush order
	timer   *time.Timer
	closed  bool
	flights sync.WaitGroup // in-progress flushes
}

func newCoalescer(eng *core.Engine, pool core.BatchPool, cache *core.ResultCache, window time.Duration, maxBatch int, shareCert, shareFinal bool, met *metrics) *coalescer {
	return &coalescer{
		eng: eng, pool: pool, cache: cache,
		window: window, maxBatch: maxBatch,
		shareCert: shareCert, shareFinal: shareFinal,
		met:     met,
		pending: make(map[string]*request),
	}
}

// Submit enqueues one diagnosis. key identifies the request up to
// bit-identical outcome (hypothesis + behaviour + bound); identical
// concurrent requests share one diagnosis. The returned channel
// (buffered, capacity 1) delivers exactly one Outcome once the batch
// flushes — within the coalescing window, or immediately on shutdown.
func (c *coalescer) Submit(key string, faults *bitset.Set, behavior syndrome.Behavior, bound int) (<-chan Outcome, error) {
	ch := make(chan Outcome, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosing
	}
	if r, ok := c.pending[key]; ok {
		r.out = append(r.out, ch)
		c.met.dedup.Add(1)
		c.mu.Unlock()
		return ch, nil
	}
	r := &request{syn: syndrome.NewLazy(faults, behavior), bound: bound, out: []chan Outcome{ch}}
	c.pending[key] = r
	c.order = append(c.order, r)
	switch {
	case c.window <= 0 || len(c.order) >= c.maxBatch:
		// Flush in the caller's goroutine: it is about to block on ch
		// anyway, and a synchronous flush keeps the full-batch path
		// deterministic (exactly one batch per maxBatch submissions).
		batch := c.take()
		c.flights.Add(1)
		c.mu.Unlock()
		c.flush(batch)
	case len(c.order) == 1:
		c.timer = time.AfterFunc(c.window, c.timedFlush)
		c.mu.Unlock()
	default:
		c.mu.Unlock()
	}
	return ch, nil
}

// pendingCount reports how many requests are waiting in the window.
func (c *coalescer) pendingCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, r := range c.order {
		n += len(r.out)
	}
	return n
}

// take claims the pending set for a flush. Caller holds mu.
func (c *coalescer) take() []*request {
	batch := c.order
	c.order = nil
	c.pending = make(map[string]*request)
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	return batch
}

// timedFlush is the window-expiry path.
func (c *coalescer) timedFlush() {
	c.mu.Lock()
	if len(c.order) == 0 {
		c.mu.Unlock()
		return
	}
	batch := c.take()
	c.flights.Add(1)
	c.mu.Unlock()
	c.flush(batch)
}

// flush diagnoses one claimed batch and fans the outcomes out. Batches
// mixing fault bounds split into one DiagnoseBatch call per bound
// (ascending, for determinism) because Options.FaultBound applies to a
// whole batch.
func (c *coalescer) flush(batch []*request) {
	defer c.flights.Done()
	if len(batch) == 0 {
		return
	}
	byBound := make(map[int][]*request)
	var bounds []int
	for _, r := range batch {
		if _, ok := byBound[r.bound]; !ok {
			bounds = append(bounds, r.bound)
		}
		byBound[r.bound] = append(byBound[r.bound], r)
	}
	sort.Ints(bounds)
	for _, bound := range bounds {
		c.flushBound(bound, byBound[bound])
	}
}

func (c *coalescer) flushBound(bound int, reqs []*request) {
	syns := make([]syndrome.Syndrome, len(reqs))
	for i, r := range reqs {
		syns[i] = r.syn
	}
	opt := core.BatchOptions{
		ShareCertification: c.shareCert,
		ShareFinalPrefix:   c.shareFinal,
		Pool:               c.pool,
		Options:            core.Options{FaultBound: bound, ResultCache: c.cache},
	}
	results := c.eng.DiagnoseBatch(syns, opt)
	width := len(reqs)
	var lookups, shared int64
	for i, r := range reqs {
		res := results[i]
		lookups += r.syn.Lookups()
		shared += res.Stats.SharedFinalLookups
		out := Outcome{
			Faults: res.Faults, Stats: res.Stats, Err: res.Err,
			BatchWidth: width, Waiters: len(r.out),
		}
		for _, ch := range r.out {
			ch <- out
		}
	}
	c.met.noteBatch(width, lookups, shared)
}

// close drains the coalescer: later Submits refuse with ErrClosing,
// the pending window flushes immediately so every accepted request
// still receives its Outcome, and in-flight flushes complete before
// close returns. Idempotent.
func (c *coalescer) close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.flights.Wait()
		return
	}
	c.closed = true
	batch := c.take()
	c.flights.Add(1)
	c.mu.Unlock()
	c.flush(batch)
	c.flights.Wait()
}
