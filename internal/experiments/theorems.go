package experiments

import (
	"errors"
	"fmt"

	"comparisondiag/internal/topology"
)

// Theorem2Hypercubes regenerates the Theorem 2 claim: fault diagnosis on
// Q_n in O(n·2^n) = O(Δ·N) time. The "ns/(Δ·N)" column should be
// roughly flat across the sweep if the bound holds.
func Theorem2Hypercubes(full bool) *Table {
	max := 12
	if full {
		max = 15
	}
	t := &Table{
		ID:      "T2",
		Title:   "Theorem 2 — hypercubes Q_n, δ = n faults, O(n·2^n) diagnosis",
		Columns: scalingColumns,
	}
	for n := 7; n <= max; n++ {
		t.Rows = append(t.Rows, scalingRow(topology.NewHypercube(n), 5, int64(n)))
	}
	t.Notes = append(t.Notes, "flat ns/(Δ·N) column ⇒ the O(ΔN) shape of Theorem 2 holds")
	return t
}

// Theorem3Variants regenerates Theorem 3: the same algorithm on the
// seven hypercube variants.
func Theorem3Variants(full bool) *Table {
	n := 9
	if full {
		n = 11
	}
	t := &Table{
		ID:      "T3",
		Title:   fmt.Sprintf("Theorem 3 — hypercube variants (dimension ≈ %d), δ faults each", n),
		Columns: scalingColumns,
	}
	odd := n | 1
	sq := 6
	if full {
		sq = 10
	}
	for _, nw := range []topology.Network{
		topology.NewCrossedCube(n),
		topology.NewTwistedCube(odd),
		topology.NewFoldedHypercube(n),
		topology.NewEnhancedHypercube(n, 4),
		topology.NewAugmentedCube(n),
		topology.NewShuffleCube(sq),
		topology.NewTwistedNCube(n),
	} {
		t.Rows = append(t.Rows, scalingRow(nw, 5, 3))
	}
	t.Notes = append(t.Notes,
		"AQ_n needs n ≥ 8: below that N < (δ+1)² and the Theorem 1 partition cannot exist (gap G3)")
	return t
}

// Theorem4KAry regenerates Theorem 4: k-ary n-cubes, δ = 2n, O(n·k^n).
func Theorem4KAry(full bool) *Table {
	t := &Table{
		ID:      "T4",
		Title:   "Theorem 4 — k-ary n-cubes Q^k_n, δ = 2n faults, O(n·k^n) diagnosis",
		Columns: scalingColumns,
	}
	grid := [][2]int{{3, 4}, {3, 5}, {4, 3}, {4, 4}, {5, 3}, {6, 3}}
	if full {
		grid = append(grid, [2]int{3, 6}, [2]int{4, 5}, [2]int{5, 4}, [2]int{8, 3})
	}
	for _, kn := range grid {
		t.Rows = append(t.Rows, scalingRow(topology.NewKAryNCube(kn[0], kn[1]), 5, int64(kn[0]*10+kn[1])))
	}
	// The augmented k-ary n-cube corollary of Theorem 4.
	t.Rows = append(t.Rows, scalingRow(topology.NewAugmentedKAryNCube(7, 2), 5, 7))
	t.Rows = append(t.Rows, scalingRow(topology.NewAugmentedKAryNCube(6, 3), 5, 8))
	t.Notes = append(t.Notes,
		"last two rows: augmented k-ary n-cubes AQ_{n,k} (corollary in §5.2)",
		"small AQ_{n,k} such as AQ_{3,4} have N < (δ+1)² and fall to gap G3, like AQ_7")
	return t
}

// Theorem5Stars regenerates Theorem 5: (n,k)-stars (and stars as
// S_{n,n-1}), δ = n-1.
func Theorem5Stars(full bool) *Table {
	t := &Table{
		ID:      "T5",
		Title:   "Theorem 5 — (n,k)-stars S_{n,k} and stars S_n, δ = n-1 faults",
		Columns: scalingColumns,
	}
	grid := [][2]int{{6, 3}, {7, 3}, {7, 4}, {8, 4}}
	if full {
		grid = append(grid, [2]int{9, 4}, [2]int{9, 5}, [2]int{10, 4})
	}
	for _, nk := range grid {
		t.Rows = append(t.Rows, scalingRow(topology.NewNKStar(nk[0], nk[1]), 5, int64(nk[0])))
	}
	stars := []int{6, 7}
	if full {
		stars = append(stars, 8, 9)
	}
	for _, n := range stars {
		t.Rows = append(t.Rows, scalingRow(topology.NewStar(n), 5, int64(n)))
	}
	t.Notes = append(t.Notes,
		"S_{n,2} is infeasible for Theorem 1 (N = n(n-1) < (δ+1)², gap G3); see T7 notes and DiagnoseWithVerification")
	return t
}

// Theorem6Pancakes regenerates Theorem 6: pancake graphs, δ = n-1.
func Theorem6Pancakes(full bool) *Table {
	t := &Table{
		ID:      "T6",
		Title:   "Theorem 6 — pancake graphs P_n, δ = n-1 faults",
		Columns: scalingColumns,
	}
	max := 7
	if full {
		max = 9
	}
	for n := 5; n <= max; n++ {
		t.Rows = append(t.Rows, scalingRow(topology.NewPancake(n), 5, int64(n)))
	}
	return t
}

// Theorem7Arrangements regenerates Theorem 7: arrangement graphs,
// δ = k(n-k), including the region where the partition precondition is
// unsatisfiable (the section the paper mis-pasted; gaps G2/G3).
func Theorem7Arrangements(full bool) *Table {
	t := &Table{
		ID:      "T7",
		Title:   "Theorem 7 — arrangement graphs A_{n,k}, δ = k(n-k) faults",
		Columns: scalingColumns,
	}
	grid := [][2]int{{6, 3}, {6, 4}, {7, 3}, {7, 4}, {7, 5}}
	if full {
		grid = append(grid, [2]int{8, 4}, [2]int{8, 5}, [2]int{8, 6})
	}
	for _, nk := range grid {
		t.Rows = append(t.Rows, scalingRow(topology.NewArrangement(nk[0], nk[1]), 4, int64(nk[0])))
	}
	// Infeasible region: report the typed failure rather than a number.
	for _, nk := range [][2]int{{6, 2}, {7, 2}} {
		nw := topology.NewArrangement(nk[0], nk[1])
		d := nw.Diagnosability()
		_, err := nw.Parts(d+1, d+1)
		status := "unexpectedly feasible"
		if errors.Is(err, topology.ErrNoPartition) {
			status = "no partition (G3)"
		}
		t.Rows = append(t.Rows, []string{nw.Name(), itoa(nw.Graph().N()), itoa(nw.Graph().MaxDegree()),
			itoa(d), "-", "-", "-", "-", status})
	}
	t.Notes = append(t.Notes,
		"the paper's §5.2 arrangement 'proof' is a copy of the pancake paragraph (gap G2); the real partition fixes a position suffix",
		"A_{n,2}: N = n(n-1) < (δ+1)² — Theorem 1 inapplicable (gap G3); use DiagnoseWithVerification")
	return t
}
