package experiments

import (
	"strings"
	"testing"
)

func TestTableFprintAlignment(t *testing.T) {
	tb := &Table{
		ID:      "TX",
		Title:   "test table",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"wider-cell", "1"}, {"x", "22"}},
		Notes:   []string{"a note"},
	}
	var sb strings.Builder
	tb.Fprint(&sb)
	out := sb.String()
	if !strings.Contains(out, "== TX: test table ==") {
		t.Fatalf("missing header: %q", out)
	}
	lines := strings.Split(out, "\n")
	// Column starts must align between header and rows.
	hdr := lines[1]
	row := lines[2]
	if strings.Index(hdr, "long-column") != strings.Index(row, "1") {
		t.Fatalf("columns misaligned:\n%s\n%s", hdr, row)
	}
	if !strings.Contains(out, "note: a note") {
		t.Fatal("note not rendered")
	}
}

func TestByIDKnownAndUnknown(t *testing.T) {
	if _, err := ByID("nope", false); err == nil {
		t.Fatal("unknown id accepted")
	}
	// A fast experiment end-to-end: every row of T11's short mode must
	// agree with the literature (that is the experiment's assertion).
	tb, err := ByID("t11", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Fatal("empty table")
	}
	for _, row := range tb.Rows {
		if strings.HasPrefix(row[4], "NO") && !strings.Contains(row[4], "threshold") {
			t.Fatalf("unexpected disagreement: %v", row)
		}
	}
}

func TestTheorem2RowsAllOK(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweep")
	}
	tb := Theorem2Hypercubes(false)
	for _, row := range tb.Rows {
		if row[len(row)-1] != "ok" {
			t.Fatalf("row failed: %v", row)
		}
	}
}

func TestLookupAccountingBoundsHold(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweep")
	}
	tb := LookupAccounting(false)
	for _, row := range tb.Rows {
		// total/table must be < 1 by a wide margin (the §6 claim).
		frac := row[len(row)-1]
		if strings.HasPrefix(frac, "ERR") {
			t.Fatalf("row errored: %v", row)
		}
		if !strings.HasPrefix(frac, "0.0") {
			t.Fatalf("look-up economy violated: %v", row)
		}
	}
}

func TestAblationCertificateShowsG1(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweep")
	}
	tb := AblationCertificate(false)
	sawFailure, sawRecovery := false, false
	for _, row := range tb.Rows {
		if row[1] == "paper δ+1" && strings.Contains(row[3], "G1") {
			sawFailure = true
		}
		if row[1] == "paper 2δ+2" && row[3] == "exact" {
			sawRecovery = true
		}
		if row[1] == "scan" && row[3] != "exact" {
			t.Fatalf("scan certificate failed: %v", row)
		}
	}
	if !sawFailure || !sawRecovery {
		t.Fatalf("G1 pattern not observed: failure=%v recovery=%v", sawFailure, sawRecovery)
	}
}
