// Package experiments regenerates every evaluation artefact of the
// paper: the per-family complexity claims of Theorems 2–7, the look-up
// economy of Section 6, the comparisons with Chiang–Tan and Yang of
// Sections 3/6, the diagnosability validations, the distributed
// comparison of the Conclusions, and the repository's own ablations.
// Each experiment returns a Table that cmd/benchtab prints; the index
// lives in DESIGN.md §4 and the recorded outcomes in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"comparisondiag/internal/core"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// Table is one regenerated evaluation artefact.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, cell := range r {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// runResult aggregates repeated diagnosis runs on one instance.
type runResult struct {
	avgTime      time.Duration
	perDeltaN    float64 // ns per (Δ·N) — flat when the O(ΔN) claim holds
	certLookups  int64
	finalLookups int64
	totalLookups int64
	healthy      int
	kernel       string // final-pass kernel the engine bound
	ok           bool
	errText      string
}

// measureDiagnose runs `trials` diagnoses with fresh random fault sets
// of size δ under the given behaviour and averages the cost. The
// trials run through one engine bound to the network — the serving
// configuration the tables describe — so partition construction is
// paid once, not per trial.
func measureDiagnose(nw topology.Network, behavior syndrome.Behavior, trials int, seed int64, opt core.Options) runResult {
	eng := core.NewEngine(nw)
	g := eng.Graph()
	delta := eng.Diagnosability()
	rng := rand.New(rand.NewSource(seed))
	var res runResult
	res.kernel = eng.KernelName()
	var total time.Duration
	for i := 0; i < trials; i++ {
		F := syndrome.RandomFaults(g.N(), delta, rng)
		s := syndrome.NewLazy(F, behavior)
		start := time.Now()
		got, stats, err := eng.DiagnoseOpts(s, opt)
		total += time.Since(start)
		if err != nil {
			res.errText = err.Error()
			return res
		}
		if !got.Equal(F) {
			res.errText = "MISDIAGNOSIS"
			return res
		}
		res.certLookups += stats.CertLookups
		res.finalLookups += stats.FinalLookups
		res.totalLookups += stats.TotalLookups
		res.healthy = stats.HealthyCount
	}
	res.ok = true
	res.avgTime = total / time.Duration(trials)
	res.certLookups /= int64(trials)
	res.finalLookups /= int64(trials)
	res.totalLookups /= int64(trials)
	res.perDeltaN = float64(res.avgTime.Nanoseconds()) / float64(g.MaxDegree()*g.N())
	return res
}

// scalingRow renders one instance of a Theorem 2–7 table.
func scalingRow(nw topology.Network, trials int, seed int64) []string {
	g := nw.Graph()
	r := measureDiagnose(nw, syndrome.Mimic{}, trials, seed, core.Options{})
	if !r.ok {
		return []string{nw.Name(), itoa(g.N()), itoa(g.MaxDegree()), itoa(nw.Diagnosability()),
			"-", "-", "-", r.kernel, "ERR: " + r.errText}
	}
	return []string{
		nw.Name(), itoa(g.N()), itoa(g.MaxDegree()), itoa(nw.Diagnosability()),
		fmtDur(r.avgTime), fmt.Sprintf("%.2f", r.perDeltaN), itoa64(r.totalLookups), r.kernel, "ok",
	}
}

var scalingColumns = []string{"instance", "N", "Δ", "δ", "time/diag", "ns/(Δ·N)", "lookups", "kernel", "status"}

func itoa(v int) string     { return fmt.Sprintf("%d", v) }
func itoa64(v int64) string { return fmt.Sprintf("%d", v) }

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// All runs every experiment (the benchtab "all" mode). full enlarges the
// sweeps.
func All(full bool) []*Table {
	return []*Table{
		Theorem2Hypercubes(full),
		Theorem3Variants(full),
		Theorem4KAry(full),
		Theorem5Stars(full),
		Theorem6Pancakes(full),
		Theorem7Arrangements(full),
		LookupAccounting(full),
		VersusChiangTan(full),
		VersusYang(full),
		DiagnosabilityTable(full),
		DistributedComparison(full),
		TestScheduling(full),
		BeyondGuarantee(full),
		AblationCertificate(full),
		AblationParallel(full),
		AblationBehaviour(full),
	}
}

// ByID returns the experiment table with the given id (t2..t14, a1..a3).
func ByID(id string, full bool) (*Table, error) {
	switch strings.ToLower(id) {
	case "t2":
		return Theorem2Hypercubes(full), nil
	case "t3":
		return Theorem3Variants(full), nil
	case "t4":
		return Theorem4KAry(full), nil
	case "t5":
		return Theorem5Stars(full), nil
	case "t6":
		return Theorem6Pancakes(full), nil
	case "t7":
		return Theorem7Arrangements(full), nil
	case "t8":
		return LookupAccounting(full), nil
	case "t9":
		return VersusChiangTan(full), nil
	case "t10":
		return VersusYang(full), nil
	case "t11":
		return DiagnosabilityTable(full), nil
	case "t12":
		return DistributedComparison(full), nil
	case "t13":
		return TestScheduling(full), nil
	case "t14":
		return BeyondGuarantee(full), nil
	case "a1":
		return AblationCertificate(full), nil
	case "a2":
		return AblationParallel(full), nil
	case "a3":
		return AblationBehaviour(full), nil
	}
	return nil, fmt.Errorf("experiments: unknown table id %q", id)
}
