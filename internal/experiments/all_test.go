package experiments

import (
	"strings"
	"testing"
)

// TestAllTablesGenerate runs every experiment end to end (short sweeps)
// and checks the tables are well-formed: every row has the full column
// count and no row reports a misdiagnosis.
func TestAllTablesGenerate(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	tables := All(false)
	if len(tables) != 16 {
		t.Fatalf("expected 16 experiment tables, got %d", len(tables))
	}
	seen := map[string]bool{}
	for _, tb := range tables {
		if seen[tb.ID] {
			t.Fatalf("duplicate table id %s", tb.ID)
		}
		seen[tb.ID] = true
		if len(tb.Rows) == 0 {
			t.Errorf("%s: empty table", tb.ID)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Columns) {
				t.Errorf("%s: row %v has %d cells, want %d", tb.ID, row, len(row), len(tb.Columns))
			}
			for _, cell := range row {
				if strings.Contains(cell, "MISDIAGNOSIS") {
					t.Errorf("%s: misdiagnosis leaked into a table row: %v", tb.ID, row)
				}
			}
		}
	}
	// Every documented id must be reachable through ByID.
	for id := range seen {
		if _, err := ByID(id, false); err != nil {
			t.Errorf("ByID(%s) failed: %v", id, err)
		}
	}
}
