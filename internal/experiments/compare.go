package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"comparisondiag/internal/baseline"
	"comparisondiag/internal/core"
	"comparisondiag/internal/distsim"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// LookupAccounting regenerates the Section 6 claim: Set_Builder consults
// (Δ-1)(Δ/2 + |U_r| - 1) syndrome entries at most, far fewer than the
// complete syndrome table that full-table algorithms require.
func LookupAccounting(full bool) *Table {
	t := &Table{
		ID:    "T8",
		Title: "Section 6 — syndrome look-up economy (δ faults, mimic adversary)",
		Columns: []string{"instance", "N", "table size", "cert lkups", "final lkups",
			"paper bound", "total/table"},
	}
	instances := []topology.Network{
		topology.NewHypercube(10),
		topology.NewCrossedCube(10),
		topology.NewKAryNCube(4, 4),
		topology.NewStar(7),
		topology.NewPancake(7),
	}
	if full {
		instances = append(instances,
			topology.NewHypercube(14),
			topology.NewStar(9),
			topology.NewArrangement(8, 4),
		)
	}
	for _, nw := range instances {
		g := nw.Graph()
		r := measureDiagnose(nw, syndrome.Mimic{}, 5, 1, core.Options{})
		if !r.ok {
			t.Rows = append(t.Rows, []string{nw.Name(), itoa(g.N()), "-", "-", "-", "-", "ERR: " + r.errText})
			continue
		}
		d := float64(g.MaxDegree())
		bound := int64((d - 1) * (d/2 + float64(r.healthy) - 1))
		table := syndrome.TableSize(g)
		t.Rows = append(t.Rows, []string{
			nw.Name(), itoa(g.N()), itoa64(table), itoa64(r.certLookups), itoa64(r.finalLookups),
			itoa64(bound), fmt.Sprintf("%.4f", float64(r.totalLookups)/float64(table)),
		})
	}
	t.Notes = append(t.Notes,
		"final lkups ≤ paper bound (Δ-1)(Δ/2+|U_r|-1); total/table ≪ 1 is the §6 claim",
	)
	return t
}

// VersusChiangTan regenerates the Section 3/6 comparison: same O(ΔN)
// asymptotics, but Chiang–Tan must materialise and consult the complete
// syndrome table while Diagnose touches a fraction of it.
func VersusChiangTan(full bool) *Table {
	t := &Table{
		ID:    "T9",
		Title: "Sections 3/6 — Diagnose vs Chiang–Tan extended stars (δ faults)",
		Columns: []string{"instance", "N", "ours time", "CT time", "ours lkups",
			"CT table+rule", "lookup ratio"},
	}
	dims := []int{7, 8, 9, 10}
	if full {
		dims = append(dims, 11, 12)
	}
	rng := rand.New(rand.NewSource(77))
	for _, n := range dims {
		nw := topology.NewHypercube(n)
		g := nw.Graph()
		F := syndrome.RandomFaults(g.N(), n, rng)

		s := syndrome.NewLazy(F, syndrome.Mimic{})
		start := time.Now()
		ours, stats, err := core.Diagnose(nw, s)
		oursTime := time.Since(start)
		if err != nil || !ours.Equal(F) {
			t.Rows = append(t.Rows, []string{nw.Name(), itoa(g.N()), "-", "-", "-", "-", "ERR"})
			continue
		}

		sCT := syndrome.NewLazy(F, syndrome.Mimic{})
		starAt := func(x int32) (*baseline.ExtendedStar, error) { return baseline.HypercubeExtendedStar(n, x) }
		start = time.Now()
		ctF, ctStats, err := baseline.CTDiagnose(g, sCT, starAt)
		ctTime := time.Since(start)
		if err != nil || !ctF.Equal(F) {
			t.Rows = append(t.Rows, []string{nw.Name(), itoa(g.N()), "-", "-", "-", "-", "CT ERR"})
			continue
		}
		ctCost := ctStats.TableEntries + ctStats.RuleLookups
		t.Rows = append(t.Rows, []string{
			nw.Name(), itoa(g.N()), fmtDur(oursTime), fmtDur(ctTime),
			itoa64(stats.TotalLookups), itoa64(ctCost),
			fmt.Sprintf("%.4f", float64(stats.TotalLookups)/float64(ctCost)),
		})
	}
	// Star graphs, where CT additionally pays for star construction.
	starDims := []int{6, 7}
	if full {
		starDims = append(starDims, 8)
	}
	for _, n := range starDims {
		nw := topology.NewStar(n)
		g := nw.Graph()
		F := syndrome.RandomFaults(g.N(), n-1, rng)
		s := syndrome.NewLazy(F, syndrome.Mimic{})
		start := time.Now()
		ours, stats, err := core.Diagnose(nw, s)
		oursTime := time.Since(start)
		if err != nil || !ours.Equal(F) {
			t.Rows = append(t.Rows, []string{nw.Name(), itoa(g.N()), "-", "-", "-", "-", "ERR"})
			continue
		}
		sCT := syndrome.NewLazy(F, syndrome.Mimic{})
		starAt := func(x int32) (*baseline.ExtendedStar, error) {
			return baseline.FindExtendedStar(g, x, n-1)
		}
		start = time.Now()
		ctF, ctStats, err := baseline.CTDiagnose(g, sCT, starAt)
		ctTime := time.Since(start)
		status := "ok"
		if err != nil {
			status = "CT ERR"
		} else if !ctF.Equal(F) {
			status = "CT MISDIAGNOSIS"
		}
		if status != "ok" {
			t.Rows = append(t.Rows, []string{nw.Name(), itoa(g.N()), fmtDur(oursTime), "-", itoa64(stats.TotalLookups), "-", status})
			continue
		}
		ctCost := ctStats.TableEntries + ctStats.RuleLookups
		t.Rows = append(t.Rows, []string{
			nw.Name(), itoa(g.N()), fmtDur(oursTime), fmtDur(ctTime),
			itoa64(stats.TotalLookups), itoa64(ctCost),
			fmt.Sprintf("%.4f", float64(stats.TotalLookups)/float64(ctCost)),
		})
	}
	t.Notes = append(t.Notes,
		"CT time includes syndrome-table materialisation and per-node star work, as §6 argues it must")
	return t
}

// VersusYang regenerates the Section 3 comparison against Yang's
// O(n²·2^n) cycle algorithm (both are given identical fault sets).
func VersusYang(full bool) *Table {
	t := &Table{
		ID:      "T10",
		Title:   "Section 3 — Diagnose vs Yang's cycle decomposition on Q_n (δ = n faults)",
		Columns: []string{"instance", "N", "ours time", "Yang time", "ours lkups", "Yang lkups", "speed-up"},
	}
	dims := []int{7, 8, 9, 10, 11}
	if full {
		dims = append(dims, 12, 13, 14)
	}
	rng := rand.New(rand.NewSource(9))
	for _, n := range dims {
		nw := topology.NewHypercube(n)
		g := nw.Graph()
		F := syndrome.RandomFaults(g.N(), n, rng)

		s1 := syndrome.NewLazy(F, syndrome.Mimic{})
		start := time.Now()
		ours, stats, err := core.Diagnose(nw, s1)
		oursTime := time.Since(start)
		s2 := syndrome.NewLazy(F, syndrome.Mimic{})
		start = time.Now()
		yangF, yStats, yerr := baseline.YangDiagnose(nw, s2)
		yangTime := time.Since(start)
		if err != nil || yerr != nil || !ours.Equal(F) || !yangF.Equal(F) {
			t.Rows = append(t.Rows, []string{nw.Name(), itoa(g.N()), "-", "-", "-", "-", "ERR"})
			continue
		}
		t.Rows = append(t.Rows, []string{
			nw.Name(), itoa(g.N()), fmtDur(oursTime), fmtDur(yangTime),
			itoa64(stats.TotalLookups), itoa64(yStats.Lookups),
			fmt.Sprintf("%.2fx", float64(yangTime)/float64(oursTime)),
		})
	}
	t.Notes = append(t.Notes,
		"reproduction finding: reimplemented with early exit and O(1) bookkeeping, Yang's cycle idea matches O(n·2^n) and comparable look-ups — the O(n²·2^n) the paper cites is the original's bookkeeping, not the idea",
		"Stewart's qualitative advantages stand: no Hamiltonian-cycle construction, applies beyond hypercubes, and works for Q5/Q6 where Yang's decomposition has too few long cycles")
	return t
}

// DiagnosabilityTable validates the diagnosability claims the paper
// builds on ([6,14,23,28]) by exact exhaustive computation on small
// instances (experiment E10).
func DiagnosabilityTable(full bool) *Table {
	t := &Table{
		ID:      "T11",
		Title:   "Exact diagnosability of small instances vs literature formulas",
		Columns: []string{"instance", "N", "computed δ", "formula δ", "agrees", "witness (if capped)"},
	}
	type row struct {
		nw      topology.Network
		tMax    int
		formula int
		remark  string
	}
	rows := []row{
		{topology.NewHypercube(3), 3, 3, "below [6] threshold N ≥ 2n+3"},
		{topology.NewHypercube(4), 5, 4, ""},
		{topology.NewCrossedCube(4), 5, 4, ""},
		{topology.NewTwistedNCube(4), 5, 4, ""},
		{topology.NewKAryNCube(3, 2), 4, 4, "excluded pair (3,2) in Theorem 4"},
		{topology.NewStar(4), 4, 3, ""},
		{topology.NewPancake(4), 4, 3, ""},
		{topology.NewNKStar(4, 2), 4, 3, ""},
	}
	if full {
		rows = append(rows,
			row{topology.NewTwistedCube(5), 5, 5, "substituted construction"},
			row{topology.NewCrossedCube(5), 5, 5, ""},
			row{topology.NewArrangement(5, 2), 6, 6, ""},
		)
	}
	for _, r := range rows {
		res, err := baseline.Diagnosability(r.nw.Graph(), r.tMax)
		if err != nil {
			t.Rows = append(t.Rows, []string{r.nw.Name(), itoa(r.nw.Graph().N()), "ERR", itoa(r.formula), "-", err.Error()})
			continue
		}
		agrees := "yes"
		if res.Delta != r.formula {
			agrees = "NO — " + r.remark
		} else if r.remark != "" {
			agrees = "yes (" + r.remark + ")"
		}
		wit := "-"
		if res.Delta < r.tMax {
			wit = fmt.Sprintf("%#x vs %#x", res.Witness1, res.Witness2)
		}
		t.Rows = append(t.Rows, []string{
			r.nw.Name(), itoa(r.nw.Graph().N()), itoa(res.Delta), itoa(r.formula), agrees, wit,
		})
	}
	t.Notes = append(t.Notes,
		"witness = a pair of indistinguishable fault sets of size δ+1 (bit masks)")
	return t
}

// DistributedComparison regenerates the Conclusions claim: the
// distributed Set_Builder wave beats a distributed extended-star
// algorithm on tests, messages and one-port time.
func DistributedComparison(full bool) *Table {
	t := &Table{
		ID:    "T12",
		Title: "Conclusions — distributed wave Set_Builder vs distributed Chiang–Tan on Q_n (δ = n faults)",
		Columns: []string{"instance", "protocol", "rounds", "messages", "records",
			"tests", "one-port time"},
	}
	dims := []int{7, 8, 9}
	if full {
		dims = append(dims, 10, 11)
	}
	rng := rand.New(rand.NewSource(13))
	for _, n := range dims {
		nw := topology.NewHypercube(n)
		g := nw.Graph()
		F := syndrome.RandomFaults(g.N(), n, rng)
		s := syndrome.NewLazy(F, syndrome.Mimic{})

		_, dstats, err := core.Diagnose(nw, s)
		if err != nil {
			continue
		}
		seed := dstats.Seed
		waveF, wstats, err := distsim.RunWave(g, s, seed, 10000)
		if err != nil || !waveF.Equal(F) {
			t.Rows = append(t.Rows, []string{nw.Name(), "wave", "-", "-", "-", "-", "ERR"})
			continue
		}
		stars := make([]*baseline.ExtendedStar, g.N())
		ok := true
		for x := range stars {
			es, err := baseline.HypercubeExtendedStar(n, int32(x))
			if err != nil {
				ok = false
				break
			}
			stars[x] = es
		}
		if !ok {
			continue
		}
		ctF, cstats, err := distsim.RunDistCT(g, s, stars, 10000)
		if err != nil || !ctF.Equal(F) {
			t.Rows = append(t.Rows, []string{nw.Name(), "dist-CT", "-", "-", "-", "-", "ERR"})
			continue
		}
		parts, perr := nw.Parts(n+1, n+1)
		if perr != nil {
			continue
		}
		colF, colStats, err := distsim.RunCentralCollect(g, s, n, parts, 10000)
		if err != nil || !colF.Equal(F) {
			t.Rows = append(t.Rows, []string{nw.Name(), "central", "-", "-", "-", "-", "ERR"})
			continue
		}
		t.Rows = append(t.Rows,
			[]string{nw.Name(), "wave", itoa(wstats.Rounds), itoa64(wstats.Messages),
				itoa64(wstats.Records), itoa64(wstats.Tests), itoa64(wstats.OnePortTime)},
			[]string{nw.Name(), "dist-CT", itoa(cstats.Rounds), itoa64(cstats.Messages),
				itoa64(cstats.Records), itoa64(cstats.Tests), itoa64(cstats.OnePortTime)},
			[]string{nw.Name(), "central", itoa(colStats.Rounds), itoa64(colStats.Messages),
				itoa64(colStats.Records), itoa64(colStats.Tests), itoa64(colStats.OnePortTime)},
		)
	}
	t.Notes = append(t.Notes,
		"wave tests are demand-driven (Section 6 economy); dist-CT always performs 3·n·N tests",
		"central = collect the complete syndrome at node 0, then diagnose sequentially — the baseline setting the Conclusions argue against")
	return t
}

// AblationCertificate quantifies gap G1: how the paper's literal
// contributor certificate behaves at the paper's part sizes versus
// enlarged parts, against the scan certificate.
func AblationCertificate(full bool) *Table {
	t := &Table{
		ID:      "A1",
		Title:   "Ablation — part certificates: paper contributor rule vs scan rule",
		Columns: []string{"instance", "certificate", "part size", "outcome", "total lkups"},
	}
	dims := []int{7, 8, 9, 10}
	if full {
		dims = append(dims, 11, 12)
	}
	for _, n := range dims {
		nw := topology.NewHypercube(n)
		d := nw.Diagnosability()

		for _, mode := range []struct {
			label   string
			strat   core.Strategy
			minSize int
		}{
			{"scan", core.StrategyScan, d + 1},
			{"paper δ+1", core.StrategyPaper, d + 1},
			{"paper 2δ+2", core.StrategyPaper, 2*d + 2},
		} {
			parts, err := nw.Parts(mode.minSize, d+1)
			if err != nil {
				t.Rows = append(t.Rows, []string{nw.Name(), mode.label, itoa(mode.minSize), "no partition", "-"})
				continue
			}
			r := measureDiagnoseWithParts(nw, parts, mode.strat)
			t.Rows = append(t.Rows, []string{nw.Name(), mode.label, itoa(len(parts[0].Nodes)), r[0], r[1]})
		}
	}
	t.Notes = append(t.Notes,
		"gap G1: at the paper's prescribed size the contributor count cannot exceed δ on subcube parts, so the paper rule fails; doubling the part size restores it")
	return t
}

func measureDiagnoseWithParts(nw topology.Network, parts []topology.Part, strat core.Strategy) [2]string {
	g := nw.Graph()
	rng := rand.New(rand.NewSource(4))
	F := syndrome.RandomFaults(g.N(), nw.Diagnosability(), rng)
	s := syndrome.NewLazy(F, syndrome.Mimic{})
	got, stats, err := core.DiagnoseOpts(nw, s, core.Options{Strategy: strat, Parts: parts})
	switch {
	case errors.Is(err, core.ErrNoHealthyPart):
		return [2]string{"certificate failed (G1)", itoa64(stats.TotalLookups)}
	case err != nil:
		return [2]string{"ERR: " + err.Error(), "-"}
	case !got.Equal(F):
		return [2]string{"MISDIAGNOSIS", "-"}
	default:
		return [2]string{"exact", itoa64(stats.TotalLookups)}
	}
}

// AblationParallel measures the concurrent part-certification speed-up.
func AblationParallel(full bool) *Table {
	t := &Table{
		ID:      "A2",
		Title:   "Ablation — sequential vs parallel part certification",
		Columns: []string{"instance", "workers", "time/diag", "speed-up"},
	}
	n := 12
	if full {
		n = 14
	}
	nw := topology.NewHypercube(n)
	var base time.Duration
	for _, workers := range []int{1, 2, 4, 8} {
		r := measureDiagnose(nw, syndrome.Mimic{}, 5, 1, core.Options{Workers: workers})
		if !r.ok {
			t.Rows = append(t.Rows, []string{nw.Name(), itoa(workers), "ERR: " + r.errText, "-"})
			continue
		}
		if workers == 1 {
			base = r.avgTime
		}
		t.Rows = append(t.Rows, []string{
			nw.Name(), itoa(workers), fmtDur(r.avgTime),
			fmt.Sprintf("%.2fx", float64(base)/float64(r.avgTime)),
		})
	}
	t.Notes = append(t.Notes,
		"speed-up saturates quickly: certification touches ≤ δ+1 parts and the final pass is sequential")
	return t
}

// AblationBehaviour measures sensitivity to the faulty-tester adversary.
func AblationBehaviour(full bool) *Table {
	t := &Table{
		ID:      "A3",
		Title:   "Ablation — faulty-tester behaviour sensitivity (Q_10, δ = 10 faults)",
		Columns: []string{"behaviour", "time/diag", "cert lkups", "final lkups", "status"},
	}
	n := 10
	if full {
		n = 12
	}
	nw := topology.NewHypercube(n)
	for _, b := range syndrome.AllBehaviors(2024) {
		r := measureDiagnose(nw, b, 5, 6, core.Options{})
		if !r.ok {
			t.Rows = append(t.Rows, []string{b.Name(), "-", "-", "-", "ERR: " + r.errText})
			continue
		}
		t.Rows = append(t.Rows, []string{
			b.Name(), fmtDur(r.avgTime), itoa64(r.certLookups), itoa64(r.finalLookups), "exact",
		})
	}
	t.Notes = append(t.Notes,
		"correctness is behaviour-independent; only the certification cost varies slightly")
	return t
}
