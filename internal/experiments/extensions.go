package experiments

import (
	"fmt"
	"math/rand"

	"comparisondiag/internal/campaign"
	"comparisondiag/internal/core"
	"comparisondiag/internal/schedule"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// TestScheduling regenerates the Section 6 test-performance discussion
// quantitatively: scheduling only the tests Diagnose demands into
// one-port conflict-free slots versus collecting the complete syndrome.
func TestScheduling(full bool) *Table {
	t := &Table{
		ID:    "T13",
		Title: "Section 6 — one-port test scheduling: demand-driven vs full syndrome",
		Columns: []string{"instance", "demand tests", "demand slots", "full tests",
			"full slots", "slot ratio", "LB demand/full"},
	}
	instances := []topology.Network{
		topology.NewHypercube(8),
		topology.NewHypercube(10),
		topology.NewCrossedCube(9),
		topology.NewStar(7),
		topology.NewKAryNCube(4, 4),
	}
	if full {
		instances = append(instances, topology.NewHypercube(12), topology.NewPancake(8))
	}
	rng := rand.New(rand.NewSource(5))
	for _, nw := range instances {
		g := nw.Graph()
		F := syndrome.RandomFaults(g.N(), nw.Diagnosability(), rng)
		rec := schedule.NewRecorder(syndrome.NewLazy(F, syndrome.Mimic{}))
		got, _, err := core.Diagnose(nw, rec)
		if err != nil || !got.Equal(F) {
			t.Rows = append(t.Rows, []string{nw.Name(), "-", "-", "-", "-", "-", "ERR"})
			continue
		}
		demand := schedule.Greedy(rec.Tests(), g.N())
		fullTests := schedule.FullSyndromeTests(g)
		fullPlan := schedule.Greedy(fullTests, g.N())
		t.Rows = append(t.Rows, []string{
			nw.Name(), itoa(demand.Tests), itoa(demand.Rounds()),
			itoa(fullPlan.Tests), itoa(fullPlan.Rounds()),
			fmt.Sprintf("%.4f", float64(demand.Rounds())/float64(fullPlan.Rounds())),
			fmt.Sprintf("%d/%d", schedule.LowerBound(rec.Tests(), g.N()),
				schedule.LowerBound(fullTests, g.N())),
		})
	}
	t.Notes = append(t.Notes,
		"a comparison test occupies tester and both subjects for one slot; plans are greedy first-fit, validated conflict-free",
		"slot ratio ≪ 1: performing only the demanded tests also wins wall-clock on the one-port machine, the §6 point")
	return t
}

// BeyondGuarantee sweeps fault counts past δ and reports how the
// algorithm degrades: exact, refused (typed error) or silent (wrong set
// without warning). Within δ the guarantee requires a perfect column.
func BeyondGuarantee(full bool) *Table {
	t := &Table{
		ID:      "T14",
		Title:   "Beyond the guarantee — fault counts past δ (mimic adversary)",
		Columns: []string{"instance", "faults", "exact", "refused", "silent"},
	}
	trials := 20
	if full {
		trials = 100
	}
	for _, nw := range []topology.Network{topology.NewHypercube(8), topology.NewStar(6)} {
		delta := nw.Diagnosability()
		kernel := "generic"
		points := campaign.Sweep(nw, campaign.Config{
			MinFaults: delta - 1,
			MaxFaults: delta + 6,
			Trials:    trials,
			Seed:      11,
			OnEngine:  func(e *core.Engine) { kernel = e.KernelName() },
		})
		t.Notes = append(t.Notes, fmt.Sprintf("%s served through engine kernel=%s", nw.Name(), kernel))
		for _, p := range points {
			marker := ""
			if p.Faults <= delta && p.Exact != p.Trials {
				marker = "  !! GUARANTEE VIOLATED"
			}
			t.Rows = append(t.Rows, []string{
				nw.Name(), itoa(p.Faults),
				fmt.Sprintf("%d/%d", p.Exact, p.Trials),
				itoa(p.Refused), itoa(p.Silent) + marker,
			})
		}
	}
	t.Notes = append(t.Notes,
		"within δ the exact column must be perfect (tested); beyond δ refusals are the desired failure mode",
		"silent misdiagnoses beyond δ are possible in principle (an all-faulty part can self-certify once |F| > δ) — the sweep measures how rare they are")
	return t
}
