package distsim

import (
	"comparisondiag/internal/bitset"
	"comparisondiag/internal/core"
	"comparisondiag/internal/graph"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// kindSyndromeUp carries collected test results towards node 0.
const kindSyndromeUp uint8 = 32

// CentralCollect models the setting the paper contrasts itself with in
// the Conclusions: a *centralised* diagnoser. Every node performs its
// complete set of comparison tests, the results are convergecast up a
// BFS tree to node 0 (each result is one payload record on every hop it
// travels), and the centre then runs the sequential algorithm locally.
//
// The interesting output is the ledger: the whole syndrome must cross
// the network before diagnosis can even start, whereas the wave
// protocol tests and moves only what the diagnosis demands.
type CentralCollect struct {
	e *Engine
	g *graph.Graph
	s syndrome.Syndrome

	parent    []int32
	children  []int32
	remaining []int32
	payload   [][]int32
	phase     int

	// Collected is the number of test results assembled at node 0.
	Collected int
	done      bool
}

// NewCentralCollect prepares the collection protocol.
func NewCentralCollect(e *Engine, g *graph.Graph, s syndrome.Syndrome) *CentralCollect {
	// OnRound runs concurrently across nodes, so take a view that
	// tolerates concurrent Test calls (striped look-up counting).
	s = syndrome.ForConcurrent(s)
	n := g.N()
	c := &CentralCollect{
		e: e, g: g, s: s,
		parent:    make([]int32, n),
		children:  make([]int32, n),
		remaining: make([]int32, n),
		payload:   make([][]int32, n),
	}
	dist := g.BFSFrom(0, nil)
	for u := int32(0); int(u) < n; u++ {
		c.parent[u] = -1
		if u == 0 || dist[u] < 0 {
			continue
		}
		for _, v := range g.Neighbors(u) {
			if dist[v] == dist[u]-1 {
				c.parent[u] = v
				break
			}
		}
	}
	for u := 0; u < n; u++ {
		if p := c.parent[u]; p >= 0 {
			c.children[p]++
		}
	}
	return c
}

// localVector performs node u's complete test set and returns the
// results as payload records.
func (c *CentralCollect) localVector(u int32) []int32 {
	adj := c.g.Neighbors(u)
	out := make([]int32, 0, len(adj)*(len(adj)-1)/2)
	for i := 0; i < len(adj); i++ {
		for j := i + 1; j < len(adj); j++ {
			out = append(out, int32(c.s.Test(u, adj[i], adj[j])))
		}
	}
	c.e.CountTests(int64(len(out)))
	return out
}

// Init implements Program: every node performs its tests; leaves start
// the convergecast at once.
func (c *CentralCollect) Init() []Message {
	var out []Message
	for u := int32(0); int(u) < c.g.N(); u++ {
		c.payload[u] = c.localVector(u)
		c.remaining[u] = c.children[u]
	}
	for u := int32(1); int(u) < c.g.N(); u++ {
		if c.remaining[u] == 0 && c.parent[u] >= 0 {
			out = append(out, Message{From: u, To: c.parent[u], Kind: kindSyndromeUp, List: c.payload[u]})
		}
	}
	if c.g.N() == 1 {
		c.finish()
	}
	return out
}

// OnRound implements Program.
func (c *CentralCollect) OnRound(u int32, in []Message) []Message {
	var out []Message
	for _, m := range in {
		if m.Kind != kindSyndromeUp {
			continue
		}
		c.payload[u] = append(c.payload[u], m.List...)
		c.remaining[u]--
		if c.remaining[u] == 0 {
			if u == 0 {
				c.finish()
			} else {
				out = append(out, Message{From: u, To: c.parent[u], Kind: kindSyndromeUp, List: c.payload[u]})
			}
		}
	}
	return out
}

func (c *CentralCollect) finish() {
	c.Collected = len(c.payload[0])
	c.done = true
}

// OnQuiet implements Program.
func (c *CentralCollect) OnQuiet() []Message { return nil }

// RunCentralCollect executes the collection and then the sequential
// diagnosis at the centre, returning the fault set, the collection
// ledger, and the number of syndrome entries assembled centrally.
func RunCentralCollect(g *graph.Graph, s syndrome.Syndrome, delta int, parts []topology.Part, maxRounds int) (*bitset.Set, *Stats, error) {
	e := NewEngine(g, 0)
	c := NewCentralCollect(e, g, s)
	stats, err := e.Run(c, maxRounds)
	if err != nil {
		return nil, stats, err
	}
	// The centre now holds the complete syndrome; run the sequential
	// procedure (its further look-ups are central, not network traffic).
	// This is a one-shot diagnosis per collection wave, so the free
	// function with its process-wide scratch pool is the right shape; a
	// centre serving many waves against one graph binds the persistent
	// CollectServer instead (engine + campaign.Runtime + result cache).
	faults, _, err := core.DiagnoseGraph(g, delta, parts, s, core.Options{})
	if err != nil {
		return nil, stats, err
	}
	return faults, stats, nil
}
