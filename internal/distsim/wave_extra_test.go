package distsim

import (
	"math/rand"
	"testing"

	"comparisondiag/internal/core"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// TestWaveOnNonHypercubeFamilies: the wave protocol is generic — run it
// on a torus and a star graph.
func TestWaveOnNonHypercubeFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, nw := range []topology.Network{
		topology.NewKAryNCube(4, 3),
		topology.NewStar(6),
	} {
		g := nw.Graph()
		F := syndrome.RandomFaults(g.N(), nw.Diagnosability(), rng)
		s := syndrome.NewLazy(F, syndrome.Mimic{})
		_, stats, err := core.Diagnose(nw, s)
		if err != nil {
			t.Fatalf("%s: %v", nw.Name(), err)
		}
		got, wstats, err := RunWave(g, s, stats.Seed, 10000)
		if err != nil {
			t.Fatalf("%s: %v", nw.Name(), err)
		}
		if !got.Equal(F) {
			t.Fatalf("%s: wave misdiagnosis", nw.Name())
		}
		if wstats.OnePortTime == 0 || wstats.Records < wstats.Messages {
			t.Fatalf("%s: implausible stats %+v", nw.Name(), wstats)
		}
	}
}

// TestWaveZeroFaults: the wave must cover the whole machine and report
// an empty fault set.
func TestWaveZeroFaults(t *testing.T) {
	nw := topology.NewHypercube(6)
	g := nw.Graph()
	s := syndrome.NewLazy(syndrome.RandomFaults(g.N(), 0, rand.New(rand.NewSource(1))), nil)
	got, stats, err := RunWave(g, s, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != 0 {
		t.Fatalf("phantom faults %v", got)
	}
	// Growth rounds ≈ eccentricity; convergecast adds about as many.
	if stats.Rounds < 6 {
		t.Fatalf("implausibly few rounds: %d", stats.Rounds)
	}
}

// TestWaveTestEconomy: the wave performs O(Δ·|U|) tests — each joining
// node tests at most its degree-minus-parent neighbours, because unlike
// the sequential pass it cannot know which neighbours already joined.
// That is still demand-driven (nothing outside the healthy region plus
// its boundary is ever tested), just with a Δ-factor redundancy; the
// bound here pins both sides.
func TestWaveTestEconomy(t *testing.T) {
	nw := topology.NewHypercube(8)
	g := nw.Graph()
	F := syndrome.RandomFaults(g.N(), 8, rand.New(rand.NewSource(2)))
	s := syndrome.NewLazy(F, syndrome.Mimic{})
	_, stats, err := core.Diagnose(nw, s)
	if err != nil {
		t.Fatal(err)
	}
	_, wstats, err := RunWave(g, s, stats.Seed, 10000)
	if err != nil {
		t.Fatal(err)
	}
	maxDeg := int64(g.MaxDegree())
	healthy := int64(stats.HealthyCount)
	upper := healthy*(maxDeg-1) + maxDeg*(maxDeg-1)/2 // joins + root pair scan
	if wstats.Tests > upper {
		t.Fatalf("wave tests %d exceed the Δ|U| bound %d", wstats.Tests, upper)
	}
	// And it must never regress below the sequential demand set.
	if wstats.Tests < stats.FinalLookups/2 {
		t.Fatalf("wave tests %d implausibly below sequential %d", wstats.Tests, stats.FinalLookups)
	}
}

// TestEngineRecordsAccounting: Records counts payload items (1 + list
// length per message).
func TestEngineRecordsAccounting(t *testing.T) {
	g := ringGraph(4)
	e := NewEngine(g, 1)
	p := &listProgram{}
	stats, err := e.Run(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	// One init message with 3 list items (4 records), one reply with no
	// list (1 record).
	if stats.Records != 5 {
		t.Fatalf("records = %d, want 5", stats.Records)
	}
	if stats.Messages != 2 {
		t.Fatalf("messages = %d, want 2", stats.Messages)
	}
}

type listProgram struct{ replied bool }

func (p *listProgram) Init() []Message {
	return []Message{{From: 0, To: 1, Kind: 9, List: []int32{7, 8, 9}}}
}

func (p *listProgram) OnRound(u int32, in []Message) []Message {
	if u == 1 && !p.replied {
		p.replied = true
		return []Message{{From: 1, To: 0, Kind: 10}}
	}
	return nil
}

func (p *listProgram) OnQuiet() []Message { return nil }
