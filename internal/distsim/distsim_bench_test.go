package distsim

import (
	"math/rand"
	"testing"

	"comparisondiag/internal/baseline"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

func BenchmarkWaveQ10(b *testing.B) {
	nw := topology.NewHypercube(10)
	g := nw.Graph()
	F := syndrome.RandomFaults(g.N(), 10, rand.New(rand.NewSource(1)))
	s := syndrome.NewLazy(F, syndrome.Mimic{})
	seed := int32(0)
	for F.Contains(int(seed)) {
		seed++
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, _, err := RunWave(g, s, seed, 10000)
		if err != nil || !got.Equal(F) {
			b.Fatal("wave failed")
		}
	}
}

func BenchmarkDistCTQ8(b *testing.B) {
	n := 8
	nw := topology.NewHypercube(n)
	g := nw.Graph()
	stars := make([]*baseline.ExtendedStar, g.N())
	for x := range stars {
		es, err := baseline.HypercubeExtendedStar(n, int32(x))
		if err != nil {
			b.Fatal(err)
		}
		stars[x] = es
	}
	F := syndrome.RandomFaults(g.N(), n, rand.New(rand.NewSource(2)))
	s := syndrome.NewLazy(F, syndrome.Mimic{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, _, err := RunDistCT(g, s, stars, 10000)
		if err != nil || !got.Equal(F) {
			b.Fatal("dist-CT failed")
		}
	}
}
