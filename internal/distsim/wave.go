package distsim

import (
	"errors"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/graph"
	"comparisondiag/internal/syndrome"
)

// Message kinds of the wave protocol.
const (
	kindJoin   uint8 = iota // A = sender is the prospective parent
	kindChild               // child announcement to the parent
	kindReport              // convergecast: List carries accused nodes
)

// WaveSetBuilder is the distributed Set_Builder of the paper's
// Conclusions. A certified-healthy seed starts a join wave: each newly
// joined node tests its remaining neighbours against its parent and
// invites those that test 0; the invitations only ever reach healthy
// nodes, so the joined set is exactly the healthy component of the seed.
// A convergecast up the join tree then collects the accused neighbours —
// the fault set N of Theorem 1 — at the seed.
//
// Following the paper's modelling discussion, the protocol itself runs
// on the reliable communication layer; only the processors (the tested
// entities) are faulty. Tests are performed on demand, which is the
// distributed counterpart of Section 6's look-up economy.
type WaveSetBuilder struct {
	e    *Engine
	g    *graph.Graph
	s    syndrome.Syndrome
	seed int32

	joined    []bool
	parent    []int32
	children  []int32
	accused   [][]int32
	collected [][]int32
	remaining []int32
	phase     int

	// Result is the fault set gathered at the seed after Run.
	Result *bitset.Set
	// Depth is the growth phase length in rounds.
	Depth int
}

// NewWaveSetBuilder prepares the protocol on g with the given certified
// healthy seed.
func NewWaveSetBuilder(e *Engine, g *graph.Graph, s syndrome.Syndrome, seed int32) *WaveSetBuilder {
	// OnRound runs concurrently across nodes, so take a view that
	// tolerates concurrent Test calls (striped look-up counting).
	s = syndrome.ForConcurrent(s)
	n := g.N()
	w := &WaveSetBuilder{
		e: e, g: g, s: s, seed: seed,
		joined:    make([]bool, n),
		parent:    make([]int32, n),
		children:  make([]int32, n),
		accused:   make([][]int32, n),
		collected: make([][]int32, n),
		remaining: make([]int32, n),
	}
	for i := range w.parent {
		w.parent[i] = -1
	}
	return w
}

// Init implements Program: the seed performs its pair scan and invites
// the certified neighbours.
func (w *WaveSetBuilder) Init() []Message {
	w.joined[w.seed] = true
	adj := w.g.Neighbors(w.seed)
	certified := bitset.New(w.g.N())
	var tests int64
	for i := 0; i < len(adj); i++ {
		for j := i + 1; j < len(adj); j++ {
			if certified.Contains(int(adj[i])) && certified.Contains(int(adj[j])) {
				continue
			}
			tests++
			if w.s.Test(w.seed, adj[i], adj[j]) == 0 {
				certified.Add(int(adj[i]))
				certified.Add(int(adj[j]))
			}
		}
	}
	w.e.CountTests(tests)
	var out []Message
	for _, v := range adj {
		if certified.Contains(int(v)) {
			out = append(out, Message{From: w.seed, To: v, Kind: kindJoin})
		} else {
			w.accused[w.seed] = append(w.accused[w.seed], v)
		}
	}
	return out
}

// OnRound implements Program.
func (w *WaveSetBuilder) OnRound(u int32, in []Message) []Message {
	var out []Message
	// All inviters in this inbox are already-joined healthy nodes (an
	// invitation implies a 0-test by a healthy tester), so u need not
	// re-test them — a free reduction of the test volume.
	var inviters map[int32]bool
	for _, m := range in {
		if m.Kind == kindJoin {
			if inviters == nil {
				inviters = make(map[int32]bool, 4)
			}
			inviters[m.From] = true
		}
	}
	for _, m := range in {
		switch m.Kind {
		case kindJoin:
			if w.joined[u] {
				continue
			}
			w.joined[u] = true
			w.parent[u] = m.From // inbox sorted: least inviter wins
			out = append(out, Message{From: u, To: m.From, Kind: kindChild})
			var tests int64
			for _, x := range w.g.Neighbors(u) {
				if x == w.parent[u] || inviters[x] {
					continue
				}
				tests++
				if w.s.Test(u, x, w.parent[u]) == 0 {
					out = append(out, Message{From: u, To: x, Kind: kindJoin})
				} else {
					w.accused[u] = append(w.accused[u], x)
				}
			}
			w.e.CountTests(tests)
		case kindChild:
			w.children[u]++
		case kindReport:
			w.collected[u] = append(w.collected[u], m.List...)
			w.remaining[u]--
			if w.remaining[u] == 0 {
				out = append(out, w.reportUp(u)...)
			}
		}
	}
	return out
}

// reportUp merges u's own accusations with its children's and forwards
// them towards the seed; at the seed it finalises the result.
func (w *WaveSetBuilder) reportUp(u int32) []Message {
	list := append(append([]int32{}, w.accused[u]...), w.collected[u]...)
	if u == w.seed {
		w.finalize(list)
		return nil
	}
	return []Message{{From: u, To: w.parent[u], Kind: kindReport, List: list}}
}

func (w *WaveSetBuilder) finalize(list []int32) {
	w.Result = bitset.New(w.g.N())
	for _, x := range list {
		w.Result.Add(int(x))
	}
}

// OnQuiet implements Program: when the growth wave has stabilised, start
// the convergecast from the leaves of the join tree.
func (w *WaveSetBuilder) OnQuiet() []Message {
	if w.phase != 0 {
		return nil
	}
	w.phase = 1
	var out []Message
	for u := int32(0); int(u) < w.g.N(); u++ {
		if !w.joined[u] {
			continue
		}
		w.remaining[u] = w.children[u]
		if w.remaining[u] == 0 {
			out = append(out, w.reportUp(u)...)
		}
	}
	return out
}

// ErrSeedNotHealthy reports a protocol run that never produced a result
// (e.g. the seed was faulty and no convergecast completed).
var ErrSeedNotHealthy = errors.New("distsim: wave produced no result; was the seed certified healthy?")

// RunWave executes the full distributed Set_Builder diagnosis and
// returns the fault set together with the engine statistics.
func RunWave(g *graph.Graph, s syndrome.Syndrome, seed int32, maxRounds int) (*bitset.Set, *Stats, error) {
	e := NewEngine(g, 0)
	w := NewWaveSetBuilder(e, g, s, seed)
	stats, err := e.Run(w, maxRounds)
	if err != nil {
		return nil, stats, err
	}
	if w.Result == nil {
		return nil, stats, ErrSeedNotHealthy
	}
	return w.Result, stats, nil
}
