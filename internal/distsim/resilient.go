package distsim

import (
	"slices"

	"comparisondiag/internal/graph"
	"comparisondiag/internal/syndrome"
)

const (
	// kindVecUp carries one source node's complete test vector one hop
	// up the BFS tree (A = source id, List = vector).
	kindVecUp uint8 = 40
	// kindVecAck acknowledges a kindVecUp hop (A = source id).
	kindVecAck uint8 = 41
)

// maxBackoffShift caps the exponential retransmission backoff.
const maxBackoffShift = 8

// ResilientCollect is CentralCollect hardened against a faulty network:
// per-source test vectors travel hop-by-hop up the BFS tree under a
// stop-and-wait acknowledgement discipline, lost or delayed hops time
// out and retransmit with exponential backoff, and a hop that exhausts
// its retry budget gives its record up instead of stalling the wave —
// the centre then simply reports those sources as Missing and the
// caller degrades the diagnosis (see CollectServer.ReplayFaulty).
//
// Timeouts are modelled on the engine's quiescence signal: OnQuiet
// fires exactly when nothing is in flight, i.e. when every unacked
// sender's message (or its ack) has been lost, so each OnQuiet is one
// timeout epoch. Backoff parks a sender for 2^attempts epochs; since
// parked epochs with no other traffic carry no information, the
// protocol fast-forwards them by the minimum pending skip, keeping
// simulated rounds proportional to actual traffic. The protocol is
// deterministic: state transitions depend only on delivered messages
// (dedup makes duplicates idempotent) and epoch order, so a replayed
// fault plan reproduces the run exactly.
type ResilientCollect struct {
	e       *Engine
	g       *graph.Graph
	s       syndrome.Syndrome
	retries int

	parent []int32

	// Per-node forwarding state: a FIFO of records still to forward,
	// the in-flight record awaiting ack (index 0 of queue), the
	// retransmission attempt count and the backoff park counter.
	queue    [][]rec
	inflight []bool
	attempts []int
	skip     []int
	seen     []map[int32]bool // per node: source ids already forwarded/acked

	collected map[int32][]int32 // at the root: source id -> vector
	givenUp   int64             // records abandoned after the retry budget
}

// rec is one source's vector in transit.
type rec struct {
	src int32
	vec []int32
}

// NewResilientCollect prepares the protocol. retries bounds how often a
// hop retransmits one record before giving it up (≤ 0 means no
// retransmissions: first timeout abandons the record).
func NewResilientCollect(e *Engine, g *graph.Graph, s syndrome.Syndrome, retries int) *ResilientCollect {
	s = syndrome.ForConcurrent(s)
	n := g.N()
	c := &ResilientCollect{
		e: e, g: g, s: s, retries: retries,
		parent:    make([]int32, n),
		queue:     make([][]rec, n),
		inflight:  make([]bool, n),
		attempts:  make([]int, n),
		skip:      make([]int, n),
		seen:      make([]map[int32]bool, n),
		collected: make(map[int32][]int32, n),
	}
	dist := g.BFSFrom(0, nil)
	for u := int32(0); int(u) < n; u++ {
		c.parent[u] = -1
		c.seen[u] = make(map[int32]bool)
		if u == 0 || dist[u] < 0 {
			continue
		}
		for _, v := range g.Neighbors(u) {
			if dist[v] == dist[u]-1 {
				c.parent[u] = v
				break
			}
		}
	}
	return c
}

// localVector is node u's complete comparison-test set (see
// CentralCollect.localVector).
func (c *ResilientCollect) localVector(u int32) []int32 {
	adj := c.g.Neighbors(u)
	out := make([]int32, 0, len(adj)*(len(adj)-1)/2)
	for i := 0; i < len(adj); i++ {
		for j := i + 1; j < len(adj); j++ {
			out = append(out, int32(c.s.Test(u, adj[i], adj[j])))
		}
	}
	c.e.CountTests(int64(len(out)))
	return out
}

// send emits node u's head-of-queue record to its parent.
func (c *ResilientCollect) send(u int32) Message {
	c.inflight[u] = true
	r := c.queue[u][0]
	return Message{From: u, To: c.parent[u], Kind: kindVecUp, A: r.src, List: r.vec}
}

// Init implements Program: every node tests, the root self-collects,
// and every other node starts forwarding its own vector.
func (c *ResilientCollect) Init() []Message {
	var out []Message
	for u := int32(0); int(u) < c.g.N(); u++ {
		vec := c.localVector(u)
		if u == 0 {
			c.collected[0] = vec
			continue
		}
		if c.parent[u] < 0 {
			continue
		}
		c.seen[u][u] = true
		c.queue[u] = append(c.queue[u], rec{src: u, vec: vec})
		out = append(out, c.send(u))
	}
	return out
}

// OnRound implements Program.
func (c *ResilientCollect) OnRound(u int32, in []Message) []Message {
	var out []Message
	for _, m := range in {
		switch m.Kind {
		case kindVecUp:
			// Always ack — a duplicate means our previous ack was lost
			// (or the sender retransmitted into a delay), and only the
			// ack releases the sender.
			out = append(out, Message{From: u, To: m.From, Kind: kindVecAck, A: m.A})
			if c.seen[u][m.A] {
				break // duplicate record: idempotent
			}
			c.seen[u][m.A] = true
			if u == 0 {
				c.collected[m.A] = m.List
				break
			}
			c.queue[u] = append(c.queue[u], rec{src: m.A, vec: m.List})
			if !c.inflight[u] {
				c.attempts[u], c.skip[u] = 0, 0
				out = append(out, c.send(u))
			}
		case kindVecAck:
			if c.inflight[u] && c.queue[u][0].src == m.A {
				c.inflight[u] = false
				c.queue[u] = c.queue[u][1:]
				c.attempts[u], c.skip[u] = 0, 0
				if len(c.queue[u]) > 0 {
					out = append(out, c.send(u))
				}
			}
		}
	}
	return out
}

// OnQuiet implements Program: every node still awaiting an ack has
// timed out. Backoff parks are fast-forwarded by the minimum pending
// skip; senders coming off park either retransmit (doubling their
// park) or, past the retry budget, abandon the record and move on.
func (c *ResilientCollect) OnQuiet() []Message {
	var waiting []int32
	minSkip := -1
	for u := int32(0); int(u) < c.g.N(); u++ {
		if c.inflight[u] {
			waiting = append(waiting, u)
			if minSkip < 0 || c.skip[u] < minSkip {
				minSkip = c.skip[u]
			}
		}
	}
	if len(waiting) == 0 {
		return nil // collection over: whatever the root has is the wave
	}
	var out []Message
	for _, u := range waiting {
		c.skip[u] -= minSkip
		if c.skip[u] > 0 {
			continue // still parked relative to this epoch
		}
		if c.attempts[u] >= c.retries {
			// Budget exhausted: give the record up and move on to the
			// next one (fresh budget), keeping the wave flowing.
			c.givenUp++
			c.inflight[u] = false
			c.queue[u] = c.queue[u][1:]
			c.attempts[u], c.skip[u] = 0, 0
			if len(c.queue[u]) > 0 {
				out = append(out, c.send(u))
			}
			continue
		}
		c.attempts[u]++
		shift := c.attempts[u]
		if shift > maxBackoffShift {
			shift = maxBackoffShift
		}
		c.skip[u] = 1 << shift
		out = append(out, c.send(u))
	}
	return out
}

// Missing returns, ascending, the node ids whose test vectors never
// reached the centre. Empty means the collection completed in full.
func (c *ResilientCollect) Missing() []int32 {
	var missing []int32
	for u := int32(0); int(u) < c.g.N(); u++ {
		if _, ok := c.collected[u]; !ok {
			missing = append(missing, u)
		}
	}
	slices.Sort(missing)
	return missing
}

// GivenUp counts records abandoned after exhausting their retry budget
// (over all hops, so one source crossing k failed hops counts once per
// abandoning hop).
func (c *ResilientCollect) GivenUp() int64 { return c.givenUp }
