package distsim

import (
	"math"
	"math/rand"
	"slices"
)

// FaultPlan describes deterministic network-fault injection for one
// protocol run: message drops, duplicates and delays, permanently slow
// links, and node crashes mid-wave. All randomness flows from a single
// generator seeded by Seed and consumed in the engine's deterministic
// delivery order, so the same plan against the same program replays the
// injection schedule — and therefore the whole run: every statistic,
// every event — bit-identically.
type FaultPlan struct {
	// Seed seeds the injection generator.
	Seed uint64
	// Drop is the probability a sent message is lost in transit.
	Drop float64
	// Duplicate is the probability a delivered message arrives twice in
	// the same round.
	Duplicate float64
	// Delay is the probability a message is held back; a delayed
	// message arrives 1 + rand(MaxDelay) rounds late (MaxDelay ≤ 1
	// means exactly one round late).
	Delay    float64
	MaxDelay int
	// SlowLinks adds a fixed Extra rounds of latency to every message
	// crossing the listed undirected links (on top of any probabilistic
	// delay).
	SlowLinks []SlowLink
	// Crashes silences nodes mid-wave: from its Round onward a crashed
	// node neither sends nor receives. Nothing reroutes around it —
	// whatever depended on it must time out and degrade.
	Crashes []Crash
}

// SlowLink marks the undirected link {U, V} as slow by Extra rounds.
type SlowLink struct {
	U, V  int32
	Extra int
}

// Crash silences Node from round Round onward (or until a scheduled
// Rejoin, see RecoveryPlan).
type Crash struct {
	Node  int32
	Round int
}

// Rejoin returns Node to service from round Round onward: the node's
// crash window becomes [Crash.Round, Rejoin.Round). A rejoin at or
// before the crash round cancels the crash entirely; a rejoined node
// resumes sending and receiving with whatever protocol state it held —
// messages silenced while it was down stay lost, and it is up to the
// protocol (retransmission, acks) to close the gap.
type Rejoin struct {
	Node  int32
	Round int
}

// RecoveryPlan schedules node re-joins against a FaultPlan's crashes.
// It is the gain-direction companion of FaultPlan.Crashes: the fault
// plan takes structure away, the recovery plan hands it back, and both
// replay deterministically from the same seed and traffic.
type RecoveryPlan struct {
	Rejoins []Rejoin
}

// FaultStats counts what a plan actually did to one run.
type FaultStats struct {
	Dropped      int64 // messages lost in transit
	Duplicated   int64 // extra copies delivered
	Delayed      int64 // messages held back (incl. slow-link latency)
	CrashDropped int64 // messages silenced by a crashed sender/receiver
	Rejoined     int64 // crash windows closed by a recovery plan
}

// FaultEvent is one injection, in the order the engine performed them —
// the replay-comparison ledger.
type FaultEvent struct {
	Round    int // round the affected message was sent (crash-recv: delivery round)
	Kind     string
	From, To int32
	Delay    int // rounds of added latency for "delay" events
}

// injector holds a fault plan's runtime state inside an Engine. It is
// only touched from the engine's single-threaded delivery sections, so
// the generator's consumption order is deterministic.
type injector struct {
	plan   *FaultPlan
	rng    *rand.Rand
	crash  []int // crash round per node, MaxInt when never
	rejoin []int // rejoin round per node, MaxInt when never
	slow   map[int64]int
	future map[int][]Message // delayed deliveries keyed by arrival round
	stats  FaultStats
	events []FaultEvent

	// rejoins is the effective re-join schedule (crash windows that
	// actually close), Round-ascending, consumed by takeDue to stamp the
	// event ledger exactly once per re-join.
	rejoins    []Rejoin
	nextRejoin int
}

// down reports whether node is inside its crash window at round.
func (inj *injector) down(node int32, round int) bool {
	return inj.crash[node] <= round && round < inj.rejoin[node]
}

// SetFaultPlan arms the engine with a fault plan. Must be called before
// Run; a nil plan disarms injection (the default).
func (e *Engine) SetFaultPlan(p *FaultPlan) {
	if p == nil {
		e.inj = nil
		return
	}
	inj := &injector{
		plan:   p,
		rng:    rand.New(rand.NewSource(int64(p.Seed))),
		crash:  make([]int, e.g.N()),
		rejoin: make([]int, e.g.N()),
		future: make(map[int][]Message),
	}
	for i := range inj.crash {
		inj.crash[i] = math.MaxInt
		inj.rejoin[i] = math.MaxInt
	}
	for _, c := range p.Crashes {
		if int(c.Node) < len(inj.crash) && c.Round < inj.crash[c.Node] {
			inj.crash[c.Node] = c.Round
		}
	}
	if len(p.SlowLinks) > 0 {
		inj.slow = make(map[int64]int, len(p.SlowLinks))
		for _, l := range p.SlowLinks {
			inj.slow[linkKey(l.U, l.V)] = l.Extra
		}
	}
	e.inj = inj
}

// SetRecoveryPlan schedules node re-joins against the armed fault
// plan: each listed node's crash window becomes [crash, rejoin) instead
// of [crash, ∞). Must be called after SetFaultPlan (SetFaultPlan resets
// all rejoins); with no fault plan armed, or a nil plan, it is a no-op.
// A rejoin at or before the node's crash round cancels the crash.
func (e *Engine) SetRecoveryPlan(rec *RecoveryPlan) {
	inj := e.inj
	if inj == nil || rec == nil {
		return
	}
	for _, rj := range rec.Rejoins {
		if int(rj.Node) < len(inj.rejoin) && rj.Round < inj.rejoin[rj.Node] {
			inj.rejoin[rj.Node] = rj.Round
		}
	}
	inj.rejoins = inj.rejoins[:0]
	for u := range inj.rejoin {
		if inj.rejoin[u] < math.MaxInt && inj.crash[u] < inj.rejoin[u] {
			inj.rejoins = append(inj.rejoins, Rejoin{Node: int32(u), Round: inj.rejoin[u]})
		}
	}
	slices.SortStableFunc(inj.rejoins, func(a, b Rejoin) int { return a.Round - b.Round })
	inj.nextRejoin = 0
}

// FaultStats returns the injection counters of the last Run (zero
// without a plan).
func (e *Engine) FaultStats() FaultStats {
	if e.inj == nil {
		return FaultStats{}
	}
	return e.inj.stats
}

// FaultEvents returns the injection ledger of the last Run in execution
// order (nil without a plan). The returned slice is the engine's own.
func (e *Engine) FaultEvents() []FaultEvent {
	if e.inj == nil {
		return nil
	}
	return e.inj.events
}

func linkKey(u, v int32) int64 {
	if u > v {
		u, v = v, u
	}
	return int64(u)<<32 | int64(uint32(v))
}

// inject filters a just-produced batch through the plan: sender-crash
// silencing, drops, duplication, and (slow-link plus probabilistic)
// delays. sendRound is the round the batch was produced in; undelayed
// messages deliver at sendRound+1, delayed ones are parked in future.
// Without a plan the batch passes through untouched.
func (e *Engine) inject(batch []Message, sendRound int) []Message {
	inj := e.inj
	if inj == nil {
		return batch
	}
	p := inj.plan
	out := make([]Message, 0, len(batch))
	for _, m := range batch {
		if inj.down(m.From, sendRound) {
			inj.stats.CrashDropped++
			inj.events = append(inj.events, FaultEvent{Round: sendRound, Kind: "crash-send", From: m.From, To: m.To})
			continue
		}
		if p.Drop > 0 && inj.rng.Float64() < p.Drop {
			inj.stats.Dropped++
			inj.events = append(inj.events, FaultEvent{Round: sendRound, Kind: "drop", From: m.From, To: m.To})
			continue
		}
		delay := 0
		if inj.slow != nil {
			delay += inj.slow[linkKey(m.From, m.To)]
		}
		if p.Delay > 0 && inj.rng.Float64() < p.Delay {
			extra := 1
			if p.MaxDelay > 1 {
				extra += inj.rng.Intn(p.MaxDelay)
			}
			delay += extra
		}
		dup := p.Duplicate > 0 && inj.rng.Float64() < p.Duplicate
		if delay > 0 {
			inj.stats.Delayed++
			inj.events = append(inj.events, FaultEvent{Round: sendRound, Kind: "delay", From: m.From, To: m.To, Delay: delay})
			arrive := sendRound + 1 + delay
			inj.future[arrive] = append(inj.future[arrive], m)
			if dup {
				inj.stats.Duplicated++
				inj.events = append(inj.events, FaultEvent{Round: sendRound, Kind: "dup", From: m.From, To: m.To})
				inj.future[arrive] = append(inj.future[arrive], m)
			}
			continue
		}
		out = append(out, m)
		if dup {
			inj.stats.Duplicated++
			inj.events = append(inj.events, FaultEvent{Round: sendRound, Kind: "dup", From: m.From, To: m.To})
			out = append(out, m)
		}
	}
	return out
}

// takeDue merges delayed messages arriving this round into the batch
// and stamps any re-joins that have come due into the event ledger.
func (e *Engine) takeDue(round int, pending []Message) []Message {
	inj := e.inj
	if inj == nil {
		return pending
	}
	for inj.nextRejoin < len(inj.rejoins) && inj.rejoins[inj.nextRejoin].Round <= round {
		rj := inj.rejoins[inj.nextRejoin]
		inj.stats.Rejoined++
		inj.events = append(inj.events, FaultEvent{Round: rj.Round, Kind: "rejoin", From: rj.Node, To: rj.Node})
		inj.nextRejoin++
	}
	if due, ok := inj.future[round]; ok {
		pending = append(pending, due...)
		delete(inj.future, round)
	}
	return pending
}

// dropCrashedReceivers removes messages addressed to nodes that have
// crashed by the delivery round.
func (e *Engine) dropCrashedReceivers(round int, pending []Message) []Message {
	inj := e.inj
	if inj == nil {
		return pending
	}
	out := pending[:0]
	for _, m := range pending {
		if inj.down(m.To, round) {
			inj.stats.CrashDropped++
			inj.events = append(inj.events, FaultEvent{Round: round, Kind: "crash-recv", From: m.From, To: m.To})
			continue
		}
		out = append(out, m)
	}
	return out
}

// inFlight reports whether delayed messages are still parked.
func (e *Engine) inFlight() bool { return e.inj != nil && len(e.inj.future) > 0 }
