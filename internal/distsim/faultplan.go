package distsim

import (
	"math"
	"math/rand"
)

// FaultPlan describes deterministic network-fault injection for one
// protocol run: message drops, duplicates and delays, permanently slow
// links, and node crashes mid-wave. All randomness flows from a single
// generator seeded by Seed and consumed in the engine's deterministic
// delivery order, so the same plan against the same program replays the
// injection schedule — and therefore the whole run: every statistic,
// every event — bit-identically.
type FaultPlan struct {
	// Seed seeds the injection generator.
	Seed uint64
	// Drop is the probability a sent message is lost in transit.
	Drop float64
	// Duplicate is the probability a delivered message arrives twice in
	// the same round.
	Duplicate float64
	// Delay is the probability a message is held back; a delayed
	// message arrives 1 + rand(MaxDelay) rounds late (MaxDelay ≤ 1
	// means exactly one round late).
	Delay    float64
	MaxDelay int
	// SlowLinks adds a fixed Extra rounds of latency to every message
	// crossing the listed undirected links (on top of any probabilistic
	// delay).
	SlowLinks []SlowLink
	// Crashes silences nodes mid-wave: from its Round onward a crashed
	// node neither sends nor receives. Nothing reroutes around it —
	// whatever depended on it must time out and degrade.
	Crashes []Crash
}

// SlowLink marks the undirected link {U, V} as slow by Extra rounds.
type SlowLink struct {
	U, V  int32
	Extra int
}

// Crash silences Node from round Round onward.
type Crash struct {
	Node  int32
	Round int
}

// FaultStats counts what a plan actually did to one run.
type FaultStats struct {
	Dropped      int64 // messages lost in transit
	Duplicated   int64 // extra copies delivered
	Delayed      int64 // messages held back (incl. slow-link latency)
	CrashDropped int64 // messages silenced by a crashed sender/receiver
}

// FaultEvent is one injection, in the order the engine performed them —
// the replay-comparison ledger.
type FaultEvent struct {
	Round    int // round the affected message was sent (crash-recv: delivery round)
	Kind     string
	From, To int32
	Delay    int // rounds of added latency for "delay" events
}

// injector holds a fault plan's runtime state inside an Engine. It is
// only touched from the engine's single-threaded delivery sections, so
// the generator's consumption order is deterministic.
type injector struct {
	plan   *FaultPlan
	rng    *rand.Rand
	crash  []int // crash round per node, MaxInt when never
	slow   map[int64]int
	future map[int][]Message // delayed deliveries keyed by arrival round
	stats  FaultStats
	events []FaultEvent
}

// SetFaultPlan arms the engine with a fault plan. Must be called before
// Run; a nil plan disarms injection (the default).
func (e *Engine) SetFaultPlan(p *FaultPlan) {
	if p == nil {
		e.inj = nil
		return
	}
	inj := &injector{
		plan:   p,
		rng:    rand.New(rand.NewSource(int64(p.Seed))),
		crash:  make([]int, e.g.N()),
		future: make(map[int][]Message),
	}
	for i := range inj.crash {
		inj.crash[i] = math.MaxInt
	}
	for _, c := range p.Crashes {
		if int(c.Node) < len(inj.crash) && c.Round < inj.crash[c.Node] {
			inj.crash[c.Node] = c.Round
		}
	}
	if len(p.SlowLinks) > 0 {
		inj.slow = make(map[int64]int, len(p.SlowLinks))
		for _, l := range p.SlowLinks {
			inj.slow[linkKey(l.U, l.V)] = l.Extra
		}
	}
	e.inj = inj
}

// FaultStats returns the injection counters of the last Run (zero
// without a plan).
func (e *Engine) FaultStats() FaultStats {
	if e.inj == nil {
		return FaultStats{}
	}
	return e.inj.stats
}

// FaultEvents returns the injection ledger of the last Run in execution
// order (nil without a plan). The returned slice is the engine's own.
func (e *Engine) FaultEvents() []FaultEvent {
	if e.inj == nil {
		return nil
	}
	return e.inj.events
}

func linkKey(u, v int32) int64 {
	if u > v {
		u, v = v, u
	}
	return int64(u)<<32 | int64(uint32(v))
}

// inject filters a just-produced batch through the plan: sender-crash
// silencing, drops, duplication, and (slow-link plus probabilistic)
// delays. sendRound is the round the batch was produced in; undelayed
// messages deliver at sendRound+1, delayed ones are parked in future.
// Without a plan the batch passes through untouched.
func (e *Engine) inject(batch []Message, sendRound int) []Message {
	inj := e.inj
	if inj == nil {
		return batch
	}
	p := inj.plan
	out := make([]Message, 0, len(batch))
	for _, m := range batch {
		if inj.crash[m.From] <= sendRound {
			inj.stats.CrashDropped++
			inj.events = append(inj.events, FaultEvent{Round: sendRound, Kind: "crash-send", From: m.From, To: m.To})
			continue
		}
		if p.Drop > 0 && inj.rng.Float64() < p.Drop {
			inj.stats.Dropped++
			inj.events = append(inj.events, FaultEvent{Round: sendRound, Kind: "drop", From: m.From, To: m.To})
			continue
		}
		delay := 0
		if inj.slow != nil {
			delay += inj.slow[linkKey(m.From, m.To)]
		}
		if p.Delay > 0 && inj.rng.Float64() < p.Delay {
			extra := 1
			if p.MaxDelay > 1 {
				extra += inj.rng.Intn(p.MaxDelay)
			}
			delay += extra
		}
		dup := p.Duplicate > 0 && inj.rng.Float64() < p.Duplicate
		if delay > 0 {
			inj.stats.Delayed++
			inj.events = append(inj.events, FaultEvent{Round: sendRound, Kind: "delay", From: m.From, To: m.To, Delay: delay})
			arrive := sendRound + 1 + delay
			inj.future[arrive] = append(inj.future[arrive], m)
			if dup {
				inj.stats.Duplicated++
				inj.events = append(inj.events, FaultEvent{Round: sendRound, Kind: "dup", From: m.From, To: m.To})
				inj.future[arrive] = append(inj.future[arrive], m)
			}
			continue
		}
		out = append(out, m)
		if dup {
			inj.stats.Duplicated++
			inj.events = append(inj.events, FaultEvent{Round: sendRound, Kind: "dup", From: m.From, To: m.To})
			out = append(out, m)
		}
	}
	return out
}

// takeDue merges delayed messages arriving this round into the batch.
func (e *Engine) takeDue(round int, pending []Message) []Message {
	if e.inj == nil {
		return pending
	}
	if due, ok := e.inj.future[round]; ok {
		pending = append(pending, due...)
		delete(e.inj.future, round)
	}
	return pending
}

// dropCrashedReceivers removes messages addressed to nodes that have
// crashed by the delivery round.
func (e *Engine) dropCrashedReceivers(round int, pending []Message) []Message {
	inj := e.inj
	if inj == nil {
		return pending
	}
	out := pending[:0]
	for _, m := range pending {
		if inj.crash[m.To] <= round {
			inj.stats.CrashDropped++
			inj.events = append(inj.events, FaultEvent{Round: round, Kind: "crash-recv", From: m.From, To: m.To})
			continue
		}
		out = append(out, m)
	}
	return out
}

// inFlight reports whether delayed messages are still parked.
func (e *Engine) inFlight() bool { return e.inj != nil && len(e.inj.future) > 0 }
