package distsim

import (
	"math/rand"
	"reflect"
	"slices"
	"testing"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// faultyFixture binds a Q6 collect server for the fault-injection
// tests.
func faultyFixture(t *testing.T) (*CollectServer, *topology.Hypercube) {
	t.Helper()
	nw := topology.NewHypercube(6)
	parts, err := nw.Parts(nw.Diagnosability()+1, nw.Diagnosability()+1)
	if err != nil {
		t.Fatal(err)
	}
	cs := NewCollectServer(nw.Graph(), nw.Diagnosability(), parts, 2, 50000)
	t.Cleanup(cs.Close)
	return cs, nw
}

// TestResilientCollectCleanNetwork checks the hardened protocol on a
// fault-free network: nothing missing, and the wave diagnoses exactly
// like the plain replay path.
func TestResilientCollectCleanNetwork(t *testing.T) {
	cs, nw := faultyFixture(t)
	F := syndrome.RandomFaults(nw.Graph().N(), nw.Diagnosability(), rand.New(rand.NewSource(1)))
	res := cs.ReplayFaulty([]syndrome.Syndrome{syndrome.NewLazy(F, syndrome.Mimic{})}, nil, 3, nil)[0]
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Missing) != 0 || res.Degraded {
		t.Fatalf("clean network left missing=%v degraded=%v", res.Missing, res.Degraded)
	}
	if !res.Faults.Equal(F) {
		t.Fatalf("diagnosed %v, want %v", res.Faults, F)
	}
	if res.Inject != (FaultStats{}) || len(res.Events) != 0 {
		t.Fatalf("no plan, but injection ledger %+v / %d events", res.Inject, len(res.Events))
	}
	// The stop-and-wait discipline costs more rounds than the plain
	// convergecast but must still assemble every record.
	if res.Net.Records == 0 || res.Net.Rounds == 0 {
		t.Fatalf("empty network ledger: %+v", res.Net)
	}
}

// TestFaultyReplayDeterminism replays the same wave set under the same
// plan twice and requires bit-identical outcomes — fault sets, missing
// lists, network ledgers, injection counters, event logs and diagnosis
// stats.
func TestFaultyReplayDeterminism(t *testing.T) {
	cs, nw := faultyFixture(t)
	plan := &FaultPlan{
		Seed:      42,
		Drop:      0.12,
		Duplicate: 0.05,
		Delay:     0.10,
		MaxDelay:  3,
		SlowLinks: []SlowLink{{U: 0, V: 1, Extra: 2}},
		Crashes:   []Crash{{Node: 9, Round: 3}},
	}
	rng := rand.New(rand.NewSource(2))
	var syns1, syns2 []syndrome.Syndrome
	var hyps []*bitset.Set
	for i := 0; i < 4; i++ {
		F := syndrome.RandomFaults(nw.Graph().N(), rng.Intn(nw.Diagnosability()), rng)
		hyps = append(hyps, F)
		syns1 = append(syns1, syndrome.NewLazy(F, syndrome.Mimic{}))
		syns2 = append(syns2, syndrome.NewLazy(F, syndrome.Mimic{}))
	}
	r1 := cs.ReplayFaulty(syns1, plan, 4, nil)
	r2 := cs.ReplayFaulty(syns2, plan, 4, nil)
	for i := range r1 {
		a, b := r1[i], r2[i]
		if (a.Faults == nil) != (b.Faults == nil) || (a.Faults != nil && !a.Faults.Equal(b.Faults)) {
			t.Fatalf("wave %d: fault sets differ across replays", i)
		}
		if !slices.Equal(a.Missing, b.Missing) {
			t.Fatalf("wave %d: missing %v vs %v", i, a.Missing, b.Missing)
		}
		if a.Net != b.Net || a.Inject != b.Inject || a.Diag != b.Diag ||
			a.Degraded != b.Degraded || a.EffectiveDelta != b.EffectiveDelta {
			t.Fatalf("wave %d: ledgers diverge:\n%+v\n%+v", i, a, b)
		}
		if !reflect.DeepEqual(a.Events, b.Events) {
			t.Fatalf("wave %d: event logs diverge (%d vs %d events)", i, len(a.Events), len(b.Events))
		}
		_ = hyps
	}
}

// TestFaultyReplayDegradesOnCrash crashes one node before it can send
// and drops traffic; the wave must still complete within the budget,
// report the crashed node missing, and return a degraded diagnosis on
// the surviving component flagged through core.Stats.
func TestFaultyReplayDegradesOnCrash(t *testing.T) {
	cs, nw := faultyFixture(t)
	g := nw.Graph()
	// Crash a BFS-tree leaf (node 63 is the deepest node of the
	// ascending-parent tree and forwards for nobody), so the missing
	// set stays small and the survivor keeps a useful δ′. Crashing an
	// internal node like 1 severs its whole subtree — half the network
	// — and degrades δ′ to 0, which is also correct but a different
	// scenario (covered by TestRebindNoSurvivingPartition in core).
	plan := &FaultPlan{
		Seed:    7,
		Drop:    0.10,
		Crashes: []Crash{{Node: 63, Round: 0}}, // silenced before Init delivers
	}
	F := syndrome.RandomFaults(g.N(), 3, rand.New(rand.NewSource(5)))
	res := cs.ReplayFaulty([]syndrome.Syndrome{syndrome.NewLazy(F, syndrome.Mimic{})}, plan, 5, nil)[0]
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !slices.Contains(res.Missing, int32(63)) {
		t.Fatalf("crashed node 63 should be missing, got %v", res.Missing)
	}
	if !res.Degraded || !res.Diag.Degraded || res.Diag.EffectiveDelta != res.EffectiveDelta {
		t.Fatalf("degraded wave not flagged: %+v / %+v", res, res.Diag)
	}
	if res.EffectiveDelta <= 0 || res.EffectiveDelta >= nw.Diagnosability() {
		t.Fatalf("EffectiveDelta = %d, want in (0, δ=%d)", res.EffectiveDelta, nw.Diagnosability())
	}
	// Ground truth for the partial diagnosis: the hypothesis restricted
	// to the surviving component, provided it respects δ′.
	rr := g.RemoveNodes(res.Missing)
	want := bitset.New(g.N())
	F.ForEach(func(i int) bool {
		if rr.OldToNew[i] >= 0 {
			want.Add(i)
		}
		return true
	})
	if want.Count() <= res.EffectiveDelta {
		if !res.Faults.Equal(want) {
			t.Fatalf("degraded diagnosis %v, want surviving hypothesis %v", res.Faults, want)
		}
	}
	if res.Inject.Dropped == 0 && res.Inject.CrashDropped == 0 {
		t.Fatalf("plan injected nothing: %+v", res.Inject)
	}
}

// TestFaultPlanLossless checks duplicates, delays and slow links alone
// (no loss, no crashes) still collect everything: acks make duplicates
// idempotent and delays only cost rounds.
func TestFaultPlanLossless(t *testing.T) {
	cs, nw := faultyFixture(t)
	plan := &FaultPlan{
		Seed:      11,
		Duplicate: 0.2,
		Delay:     0.25,
		MaxDelay:  4,
		SlowLinks: []SlowLink{{U: 0, V: 2, Extra: 3}},
	}
	F := syndrome.RandomFaults(nw.Graph().N(), 4, rand.New(rand.NewSource(9)))
	res := cs.ReplayFaulty([]syndrome.Syndrome{syndrome.NewLazy(F, syndrome.Mimic{})}, plan, 4, nil)[0]
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Missing) != 0 || res.Degraded {
		t.Fatalf("lossless plan lost records: missing=%v", res.Missing)
	}
	if !res.Faults.Equal(F) {
		t.Fatalf("diagnosed %v, want %v", res.Faults, F)
	}
	if res.Inject.Duplicated == 0 || res.Inject.Delayed == 0 {
		t.Fatalf("plan injected nothing: %+v", res.Inject)
	}
	if res.Inject.Dropped != 0 || res.Inject.CrashDropped != 0 {
		t.Fatalf("lossless plan dropped messages: %+v", res.Inject)
	}
}

// TestFaultPlanTotalLossHitsRoundLimit pins the livelock guard: at
// Drop = 1 a retransmitting protocol must terminate via the round
// budget (degrading to a root-only wave), not spin forever.
func TestFaultPlanTotalLossHitsRoundLimit(t *testing.T) {
	nw := topology.NewHypercube(4)
	e := NewEngine(nw.Graph(), 0)
	e.SetFaultPlan(&FaultPlan{Seed: 1, Drop: 1.0})
	rc := NewResilientCollect(e, nw.Graph(), syndrome.NewLazy(bitset.New(nw.Graph().N()), syndrome.Mimic{}), 1000)
	_, err := e.Run(rc, 200)
	if err == nil {
		// Fine too: every hop exhausted its retries before the budget.
		if len(rc.Missing()) != nw.Graph().N()-1 {
			t.Fatalf("total loss should leave only the root collected, missing %v", rc.Missing())
		}
		return
	}
	if err != ErrRoundLimit {
		t.Fatalf("want ErrRoundLimit or clean give-up, got %v", err)
	}
}

// TestFaultPlanDoesNotPerturbCleanRuns checks an armed-but-empty plan
// leaves the ledger of a fault-free protocol byte-identical to an
// unarmed run.
func TestFaultPlanDoesNotPerturbCleanRuns(t *testing.T) {
	nw := topology.NewHypercube(5)
	F := syndrome.RandomFaults(nw.Graph().N(), 2, rand.New(rand.NewSource(3)))

	run := func(armed bool) Stats {
		e := NewEngine(nw.Graph(), 0)
		if armed {
			e.SetFaultPlan(&FaultPlan{Seed: 123})
		}
		rc := NewResilientCollect(e, nw.Graph(), syndrome.NewLazy(F, syndrome.Mimic{}), 3)
		st, err := e.Run(rc, 50000)
		if err != nil {
			t.Fatal(err)
		}
		if m := rc.Missing(); len(m) != 0 {
			t.Fatalf("clean run missing %v", m)
		}
		return *st
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("empty plan changed the ledger:\n%+v\n%+v", a, b)
	}
}

// TestCentralVsResilientLedger sanity-checks the hardening overhead
// shape: the resilient protocol moves at least as many records (per-hop
// acks) as the raw convergecast on the same wave.
func TestCentralVsResilientLedger(t *testing.T) {
	nw := topology.NewHypercube(5)
	g := nw.Graph()
	F := syndrome.RandomFaults(g.N(), 2, rand.New(rand.NewSource(8)))

	e1 := NewEngine(g, 0)
	c1 := NewCentralCollect(e1, g, syndrome.NewLazy(F, syndrome.Mimic{}))
	st1, err := e1.Run(c1, 50000)
	if err != nil {
		t.Fatal(err)
	}
	e2 := NewEngine(g, 0)
	c2 := NewResilientCollect(e2, g, syndrome.NewLazy(F, syndrome.Mimic{}), 3)
	st2, err := e2.Run(c2, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if c2.GivenUp() != 0 {
		t.Fatalf("clean run gave up %d records", c2.GivenUp())
	}
	if st2.Messages <= st1.Messages {
		t.Fatalf("resilient run should pay for acks: %d msgs vs central %d", st2.Messages, st1.Messages)
	}
	if st2.Tests != st1.Tests {
		t.Fatalf("test counts must match: %d vs %d", st2.Tests, st1.Tests)
	}
}
