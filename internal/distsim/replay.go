package distsim

import (
	"comparisondiag/internal/bitset"
	"comparisondiag/internal/campaign"
	"comparisondiag/internal/core"
	"comparisondiag/internal/graph"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// CollectServer is the persistent form of RunCentralCollect: a centre
// that serves many collection waves against one fixed graph. It binds
// the sequential diagnosis once (core.NewGraphEngine with the given
// partition) and owns a campaign.Runtime, so replayed syndromes are
// diagnosed on the same persistent worker pool every other batch entry
// point uses — and, with a result cache, repeated syndromes (the
// distsim replay workload: re-collecting a mostly unchanged system
// state wave after wave) skip the central computation entirely. Only
// the network cost of each collection wave is always paid; that is the
// protocol's point.
type CollectServer struct {
	g         *graph.Graph
	delta     int
	parts     []topology.Part
	eng       *core.Engine
	rt        *campaign.Runtime
	maxRounds int
}

// NewCollectServer binds a central-collection server. workers sizes the
// runtime pool (≤ 0 means GOMAXPROCS, clamped); maxRounds bounds each
// collection wave like RunCentralCollect's parameter.
func NewCollectServer(g *graph.Graph, delta int, parts []topology.Part, workers, maxRounds int) *CollectServer {
	eng := core.NewGraphEngine(g, delta, parts)
	return &CollectServer{
		g: g, delta: delta, parts: parts, eng: eng,
		rt:        campaign.NewRuntime(eng, workers),
		maxRounds: maxRounds,
	}
}

// Runtime exposes the server's persistent pool (observability:
// worker-stat snapshots; sharing with other drivers).
func (cs *CollectServer) Runtime() *campaign.Runtime { return cs.rt }

// Close drains the pool. The server must not be used afterwards.
func (cs *CollectServer) Close() { cs.rt.Close() }

// ReplayResult is one wave's outcome: the collection ledger plus the
// central diagnosis.
type ReplayResult struct {
	// Faults is the centrally diagnosed fault set (caller-owned).
	Faults *bitset.Set
	// Net is the BSP cost ledger of this wave's collection.
	Net Stats
	// Diag is the central diagnosis cost profile.
	Diag core.Stats
	// Err reports a failed wave (round limit) or diagnosis.
	Err error
}

// Replay runs one collection wave per syndrome — every node performs
// its complete test set and the results convergecast to node 0 — and
// then diagnoses all collected syndromes centrally through the
// persistent runtime in one batch. cache, when non-nil, short-circuits
// syndromes whose hypothesis and behaviour were already served (their
// waves still pay the full network ledger: the centre cannot know a
// syndrome repeats until it has collected it).
//
// results[i] corresponds to syns[i]; the syndromes must be distinct
// values even when they encode the same hypothesis (each is driven
// concurrently during its wave and by one batch worker after).
func (cs *CollectServer) Replay(syns []syndrome.Syndrome, cache *core.ResultCache) []ReplayResult {
	return cs.ReplayBatch(syns, cache, core.BatchOptions{})
}

// ReplayBatch is Replay with explicit batch options for the central
// diagnosis phase — the replay workload re-collects mostly unchanged
// system states wave after wave, so hypothesis grouping
// (BatchOptions.ShareCertification / ShareFinalPrefix) lets the centre
// certify once and regrow the behaviour-independent final prefix once
// per repeated hypothesis. opt.Pool and opt.Options.ResultCache are
// superseded by the server's runtime and the cache argument.
func (cs *CollectServer) ReplayBatch(syns []syndrome.Syndrome, cache *core.ResultCache, opt core.BatchOptions) []ReplayResult {
	out := make([]ReplayResult, len(syns))
	// Collected is the index list of waves that completed: a wave that
	// exceeded the round budget has no centrally assembled syndrome, so
	// it gets no diagnosis (and burns no batch work or cache slot).
	var collected []int
	var toDiagnose []syndrome.Syndrome
	for i, s := range syns {
		e := NewEngine(cs.g, 0)
		c := NewCentralCollect(e, cs.g, s)
		st, err := e.Run(c, cs.maxRounds)
		if st != nil {
			out[i].Net = *st
		}
		out[i].Err = err
		if err == nil {
			collected = append(collected, i)
			toDiagnose = append(toDiagnose, s)
		}
	}
	opt.Options.ResultCache = cache
	batch := cs.rt.DiagnoseBatch(toDiagnose, opt)
	for k, r := range batch {
		i := collected[k]
		out[i].Faults = r.Faults
		out[i].Diag = r.Stats
		out[i].Err = r.Err
	}
	return out
}

// FaultyReplayResult is one wave's outcome under fault injection.
type FaultyReplayResult struct {
	// Faults is the diagnosed fault set in the server graph's id space
	// (degraded diagnoses are mapped back from the survivor).
	Faults *bitset.Set
	// Missing lists the sources whose test vectors never reached the
	// centre (ascending, server-graph ids). Empty for a full wave.
	Missing []int32
	// Degraded reports a partial-syndrome wave: the diagnosis covers
	// only the surviving component, under EffectiveDelta.
	Degraded       bool
	EffectiveDelta int
	// Net is the wave's BSP cost ledger (zero if the wave exhausted
	// the round budget — the run keeps no partial network accounting).
	Net Stats
	// Inject and Events are the wave's fault-injection ledger.
	Inject FaultStats
	Events []FaultEvent
	// Diag is the central diagnosis cost profile.
	Diag core.Stats
	// Err reports a failed diagnosis (or a collection that timed out
	// AND could not be degraded). A round-limited collection alone is
	// not an error: the wave degrades to whatever was collected.
	Err error
}

// remappedSyndrome presents the centre's view of a partial collection:
// tests among surviving nodes, addressed in survivor ids, answered by
// the original syndrome through the id map. It is deliberately not a
// *syndrome.Lazy, so the diagnosis engine serves it on its generic
// (kernel-free, cache-free) path.
type remappedSyndrome struct {
	inner    syndrome.Syndrome
	newToOld []int32
}

func (r remappedSyndrome) Test(u, v, w int32) int {
	return r.inner.Test(r.newToOld[u], r.newToOld[v], r.newToOld[w])
}
func (r remappedSyndrome) Lookups() int64 { return r.inner.Lookups() }
func (r remappedSyndrome) ResetLookups() { r.inner.ResetLookups() }

// ReplayFaulty is Replay under a network fault plan: each wave collects
// through ResilientCollect (stop-and-wait hop acks, timeout
// retransmission with exponential backoff, bounded by retries) on an
// engine armed with the plan. Waves that still collect every source are
// diagnosed exactly like Replay (batched through the runtime, cache
// honoured). Waves with missing sources degrade instead of failing:
// the missing nodes are removed from the server graph, a Survivor
// engine is derived for the surviving component (see core.Engine), and
// the partial syndrome is diagnosed there — the result maps back to
// server ids and is flagged Degraded with the survivor's δ′. Each wave
// arms a fresh engine with the same plan, so a wave's injection
// schedule depends only on the plan seed and the traffic: replaying
// the same syndromes under the same plan reproduces every result —
// fault sets, ledgers, events — bit-identically.
func (cs *CollectServer) ReplayFaulty(syns []syndrome.Syndrome, plan *FaultPlan, retries int, cache *core.ResultCache) []FaultyReplayResult {
	out := make([]FaultyReplayResult, len(syns))
	var fullIdx []int
	var fullSyns []syndrome.Syndrome
	for i, s := range syns {
		e := NewEngine(cs.g, 0)
		e.SetFaultPlan(plan)
		rc := NewResilientCollect(e, cs.g, s, retries)
		st, err := e.Run(rc, cs.maxRounds)
		if st != nil {
			out[i].Net = *st
		}
		out[i].Inject = e.FaultStats()
		out[i].Events = e.FaultEvents()
		out[i].Missing = rc.Missing()
		// A round-limited run degrades like a lossy one: every source
		// that did arrive is usable. err is deliberately not recorded.
		_ = err
		if len(out[i].Missing) == 0 {
			fullIdx = append(fullIdx, i)
			fullSyns = append(fullSyns, s)
			continue
		}
		cs.degradedWave(&out[i], s)
	}
	batch := cs.rt.DiagnoseBatch(fullSyns, core.BatchOptions{Options: core.Options{ResultCache: cache}})
	for k, r := range batch {
		i := fullIdx[k]
		out[i].Faults = r.Faults
		out[i].Diag = r.Stats
		out[i].Err = r.Err
	}
	return out
}

// ReplayRecovering is ReplayFaulty on the campaign's global round axis
// with a recovery plan: wave w spans global rounds
// [w*maxRounds, (w+1)*maxRounds), Crash.Round and Rejoin.Round are
// global, and each wave is armed with the plan translated into its own
// round window — a node crashed in an earlier wave arrives already
// down, one that rejoined earlier never crashes at all, and one whose
// rejoin lands mid-wave comes back mid-collection. Early waves can
// therefore serve degraded diagnoses and later waves upgrade to full
// diagnosis as nodes re-join, on the same server, mid-campaign. With
// every crash at round 0 and no rejoins the translation is the
// identity, and the run is bit-identical to ReplayFaulty.
func (cs *CollectServer) ReplayRecovering(syns []syndrome.Syndrome, plan *FaultPlan, rec *RecoveryPlan, retries int, cache *core.ResultCache) []FaultyReplayResult {
	rejoinAt := map[int32]int{}
	if rec != nil {
		for _, rj := range rec.Rejoins {
			if cur, ok := rejoinAt[rj.Node]; !ok || rj.Round < cur {
				rejoinAt[rj.Node] = rj.Round
			}
		}
	}
	out := make([]FaultyReplayResult, len(syns))
	var fullIdx []int
	var fullSyns []syndrome.Syndrome
	for i, s := range syns {
		wavePlan := *plan
		wavePlan.Crashes = nil
		var waveRec RecoveryPlan
		base := i * cs.maxRounds
		for _, c := range plan.Crashes {
			eff := c.Round - base
			if eff > cs.maxRounds {
				continue // crashes in a later wave
			}
			if eff < 0 {
				eff = 0 // went down in an earlier wave; already out
			}
			if rj, ok := rejoinAt[c.Node]; ok {
				rjEff := rj - base
				if rjEff <= eff {
					continue // rejoined before this wave saw it down
				}
				wavePlan.Crashes = append(wavePlan.Crashes, Crash{Node: c.Node, Round: eff})
				if rjEff <= cs.maxRounds {
					waveRec.Rejoins = append(waveRec.Rejoins, Rejoin{Node: c.Node, Round: rjEff})
				}
			} else {
				wavePlan.Crashes = append(wavePlan.Crashes, Crash{Node: c.Node, Round: eff})
			}
		}
		e := NewEngine(cs.g, 0)
		e.SetFaultPlan(&wavePlan)
		e.SetRecoveryPlan(&waveRec)
		rc := NewResilientCollect(e, cs.g, s, retries)
		st, err := e.Run(rc, cs.maxRounds)
		if st != nil {
			out[i].Net = *st
		}
		out[i].Inject = e.FaultStats()
		out[i].Events = e.FaultEvents()
		out[i].Missing = rc.Missing()
		_ = err // a round-limited run degrades like a lossy one
		if len(out[i].Missing) == 0 {
			fullIdx = append(fullIdx, i)
			fullSyns = append(fullSyns, s)
			continue
		}
		cs.degradedWave(&out[i], s)
	}
	batch := cs.rt.DiagnoseBatch(fullSyns, core.BatchOptions{Options: core.Options{ResultCache: cache}})
	for k, r := range batch {
		i := fullIdx[k]
		out[i].Faults = r.Faults
		out[i].Diag = r.Stats
		out[i].Err = r.Err
	}
	return out
}

// degradedWave diagnoses a partial collection on the surviving
// component and maps the verdict back to server ids.
func (cs *CollectServer) degradedWave(r *FaultyReplayResult, s syndrome.Syndrome) {
	r.Degraded = true
	rr := cs.g.RemoveNodes(r.Missing)
	surv, rep, err := cs.eng.Survivor(rr)
	if err != nil {
		r.Err = err
		return
	}
	r.EffectiveDelta = rep.EffectiveDelta
	faults, st, err := surv.Diagnose(remappedSyndrome{inner: s, newToOld: rr.NewToOld})
	if st != nil {
		r.Diag = *st
	}
	if err != nil {
		r.Err = err
		return
	}
	mapped := bitset.New(cs.g.N())
	faults.ForEach(func(i int) bool {
		mapped.Add(int(rr.NewToOld[i]))
		return true
	})
	r.Faults = mapped
}
