package distsim

import (
	"comparisondiag/internal/bitset"
	"comparisondiag/internal/campaign"
	"comparisondiag/internal/core"
	"comparisondiag/internal/graph"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// CollectServer is the persistent form of RunCentralCollect: a centre
// that serves many collection waves against one fixed graph. It binds
// the sequential diagnosis once (core.NewGraphEngine with the given
// partition) and owns a campaign.Runtime, so replayed syndromes are
// diagnosed on the same persistent worker pool every other batch entry
// point uses — and, with a result cache, repeated syndromes (the
// distsim replay workload: re-collecting a mostly unchanged system
// state wave after wave) skip the central computation entirely. Only
// the network cost of each collection wave is always paid; that is the
// protocol's point.
type CollectServer struct {
	g         *graph.Graph
	delta     int
	parts     []topology.Part
	rt        *campaign.Runtime
	maxRounds int
}

// NewCollectServer binds a central-collection server. workers sizes the
// runtime pool (≤ 0 means GOMAXPROCS, clamped); maxRounds bounds each
// collection wave like RunCentralCollect's parameter.
func NewCollectServer(g *graph.Graph, delta int, parts []topology.Part, workers, maxRounds int) *CollectServer {
	eng := core.NewGraphEngine(g, delta, parts)
	return &CollectServer{
		g: g, delta: delta, parts: parts,
		rt:        campaign.NewRuntime(eng, workers),
		maxRounds: maxRounds,
	}
}

// Runtime exposes the server's persistent pool (observability:
// worker-stat snapshots; sharing with other drivers).
func (cs *CollectServer) Runtime() *campaign.Runtime { return cs.rt }

// Close drains the pool. The server must not be used afterwards.
func (cs *CollectServer) Close() { cs.rt.Close() }

// ReplayResult is one wave's outcome: the collection ledger plus the
// central diagnosis.
type ReplayResult struct {
	// Faults is the centrally diagnosed fault set (caller-owned).
	Faults *bitset.Set
	// Net is the BSP cost ledger of this wave's collection.
	Net Stats
	// Diag is the central diagnosis cost profile.
	Diag core.Stats
	// Err reports a failed wave (round limit) or diagnosis.
	Err error
}

// Replay runs one collection wave per syndrome — every node performs
// its complete test set and the results convergecast to node 0 — and
// then diagnoses all collected syndromes centrally through the
// persistent runtime in one batch. cache, when non-nil, short-circuits
// syndromes whose hypothesis and behaviour were already served (their
// waves still pay the full network ledger: the centre cannot know a
// syndrome repeats until it has collected it).
//
// results[i] corresponds to syns[i]; the syndromes must be distinct
// values even when they encode the same hypothesis (each is driven
// concurrently during its wave and by one batch worker after).
func (cs *CollectServer) Replay(syns []syndrome.Syndrome, cache *core.ResultCache) []ReplayResult {
	return cs.ReplayBatch(syns, cache, core.BatchOptions{})
}

// ReplayBatch is Replay with explicit batch options for the central
// diagnosis phase — the replay workload re-collects mostly unchanged
// system states wave after wave, so hypothesis grouping
// (BatchOptions.ShareCertification / ShareFinalPrefix) lets the centre
// certify once and regrow the behaviour-independent final prefix once
// per repeated hypothesis. opt.Pool and opt.Options.ResultCache are
// superseded by the server's runtime and the cache argument.
func (cs *CollectServer) ReplayBatch(syns []syndrome.Syndrome, cache *core.ResultCache, opt core.BatchOptions) []ReplayResult {
	out := make([]ReplayResult, len(syns))
	// Collected is the index list of waves that completed: a wave that
	// exceeded the round budget has no centrally assembled syndrome, so
	// it gets no diagnosis (and burns no batch work or cache slot).
	var collected []int
	var toDiagnose []syndrome.Syndrome
	for i, s := range syns {
		e := NewEngine(cs.g, 0)
		c := NewCentralCollect(e, cs.g, s)
		st, err := e.Run(c, cs.maxRounds)
		if st != nil {
			out[i].Net = *st
		}
		out[i].Err = err
		if err == nil {
			collected = append(collected, i)
			toDiagnose = append(toDiagnose, s)
		}
	}
	opt.Options.ResultCache = cache
	batch := cs.rt.DiagnoseBatch(toDiagnose, opt)
	for k, r := range batch {
		i := collected[k]
		out[i].Faults = r.Faults
		out[i].Diag = r.Stats
		out[i].Err = r.Err
	}
	return out
}
