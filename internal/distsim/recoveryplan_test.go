package distsim

import (
	"math/rand"
	"reflect"
	"slices"
	"testing"

	"comparisondiag/internal/syndrome"
)

// TestRecoveryPlanClosesCrashWindow checks the injector-level contract:
// a crash with a later rejoin silences the node only inside
// [crash, rejoin), the hardened protocol closes the gap by
// retransmission, and a rejoin at the crash round cancels the crash
// without ever stamping the ledger.
func TestRecoveryPlanClosesCrashWindow(t *testing.T) {
	cs, nw := faultyFixture(t)
	F := syndrome.RandomFaults(nw.Graph().N(), 3, rand.New(rand.NewSource(13)))

	// Window [0, 12): node 63 misses the first rounds, rejoins
	// mid-collection, and its retransmissions deliver the record late.
	plan := &FaultPlan{Seed: 3, Crashes: []Crash{{Node: 63, Round: 0}}}
	rec := &RecoveryPlan{Rejoins: []Rejoin{{Node: 63, Round: 12}}}
	res := cs.ReplayRecovering([]syndrome.Syndrome{syndrome.NewLazy(F, syndrome.Mimic{})}, plan, rec, 6, nil)[0]
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Missing) != 0 || res.Degraded {
		t.Fatalf("rejoined wave still missing %v (degraded=%v)", res.Missing, res.Degraded)
	}
	if !res.Faults.Equal(F) {
		t.Fatalf("diagnosed %v, want %v", res.Faults, F)
	}
	if res.Inject.Rejoined != 1 {
		t.Fatalf("Rejoined = %d, want 1", res.Inject.Rejoined)
	}
	found := false
	for _, ev := range res.Events {
		if ev.Kind == "rejoin" && ev.From == 63 && ev.Round == 12 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no rejoin event in the ledger: %v", res.Events)
	}
	if res.Inject.CrashDropped == 0 {
		t.Fatalf("the crash window silenced nothing: %+v", res.Inject)
	}

	// Empty window [0, 0): the rejoin cancels the crash outright — no
	// silencing, no ledger entry.
	rec0 := &RecoveryPlan{Rejoins: []Rejoin{{Node: 63, Round: 0}}}
	res0 := cs.ReplayRecovering([]syndrome.Syndrome{syndrome.NewLazy(F, syndrome.Mimic{})}, plan, rec0, 6, nil)[0]
	if res0.Err != nil {
		t.Fatal(res0.Err)
	}
	if len(res0.Missing) != 0 || res0.Inject.Rejoined != 0 || res0.Inject.CrashDropped != 0 {
		t.Fatalf("cancelled crash still injected: %+v missing=%v", res0.Inject, res0.Missing)
	}
}

// TestRecoveringReplayUpgradesMidCampaign is the serving story: one
// node is down for the whole first wave and rejoins early in the
// second, so the same server hands out a degraded diagnosis in wave 0
// and full diagnoses from wave 1 on.
func TestRecoveringReplayUpgradesMidCampaign(t *testing.T) {
	cs, nw := faultyFixture(t)
	g := nw.Graph()
	F := syndrome.RandomFaults(g.N(), 3, rand.New(rand.NewSource(5)))
	var syns []syndrome.Syndrome
	for i := 0; i < 3; i++ {
		syns = append(syns, syndrome.NewLazy(F, syndrome.Mimic{}))
	}
	// Global axis: wave w is rounds [w*50000, (w+1)*50000). Node 63 goes
	// down at round 0 and rejoins 10 rounds into wave 1.
	plan := &FaultPlan{Seed: 7, Crashes: []Crash{{Node: 63, Round: 0}}}
	rec := &RecoveryPlan{Rejoins: []Rejoin{{Node: 63, Round: 50010}}}
	res := cs.ReplayRecovering(syns, plan, rec, 6, nil)

	w0 := res[0]
	if w0.Err != nil {
		t.Fatal(w0.Err)
	}
	if !w0.Degraded || !slices.Contains(w0.Missing, int32(63)) {
		t.Fatalf("wave 0 should be degraded missing node 63: %+v", w0)
	}
	if w0.EffectiveDelta <= 0 || w0.EffectiveDelta >= nw.Diagnosability() {
		t.Fatalf("wave 0 EffectiveDelta = %d, want in (0, δ=%d)", w0.EffectiveDelta, nw.Diagnosability())
	}
	for w := 1; w < 3; w++ {
		r := res[w]
		if r.Err != nil {
			t.Fatalf("wave %d: %v", w, r.Err)
		}
		if r.Degraded || len(r.Missing) != 0 {
			t.Fatalf("wave %d should have upgraded to a full diagnosis: %+v", w, r)
		}
		if !r.Faults.Equal(F) {
			t.Fatalf("wave %d diagnosed %v, want %v", w, r.Faults, F)
		}
		if r.Diag.Degraded {
			t.Fatalf("wave %d diagnosis still stamped degraded: %+v", w, r.Diag)
		}
	}
	// The rejoin lands mid-wave-1 (translated round 10); wave 2 never
	// sees the crash at all.
	if res[1].Inject.Rejoined != 1 || res[1].Inject.CrashDropped == 0 {
		t.Fatalf("wave 1 should rejoin mid-collection: %+v", res[1].Inject)
	}
	if res[2].Inject != (FaultStats{}) {
		t.Fatalf("wave 2 should be clean: %+v", res[2].Inject)
	}
}

// TestRecoveringReplayDeterminism replays the same recovering campaign
// twice and requires bit-identical outcomes.
func TestRecoveringReplayDeterminism(t *testing.T) {
	cs, nw := faultyFixture(t)
	plan := &FaultPlan{
		Seed: 42, Drop: 0.10, Duplicate: 0.05, Delay: 0.08, MaxDelay: 2,
		Crashes: []Crash{{Node: 63, Round: 0}, {Node: 21, Round: 4}},
	}
	rec := &RecoveryPlan{Rejoins: []Rejoin{{Node: 63, Round: 50015}, {Node: 21, Round: 30}}}
	rng := rand.New(rand.NewSource(2))
	var syns1, syns2 []syndrome.Syndrome
	for i := 0; i < 3; i++ {
		F := syndrome.RandomFaults(nw.Graph().N(), rng.Intn(nw.Diagnosability()), rng)
		syns1 = append(syns1, syndrome.NewLazy(F, syndrome.Mimic{}))
		syns2 = append(syns2, syndrome.NewLazy(F, syndrome.Mimic{}))
	}
	r1 := cs.ReplayRecovering(syns1, plan, rec, 5, nil)
	r2 := cs.ReplayRecovering(syns2, plan, rec, 5, nil)
	for i := range r1 {
		a, b := r1[i], r2[i]
		if (a.Faults == nil) != (b.Faults == nil) || (a.Faults != nil && !a.Faults.Equal(b.Faults)) {
			t.Fatalf("wave %d: fault sets differ across replays", i)
		}
		if !slices.Equal(a.Missing, b.Missing) {
			t.Fatalf("wave %d: missing %v vs %v", i, a.Missing, b.Missing)
		}
		if a.Net != b.Net || a.Inject != b.Inject || a.Diag != b.Diag ||
			a.Degraded != b.Degraded || a.EffectiveDelta != b.EffectiveDelta {
			t.Fatalf("wave %d: ledgers diverge:\n%+v\n%+v", i, a, b)
		}
		if !reflect.DeepEqual(a.Events, b.Events) {
			t.Fatalf("wave %d: event logs diverge (%d vs %d events)", i, len(a.Events), len(b.Events))
		}
	}
}

// TestRecoveringReplayNoRecMatchesFaulty pins the degenerate case: with
// every crash at round 0 the global→wave translation is the identity,
// so ReplayRecovering without a recovery plan is bit-identical to
// ReplayFaulty.
func TestRecoveringReplayNoRecMatchesFaulty(t *testing.T) {
	cs, nw := faultyFixture(t)
	plan := &FaultPlan{
		Seed: 42, Drop: 0.12, Duplicate: 0.05, Delay: 0.10, MaxDelay: 3,
		SlowLinks: []SlowLink{{U: 0, V: 1, Extra: 2}},
		Crashes:   []Crash{{Node: 9, Round: 0}},
	}
	rng := rand.New(rand.NewSource(6))
	var syns1, syns2 []syndrome.Syndrome
	for i := 0; i < 3; i++ {
		F := syndrome.RandomFaults(nw.Graph().N(), rng.Intn(nw.Diagnosability()), rng)
		syns1 = append(syns1, syndrome.NewLazy(F, syndrome.Mimic{}))
		syns2 = append(syns2, syndrome.NewLazy(F, syndrome.Mimic{}))
	}
	rf := cs.ReplayFaulty(syns1, plan, 4, nil)
	rr := cs.ReplayRecovering(syns2, plan, nil, 4, nil)
	for i := range rf {
		a, b := rf[i], rr[i]
		if (a.Faults == nil) != (b.Faults == nil) || (a.Faults != nil && !a.Faults.Equal(b.Faults)) {
			t.Fatalf("wave %d: fault sets differ", i)
		}
		if !slices.Equal(a.Missing, b.Missing) || a.Net != b.Net || a.Inject != b.Inject ||
			a.Degraded != b.Degraded || a.EffectiveDelta != b.EffectiveDelta || a.Diag != b.Diag {
			t.Fatalf("wave %d: recovering replay without a plan diverged from ReplayFaulty:\n%+v\n%+v", i, a, b)
		}
		if !reflect.DeepEqual(a.Events, b.Events) {
			t.Fatalf("wave %d: event logs diverge", i)
		}
	}
}
