package distsim

import (
	"errors"

	"comparisondiag/internal/baseline"
	"comparisondiag/internal/bitset"
	"comparisondiag/internal/graph"
	"comparisondiag/internal/syndrome"
)

// Message kinds of the distributed extended-star protocol.
const (
	kindQueryDown uint8 = iota + 16 // A = root, B = branch<<2 | depth
	kindResultUp                    // A = root, B = branch<<2 | depth (result in List[0])
	kindVerdict                     // convergecast of faulty ids (List)
)

// DistCT is a distributed implementation of Chiang and Tan's
// extended-star diagnosis, the comparator of the paper's Conclusions.
// Every node sends a query down each branch of its extended star; the
// three branch testers perform their comparisons and route the results
// back; the root then applies the accusing/quiet rule to classify
// itself, and a BFS convergecast assembles the verdicts at node 0.
//
// Every node is diagnosed independently, so the tests performed total
// 3·n·N regardless of how many faults exist — the distributed analogue
// of consuming the whole syndrome table, and the contrast with the
// on-demand wave protocol.
type DistCT struct {
	e     *Engine
	g     *graph.Graph
	s     syndrome.Syndrome
	stars []*baseline.ExtendedStar

	// Per-root tallies of received branch results. branchBits keeps a
	// 6-bit slot per (root, branch): bits 0-2 the three test results,
	// bits 3-5 received flags.
	quiet, accusing, received []int32
	verdictFaulty             []bool
	branchBits                [][]uint8

	// BFS convergecast tree rooted at node 0 (communication layer).
	parent    []int32
	children  []int32
	remaining []int32
	collected [][]int32
	phase     int

	// Result is the fault set assembled at node 0.
	Result *bitset.Set
}

// NewDistCT prepares the protocol; stars[x] must be an extended star
// rooted at x whose branch count is at least the fault bound.
func NewDistCT(e *Engine, g *graph.Graph, s syndrome.Syndrome, stars []*baseline.ExtendedStar) *DistCT {
	// OnRound runs concurrently across nodes, so take a view that
	// tolerates concurrent Test calls (striped look-up counting).
	s = syndrome.ForConcurrent(s)
	n := g.N()
	d := &DistCT{
		e: e, g: g, s: s, stars: stars,
		quiet:         make([]int32, n),
		accusing:      make([]int32, n),
		received:      make([]int32, n),
		verdictFaulty: make([]bool, n),
		branchBits:    make([][]uint8, n),
		parent:        make([]int32, n),
		children:      make([]int32, n),
		remaining:     make([]int32, n),
		collected:     make([][]int32, n),
	}
	for u := range d.branchBits {
		d.branchBits[u] = make([]uint8, len(stars[u].Branches))
	}
	// Build the BFS convergecast tree rooted at 0.
	dist := g.BFSFrom(0, nil)
	for u := int32(0); int(u) < n; u++ {
		d.parent[u] = -1
		if u == 0 || dist[u] < 0 {
			continue
		}
		for _, v := range g.Neighbors(u) {
			if dist[v] == dist[u]-1 {
				d.parent[u] = v
				break
			}
		}
	}
	for u := 0; u < n; u++ {
		if p := d.parent[u]; p >= 0 {
			d.children[p]++
		}
	}
	return d
}

// Init implements Program: every root queries the first hop of each of
// its branches.
func (d *DistCT) Init() []Message {
	var out []Message
	for x := int32(0); int(x) < d.g.N(); x++ {
		for bi, br := range d.stars[x].Branches {
			out = append(out, Message{From: x, To: br[0], Kind: kindQueryDown, A: x, B: int32(bi << 2)})
		}
	}
	return out
}

// OnRound implements Program.
func (d *DistCT) OnRound(u int32, in []Message) []Message {
	var out []Message
	for _, m := range in {
		switch m.Kind {
		case kindQueryDown:
			root, bi, depth := m.A, int(m.B>>2), int(m.B&3)
			br := d.stars[root].Branches[bi]
			// Perform this hop's comparison test.
			var res int
			switch depth {
			case 0: // u = a tests (x, b)
				res = d.s.Test(u, root, br[1])
			case 1: // u = b tests (a, c)
				res = d.s.Test(u, br[0], br[2])
			case 2: // u = c tests (b, e)
				res = d.s.Test(u, br[1], br[3])
			}
			d.e.CountTests(1)
			// Route the result back towards the root and forward the
			// query one hop deeper.
			up := root
			if depth > 0 {
				up = br[depth-1]
			}
			out = append(out, Message{From: u, To: up, Kind: kindResultUp, A: root, B: m.B, List: []int32{int32(res)}})
			if depth < 2 {
				out = append(out, Message{From: u, To: br[depth+1], Kind: kindQueryDown, A: root, B: int32(bi<<2 | (depth + 1))})
			}
		case kindResultUp:
			root, bi, depth := m.A, int(m.B>>2), int(m.B&3)
			if u != root {
				// Relay towards the root along the branch.
				br := d.stars[root].Branches[bi]
				up := root
				pos := branchIndex(br, u)
				if pos > 0 {
					up = br[pos-1]
				}
				out = append(out, Message{From: u, To: up, Kind: m.Kind, A: m.A, B: m.B, List: m.List})
				continue
			}
			// Tally at the root: a branch is quiet on (0,0,0) and
			// accusing on (1,0,0); we accumulate per-test and classify
			// once all three results of a branch arrived. To keep state
			// compact we count per-branch via bit tricks below.
			d.tally(root, bi, depth, m.List[0])
		case kindVerdict:
			d.collected[u] = append(d.collected[u], m.List...)
			d.remaining[u]--
			if d.remaining[u] == 0 {
				out = append(out, d.verdictUp(u)...)
			}
		}
	}
	return out
}

func (d *DistCT) tally(root int32, bi, depth int, res int32) {
	slot := d.branchBits[root][bi]
	slot |= uint8(res&1) << uint(depth)
	slot |= 1 << uint(3+depth)
	d.branchBits[root][bi] = slot
	if slot>>3 == 7 { // all three results in
		bits := slot & 7
		switch bits {
		case 0:
			d.quiet[root]++
		case 1: // t1=1, t2=t3=0
			d.accusing[root]++
		}
		d.received[root]++
		if int(d.received[root]) == len(d.stars[root].Branches) {
			d.verdictFaulty[root] = d.accusing[root] > d.quiet[root]
		}
	}
}

// OnQuiet implements Program: once all verdicts are computed, start the
// convergecast of faulty ids up the BFS tree to node 0.
func (d *DistCT) OnQuiet() []Message {
	if d.phase != 0 {
		return nil
	}
	d.phase = 1
	var out []Message
	for u := int32(0); int(u) < d.g.N(); u++ {
		d.remaining[u] = d.children[u]
		if d.remaining[u] == 0 {
			out = append(out, d.verdictUp(u)...)
		}
	}
	return out
}

func (d *DistCT) verdictUp(u int32) []Message {
	list := d.collected[u]
	if d.verdictFaulty[u] {
		list = append(list, u)
	}
	if u == 0 {
		d.Result = bitset.New(d.g.N())
		for _, x := range list {
			d.Result.Add(int(x))
		}
		return nil
	}
	return []Message{{From: u, To: d.parent[u], Kind: kindVerdict, List: list}}
}

func branchIndex(br [4]int32, u int32) int {
	for i, v := range br {
		if v == u {
			return i
		}
	}
	return -1
}

// ErrNoVerdict reports an incomplete run.
var ErrNoVerdict = errors.New("distsim: distributed CT produced no result")

// RunDistCT executes the distributed extended-star diagnosis with the
// given per-node stars and returns the fault set plus statistics.
func RunDistCT(g *graph.Graph, s syndrome.Syndrome, stars []*baseline.ExtendedStar, maxRounds int) (*bitset.Set, *Stats, error) {
	e := NewEngine(g, 0)
	d := NewDistCT(e, g, s, stars)
	stats, err := e.Run(d, maxRounds)
	if err != nil {
		return nil, stats, err
	}
	if d.Result == nil {
		return nil, stats, ErrNoVerdict
	}
	return d.Result, stats, nil
}
