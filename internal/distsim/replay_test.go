package distsim

import (
	"math/rand"
	"testing"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"

	"comparisondiag/internal/core"
)

// TestCollectServerReplayMatchesOneShot pins the persistent replay
// path: each wave's fault set and network ledger must match the
// one-shot RunCentralCollect, repeated syndromes must hit the shared
// result cache, and the runtime must have served the diagnoses.
func TestCollectServerReplayMatchesOneShot(t *testing.T) {
	nw := topology.NewHypercube(7)
	g := nw.Graph()
	delta := nw.Diagnosability()
	parts, err := nw.Parts(delta+1, delta+1)
	if err != nil {
		t.Fatal(err)
	}

	// Three distinct hypotheses, each replayed twice (the wave-after-
	// wave workload: system state mostly unchanged between waves).
	faultSets := make([]*bitset.Set, 3)
	for d := range faultSets {
		faultSets[d] = syndrome.RandomFaults(g.N(), 1+d, rand.New(rand.NewSource(int64(70+d))))
	}
	var syns []syndrome.Syndrome
	for round := 0; round < 2; round++ {
		for _, F := range faultSets {
			syns = append(syns, syndrome.NewLazy(F, syndrome.Mimic{}))
		}
	}

	cs := NewCollectServer(g, delta, parts, 2, 4*g.N())
	defer cs.Close()
	cache := core.NewResultCache(16)
	results := cs.Replay(syns, cache)

	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("wave %d: %v", i, r.Err)
		}
		F := faultSets[i%len(faultSets)]
		if !r.Faults.Equal(F) {
			t.Fatalf("wave %d: replay misdiagnosed", i)
		}
		want, wantNet, err := RunCentralCollect(g, syndrome.NewLazy(F, syndrome.Mimic{}), delta, parts, 4*g.N())
		if err != nil {
			t.Fatal(err)
		}
		if !want.Equal(r.Faults) {
			t.Fatalf("wave %d: replay differs from one-shot collection", i)
		}
		if r.Net.Records != wantNet.Records || r.Net.Rounds != wantNet.Rounds || r.Net.Tests != wantNet.Tests {
			t.Fatalf("wave %d: network ledger differs: %+v vs %+v", i, r.Net, *wantNet)
		}
	}
	if st := cache.Stats(); st.Hits < int64(len(faultSets)) {
		t.Fatalf("expected the second round to hit the cache, got %+v", st)
	}
	if rs := cs.Runtime().Stats(); rs.TotalTrials() == 0 {
		t.Fatal("runtime served no diagnoses")
	}
}

// TestCollectServerReplayBatchShared pins the grouped replay path:
// ReplayBatch with hypothesis grouping (shared certification + shared
// final prefix) returns the same fault sets as the plain Replay, with
// the group members having shared a non-empty final prefix whenever
// one was recordable, and strictly fewer total syndrome consultations.
func TestCollectServerReplayBatchShared(t *testing.T) {
	nw := topology.NewHypercube(7)
	g := nw.Graph()
	delta := nw.Diagnosability()
	parts, err := nw.Parts(delta+1, delta+1)
	if err != nil {
		t.Fatal(err)
	}
	F := syndrome.ClusterFaults(g, int32(g.N()-1), delta/2)
	behaviors := syndrome.AllBehaviors(3)
	makeSyns := func() []syndrome.Syndrome {
		var syns []syndrome.Syndrome
		for _, b := range behaviors {
			syns = append(syns, syndrome.NewLazy(F, b))
		}
		return syns
	}

	cs := NewCollectServer(g, delta, parts, 2, 4*g.N())
	defer cs.Close()

	plainSyns := makeSyns()
	plain := cs.Replay(plainSyns, nil)
	sharedSyns := makeSyns()
	shared := cs.ReplayBatch(sharedSyns, nil, core.BatchOptions{
		ShareCertification: true, ShareFinalPrefix: true,
	})
	var plainLookups, sharedLookups int64
	members := 0
	for i := range shared {
		if shared[i].Err != nil || plain[i].Err != nil {
			t.Fatalf("wave %d: %v / %v", i, shared[i].Err, plain[i].Err)
		}
		if !shared[i].Faults.Equal(plain[i].Faults) {
			t.Fatalf("wave %d: grouped replay diverged from plain replay", i)
		}
		if shared[i].Net != plain[i].Net {
			t.Fatalf("wave %d: grouping must not change the network ledger", i)
		}
		plainLookups += plainSyns[i].(*syndrome.Lazy).Lookups()
		sharedLookups += sharedSyns[i].(*syndrome.Lazy).Lookups()
		if shared[i].Diag.SharedFinalLookups > 0 {
			members++
		}
	}
	if members == 0 {
		t.Fatal("no replay member adopted a shared final prefix")
	}
	if sharedLookups >= plainLookups {
		t.Fatalf("grouped replay consulted %d look-ups, plain %d", sharedLookups, plainLookups)
	}
}
