package distsim

import (
	"math/rand"
	"testing"

	"comparisondiag/internal/baseline"
	"comparisondiag/internal/bitset"
	"comparisondiag/internal/core"
	"comparisondiag/internal/graph"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

// echoProgram: node 0 sends a token around a ring a fixed number of
// times; exercises engine accounting and termination.
type echoProgram struct {
	g    *graph.Graph
	hops int
	seen int
}

func (p *echoProgram) Init() []Message {
	return []Message{{From: 0, To: 1, Kind: 1, A: 0}}
}

func (p *echoProgram) OnRound(u int32, in []Message) []Message {
	var out []Message
	for range in {
		p.seen++
		if p.seen >= p.hops {
			return nil
		}
		next := (u + 1) % int32(p.g.N())
		out = append(out, Message{From: u, To: next, Kind: 1})
	}
	return out
}

func (p *echoProgram) OnQuiet() []Message { return nil }

func ringGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.MustAddEdge(int32(i), int32((i+1)%n))
	}
	return b.Build()
}

func TestEngineTokenRing(t *testing.T) {
	g := ringGraph(8)
	e := NewEngine(g, 2)
	p := &echoProgram{g: g, hops: 5}
	stats, err := e.Run(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 5 {
		t.Fatalf("rounds = %d, want 5", stats.Rounds)
	}
	if stats.Messages != 5 {
		t.Fatalf("messages = %d, want 5", stats.Messages)
	}
}

func TestEngineRoundLimit(t *testing.T) {
	g := ringGraph(4)
	e := NewEngine(g, 1)
	p := &echoProgram{g: g, hops: 1 << 30}
	if _, err := e.Run(p, 10); err != ErrRoundLimit {
		t.Fatalf("expected ErrRoundLimit, got %v", err)
	}
}

// healthySeed returns a node known healthy via the library's own
// partition certification, as the wave protocol presumes.
func healthySeed(t *testing.T, nw topology.Network, s syndrome.Syndrome) int32 {
	t.Helper()
	_, stats, err := core.Diagnose(nw, s)
	if err != nil {
		t.Fatal(err)
	}
	return stats.Seed
}

func TestWaveMatchesCentralDiagnosis(t *testing.T) {
	q := topology.NewHypercube(7)
	g := q.Graph()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 8; trial++ {
		F := syndrome.RandomFaults(g.N(), rng.Intn(8), rng)
		for _, b := range syndrome.AllBehaviors(uint64(trial)) {
			s := syndrome.NewLazy(F, b)
			seed := healthySeed(t, q, s)
			got, stats, err := RunWave(g, s, seed, 1000)
			if err != nil {
				t.Fatalf("behaviour %s: %v", b.Name(), err)
			}
			if !got.Equal(F) {
				t.Fatalf("behaviour %s: wave got %v want %v", b.Name(), got, F)
			}
			if stats.Rounds == 0 || stats.Messages == 0 {
				t.Fatal("stats not recorded")
			}
		}
	}
}

func TestWaveDeterministicAcrossWorkerCounts(t *testing.T) {
	q := topology.NewHypercube(6)
	g := q.Graph()
	F := syndrome.RandomFaults(g.N(), 5, rand.New(rand.NewSource(2)))
	s := syndrome.NewLazy(F, syndrome.Mimic{})
	seed := healthySeed(t, q, s)

	run := func(workers int) (*bitset.Set, *Stats) {
		e := NewEngine(g, workers)
		w := NewWaveSetBuilder(e, g, s, seed)
		stats, err := e.Run(w, 1000)
		if err != nil {
			t.Fatal(err)
		}
		return w.Result, stats
	}
	r1, s1 := run(1)
	r8, s8 := run(8)
	if !r1.Equal(r8) {
		t.Fatal("results differ across worker counts")
	}
	if s1.Rounds != s8.Rounds || s1.Messages != s8.Messages || s1.Tests != s8.Tests {
		t.Fatalf("stats differ across worker counts: %+v vs %+v", s1, s8)
	}
}

func hypercubeStars(t *testing.T, n int) []*baseline.ExtendedStar {
	t.Helper()
	stars := make([]*baseline.ExtendedStar, 1<<uint(n))
	for x := range stars {
		es, err := baseline.HypercubeExtendedStar(n, int32(x))
		if err != nil {
			t.Fatal(err)
		}
		stars[x] = es
	}
	return stars
}

func TestDistCTMatchesTruth(t *testing.T) {
	q := topology.NewHypercube(6)
	g := q.Graph()
	stars := hypercubeStars(t, 6)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 6; trial++ {
		F := syndrome.RandomFaults(g.N(), rng.Intn(7), rng)
		for _, b := range syndrome.AllBehaviors(uint64(trial)) {
			s := syndrome.NewLazy(F, b)
			got, stats, err := RunDistCT(g, s, stars, 1000)
			if err != nil {
				t.Fatalf("behaviour %s: %v", b.Name(), err)
			}
			if !got.Equal(F) {
				t.Fatalf("behaviour %s: got %v want %v", b.Name(), got, F)
			}
			wantTests := int64(3 * 6 * g.N())
			if stats.Tests != wantTests {
				t.Fatalf("CT tests = %d, want exactly %d", stats.Tests, wantTests)
			}
		}
	}
}

// TestConclusionsComparison pins the paper's Conclusions claim: the
// distributed Set_Builder performs far fewer comparison tests and moves
// fewer records than the distributed extended-star algorithm.
func TestConclusionsComparison(t *testing.T) {
	q := topology.NewHypercube(8)
	g := q.Graph()
	n := 8
	stars := make([]*baseline.ExtendedStar, g.N())
	for x := range stars {
		es, err := baseline.HypercubeExtendedStar(n, int32(x))
		if err != nil {
			t.Fatal(err)
		}
		stars[x] = es
	}
	F := syndrome.RandomFaults(g.N(), n, rand.New(rand.NewSource(3)))
	s := syndrome.NewLazy(F, syndrome.Mimic{})

	seed := healthySeed(t, q, s)
	s.ResetLookups()
	waveF, waveStats, err := RunWave(g, s, seed, 1000)
	if err != nil {
		t.Fatal(err)
	}
	ctF, ctStats, err := RunDistCT(g, s, stars, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !waveF.Equal(ctF) {
		t.Fatal("protocols disagree")
	}
	if waveStats.Tests*2 >= ctStats.Tests {
		t.Fatalf("expected wave to use < half the tests: wave %d vs CT %d", waveStats.Tests, ctStats.Tests)
	}
	if waveStats.Messages >= ctStats.Messages {
		t.Fatalf("expected wave to send fewer messages: wave %d vs CT %d", waveStats.Messages, ctStats.Messages)
	}
}
