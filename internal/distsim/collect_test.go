package distsim

import (
	"math/rand"
	"testing"

	"comparisondiag/internal/core"
	"comparisondiag/internal/syndrome"
	"comparisondiag/internal/topology"
)

func TestCentralCollectAssemblesFullSyndrome(t *testing.T) {
	nw := topology.NewHypercube(7)
	g := nw.Graph()
	delta := nw.Diagnosability()
	parts, err := nw.Parts(delta+1, delta+1)
	if err != nil {
		t.Fatal(err)
	}
	F := syndrome.RandomFaults(g.N(), delta, rand.New(rand.NewSource(6)))
	s := syndrome.NewLazy(F, syndrome.Mimic{})
	e := NewEngine(g, 0)
	c := NewCentralCollect(e, g, s)
	stats, err := e.Run(c, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if int64(c.Collected) != syndrome.TableSize(g) {
		t.Fatalf("collected %d entries, table has %d", c.Collected, syndrome.TableSize(g))
	}
	if stats.Tests != syndrome.TableSize(g) {
		t.Fatalf("performed %d tests, want the full table %d", stats.Tests, syndrome.TableSize(g))
	}
	// Every entry travels at least one hop (except node 0's own), so
	// the record traffic must exceed the table size by a depth factor.
	if stats.Records <= syndrome.TableSize(g) {
		t.Fatalf("records %d implausibly low", stats.Records)
	}
	// And the subsequent central diagnosis is exact.
	got, _, err := RunCentralCollect(g, s, delta, parts, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(F) {
		t.Fatal("central diagnosis wrong")
	}
}

// TestCollectVsWaveLedger pins the Conclusions-level contrast: shipping
// the syndrome to a centre moves orders of magnitude more records than
// the wave.
func TestCollectVsWaveLedger(t *testing.T) {
	nw := topology.NewHypercube(8)
	g := nw.Graph()
	delta := nw.Diagnosability()
	parts, err := nw.Parts(delta+1, delta+1)
	if err != nil {
		t.Fatal(err)
	}
	F := syndrome.RandomFaults(g.N(), delta, rand.New(rand.NewSource(7)))
	s := syndrome.NewLazy(F, syndrome.Mimic{})

	_, dstats, err := core.Diagnose(nw, s)
	if err != nil {
		t.Fatal(err)
	}
	waveF, wstats, err := RunWave(g, s, dstats.Seed, 10000)
	if err != nil {
		t.Fatal(err)
	}
	collectF, cstats, err := RunCentralCollect(g, s, delta, parts, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !waveF.Equal(collectF) || !waveF.Equal(F) {
		t.Fatal("protocols disagree")
	}
	if wstats.Records*10 >= cstats.Records {
		t.Fatalf("expected ≥10x record gap: wave %d vs collect %d", wstats.Records, cstats.Records)
	}
	if wstats.Tests*5 >= cstats.Tests {
		t.Fatalf("expected ≥5x test gap: wave %d vs collect %d", wstats.Tests, cstats.Tests)
	}
}

func TestFaultBoundOptionShrinksCost(t *testing.T) {
	nw := topology.NewHypercube(10)
	g := nw.Graph()
	F := syndrome.RandomFaults(g.N(), 3, rand.New(rand.NewSource(8)))

	sFull := syndrome.NewLazy(F, syndrome.Mimic{})
	gotFull, statsFull, err := core.DiagnoseOpts(nw, sFull, core.Options{})
	if err != nil || !gotFull.Equal(F) {
		t.Fatalf("full-bound diagnosis failed: %v", err)
	}
	sTight := syndrome.NewLazy(F, syndrome.Mimic{})
	gotTight, statsTight, err := core.DiagnoseOpts(nw, sTight, core.Options{FaultBound: 3})
	if err != nil || !gotTight.Equal(F) {
		t.Fatalf("tight-bound diagnosis failed: %v", err)
	}
	if statsTight.CertLookups >= statsFull.CertLookups {
		t.Fatalf("tight bound should certify cheaper: %d vs %d",
			statsTight.CertLookups, statsFull.CertLookups)
	}
	if statsTight.Delta != 3 {
		t.Fatalf("stats delta %d, want 3", statsTight.Delta)
	}
}
