// Package distsim provides a deterministic bulk-synchronous (BSP)
// message-passing simulator and distributed implementations of the two
// diagnosis approaches, reproducing the direction sketched in the
// paper's Conclusions: self-diagnosis should be computed by the system
// itself, and a distributed Set_Builder consults far fewer test results
// than a distributed extended-star algorithm.
//
// The simulator counts rounds, messages and comparison tests, and models
// the paper's one-port concern ("a node can only send one message at any
// time") by charging each round the maximum number of messages any
// single node emitted.
package distsim

import (
	"errors"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"comparisondiag/internal/core"
	"comparisondiag/internal/graph"
)

// Message is one point-to-point message delivered at the next round.
type Message struct {
	From, To int32
	Kind     uint8
	A, B     int32
	List     []int32 // bulk payload (convergecast reports)
}

// Program is a node-level protocol executed by the engine. An
// implementation keeps its per-node state in arrays indexed by node id;
// OnRound for distinct nodes may run concurrently, so a node must only
// touch its own state.
type Program interface {
	// Init produces the protocol's initial messages (round 0).
	Init() []Message
	// OnRound processes node u's inbox (sorted by sender, kind,
	// payload) and returns u's outgoing messages.
	OnRound(u int32, in []Message) []Message
	// OnQuiet is invoked when no messages are in flight; returning
	// messages starts a new phase, returning none halts the run.
	OnQuiet() []Message
}

// Stats aggregates the cost of a protocol run.
type Stats struct {
	Rounds      int   // BSP supersteps executed
	Messages    int64 // total messages delivered
	Records     int64 // total payload items moved (List lengths + 1 each)
	Tests       int64 // comparison tests performed (protocol-reported)
	OnePortTime int64 // Σ over rounds of max messages sent by one node
}

// Engine runs a Program on a graph.
type Engine struct {
	g       *graph.Graph
	stats   Stats
	tests   atomic.Int64 // updated concurrently from OnRound callbacks
	workers int
	inj     *injector // nil unless SetFaultPlan armed a fault plan
}

// NewEngine creates an engine; workers ≤ 0 means GOMAXPROCS, and
// requests above it are clamped (core.ClampWorkers) — simulator
// goroutines beyond the scheduler's parallelism only add coordination
// overhead.
func NewEngine(g *graph.Graph, workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{g: g, workers: core.ClampWorkers(workers)}
}

// CountTests lets protocols report comparison tests they performed.
// Safe for concurrent use from OnRound callbacks.
func (e *Engine) CountTests(n int64) { e.tests.Add(n) }

// ErrRoundLimit reports that the protocol did not converge within the
// round budget.
var ErrRoundLimit = errors.New("distsim: round limit exceeded")

// Run drives the program to quiescence and returns the cost statistics.
// With a fault plan armed (SetFaultPlan), every produced batch passes
// through the injector — drops, duplicates, delays, crash silencing —
// before delivery; Stats then counts what was actually delivered, and
// the injection ledger is available from FaultStats / FaultEvents.
// Without a plan the accounting is unchanged.
func (e *Engine) Run(p Program, maxRounds int) (*Stats, error) {
	pending := e.inject(p.Init(), e.stats.Rounds)
	for {
		if len(pending) == 0 && !e.inFlight() {
			quiet := p.OnQuiet()
			if len(quiet) == 0 {
				s := e.stats
				s.Tests = e.tests.Load()
				return &s, nil
			}
			pending = e.inject(quiet, e.stats.Rounds)
			if len(pending) == 0 && !e.inFlight() {
				// The plan swallowed the entire restart batch with
				// nothing left in flight: burn a round so a
				// retransmitting program cannot livelock the run
				// against Drop = 1 — it hits the round budget instead.
				if e.stats.Rounds >= maxRounds {
					return nil, ErrRoundLimit
				}
				e.stats.Rounds++
				continue
			}
		}
		if e.stats.Rounds >= maxRounds {
			return nil, ErrRoundLimit
		}
		e.stats.Rounds++
		pending = e.takeDue(e.stats.Rounds, pending)
		pending = e.dropCrashedReceivers(e.stats.Rounds, pending)
		e.account(pending)
		if len(pending) == 0 {
			// Everything due this round was silenced; nothing to run.
			continue
		}

		// Deliver: group by recipient, sort each inbox for determinism.
		inboxes := make(map[int32][]Message, len(pending))
		for _, m := range pending {
			inboxes[m.To] = append(inboxes[m.To], m)
		}
		active := make([]int32, 0, len(inboxes))
		for u := range inboxes {
			active = append(active, u)
		}
		slices.Sort(active)
		for _, u := range active {
			slices.SortFunc(inboxes[u], func(a, b Message) int {
				if a.From != b.From {
					return int(a.From - b.From)
				}
				if a.Kind != b.Kind {
					return int(a.Kind) - int(b.Kind)
				}
				if a.A != b.A {
					return int(a.A - b.A)
				}
				return int(a.B - b.B)
			})
		}

		// Process active nodes in parallel; collect outputs per node and
		// merge in node order so the result is deterministic.
		outs := make([][]Message, len(active))
		var wg sync.WaitGroup
		chunk := (len(active) + e.workers - 1) / e.workers
		for w := 0; w < e.workers; w++ {
			lo := w * chunk
			if lo >= len(active) {
				break
			}
			hi := lo + chunk
			if hi > len(active) {
				hi = len(active)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					outs[i] = p.OnRound(active[i], inboxes[active[i]])
				}
			}(lo, hi)
		}
		wg.Wait()

		pending = pending[:0]
		var maxSent int
		for _, out := range outs {
			if len(out) > maxSent {
				maxSent = len(out)
			}
			pending = append(pending, out...)
		}
		e.stats.OnePortTime += int64(maxSent)
		pending = e.inject(pending, e.stats.Rounds)
	}
}

// account records message and record counts for a batch being
// delivered.
func (e *Engine) account(ms []Message) {
	e.stats.Messages += int64(len(ms))
	for _, m := range ms {
		e.stats.Records += int64(1 + len(m.List))
	}
}
