package syndrome

import (
	"math/rand"
	"testing"

	"comparisondiag/internal/graph"
)

func benchCube(n int) *graph.Graph {
	return graph.FromAdjacency(1<<uint(n), func(u int32) []int32 {
		out := make([]int32, 0, n)
		for b := 0; b < n; b++ {
			out = append(out, u^int32(1<<uint(b)))
		}
		return out
	})
}

func BenchmarkLazyTestHealthy(b *testing.B) {
	g := benchCube(12)
	f := RandomFaults(g.N(), 12, rand.New(rand.NewSource(1)))
	s := NewLazy(f, Mimic{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := int32(i & (g.N() - 1))
		adj := g.Neighbors(u)
		s.Test(u, adj[0], adj[1])
	}
}

func BenchmarkTableBuildQ10(b *testing.B) {
	g := benchCube(10)
	f := RandomFaults(g.N(), 10, rand.New(rand.NewSource(2)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := BuildTable(g, NewLazy(f, AllZero{}))
		if t.Entries() == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTableTest(b *testing.B) {
	g := benchCube(10)
	f := RandomFaults(g.N(), 10, rand.New(rand.NewSource(3)))
	t := BuildTable(g, NewLazy(f, AllZero{}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := int32(i & (g.N() - 1))
		adj := g.Neighbors(u)
		t.Test(u, adj[0], adj[9])
	}
}

func BenchmarkConsistentQ8(b *testing.B) {
	g := benchCube(8)
	f := RandomFaults(g.N(), 8, rand.New(rand.NewSource(4)))
	s := NewLazy(f, Mimic{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Consistent(g, s, f) {
			b.Fatal("truth must be consistent")
		}
	}
}
