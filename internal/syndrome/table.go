package syndrome

import (
	"slices"
	"sync/atomic"

	"comparisondiag/internal/graph"
)

// Table is a fully materialised syndrome: every entry s_u(v, w) stored as
// one bit. Building a Table consults the complete syndrome of the source,
// which is exactly the cost a full-table algorithm (Chiang–Tan, Yang)
// pays and the paper's Section 6 argues Set_Builder avoids.
type Table struct {
	g       *graph.Graph
	offsets []int64 // bit offset of node u's pair block
	bits    []uint64
	entries int64
	lookups atomic.Int64
}

// BuildTable materialises the complete syndrome table of g from src.
// Every entry is read from src exactly once (so src's look-up counter
// advances by TableSize(g)).
func BuildTable(g *graph.Graph, src Syndrome) *Table {
	t := &Table{g: g, offsets: make([]int64, g.N()+1)}
	var off int64
	for u := 0; u < g.N(); u++ {
		t.offsets[u] = off
		d := int64(g.Degree(int32(u)))
		off += d * (d - 1) / 2
	}
	t.offsets[g.N()] = off
	t.entries = off
	t.bits = make([]uint64, (off+63)/64)
	for u := int32(0); int(u) < g.N(); u++ {
		adj := g.Neighbors(u)
		for i := 0; i < len(adj); i++ {
			for j := i + 1; j < len(adj); j++ {
				if src.Test(u, adj[i], adj[j]) == 1 {
					b := t.offsets[u] + pairIndex(len(adj), i, j)
					t.bits[b>>6] |= 1 << uint(b&63)
				}
			}
		}
	}
	return t
}

// pairIndex maps the ordered pair of adjacency indices (i < j) within a
// degree-d node to its rank in the lexicographic enumeration of pairs.
func pairIndex(d, i, j int) int64 {
	return int64(i)*(2*int64(d)-int64(i)-1)/2 + int64(j-i-1)
}

// Test implements Syndrome by direct bit lookup.
func (t *Table) Test(u, v, w int32) int {
	t.lookups.Add(1)
	adj := t.g.Neighbors(u)
	i := neighborIndex(adj, v)
	j := neighborIndex(adj, w)
	if i > j {
		i, j = j, i
	}
	b := t.offsets[u] + pairIndex(len(adj), i, j)
	if t.bits[b>>6]&(1<<uint(b&63)) != 0 {
		return 1
	}
	return 0
}

func neighborIndex(adj []int32, v int32) int {
	i, ok := slices.BinarySearch(adj, v)
	if !ok {
		panic("syndrome: Test argument is not a neighbour of the tester")
	}
	return i
}

// Lookups implements Syndrome.
func (t *Table) Lookups() int64 { return t.lookups.Load() }

// ResetLookups implements Syndrome.
func (t *Table) ResetLookups() { t.lookups.Store(0) }

// Entries returns the number of stored test results, Σ_u C(deg(u), 2).
func (t *Table) Entries() int64 { return t.entries }
