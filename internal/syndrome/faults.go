package syndrome

import (
	"math/rand"
	"slices"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/graph"
)

// RandomFaults returns a uniformly random fault set of exactly size
// distinct nodes out of n (Floyd's k-subset sampling, no O(n) scratch).
func RandomFaults(n, size int, rng *rand.Rand) *bitset.Set {
	if size > n {
		panic("syndrome: more faults than nodes")
	}
	f := bitset.New(n)
	for j := n - size; j < n; j++ {
		t := rng.Intn(j + 1)
		if f.Contains(t) {
			f.Add(j)
		} else {
			f.Add(t)
		}
	}
	return f
}

// ClusterFaults returns a fault set of the given size taken from the BFS
// order around center (center itself excluded): the adversarial
// placement that concentrates damage and comes closest to building a
// vertex cut around one region.
func ClusterFaults(g *graph.Graph, center int32, size int) *bitset.Set {
	f := bitset.New(g.N())
	dist := g.BFSFrom(center, nil)
	order := make([]int32, 0, g.N())
	for u := 0; u < g.N(); u++ {
		if dist[u] >= 0 && int32(u) != center {
			order = append(order, int32(u))
		}
	}
	slices.SortFunc(order, func(a, b int32) int {
		if dist[a] != dist[b] {
			return int(dist[a] - dist[b])
		}
		return int(a - b)
	})
	for i := 0; i < size && i < len(order); i++ {
		f.Add(int(order[i]))
	}
	return f
}

// NeighborhoodFaults makes the neighbourhood of center faulty, truncated
// to size — the extremal configuration from the paper's diagnosability
// upper-bound argument (Section 2): F = N(center) is indistinguishable
// from F ∪ {center} once size reaches the full degree.
func NeighborhoodFaults(g *graph.Graph, center int32, size int) *bitset.Set {
	f := bitset.New(g.N())
	for _, v := range g.Neighbors(center) {
		if f.Count() >= size {
			break
		}
		f.Add(int(v))
	}
	return f
}
