package syndrome

import (
	"fmt"
	"strings"
)

// Behavior models how a *faulty* tester answers a comparison test. The
// MM model places no constraint on these answers, so diagnosis
// algorithms must be correct under every Behavior; the test suite
// exercises all of the implementations below.
type Behavior interface {
	// Result returns the faulty tester u's claimed result for the pair
	// (v, w) with v < w. truth is the result a healthy tester would
	// report, supplied so adversaries may imitate it.
	Result(u, v, w int32, truth int) int
	// Name identifies the behaviour in benchmark tables.
	Name() string
}

// AllZero answers 0 to every test: the faulty tester vouches for
// everyone, maximally encouraging Set_Builder to grow through faulty
// regions. This is the default adversary.
type AllZero struct{}

// Result implements Behavior.
func (AllZero) Result(u, v, w int32, truth int) int { return 0 }

// Name implements Behavior.
func (AllZero) Name() string { return "all-zero" }

// AllOne answers 1 to every test: the faulty tester accuses everyone,
// maximally starving Set_Builder of growth.
type AllOne struct{}

// Result implements Behavior.
func (AllOne) Result(u, v, w int32, truth int) int { return 1 }

// Name implements Behavior.
func (AllOne) Name() string { return "all-one" }

// Mimic answers exactly what a healthy tester would: the faulty node is
// indistinguishable as a tester and only betrays itself as a test
// subject. This is the hardest adversary for certification logic.
type Mimic struct{}

// Result implements Behavior.
func (Mimic) Result(u, v, w int32, truth int) int { return truth }

// Name implements Behavior.
func (Mimic) Name() string { return "mimic" }

// Inverted answers the opposite of the truth on every test.
type Inverted struct{}

// Result implements Behavior.
func (Inverted) Result(u, v, w int32, truth int) int { return 1 - truth }

// Name implements Behavior.
func (Inverted) Name() string { return "inverted" }

// Random answers pseudo-randomly but deterministically: the result is a
// pure function of (Seed, u, v, w), so repeated consultations of the
// same test agree — a syndrome is a fixed table, not a coin flipped per
// read.
type Random struct {
	Seed uint64
}

// Result implements Behavior.
func (r Random) Result(u, v, w int32, truth int) int {
	x := r.Seed
	x ^= uint64(uint32(u)) * 0x9E3779B97F4A7C15
	x = splitmix64(x)
	x ^= uint64(uint32(v)) * 0xBF58476D1CE4E5B9
	x = splitmix64(x)
	x ^= uint64(uint32(w)) * 0x94D049BB133111EB
	x = splitmix64(x)
	return int(x & 1)
}

// Name implements Behavior.
func (r Random) Name() string { return "random" }

// splitmix64 is the SplitMix64 finaliser, a fast high-quality mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// ParseBehavior resolves a behaviour by name — the inverse of
// Behavior.Name for the stock adversaries, accepting both the hyphened
// display names ("all-zero") and the bare CLI spellings ("allzero").
// seed parameterises Random and is ignored by the deterministic
// behaviours. The empty name resolves to Mimic, the hardest adversary
// and the default of cmd/diagnose and the diagnosis service.
func ParseBehavior(name string, seed uint64) (Behavior, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "mimic":
		return Mimic{}, nil
	case "allzero", "all-zero":
		return AllZero{}, nil
	case "allone", "all-one":
		return AllOne{}, nil
	case "inverted":
		return Inverted{}, nil
	case "random":
		return Random{Seed: seed}, nil
	}
	return nil, fmt.Errorf("syndrome: unknown behaviour %q (want allzero, allone, mimic, inverted or random)", name)
}

// AllBehaviors returns one instance of every behaviour, for exhaustive
// correctness sweeps in tests and benchmarks.
func AllBehaviors(seed uint64) []Behavior {
	return []Behavior{AllZero{}, AllOne{}, Mimic{}, Inverted{}, Random{Seed: seed}}
}
