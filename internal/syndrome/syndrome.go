// Package syndrome implements the comparison (MM) diagnosis model: test
// results s_u(v, w) produced by nodes comparing pairs of neighbours.
//
// The package deliberately separates *truth* from *testimony*:
//
//   - if the tester u is healthy, s_u(v, w) = 0 iff both v and w are
//     healthy (the model's reliability assumption: a faulty node always
//     answers incorrectly and two faulty nodes never answer identically);
//   - if the tester u is faulty, s_u(v, w) is arbitrary — modelled by a
//     pluggable Behaviour so correctness can be asserted under several
//     adversaries.
//
// Syndromes are served lazily: a test result is computed on demand and
// every consultation is counted. This mirrors the paper's Section 6
// argument that Set_Builder consults far fewer entries than the full
// syndrome table, and lets benchmarks report exact look-up counts.
package syndrome

import (
	"sync/atomic"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/graph"
)

// Syndrome supplies MM-model test results.
//
// Counting contract: every Test invocation — on the syndrome itself or
// on any view derived from it — advances the Lookups counter by exactly
// one.
//
// Concurrency contract: concurrent drivers (parallel certification, the
// BSP simulator) obtain views via Sharder or ForConcurrent before
// spawning workers. An implementation therefore has two options: either
// implement Sharder (and it may then use an unsynchronised counter for
// direct sequential Test calls, as Lazy does), or be safe for
// concurrent Test calls itself (as the materialised Table is) —
// ForConcurrent passes non-Sharder syndromes through unchanged.
type Syndrome interface {
	// Test returns s_u(v, w) ∈ {0, 1}. v and w must be distinct
	// neighbours of u; the result is symmetric in v and w.
	Test(u, v, w int32) int
	// Lookups returns the number of Test invocations since the last
	// ResetLookups, including those made through shard views.
	Lookups() int64
	// ResetLookups zeroes the look-up counter.
	ResetLookups()
}

// Sharder is implemented by syndromes that can hand out per-worker
// views. Each Shard counts look-ups into a private (uncontended)
// counter; Close merges it into the parent, after which the parent's
// Lookups reflects the shard's work. One shard belongs to one goroutine.
type Sharder interface {
	Shard() *Shard
}

// lookupShards is the stripe count for merged/concurrent counting. A
// small power of two: enough stripes that concurrent testers (which
// stripe by tester id) rarely collide, few enough that summing on
// Lookups stays trivial.
const lookupShards = 16

// paddedCount is a cache-line-padded atomic counter so that distinct
// stripes never share a line (no false sharing between workers).
type paddedCount struct {
	v atomic.Int64
	_ [56]byte
}

// Lazy is a Syndrome computed on demand from a fault set and a faulty-
// tester Behaviour.
//
// Counting is deliberately cheap: Test on the Lazy itself bumps a plain
// (non-atomic) counter, so the sequential hot path — Set_Builder, part
// certification, the baselines — pays no atomic per look-up. A Lazy may
// therefore be driven by only one goroutine at a time. Concurrent
// callers take per-worker Shard views (Sharder) or a striped
// ForConcurrent view; both merge into the same total, so Lookups is
// exact in every mode.
type Lazy struct {
	faults   *bitset.Set
	behavior Behavior
	seq      int64 // plain counter: Test calls made directly on the Lazy
	// stripes is allocated on first Shard/ForConcurrent, so the many
	// short-lived sequential Lazies (one per campaign trial) never pay
	// for the padded stripe array.
	stripes atomic.Pointer[[lookupShards]paddedCount]
}

// stripeArr returns the stripe array, allocating it on first use.
func (l *Lazy) stripeArr() *[lookupShards]paddedCount {
	if p := l.stripes.Load(); p != nil {
		return p
	}
	arr := new([lookupShards]paddedCount)
	if l.stripes.CompareAndSwap(nil, arr) {
		return arr
	}
	return l.stripes.Load()
}

// NewLazy builds a lazy syndrome for the given fault set. behavior
// governs answers of faulty testers; nil defaults to AllZero (the
// adversary that maximally imitates health).
func NewLazy(faults *bitset.Set, behavior Behavior) *Lazy {
	if behavior == nil {
		behavior = AllZero{}
	}
	return &Lazy{faults: faults, behavior: behavior}
}

// test computes the result without counting.
func (l *Lazy) test(u, v, w int32) int {
	if v > w {
		v, w = w, v
	}
	truth := 0
	if l.faults.Contains(int(v)) || l.faults.Contains(int(w)) {
		truth = 1
	}
	if !l.faults.Contains(int(u)) {
		return truth
	}
	return l.behavior.Result(u, v, w, truth)
}

// Test implements Syndrome. Single-goroutine with respect to other
// direct Test/Lookups calls on this Lazy; concurrent callers must use
// Shard or ForConcurrent views instead.
func (l *Lazy) Test(u, v, w int32) int {
	l.seq++
	return l.test(u, v, w)
}

// Lookups implements Syndrome: direct look-ups plus everything merged
// from shard and concurrent views.
func (l *Lazy) Lookups() int64 {
	total := l.seq
	if p := l.stripes.Load(); p != nil {
		for i := range p {
			total += p[i].v.Load()
		}
	}
	return total
}

// ResetLookups implements Syndrome.
func (l *Lazy) ResetLookups() {
	l.seq = 0
	if p := l.stripes.Load(); p != nil {
		for i := range p {
			p[i].v.Store(0)
		}
	}
}

// Shard implements Sharder: the returned view serves the same results
// but counts look-ups into a private counter, contention-free. Call
// Close when the worker is done; the parent's Lookups only includes the
// shard's count after Close.
func (l *Lazy) Shard() *Shard {
	l.stripeArr() // ensure the merge target exists before workers race
	return &Shard{parent: l}
}

// Faults exposes the underlying fault set (read-only use).
func (l *Lazy) Faults() *bitset.Set { return l.faults }

// Behavior exposes the faulty-tester behaviour the syndrome was built
// with (read-only use). Together with Faults it is the syndrome's whole
// identity: two Lazies agreeing on both serve identical test tables,
// which is what engine-level result caching keys on.
func (l *Lazy) Behavior() Behavior { return l.behavior }

// Shard is a per-worker view of a Lazy syndrome (see Sharder).
type Shard struct {
	parent *Lazy
	local  int64
}

// Test implements Syndrome, counting into the shard-local counter.
func (sh *Shard) Test(u, v, w int32) int {
	sh.local++
	return sh.parent.test(u, v, w)
}

// Lookups implements Syndrome: the parent total plus this shard's
// not-yet-merged count. Other shards' unmerged counts are not visible
// until they Close.
func (sh *Shard) Lookups() int64 { return sh.parent.Lookups() + sh.local }

// ResetLookups implements Syndrome by dropping the local count only;
// resetting the parent mid-flight would race with sibling shards.
func (sh *Shard) ResetLookups() { sh.local = 0 }

// Close merges the shard's count into the parent. The shard may be
// reused afterwards (its local count restarts at zero).
func (sh *Shard) Close() {
	if sh.local != 0 {
		sh.parent.stripeArr()[0].v.Add(sh.local)
		sh.local = 0
	}
}

// concurrentLazy is a view of a Lazy that is safe for concurrent Test
// calls from many goroutines at once: counts go to atomic stripes keyed
// by the tester id, so callers testing from different nodes (the BSP
// simulator's per-node programs) almost never contend on a line.
type concurrentLazy struct {
	parent  *Lazy
	stripes *[lookupShards]paddedCount
}

func (c concurrentLazy) Test(u, v, w int32) int {
	c.stripes[int(u)&(lookupShards-1)].v.Add(1)
	return c.parent.test(u, v, w)
}

func (c concurrentLazy) Lookups() int64 { return c.parent.Lookups() }
func (c concurrentLazy) ResetLookups()  { c.parent.ResetLookups() }

// ForConcurrent returns a view of s that tolerates concurrent Test
// calls while still advancing s's Lookups counter exactly once per
// test. For a *Lazy the view stripes counts by tester id; any other
// implementation is returned unchanged and is assumed to be safe for
// concurrent use itself (e.g. Table, which counts atomically).
func ForConcurrent(s Syndrome) Syndrome {
	if l, ok := s.(*Lazy); ok {
		return concurrentLazy{parent: l, stripes: l.stripeArr()}
	}
	return s
}

// ForEachTest enumerates every test of the complete syndrome table of g:
// for each node u and each unordered pair {v, w} of its neighbours it
// calls f(u, v, w) with v < w. It returns early if f returns false.
// The total number of enumerated tests is Σ_u C(deg(u), 2). The
// adjacency may be CSR-backed or an implicit generator; enumeration
// order is identical either way.
func ForEachTest(g graph.Adjacencer, f func(u, v, w int32) bool) {
	var buf []int32
	for u := int32(0); int(u) < g.N(); u++ {
		buf = g.AppendNeighbors(u, buf)
		adj := buf
		for i := 0; i < len(adj); i++ {
			for j := i + 1; j < len(adj); j++ {
				if !f(u, adj[i], adj[j]) {
					return
				}
			}
		}
	}
}

// TableSize returns the number of entries in the complete syndrome table
// of g: Σ_u C(deg(u), 2). This is the quantity a full-table algorithm
// (such as Chiang–Tan's) must materialise and consult.
func TableSize(g graph.Adjacencer) int64 {
	var total int64
	for u := int32(0); int(u) < g.N(); u++ {
		d := int64(g.Degree(u))
		total += d * (d - 1) / 2
	}
	return total
}

// Consistent reports whether the fault-set hypothesis F is consistent
// with the syndrome s on graph g: every test by a node outside F must
// equal the truth implied by F. (Tests by members of F are arbitrary
// under the model and impose no constraint.)
func Consistent(g graph.Adjacencer, s Syndrome, F *bitset.Set) bool {
	ok := true
	ForEachTest(g, func(u, v, w int32) bool {
		if F.Contains(int(u)) {
			return true
		}
		want := 0
		if F.Contains(int(v)) || F.Contains(int(w)) {
			want = 1
		}
		if s.Test(u, v, w) != want {
			ok = false
			return false
		}
		return true
	})
	return ok
}
