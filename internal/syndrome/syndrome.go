// Package syndrome implements the comparison (MM) diagnosis model: test
// results s_u(v, w) produced by nodes comparing pairs of neighbours.
//
// The package deliberately separates *truth* from *testimony*:
//
//   - if the tester u is healthy, s_u(v, w) = 0 iff both v and w are
//     healthy (the model's reliability assumption: a faulty node always
//     answers incorrectly and two faulty nodes never answer identically);
//   - if the tester u is faulty, s_u(v, w) is arbitrary — modelled by a
//     pluggable Behaviour so correctness can be asserted under several
//     adversaries.
//
// Syndromes are served lazily: a test result is computed on demand and
// every consultation is counted. This mirrors the paper's Section 6
// argument that Set_Builder consults far fewer entries than the full
// syndrome table, and lets benchmarks report exact look-up counts.
package syndrome

import (
	"sync/atomic"

	"comparisondiag/internal/bitset"
	"comparisondiag/internal/graph"
)

// Syndrome supplies MM-model test results. Implementations must be safe
// for concurrent use.
type Syndrome interface {
	// Test returns s_u(v, w) ∈ {0, 1}. v and w must be distinct
	// neighbours of u; the result is symmetric in v and w.
	Test(u, v, w int32) int
	// Lookups returns the number of Test invocations since the last
	// ResetLookups.
	Lookups() int64
	// ResetLookups zeroes the look-up counter.
	ResetLookups()
}

// Lazy is a Syndrome computed on demand from a fault set and a faulty-
// tester Behaviour.
type Lazy struct {
	faults   *bitset.Set
	behavior Behavior
	lookups  atomic.Int64
}

// NewLazy builds a lazy syndrome for the given fault set. behavior
// governs answers of faulty testers; nil defaults to AllZero (the
// adversary that maximally imitates health).
func NewLazy(faults *bitset.Set, behavior Behavior) *Lazy {
	if behavior == nil {
		behavior = AllZero{}
	}
	return &Lazy{faults: faults, behavior: behavior}
}

// Test implements Syndrome.
func (l *Lazy) Test(u, v, w int32) int {
	l.lookups.Add(1)
	if v > w {
		v, w = w, v
	}
	truth := 0
	if l.faults.Contains(int(v)) || l.faults.Contains(int(w)) {
		truth = 1
	}
	if !l.faults.Contains(int(u)) {
		return truth
	}
	return l.behavior.Result(u, v, w, truth)
}

// Lookups implements Syndrome.
func (l *Lazy) Lookups() int64 { return l.lookups.Load() }

// ResetLookups implements Syndrome.
func (l *Lazy) ResetLookups() { l.lookups.Store(0) }

// Faults exposes the underlying fault set (read-only use).
func (l *Lazy) Faults() *bitset.Set { return l.faults }

// ForEachTest enumerates every test of the complete syndrome table of g:
// for each node u and each unordered pair {v, w} of its neighbours it
// calls f(u, v, w) with v < w. It returns early if f returns false.
// The total number of enumerated tests is Σ_u C(deg(u), 2).
func ForEachTest(g *graph.Graph, f func(u, v, w int32) bool) {
	for u := int32(0); int(u) < g.N(); u++ {
		adj := g.Neighbors(u)
		for i := 0; i < len(adj); i++ {
			for j := i + 1; j < len(adj); j++ {
				if !f(u, adj[i], adj[j]) {
					return
				}
			}
		}
	}
}

// TableSize returns the number of entries in the complete syndrome table
// of g: Σ_u C(deg(u), 2). This is the quantity a full-table algorithm
// (such as Chiang–Tan's) must materialise and consult.
func TableSize(g *graph.Graph) int64 {
	var total int64
	for u := int32(0); int(u) < g.N(); u++ {
		d := int64(g.Degree(u))
		total += d * (d - 1) / 2
	}
	return total
}

// Consistent reports whether the fault-set hypothesis F is consistent
// with the syndrome s on graph g: every test by a node outside F must
// equal the truth implied by F. (Tests by members of F are arbitrary
// under the model and impose no constraint.)
func Consistent(g *graph.Graph, s Syndrome, F *bitset.Set) bool {
	ok := true
	ForEachTest(g, func(u, v, w int32) bool {
		if F.Contains(int(u)) {
			return true
		}
		want := 0
		if F.Contains(int(v)) || F.Contains(int(w)) {
			want = 1
		}
		if s.Test(u, v, w) != want {
			ok = false
			return false
		}
		return true
	})
	return ok
}
